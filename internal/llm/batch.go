package llm

import (
	"time"

	"embench/internal/prompt"
	"embench/internal/trace"
)

// BatchDecodeSlowdown is the per-extra-sequence decode slowdown when
// batching: decoding n sequences together costs max-decode × (1 + s·(n-1)).
// Real serving stacks see near-linear throughput gains at small batch sizes;
// 0.10 keeps the model conservative. Exported because the shared-endpoint
// simulator (internal/serve) prices its continuous batches with the same
// model.
const BatchDecodeSlowdown = 0.10

// BatchServiceTime is the deterministic service time for a batch of n
// sequences with the given total prompt tokens and longest generation:
// one overhead, back-to-back prefill, joint decode under BatchDecodeSlowdown.
// promptTokens is float64 so callers can price cache-discounted prefill
// (fractional effective tokens). FixedLatency profiles ignore the token
// model, as in Latency.
func (p Profile) BatchServiceTime(n int, promptTokens float64, maxOut int) time.Duration {
	if p.FixedLatency > 0 {
		return p.FixedLatency
	}
	sec := p.Overhead.Seconds()
	if p.PrefillRate > 0 {
		sec += promptTokens / p.PrefillRate
	}
	if p.DecodeRate > 0 && n > 0 {
		slow := 1 + BatchDecodeSlowdown*float64(n-1)
		sec += float64(maxOut) / p.DecodeRate * slow
	}
	return time.Duration(sec * float64(time.Second))
}

// CompleteBatch aggregates several queries into one serving batch
// (paper Rec. 1: "aggregate multiple queries into a single batch").
// The batch pays one fixed overhead, prefills all prompts back-to-back and
// decodes the sequences together. Error draws remain independent per query.
// The virtual clock advances once, by the batch latency; per-request trace
// events carry an equal share so module breakdowns stay additive.
func (c *Client) CompleteBatch(reqs []Request) []Response {
	if len(reqs) == 0 {
		return nil
	}
	if len(reqs) == 1 {
		return []Response{c.Complete(reqs[0])}
	}
	resps := make([]Response, len(reqs))
	fittedPrompts := make([]prompt.Prompt, len(reqs))
	totalPrompt := 0
	maxOut := 0
	for i, req := range reqs {
		fitted := prompt.Fit(req.Prompt, c.contextBudget(req.OutTokens))
		fittedPrompts[i] = fitted.Prompt
		promptTok := fitted.Prompt.Tokens()
		r := Response{
			PromptTokens: promptTok,
			OutputTokens: req.OutTokens,
			Truncated:    fitted.Truncated,
		}
		r.ErrorP = c.ErrorProbability(promptTok, fitted.Truncated, req)
		r.Decision = req.Good
		if len(req.Corruptions) > 0 && c.stream.Bernoulli(r.ErrorP) {
			r.Corrupted = true
			r.Decision = req.Corruptions[c.stream.Pick(len(req.Corruptions))]
		}
		resps[i] = r
		totalPrompt += promptTok
		if req.OutTokens > maxOut {
			maxOut = req.OutTokens
		}
	}
	lat := c.batchLatency(len(reqs), totalPrompt, maxOut)
	if c.profile.JitterFrac > 0 {
		lat = time.Duration(c.stream.Jitter(float64(lat), c.profile.JitterFrac))
	}
	if c.backend != nil {
		// Shared endpoint: the aggregated queries arrive together and the
		// endpoint's own continuous batcher coalesces them (join window),
		// replacing the client-side latency model with queue-aware serving.
		lat = 0
		arrival := c.now()
		for i := range reqs {
			s := c.backend.Serve(Call{
				Agent: reqs[i].Agent, Arrival: arrival,
				Prompt: fittedPrompts[i], PromptTokens: resps[i].PromptTokens,
				OutTokens: reqs[i].OutTokens,
			})
			if s.Latency > lat {
				lat = s.Latency
			}
		}
	}
	if c.clock != nil {
		c.clock.Advance(lat)
	}
	share := lat / time.Duration(len(reqs))
	for i := range resps {
		resps[i].Latency = share
		if c.tracer != nil {
			c.tracer.Record(trace.Event{
				Step:         reqs[i].Step,
				Agent:        reqs[i].Agent,
				Module:       reqs[i].Module,
				Kind:         reqs[i].Kind + "(batched)",
				Latency:      share,
				PromptTokens: resps[i].PromptTokens,
				OutputTokens: resps[i].OutputTokens,
				LLMCall:      true,
			})
		}
	}
	return resps
}

// batchLatency is the deterministic serving time for a batch.
func (c *Client) batchLatency(n, totalPrompt, maxOut int) time.Duration {
	return c.profile.BatchServiceTime(n, float64(totalPrompt), maxOut)
}

// BatchSpeedup reports the latency ratio sequential/batched for n identical
// calls with the given token counts — the headline gain from Rec. 1.
func BatchSpeedup(p Profile, n, promptTok, outTok int) float64 {
	if n <= 0 {
		return 1
	}
	seq := time.Duration(n) * p.Latency(promptTok, outTok)
	c := Client{profile: p}
	bat := c.batchLatency(n, n*promptTok, outTok)
	if bat == 0 {
		return 1
	}
	return float64(seq) / float64(bat)
}
