package memory

import (
	"fmt"
	"testing"
	"testing/quick"
)

func rec(step int, kind Kind, key string, tokens int) Record {
	return Record{Step: step, Kind: kind, Key: key, Tokens: tokens}
}

func TestKindString(t *testing.T) {
	if Observation.String() != "observation" || Action.String() != "action" ||
		Dialogue.String() != "dialogue" || Kind(99).String() != "unknown" {
		t.Fatal("Kind names wrong")
	}
}

func TestStoreWindow(t *testing.T) {
	s := NewStore(3)
	for step := 0; step < 10; step++ {
		s.Add(rec(step, Observation, fmt.Sprintf("k%d", step), 10))
	}
	got := s.Retrieve(9)
	// Window of 3 as of step 9 keeps steps 7,8,9.
	if len(got.Records) != 3 {
		t.Fatalf("retrieved %d records, want 3", len(got.Records))
	}
	if got.Records[0].Step != 7 || got.Records[2].Step != 9 {
		t.Fatalf("window edges wrong: %+v", got.Records)
	}
	if got.Tokens != 30 {
		t.Fatalf("tokens = %d, want 30", got.Tokens)
	}
}

func TestStoreUnlimited(t *testing.T) {
	s := NewStore(-1)
	for step := 0; step < 50; step++ {
		s.Add(rec(step, Action, "", 5))
	}
	if got := s.Retrieve(49); len(got.Records) != 50 {
		t.Fatalf("unlimited store retrieved %d", len(got.Records))
	}
}

func TestStoreZeroCapacityDropsEverything(t *testing.T) {
	s := NewStore(0)
	s.Add(rec(0, Observation, "x", 5))
	if s.Len() != 0 {
		t.Fatal("zero-capacity store retained a record")
	}
	if got := s.Retrieve(0); len(got.Records) != 0 {
		t.Fatal("zero-capacity store returned records")
	}
}

func TestRetrievalLatencyGrowsWithRecords(t *testing.T) {
	small := NewStore(-1)
	big := NewStore(-1)
	for i := 0; i < 5; i++ {
		small.Add(rec(i, Observation, "", 1))
	}
	for i := 0; i < 200; i++ {
		big.Add(rec(i, Observation, "", 1))
	}
	if big.Retrieve(199).Latency <= small.Retrieve(4).Latency {
		t.Fatal("retrieval latency should grow with record count (Fig. 5)")
	}
}

func TestHasKeyAndLatest(t *testing.T) {
	s := NewStore(-1)
	s.Add(rec(1, Observation, "obj:apple", 4))
	s.Add(Record{Step: 5, Kind: Observation, Key: "obj:apple", Payload: "kitchen", Tokens: 4})
	if !s.HasKey("obj:apple") || s.HasKey("obj:pear") {
		t.Fatal("HasKey wrong")
	}
	latest, ok := s.Latest("obj:apple")
	if !ok || latest.Step != 5 || latest.Payload != "kitchen" {
		t.Fatalf("Latest = %+v %v", latest, ok)
	}
	if _, ok := s.Latest("missing"); ok {
		t.Fatal("Latest of missing key should be !ok")
	}
}

func TestSince(t *testing.T) {
	s := NewStore(-1)
	for step := 0; step < 6; step++ {
		s.Add(rec(step, Dialogue, "", 2))
	}
	got := s.Since(3)
	if len(got) != 2 || got[0].Step != 4 {
		t.Fatalf("Since(3) = %+v", got)
	}
}

func TestClear(t *testing.T) {
	s := NewStore(-1)
	s.Add(rec(0, Observation, "k", 1))
	s.Clear()
	if s.Len() != 0 || s.HasKey("k") {
		t.Fatal("Clear incomplete")
	}
}

func TestAddAllOrder(t *testing.T) {
	s := NewStore(-1)
	s.AddAll([]Record{rec(0, Observation, "a", 1), rec(1, Observation, "b", 1)})
	got := s.Retrieve(1)
	if len(got.Records) != 2 || got.Records[0].Key != "a" {
		t.Fatalf("AddAll order wrong: %+v", got.Records)
	}
}

func TestWindowProperty(t *testing.T) {
	// Property: retrieval never returns a record older than the window, and
	// token totals match the sum of returned records.
	f := func(capRaw uint8, steps uint8) bool {
		capacity := int(capRaw%20) + 1
		s := NewStore(capacity)
		n := int(steps%50) + 1
		for step := 0; step < n; step++ {
			s.Add(rec(step, Observation, "", 3))
		}
		got := s.Retrieve(n - 1)
		tok := 0
		for _, r := range got.Records {
			if r.Step <= n-1-capacity {
				return false
			}
			tok += r.Tokens
		}
		return tok == got.Tokens
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDualRoutesStaticToLongTerm(t *testing.T) {
	d := NewDual(3, 100)
	d.Add(Record{Step: 0, Key: "map:room1", Static: true, Tokens: 50})
	d.Add(rec(0, Observation, "obj:cup", 10)) // world fact: consolidates
	claim := rec(0, Action, "claim:0", 10)
	d.Add(claim) // intent: short-term
	if d.Long.Len() != 2 || d.Short.Len() != 1 {
		t.Fatalf("routing wrong: long=%d short=%d", d.Long.Len(), d.Short.Len())
	}
}

func TestDualDeduplicatesStatic(t *testing.T) {
	d := NewDual(3, 100)
	for i := 0; i < 5; i++ {
		d.Add(Record{Step: i, Key: "map:room1", Static: true, Tokens: 50})
	}
	if d.Long.Len() != 1 {
		t.Fatalf("static facts not deduped: %d", d.Long.Len())
	}
}

func TestDualCapsLongTermTokens(t *testing.T) {
	d := NewDual(5, 60)
	for i := 0; i < 10; i++ {
		d.Add(Record{Step: 0, Key: fmt.Sprintf("map:r%d", i), Static: true, Tokens: 40})
	}
	got := d.Retrieve(0)
	// 400 raw long-term tokens capped at 60.
	if got.Tokens != 60 {
		t.Fatalf("long-term tokens = %d, want capped 60", got.Tokens)
	}
}

func TestDualRetrievalCheaperThanFlat(t *testing.T) {
	flat := NewStore(-1)
	dual := NewDual(5, 100)
	for step := 0; step < 100; step++ {
		r := rec(step, Observation, fmt.Sprintf("e%d", step), 8)
		flat.Add(r)
		dual.Add(r)
		st := Record{Step: step, Key: "map:layout", Static: true, Tokens: 30}
		flat.Add(st)
		dual.Add(st)
	}
	f := flat.Retrieve(99)
	d := dual.Retrieve(99)
	if d.Latency >= f.Latency {
		t.Fatalf("dual retrieval (%v) should beat flat (%v)", d.Latency, f.Latency)
	}
	if d.Tokens >= f.Tokens {
		t.Fatalf("dual tokens (%d) should beat flat (%d)", d.Tokens, f.Tokens)
	}
}

func TestDualClear(t *testing.T) {
	d := NewDual(3, 100)
	d.Add(Record{Step: 0, Key: "map", Static: true, Tokens: 5})
	d.Add(rec(0, Observation, "x", 5))
	d.Clear()
	if d.Long.Len() != 0 || d.Short.Len() != 0 {
		t.Fatal("Clear incomplete")
	}
}

func TestDualAddAll(t *testing.T) {
	d := NewDual(3, 100)
	d.AddAll([]Record{
		{Step: 0, Key: "map", Static: true, Tokens: 5},
		rec(0, Observation, "x", 5),
		rec(0, Dialogue, "", 5), // keyless chatter: short-term
	})
	if d.Long.Len() != 2 || d.Short.Len() != 1 {
		t.Fatalf("AddAll routing wrong: long=%d short=%d", d.Long.Len(), d.Short.Len())
	}
}
