package bench

import (
	"fmt"
	"strings"

	"embench/internal/trace"
)

// Paper holds the headline numbers from the paper's evaluation, used as
// calibration targets. The suite reproduces shapes, not testbeds, so each
// target carries a tolerance band; EXPERIMENTS.md records the comparison.
var Paper = struct {
	LLMShare          float64 // Sec. IV-A: mean LLM latency share
	ReflectionShare   float64 // Sec. IV-B: mean reflection latency share
	MemStepsRatio     float64 // Fig. 3: w/o memory steps multiplier
	MemSuccessDrop    float64 // Fig. 3: w/o memory success drop, pts
	ReflStepsRatio    float64 // Fig. 3: w/o reflection steps multiplier
	ReflSuccessDrop   float64 // Fig. 3: w/o reflection success drop, pts
	CoELAMsgShare     float64 // Sec. IV-A: CoELA message-generation share
	CoELAPlanShare    float64 // Sec. IV-A: CoELA planning share
	CoELAActShare     float64 // Sec. IV-A: CoELA action-selection share
	MessageUseful     float64 // Sec. V-D: useful fraction of messages
	StepSecondsLo     float64 // Fig. 2a: per-step latency band
	StepSecondsHi     float64
	TotalMinutesLo    float64 // Fig. 2b: total runtime band
	TotalMinutesHi    float64
	CoELATotalMinutes float64 // Sec. I: CoELA ≈18 min per task
	COMBOTotalMinutes float64 // Sec. I: COMBO ≈23 min
	MindATotalMinutes float64 // Sec. I: MindAgent ≈21 min
}{
	LLMShare:        0.702,
	ReflectionShare: 0.0861,
	MemStepsRatio:   1.61, MemSuccessDrop: 27.7,
	ReflStepsRatio: 1.88, ReflSuccessDrop: 33.3,
	CoELAMsgShare: 0.161, CoELAPlanShare: 0.365, CoELAActShare: 0.103,
	MessageUseful: 0.20,
	StepSecondsLo: 10, StepSecondsHi: 30,
	TotalMinutesLo: 10, TotalMinutesHi: 40,
	CoELATotalMinutes: 18, COMBOTotalMinutes: 23, MindATotalMinutes: 21,
}

// CalibrationReport compares a Fig. 2 run against the paper's headline
// numbers.
func CalibrationReport(rows []Fig2Row) string {
	var b strings.Builder
	b.WriteString("Calibration — measured vs paper\n")
	line := func(name string, measured, paper float64, unit string) {
		fmt.Fprintf(&b, "%-38s measured %7.2f%s   paper %7.2f%s\n", name, measured, unit, paper, unit)
	}
	line("mean LLM latency share", 100*MeanLLMShare(rows), 100*Paper.LLMShare, "%")
	line("mean reflection latency share", 100*MeanModuleShare(rows, trace.Reflection), 100*Paper.ReflectionShare, "%")
	var coela Fig2Row
	for _, r := range rows {
		if r.System == "CoELA" {
			coela = r
		}
	}
	line("CoELA message-generation share", 100*coela.KindShares["message"], 100*Paper.CoELAMsgShare, "%")
	line("CoELA planning share", 100*coela.KindShares["plan"], 100*Paper.CoELAPlanShare, "%")
	line("CoELA action-selection share", 100*coela.KindShares["act-select"], 100*Paper.CoELAActShare, "%")
	line("CoELA total runtime", coela.TotalRuntime.Minutes(), Paper.CoELATotalMinutes, "m")
	for _, r := range rows {
		switch r.System {
		case "COMBO":
			line("COMBO total runtime", r.TotalRuntime.Minutes(), Paper.COMBOTotalMinutes, "m")
		case "MindAgent":
			line("MindAgent total runtime", r.TotalRuntime.Minutes(), Paper.MindATotalMinutes, "m")
		}
	}
	return b.String()
}
