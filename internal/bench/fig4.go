package bench

import (
	"fmt"
	"strings"
	"time"

	"embench/internal/core"
	"embench/internal/llm"
	"embench/internal/metrics"
	"embench/internal/multiagent"
	"embench/internal/trace"
	"embench/internal/world"
)

// Fig4Row compares one workload under GPT-4 API planning vs local
// Llama-3-8B planning (paper Fig. 4).
type Fig4Row struct {
	System        string
	GPT4Success   float64
	GPT4Runtime   time.Duration
	LlamaSuccess  float64
	LlamaRuntime  time.Duration
	GPT4CallTime  time.Duration // mean latency per LLM call
	LlamaCallTime time.Duration
	GPT4Steps     float64
	LlamaSteps    float64
}

// fig4Systems are the ten workloads the paper swaps models on.
var fig4Systems = []string{
	"JARVIS-1", "DaDu-E", "MP5", "DEPS", "MindAgent",
	"OLA", "COMBO", "RoCo", "DMAS", "CoELA",
}

// Fig4 benchmarks the local-model trade-off: faster per-inference, lower
// capability, longer end-to-end runtime.
func Fig4(cfg Config) []Fig4Row {
	set := cfg.newBatchSet()
	gptIDs := make([]int, len(fig4Systems))
	locIDs := make([]int, len(fig4Systems))
	for i, name := range fig4Systems {
		w := mustGet(name)
		gptIDs[i] = set.add(w, world.Medium, 0, swapModels(llm.GPT4), multiagent.Options{})
		locIDs[i] = set.add(w, world.Medium, 0, swapModels(llm.Llama3_8B), multiagent.Options{})
	}
	set.run()
	var rows []Fig4Row
	for i, name := range fig4Systems {
		epsG, trG := set.results(gptIDs[i])
		epsL, trL := set.results(locIDs[i])
		sg, sl := metrics.Summarize(epsG), metrics.Summarize(epsL)
		rows = append(rows, Fig4Row{
			System:        name,
			GPT4Success:   sg.SuccessRate,
			GPT4Runtime:   sg.MeanDuration,
			LlamaSuccess:  sl.SuccessRate,
			LlamaRuntime:  sl.MeanDuration,
			GPT4CallTime:  meanLLMCall(trG),
			LlamaCallTime: meanLLMCall(trL),
			GPT4Steps:     sg.MeanSteps,
			LlamaSteps:    sl.MeanSteps,
		})
	}
	return rows
}

// swapModels replaces every generative module (planner, comms, reflector)
// with the given profile, mirroring the paper's whole-stack model swap.
func swapModels(p llm.Profile) mutation {
	return func(c *core.AgentConfig) {
		c.Planner = p
		if c.Comms != nil {
			q := p
			c.Comms = &q
		}
		if c.Reflector != nil && c.Reflector.FixedLatency == 0 {
			q := p
			c.Reflector = &q
		}
	}
}

// meanLLMCall averages the latency of LLM inference events across traces.
func meanLLMCall(traces []*trace.Trace) time.Duration {
	var sum time.Duration
	n := 0
	for _, tr := range traces {
		for _, ev := range tr.Events {
			if ev.LLMCall {
				sum += ev.Latency
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// RenderFig4 formats the comparison.
func RenderFig4(rows []Fig4Row) string {
	var b strings.Builder
	b.WriteString("Fig. 4 — GPT-4 API vs local Llama-3-8B (medium tasks)\n")
	fmt.Fprintf(&b, "%-10s  %-22s  %-22s\n", "", "GPT-4", "Llama-3-8B")
	fmt.Fprintf(&b, "%-10s %9s %11s  %9s %11s\n", "System", "success", "runtime", "success", "runtime")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8.0f%% %10.1fm  %8.0f%% %10.1fm\n",
			r.System, 100*r.GPT4Success, r.GPT4Runtime.Minutes(),
			100*r.LlamaSuccess, r.LlamaRuntime.Minutes())
	}
	return b.String()
}
