package bench

import (
	"reflect"
	"testing"
	"time"

	"embench/internal/metrics"
	"embench/internal/multiagent"
	"embench/internal/trace"
	"embench/internal/world"
)

// Determinism parity: for the same root seed, a sequential run and an
// 8-worker run of each experiment must produce identical summaries —
// byte-identical rendered reports and deeply-equal rows. This is the
// contract that makes -procs purely a throughput knob.

func parityConfigs() (seq, par Config) {
	seq = Config{Episodes: 2, Seed: 23, Parallelism: 1}
	par = seq
	par.Parallelism = 8
	return seq, par
}

func TestFig2ParallelParity(t *testing.T) {
	seq, par := parityConfigs()
	a, b := Fig2(seq), Fig2(par)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Fig2 rows differ between Parallelism 1 and 8")
	}
	if RenderFig2(a) != RenderFig2(b) {
		t.Fatal("Fig2 reports differ between Parallelism 1 and 8")
	}
}

func TestFig7ParallelParity(t *testing.T) {
	seq, par := parityConfigs()
	a, b := Fig7(seq), Fig7(par)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Fig7 rows differ between Parallelism 1 and 8")
	}
	if RenderFig7(a) != RenderFig7(b) {
		t.Fatal("Fig7 reports differ between Parallelism 1 and 8")
	}
}

func TestOptimizationsParallelParity(t *testing.T) {
	seq, par := parityConfigs()
	a, b := Optimizations(seq), Optimizations(par)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Optimizations rows differ between Parallelism 1 and 8")
	}
	if RenderOptimizations(a, Batching()) != RenderOptimizations(b, Batching()) {
		t.Fatal("Optimizations reports differ between Parallelism 1 and 8")
	}
}

func TestFig8ParallelParity(t *testing.T) {
	// The serving-endpoint experiment builds one endpoint per episode, so
	// worker-pool fan-out must not leak timeline or cache state across
	// episodes: sequential and 8-worker runs are byte-identical.
	seq, par := parityConfigs()
	a, b := Fig8(seq), Fig8(par)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Fig8 rows differ between Parallelism 1 and 8")
	}
	if RenderFig8(a) != RenderFig8(b) {
		t.Fatal("Fig8 reports differ between Parallelism 1 and 8")
	}
}

func TestBatchSummarizeParity(t *testing.T) {
	// The raw episode batches behind every figure: sequential and parallel
	// runs of one configuration must summarize identically.
	for _, name := range []string{"CoELA", "MindAgent", "JARVIS-1"} {
		w := mustGet(name)
		seq, par := parityConfigs()
		seq.Episodes, par.Episodes = 4, 4
		epsA, _ := seq.batch(w, world.Medium, 0, nil, multiagent.Options{})
		epsB, _ := par.batch(w, world.Medium, 0, nil, multiagent.Options{})
		if !reflect.DeepEqual(metrics.Summarize(epsA), metrics.Summarize(epsB)) {
			t.Errorf("%s: Summarize differs between Parallelism 1 and 8", name)
		}
	}
}

// kindShare's prefix branch — "plan-refine" must count toward "plan" while
// "planning" events of an unrelated kind must not bleed across kinds.
func TestKindSharePrefixMatch(t *testing.T) {
	tr := trace.New()
	add := func(kind string, sec float64) {
		tr.Record(trace.Event{Kind: kind, Latency: time.Duration(sec * float64(time.Second))})
	}
	add("plan", 2)         // exact match
	add("plan-refine", 1)  // prefix match (the ev.Kind[:len(kind)] branch)
	add("message", 4)      // different kind
	add("message-peer", 2) // prefix of "message" only
	add("act-select", 1)   // unrelated

	traces := []*trace.Trace{tr}
	cases := []struct {
		kind string
		want float64
	}{
		{"plan", 3.0 / 10},
		{"message", 6.0 / 10},
		{"act-select", 1.0 / 10},
		{"act", 1.0 / 10}, // prefix of act-select
		{"nope", 0},
	}
	for _, tc := range cases {
		if got := kindShare(traces, tc.kind); got != tc.want {
			t.Errorf("kindShare(%q) = %v, want %v", tc.kind, got, tc.want)
		}
	}
	if got := kindShare(nil, "plan"); got != 0 {
		t.Errorf("kindShare(no traces) = %v, want 0", got)
	}
	// A kind shorter than the event kind but not a prefix must not match.
	tr2 := trace.New()
	tr2.Record(trace.Event{Kind: "planning", Latency: time.Second})
	tr2.Record(trace.Event{Kind: "act", Latency: time.Second})
	if got := kindShare([]*trace.Trace{tr2}, "plam"); got != 0 {
		t.Errorf("kindShare(non-prefix) = %v, want 0", got)
	}
}
