// Quickstart: run one episode of a workload from the suite and read its
// metrics — success, steps, simulated latency, per-module breakdown.
package main

import (
	"fmt"
	"log"

	"embench"
	"embench/internal/trace"
)

func main() {
	// JARVIS-1 on an easy craftworld task: obtain a wooden pickaxe.
	out, err := embench.Run("JARVIS-1", "easy", 0, 42)
	if err != nil {
		log.Fatal(err)
	}
	e := out.Episode
	fmt.Printf("success:   %v\n", e.Success)
	fmt.Printf("steps:     %d\n", e.Steps)
	fmt.Printf("sim time:  %.1f min (%.1f s/step)\n",
		e.SimDuration.Minutes(), e.SimDuration.Seconds()/float64(e.Steps))
	fmt.Printf("llm calls: %d (%.0f%% of latency)\n", e.LLMCalls, 100*e.LLMShare)
	fmt.Println("per-module latency:")
	for _, m := range trace.Modules {
		if d := e.Breakdown[m]; d > 0 {
			fmt.Printf("  %-14s %6.1fs\n", m, d.Seconds())
		}
	}
}
