package analysis

import (
	"go/ast"
	"go/types"
)

// MergeFields enforces struct-field exhaustiveness on merge methods: for
// every named struct type T declared in the package with a method
// `Merge(T) ...` (receiver or parameter may be pointers), every field of
// T must be referenced somewhere in that method's body — as a selector
// (s.Field, o.Field, &s.Field, range s.Field, ...) or as a keyed field in
// a composite literal of T.
//
// This is the "added a counter, forgot the merge" hazard turned into a
// build break: metrics.Serving, metrics.Hist and obs.Series all promise
// exact mergeability, and PRs 6/8/9 each grew Serving with fields that
// Merge must not silently drop. A field that is deliberately not merged
// (say, a cached derived value) carries //detlint:allow mergefields on
// its declaration line, with the reason.
var MergeFields = &Analyzer{
	Name: "mergefields",
	Doc: "every field of a struct with a Merge method must be referenced by that method; " +
		"unmerged fields silently vanish from fleet/episode aggregates",
	Run: runMergeFields,
}

func runMergeFields(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Merge" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			named := namedStructOf(sig.Recv().Type())
			if named == nil || named.Obj().Pkg() != pass.Pkg {
				continue
			}
			// Merge must take exactly one argument of the receiver's type:
			// that is the "combine two aggregates" shape the contract covers.
			if sig.Params().Len() != 1 || namedStructOf(sig.Params().At(0).Type()) != named {
				continue
			}
			st := named.Underlying().(*types.Struct)

			referenced := map[*types.Var]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
						if v, ok := sel.Obj().(*types.Var); ok {
							referenced[v] = true
						}
					}
				case *ast.CompositeLit:
					if tv, ok := pass.TypesInfo.Types[n]; !ok || namedStructOf(tv.Type) != named {
						return true
					}
					for _, el := range n.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if id, ok := kv.Key.(*ast.Ident); ok {
							if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
								referenced[v] = true
							}
						}
					}
				}
				return true
			})

			for i := 0; i < st.NumFields(); i++ {
				field := st.Field(i)
				if referenced[field] {
					continue
				}
				pass.Reportf(field.Pos(),
					"field %s of %s is never referenced by its Merge method — merged aggregates would silently drop it (merge it, or annotate //detlint:allow mergefields <why>)",
					field.Name(), named.Obj().Name())
			}
		}
	}
	return nil
}

// namedStructOf unwraps pointers and reports the named struct type behind
// t, or nil if t is not a (pointer to a) named struct.
func namedStructOf(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}
