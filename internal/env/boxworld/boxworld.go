// Package boxworld implements a reach-constrained cooperative box-moving
// environment — the suite's stand-in for the BoxNet, WareHouse and BoxLift
// tasks used by CMAS, DMAS and HMAS (paper Table II).
//
// Fixed robot arms line a corridor of cells; each arm reaches only its
// three neighboring cells, so moving a box across the corridor requires a
// relay through shared boundary cells, and heavy boxes move only when two
// arms lift together in the same step. This reproduces the action-
// interdependency explosion the paper identifies as the core multi-agent
// scalability obstacle. Each arm sees only its own reach, so teammates'
// box sightings arrive through memory and messages.
package boxworld

import (
	"fmt"
	"slices"

	"embench/internal/core"
	"embench/internal/modules/execution"
	"embench/internal/modules/memory"
	"embench/internal/rng"
	"embench/internal/world"
)

// Config parameterizes an episode.
type Config struct {
	Agents     int
	Difficulty world.Difficulty
	Horizon    int // 0 = difficulty default
	Boxes      int // 0 = difficulty default
	Seed       string
}

func defaults(d world.Difficulty) (boxes, heavy, horizon int) {
	switch d {
	case world.Easy:
		return 4, 0, 40
	case world.Medium:
		return 8, 1, 55
	default:
		return 12, 2, 85
	}
}

const (
	boxFactTokens  = 12
	goalFactTokens = 30
)

// box is one payload.
type box struct {
	id    int
	cell  int
	goal  int
	heavy bool
}

// liftIntent is a pending cooperative lift registered during the step.
type liftIntent struct {
	agent, box, dest int
}

// Corridor is the environment. It implements core.Domain and
// core.CentralDomain.
type Corridor struct {
	cfg     Config
	agents  int
	length  int
	boxes   []*box
	moved   map[int]bool // boxes already moved this step
	lifts   []liftIntent
	step    int
	horizon int
}

// BoxFact is the payload of a box sighting. Gone marks negative evidence:
// the arm reached for the box and it wasn't there.
type BoxFact struct {
	ID    int
	Cell  int
	Goal  int
	Heavy bool
	Gone  bool
}

// ClaimFact is an "agent is handling box B" intent.
type ClaimFact struct {
	Agent int
	Box   int
}

// New builds an episode. The corridor has 2·agents+1 cells so that arm
// reaches tile it completely with single-cell overlaps.
func New(cfg Config, src *rng.Source) *Corridor {
	if cfg.Agents <= 0 {
		cfg.Agents = 2
	}
	boxes, heavy, horizon := defaults(cfg.Difficulty)
	if cfg.Boxes > 0 {
		boxes = cfg.Boxes
	}
	if cfg.Horizon > 0 {
		horizon = cfg.Horizon
	}
	c := &Corridor{
		cfg: cfg, agents: cfg.Agents, length: 2*cfg.Agents + 1,
		horizon: horizon, moved: map[int]bool{},
	}
	st := src.NewStream("boxworld/" + cfg.Seed)
	for i := 0; i < boxes; i++ {
		isHeavy := i < heavy
		pick := func() int {
			if isHeavy {
				// Heavy boxes need two arms; the exclusive end cells have
				// only one, so keep heavy starts and goals interior.
				return 1 + st.Pick(c.length-2)
			}
			return st.Pick(c.length)
		}
		start := pick()
		goal := pick()
		for goal == start {
			goal = pick()
		}
		c.boxes = append(c.boxes, &box{id: i, cell: start, goal: goal, heavy: isHeavy})
	}
	return c
}

// ArmPos reports arm i's fixed cell (odd cells).
func (c *Corridor) ArmPos(agent int) int { return 2*agent + 1 }

// InReach reports whether cell is within agent's workspace.
func (c *Corridor) InReach(agent, cell int) bool {
	p := c.ArmPos(agent)
	return cell >= p-1 && cell <= p+1 && cell >= 0 && cell < c.length
}

// Length reports the corridor size in cells.
func (c *Corridor) Length() int { return c.length }

// Name implements core.Domain.
func (c *Corridor) Name() string { return "boxworld" }

// Agents implements core.Domain.
func (c *Corridor) Agents() int { return c.agents }

// MaxSteps implements core.Domain.
func (c *Corridor) MaxSteps() int { return c.horizon }

// Step implements core.Domain.
func (c *Corridor) Step() int { return c.step }

// Done implements core.Domain.
func (c *Corridor) Done() bool { return c.Success() || c.step >= c.horizon }

// Success implements core.Domain.
func (c *Corridor) Success() bool {
	for _, b := range c.boxes {
		if b.cell != b.goal {
			return false
		}
	}
	return true
}

// Progress implements core.Domain.
func (c *Corridor) Progress() float64 {
	if len(c.boxes) == 0 {
		return 1
	}
	done := 0
	for _, b := range c.boxes {
		if b.cell == b.goal {
			done++
		}
	}
	return float64(done) / float64(len(c.boxes))
}

// BoxCell exposes a box's true cell (tests and examples).
func (c *Corridor) BoxCell(id int) int { return c.boxes[id].cell }

// StaticRecords implements core.Domain: goals are task knowledge.
func (c *Corridor) StaticRecords() []memory.Record {
	recs := []memory.Record{{
		Kind: memory.Observation, Key: "map:corridor", Payload: c.length,
		Tokens: goalFactTokens, Static: true,
	}}
	return recs
}

// Observe implements core.Domain: an arm sees only its own reach.
func (c *Corridor) Observe(agent int) core.Observation {
	obs := core.Observation{}
	for _, b := range c.boxes {
		if !c.InReach(agent, b.cell) {
			continue
		}
		obs.Entities++
		rec := memory.Record{
			Step: c.step, Kind: memory.Observation, Key: fmt.Sprintf("box:%d", b.id),
			Payload: BoxFact{ID: b.id, Cell: b.cell, Goal: b.goal, Heavy: b.heavy},
			Tokens:  boxFactTokens,
		}
		obs.Records = append(obs.Records, rec)
		obs.Tokens += rec.Tokens
	}
	return obs
}

// belief is the boxworld belief payload.
type belief struct {
	boxes  map[int]BoxFact
	step   map[int]int
	claims map[int]int // agent -> box
}

// BuildBelief implements core.Domain.
func (c *Corridor) BuildBelief(agent int, recs []memory.Record) core.Belief {
	b := belief{boxes: map[int]BoxFact{}, step: map[int]int{}, claims: map[int]int{}}
	for _, r := range recs {
		switch p := r.Payload.(type) {
		case BoxFact:
			if r.Step >= b.step[p.ID] {
				if p.Gone {
					delete(b.boxes, p.ID)
				} else {
					b.boxes[p.ID] = p
				}
				b.step[p.ID] = r.Step
			}
		case ClaimFact:
			b.claims[p.Agent] = p.Box
		}
	}
	known, stale := 0, 0
	//detlint:allow maprange counting loop; only totals leave it
	for id, f := range b.boxes {
		if f.Cell == f.Goal {
			continue
		}
		known++
		if c.boxes[id].cell != f.Cell {
			stale++
		}
	}
	st := 0.0
	if known > 0 {
		st = float64(stale) / float64(known)
	}
	return core.Belief{Payload: b, Staleness: st}
}

// Move slides a (light) box one cell within the acting arm's reach.
type Move struct {
	Box  int
	From int
	To   int
}

// ID implements core.Subgoal.
func (m Move) ID() string { return fmt.Sprintf("move:%d:%d", m.Box, m.To) }

// Describe implements core.Subgoal.
func (m Move) Describe() string { return fmt.Sprintf("move box %d from %d to %d", m.Box, m.From, m.To) }

// Lift registers a cooperative lift of a heavy box; the box moves at the
// end of the step when at least two arms lifted it toward the same cell.
type Lift struct {
	Box  int
	From int
	To   int
}

// ID implements core.Subgoal.
func (l Lift) ID() string { return fmt.Sprintf("lift:%d:%d", l.Box, l.To) }

// Describe implements core.Subgoal.
func (l Lift) Describe() string { return fmt.Sprintf("lift box %d from %d to %d", l.Box, l.From, l.To) }

// Idle is the do-nothing subgoal.
type Idle struct{}

// ID implements core.Subgoal.
func (Idle) ID() string { return "idle" }

// Describe implements core.Subgoal.
func (Idle) Describe() string { return "wait" }

// Propose implements core.Domain: act on the highest-priority believed box
// inside this arm's reach, relaying toward its goal.
func (c *Corridor) Propose(agent int, bel core.Belief) core.Proposal {
	b, _ := bel.Payload.(belief)
	prop := core.Proposal{Complexity: core.DecentralizedComplexity(c.agents)}
	good := c.bestAction(agent, b)
	prop.Good = good
	prop.Corruptions = c.corruptions(agent, b, good)
	return prop
}

// bestAction prefers heavy boxes (they need synchronized effort, so all
// reaching arms converge on them by shared priority), then the lowest id —
// a deterministic, commonly computable ordering.
func (c *Corridor) bestAction(agent int, b belief) core.Subgoal {
	var pick *BoxFact
	for id := 0; id < len(c.boxes); id++ {
		f, ok := b.boxes[id]
		if !ok || f.Cell == f.Goal {
			continue
		}
		if !f.Heavy && claimedByOther(b.claims, agent, id) {
			continue
		}
		dest := stepToward(f.Cell, f.Goal)
		if f.Heavy {
			// A lifter needs a hold on either end of the move.
			if !c.InReach(agent, f.Cell) && !c.InReach(agent, dest) {
				continue
			}
		} else if !c.InReach(agent, f.Cell) || !c.InReach(agent, dest) {
			continue // the neighbor arm's job
		}
		cp := f
		if pick == nil || (cp.Heavy && !pick.Heavy) || (cp.Heavy == pick.Heavy && cp.ID < pick.ID) {
			pick = &cp
		}
	}
	if pick == nil {
		return Idle{}
	}
	dest := stepToward(pick.Cell, pick.Goal)
	if pick.Heavy {
		return Lift{Box: pick.ID, From: pick.Cell, To: dest}
	}
	return Move{Box: pick.ID, From: pick.Cell, To: dest}
}

func stepToward(from, goal int) int {
	if goal > from {
		return from + 1
	}
	if goal < from {
		return from - 1
	}
	return from
}

func claimedByOther(claims map[int]int, agent, boxID int) bool {
	//detlint:allow maprange existence check; any order yields the same answer
	for a, bx := range claims {
		if a != agent && bx == boxID {
			return true
		}
	}
	return false
}

// corruptions: push a box away from its goal, grab an out-of-reach box,
// lift a light box, or duplicate a teammate's claim.
func (c *Corridor) corruptions(agent int, b belief, good core.Subgoal) []core.Subgoal {
	var out []core.Subgoal
	add := func(sg core.Subgoal) {
		if sg != nil && (good == nil || sg.ID() != good.ID()) {
			out = append(out, sg)
		}
	}
	for id := 0; id < len(c.boxes); id++ {
		f, ok := b.boxes[id]
		if !ok || f.Cell == f.Goal {
			continue
		}
		if c.InReach(agent, f.Cell) {
			// Wrong direction.
			away := 2*f.Cell - stepToward(f.Cell, f.Goal)
			if away >= 0 && away < c.length && c.InReach(agent, away) {
				add(Move{Box: id, From: f.Cell, To: away})
			}
			if !f.Heavy {
				add(Lift{Box: id, From: f.Cell, To: stepToward(f.Cell, f.Goal)})
			}
		} else {
			add(Move{Box: id, From: f.Cell, To: stepToward(f.Cell, f.Goal)})
		}
		if len(out) >= 3 {
			break
		}
	}
	add(Idle{})
	return out
}

// ProposeJoint implements core.CentralDomain: assign each arm its best
// feasible action, pairing arms on heavy boxes first.
func (c *Corridor) ProposeJoint(bel core.Belief) core.Proposal {
	b, _ := bel.Payload.(belief)
	good := &core.Joint{Assign: map[int]core.Subgoal{}}
	taken := map[int]bool{}
	// Heavy boxes first: find the two arms that reach them.
	for id := 0; id < len(c.boxes); id++ {
		f, ok := b.boxes[id]
		if !ok || !f.Heavy || f.Cell == f.Goal {
			continue
		}
		dest := stepToward(f.Cell, f.Goal)
		var lifters []int
		for a := 0; a < c.agents; a++ {
			if good.Assign[a] == nil && (c.InReach(a, f.Cell) || c.InReach(a, dest)) {
				lifters = append(lifters, a)
			}
		}
		if len(lifters) >= 2 {
			for _, a := range lifters[:2] {
				good.Assign[a] = Lift{Box: id, From: f.Cell, To: dest}
			}
			taken[id] = true
		}
	}
	for a := 0; a < c.agents; a++ {
		if good.Assign[a] != nil {
			continue
		}
		assigned := false
		for id := 0; id < len(c.boxes); id++ {
			f, ok := b.boxes[id]
			if !ok || f.Heavy || taken[id] || f.Cell == f.Goal || !c.InReach(a, f.Cell) {
				continue
			}
			dest := stepToward(f.Cell, f.Goal)
			if !c.InReach(a, dest) {
				continue
			}
			good.Assign[a] = Move{Box: id, From: f.Cell, To: dest}
			taken[id] = true
			assigned = true
			break
		}
		if !assigned {
			good.Assign[a] = Idle{}
		}
	}
	// Corruptions: everyone idles, or single-arm lifts that can't succeed.
	lazy := &core.Joint{Assign: map[int]core.Subgoal{}}
	soloLift := &core.Joint{Assign: map[int]core.Subgoal{}}
	for a := 0; a < c.agents; a++ {
		lazy.Assign[a] = Idle{}
		soloLift.Assign[a] = Idle{}
	}
	for id := 0; id < len(c.boxes); id++ {
		if f, ok := b.boxes[id]; ok && f.Heavy && f.Cell != f.Goal {
			for a := 0; a < c.agents; a++ {
				if c.InReach(a, f.Cell) {
					soloLift.Assign[a] = Lift{Box: id, From: f.Cell, To: stepToward(f.Cell, f.Goal)}
					break
				}
			}
			break
		}
	}
	return core.Proposal{
		Good:        good,
		Corruptions: []core.Subgoal{lazy, soloLift},
		Complexity:  core.CentralizedComplexity(c.agents),
	}
}

// Execute implements core.Domain.
func (c *Corridor) Execute(agent int, sg core.Subgoal) execution.Result {
	switch a := sg.(type) {
	case Move:
		return c.execMove(agent, a)
	case Lift:
		return c.execLift(agent, a)
	case Idle, nil:
		return execution.Result{Achieved: true, Note: "idle"}
	default:
		return execution.Result{Note: "unknown subgoal"}
	}
}

func (c *Corridor) execMove(agent int, m Move) execution.Result {
	res := execution.Result{Effort: execution.Effort{Primitives: 2}}
	if m.Box < 0 || m.Box >= len(c.boxes) {
		res.Note = "no such box"
		return res
	}
	b := c.boxes[m.Box]
	switch {
	case b.heavy:
		res.Note = "box too heavy for one arm"
	case b.cell != m.From:
		res.Note = "box not where expected"
	case !c.InReach(agent, b.cell) || !c.InReach(agent, m.To):
		res.Note = "out of reach"
	case abs(m.To-b.cell) != 1 || m.To < 0 || m.To >= c.length:
		res.Note = "invalid destination"
	case c.moved[b.id]:
		res.Note = "box already handled this step"
	default:
		b.cell = m.To
		c.moved[b.id] = true
		res.Achieved = true
	}
	return res
}

func (c *Corridor) execLift(agent int, l Lift) execution.Result {
	res := execution.Result{Effort: execution.Effort{Primitives: 2}}
	if l.Box < 0 || l.Box >= len(c.boxes) {
		res.Note = "no such box"
		return res
	}
	b := c.boxes[l.Box]
	switch {
	case !b.heavy:
		res.Note = "box does not need a lift"
	case b.cell != l.From:
		res.Note = "box not where expected"
	case !c.InReach(agent, b.cell) && !c.InReach(agent, l.To):
		res.Note = "out of reach"
	case abs(l.To-b.cell) != 1 || l.To < 0 || l.To >= c.length:
		res.Note = "invalid destination"
	default:
		c.lifts = append(c.lifts, liftIntent{agent: agent, box: l.Box, dest: l.To})
		res.Achieved = true
		res.Note = "lift registered"
	}
	return res
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Tick implements core.Domain: resolve cooperative lifts, clear per-step
// state, advance.
func (c *Corridor) Tick() {
	counts := map[[2]int]int{} // (box, dest) -> lifters
	for _, li := range c.lifts {
		counts[[2]int{li.box, li.dest}]++
	}
	// A box can attract two-lifter coalitions toward both neighbors in the
	// same step; only one may win, and the winner must not depend on map
	// iteration order. Resolve candidates in (box, dest) order.
	keys := make([][2]int, 0, len(counts))
	for key := range counts { //detlint:allow maprange keys collected then sorted below
		keys = append(keys, key)
	}
	slices.SortFunc(keys, func(a, b [2]int) int {
		if a[0] != b[0] {
			return a[0] - b[0]
		}
		return a[1] - b[1]
	})
	for _, key := range keys {
		if counts[key] >= 2 && !c.moved[key[0]] {
			c.boxes[key[0]].cell = key[1]
			c.moved[key[0]] = true
		}
	}
	c.lifts = nil
	c.moved = map[int]bool{}
	c.step++
}

// ClaimRecord implements core.Claimer.
func (c *Corridor) ClaimRecord(agent int, sg core.Subgoal) (memory.Record, bool) {
	boxID := -1
	switch g := sg.(type) {
	case Move:
		boxID = g.Box
	case Lift:
		boxID = g.Box
	}
	return memory.Record{
		Kind: memory.Action, Key: fmt.Sprintf("claim:%d", agent),
		Payload: ClaimFact{Agent: agent, Box: boxID}, Tokens: 6,
	}, true
}

// CorrectionRecords implements core.Corrector: a failed move over a stale
// sighting yields the box's true position when still in reach, otherwise
// negative evidence.
func (c *Corridor) CorrectionRecords(agent int, sg core.Subgoal, res execution.Result) []memory.Record {
	var boxID int
	switch g := sg.(type) {
	case Move:
		boxID = g.Box
	case Lift:
		boxID = g.Box
	default:
		return nil
	}
	if res.Achieved || boxID < 0 || boxID >= len(c.boxes) {
		return nil
	}
	b := c.boxes[boxID]
	fact := BoxFact{ID: b.id, Cell: b.cell, Goal: b.goal, Heavy: b.heavy}
	if !c.InReach(agent, b.cell) {
		fact = BoxFact{ID: b.id, Gone: true}
	}
	return []memory.Record{{
		Step: c.step, Kind: memory.Action, Key: fmt.Sprintf("box:%d", b.id),
		Payload: fact, Tokens: boxFactTokens,
	}}
}

var (
	_ core.Domain        = (*Corridor)(nil)
	_ core.CentralDomain = (*Corridor)(nil)
	_ core.Claimer       = (*Corridor)(nil)
	_ core.Corrector     = (*Corridor)(nil)
)
