package metrics

import (
	"math"
	"reflect"
	"testing"
	"time"

	"embench/internal/trace"
)

func ep(success bool, steps int, dur time.Duration) Episode {
	return Episode{
		Success:     success,
		Steps:       steps,
		SimDuration: dur,
		Breakdown: map[trace.Module]time.Duration{
			trace.Planning:  dur / 2,
			trace.Execution: dur / 2,
		},
		LLMCalls:     steps,
		PromptTokens: steps * 100,
		OutputTokens: steps * 10,
		LLMShare:     0.5,
		Messages:     trace.MessageStats{Generated: 10, Useful: 2},
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Episodes != 0 || s.SuccessRate != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarize(t *testing.T) {
	eps := []Episode{
		ep(true, 10, 100*time.Second),
		ep(false, 30, 300*time.Second),
	}
	eps[1].ReachedLimit = true
	s := Summarize(eps)
	if s.Episodes != 2 {
		t.Fatalf("Episodes = %d", s.Episodes)
	}
	if s.SuccessRate != 0.5 {
		t.Fatalf("SuccessRate = %v", s.SuccessRate)
	}
	if s.LimitRate != 0.5 {
		t.Fatalf("LimitRate = %v", s.LimitRate)
	}
	if s.MeanSteps != 20 {
		t.Fatalf("MeanSteps = %v", s.MeanSteps)
	}
	if s.MeanDuration != 200*time.Second {
		t.Fatalf("MeanDuration = %v", s.MeanDuration)
	}
	if s.MeanStepTime != 10*time.Second {
		t.Fatalf("MeanStepTime = %v", s.MeanStepTime)
	}
	if s.MeanLLMCalls != 20 {
		t.Fatalf("MeanLLMCalls = %v", s.MeanLLMCalls)
	}
	if s.MeanPrompt != 2000 || s.MeanOutput != 200 {
		t.Fatalf("token means = %v/%v", s.MeanPrompt, s.MeanOutput)
	}
	if s.MessageRate != 0.2 {
		t.Fatalf("MessageRate = %v", s.MessageRate)
	}
	if s.ModuleShare[trace.Planning] != 0.5 || s.ModuleShare[trace.Execution] != 0.5 {
		t.Fatalf("ModuleShare = %+v", s.ModuleShare)
	}
}

func TestFromTrace(t *testing.T) {
	tr := trace.New()
	tr.Record(trace.Event{Step: 0, Module: trace.Planning, Latency: 4 * time.Second, LLMCall: true, PromptTokens: 500, OutputTokens: 50})
	tr.Record(trace.Event{Step: 1, Module: trace.Execution, Latency: time.Second})
	e := FromTrace(tr, true, false, 2)
	if !e.Success || e.Steps != 2 {
		t.Fatalf("episode = %+v", e)
	}
	if e.SimDuration != 5*time.Second {
		t.Fatalf("SimDuration = %v", e.SimDuration)
	}
	if e.LLMCalls != 1 || e.PromptTokens != 500 {
		t.Fatalf("LLM accounting wrong: %+v", e)
	}
	if e.LLMShare != 0.8 {
		t.Fatalf("LLMShare = %v", e.LLMShare)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(8, 4) != 2 {
		t.Fatal("Ratio(8,4) != 2")
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Fatal("Ratio(_,0) should be NaN")
	}
}

func TestPts(t *testing.T) {
	if got := Pts(0.8, 0.5); math.Abs(got-30) > 1e-9 {
		t.Fatalf("Pts = %v, want 30", got)
	}
}

func TestServingMergeCacheMemoryStats(t *testing.T) {
	a := Serving{Requests: 4, CacheTokensPeak: 900, EvictedTokens: 50,
		ReplicaRequests: []int{3, 1}}
	b := Serving{Requests: 6, CacheTokensPeak: 700, EvictedTokens: 25,
		ReplicaRequests: []int{1, 2, 3}}
	m := a.Merge(b)
	if m.CacheTokensPeak != 900 {
		t.Fatalf("peak should merge by max: %d", m.CacheTokensPeak)
	}
	if m.EvictedTokens != 75 {
		t.Fatalf("evicted should sum: %d", m.EvictedTokens)
	}
	if want := []int{4, 3, 3}; !reflect.DeepEqual(m.ReplicaRequests, want) {
		t.Fatalf("replica spread = %v, want %v", m.ReplicaRequests, want)
	}
	// Merge must not alias either operand's backing array.
	m.ReplicaRequests[0] = 99
	if a.ReplicaRequests[0] != 3 || b.ReplicaRequests[0] != 1 {
		t.Fatal("Merge aliased an operand's ReplicaRequests")
	}
}

func TestServingMaxReplicaShare(t *testing.T) {
	if got := (Serving{}).MaxReplicaShare(); got != 0 {
		t.Fatalf("empty spread share = %v, want 0", got)
	}
	s := Serving{ReplicaRequests: []int{6, 2, 0, 0}}
	if got := s.MaxReplicaShare(); got != 0.75 {
		t.Fatalf("share = %v, want 0.75", got)
	}
	even := Serving{ReplicaRequests: []int{2, 2, 2, 2}}
	if got := even.MaxReplicaShare(); got != 0.25 {
		t.Fatalf("even share = %v, want 0.25", got)
	}
}
