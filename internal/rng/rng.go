// Package rng provides deterministic, named random-number streams.
//
// Every experiment in the suite derives all of its randomness from a single
// root seed, split into independent sub-streams by name (one per agent, per
// module, per episode). Two runs with the same root seed produce identical
// traces; changing one consumer's draw pattern cannot perturb another
// stream. This is what makes the paper's sweeps (memory capacity, agent
// count, model swap) comparable: the underlying task instances stay fixed.
package rng

import (
	"fmt"
	"hash/fnv"
	"math/rand"
)

// Source derives independent sub-streams from a root seed.
type Source struct {
	seed uint64
}

// New returns a stream source rooted at seed.
func New(seed uint64) *Source { return &Source{seed: seed} }

// Seed reports the root seed.
func (s *Source) Seed() uint64 { return s.seed }

// Stream returns a deterministic *rand.Rand for the given name. Repeated
// calls with the same name return fresh generators with identical sequences.
func (s *Source) Stream(name string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", s.seed, name)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Sub returns a derived Source, useful for giving each episode its own
// namespace: rng.New(7).Sub("episode-3").Stream("planner").
func (s *Source) Sub(name string) *Source {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", s.seed, name)
	return &Source{seed: h.Sum64()}
}

// Stream wraps *rand.Rand with the helpers the suite uses.
type Stream struct {
	*rand.Rand
}

// NewStream returns a helper-wrapped stream for the given name.
func (s *Source) NewStream(name string) *Stream {
	return &Stream{Rand: s.Stream(name)}
}

// Bernoulli reports true with probability p (clamped to [0,1]).
func (st *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return st.Float64() < p
}

// Pick returns a uniformly random index in [0,n). It panics if n <= 0,
// matching rand.Intn.
func (st *Stream) Pick(n int) int { return st.Intn(n) }

// Range returns a uniform float64 in [lo, hi).
func (st *Stream) Range(lo, hi float64) float64 {
	return lo + st.Float64()*(hi-lo)
}

// Jitter returns v scaled by a uniform factor in [1-frac, 1+frac]. It is
// used to add bounded variation to latency cost models.
func (st *Stream) Jitter(v float64, frac float64) float64 {
	return v * (1 + st.Range(-frac, frac))
}
