// Package benchjson is the one definition of the machine-readable perf
// record schema shared by cmd/embench (which writes it via -bench-json)
// and cmd/perftrack (which appends it to the perf trajectory and checks
// regressions). Keeping the types in one place means the producer and the
// consumer cannot drift apart silently.
package benchjson

import "fmt"

// Entry is one experiment's perf record.
type Entry struct {
	Experiment string  `json:"experiment"`
	Episodes   int     `json:"episodes"`
	Seed       uint64  `json:"seed"`
	Procs      int     `json:"procs"`
	WallMS     float64 `json:"wall_ms"`
	ReportB    int     `json:"report_bytes,omitempty"`
	ReportRows int     `json:"report_lines,omitempty"`
}

// ConfigKey identifies the entry's run configuration. Wall times are only
// comparable between runs of the same configuration, so trajectory
// baselines are keyed on this, not on the experiment name alone.
func (e Entry) ConfigKey() string {
	return fmt.Sprintf("%s|ep%d|seed%d|procs%d", e.Experiment, e.Episodes, e.Seed, e.Procs)
}

// File is the top-level object written by embench -bench-json.
type File struct {
	Suite       string  `json:"suite"`
	GeneratedBy string  `json:"generated_by"`
	Entries     []Entry `json:"entries"`
	TotalWallMS float64 `json:"total_wall_ms"`
}

// Record is one appended perf-trajectory line (JSONL).
type Record struct {
	Label   string  `json:"label"`
	Entries []Entry `json:"entries"`
}
