package analysis

import (
	"go/parser"
	"go/token"
	"testing"
)

// The fixture suite: each analyzer demonstrates at least two true
// positives and at least one //detlint:allow'd (or structurally exempt)
// negative, with the import path choosing the scope the fixture is judged
// under.

func TestMapRangeFixture(t *testing.T) {
	RunFixture(t, MapRange, "testdata/maprange", "embench/internal/serve")
}

func TestMapRangeOutOfScope(t *testing.T) {
	// The same fixture judged as a bench package produces no maprange
	// findings at all: aggregation/reporting layers are out of scope. The
	// fixture's directive then counts as stale, which is itself the
	// expected (and only) finding — proving both the scoping and the
	// stale-directive hygiene in one move.
	pkg, err := LoadFixture("testdata/maprange", "embench/internal/bench")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(pkg, []*Analyzer{MapRange})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Analyzer != "detlint" {
		t.Fatalf("want exactly one stale-directive finding out of scope, got %v", findings)
	}
}

func TestWallClockFixture(t *testing.T) {
	RunFixture(t, WallClock, "testdata/wallclock", "embench/internal/bench")
}

func TestRawRandFixture(t *testing.T) {
	RunFixture(t, RawRand, "testdata/rawrand", "embench/internal/serve")
}

func TestRawRandExemptsRNGPackage(t *testing.T) {
	RunFixture(t, RawRand, "testdata/rawrand_rng", "embench/internal/rng")
}

func TestMergeFieldsFixture(t *testing.T) {
	RunFixture(t, MergeFields, "testdata/mergefields", "embench/internal/metrics")
}

// parseOne parses a single source string as a one-file package for
// directive-level tests that need no type information.
func parseOne(t *testing.T, src string) (*token.FileSet, []*Directive) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, parseDirectives(fset, f)
}

func TestParseDirectives(t *testing.T) {
	_, ds := parseOne(t, `package p

//detlint:allow maprange keyed writes, order cannot leak
var a int

var b int //detlint:allow wallclock,rawrand harness timing

//detlint:allowed not a directive (no separator)
var c int

//detlint:allow
var d int
`)
	if len(ds) != 3 {
		t.Fatalf("want 3 directives, got %d: %+v", len(ds), ds)
	}
	if got := ds[0].Analyzers; len(got) != 1 || got[0] != "maprange" {
		t.Errorf("directive 0 analyzers = %v", got)
	}
	if ds[0].Justification != "keyed writes, order cannot leak" {
		t.Errorf("directive 0 justification = %q", ds[0].Justification)
	}
	if got := ds[1].Analyzers; len(got) != 2 || got[0] != "wallclock" || got[1] != "rawrand" {
		t.Errorf("directive 1 analyzers = %v", got)
	}
	if len(ds[2].Analyzers) != 0 {
		t.Errorf("bare directive should name no analyzers, got %v", ds[2].Analyzers)
	}
}

func TestDirectiveAllowsSameAndNextLineOnly(t *testing.T) {
	d := &Directive{
		Pos:       token.Position{Filename: "f.go", Line: 10},
		Analyzers: []string{"maprange"},
	}
	cases := []struct {
		file string
		line int
		want bool
	}{
		{"f.go", 10, true},
		{"f.go", 11, true},
		{"f.go", 9, false},
		{"f.go", 12, false},
		{"g.go", 10, false}, // other file, same line: must not suppress
	}
	for _, c := range cases {
		got := d.allows("maprange", token.Position{Filename: c.file, Line: c.line})
		if got != c.want {
			t.Errorf("allows(%s:%d) = %v, want %v", c.file, c.line, got, c.want)
		}
	}
	if d.allows("wallclock", token.Position{Filename: "f.go", Line: 10}) {
		t.Error("directive for maprange must not suppress wallclock")
	}
}
