package simclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestZeroValueReady(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now = %v, want 0", c.Now())
	}
}

func TestAdvance(t *testing.T) {
	c := New()
	c.Advance(3 * time.Second)
	c.Advance(2 * time.Second)
	if got, want := c.Now(), 5*time.Second; got != want {
		t.Fatalf("Now = %v, want %v", got, want)
	}
}

func TestAdvanceNegativeIgnored(t *testing.T) {
	c := New()
	c.Advance(time.Second)
	c.Advance(-10 * time.Second)
	if got, want := c.Now(), time.Second; got != want {
		t.Fatalf("Now = %v after negative advance, want %v", got, want)
	}
}

func TestAdvanceParallel(t *testing.T) {
	tests := []struct {
		name string
		ds   []time.Duration
		want time.Duration
	}{
		{"empty", nil, 0},
		{"single", []time.Duration{4 * time.Second}, 4 * time.Second},
		{"max wins", []time.Duration{time.Second, 7 * time.Second, 3 * time.Second}, 7 * time.Second},
		{"all negative", []time.Duration{-time.Second, -2 * time.Second}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := New()
			c.AdvanceParallel(tt.ds...)
			if c.Now() != tt.want {
				t.Fatalf("Now = %v, want %v", c.Now(), tt.want)
			}
		})
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.Advance(time.Minute)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Now after Reset = %v, want 0", c.Now())
	}
}

func TestMeasure(t *testing.T) {
	c := New()
	c.Advance(2 * time.Second)
	sp := c.Measure(func() time.Duration { return 3 * time.Second })
	if sp.Start != 2*time.Second || sp.End != 5*time.Second {
		t.Fatalf("span = %+v, want [2s,5s]", sp)
	}
	if sp.Dur() != 3*time.Second {
		t.Fatalf("Dur = %v, want 3s", sp.Dur())
	}
}

func TestMonotonicProperty(t *testing.T) {
	// Property: any sequence of advances leaves the clock >= every prefix.
	f := func(steps []int16) bool {
		c := New()
		prev := time.Duration(0)
		for _, s := range steps {
			c.Advance(time.Duration(s) * time.Millisecond)
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatting(t *testing.T) {
	if got := Seconds(1500 * time.Millisecond); got != "1.50s" {
		t.Fatalf("Seconds = %q", got)
	}
	if got := Minutes(90 * time.Second); got != "1.5min" {
		t.Fatalf("Minutes = %q", got)
	}
}
