package metrics

import (
	"fmt"
	"reflect"
	"testing"
)

// fillSentinels sets every field of a Serving to a distinct nonzero
// sentinel via reflection, so the struct definition itself drives the
// test: adding a field without touching this file still covers it (and
// adding a field of an unhandled kind fails loudly instead of silently
// passing).
func fillSentinels(t *testing.T, s *Serving) {
	t.Helper()
	v := reflect.ValueOf(s).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		sentinel := int64(1000 + i) // distinct per field, all nonzero
		switch f.Kind() {
		case reflect.Int, reflect.Int64: // int and time.Duration fields
			f.SetInt(sentinel)
		case reflect.Slice: // ReplicaRequests
			f.Set(reflect.MakeSlice(f.Type(), 1, 1))
			f.Index(0).SetInt(sentinel)
		case reflect.Struct: // Hist fields: mark one bucket
			counts := f.FieldByName("Counts")
			if !counts.IsValid() {
				t.Fatalf("field %s: struct kind with no Counts; teach fillSentinels about it",
					v.Type().Field(i).Name)
			}
			counts.Index(0).SetInt(sentinel)
		default:
			t.Fatalf("field %s has unhandled kind %s; teach fillSentinels about it",
				v.Type().Field(i).Name, f.Kind())
		}
	}
}

// TestServingMergePropagatesEveryField is the mergeability contract from
// the other side of the mergefields analyzer: not just "Merge references
// every field" but "Merge carries every field's value through". Merging a
// fully sentinel-filled Serving into a zero one must leave no field at
// its zero value — a field that Merge reads but then drops (or merges
// into the wrong slot) shows up here as a zero survivor.
func TestServingMergePropagatesEveryField(t *testing.T) {
	var o Serving
	fillSentinels(t, &o)

	for name, got := range map[string]Serving{
		"zero.Merge(sentinels)": Serving{}.Merge(o),
		"sentinels.Merge(zero)": o.Merge(Serving{}),
	} {
		v := reflect.ValueOf(got)
		for i := 0; i < v.NumField(); i++ {
			if v.Field(i).IsZero() {
				t.Errorf("%s: field %s was lost (zero after merge)",
					name, v.Type().Field(i).Name)
			}
		}
	}
}

// TestServingMergeSums cross-checks the reflection sweep on a couple of
// concrete fields: flows sum, capacity facts take the max.
func TestServingMergeSums(t *testing.T) {
	a := Serving{Requests: 3, Retries: 2, Replicas: 4, CacheTokensPeak: 100}
	b := Serving{Requests: 5, Retries: 1, Replicas: 2, CacheTokensPeak: 250}
	m := a.Merge(b)
	for _, c := range []struct {
		name      string
		got, want int
	}{
		{"Requests", m.Requests, 8},
		{"Retries", m.Retries, 3},
		{"Replicas", m.Replicas, 4},
		{"CacheTokensPeak", m.CacheTokensPeak, 250},
	} {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

// sanity: the sentinel filler really touches every field (guards against
// a refactor that makes it skip fields by accident).
func TestFillSentinelsLeavesNothingZero(t *testing.T) {
	var s Serving
	fillSentinels(t, &s)
	v := reflect.ValueOf(s)
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).IsZero() {
			t.Fatalf("fillSentinels left %s zero", v.Type().Field(i).Name)
		}
	}
	if testing.Verbose() {
		fmt.Printf("sentinel-filled %d fields\n", v.NumField())
	}
}
