package multiagent

import (
	"embench/internal/core"
	"embench/internal/llm"
	"embench/internal/modules/planning"
	"embench/internal/rng"
	"embench/internal/simclock"
	"embench/internal/trace"
)

// RunSingle drives a single-agent modular episode (paradigm of Fig. 1b):
// sense → retrieve → plan → execute → reflect → remember, per step.
func RunSingle(d core.Domain, cfg core.AgentConfig, opt Options) Outcome {
	src := rng.New(opt.Seed)
	tr := trace.New()
	clock := simclock.New()
	endpoint := opt.newEndpoint(&cfg)
	agent := core.NewAgent(0, cfg, src, clock, tr)
	agent.Store.AddAll(d.StaticRecords())

	for !d.Done() {
		step := d.Step()
		obs := agent.Sense(d, step)
		ret := agent.Retrieve(step)
		pr := agent.Plan(d, step, ret, obs, nil)
		res := agent.Execute(d, step, pr)
		agent.Reflect(d, step, pr, res)
		agent.Remember(d, step, obs, nil, pr, res)
		d.Tick()
	}
	return finish(d, tr, clock, endpoint)
}

// RunEndToEnd drives the end-to-end paradigm (Fig. 1c): a single
// vision-language-action model maps each observation directly to an
// action — no memory, communication or reflection modules, and short
// action-token generations.
func RunEndToEnd(d core.Domain, cfg core.AgentConfig, opt Options) Outcome {
	src := rng.New(opt.Seed)
	tr := trace.New()
	clock := simclock.New()
	// The VLA model is monolithic: strip the modular stack.
	cfg.Comms = nil
	cfg.Reflector = nil
	cfg.Memory = core.MemoryConfig{Capacity: 0}
	cfg.Execution = true
	endpoint := opt.newEndpoint(&cfg)
	agent := core.NewAgent(0, cfg, src, clock, tr)
	client := llm.NewClient(cfg.Planner, src.NewStream("vla"), clock, tr)
	if cfg.Backend != nil {
		client.SetBackend(cfg.Backend)
	}

	for !d.Done() {
		step := d.Step()
		obs := agent.Sense(d, step)
		belief := d.BuildBelief(0, obs.Records)
		proposal := d.Propose(0, belief)
		resp := client.Complete(llm.Request{
			Agent: "agent0", Module: trace.Planning, Step: step, Kind: "vla",
			Prompt: planning.Build(planning.Context{
				SystemTokens: 40, TaskTokens: 30, ObsTokens: obs.Tokens,
			}),
			OutTokens: planning.PrimitiveOutTokens,
			Good:      proposal.Good, Corruptions: jointAny(proposal.Corruptions),
			Staleness: belief.Staleness,
		})
		pr := core.PlanResult{Proposal: proposal, Corrupted: resp.Corrupted, UsedLLM: true}
		pr.Subgoal, _ = resp.Decision.(core.Subgoal)
		agent.Execute(d, step, pr)
		d.Tick()
	}
	return finish(d, tr, clock, endpoint)
}

func jointAny(gs []core.Subgoal) []any {
	out := make([]any, len(gs))
	for i, g := range gs {
		out[i] = g
	}
	return out
}
