package bench

import (
	"runtime"
	"testing"
)

// Sequential-vs-parallel regeneration benchmarks. Compare with
//
//	go test ./internal/bench -bench=Regen -benchtime=3x
//
// to see the worker-pool speedup on full-figure workloads; results are
// identical either way (see the parity tests). The parallel variants pin
// the pool to at least 8 workers so they exercise the fan-out path even on
// single-core CI hosts (where wall-clock gains only appear with more CPUs).

func benchConfig(parallelism int) Config {
	return Config{Episodes: 2, Seed: 1, Parallelism: parallelism}
}

func poolSize() int {
	if n := runtime.GOMAXPROCS(0); n > 8 {
		return n
	}
	return 8
}

func BenchmarkFig2RegenSequential(b *testing.B) {
	cfg := benchConfig(1)
	for i := 0; i < b.N; i++ {
		if len(Fig2(cfg)) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig2RegenParallel(b *testing.B) {
	cfg := benchConfig(poolSize())
	for i := 0; i < b.N; i++ {
		if len(Fig2(cfg)) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig7RegenSequential(b *testing.B) {
	cfg := benchConfig(1)
	for i := 0; i < b.N; i++ {
		if len(Fig7(cfg)) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig7RegenParallel(b *testing.B) {
	cfg := benchConfig(poolSize())
	for i := 0; i < b.N; i++ {
		if len(Fig7(cfg)) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkOptimizationsRegenSequential(b *testing.B) {
	cfg := benchConfig(1)
	for i := 0; i < b.N; i++ {
		if len(Optimizations(cfg)) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkOptimizationsRegenParallel(b *testing.B) {
	cfg := benchConfig(poolSize())
	for i := 0; i < b.N; i++ {
		if len(Optimizations(cfg)) == 0 {
			b.Fatal("empty table")
		}
	}
}
