// Optimize: A/B the paper's system-level recommendations on a CoELA
// transport team — plan-guided multi-step execution (Rec. 7),
// planning-then-communication (Rec. 8), and the parallel pipeline
// (Takeaway 6) — using the library's option surface directly.
package main

import (
	"fmt"
	"log"

	"embench"
	"embench/internal/core"
	"embench/internal/systems"
)

func main() {
	base, ok := systems.Get("CoELA")
	if !ok {
		log.Fatal("CoELA missing from suite")
	}

	variants := []struct {
		name string
		mut  func(*core.AgentConfig)
		opt  embench.Options
	}{
		{name: "baseline"},
		{name: "rec7 plan-horizon=3", mut: func(c *core.AgentConfig) { c.PlanHorizon = 3 }},
		{name: "rec8 plan-then-comm", mut: func(c *core.AgentConfig) { c.PlanThenComm = true }},
		{name: "t6 parallel pipeline", opt: embench.Options{Parallel: true}},
	}

	fmt.Printf("%-22s %9s %8s %10s %10s\n", "variant", "success", "steps", "latency", "llm calls")
	for _, v := range variants {
		w := base
		if v.mut != nil {
			v.mut(&w.Config)
		}
		var mins, steps, calls float64
		succ := 0
		const episodes = 3
		for seed := uint64(0); seed < episodes; seed++ {
			opt := v.opt
			opt.Seed = seed
			diff, _ := embench.ParseDifficulty("medium")
			out := w.Run(diff, 0, opt)
			if out.Episode.Success {
				succ++
			}
			mins += out.Episode.SimDuration.Minutes()
			steps += float64(out.Episode.Steps)
			calls += float64(out.Episode.LLMCalls)
		}
		fmt.Printf("%-22s %7d/%d %8.1f %9.1fm %10.0f\n",
			v.name, succ, episodes, steps/episodes, mins/episodes, calls/episodes)
	}
}
