// Package gridhouse implements a multi-room, partially observable
// household gridworld — the suite's stand-in for VirtualHome, C-WAH and the
// TDW-MAT transport challenge (used by CoELA, OLA and DaDu-E in the paper's
// Table II).
//
// Agents search rooms for target objects and carry them to a goal zone.
// Visibility is room-scoped, so beliefs are built from remembered sightings
// and teammate messages; forgetting (small memory) costs re-exploration and
// stale fetches, exactly the mechanism behind the paper's Fig. 3 and Fig. 5
// memory results.
package gridhouse

import (
	"fmt"

	"embench/internal/core"
	"embench/internal/modules/execution"
	"embench/internal/modules/memory"
	"embench/internal/path/astar"
	"embench/internal/rng"
	"embench/internal/world"
)

// Grid geometry: a 25×25 house split into four rooms by walls with doors.
const (
	gridSize = 25
	wallLine = 12
)

// Token sizes for rendered facts.
const (
	objFactTokens   = 14
	agentFactTokens = 10
	roomFactTokens  = 6
	mapFactTokens   = 40
)

// Config parameterizes an episode.
type Config struct {
	Agents     int
	Difficulty world.Difficulty
	Horizon    int  // 0 = difficulty default
	Targets    int  // 0 = difficulty default
	HeavyGrasp bool // grasp-pose synthesis per pick/place (DaDu-E's AnyGrasp)
	Seed       string
}

// defaults returns targets and horizon for a difficulty.
func defaults(d world.Difficulty) (targets, horizon int) {
	switch d {
	case world.Easy:
		return 3, 50
	case world.Medium:
		return 6, 100
	default:
		return 10, 150
	}
}

// object is a transportable target.
type object struct {
	id        int
	cell      world.Cell
	carriedBy int // -1 when on the floor
	delivered bool
}

// agentState is one robot's true state.
type agentState struct {
	cell     world.Cell
	carrying int // object id or -1
}

// House is the environment. It implements core.Domain and
// core.CentralDomain.
type House struct {
	cfg       Config
	grid      *world.Grid
	goalZone  []world.Cell
	objects   []*object
	agents    []agentState
	step      int
	horizon   int
	delivered int
}

// ObjFact is the payload of an object sighting record. Gone marks
// negative evidence: the agent looked where it believed the object was and
// found nothing (a reflection-produced correction).
type ObjFact struct {
	ID        int
	Cell      world.Cell
	Delivered bool
	CarriedBy int
	Gone      bool
}

// AgentFact is the payload of a teammate sighting record.
type AgentFact struct {
	ID       int
	Cell     world.Cell
	Carrying int
}

// ClaimFact is the payload of a "working on object X" intent record.
type ClaimFact struct {
	Agent  int
	Object int
}

// New builds a house episode. Object placement derives from src, so a fixed
// seed yields a fixed task instance.
func New(cfg Config, src *rng.Source) *House {
	if cfg.Agents <= 0 {
		cfg.Agents = 1
	}
	targets, horizon := defaults(cfg.Difficulty)
	if cfg.Targets > 0 {
		targets = cfg.Targets
	}
	if cfg.Horizon > 0 {
		horizon = cfg.Horizon
	}
	h := &House{cfg: cfg, horizon: horizon}
	h.grid = world.NewGrid(gridSize, gridSize)
	// Walls with two doors each.
	for i := 0; i < gridSize; i++ {
		h.grid.SetBlocked(world.C(wallLine, i), true)
		h.grid.SetBlocked(world.C(i, wallLine), true)
	}
	for _, d := range []world.Cell{
		world.C(wallLine, 6), world.C(wallLine, 18),
		world.C(6, wallLine), world.C(18, wallLine),
	} {
		h.grid.SetBlocked(d, false)
	}
	h.goalZone = []world.Cell{world.C(2, 2), world.C(3, 2), world.C(2, 3), world.C(3, 3)}

	st := src.NewStream("gridhouse/" + cfg.Seed)
	used := map[world.Cell]bool{}
	for _, c := range h.goalZone {
		used[c] = true
	}
	for i := 0; i < targets; i++ {
		for {
			c := world.C(st.Pick(gridSize), st.Pick(gridSize))
			// Keep objects out of the goal room's corner so search matters.
			if h.grid.Blocked(c) || used[c] || (c.X < 6 && c.Y < 6) {
				continue
			}
			used[c] = true
			h.objects = append(h.objects, &object{id: i, cell: c, carriedBy: -1})
			break
		}
	}
	for i := 0; i < cfg.Agents; i++ {
		h.agents = append(h.agents, agentState{cell: world.C(4+i%3, 4+i/3), carrying: -1})
	}
	return h
}

// roomOf classifies a cell into one of the four rooms (0..3); wall cells
// fold into the room on their lower side.
func roomOf(c world.Cell) int {
	r := 0
	if c.X > wallLine {
		r++
	}
	if c.Y > wallLine {
		r += 2
	}
	return r
}

// roomCenter is a representative reachable cell per room.
func roomCenter(room int) world.Cell {
	x, y := 6, 6
	if room%2 == 1 {
		x = 18
	}
	if room >= 2 {
		y = 18
	}
	return world.C(x, y)
}

// Name implements core.Domain.
func (h *House) Name() string { return "gridhouse" }

// Agents implements core.Domain.
func (h *House) Agents() int { return len(h.agents) }

// MaxSteps implements core.Domain.
func (h *House) MaxSteps() int { return h.horizon }

// Step implements core.Domain.
func (h *House) Step() int { return h.step }

// Done implements core.Domain.
func (h *House) Done() bool { return h.Success() || h.step >= h.horizon }

// Success implements core.Domain.
func (h *House) Success() bool { return h.delivered == len(h.objects) }

// Progress implements core.Domain.
func (h *House) Progress() float64 {
	if len(h.objects) == 0 {
		return 1
	}
	return float64(h.delivered) / float64(len(h.objects))
}

// AgentCell exposes an agent's true position (used in tests and examples).
func (h *House) AgentCell(agent int) world.Cell { return h.agents[agent].cell }

// Carrying exposes an agent's carried object id, -1 if none.
func (h *House) Carrying(agent int) int { return h.agents[agent].carrying }

// Delivered reports how many targets reached the goal zone.
func (h *House) Delivered() int { return h.delivered }

// Objects reports the total target count.
func (h *House) Objects() int { return len(h.objects) }

// StaticRecords implements core.Domain: the house layout is known a priori.
func (h *House) StaticRecords() []memory.Record {
	recs := make([]memory.Record, 0, 4)
	for r := 0; r < 4; r++ {
		recs = append(recs, memory.Record{
			Kind: memory.Observation, Key: fmt.Sprintf("map:room:%d", r),
			Payload: r, Tokens: mapFactTokens, Static: true,
		})
	}
	return recs
}

// Observe implements core.Domain: room-scoped visibility.
func (h *House) Observe(agent int) core.Observation {
	a := h.agents[agent]
	room := roomOf(a.cell)
	obs := core.Observation{}
	add := func(rec memory.Record) {
		obs.Records = append(obs.Records, rec)
		obs.Tokens += rec.Tokens
	}
	add(memory.Record{
		Step: h.step, Kind: memory.Observation, Key: fmt.Sprintf("room:%d", room),
		Payload: room, Tokens: roomFactTokens,
	})
	for _, o := range h.objects {
		visible := roomOf(o.cell) == room && o.carriedBy == -1
		if o.carriedBy == agent {
			visible = true
		}
		if !visible {
			continue
		}
		obs.Entities++
		add(memory.Record{
			Step: h.step, Kind: memory.Observation, Key: fmt.Sprintf("obj:%d", o.id),
			Payload: ObjFact{ID: o.id, Cell: o.cell, Delivered: o.delivered, CarriedBy: o.carriedBy},
			Tokens:  objFactTokens,
		})
	}
	for i, other := range h.agents {
		if i == agent || roomOf(other.cell) != room {
			continue
		}
		obs.Entities++
		add(memory.Record{
			Step: h.step, Kind: memory.Observation, Key: fmt.Sprintf("agent:%d", i),
			Payload: AgentFact{ID: i, Cell: other.cell, Carrying: other.carrying},
			Tokens:  agentFactTokens, Routine: true,
		})
	}
	return obs
}

// belief is the domain-specific belief payload.
type belief struct {
	objects map[int]ObjFact // latest believed object facts
	objStep map[int]int     // step of the latest sighting
	visited map[int]int     // room -> latest visit step
	claims  map[int]int     // agent -> object currently claimed
}

// BuildBelief implements core.Domain.
func (h *House) BuildBelief(agent int, recs []memory.Record) core.Belief {
	b := belief{
		objects: map[int]ObjFact{},
		objStep: map[int]int{},
		visited: map[int]int{},
		claims:  map[int]int{},
	}
	for _, r := range recs {
		switch p := r.Payload.(type) {
		case ObjFact:
			if r.Step >= b.objStep[p.ID] {
				if p.Gone {
					delete(b.objects, p.ID)
				} else {
					b.objects[p.ID] = p
				}
				b.objStep[p.ID] = r.Step
			}
		case int:
			// Room visit or static map fact.
			if cur, ok := b.visited[p]; !ok || r.Step > cur {
				if r.Static {
					continue // map knowledge, not a visit
				}
				b.visited[p] = r.Step
			}
		case ClaimFact:
			b.claims[p.Agent] = p.Object
		}
	}
	// Staleness: fraction of believed-fetchable objects that are actually
	// gone (delivered or picked up by someone else since last seen).
	known, stale := 0, 0
	//detlint:allow maprange counting loop; only totals leave it
	for id, f := range b.objects {
		if f.Delivered || (f.CarriedBy != -1 && f.CarriedBy != agent) {
			continue
		}
		known++
		truth := h.objects[id]
		if truth.delivered || (truth.carriedBy != -1 && truth.carriedBy != agent) || truth.cell != f.Cell {
			stale++
		}
	}
	st := 0.0
	if known > 0 {
		st = float64(stale) / float64(known)
	}
	return core.Belief{Payload: b, Staleness: st}
}

// Subgoal types.

// Fetch directs the agent to pick up an object at its believed location.
type Fetch struct {
	Obj  int
	Cell world.Cell
}

// ID implements core.Subgoal.
func (f Fetch) ID() string { return fmt.Sprintf("fetch:%d", f.Obj) }

// Describe implements core.Subgoal.
func (f Fetch) Describe() string { return fmt.Sprintf("fetch object %d at %v", f.Obj, f.Cell) }

// Deliver directs the agent to carry its object to the goal zone.
type Deliver struct{}

// ID implements core.Subgoal.
func (Deliver) ID() string { return "deliver" }

// Describe implements core.Subgoal.
func (Deliver) Describe() string { return "deliver carried object to goal zone" }

// Explore directs the agent to sweep a room.
type Explore struct{ Room int }

// ID implements core.Subgoal.
func (e Explore) ID() string { return fmt.Sprintf("explore:%d", e.Room) }

// Describe implements core.Subgoal.
func (e Explore) Describe() string { return fmt.Sprintf("explore room %d", e.Room) }

// Propose implements core.Domain: the expert decision for one agent's
// belief, with the corruptions a weaker model plausibly produces.
func (h *House) Propose(agent int, bel core.Belief) core.Proposal {
	b, _ := bel.Payload.(belief)
	a := h.agents[agent]
	prop := core.Proposal{Complexity: core.DecentralizedComplexity(len(h.agents))}

	if a.carrying != -1 {
		prop.Good = Deliver{}
		prop.Corruptions = h.corruptions(agent, b, -1)
		return prop
	}
	// Nearest believed-available object not claimed by a teammate; ties
	// break toward the lower id so the pick never depends on map order.
	best, bestDist := -1, 1<<30
	var bestCell world.Cell
	for _, id := range world.SortedKeys(b.objects) {
		f := b.objects[id]
		if f.Delivered || (f.CarriedBy != -1 && f.CarriedBy != agent) {
			continue
		}
		if claimedByOther(b.claims, agent, id) {
			continue
		}
		if d := world.Manhattan(a.cell, f.Cell); d < bestDist {
			best, bestDist, bestCell = id, d, f.Cell
		}
	}
	if best >= 0 {
		prop.Good = Fetch{Obj: best, Cell: bestCell}
		prop.Corruptions = h.corruptions(agent, b, best)
		return prop
	}
	// Nothing known: explore the stalest room.
	room := h.exploreTarget(agent, b)
	prop.Good = Explore{Room: room}
	prop.Corruptions = h.corruptions(agent, b, -1)
	return prop
}

// exploreTarget picks the never-visited or least-recently-visited room,
// preferring proximity on ties.
func (h *House) exploreTarget(agent int, b belief) int {
	a := h.agents[agent]
	bestRoom, bestScore := 0, 1<<30
	for r := 0; r < 4; r++ {
		visitStep, seen := b.visited[r]
		score := 0
		if seen {
			score = 1000 + visitStep*10
		}
		score += world.Manhattan(a.cell, roomCenter(r)) / 4
		if score < bestScore {
			bestRoom, bestScore = r, score
		}
	}
	return bestRoom
}

// corruptions enumerates plausible wrong decisions given the belief:
// fetching a finished or teammate-claimed object, re-exploring a fresh
// room, or delivering empty-handed.
func (h *House) corruptions(agent int, b belief, goodObj int) []core.Subgoal {
	var out []core.Subgoal
	ids := world.SortedKeys(b.objects)
	for _, id := range ids {
		if id == goodObj {
			continue
		}
		if f := b.objects[id]; f.Delivered {
			out = append(out, Fetch{Obj: id, Cell: f.Cell})
			break
		}
	}
	for _, id := range ids {
		if f := b.objects[id]; id != goodObj && claimedByOther(b.claims, agent, id) && !f.Delivered {
			out = append(out, Fetch{Obj: id, Cell: f.Cell})
			break
		}
	}
	// Re-explore the most recently visited room (wasted sweep); ties break
	// toward the lower room index.
	freshRoom, freshStep := -1, -1
	for _, r := range world.SortedKeys(b.visited) {
		if s := b.visited[r]; s > freshStep {
			freshRoom, freshStep = r, s
		}
	}
	if freshRoom >= 0 {
		out = append(out, Explore{Room: freshRoom})
	}
	if h.agents[agent].carrying == -1 {
		out = append(out, Deliver{})
	}
	if len(out) == 0 {
		out = append(out, Explore{Room: roomOf(h.agents[agent].cell)})
	}
	return out
}

// roomsByStaleness orders the four rooms for exploration: never-visited
// rooms first, then by oldest visit.
func roomsByStaleness(b belief) [4]int {
	score := func(r int) int {
		if step, ok := b.visited[r]; ok {
			return step + 1
		}
		return 0
	}
	rooms := [4]int{0, 1, 2, 3}
	for i := 1; i < 4; i++ {
		for j := i; j > 0 && score(rooms[j]) < score(rooms[j-1]); j-- {
			rooms[j], rooms[j-1] = rooms[j-1], rooms[j]
		}
	}
	return rooms
}

func claimedByOther(claims map[int]int, agent, obj int) bool {
	//detlint:allow maprange existence check; any order yields the same answer
	for a, o := range claims {
		if a != agent && o == obj {
			return true
		}
	}
	return false
}

// Execute implements core.Domain.
func (h *House) Execute(agent int, g core.Subgoal) execution.Result {
	switch sg := g.(type) {
	case Fetch:
		return h.execFetch(agent, sg)
	case Deliver:
		return h.execDeliver(agent)
	case Explore:
		return h.execExplore(agent, sg)
	case nil:
		return execution.Result{Note: "idle"}
	default:
		return execution.Result{Note: "unknown subgoal"}
	}
}

func (h *House) execFetch(agent int, sg Fetch) execution.Result {
	a := &h.agents[agent]
	res := h.moveTo(agent, sg.Cell)
	if !res.Achieved {
		return res
	}
	res.Effort.Primitives++ // grasp attempt
	if h.cfg.HeavyGrasp {
		res.Effort.GraspOps++
	}
	if sg.Obj < 0 || sg.Obj >= len(h.objects) {
		res.Achieved = false
		res.Note = "no such object"
		return res
	}
	o := h.objects[sg.Obj]
	if o.delivered || o.carriedBy != -1 || o.cell != a.cell || a.carrying != -1 {
		res.Achieved = false
		res.Note = "object not available here"
		return res
	}
	o.carriedBy = agent
	a.carrying = o.id
	res.Achieved = true
	return res
}

func (h *House) execDeliver(agent int) execution.Result {
	a := &h.agents[agent]
	target := h.nearestGoalCell(a.cell)
	res := h.moveTo(agent, target)
	if !res.Achieved {
		return res
	}
	res.Effort.Primitives++ // place attempt
	if h.cfg.HeavyGrasp {
		res.Effort.GraspOps++
	}
	if a.carrying == -1 {
		res.Achieved = false
		res.Note = "nothing to deliver"
		return res
	}
	o := h.objects[a.carrying]
	o.carriedBy = -1
	o.cell = a.cell
	o.delivered = true
	h.delivered++
	a.carrying = -1
	res.Achieved = true
	return res
}

func (h *House) execExplore(agent int, sg Explore) execution.Result {
	if sg.Room < 0 || sg.Room > 3 {
		return execution.Result{Note: "no such room"}
	}
	res := h.moveTo(agent, roomCenter(sg.Room))
	res.Effort.Primitives++ // sweep scan
	return res
}

// moveTo walks the agent along an A* path, charging planner and actuation
// effort. Carried objects follow the agent.
func (h *House) moveTo(agent int, target world.Cell) execution.Result {
	a := &h.agents[agent]
	plan := astar.Plan(h.grid, a.cell, target)
	res := execution.Result{Effort: execution.Effort{AStarExpanded: plan.Expanded}}
	if !plan.Found {
		res.Note = "unreachable"
		return res
	}
	res.Effort.Primitives += len(plan.Path) - 1
	a.cell = target
	if a.carrying != -1 {
		h.objects[a.carrying].cell = target
	}
	res.Achieved = true
	return res
}

func (h *House) nearestGoalCell(from world.Cell) world.Cell {
	best, bestD := h.goalZone[0], 1<<30
	for _, c := range h.goalZone {
		if d := world.Manhattan(from, c); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Tick implements core.Domain.
func (h *House) Tick() { h.step++ }

// ProposeJoint implements core.CentralDomain: a greedy joint assignment
// over the merged belief — carriers deliver, idle agents take the nearest
// unassigned objects, leftovers explore distinct rooms.
func (h *House) ProposeJoint(bel core.Belief) core.Proposal {
	b, _ := bel.Payload.(belief)
	n := len(h.agents)
	good := &core.Joint{Assign: map[int]core.Subgoal{}}
	taken := map[int]bool{}
	staleRooms := roomsByStaleness(b)
	exploreNext := 0
	for i := 0; i < n; i++ {
		if h.agents[i].carrying != -1 {
			good.Assign[i] = Deliver{}
			continue
		}
		best, bestDist := -1, 1<<30
		var bestCell world.Cell
		for _, id := range world.SortedKeys(b.objects) {
			f := b.objects[id]
			if f.Delivered || f.CarriedBy != -1 || taken[id] {
				continue
			}
			if d := world.Manhattan(h.agents[i].cell, f.Cell); d < bestDist {
				best, bestDist, bestCell = id, d, f.Cell
			}
		}
		if best >= 0 {
			taken[best] = true
			good.Assign[i] = Fetch{Obj: best, Cell: bestCell}
			continue
		}
		good.Assign[i] = Explore{Room: staleRooms[exploreNext%4]}
		exploreNext++
	}
	// Corruptions: collapse the assignment onto one object (duplicated
	// work), or send everyone exploring (ignores known objects).
	dup := &core.Joint{Assign: map[int]core.Subgoal{}}
	allExplore := &core.Joint{Assign: map[int]core.Subgoal{}}
	var anyFetch core.Subgoal
	for i := 0; i < n; i++ {
		if f, ok := good.Assign[i].(Fetch); ok {
			anyFetch = f
			break
		}
	}
	for i := 0; i < n; i++ {
		if anyFetch != nil {
			dup.Assign[i] = anyFetch
		} else {
			dup.Assign[i] = Explore{Room: 0}
		}
		allExplore.Assign[i] = Explore{Room: i % 4}
	}
	return core.Proposal{
		Good:        good,
		Corruptions: []core.Subgoal{dup, allExplore},
		Complexity:  core.CentralizedComplexity(n),
	}
}

// ClaimRecord implements core.Claimer: a fetch claims its object; any
// other decision clears the agent's claim.
func (h *House) ClaimRecord(agent int, g core.Subgoal) (memory.Record, bool) {
	obj := -1
	if f, ok := g.(Fetch); ok {
		obj = f.Obj
	}
	return memory.Record{
		Kind: memory.Action, Key: fmt.Sprintf("claim:%d", agent),
		Payload: ClaimFact{Agent: agent, Object: obj}, Tokens: 8,
	}, true
}

// CorrectionRecords implements core.Corrector: a fetch that found nothing
// yields negative evidence ("the object is gone from that cell"), which
// removes the stale sighting from future beliefs.
func (h *House) CorrectionRecords(agent int, g core.Subgoal, res execution.Result) []memory.Record {
	f, ok := g.(Fetch)
	if !ok || res.Achieved {
		return nil
	}
	return []memory.Record{{
		Step: h.step, Kind: memory.Action, Key: fmt.Sprintf("obj:%d", f.Obj),
		Payload: ObjFact{ID: f.Obj, Cell: f.Cell, Gone: true}, Tokens: 8,
	}}
}

var (
	_ core.Domain        = (*House)(nil)
	_ core.CentralDomain = (*House)(nil)
	_ core.Claimer       = (*House)(nil)
	_ core.Corrector     = (*House)(nil)
)
