package serve

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"embench/internal/llm"
	"embench/internal/rng"
)

// fleetScript drives a fleet of scripted episode goroutines: episode e
// issues calls[e] in order (each arrival already stamped) and records what
// it was served. Returns per-episode served slices.
func fleetScript(cfg Config, calls [][]llm.Call) [][]llm.Served {
	f := NewFleet(cfg, len(calls))
	out := make([][]llm.Served, len(calls))
	var wg sync.WaitGroup
	for e := range calls {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			c := f.Client(e)
			defer c.Finish()
			for _, call := range calls[e] {
				out[e] = append(out[e], c.Serve(call))
			}
		}(e)
	}
	wg.Wait()
	return out
}

// scriptCalls builds `eps` episodes of `steps` staggered planning-sized
// calls each.
func scriptCalls(eps, steps int, period, stagger time.Duration) [][]llm.Call {
	calls := make([][]llm.Call, eps)
	for e := 0; e < eps; e++ {
		for s := 0; s < steps; s++ {
			calls[e] = append(calls[e], llm.Call{
				Agent:     fmt.Sprintf("e%d", e),
				Arrival:   time.Duration(s)*period + time.Duration(e)*stagger,
				Prompt:    sharedPrompt(fmt.Sprintf("e%d", e), 40+10*s),
				OutTokens: 50,
			})
		}
	}
	return calls
}

func TestFleetRerunByteIdentical(t *testing.T) {
	cfg := Config{Profile: noJitter, Replicas: 2, MaxBatch: 4,
		MaxWait: time.Second, CacheEntries: 128}
	calls := scriptCalls(4, 6, 8*time.Second, 300*time.Millisecond)
	a := fleetScript(cfg, calls)
	for i := 0; i < 10; i++ {
		if b := fleetScript(cfg, calls); !reflect.DeepEqual(a, b) {
			t.Fatalf("fleet rerun %d diverged despite identical call scripts", i)
		}
	}
}

func TestFleetMergesByGlobalArrivalOrder(t *testing.T) {
	// Episode 1's first call arrives BEFORE episode 0's, so it must be
	// admitted first — episode 0's call queues behind it — no matter that
	// goroutine scheduling may submit them in any wall-clock order.
	cfg := Config{Profile: noJitter, Replicas: 1}
	calls := [][]llm.Call{
		{{Agent: "e0", Arrival: 2 * time.Second, Prompt: sharedPrompt("e0", 20), OutTokens: 50}},
		{{Agent: "e1", Arrival: 0, Prompt: sharedPrompt("e1", 20), OutTokens: 50}},
	}
	out := fleetScript(cfg, calls)
	if out[1][0].QueueWait != 0 {
		t.Fatalf("earlier-arriving episode 1 should not queue: %+v", out[1][0])
	}
	if out[0][0].QueueWait <= 0 {
		t.Fatalf("later-arriving episode 0 should queue behind episode 1: %+v", out[0][0])
	}
}

func TestFleetTieBreaksOnEpisodeID(t *testing.T) {
	cfg := Config{Profile: noJitter, Replicas: 1}
	calls := [][]llm.Call{
		{{Agent: "e0", Arrival: time.Second, Prompt: sharedPrompt("e0", 20), OutTokens: 50}},
		{{Agent: "e1", Arrival: time.Second, Prompt: sharedPrompt("e1", 20), OutTokens: 50}},
	}
	for i := 0; i < 20; i++ {
		out := fleetScript(cfg, calls)
		if out[0][0].QueueWait != 0 || out[1][0].QueueWait <= 0 {
			t.Fatalf("equal arrivals must admit the lower episode id first: %+v / %+v",
				out[0][0], out[1][0])
		}
	}
}

func TestFleetFinishUnblocksOthers(t *testing.T) {
	// Episode 1 makes no calls at all; if Finish didn't detach it, episode
	// 0's first Serve would block forever.
	cfg := Config{Profile: noJitter, Replicas: 1}
	calls := [][]llm.Call{
		{{Agent: "e0", Arrival: 0, Prompt: sharedPrompt("e0", 20), OutTokens: 50}},
		nil,
	}
	done := make(chan [][]llm.Served, 1)
	go func() { done <- fleetScript(cfg, calls) }()
	select {
	case out := <-done:
		if len(out[0]) != 1 {
			t.Fatalf("episode 0 served %d calls, want 1", len(out[0]))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fleet deadlocked: Finish did not detach the idle episode")
	}
}

func TestFleetCrossEpisodeCacheAndStats(t *testing.T) {
	// Two episodes share the system/task preamble: the second stream's
	// requests must hit the prefix the first one warmed — sharing that a
	// per-episode endpoint can never see.
	cfg := Config{Profile: noJitter, Replicas: 1, CacheEntries: 128}
	calls := scriptCalls(2, 4, 10*time.Second, 500*time.Millisecond)
	f := NewFleet(cfg, 2)
	var wg sync.WaitGroup
	for e := 0; e < 2; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			c := f.Client(e)
			defer c.Finish()
			for _, call := range calls[e] {
				c.Serve(call)
			}
		}(e)
	}
	wg.Wait()
	total := f.Stats()
	if total.Requests != 8 {
		t.Fatalf("endpoint served %d requests, want 8", total.Requests)
	}
	if total.CacheHitRate() <= 0 {
		t.Fatal("cross-episode prefix sharing should produce cache hits")
	}
	s0, s1 := f.Client(0).ServingStats(), f.Client(1).ServingStats()
	if s0.Requests != 4 || s1.Requests != 4 {
		t.Fatalf("per-episode shares = %d/%d requests, want 4/4", s0.Requests, s1.Requests)
	}
	if s1.CachedTokens == 0 {
		t.Fatal("episode 1 should hit prefixes episode 0 warmed")
	}
	if got := s0.PrefillTokens + s1.PrefillTokens; got != total.PrefillTokens {
		t.Fatalf("episode shares should cover the endpoint's prefill: %d vs %d",
			got, total.PrefillTokens)
	}
}

func TestFleetServeBatchMergesAsUnit(t *testing.T) {
	// Episode 0 submits an explicit two-call phase batch keyed by its last
	// member (arrival 3s); episode 1's single call at 1s must be admitted
	// first even though the batch's first member nominally arrived at 0.
	cfg := Config{Profile: noJitter, Replicas: 1, MaxBatch: 4, MaxWait: time.Second}
	f := NewFleet(cfg, 2)
	var wg sync.WaitGroup
	var batch []llm.Served
	var single llm.Served
	wg.Add(2)
	go func() {
		defer wg.Done()
		c := f.Client(0)
		defer c.Finish()
		batch = c.ServeBatch([]llm.Call{
			{Agent: "e0a", Arrival: 0, Prompt: sharedPrompt("e0a", 20), OutTokens: 50},
			{Agent: "e0b", Arrival: 3 * time.Second, Prompt: sharedPrompt("e0b", 20), OutTokens: 50},
		})
	}()
	go func() {
		defer wg.Done()
		c := f.Client(1)
		defer c.Finish()
		single = c.Serve(llm.Call{Agent: "e1", Arrival: time.Second,
			Prompt: sharedPrompt("e1", 20), OutTokens: 50})
	}()
	wg.Wait()
	if single.QueueWait != 0 {
		t.Fatalf("episode 1's earlier call should be admitted before the batch: %+v", single)
	}
	if len(batch) != 2 || batch[0].BatchSize != 2 || batch[1].BatchSize != 2 {
		t.Fatalf("explicit batch should serve as one unit: %+v", batch)
	}
	if batch[1].QueueWait <= 0 {
		t.Fatal("batch should queue behind episode 1's in-flight request")
	}
}

// fleetScriptOn is fleetScript against a caller-built fleet (heap, linear
// or sharded via the client accessor), mixing explicit phase batches in:
// an episode whose step index hits batchEvery submits that call and the
// next as one ServeBatch unit. Returns per-episode served slices flattened
// in submission order.
func fleetScriptOn(client func(int) *FleetClient, calls [][]llm.Call, batchEvery int) [][]llm.Served {
	out := make([][]llm.Served, len(calls))
	var wg sync.WaitGroup
	for e := range calls {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			c := client(e)
			defer c.Finish()
			for s := 0; s < len(calls[e]); {
				if batchEvery > 0 && s%batchEvery == batchEvery-1 && s+1 < len(calls[e]) {
					out[e] = append(out[e], c.ServeBatch(calls[e][s:s+2])...)
					s += 2
					continue
				}
				out[e] = append(out[e], c.Serve(calls[e][s]))
				s++
			}
		}(e)
	}
	wg.Wait()
	return out
}

// TestFleetDifferentialHeapVsLinear is the determinism contract of the
// heap-merge rewrite: on randomized workloads — random fleet sizes,
// arrival ties, explicit batches, every routing policy — the O(log N)
// heap merge with targeted wakeups must admit byte-for-byte the same
// order, results and endpoint totals as the seed linear-scan/broadcast
// reference it replaced.
func TestFleetDifferentialHeapVsLinear(t *testing.T) {
	routings := []RoutingPolicy{RouteLeastLoaded, RouteCacheAffinity, RouteShortestCompletion}
	for trial := 0; trial < 12; trial++ {
		r := rng.New(uint64(trial + 1)).NewStream("fleet/differential")
		eps := 2 + r.Intn(7)
		steps := 2 + r.Intn(6)
		cfg := Config{
			Profile:  noJitter,
			Replicas: 1 + r.Intn(3),
			Routing:  routings[r.Intn(len(routings))],
			MaxBatch: 1 + r.Intn(4),
			MaxWait:  time.Duration(r.Intn(3)) * time.Second,
		}
		if r.Intn(2) == 0 {
			cfg.CacheEntries = 64
		}
		calls := make([][]llm.Call, eps)
		for e := 0; e < eps; e++ {
			for s := 0; s < steps; s++ {
				// Coarse arrival grid so cross-episode ties actually occur
				// and the (arrival, client id) tie-break is exercised.
				arrive := time.Duration(r.Intn(4*steps)) * time.Second
				calls[e] = append(calls[e], llm.Call{
					Agent:     fmt.Sprintf("e%d", e),
					Arrival:   arrive,
					Prompt:    sharedPrompt(fmt.Sprintf("e%d", e), 20+10*r.Intn(5)),
					OutTokens: 30 + 10*r.Intn(4),
				})
			}
		}
		batchEvery := r.Intn(4) // 0 = no explicit batches this trial
		heapF := NewFleet(cfg, eps)
		linF := NewLinearFleet(cfg, eps)
		got := fleetScriptOn(heapF.Client, calls, batchEvery)
		want := fleetScriptOn(linF.Client, calls, batchEvery)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (eps=%d steps=%d cfg=%+v batchEvery=%d): heap merge diverged from linear reference\nheap   %+v\nlinear %+v",
				trial, eps, steps, cfg, batchEvery, got, want)
		}
		if hs, ls := heapF.Stats(), linF.Stats(); !reflect.DeepEqual(hs, ls) {
			t.Fatalf("trial %d: endpoint totals diverged: heap %+v linear %+v", trial, hs, ls)
		}
	}
}

// countingGate is a test Gate that tracks the peak number of concurrently
// held slots.
type countingGate struct {
	sem  chan struct{}
	mu   sync.Mutex
	held int
	peak int
}

func newCountingGate(slots int) *countingGate {
	return &countingGate{sem: make(chan struct{}, slots)}
}

func (g *countingGate) Acquire() {
	g.sem <- struct{}{}
	g.mu.Lock()
	g.held++
	if g.held > g.peak {
		g.peak = g.held
	}
	g.mu.Unlock()
}

func (g *countingGate) Release() {
	g.mu.Lock()
	g.held--
	g.mu.Unlock()
	<-g.sem
}

func (g *countingGate) Peak() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}

// TestFleetGateBoundsActiveEpisodes runs a fleet far larger than its gate
// under the runner's activation protocol (slot held while executing,
// released while parked in the merge) and checks three things: no
// deadlock, results identical to the ungated run, and the active-episode
// bound actually held.
func TestFleetGateBoundsActiveEpisodes(t *testing.T) {
	const eps, slots = 48, 3
	cfg := Config{Profile: noJitter, Replicas: 2, MaxBatch: 4,
		MaxWait: time.Second, CacheEntries: 128}
	calls := scriptCalls(eps, 5, 8*time.Second, 100*time.Millisecond)

	want := fleetScript(cfg, calls)

	f := NewFleet(cfg, eps)
	gate := newCountingGate(slots)
	f.SetGate(gate)
	got := make([][]llm.Served, eps)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for e := 0; e < eps; e++ {
			wg.Add(1)
			go func(e int) {
				defer wg.Done()
				gate.Acquire()
				defer gate.Release()
				c := f.Client(e)
				defer c.Finish()
				for _, call := range calls[e] {
					got[e] = append(got[e], c.Serve(call))
				}
			}(e)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("gated fleet deadlocked")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("activation gating changed fleet results")
	}
	if p := gate.Peak(); p > slots {
		t.Fatalf("gate admitted %d concurrent episodes, cap %d", p, slots)
	}
}

// BenchmarkFleet is the cross-episode merge perf smoke: 4 scripted
// episodes × 16 calls through a shared two-replica endpoint.
func BenchmarkFleet(b *testing.B) {
	cfg := Config{Profile: noJitter, Replicas: 2, MaxBatch: 4,
		MaxWait: time.Second, CacheEntries: 128}
	calls := scriptCalls(4, 16, 8*time.Second, 300*time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fleetScript(cfg, calls)
	}
}

// BenchmarkFleetAdmission measures the merge hot path across fleet sizes:
// N scripted episodes, a bounded total call budget so the per-admission
// cost — heap pop + targeted wakeup vs linear scan + broadcast — is what
// scales, not the workload. The heap/linear pair at each N is the
// admission-complexity comparison fig10 reports at full scale.
func BenchmarkFleetAdmission(b *testing.B) {
	cfg := Config{Profile: noJitter, Replicas: 2, MaxBatch: 4,
		MaxWait: time.Second, CacheEntries: 128}
	for _, n := range []int{8, 256, 2048} {
		steps := 8192 / n
		if steps < 2 {
			steps = 2
		}
		calls := scriptCalls(n, steps, 8*time.Second, 50*time.Millisecond)
		b.Run(fmt.Sprintf("heap/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f := NewFleet(cfg, n)
				fleetScriptOn(f.Client, calls, 0)
			}
		})
		if n <= 256 {
			// The linear reference at 2048 episodes costs minutes per op
			// (the broadcast storm is the point); bench it only where it
			// terminates promptly.
			b.Run(fmt.Sprintf("linear/N=%d", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					f := NewLinearFleet(cfg, n)
					fleetScriptOn(f.Client, calls, 0)
				}
			})
		}
	}
}
