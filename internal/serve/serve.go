// Package serve simulates a shared LLM serving endpoint: the substrate many
// embodied agents contend for when they stop getting a dedicated model each
// (paper Fig. 6/7 and Recs. 1–3).
//
// An Endpoint owns N replicas of one model deployment, an admission queue,
// a continuous-batching scheduler and a per-replica prefix/KV cache.
// Requests carry submission timestamps from per-agent virtual clocks; the
// endpoint orders them on a global virtual timeline and returns completion
// times, so queueing delay, batching gains and cache hit rates all emerge
// deterministically from the root seed — no wall clock, no goroutines.
//
// # Modes
//
// Three modes share the same pricing model (llm.Profile.BatchServiceTime,
// the per-replica prefix caches, and one admission helper — see
// admission.go — so a given request sequence costs the same whichever
// path carries it):
//
//   - Closed loop: Endpoint implements llm.Backend, so live episodes route
//     every client call through the shared endpoint. Requests are admitted
//     in submission order; a request arriving within the batching window of
//     a replica's in-flight batch joins it (continuous batching), otherwise
//     it starts a new batch on the replica the routing policy picks.
//     Explicitly aggregated step-phase batches (llm.BatchBackend, paper
//     Rec. 1) launch as one batch via ServeBatch.
//   - Open loop: Replay takes a full request trace (arrival offsets, prompt
//     structure, generation lengths) and runs a discrete-event loop over
//     it, forming batches of up to MaxBatch that launch when full, when the
//     oldest queued request has waited MaxWait, or when no further arrivals
//     are pending. This is the classic serving-benchmark shape: fixed
//     arrival schedule, swept scheduler policy.
//   - Fleet: a Fleet wraps one Endpoint and attaches several concurrently
//     running episodes to it. Each episode talks to its own FleetClient
//     (an llm.Backend); the fleet merges the episodes' submission streams
//     with a conservative rule — a request is only admitted once every
//     still-running episode has revealed its next request, earliest
//     revealed (arrival, episode) first — so cross-episode contention is
//     simulated deterministically no matter how the episode goroutines
//     are scheduled.
//
// # Routing
//
// Multi-replica endpoints place each new batch by a RoutingPolicy:
// least-loaded (earliest-free replica), cache-affinity (replica with the
// warmest matching prefix cache) or shortest-expected-completion (queueing
// plus cache-discounted service, the latency-aware blend). Caches are per
// replica, so routing decides not just load spread but which prefixes stay
// hot where.
//
// # Determinism
//
// Everything in this package is driven by virtual time and breaks ties on
// submission order or replica index. The only concurrency is Fleet's, and
// it is barrier-synchronized on virtual arrivals: the merged admission
// order is a pure function of the episodes' request timelines. See
// docs/ARCHITECTURE.md for the clock model.
package serve

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"embench/internal/llm"
)

// Config describes one shared serving deployment.
type Config struct {
	// Profile prices prefill/decode/overhead for every replica. A zero
	// profile (Name == "") is filled in by the episode runner with the
	// workload's planner profile.
	Profile llm.Profile
	// Replicas is the number of identical model instances behind the
	// endpoint (default 1).
	Replicas int
	// Routing places each new batch on a replica: least-loaded (default),
	// cache-affinity or shortest-completion. See RoutingPolicy.
	Routing RoutingPolicy
	// MaxBatch caps sequences per continuous batch; <= 1 disables batching.
	// Explicit step-phase batches (ServeBatch) are not split by MaxBatch —
	// client-side aggregation supersedes the server's join cap.
	MaxBatch int
	// MaxWait is the batching window: in open-loop replay, how long the
	// oldest queued request may wait for companions before its batch
	// launches; in closed-loop serving, how far after a batch's start a new
	// arrival may still join it. Zero means "no waiting" — batches only
	// coalesce requests that are already simultaneous.
	MaxWait time.Duration
	// CacheTokens sizes each replica's prefix cache in TOKENS: the live
	// cached token footprint — the KV memory a real deployment pins — may
	// not exceed this budget; least-recently-touched prefix chains are
	// evicted (cascading to their extensions) to stay under it. 0 means no
	// token budget. A token budget also makes cache-aware routing
	// capacity-aware: placement charges the warm tokens an insertion would
	// evict (see RoutingPolicy), which is what keeps cache-affinity from
	// collapsing a shared-preamble workload onto one replica.
	CacheTokens int
	// CacheEntries is the deprecated entry-count fallback to CacheTokens:
	// it bounds each replica's prefix cache by the NUMBER of cached
	// section-prefix entries (LRU), not by the tokens they pin.
	//
	// Deprecated: prefer CacheTokens. An entry count ignores how many
	// tokens each entry pins, so capacity costs nothing and routing cannot
	// see memory pressure. The field is kept only for byte-compatible
	// reproduction of the fig8–fig10 reports, which predate token budgets.
	// Both budgets may be set (each is enforced independently); caching is
	// disabled only when both are 0.
	CacheEntries int
	// Identity selects how cached prefixes are keyed: IdentityShape
	// (default — (section name, token count) chains) or IdentityContent
	// (chained prompt.Section.Digest content hashes, so same-shape
	// different-content prompts no longer falsely share and reconverged
	// histories re-share). See CacheIdentity.
	Identity CacheIdentity
	// CachedPrefillFrac is the fraction of prefill cost still paid for
	// cache-hit tokens (default 0.1 — KV reuse is cheap but not free).
	CachedPrefillFrac float64
	// Autoscale, when enabled (Interval > 0), scales the active replica
	// count within [Min, Max] on a virtual-time evaluation clock; Replicas
	// is the pool ceiling. The zero value keeps every replica active —
	// byte-identical to fixed-replica serving. See Autoscale.
	Autoscale Autoscale
	// Prefill and Decode, when both have Replicas > 0, disaggregate the
	// endpoint into two stage pools: every request runs its prompt
	// processing on the prefill pool, pays the KV Handoff, then queues on
	// the decode pool for token generation. Each pool batches and caches
	// independently (decode-pool caches are forced off — there is no
	// prompt left to share). Replicas must stay 0 when pools are set: the
	// monolithic knobs describe a deployment that no longer exists. Both
	// zero (the default) keeps the single-pool endpoint, byte-identical
	// to configs that predate disaggregation.
	Prefill PoolConfig
	// Decode configures the token-generation pool; see Prefill. Decode
	// admission orders queued requests by (Priority, handoff arrival,
	// submission index), so Request.Priority is honored where decode
	// contention actually forms.
	Decode PoolConfig
	// Handoff prices the prefill→decode KV transfer. The zero value is a
	// free, instantaneous handoff.
	Handoff Handoff
	// Faults injects deterministic replica failures: seeded per-replica
	// crash-restart (MTBF/MTTR) and straggler (service-multiplier) processes,
	// independent of traffic. The zero value disables injection and keeps
	// every serving path byte-identical to fault-free builds. See Faults.
	Faults Faults
	// Retry, Hedge and Shed are the client-resilience policies open-loop
	// replay applies around the endpoint: deadline-triggered seeded-backoff
	// retries, duplicate hedged attempts (first completion wins), and
	// priority-aware admission shedding. All zero values disable. Resilience
	// acts in Replay (the front-door model) only; closed-loop episode calls
	// resolve synchronously and rely on server-side crash re-admission.
	Retry RetryPolicy
	Hedge HedgePolicy
	Shed  ShedPolicy
}

// PoolConfig sizes one stage pool of a disaggregated endpoint. Fields
// mirror the monolithic Config knobs; a pool with CacheTokens and
// CacheEntries both 0 inherits the parent Config's cache budgets (prefill
// pool only — the decode pool never caches).
type PoolConfig struct {
	// Replicas is the pool size; > 0 on both pools enables disaggregation.
	Replicas int
	// MaxBatch caps sequences per continuous batch in this pool (<= 1
	// disables batching, same as Config.MaxBatch).
	MaxBatch int
	// MaxWait is this pool's batching window (see Config.MaxWait).
	MaxWait time.Duration
	// CacheTokens / CacheEntries bound this pool's per-replica prefix
	// caches; both 0 on the prefill pool means "inherit the parent
	// Config budgets".
	CacheTokens  int
	CacheEntries int
}

// Handoff prices the KV-cache transfer between the prefill and decode
// pools: a fixed per-request latency plus a token-proportional term
// (prompt KV pages streamed at TokensPerSec). The zero value transfers
// for free, instantly — useful for differential tests against the
// monolithic endpoint.
type Handoff struct {
	// Latency is the fixed per-request transfer setup cost.
	Latency time.Duration
	// TokensPerSec streams the prompt's KV pages; 0 means the
	// token-proportional term is free.
	TokensPerSec float64
}

// cost prices one request's handoff for a prompt of the given token count.
func (h Handoff) cost(promptTokens int) time.Duration {
	d := h.Latency
	if h.TokensPerSec > 0 && promptTokens > 0 {
		d += time.Duration(float64(promptTokens) / h.TokensPerSec * float64(time.Second))
	}
	return d
}

// ParseHandoff parses a handoff spec of the form "lat=DURATION,rate=TOKENS_PER_SEC"
// (either key may be omitted). "" and "off" mean the zero (free) handoff.
func ParseHandoff(s string) (Handoff, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "off" {
		return Handoff{}, nil
	}
	var h Handoff
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return Handoff{}, fmt.Errorf("serve: handoff spec %q: want key=value, got %q", s, part)
		}
		switch strings.TrimSpace(k) {
		case "lat":
			d, err := time.ParseDuration(strings.TrimSpace(v))
			if err != nil {
				return Handoff{}, fmt.Errorf("serve: handoff lat: %v", err)
			}
			if d < 0 {
				return Handoff{}, fmt.Errorf("serve: handoff lat must be >= 0, got %v", d)
			}
			h.Latency = d
		case "rate":
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return Handoff{}, fmt.Errorf("serve: handoff rate: %v", err)
			}
			if f < 0 {
				return Handoff{}, fmt.Errorf("serve: handoff rate must be >= 0, got %v", f)
			}
			h.TokensPerSec = f
		default:
			return Handoff{}, fmt.Errorf("serve: handoff spec %q: unknown key %q", s, k)
		}
	}
	return h, nil
}

// Disaggregated reports whether the config splits the endpoint into
// prefill and decode pools.
func (c Config) Disaggregated() bool {
	return c.Prefill.Replicas > 0 && c.Decode.Replicas > 0
}

// Validate rejects configurations that cannot describe a deployment.
// New panics on an invalid config; callers that want a clean error (the
// CLI) should Validate first.
func (c Config) Validate() error {
	if (c.Prefill.Replicas > 0) != (c.Decode.Replicas > 0) {
		return fmt.Errorf("serve: disaggregation needs both pools: prefill replicas %d, decode replicas %d", c.Prefill.Replicas, c.Decode.Replicas)
	}
	if c.Disaggregated() {
		if c.Replicas > 0 {
			return fmt.Errorf("serve: Replicas (%d) is the monolithic pool; leave it 0 when Prefill/Decode pools are set", c.Replicas)
		}
		if c.Autoscale.enabled() {
			return fmt.Errorf("serve: autoscaling is monolithic-only; disable it when Prefill/Decode pools are set")
		}
		if c.Faults.enabled() || c.Retry.enabled() || c.Hedge.enabled() || c.Shed.enabled() {
			return fmt.Errorf("serve: fault injection and client resilience are monolithic-only; disable them when Prefill/Decode pools are set")
		}
	}
	for _, p := range []struct {
		name string
		cfg  PoolConfig
	}{{"prefill", c.Prefill}, {"decode", c.Decode}} {
		if p.cfg.Replicas < 0 {
			return fmt.Errorf("serve: %s pool replicas must be >= 0, got %d", p.name, p.cfg.Replicas)
		}
		if p.cfg.MaxBatch < 0 {
			return fmt.Errorf("serve: %s pool max batch must be >= 0, got %d", p.name, p.cfg.MaxBatch)
		}
		if p.cfg.MaxWait < 0 {
			return fmt.Errorf("serve: %s pool max wait must be >= 0, got %v", p.name, p.cfg.MaxWait)
		}
		if p.cfg.CacheTokens < 0 || p.cfg.CacheEntries < 0 {
			return fmt.Errorf("serve: %s pool cache budgets must be >= 0", p.name)
		}
	}
	if c.Handoff.Latency < 0 {
		return fmt.Errorf("serve: handoff latency must be >= 0, got %v", c.Handoff.Latency)
	}
	if c.Handoff.TokensPerSec < 0 {
		return fmt.Errorf("serve: handoff rate must be >= 0, got %v", c.Handoff.TokensPerSec)
	}
	if err := c.Faults.validate(); err != nil {
		return err
	}
	if c.Retry.Max < 0 || c.Retry.Base < 0 || c.Retry.Factor < 0 || c.Retry.Jitter < 0 {
		return fmt.Errorf("serve: retry policy fields must be >= 0")
	}
	if c.Hedge.Delay < 0 {
		return fmt.Errorf("serve: hedge delay must be >= 0, got %v", c.Hedge.Delay)
	}
	if c.Shed.Queue < 0 || c.Shed.Wait < 0 {
		return fmt.Errorf("serve: shed thresholds must be >= 0")
	}
	return nil
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.Routing == "" {
		c.Routing = RouteLeastLoaded
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 1
	}
	if c.MaxWait < 0 {
		c.MaxWait = 0
	}
	if c.CacheTokens < 0 {
		c.CacheTokens = 0
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0
	}
	if c.Identity == "" {
		c.Identity = IdentityShape
	}
	if c.CachedPrefillFrac <= 0 {
		c.CachedPrefillFrac = 0.1
	}
	if c.CachedPrefillFrac > 1 {
		c.CachedPrefillFrac = 1
	}
	c.Autoscale = c.Autoscale.withDefaults(c.Replicas)
	c.Faults = c.Faults.withDefaults()
	c.Retry = c.Retry.withDefaults()
	return c
}
