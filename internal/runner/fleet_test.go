package runner

import (
	"context"
	"reflect"
	"testing"
	"time"

	"embench/internal/multiagent"
	"embench/internal/serve"
	"embench/internal/systems"
	"embench/internal/world"
)

func fleetTestGroup(t *testing.T, episodes int, seed uint64) FleetGroup {
	t.Helper()
	w, ok := systems.Get("CoELA")
	if !ok {
		t.Fatal("CoELA workload missing")
	}
	return FleetGroup{
		Specs: Specs(w, world.Medium, 3, nil,
			multiagent.Options{Parallel: true}, episodes, seed),
		Serve: serve.Config{
			Replicas: 2, MaxBatch: 4,
			MaxWait: 1500 * time.Millisecond, CacheEntries: 256,
		},
	}
}

// TestFleetRunByteIdentical is the acceptance-criterion test: one shared
// endpoint serving >= 2 concurrently running episodes must produce
// byte-identical results across reruns — goroutine scheduling must never
// leak into the merged serving order.
func TestFleetRunByteIdentical(t *testing.T) {
	g := fleetTestGroup(t, 3, 9)
	a, err := RunFleet(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b, err := RunFleet(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Episodes, b.Episodes) || !reflect.DeepEqual(a.Serving, b.Serving) {
			t.Fatalf("fleet rerun %d diverged", i)
		}
	}
}

// TestFleetsParityAcrossParallelism pins -procs independence: group-level
// parallelism must not change any group's result.
func TestFleetsParityAcrossParallelism(t *testing.T) {
	groups := []FleetGroup{
		fleetTestGroup(t, 2, 1),
		fleetTestGroup(t, 3, 5),
		fleetTestGroup(t, 2, 11),
		fleetTestGroup(t, 4, 17),
	}
	seq, err := RunFleets(context.Background(), groups, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{2, 4, 8} {
		par, err := RunFleets(context.Background(), groups, procs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("fleet results changed at parallelism %d", procs)
		}
	}
}

// TestFleetPreservesDecisions: a fleet only reroutes serving time, so each
// episode's decisions — steps, success, LLM calls — must match the same
// spec run with dedicated serving; simulated time must not shrink.
func TestFleetPreservesDecisions(t *testing.T) {
	g := fleetTestGroup(t, 3, 21)
	res, err := RunFleet(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range g.Specs {
		solo := spec.run()
		fe := res.Episodes[i]
		if solo.Episode.Steps != fe.Steps || solo.Episode.Success != fe.Success ||
			solo.Episode.LLMCalls != fe.LLMCalls {
			t.Fatalf("episode %d decisions changed under fleet serving:\nsolo  %+v\nfleet %+v",
				i, solo.Episode, fe)
		}
		if fe.SimDuration < solo.Episode.SimDuration {
			t.Fatalf("episode %d got faster under contention: %v vs %v",
				i, fe.SimDuration, solo.Episode.SimDuration)
		}
	}
}

// TestFleetPerEpisodeStatsCoverEndpoint checks the stats attribution: the
// per-episode shares must add up to the endpoint totals for the additive
// token counters, and every episode must have been served.
func TestFleetPerEpisodeStatsCoverEndpoint(t *testing.T) {
	g := fleetTestGroup(t, 3, 2)
	res, err := RunFleet(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	var requests, prefill, cached int
	for i, e := range res.Episodes {
		if e.Serving.Requests == 0 {
			t.Fatalf("episode %d has no serving share", i)
		}
		requests += e.Serving.Requests
		prefill += e.Serving.PrefillTokens
		cached += e.Serving.CachedTokens
	}
	if requests != res.Serving.Requests || prefill != res.Serving.PrefillTokens ||
		cached != res.Serving.CachedTokens {
		t.Fatalf("episode shares don't cover endpoint totals: req %d/%d prefill %d/%d cached %d/%d",
			requests, res.Serving.Requests, prefill, res.Serving.PrefillTokens,
			cached, res.Serving.CachedTokens)
	}
	if res.Serving.CacheHitRate() <= 0 {
		t.Fatal("fleet episodes share preambles; the endpoint should see cache hits")
	}
}

// TestFleetActivationPoolMatchesUngated pins that arrival-driven episode
// activation is pure scheduling: a tightly gated run (2 slots for 8
// episodes) must produce byte-identical results to the ungated run.
func TestFleetActivationPoolMatchesUngated(t *testing.T) {
	base := fleetTestGroup(t, 8, 31)

	ungated := base
	ungated.Activation = -1
	want, err := RunFleet(context.Background(), ungated)
	if err != nil {
		t.Fatal(err)
	}

	gated := base
	gated.Activation = 2
	got, err := RunFleet(context.Background(), gated)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("activation pool changed fleet results")
	}
}

// TestFleetActivationPoolDeadlockFree is the liveness check for the
// default-threshold path: a group past DefaultActivationThreshold runs
// gated (GOMAXPROCS slots) and must complete under -race.
func TestFleetActivationPoolDeadlockFree(t *testing.T) {
	if testing.Short() {
		t.Skip("large fleet")
	}
	g := fleetTestGroup(t, DefaultActivationThreshold+8, 7)
	done := make(chan error, 1)
	go func() {
		res, err := RunFleet(context.Background(), g)
		if err == nil && len(res.Episodes) != DefaultActivationThreshold+8 {
			err = context.DeadlineExceeded
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("activation-pool fleet deadlocked")
	}
}

// TestFleetShardedDeterministicAndRolledUp: a sharded group is
// byte-identical across reruns, reports per-shard stats that sum to the
// rollup, and serves every episode.
func TestFleetShardedDeterministicAndRolledUp(t *testing.T) {
	g := fleetTestGroup(t, 6, 13)
	g.Shards = 3
	a, err := RunFleet(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.ShardServing) != 3 {
		t.Fatalf("ShardServing has %d shards, want 3", len(a.ShardServing))
	}
	var reqs, prefill int
	for _, s := range a.ShardServing {
		reqs += s.Requests
		prefill += s.PrefillTokens
	}
	if reqs != a.Serving.Requests || prefill != a.Serving.PrefillTokens {
		t.Fatalf("shard stats don't sum to rollup: req %d/%d prefill %d/%d",
			reqs, a.Serving.Requests, prefill, a.Serving.PrefillTokens)
	}
	for i, e := range a.Episodes {
		if e.Serving.Requests == 0 {
			t.Fatalf("episode %d was never served", i)
		}
	}
	for i := 0; i < 3; i++ {
		b, err := RunFleet(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("sharded fleet rerun %d diverged", i)
		}
	}
}

// TestRunFleetsPropagatesWorkerErrors: a cancelled context must surface as
// an error from the worker path — the seed panicked inside the pool
// instead of returning it.
func TestRunFleetsPropagatesWorkerErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	groups := []FleetGroup{
		fleetTestGroup(t, 2, 1), fleetTestGroup(t, 2, 2),
		fleetTestGroup(t, 2, 3), fleetTestGroup(t, 2, 4),
	}
	res, err := RunFleets(ctx, groups, 2)
	if err == nil {
		t.Fatal("cancelled context returned no error from the worker pool")
	}
	if res != nil {
		t.Fatalf("error path returned partial results: %v", res)
	}
}

func TestFleetEmptyAndCancelled(t *testing.T) {
	if res, err := RunFleet(context.Background(), FleetGroup{}); err != nil || len(res.Episodes) != 0 {
		t.Fatalf("empty group = %+v, %v", res, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunFleet(ctx, fleetTestGroup(t, 2, 1)); err == nil {
		t.Fatal("cancelled context should refuse to launch")
	}
	if _, err := RunFleets(ctx, []FleetGroup{fleetTestGroup(t, 2, 1)}, 1); err == nil {
		t.Fatal("cancelled context should refuse the group list")
	}
}
