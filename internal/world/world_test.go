package world

import (
	"testing"
	"testing/quick"
)

func TestManhattan(t *testing.T) {
	tests := []struct {
		a, b Cell
		want int
	}{
		{Cell{0, 0}, Cell{0, 0}, 0},
		{Cell{1, 2}, Cell{4, 6}, 7},
		{Cell{4, 6}, Cell{1, 2}, 7},
		{Cell{-2, 0}, Cell{2, 0}, 4},
	}
	for _, tt := range tests {
		if got := Manhattan(tt.a, tt.b); got != tt.want {
			t.Errorf("Manhattan(%v,%v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestManhattanSymmetricProperty(t *testing.T) {
	f := func(ax, ay, bx, by int16) bool {
		a, b := Cell{int(ax), int(ay)}, Cell{int(bx), int(by)}
		return Manhattan(a, b) == Manhattan(b, a) && Manhattan(a, b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGridBounds(t *testing.T) {
	g := NewGrid(4, 3)
	if !g.InBounds(Cell{0, 0}) || !g.InBounds(Cell{3, 2}) {
		t.Fatal("corner cells should be in bounds")
	}
	for _, c := range []Cell{{-1, 0}, {4, 0}, {0, 3}, {0, -1}} {
		if g.InBounds(c) {
			t.Errorf("cell %v should be out of bounds", c)
		}
		if !g.Blocked(c) {
			t.Errorf("out-of-bounds %v should read blocked", c)
		}
	}
}

func TestGridPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGrid(0, 5) should panic")
		}
	}()
	NewGrid(0, 5)
}

func TestGridBlocking(t *testing.T) {
	g := NewGrid(5, 5)
	c := Cell{2, 3}
	if g.Blocked(c) {
		t.Fatal("new grid should be free")
	}
	g.SetBlocked(c, true)
	if !g.Blocked(c) {
		t.Fatal("SetBlocked did not stick")
	}
	g.SetBlocked(c, false)
	if g.Blocked(c) {
		t.Fatal("unblocking failed")
	}
	g.SetBlocked(Cell{99, 99}, true) // must not panic
}

func TestBlockRectAndFree(t *testing.T) {
	g := NewGrid(10, 10)
	g.BlockRect(2, 2, 4, 3) // 3x2 = 6 cells
	if got := g.Free(); got != 94 {
		t.Fatalf("Free = %d, want 94", got)
	}
	if !g.Blocked(Cell{3, 2}) || g.Blocked(Cell{5, 2}) {
		t.Fatal("BlockRect bounds wrong")
	}
}

func TestNeighbors4(t *testing.T) {
	g := NewGrid(3, 3)
	g.SetBlocked(Cell{1, 0}, true)
	n := g.Neighbors4(Cell{1, 1}, nil)
	if len(n) != 3 {
		t.Fatalf("neighbors = %v, want 3 free", n)
	}
	for _, c := range n {
		if c == (Cell{1, 0}) {
			t.Fatal("blocked neighbor returned")
		}
	}
	// Corner has 2 in-bounds neighbors, one of which is blocked above.
	if n := g.Neighbors4(Cell{0, 0}, nil); len(n) != 1 {
		t.Fatalf("corner neighbors = %v", n)
	}
}

func TestDifficultyString(t *testing.T) {
	if Easy.String() != "easy" || Medium.String() != "medium" || Hard.String() != "hard" {
		t.Fatal("difficulty names wrong")
	}
	if Difficulty(9).String() == "" {
		t.Fatal("unknown difficulty should still render")
	}
}
