package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"embench/internal/llm"
	"embench/internal/metrics"
	"embench/internal/multiagent"
	"embench/internal/prompt"
	"embench/internal/rng"
	"embench/internal/runner"
	"embench/internal/serve"
	"embench/internal/trace"
	"embench/internal/world"
)

// Fig9 is the fleet-contention experiment: what happens when whole
// episodes — not just the agents within one — share a single serving
// deployment, the paper's millions-of-users regime scaled down to a
// deterministic simulation. Three panels:
//
//   - fleet closed loop: N concurrent CoELA episodes attached to one
//     shared endpoint (runner.RunFleet), sweeping fleet size × replicas ×
//     routing policy. Queue wait, cache hits and task latency show how
//     routing and replica count absorb cross-episode contention.
//   - aggregation: join-window batching versus step-phase query
//     aggregation (Options.Aggregate, Rec. 1 end to end) across team
//     sizes, reporting the mean plan-call latency each policy delivers.
//   - open loop: a merged multi-episode trace replayed under each routing
//     policy, isolating pure routing behaviour (cache hit rate, queue
//     wait, throughput) from task dynamics.

// Fig9FleetRow is one closed-loop (fleet size, replicas, routing) sample.
type Fig9FleetRow struct {
	Episodes      int // concurrently running episodes on the endpoint
	Agents        int // team size per episode
	Replicas      int
	Routing       serve.RoutingPolicy
	SuccessRate   float64
	TaskLatency   time.Duration // mean episode duration
	MeanQueueWait time.Duration // per LLM call, endpoint-level
	CacheHitRate  float64       // endpoint-level
}

// Fig9AggRow compares serving policies for one team size: join-window
// continuous batching versus explicit step-phase aggregation.
type Fig9AggRow struct {
	Agents        int
	Aggregated    bool
	PlanCalls     int
	MeanPlanCall  time.Duration // mean latency of a planning LLM call
	TaskLatency   time.Duration
	MeanQueueWait time.Duration
	SuccessRate   float64
}

// Fig9RoutingRow is one open-loop (routing, replicas) sample over the
// merged fleet trace.
type Fig9RoutingRow struct {
	Replicas      int
	Routing       serve.RoutingPolicy
	MeanQueueWait time.Duration
	CacheHitRate  float64
	Throughput    float64
}

// Fig9Report bundles the three panels.
type Fig9Report struct {
	Fleet   []Fig9FleetRow
	Agg     []Fig9AggRow
	Routing []Fig9RoutingRow
}

// fig9System is the workload behind every panel: CoELA issues three LLM
// calls per agent per step, the heaviest endpoint pressure in the suite.
const fig9System = "CoELA"

// fig9TeamSize is the per-episode team size of the fleet panel.
const fig9TeamSize = 4

// Fig9Episodes is the fleet-size axis.
var Fig9Episodes = []int{1, 2, 4}

// Fig9AggAgents is the team-size axis of the aggregation panel.
var Fig9AggAgents = []int{2, 4, 8}

// fig9Routings is the routing-policy axis.
var fig9Routings = []serve.RoutingPolicy{
	serve.RouteLeastLoaded, serve.RouteCacheAffinity, serve.RouteShortestCompletion,
}

// fig9Replicas is the replica axis of the fleet panel.
var fig9Replicas = []int{1, 2, 4}

// Fig9 sweeps all three panels.
func Fig9(cfg Config) Fig9Report {
	var rep Fig9Report
	w := mustGet(fig9System)

	// Fleet closed loop: each (episodes, replicas, routing) cell is one
	// fleet group; groups fan out over the configured worker pool.
	var groups []runner.FleetGroup
	for _, eps := range Fig9Episodes {
		for _, replicas := range fig9Replicas {
			for _, routing := range fig9Routings {
				sc := serve.Config{
					Replicas: replicas, Routing: routing,
					MaxBatch: 4, MaxWait: 1500 * time.Millisecond,
					CacheEntries: 512,
				}
				groups = append(groups, runner.FleetGroup{
					Specs: runner.Specs(w, world.Medium, fig9TeamSize, nil,
						multiagent.Options{Parallel: true}, eps, cfg.Seed),
					Serve: sc,
				})
				rep.Fleet = append(rep.Fleet, Fig9FleetRow{
					Episodes: eps, Agents: fig9TeamSize,
					Replicas: replicas, Routing: routing,
				})
			}
		}
	}
	results, err := runner.RunFleets(context.Background(), groups, cfg.Parallelism)
	if err != nil {
		panic("bench: fig9 fleet: " + err.Error())
	}
	for i, r := range results {
		s := metrics.Summarize(r.Episodes)
		rep.Fleet[i].SuccessRate = s.SuccessRate
		rep.Fleet[i].TaskLatency = s.MeanDuration
		rep.Fleet[i].MeanQueueWait = r.Serving.MeanQueueWait()
		rep.Fleet[i].CacheHitRate = r.Serving.CacheHitRate()
	}

	// Aggregation panel: per-episode shared endpoint (1 replica, join
	// window vs explicit phase batches), swept over team size.
	set := cfg.newBatchSet()
	var ids []int
	for _, n := range Fig9AggAgents {
		for _, agg := range []bool{false, true} {
			sc := serve.Config{
				Replicas: 1, MaxBatch: 4,
				MaxWait: 1500 * time.Millisecond, CacheEntries: 512,
			}
			ids = append(ids, set.add(w, world.Medium, n, nil,
				multiagent.Options{Parallel: true, Serve: &sc, Aggregate: agg}))
			rep.Agg = append(rep.Agg, Fig9AggRow{Agents: n, Aggregated: agg})
		}
	}
	set.run()
	for i := range rep.Agg {
		eps, traces := set.results(ids[i])
		s := metrics.Summarize(eps)
		rep.Agg[i].SuccessRate = s.SuccessRate
		rep.Agg[i].TaskLatency = s.MeanDuration
		rep.Agg[i].MeanQueueWait = s.Serving.MeanQueueWait()
		rep.Agg[i].PlanCalls, rep.Agg[i].MeanPlanCall = meanPlanCall(traces)
	}

	// Open loop: the fleet's traffic shape as a recorded trace — one
	// request stream per fleet agent, each with a stable stream-specific
	// persona prefix — replayed under each routing policy. The load is
	// light enough that arrivals usually find several idle replicas, which
	// is exactly where placement policy (not queueing) decides who wins:
	// least-loaded keeps picking the longest-idle replica, scattering each
	// stream's warm prefix, while the cache-aware policies pin streams to
	// the replica that served them before. MaxBatch is 1 so the comparison
	// isolates routing from batch composition.
	reqs := fig9Trace(1, 4, cfg.Seed)
	for _, replicas := range []int{2, 4} {
		for _, routing := range fig9Routings {
			sc := serve.Config{
				Profile: llm.GPT4, Replicas: replicas, Routing: routing,
				MaxBatch: 1, CacheEntries: 128,
			}
			res := serve.Replay(sc, reqs)
			rep.Routing = append(rep.Routing, Fig9RoutingRow{
				Replicas: replicas, Routing: routing,
				MeanQueueWait: res.Stats.MeanQueueWait(),
				CacheHitRate:  res.Stats.CacheHitRate(),
				Throughput:    res.Throughput(),
			})
		}
	}
	return rep
}

// meanPlanCall reports the count and mean latency of planning-module LLM
// calls ("plan", "plan(batched)", "plan(phase)") across traces.
func meanPlanCall(traces []*trace.Trace) (int, time.Duration) {
	var n int
	var total time.Duration
	for _, tr := range traces {
		for _, ev := range tr.Events {
			if ev.LLMCall && strings.HasPrefix(ev.Kind, "plan") {
				n++
				total += ev.Latency
			}
		}
	}
	if n == 0 {
		return 0, 0
	}
	return n, time.Duration(float64(total) / float64(n))
}

// fig9Trace builds the open-loop fleet trace: episodes × agents request
// streams, each carrying — after the fleet-wide system/task preamble — a
// large FIXED-SIZE stream persona (conversation so far, agent briefing)
// and a small growing history tail. Under the cache's (name, size)-chain
// identity only stable sections re-hit, so the persona is the prize: a
// replica that served the stream before covers preamble+persona, any
// other replica only the preamble. Arrival jitter (seeded, so the trace
// is a pure function of its arguments) breaks the periodic lock-step that
// would otherwise let even cache-blind routing stay accidentally sticky.
func fig9Trace(episodes, agents int, seed uint64) []serve.Request {
	const (
		steps         = 8
		stepPeriod    = 75 * time.Second
		stagger       = 3 * time.Second
		personaTokens = 1200
		outTokens     = 140
	)
	jitter := rng.New(seed).NewStream("fig9/replay")
	var reqs []serve.Request
	for s := 0; s < steps; s++ {
		for e := 0; e < episodes; e++ {
			for a := 0; a < agents; a++ {
				stream := e*agents + a
				arrive := time.Duration(s)*stepPeriod +
					time.Duration(stream)*stagger +
					time.Duration(jitter.Range(0, 9000))*time.Millisecond
				p := prompt.New(
					prompt.Section{Name: "system", Tokens: 220},
					prompt.Section{Name: "task", Tokens: 90},
					prompt.Section{Name: fmt.Sprintf("persona-e%d-a%d", e, a), Tokens: personaTokens},
					prompt.Section{Name: "hist", Tokens: 60 + 40*s, Droppable: true},
				)
				reqs = append(reqs, serve.Request{
					Agent:   fmt.Sprintf("e%d/a%d", e, a),
					Arrival: arrive, Prompt: p, OutTokens: outTokens,
				})
			}
		}
	}
	return reqs
}

// RenderFig9 formats all three panels.
func RenderFig9(rep Fig9Report) string {
	var b strings.Builder
	b.WriteString("Fig. 9 — fleet serving: episodes sharing one deployment (CoELA, medium, 4 agents/episode)\n")
	fmt.Fprintf(&b, "%8s %8s %-20s %9s %10s %9s %6s\n",
		"episodes", "replicas", "routing", "success", "latency", "q-wait", "cache")
	for _, r := range rep.Fleet {
		fmt.Fprintf(&b, "%8d %8d %-20s %8.0f%% %9.1fm %8.1fs %5.0f%%\n",
			r.Episodes, r.Replicas, r.Routing,
			100*r.SuccessRate, r.TaskLatency.Minutes(), r.MeanQueueWait.Seconds(),
			100*r.CacheHitRate)
	}
	b.WriteString("\nFig. 9b — step-phase aggregation vs join-window batching (1 replica)\n")
	fmt.Fprintf(&b, "%6s %-12s %10s %12s %10s %9s\n",
		"agents", "mode", "plan-calls", "plan-latency", "task-lat", "q-wait")
	for _, r := range rep.Agg {
		mode := "join-window"
		if r.Aggregated {
			mode = "aggregated"
		}
		fmt.Fprintf(&b, "%6d %-12s %10d %11.1fs %9.1fm %8.1fs\n",
			r.Agents, mode, r.PlanCalls, r.MeanPlanCall.Seconds(),
			r.TaskLatency.Minutes(), r.MeanQueueWait.Seconds())
	}
	b.WriteString("\nFig. 9c — open-loop routing-policy replay (4 persona streams, light load)\n")
	fmt.Fprintf(&b, "%8s %-20s %9s %6s %8s\n",
		"replicas", "routing", "q-wait", "cache", "req/s")
	for _, r := range rep.Routing {
		fmt.Fprintf(&b, "%8d %-20s %8.1fs %5.0f%% %8.3f\n",
			r.Replicas, r.Routing, r.MeanQueueWait.Seconds(),
			100*r.CacheHitRate, r.Throughput)
	}
	return b.String()
}
