package kitchen

import (
	"fmt"
	"testing"

	"embench/internal/core"
	"embench/internal/modules/memory"
	"embench/internal/rng"
	"embench/internal/world"
)

func newGame(agents int, d world.Difficulty) *Game {
	return New(Config{Agents: agents, Difficulty: d}, rng.New(5))
}

// boardKnowledge renders the true order board and true progress into
// records — a perfectly informed belief.
func boardKnowledge(g *Game) []memory.Record {
	var recs []memory.Record
	for _, o := range g.orders {
		recs = append(recs, memory.Record{
			Step: g.Step(), Kind: memory.Observation, Key: fmt.Sprintf("order:%d", o.ID),
			Payload: OrderFact{ID: o.ID, Recipe: o.Recipe.Name, Stages: len(o.Recipe.Stages), Deadline: o.Deadline},
			Tokens:  orderFactTokens,
		})
		for s := 0; s < o.Stage; s++ {
			recs = append(recs, memory.Record{
				Step: g.Step(), Kind: memory.Observation, Key: fmt.Sprintf("prog:%d:%d", o.ID, s),
				Payload: ProgressFact{Order: o.ID, Stage: s}, Tokens: progFactTokens,
			})
		}
	}
	return recs
}

func TestConstruction(t *testing.T) {
	g := newGame(2, world.Medium)
	if g.TotalOrders() != 15 || g.MaxSteps() != 80 {
		t.Fatalf("orders=%d horizon=%d", g.TotalOrders(), g.MaxSteps())
	}
	if g.Required() != 11 { // ceil(0.7*15)
		t.Fatalf("required = %d, want 11", g.Required())
	}
	if g.Done() || g.Success() {
		t.Fatal("fresh game should be running")
	}
}

func TestOrdersArriveOverTime(t *testing.T) {
	g := newGame(2, world.Medium)
	initial := len(g.orders)
	if initial >= g.TotalOrders() {
		t.Fatal("some orders should arrive later")
	}
	for i := 0; i < 60; i++ {
		g.Tick()
	}
	if len(g.orders) != g.TotalOrders() {
		t.Fatalf("after 60 steps, %d/%d orders arrived", len(g.orders), g.TotalOrders())
	}
}

func TestExecOpHappyPath(t *testing.T) {
	g := newGame(1, world.Easy)
	o := g.orders[0]
	res := g.Execute(0, Op{Order: o.ID, Stage: 0, Station: o.Recipe.Stages[0]})
	if !res.Achieved || o.Stage != 1 {
		t.Fatalf("first stage failed: %+v", res)
	}
}

func TestExecOpWrongStage(t *testing.T) {
	g := newGame(1, world.Easy)
	o := g.orders[0]
	if g.Execute(0, Op{Order: o.ID, Stage: 2, Station: o.Recipe.Stages[2]}).Achieved {
		t.Fatal("skipping stages should fail")
	}
	// Redo of a completed stage also fails.
	g.Execute(0, Op{Order: o.ID, Stage: 0, Station: o.Recipe.Stages[0]})
	if g.Execute(0, Op{Order: o.ID, Stage: 0, Station: o.Recipe.Stages[0]}).Achieved {
		t.Fatal("redoing a done stage should fail")
	}
}

func TestStationContention(t *testing.T) {
	g := New(Config{Agents: 3, Difficulty: world.Hard, Orders: 6}, rng.New(5))
	// Serve window has one slot: two serves in one step must conflict.
	// Drive two orders to their final stage first.
	var ready []*Order
	for _, o := range g.orders {
		for !o.Done() && o.Stage < len(o.Recipe.Stages)-1 {
			res := g.Execute(0, Op{Order: o.ID, Stage: o.Stage, Station: o.Recipe.Stages[o.Stage]})
			if !res.Achieved {
				t.Fatalf("setup op failed: %s", res.Note)
			}
			g.Tick()
		}
		ready = append(ready, o)
		if len(ready) == 2 {
			break
		}
	}
	first := g.Execute(0, Op{Order: ready[0].ID, Stage: ready[0].Stage, Station: Window})
	second := g.Execute(1, Op{Order: ready[1].ID, Stage: ready[1].Stage, Station: Window})
	if !first.Achieved {
		t.Fatalf("first serve failed: %s", first.Note)
	}
	if second.Achieved {
		t.Fatal("second serve in the same step should hit a busy window")
	}
	if second.Note != "station busy" {
		t.Fatalf("note = %q", second.Note)
	}
}

func TestCentralOracleCompletesEasy(t *testing.T) {
	g := newGame(2, world.Easy)
	steps := 0
	for !g.Done() && steps < 60 {
		bel := g.BuildBelief(core.CentralAgent, boardKnowledge(g))
		prop := g.ProposeJoint(bel)
		joint := prop.Good.(*core.Joint)
		for a := 0; a < g.Agents(); a++ {
			g.Execute(a, joint.Assign[a])
		}
		g.Tick()
		steps++
	}
	if !g.Success() {
		t.Fatalf("central oracle failed: served %d/%d on time (need %d) in %d steps",
			g.ServedOnTime(), g.TotalOrders(), g.Required(), steps)
	}
}

func TestCentralOracleCompletesHardWithFourAgents(t *testing.T) {
	g := New(Config{Agents: 4, Difficulty: world.Hard}, rng.New(5))
	steps := 0
	for !g.Done() && steps < 200 {
		bel := g.BuildBelief(core.CentralAgent, boardKnowledge(g))
		joint := g.ProposeJoint(bel).Good.(*core.Joint)
		for a := 0; a < g.Agents(); a++ {
			g.Execute(a, joint.Assign[a])
		}
		g.Tick()
		steps++
	}
	if !g.Success() {
		t.Fatalf("hard central oracle: served %d/%d (need %d)", g.ServedOnTime(), g.TotalOrders(), g.Required())
	}
}

func TestJointAssignsDistinctOps(t *testing.T) {
	g := newGame(4, world.Medium)
	bel := g.BuildBelief(core.CentralAgent, boardKnowledge(g))
	joint := g.ProposeJoint(bel).Good.(*core.Joint)
	seen := map[string]bool{}
	for _, sg := range joint.Assign {
		if op, ok := sg.(Op); ok {
			if seen[op.ID()] {
				t.Fatal("joint assignment duplicated an op")
			}
			seen[op.ID()] = true
		}
	}
}

func TestJointRespectsStationSlots(t *testing.T) {
	g := New(Config{Agents: 8, Difficulty: world.Hard, Orders: 12}, rng.New(5))
	bel := g.BuildBelief(core.CentralAgent, boardKnowledge(g))
	joint := g.ProposeJoint(bel).Good.(*core.Joint)
	counts := map[Station]int{}
	for _, sg := range joint.Assign {
		if op, ok := sg.(Op); ok {
			counts[op.Station]++
		}
	}
	for st, n := range counts {
		if n > stationSlots[st] {
			t.Fatalf("station %s oversubscribed: %d > %d", st, n, stationSlots[st])
		}
	}
}

func TestDecentralizedProposeAvoidsClaims(t *testing.T) {
	g := newGame(2, world.Easy)
	recs := boardKnowledge(g)
	prop := g.Propose(0, g.BuildBelief(0, recs))
	op, ok := prop.Good.(Op)
	if !ok {
		t.Fatalf("expected an op, got %s", prop.Good.Describe())
	}
	// Agent 1 claims that very op; agent 0 must pick something else.
	recs = append(recs, memory.Record{
		Step: g.Step(), Kind: memory.Dialogue, Key: "claim:1",
		Payload: ClaimFact{Agent: 1, Order: op.Order, Stage: op.Stage}, Tokens: 8,
	})
	prop2 := g.Propose(0, g.BuildBelief(0, recs))
	if prop2.Good.ID() == prop.Good.ID() {
		t.Fatal("proposal ignored teammate's claim")
	}
}

func TestStaleBeliefRedoesWork(t *testing.T) {
	g := newGame(2, world.Easy)
	recs := boardKnowledge(g) // snapshot before progress
	o := g.orders[0]
	g.Execute(1, Op{Order: o.ID, Stage: 0, Station: o.Recipe.Stages[0]})
	// Old records say stage 0 is still open.
	bel := g.BuildBelief(0, recs)
	if bel.Staleness == 0 {
		t.Fatal("belief should be stale after unseen progress")
	}
	prop := g.Propose(0, bel)
	if op, ok := prop.Good.(Op); ok && op.Order == o.ID && op.Stage == 0 {
		// The oracle faithfully plans from the stale belief; execution fails.
		if g.Execute(0, op).Achieved {
			t.Fatal("stale-stage op should fail")
		}
	}
}

func TestCorruptionsDistinct(t *testing.T) {
	g := newGame(2, world.Medium)
	prop := g.Propose(0, g.BuildBelief(0, boardKnowledge(g)))
	if len(prop.Corruptions) == 0 {
		t.Fatal("no corruptions")
	}
	for _, c := range prop.Corruptions {
		if c.ID() == prop.Good.ID() {
			t.Fatal("corruption duplicates good op")
		}
	}
}

func TestEventsVisibleThroughNextStep(t *testing.T) {
	g := newGame(1, world.Easy)
	o := g.orders[0]
	g.Execute(0, Op{Order: o.ID, Stage: 0, Station: o.Recipe.Stages[0]})
	count := func() int {
		n := 0
		for _, r := range g.Observe(0).Records {
			if _, ok := r.Payload.(ProgressFact); ok {
				n++
			}
		}
		return n
	}
	if count() == 0 {
		t.Fatal("completion event missing from same-step observation")
	}
	g.Tick()
	// Still observable one step later (sensing precedes execution).
	if count() == 0 {
		t.Fatal("completion event should survive into the next step")
	}
	g.Tick()
	if count() != 0 {
		t.Fatal("completion event leaked past its window")
	}
}

func TestSuccessThreshold(t *testing.T) {
	g := New(Config{Agents: 2, Difficulty: world.Easy, Orders: 5}, rng.New(5))
	if g.Required() != 4 {
		t.Fatalf("required = %d, want ceil(0.7*5)=4", g.Required())
	}
}

func TestHorizonEndsGame(t *testing.T) {
	g := New(Config{Agents: 1, Difficulty: world.Easy, Horizon: 2}, rng.New(5))
	g.Tick()
	g.Tick()
	if !g.Done() {
		t.Fatal("horizon should end the game")
	}
}
