// Package bench regenerates every table and figure of the paper's
// evaluation: per-module latency breakdowns (Fig. 2), module-sensitivity
// ablations (Fig. 3), local-vs-API model comparison (Fig. 4), memory
// capacity sweeps (Fig. 5), prompt-token growth (Fig. 6), multi-agent
// scalability (Fig. 7), and the optimization-recommendation ablations of
// Secs. IV–VI. Absolute numbers come from the calibrated simulation
// substrate; the paper's qualitative shapes are asserted in tests and the
// measured-vs-paper comparison lives in EXPERIMENTS.md.
package bench

import (
	"embench/internal/core"
	"embench/internal/metrics"
	"embench/internal/multiagent"
	"embench/internal/systems"
	"embench/internal/trace"
	"embench/internal/world"
)

// Config sizes an experiment run.
type Config struct {
	Episodes int    // episodes per configuration (default 5)
	Seed     uint64 // root seed
}

func (c Config) episodes() int {
	if c.Episodes <= 0 {
		return 5
	}
	return c.Episodes
}

// mutation rewrites a workload's agent configuration for an ablation.
type mutation func(*core.AgentConfig)

// batch runs several episodes of one configuration and returns per-episode
// results with their traces.
func batch(w systems.Workload, diff world.Difficulty, agents int,
	mut mutation, opt multiagent.Options, episodes int, seed uint64) ([]metrics.Episode, []*trace.Trace) {

	if mut != nil {
		mut(&w.Config)
	}
	var eps []metrics.Episode
	var traces []*trace.Trace
	for i := 0; i < episodes; i++ {
		o := opt
		o.Seed = seed + uint64(i)*1000003
		out := w.Run(diff, agents, o)
		eps = append(eps, out.Episode)
		traces = append(traces, out.Trace)
	}
	return eps, traces
}

// kindShare reports the latency fraction spent in events of the given
// kind prefix across traces (e.g. CoELA's "message"/"plan"/"act-select"
// split, paper Sec. IV-A).
func kindShare(traces []*trace.Trace, kind string) float64 {
	var total, match float64
	for _, tr := range traces {
		for _, ev := range tr.Events {
			total += ev.Latency.Seconds()
			if ev.Kind == kind || (len(ev.Kind) > len(kind) && ev.Kind[:len(kind)] == kind) {
				match += ev.Latency.Seconds()
			}
		}
	}
	if total == 0 {
		return 0
	}
	return match / total
}

// mustGet resolves a workload or panics — experiment tables are static.
func mustGet(name string) systems.Workload {
	w, ok := systems.Get(name)
	if !ok {
		panic("bench: unknown workload " + name)
	}
	return w
}
