package serve

import (
	"fmt"
	"time"

	"embench/internal/prompt"
	"embench/internal/serve/obs"
)

// This file is the flight-recorder seam (see internal/serve/obs): the sink
// plumbing and every event emitter. All serving-path call sites guard with
// `if e.sink != nil`, so the nil-sink default costs nothing — no
// allocations, no behaviour change, goldens byte-identical — while an
// attached sink sees the full request lifecycle: submit, fleet admit,
// route (with per-replica pressure scores), batch start/join/seal, cache
// hit/miss/evict/flush, autoscaler ticks and completions.
//
// Emitters only READ endpoint state (cache probes, eviction counters,
// replica indices); instrumentation can never perturb the simulation.

// SetSink attaches a flight-recorder sink to the endpoint and emits the
// opening config event; nil detaches (the zero-cost default). Like the
// rest of the endpoint it is not concurrency-safe: attach before serving
// begins. Fleets forward through Fleet.SetSink / ShardedFleet.SetSink,
// which must likewise be called before any episode runs.
func (e *Endpoint) SetSink(s obs.Sink) { e.setSinkShard(s, 0) }

// setSinkShard is SetSink with an explicit shard tag (ShardedFleet labels
// each shard's endpoint so one recorder can absorb all shards).
func (e *Endpoint) setSinkShard(s obs.Sink, shard int) {
	e.sink, e.shard = s, shard
	if e.dis != nil {
		// A disaggregated parent wires the shared sink to its stage pools
		// through stageSink tags; the pools' own config events (Stage
		// "prefill"/"decode") describe the deployment, so the parent emits
		// none of its own. The parent keeps the raw sink for handoff events.
		if s == nil {
			e.dis.prefill.setSinkShard(nil, shard)
			e.dis.decode.setSinkShard(nil, shard)
			return
		}
		e.dis.prefill.setSinkShard(stageSink{sink: s, stage: "prefill"}, shard)
		e.dis.decode.setSinkShard(stageSink{sink: s, stage: "decode", dropSubmit: true}, shard)
		return
	}
	if s == nil {
		return
	}
	s.Event(obs.Event{
		Kind: obs.KindConfig, Shard: shard,
		Replica: len(e.replicas), Active: e.active,
		Batch: e.cfg.MaxBatch, Tokens: e.cfg.CacheTokens,
		Policy: string(e.cfg.Routing),
	})
}

// Sink reports the attached flight-recorder sink (nil when detached).
func (e *Endpoint) Sink() obs.Sink { return e.sink }

// rindex reports r's index in the replica pool. Sink-path only: O(replicas)
// per call, never taken on the nil-sink hot path.
func (e *Endpoint) rindex(r *replica) int {
	for i := range e.replicas {
		if &e.replicas[i] == r {
			return i
		}
	}
	return -1
}

// nextReq issues the next request id. Sink-path only; ids are 1-based and
// per-endpoint, so within one recorded source they are unique and stable.
func (e *Endpoint) nextReq() int64 {
	e.reqID++
	return e.reqID
}

// emitSubmit records a request entering the endpoint, carrying everything
// trace-driven replay needs to reconstruct it (TraceRequests).
func (e *Endpoint) emitSubmit(req int64, agent string, arrival time.Duration, p prompt.Prompt, out, priority int) {
	secs := make([]obs.Section, len(p.Sections))
	for i, s := range p.Sections {
		secs[i] = obs.Section{Name: s.Name, Text: s.Text, Tokens: s.Tokens, Droppable: s.Droppable}
	}
	e.sink.Event(obs.Event{
		Kind: obs.KindSubmit, T: arrival, Shard: e.shard,
		Req: req, Agent: agent, Out: out, Priority: priority,
		Sections: secs,
	})
}

// emitRoute records a placement decision with every active replica's
// capacity-adjusted affinity score at decision time — called before
// admission mutates the cache, so the scores are exactly what the router
// compared.
func (e *Endpoint) emitRoute(req int64, t time.Duration, r *replica, k promptKey) {
	scores := make([]int, e.active)
	for i := range e.replicas[:e.active] {
		scores[i], _ = affinityScore(&e.replicas[i], k)
	}
	e.sink.Event(obs.Event{
		Kind: obs.KindRoute, T: t, Shard: e.shard, Replica: e.rindex(r),
		Req: req, Policy: string(e.cfg.Routing), Scores: scores,
		Cached: r.cache.matchKey(k), Tokens: k.total,
	})
}

// emitCache records one admission's cache pricing on a replica.
func (e *Endpoint) emitCache(req int64, t time.Duration, ri, cached, total int) {
	kind := obs.KindCacheMiss
	if cached > 0 {
		kind = obs.KindCacheHit
	}
	e.sink.Event(obs.Event{
		Kind: kind, T: t, Shard: e.shard, Replica: ri,
		Req: req, Cached: cached, Tokens: total,
	})
}

// emitEvict records capacity-eviction churn: delta is the eviction-counter
// growth across an admission (zero deltas are dropped).
func (e *Endpoint) emitEvict(t time.Duration, ri, delta int) {
	if delta <= 0 {
		return
	}
	e.sink.Event(obs.Event{
		Kind: obs.KindCacheEvict, T: t, Shard: e.shard, Replica: ri, Tokens: delta,
	})
}

// emitBatchStart records a batch launch: size, effective prefill tokens,
// service time and its decode share (the same batch priced at zero output).
func (e *Endpoint) emitBatchStart(t time.Duration, ri, n int, totalEff float64, maxOut int, service time.Duration) {
	dec := service - e.cfg.Profile.BatchServiceTime(n, totalEff, 0)
	if dec < 0 {
		dec = 0
	}
	e.sink.Event(obs.Event{
		Kind: obs.KindBatchStart, T: t, Shard: e.shard, Replica: ri,
		Batch: n, Tokens: int(totalEff), Out: maxOut, Dur: service, Decode: dec,
	})
}

// emitComplete records a served request with its as-served outcome (see the
// obs package comment for the join-restatement convention).
func (e *Endpoint) emitComplete(req int64, agent string, ri int, end, lat, wait time.Duration, batch, cached, total int) {
	e.sink.Event(obs.Event{
		Kind: obs.KindComplete, T: end, Shard: e.shard, Replica: ri,
		Req: req, Agent: agent, Dur: lat, Wait: wait,
		Batch: batch, Cached: cached, Tokens: total,
	})
}

// emitRetry records a deadline-triggered re-issue entering admission:
// attempt is the retry number (1 = first retry), backoff the seeded delay
// it waited after the timeout.
func (e *Endpoint) emitRetry(req int64, t, backoff time.Duration, attempt int) {
	e.sink.Event(obs.Event{
		Kind: obs.KindRetry, T: t, Shard: e.shard,
		Req: req, Dur: backoff, Batch: attempt,
	})
}

// emitHedge records a duplicate hedged attempt entering admission.
func (e *Endpoint) emitHedge(req int64, t time.Duration) {
	e.sink.Event(obs.Event{Kind: obs.KindHedge, T: t, Shard: e.shard, Req: req})
}

// emitShed records a load-shedding rejection with the priority class the
// decision honored.
func (e *Endpoint) emitShed(req int64, t time.Duration, priority int) {
	e.sink.Event(obs.Event{
		Kind: obs.KindShed, T: t, Shard: e.shard, Req: req, Priority: priority,
	})
}

// emitTimeout records one attempt's deadline expiring before its batch
// launched.
func (e *Endpoint) emitTimeout(req int64, t, deadline time.Duration) {
	e.sink.Event(obs.Event{
		Kind: obs.KindTimeout, T: t, Shard: e.shard, Req: req, Dur: deadline,
	})
}

// SetSink attaches a flight-recorder sink to the fleet's shared endpoint.
// Call before any episode issues a request (like SetGate). Fleet-merge
// admissions appear as admit events, each immediately followed by the
// endpoint events of the admitted request — the whole merged stream is
// emitted under the fleet mutex, so one fleet's event order is as
// deterministic as its admission order.
func (f *Fleet) SetSink(s obs.Sink) { f.ep.SetSink(s) }

// SetSink attaches one shared sink to every shard's endpoint, tagging each
// shard's events with its index. Shards emit concurrently, so cross-shard
// interleaving (Seq order) is not deterministic — filter by Shard, or
// sample per shard and merge, for reproducible views.
func (sf *ShardedFleet) SetSink(s obs.Sink) {
	for k, f := range sf.shards {
		f.ep.setSinkShard(s, k)
	}
}

// TraceRequests reconstructs an open-loop request trace from a recorded
// event stream: one Request per submit event, in stream order, with
// arrival offsets, prompt section chains (text included, so content-hash
// cache identity reproduces) and generation lengths. This closes the
// record-once-replay-many loop: capture a closed-loop episode with a
// Recorder, persist it as JSONL, and feed it back through Replay.
//
// Replay reproduces the live run's metrics.Serving exactly only when the
// recorded stream's serving decisions cannot depend on information the
// open-loop event loop lacks, and TraceRequests enforces the two
// machine-checkable preconditions instead of silently misreconstructing:
//
//   - Submissions must arrive in non-decreasing virtual time within each
//     shard (one closed-loop client, or a merged fleet — the merge admits
//     in arrival order). A decreasing submit time means several
//     independent clients were recorded into one stream without a merge;
//     their interleaving encodes goroutine scheduling, not workload, so
//     the reconstruction would be unreproducible. Error, not guess.
//   - No recorded endpoint may have MaxBatch > 1 (config events carry it):
//     closed-loop join windows race against future arrivals the open-loop
//     replay cannot see, so the trace under-determines the batches.
//
// Routing divergence (cache-affinity routes among ALL replicas at
// submission, replay among the IDLE ones at launch) is not detectable from
// the stream and remains a documented caveat: such replays are faithful
// open-loop reruns of the same trace, just not bit-equal.
func TraceRequests(events []obs.Event) ([]Request, error) {
	var out []Request
	lastArrival := map[int]time.Duration{}
	for i, ev := range events {
		switch ev.Kind {
		case obs.KindConfig:
			if ev.Batch > 1 {
				return nil, fmt.Errorf("serve: trace event %d: recorded endpoint (shard %d, stage %q) has MaxBatch %d > 1; join-window races cannot be reconstructed from a trace — re-record with MaxBatch 1", i, ev.Shard, ev.Stage, ev.Batch)
			}
		case obs.KindSubmit:
			if last, ok := lastArrival[ev.Shard]; ok && ev.T < last {
				return nil, fmt.Errorf("serve: trace event %d: submit at %v precedes the previous submit at %v on shard %d; non-monotone submissions mean unmerged concurrent clients — record a single client or a merged fleet", i, ev.T, last, ev.Shard)
			}
			lastArrival[ev.Shard] = ev.T
			secs := make([]prompt.Section, len(ev.Sections))
			for j, s := range ev.Sections {
				secs[j] = prompt.Section{Name: s.Name, Text: s.Text, Tokens: s.Tokens, Droppable: s.Droppable}
			}
			out = append(out, Request{
				Agent: ev.Agent, Priority: ev.Priority, Arrival: ev.T,
				Prompt: prompt.Prompt{Sections: secs}, OutTokens: ev.Out,
			})
		}
	}
	return out, nil
}

// ReplayObserved is Replay with a flight-recorder sink attached to the
// replaying endpoint, so an open-loop run emits the same lifecycle events
// a closed-loop one does (submit events for every trace entry up front,
// then route/batch/cache/complete per launch). A nil sink is exactly
// Replay.
func ReplayObserved(cfg Config, reqs []Request, sink obs.Sink) ReplayResult {
	e := New(cfg)
	if sink != nil {
		e.SetSink(sink)
	}
	return replayOn(e, reqs)
}
