package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// RunFixture parses and type-checks the fixture directory dir as a package
// with the given import path, runs analyzer a over it (directive hygiene
// included), and compares the findings against the fixture's // want
// comments — the golang.org/x/tools/go/analysis/analysistest convention,
// reimplemented on the stdlib:
//
//	for k := range m { // want `randomized order`
//
// Each // want comment carries one or more quoted regexps (backquoted or
// double-quoted); every finding on that line must be matched by one of
// them, and every want must match a finding. Lines with no want comment
// must produce no finding — which is exactly how the fixtures demonstrate
// their //detlint:allow'd negatives.
//
// The import path matters: analyzers scope themselves by package path
// (maprange polices internal/{core,env,...}; rawrand exempts
// internal/rng), so fixtures choose the path they want to be judged as.
func RunFixture(t *testing.T, a *Analyzer, dir, importPath string) {
	t.Helper()
	pkg, err := LoadFixture(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range splitQuoted(text[idx+len("want "):]) {
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, q, err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(f.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding at %s", f)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	var leftover []key
	for k, res := range wants {
		if len(res) > 0 {
			leftover = append(leftover, k)
		}
	}
	sort.Slice(leftover, func(i, j int) bool {
		if leftover[i].file != leftover[j].file {
			return leftover[i].file < leftover[j].file
		}
		return leftover[i].line < leftover[j].line
	})
	for _, k := range leftover {
		for _, re := range wants[k] {
			t.Errorf("%s:%d: want %q matched no finding", k.file, k.line, re)
		}
	}
}

// splitQuoted extracts the quoted segments ("..." or `...`) of a want
// comment's payload.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" || (s[0] != '"' && s[0] != '`') {
			return out
		}
		end := strings.IndexByte(s[1:], s[0])
		if end < 0 {
			return out
		}
		quoted := s[:end+2]
		if u, err := strconv.Unquote(quoted); err == nil {
			out = append(out, u)
		}
		s = s[end+2:]
	}
}

// LoadFixture parses and type-checks one fixture directory as importPath.
// Fixture imports (stdlib and intra-module alike) resolve through
// `go list -deps -export`, the same export-data path the real loader uses.
func LoadFixture(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[path] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}

	exports := map[string]string{}
	if len(imports) > 0 {
		args := []string{"list", "-deps", "-export", "-json=ImportPath,Export"}
		for path := range imports {
			args = append(args, path)
		}
		sort.Strings(args[4:])
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list fixture imports: %v\n%s", err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	typesPkg, info, err := TypeCheck(fset, importPath, files, NewExportImporter(fset, nil, exports))
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", dir, err)
	}
	return &Package{
		Path:      importPath,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     typesPkg,
		TypesInfo: info,
	}, nil
}
