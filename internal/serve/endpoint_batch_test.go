package serve

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"embench/internal/llm"
	"embench/internal/metrics"
	"embench/internal/prompt"
)

// serveBatchFresh is the seed ServeBatch implementation, kept verbatim as
// the differential reference for the scratch-reuse rewrite: fresh keys/outs
// slices and an unmemoized chain hash per member. Identical observable
// behaviour is the contract; only allocations may differ.
func serveBatchFresh(e *Endpoint, calls []llm.Call) []llm.Served {
	if len(calls) == 0 {
		return nil
	}
	if len(calls) == 1 {
		return []llm.Served{e.Serve(calls[0])}
	}
	arrival := calls[0].Arrival
	for _, c := range calls[1:] {
		if c.Arrival > arrival {
			arrival = c.Arrival
		}
	}
	keys := make([]promptKey, len(calls))
	outs := make([]int, len(calls))
	for i, c := range calls {
		keys[i], outs[i] = chainKeysIdent(nil, c.Prompt, e.cfg.Identity), c.OutTokens
	}
	r := e.route(arrival, keys[0], calls[0].OutTokens)
	start := arrival
	if r.freeAt > start {
		start = r.freeAt
	}
	service, members, totalEff, maxOut := e.admitBatch(r, keys, outs)
	end := start + service
	e.sealFrontier(r)
	r.startBatch(start, end, len(calls), totalEff, maxOut, service)
	e.busyAcc += service
	dec := service - e.cfg.Profile.BatchServiceTime(len(calls), totalEff, 0)
	if dec < 0 {
		dec = 0
	}
	out := make([]llm.Served, len(calls))
	for i, c := range calls {
		wait := start - c.Arrival
		r.lats = append(r.lats, end-c.Arrival)
		e.record(service, wait, len(calls), members[i].cached, members[i].total)
		out[i] = llm.Served{
			Latency: end - c.Arrival, QueueWait: wait,
			BatchSize: len(calls), CachedTokens: members[i].cached,
			PromptTokens: members[i].total, Decode: dec,
		}
	}
	return out
}

// batchScript is a mixed Serve/ServeBatch workload with varying batch
// sizes, so the endpoint scratch grows, shrinks and is reused dirty.
func batchScript() [][]llm.Call {
	var script [][]llm.Call
	for i := 0; i < 40; i++ {
		at := time.Duration(i) * 3 * time.Second
		if i%3 == 0 {
			script = append(script, []llm.Call{{
				Agent: "solo", Arrival: at,
				Prompt: sharedPrompt(fmt.Sprintf("a%d", i%5), 30+i), OutTokens: 40,
			}})
			continue
		}
		n := 2 + i%4
		batch := make([]llm.Call, n)
		for j := range batch {
			batch[j] = llm.Call{
				Agent:   fmt.Sprintf("a%d", j),
				Arrival: at + time.Duration(j)*100*time.Millisecond,
				Prompt:  sharedPrompt(fmt.Sprintf("a%d", j), 20+10*(i%7)),
				// One oversize prompt per batch exercises per-member sizes.
				OutTokens: 40 + 5*j,
			}
		}
		script = append(script, batch)
	}
	return script
}

// TestServeBatchScratchDifferential drives the identical workload through
// the scratch-reusing ServeBatch and through the seed fresh-allocation
// reference and requires byte-identical serving outcomes and endpoint
// statistics.
func TestServeBatchScratchDifferential(t *testing.T) {
	cfg := Config{Profile: noJitter, Replicas: 2, Routing: RouteCacheAffinity,
		MaxBatch: 4, MaxWait: time.Second, CacheEntries: 64}
	scratch, fresh := New(cfg), New(cfg)
	for i, batch := range batchScript() {
		a := scratch.ServeBatch(batch)
		b := serveBatchFresh(fresh, batch)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("op %d: scratch-reuse ServeBatch diverged from the fresh reference\nscratch %+v\nfresh   %+v", i, a, b)
		}
	}
	if !reflect.DeepEqual(scratch.Stats(), fresh.Stats()) {
		t.Fatalf("endpoint stats diverged:\nscratch %+v\nfresh   %+v", scratch.Stats(), fresh.Stats())
	}
}

// TestServeBatchResultsStableAcrossReuse guards the arena aliasing hazard:
// a ServeBatch call must not corrupt the results of a previous call, and
// repeated runs over a fresh endpoint must be identical.
func TestServeBatchResultsStableAcrossReuse(t *testing.T) {
	run := func() [][]llm.Served {
		e := New(Config{Profile: noJitter, Replicas: 2, MaxBatch: 4,
			MaxWait: time.Second, CacheEntries: 64})
		var out [][]llm.Served
		for _, batch := range batchScript() {
			out = append(out, e.ServeBatch(batch))
		}
		return out
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("ServeBatch results unstable across identical runs")
	}
}

// TestServeBatchCapacityPressureSpreads: explicitly aggregated batches
// must not evade the capacity-aware routing single calls get — a batch
// plants every member's chain, so placement charges the WHOLE batch's
// insertion footprint. Budget-blind, shared-preamble batches collapse onto
// one replica; with a token budget they spread.
func TestServeBatchCapacityPressureSpreads(t *testing.T) {
	mkBatch := func(stream, step int) []llm.Call {
		at := time.Duration(step)*6*time.Minute + time.Duration(stream)*30*time.Second
		batch := make([]llm.Call, 4)
		for j := range batch {
			batch[j] = llm.Call{
				Agent:   fmt.Sprintf("s%d-a%d", stream, j),
				Arrival: at,
				Prompt: prompt.New(
					prompt.Section{Name: "system", Tokens: 500},
					prompt.Section{Name: "task", Tokens: 200},
					prompt.Section{Name: fmt.Sprintf("persona-s%d-a%d", stream, j), Tokens: 400},
					prompt.Section{Name: "hist", Tokens: 40 + 30*step, Droppable: true},
				),
				OutTokens: 40,
			}
		}
		return batch
	}
	run := func(cacheTokens int) metrics.Serving {
		e := New(Config{Profile: noJitter, Replicas: 4, Routing: RouteCacheAffinity,
			CacheEntries: 512, CacheTokens: cacheTokens})
		for step := 0; step < 8; step++ {
			for stream := 0; stream < 8; stream++ {
				e.ServeBatch(mkBatch(stream, step))
			}
		}
		return e.Stats()
	}
	pure := run(0)
	if pure.MaxReplicaShare() < 0.9 {
		t.Fatalf("budget-blind aggregated batches should collapse (share %.2f)", pure.MaxReplicaShare())
	}
	aware := run(8192)
	if aware.MaxReplicaShare() >= pure.MaxReplicaShare() {
		t.Fatalf("batch capacity pressure should spread: share %.2f vs %.2f collapse",
			aware.MaxReplicaShare(), pure.MaxReplicaShare())
	}
	if aware.CacheTokensPeak > 8192 {
		t.Fatalf("per-replica peak %d exceeds the budget", aware.CacheTokensPeak)
	}
}

// BenchmarkServeBatch measures the explicit-batch admission path:
// scratch-reuse (the shipped path) against the seed's fresh-allocation
// reference. ReportAllocs is the satellite's acceptance number — the
// scratch path should allocate only the returned results.
func BenchmarkServeBatch(b *testing.B) {
	cfg := Config{Profile: noJitter, Replicas: 2, MaxBatch: 4,
		MaxWait: time.Second, CacheEntries: 256}
	batch := make([]llm.Call, 6)
	for j := range batch {
		batch[j] = llm.Call{
			Agent:   fmt.Sprintf("a%d", j),
			Prompt:  sharedPrompt(fmt.Sprintf("a%d", j), 40),
			Arrival: time.Duration(j) * 50 * time.Millisecond, OutTokens: 50,
		}
	}
	b.Run("fresh-alloc", func(b *testing.B) {
		e := New(cfg)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			serveBatchFresh(e, batch)
		}
	})
	b.Run("scratch-reuse", func(b *testing.B) {
		e := New(cfg)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.ServeBatch(batch)
		}
	})
}
