// Package metrics aggregates episode outcomes into the quantities the paper
// reports: success rate, average steps, end-to-end latency, per-module
// latency shares, token totals and message efficiency.
//
// The two layers are Episode (one task attempt, reduced from its trace by
// FromTrace) and Summary (a batch of episodes for one configuration,
// reduced by Summarize). Serving carries shared-endpoint statistics
// (internal/serve) alongside either layer: for an episode it is that
// episode's own share of the endpoint traffic, for a summary the merged
// totals. Serving's fields are deliberately all sums — never means or
// rates — so aggregates merge exactly across episodes, fleets and worker
// pools regardless of grouping; the derived quantities (MeanQueueWait,
// BatchOccupancy, CacheHitRate) are computed on demand from the sums.
//
// Everything here is pure arithmetic over finished traces: no clocks, no
// randomness, so aggregation can never perturb determinism.
package metrics

import (
	"math"
	"time"

	"embench/internal/trace"
)

// Serving aggregates shared serving-endpoint statistics (internal/serve)
// for one episode or one replay: how long requests queued, how full the
// continuous batches ran, and how much prefill the prefix cache absorbed.
// All fields are sums so that batches of episodes merge exactly.
type Serving struct {
	Requests      int           // calls served by the endpoint
	Replicas      int           // replica count of the endpoint that served them
	QueueWait     time.Duration // total admission-queue delay
	Service       time.Duration // total in-batch service time
	BatchedSeqs   int           // sum over requests of the batch size they rode in
	PrefillTokens int           // prompt tokens submitted (pre-discount)
	CachedTokens  int           // prompt tokens served from the prefix cache
	// Cache-memory statistics (endpoint-level only; per-episode shares do
	// not carry them). EvictedTokens sums like the fields above;
	// CacheTokensPeak is the high-water mark of live cached tokens on any
	// single replica cache, so it merges by max — a capacity fact, not a
	// flow, and the one deliberate exception to the all-sums rule.
	CacheTokensPeak int // peak live cached tokens on one replica
	EvictedTokens   int // cached tokens removed by capacity eviction
	// ReplicaRequests is the per-replica request spread (index = replica),
	// merged element-wise; MaxReplicaShare derives the placement-collapse
	// signal capacity-aware routing exists to fix. Shard rollups merge
	// replica i of every shard into slot i: the spread then reads "i-th
	// replica of each shard", which keeps shares comparable because
	// round-robin placement makes shards statistically alike.
	ReplicaRequests []int
	// Tail-latency distributions: fixed shared buckets, so merging is
	// element-wise count addition and exactly equals the histogram of the
	// combined observation set — the all-sums rule extended to
	// distributions. QueueWaitHist holds per-request admission-queue
	// delays, LatencyHist per-request end-to-end latencies (queueing plus
	// batch service, restated to the batch's final completion when
	// continuous-batching joins extend it).
	QueueWaitHist Hist
	LatencyHist   Hist
	// Disaggregated-endpoint accounting (internal/serve Prefill/Decode
	// pools). All zero on monolithic endpoints. PrefillService/DecodeService
	// split Service by stage, PrefillWait/DecodeWait split QueueWait;
	// HandoffTime and HandoffTokens sum the priced prefill→decode KV
	// transfers. All sums, merging like every flow field above.
	PrefillService time.Duration
	DecodeService  time.Duration
	PrefillWait    time.Duration
	DecodeWait     time.Duration
	HandoffTime    time.Duration
	HandoffTokens  int
	// Autoscaler accounting. ReplicaTime integrates active replicas over
	// the run (replica-seconds — the cost axis autoscaling trades against
	// the tail); it stays zero on fixed-replica endpoints, where cost is
	// simply Replicas × makespan. ScaleUps/ScaleDowns count scaling events.
	ReplicaTime time.Duration
	ScaleUps    int
	ScaleDowns  int
	// Fault-injection and client-resilience accounting (internal/serve
	// Faults / Retry / Hedge / Shed). All zero on fault-free runs; all sums,
	// so fleets and episode batches merge exactly like every flow field.
	// ShedRequests counts admission-shed logical requests, Retries
	// re-issued attempts after a deadline timeout, HedgesIssued duplicate
	// hedge attempts and HedgeWins the hedges that finished first, TimedOut
	// logical requests abandoned with an exhausted retry budget,
	// FailedBatches in-flight batches killed by a replica crash, and
	// ReplicaDowntime integrates crash-window time on active replicas.
	ShedRequests    int
	Retries         int
	HedgesIssued    int
	HedgeWins       int
	TimedOut        int
	FailedBatches   int
	ReplicaDowntime time.Duration
}

// Merge combines two serving aggregates (e.g. across episodes).
func (s Serving) Merge(o Serving) Serving {
	s.Requests += o.Requests
	if o.Replicas > s.Replicas {
		s.Replicas = o.Replicas
	}
	s.QueueWait += o.QueueWait
	s.Service += o.Service
	s.BatchedSeqs += o.BatchedSeqs
	s.PrefillTokens += o.PrefillTokens
	s.CachedTokens += o.CachedTokens
	if o.CacheTokensPeak > s.CacheTokensPeak {
		s.CacheTokensPeak = o.CacheTokensPeak
	}
	s.EvictedTokens += o.EvictedTokens
	s.PrefillService += o.PrefillService
	s.DecodeService += o.DecodeService
	s.PrefillWait += o.PrefillWait
	s.DecodeWait += o.DecodeWait
	s.HandoffTime += o.HandoffTime
	s.HandoffTokens += o.HandoffTokens
	s.QueueWaitHist = s.QueueWaitHist.Merge(o.QueueWaitHist)
	s.LatencyHist = s.LatencyHist.Merge(o.LatencyHist)
	s.ReplicaTime += o.ReplicaTime
	s.ScaleUps += o.ScaleUps
	s.ScaleDowns += o.ScaleDowns
	s.ShedRequests += o.ShedRequests
	s.Retries += o.Retries
	s.HedgesIssued += o.HedgesIssued
	s.HedgeWins += o.HedgeWins
	s.TimedOut += o.TimedOut
	s.FailedBatches += o.FailedBatches
	s.ReplicaDowntime += o.ReplicaDowntime
	if len(o.ReplicaRequests) > 0 {
		if len(o.ReplicaRequests) > len(s.ReplicaRequests) {
			grown := make([]int, len(o.ReplicaRequests))
			copy(grown, s.ReplicaRequests)
			s.ReplicaRequests = grown
		} else {
			// Copy-on-write: never mutate the receiver's backing array.
			s.ReplicaRequests = append([]int(nil), s.ReplicaRequests...)
		}
		for i, n := range o.ReplicaRequests {
			s.ReplicaRequests[i] += n
		}
	}
	return s
}

// MaxReplicaShare reports the largest fraction of requests any one replica
// served — 1/Replicas for a perfectly even spread, 1.0 for a total
// collapse onto one replica. Zero when the spread was not recorded.
func (s Serving) MaxReplicaShare() float64 {
	total, max := 0, 0
	for _, n := range s.ReplicaRequests {
		total += n
		if n > max {
			max = n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) / float64(total)
}

// MeanQueueWait reports the average admission-queue delay per request.
func (s Serving) MeanQueueWait() time.Duration {
	if s.Requests == 0 {
		return 0
	}
	return time.Duration(float64(s.QueueWait) / float64(s.Requests))
}

// MeanService reports the average in-batch service time per request.
func (s Serving) MeanService() time.Duration {
	if s.Requests == 0 {
		return 0
	}
	return time.Duration(float64(s.Service) / float64(s.Requests))
}

// BatchOccupancy reports the mean batch size a request was served in
// (1.0 = no batching ever happened).
func (s Serving) BatchOccupancy() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.BatchedSeqs) / float64(s.Requests)
}

// CacheHitRate reports the fraction of submitted prompt tokens whose
// prefill was served from the shared prefix cache.
func (s Serving) CacheHitRate() float64 {
	if s.PrefillTokens == 0 {
		return 0
	}
	return float64(s.CachedTokens) / float64(s.PrefillTokens)
}

// SLOAttainment reports the fraction of requests whose end-to-end latency
// met the target (resolved at histogram-bucket granularity — see
// Hist.FracBelow). 1.0 when no requests were recorded.
func (s Serving) SLOAttainment(slo time.Duration) float64 {
	return s.LatencyHist.FracBelow(slo)
}

// Episode is the outcome of one task attempt by one system configuration.
type Episode struct {
	Success      bool
	Steps        int           // environment steps consumed
	SimDuration  time.Duration // total simulated latency
	Breakdown    map[trace.Module]time.Duration
	LLMCalls     int
	PromptTokens int
	OutputTokens int
	Messages     trace.MessageStats
	LLMShare     float64 // fraction of latency in LLM calls
	ReachedLimit bool    // hit the step cap without finishing (Fig. 3 "Lmax")
	Serving      Serving // shared-endpoint stats; zero when serving direct
}

// FromTrace builds an Episode from a finished trace.
func FromTrace(tr *trace.Trace, success, reachedLimit bool, steps int) Episode {
	p, o := tr.Tokens()
	return Episode{
		Success:      success,
		Steps:        steps,
		SimDuration:  tr.Total(),
		Breakdown:    tr.Breakdown(),
		LLMCalls:     tr.LLMCalls(),
		PromptTokens: p,
		OutputTokens: o,
		Messages:     tr.Messages(),
		LLMShare:     tr.LLMShare(),
		ReachedLimit: reachedLimit,
	}
}

// Summary aggregates a batch of episodes for one configuration.
type Summary struct {
	Episodes     int
	SuccessRate  float64 // fraction in [0,1]
	MeanSteps    float64
	MeanDuration time.Duration
	MeanStepTime time.Duration // MeanDuration / MeanSteps
	ModuleShare  map[trace.Module]float64
	MeanLLMCalls float64
	MeanPrompt   float64
	MeanOutput   float64
	LLMShare     float64
	MessageRate  float64 // useful/generated across all episodes
	LimitRate    float64 // fraction of episodes that hit the step cap
	Serving      Serving // merged shared-endpoint stats across episodes
}

// Summarize reduces episodes into a Summary. An empty slice yields the zero
// Summary.
func Summarize(eps []Episode) Summary {
	var s Summary
	if len(eps) == 0 {
		return s
	}
	s.Episodes = len(eps)
	var steps, llmCalls, prompt, output int
	var dur time.Duration
	var llmShare float64
	totals := make(map[trace.Module]time.Duration)
	var grand time.Duration
	var gen, useful int
	for _, e := range eps {
		if e.Success {
			s.SuccessRate++
		}
		if e.ReachedLimit {
			s.LimitRate++
		}
		steps += e.Steps
		dur += e.SimDuration
		llmCalls += e.LLMCalls
		prompt += e.PromptTokens
		output += e.OutputTokens
		llmShare += e.LLMShare
		gen += e.Messages.Generated
		useful += e.Messages.Useful
		s.Serving = s.Serving.Merge(e.Serving)
		for m, d := range e.Breakdown {
			totals[m] += d
			grand += d
		}
	}
	n := float64(len(eps))
	s.SuccessRate /= n
	s.LimitRate /= n
	s.MeanSteps = float64(steps) / n
	s.MeanDuration = time.Duration(float64(dur) / n)
	if s.MeanSteps > 0 {
		s.MeanStepTime = time.Duration(float64(s.MeanDuration) / s.MeanSteps)
	}
	s.MeanLLMCalls = float64(llmCalls) / n
	s.MeanPrompt = float64(prompt) / n
	s.MeanOutput = float64(output) / n
	s.LLMShare = llmShare / n
	if gen > 0 {
		s.MessageRate = float64(useful) / float64(gen)
	}
	s.ModuleShare = make(map[trace.Module]float64, len(totals))
	if grand > 0 {
		for m, d := range totals {
			s.ModuleShare[m] = float64(d) / float64(grand)
		}
	}
	return s
}

// Ratio reports a/b, or NaN when b is zero. Used for ablation multipliers
// such as "disabling memory increases steps by 1.61×".
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}

// Pts converts a success-rate delta to percentage points.
func Pts(a, b float64) float64 { return (a - b) * 100 }
