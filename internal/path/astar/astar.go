// Package astar implements A* grid path planning — the low-level execution
// substrate used by CoELA, COMBO and COHERENT (paper Table II).
//
// The planner reports the number of expanded nodes; the execution module
// converts that to simulated compute latency, which is how low-level
// planning shows up in the paper's latency breakdowns (Fig. 2a).
package astar

import (
	"container/heap"

	"embench/internal/world"
)

// Result is the outcome of a planning query.
type Result struct {
	Path     []world.Cell // start..goal inclusive; nil when not Found
	Expanded int          // nodes popped from the open list
	Found    bool
}

// Plan searches for a shortest 4-connected path from start to goal on g.
// A blocked or out-of-bounds endpoint yields Found=false. Planning from a
// cell to itself returns a single-cell path.
func Plan(g *world.Grid, start, goal world.Cell) Result {
	if g.Blocked(start) || g.Blocked(goal) {
		return Result{}
	}
	if start == goal {
		return Result{Path: []world.Cell{start}, Expanded: 1, Found: true}
	}
	type nodeKey = world.Cell
	gScore := map[nodeKey]int{start: 0}
	parent := map[nodeKey]nodeKey{}
	open := &pq{}
	heap.Init(open)
	heap.Push(open, item{cell: start, f: world.Manhattan(start, goal)})
	closed := map[nodeKey]bool{}
	expanded := 0
	buf := make([]world.Cell, 0, 4)

	for open.Len() > 0 {
		cur := heap.Pop(open).(item)
		if closed[cur.cell] {
			continue
		}
		closed[cur.cell] = true
		expanded++
		if cur.cell == goal {
			return Result{Path: reconstruct(parent, start, goal), Expanded: expanded, Found: true}
		}
		buf = buf[:0]
		for _, n := range g.Neighbors4(cur.cell, buf) {
			if closed[n] {
				continue
			}
			tentative := gScore[cur.cell] + 1
			if old, ok := gScore[n]; !ok || tentative < old {
				gScore[n] = tentative
				parent[n] = cur.cell
				heap.Push(open, item{cell: n, f: tentative + world.Manhattan(n, goal), g: tentative})
			}
		}
	}
	return Result{Expanded: expanded}
}

func reconstruct(parent map[world.Cell]world.Cell, start, goal world.Cell) []world.Cell {
	var rev []world.Cell
	for c := goal; ; {
		rev = append(rev, c)
		if c == start {
			break
		}
		c = parent[c]
	}
	path := make([]world.Cell, len(rev))
	for i, c := range rev {
		path[len(rev)-1-i] = c
	}
	return path
}

// item is a prioritized open-list entry.
type item struct {
	cell world.Cell
	f, g int
}

// pq is a binary min-heap on f, breaking ties toward larger g (deeper
// nodes), the standard A* tie-break that reduces re-expansion.
type pq []item

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].f != q[j].f {
		return q[i].f < q[j].f
	}
	return q[i].g > q[j].g
}
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)   { *q = append(*q, x.(item)) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
