package serve

import (
	"fmt"
	"sort"
	"time"

	"embench/internal/rng"
)

// This file is the resilient open-loop event loop: Replay with fault
// injection (serve.Faults) and client resilience (Request.Deadline,
// RetryPolicy, HedgePolicy, ShedPolicy) in play. replayOn dispatches here
// whenever any of those is enabled; the seed loop in replay.go stays
// byte-identical for fault-free, policy-free traces.
//
// The unit of scheduling is an ATTEMPT: one service try of a logical
// request — the original submission, a deadline-triggered retry, or a hedge
// duplicate. Attempts queue, batch and launch exactly like requests do in
// the seed loop; the logical request resolves with the first attempt whose
// batch completes (ties break toward the earlier attempt), and its
// remaining attempts are cancelled — free while still queued, priced as
// wasted replica occupancy once launched. A replica crash kills the whole
// in-flight batch: its attempts re-enter the admission queue at the crash
// instant with their arrival times intact (deadline-expired ones time out
// right there), so every injected failure's requests are re-served, shed or
// timed out explicitly — never silently lost.
//
// Everything is deterministic: fault schedules and retry jitter come from
// named RNG streams (per replica slot and per request index respectively),
// every same-instant tie processes in a fixed category order (completions,
// timeouts, timers, arrivals, launches) with index tie-breaks, so a
// resilient replay is a pure function of (cfg, reqs) — byte-identical
// across reruns and worker counts, and its Serving counters merge exactly.
//
// Accounting convention: flow statistics (Requests, Service, QueueWait,
// BatchedSeqs, prompt/cache tokens, LatencyHist) count WINNING attempts
// only — the work the client actually received, with latency measured from
// the original arrival. Losing hedges, crash-killed batches and abandoned
// attempts still burn replica occupancy (busyAcc, so autoscaler utilization
// sees failures as scale-up pressure) and are visible through the dedicated
// counters: Retries, HedgesIssued/HedgeWins, TimedOut, ShedRequests,
// FailedBatches, ReplicaDowntime.

// Outcome labels how a replayed logical request resolved.
type Outcome string

const (
	// OutcomeServed is the zero value: the request completed. Fault-free
	// replays never set the field, keeping their Completions byte-identical.
	OutcomeServed Outcome = ""
	// OutcomeShed means admission rejected the request under load (ShedPolicy).
	OutcomeShed Outcome = "shed"
	// OutcomeTimedOut means the deadline expired with no retry budget left.
	OutcomeTimedOut Outcome = "timeout"
)

// resilient reports whether any client-resilience policy is configured.
func (c Config) resilient() bool {
	return c.Retry.enabled() || c.Hedge.enabled() || c.Shed.enabled()
}

// anyDeadline reports whether any request carries a per-attempt deadline.
func anyDeadline(reqs []Request) bool {
	for i := range reqs {
		if reqs[i].Deadline > 0 {
			return true
		}
	}
	return false
}

// rAttempt is one service attempt of a logical request.
type rAttempt struct {
	req     int           // logical request index
	hedge   bool          // a hedge duplicate (vs original/retry)
	arrival time.Duration // when the attempt entered admission
	// Batch state once launched:
	inflight             bool
	start, end, service  time.Duration
	batch, cached, total int
	ri                   int // replica that hosted the batch
}

// rState is one logical request's resilience bookkeeping.
type rState struct {
	retries    int  // retries used (attempt number of the latest wave)
	wave       int  // non-hedge attempt generation; hedge timers carry it
	hedged     bool // a hedge was issued in the current wave
	everHedged bool
	live       int // attempts currently queued or in service
	done       bool
	st         *rng.Stream // lazy per-request backoff jitter stream
}

// timer kinds: a scheduled retry re-entry or a hedge issue point.
const (
	timerRetry = iota
	timerHedge
)

// rTimer is a scheduled future admission event.
type rTimer struct {
	at   time.Duration
	seq  int // insertion order, the same-instant tie-break
	kind int
	req  int
	wave int           // hedge: issuing wave (stale timers are ignored)
	dur  time.Duration // retry: the backoff, for the retry event
}

// replayResilient is the discrete-event loop behind Replay when fault
// injection or client resilience is enabled. See the file comment for the
// model; the batching/launch mechanics mirror replayOn.
func replayResilient(e *Endpoint, reqs []Request) ReplayResult {
	res := ReplayResult{Completions: make([]Completion, len(reqs))}
	if len(reqs) == 0 {
		return res
	}

	keys := make([]promptKey, len(reqs))
	for i := range reqs {
		keys[i] = chainKeysIdent(nil, reqs[i].Prompt, e.cfg.Identity)
	}

	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		qa, qb := reqs[order[a]], reqs[order[b]]
		if qa.Arrival != qb.Arrival {
			return qa.Arrival < qb.Arrival
		}
		if qa.Priority != qb.Priority {
			return qa.Priority < qb.Priority
		}
		return order[a] < order[b]
	})

	if e.sink != nil {
		for _, qi := range order {
			rq := reqs[qi]
			e.emitSubmit(int64(qi)+1, rq.Agent, rq.Arrival, rq.Prompt, rq.OutTokens, rq.Priority)
		}
	}

	states := make([]rState, len(reqs))
	var attempts []rAttempt
	var queue []int    // attempt ids, sorted by (priority, attempt arrival, id)
	var inflight []int // attempt ids whose batch is running
	var timers []rTimer
	timerSeq := 0
	// Retry jitter shares the fault seed's root (zero is a valid seed): the
	// stream is per request INDEX, so a request's backoff schedule is
	// independent of when — or on which replica — its attempts ran.
	retrySrc := rng.New(e.cfg.Faults.Seed).Sub("serve/retry")

	nextArr := 0
	now := reqs[order[0]].Arrival
	doneCount := 0
	queueDirty := false
	hasDeadlines := anyDeadline(reqs)

	sortQueue := func() {
		if !queueDirty {
			return
		}
		queueDirty = false
		sort.SliceStable(queue, func(a, b int) bool {
			aa, ab := &attempts[queue[a]], &attempts[queue[b]]
			pa, pb := reqs[aa.req].Priority, reqs[ab.req].Priority
			if pa != pb {
				return pa < pb
			}
			if aa.arrival != ab.arrival {
				return aa.arrival < ab.arrival
			}
			return queue[a] < queue[b]
		})
	}

	oldestQueued := func() time.Duration {
		oldest := attempts[queue[0]].arrival
		for _, ai := range queue[1:] {
			if attempts[ai].arrival < oldest {
				oldest = attempts[ai].arrival
			}
		}
		return oldest
	}

	shedNow := func(t time.Duration, prio int) bool {
		p := e.cfg.Shed
		if !p.enabled() || prio < p.Priority {
			return false
		}
		if p.Queue > 0 && len(queue) >= p.Queue {
			return true
		}
		return p.Wait > 0 && len(queue) > 0 && t-oldestQueued() >= p.Wait
	}

	resolveShed := func(req int, t time.Duration) {
		st := &states[req]
		st.done = true
		doneCount++
		e.stats.ShedRequests++
		rq := reqs[req]
		res.Completions[req] = Completion{
			Agent: rq.Agent, Arrival: rq.Arrival, Done: t,
			Outcome: OutcomeShed, Retries: st.retries, Hedged: st.everHedged,
		}
		if e.sink != nil {
			e.emitShed(int64(req)+1, t, rq.Priority)
		}
	}

	// enqueue admits one non-hedge attempt (original or retry) at time t,
	// applying the shed policy first. It opens a new wave: the hedge timer
	// (if hedging is on) arms against this attempt's entry.
	enqueue := func(req int, t time.Duration) {
		if shedNow(t, reqs[req].Priority) {
			resolveShed(req, t)
			return
		}
		st := &states[req]
		st.wave++
		st.hedged = false
		st.live++
		attempts = append(attempts, rAttempt{req: req, arrival: t})
		queue = append(queue, len(attempts)-1)
		queueDirty = true
		if e.cfg.Hedge.enabled() {
			timers = append(timers, rTimer{
				at: t + e.cfg.Hedge.Delay, seq: timerSeq,
				kind: timerHedge, req: req, wave: st.wave,
			})
			timerSeq++
		}
	}

	// attemptLost handles a request losing its last live attempt at te:
	// schedule a retry while budget remains, otherwise resolve timed-out.
	attemptLost := func(req int, te time.Duration) {
		st := &states[req]
		if st.done || st.live > 0 {
			return
		}
		if e.cfg.Retry.enabled() && st.retries < e.cfg.Retry.Max {
			st.retries++
			e.stats.Retries++
			if st.st == nil {
				st.st = retrySrc.NewStream(fmt.Sprintf("req-%d", req))
			}
			back := e.cfg.Retry.backoff(st.retries-1, st.st)
			timers = append(timers, rTimer{
				at: te + back, seq: timerSeq, kind: timerRetry,
				req: req, wave: st.retries, dur: back,
			})
			timerSeq++
			return
		}
		st.done = true
		doneCount++
		e.stats.TimedOut++
		rq := reqs[req]
		res.Completions[req] = Completion{
			Agent: rq.Agent, Arrival: rq.Arrival, Done: te,
			Outcome: OutcomeTimedOut, Retries: st.retries, Hedged: st.everHedged,
		}
	}

	// timeOutAttempt expires one attempt (already removed from the queue) at
	// te: its batch never launched within the deadline.
	timeOutAttempt := func(ai int, te time.Duration) {
		a := &attempts[ai]
		st := &states[a.req]
		st.live--
		if e.sink != nil {
			e.emitTimeout(int64(a.req)+1, te, reqs[a.req].Deadline)
		}
		attemptLost(a.req, te)
	}

	// dropFromQueue removes one attempt id from the queue (order preserved).
	dropFromQueue := func(ai int) {
		for i, q := range queue {
			if q == ai {
				queue = append(queue[:i], queue[i+1:]...)
				return
			}
		}
	}

	// resolveServed completes a logical request with attempt ai's batch:
	// winner-only flow accounting, cancellation of still-queued duplicates
	// (in-service duplicates run on as priced waste).
	resolveServed := func(ai int) {
		a := &attempts[ai]
		st := &states[a.req]
		rq := reqs[a.req]
		if st.done {
			return // a sibling already won; this batch's span was pure waste
		}
		st.done = true
		doneCount++
		if a.hedge {
			e.stats.HedgeWins++
		}
		wait := a.start - a.arrival
		e.record(a.service, wait, a.batch, a.cached, a.total)
		e.stats.LatencyHist.Observe(a.end - rq.Arrival)
		res.Completions[a.req] = Completion{
			Agent: rq.Agent, Arrival: rq.Arrival, Start: a.start, Done: a.end,
			QueueWait: wait, BatchSize: a.batch,
			PromptTokens: a.total, CachedTokens: a.cached,
			Retries: st.retries, Hedged: st.everHedged,
		}
		if e.sink != nil {
			e.emitComplete(int64(a.req)+1, rq.Agent, a.ri, a.end, a.end-rq.Arrival, wait, a.batch, a.cached, a.total)
		}
		// Cancel queued duplicates for free; they never reached a replica.
		for i := 0; i < len(queue); {
			if attempts[queue[i]].req == a.req {
				st.live--
				queue = append(queue[:i], queue[i+1:]...)
				continue
			}
			i++
		}
	}

	shouldLaunch := func() bool {
		if e.cfg.MaxBatch <= 1 || len(queue) >= e.cfg.MaxBatch {
			return true
		}
		if nextArr >= len(order) && len(timers) == 0 {
			return true // nothing else is coming; waiting is pure loss
		}
		return now-oldestQueued() >= e.cfg.MaxWait
	}

	for doneCount < len(reqs) {
		if e.fx != nil {
			e.applyFaults(now)
		}
		e.maybeAutoscale(now)

		// 1. Batch completions due by now, in (end, attempt id) order: the
		// first completion of a request wins it; later ones were waste.
		for {
			best := -1
			for idx, ai := range inflight {
				a := &attempts[ai]
				if a.end > now {
					continue
				}
				if best < 0 || a.end < attempts[inflight[best]].end ||
					(a.end == attempts[inflight[best]].end && ai < inflight[best]) {
					best = idx
				}
			}
			if best < 0 {
				break
			}
			ai := inflight[best]
			inflight = append(inflight[:best], inflight[best+1:]...)
			attempts[ai].inflight = false
			states[attempts[ai].req].live--
			resolveServed(ai)
		}

		// 2. Deadline expiries among queued attempts, in (expiry, id) order.
		if hasDeadlines {
			for {
				best, bestTe := -1, time.Duration(0)
				for _, ai := range queue {
					a := &attempts[ai]
					d := reqs[a.req].Deadline
					if d <= 0 {
						continue
					}
					te := a.arrival + d
					if te > now {
						continue
					}
					if best < 0 || te < bestTe || (te == bestTe && ai < best) {
						best, bestTe = ai, te
					}
				}
				if best < 0 {
					break
				}
				dropFromQueue(best)
				timeOutAttempt(best, bestTe)
			}
		}

		// 3. Due timers (retry re-entries, hedge issue points), in (at, seq)
		// order.
		for {
			best := -1
			for i := range timers {
				if timers[i].at > now {
					continue
				}
				if best < 0 || timers[i].at < timers[best].at ||
					(timers[i].at == timers[best].at && timers[i].seq < timers[best].seq) {
					best = i
				}
			}
			if best < 0 {
				break
			}
			tm := timers[best]
			timers = append(timers[:best], timers[best+1:]...)
			st := &states[tm.req]
			switch tm.kind {
			case timerRetry:
				if st.done {
					break
				}
				if e.sink != nil {
					e.emitRetry(int64(tm.req)+1, tm.at, tm.dur, tm.wave)
				}
				enqueue(tm.req, tm.at)
			case timerHedge:
				// Stale guards: the request resolved, moved to a newer wave,
				// already hedged this wave, or has no live attempt to hedge.
				if st.done || tm.wave != st.wave || st.hedged || st.live < 1 {
					break
				}
				// Hedging into an overloaded queue is counterproductive: the
				// shed policy suppresses the duplicate silently (the original
				// attempt is unaffected).
				if shedNow(tm.at, reqs[tm.req].Priority) {
					break
				}
				st.hedged, st.everHedged = true, true
				st.live++
				e.stats.HedgesIssued++
				attempts = append(attempts, rAttempt{req: tm.req, hedge: true, arrival: tm.at})
				queue = append(queue, len(attempts)-1)
				queueDirty = true
				if e.sink != nil {
					e.emitHedge(int64(tm.req)+1, tm.at)
				}
			}
		}

		// 4. Original arrivals.
		for nextArr < len(order) && reqs[order[nextArr]].Arrival <= now {
			qi := order[nextArr]
			nextArr++
			enqueue(qi, reqs[qi].Arrival)
		}
		sortQueue()

		// 5. Launch batches while an idle replica and the policy allow. A
		// batch never carries two attempts of the same request (racing your
		// own duplicate inside one batch is pure waste); skipped duplicates
		// stay queued.
		for len(queue) > 0 && shouldLaunch() {
			r := e.routeIdle(now, keys[attempts[queue[0]].req])
			if r == nil {
				break
			}
			var batch []int
			for _, ai := range queue {
				dup := false
				for _, bi := range batch {
					if attempts[bi].req == attempts[ai].req {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				batch = append(batch, ai)
				if len(batch) >= e.cfg.MaxBatch {
					break
				}
			}
			n := len(batch)
			taken := make(map[int]bool, n)
			for _, ai := range batch {
				taken[ai] = true
			}
			rest := queue[:0]
			for _, ai := range queue {
				if !taken[ai] {
					rest = append(rest, ai)
				}
			}
			queue = rest

			bkeys := make([]promptKey, n)
			outs := make([]int, n)
			for bi, ai := range batch {
				bkeys[bi], outs[bi] = keys[attempts[ai].req], reqs[attempts[ai].req].OutTokens
			}
			ri := e.rindex(r)
			var evBefore int
			if e.sink != nil {
				e.emitRoute(int64(attempts[batch[0]].req)+1, now, r, bkeys[0])
				_, _, evBefore = r.cache.stats()
			}
			service, members, totalEff, maxOut := e.admitBatch(r, bkeys, outs)
			if e.fx != nil {
				if f := e.stragFactor(ri, now); f > 1 {
					service = time.Duration(float64(service) * f)
				}
				if w, hit := e.crashIn(ri, now, now+service); hit {
					// The crash kills the whole batch: revert the replica's
					// served count, charge the occupancy burned until the
					// crash, and put every member back into admission at the
					// crash instant — except members whose deadline has
					// already passed, which time out right there.
					r.requests -= n
					e.busyAcc += w.start - now
					e.crashReplica(r, ri, w, n)
					for _, ai := range batch {
						a := &attempts[ai]
						if d := reqs[a.req].Deadline; d > 0 && w.start >= a.arrival+d {
							timeOutAttempt(ai, w.start)
							continue
						}
						queue = append(queue, ai)
						queueDirty = true
					}
					sortQueue()
					continue
				}
			}
			end := now + service
			e.sealFrontier(r)
			r.startBatch(now, end, n, totalEff, maxOut, service)
			e.busyAcc += service
			res.Batches++
			if e.sink != nil {
				for bi, ai := range batch {
					e.emitCache(int64(attempts[ai].req)+1, now, ri, members[bi].cached, members[bi].total)
				}
				if _, _, evAfter := r.cache.stats(); evAfter > evBefore {
					e.emitEvict(now, ri, evAfter-evBefore)
				}
				e.emitBatchStart(now, ri, n, totalEff, maxOut, service)
			}
			for bi, ai := range batch {
				a := &attempts[ai]
				a.inflight = true
				a.start, a.end, a.service = now, end, service
				a.batch, a.cached, a.total = n, members[bi].cached, members[bi].total
				a.ri = ri
				inflight = append(inflight, ai)
			}
			if end > res.Makespan {
				res.Makespan = end
			}
		}
		if doneCount >= len(reqs) {
			break
		}

		// 6. Advance virtual time to the next event: an arrival, a timer, a
		// queued attempt's deadline, a batch completing, a replica freeing
		// (or restarting), a batching-window expiry, an autoscale tick, or
		// an idle replica's scheduled crash.
		next := time.Duration(1<<63 - 1)
		if nextArr < len(order) {
			if t := reqs[order[nextArr]].Arrival; t < next {
				next = t
			}
		}
		for i := range timers {
			if t := timers[i].at; t > now && t < next {
				next = t
			}
		}
		for _, ai := range queue {
			if d := reqs[attempts[ai].req].Deadline; d > 0 {
				if t := attempts[ai].arrival + d; t > now && t < next {
					next = t
				}
			}
		}
		for _, ai := range inflight {
			if t := attempts[ai].end; t > now && t < next {
				next = t
			}
		}
		if len(queue) > 0 && e.cfg.MaxBatch > 1 {
			if t := oldestQueued() + e.cfg.MaxWait; t > now && t < next {
				next = t
			}
		}
		for ri := range e.replicas[:e.active] {
			if t := e.replicas[ri].freeAt; t > now && t < next {
				next = t
			}
		}
		if e.cfg.Autoscale.enabled() && e.asNext > now && e.asNext < next {
			next = e.asNext
		}
		if t, ok := e.nextFault(now); ok && t < next {
			next = t
		}
		if next <= now {
			next = now + time.Nanosecond // safety: time must advance
		}
		now = next
	}
	if e.fx != nil {
		// Drain downtime accounting through the end of the run: windows
		// opening after the last served batch still count as downtime
		// inside the horizon actually simulated.
		e.applyFaults(res.Makespan)
	}
	e.finishAutoscale(res.Makespan)
	res.Stats = e.Stats()
	return res
}
