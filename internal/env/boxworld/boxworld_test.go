package boxworld

import (
	"fmt"
	"testing"

	"embench/internal/core"
	"embench/internal/modules/memory"
	"embench/internal/rng"
	"embench/internal/world"
)

func newCorridor(agents int, d world.Difficulty) *Corridor {
	return New(Config{Agents: agents, Difficulty: d}, rng.New(3))
}

// fullView renders every box's true state — a perfectly informed belief.
func fullView(c *Corridor) []memory.Record {
	var recs []memory.Record
	for _, b := range c.boxes {
		recs = append(recs, memory.Record{
			Step: c.Step(), Kind: memory.Observation, Key: fmt.Sprintf("box:%d", b.id),
			Payload: BoxFact{ID: b.id, Cell: b.cell, Goal: b.goal, Heavy: b.heavy},
			Tokens:  boxFactTokens,
		})
	}
	return recs
}

func TestGeometry(t *testing.T) {
	c := newCorridor(3, world.Easy)
	if c.Length() != 7 {
		t.Fatalf("corridor length = %d, want 7", c.Length())
	}
	// Arm reaches tile the corridor with overlaps at even cells.
	for cell := 0; cell < c.Length(); cell++ {
		covered := 0
		for a := 0; a < 3; a++ {
			if c.InReach(a, cell) {
				covered++
			}
		}
		if covered == 0 {
			t.Fatalf("cell %d uncovered", cell)
		}
		if cell%2 == 0 && cell > 0 && cell < c.Length()-1 && covered != 2 {
			t.Fatalf("boundary cell %d covered by %d arms, want 2", cell, covered)
		}
	}
}

func TestMoveValidation(t *testing.T) {
	c := newCorridor(2, world.Easy)
	b := c.boxes[0]
	// Find the arm that reaches the box.
	arm := -1
	for a := 0; a < 2; a++ {
		if c.InReach(a, b.cell) {
			arm = a
			break
		}
	}
	if arm == -1 {
		t.Fatal("no arm reaches box 0")
	}
	// Wrong from-cell.
	if c.Execute(arm, Move{Box: 0, From: b.cell + 1, To: b.cell}).Achieved {
		t.Fatal("stale from-cell should fail")
	}
	// Non-adjacent destination.
	if c.Execute(arm, Move{Box: 0, From: b.cell, To: b.cell + 2}).Achieved {
		t.Fatal("two-cell jump should fail")
	}
}

func TestMoveOutOfReachFails(t *testing.T) {
	c := New(Config{Agents: 4, Difficulty: world.Easy}, rng.New(3))
	b := c.boxes[0]
	// Find an arm that does NOT reach the box.
	for a := 0; a < 4; a++ {
		if !c.InReach(a, b.cell) {
			dest := b.cell + 1
			if dest >= c.Length() {
				dest = b.cell - 1
			}
			res := c.Execute(a, Move{Box: 0, From: b.cell, To: dest})
			if res.Achieved {
				t.Fatal("out-of-reach move should fail")
			}
			return
		}
	}
	t.Skip("all arms reach box 0 in this instance")
}

func TestBoxHandledOncePerStep(t *testing.T) {
	c := New(Config{Agents: 3, Difficulty: world.Easy, Boxes: 1}, rng.New(9))
	b := c.boxes[0]
	// Put the box on a boundary cell so two arms reach it.
	b.cell = 2
	b.goal = 6
	// Arm 1 (reach 2–4) does the moving.
	if !c.Execute(1, Move{Box: 0, From: 2, To: 3}).Achieved {
		t.Fatal("first move should succeed")
	}
	if c.Execute(1, Move{Box: 0, From: 3, To: 4}).Achieved {
		t.Fatal("second handling in one step should fail")
	}
	c.Tick()
	if !c.Execute(1, Move{Box: 0, From: 3, To: 4}).Achieved {
		t.Fatal("move after Tick should succeed")
	}
}

func TestHeavyBoxNeedsTwoArms(t *testing.T) {
	c := New(Config{Agents: 2, Difficulty: world.Medium, Boxes: 2}, rng.New(3))
	b := c.boxes[0] // heavy by construction (first box)
	if !b.heavy {
		t.Fatal("first medium box should be heavy")
	}
	b.cell = 2 // boundary: arms 0 and 1 both reach
	b.goal = 4
	// Single arm move fails outright.
	if c.Execute(0, Move{Box: 0, From: 2, To: 3}).Achieved {
		t.Fatal("single-arm move of heavy box should fail")
	}
	// Single lift registers but the box doesn't move.
	if !c.Execute(0, Lift{Box: 0, From: 2, To: 3}).Achieved {
		t.Fatal("lift intent should register")
	}
	c.Tick()
	if c.BoxCell(0) != 2 {
		t.Fatal("heavy box moved with only one lifter")
	}
	// Two lifts the same step move it.
	c.Execute(0, Lift{Box: 0, From: 2, To: 3})
	c.Execute(1, Lift{Box: 0, From: 2, To: 3})
	c.Tick()
	if c.BoxCell(0) != 3 {
		t.Fatal("coordinated lift failed")
	}
}

func TestLiftLightBoxFails(t *testing.T) {
	c := newCorridor(2, world.Easy) // easy has no heavy boxes
	b := c.boxes[0]
	arm := 0
	if !c.InReach(0, b.cell) {
		arm = 1
	}
	if c.Execute(arm, Lift{Box: 0, From: b.cell, To: b.cell + 1}).Achieved {
		t.Fatal("lifting a light box should fail")
	}
}

func TestOracleRelaySolvesEasy(t *testing.T) {
	c := newCorridor(3, world.Easy)
	steps := drive(t, c, 80)
	if !c.Success() {
		t.Fatalf("easy oracle failed after %d steps (progress %.2f)", steps, c.Progress())
	}
}

func TestOracleSolvesHard(t *testing.T) {
	c := newCorridor(4, world.Hard)
	steps := drive(t, c, 200)
	if !c.Success() {
		t.Fatalf("hard oracle failed after %d steps (progress %.2f)", steps, c.Progress())
	}
	if steps > c.MaxSteps() {
		t.Fatalf("oracle used %d steps, horizon %d", steps, c.MaxSteps())
	}
}

// drive runs the joint oracle with perfect knowledge.
func drive(t *testing.T, c *Corridor, cap int) int {
	t.Helper()
	steps := 0
	for !c.Done() && steps < cap {
		bel := c.BuildBelief(core.CentralAgent, fullView(c))
		joint := c.ProposeJoint(bel).Good.(*core.Joint)
		for a := 0; a < c.Agents(); a++ {
			c.Execute(a, joint.Assign[a])
		}
		c.Tick()
		steps++
	}
	return steps
}

func TestDecentralizedOracleSolves(t *testing.T) {
	c := newCorridor(3, world.Medium)
	steps := 0
	for !c.Done() && steps < 150 {
		for a := 0; a < c.Agents(); a++ {
			prop := c.Propose(a, c.BuildBelief(a, fullView(c)))
			c.Execute(a, prop.Good)
		}
		c.Tick()
		steps++
	}
	if !c.Success() {
		t.Fatalf("decentralized oracle failed (progress %.2f)", c.Progress())
	}
}

func TestObserveReachScoped(t *testing.T) {
	c := newCorridor(3, world.Medium)
	for a := 0; a < 3; a++ {
		for _, r := range c.Observe(a).Records {
			f := r.Payload.(BoxFact)
			if !c.InReach(a, f.Cell) {
				t.Fatalf("arm %d saw box %d outside reach", a, f.ID)
			}
		}
	}
}

func TestBeliefStaleness(t *testing.T) {
	c := New(Config{Agents: 2, Difficulty: world.Easy, Boxes: 1}, rng.New(4))
	b := c.boxes[0]
	b.cell = 2
	b.goal = 0
	recs := fullView(c)
	// Move the box after the snapshot.
	c.Execute(0, Move{Box: 0, From: 2, To: 1})
	bel := c.BuildBelief(1, recs)
	if bel.Staleness != 1 {
		t.Fatalf("staleness = %v, want 1", bel.Staleness)
	}
}

func TestProposeIdleWhenNothingKnown(t *testing.T) {
	c := newCorridor(2, world.Easy)
	prop := c.Propose(0, c.BuildBelief(0, nil))
	if _, ok := prop.Good.(Idle); !ok {
		t.Fatalf("blank belief should idle, got %s", prop.Good.Describe())
	}
}

func TestProposeRespectsClaims(t *testing.T) {
	c := New(Config{Agents: 2, Difficulty: world.Easy, Boxes: 1}, rng.New(3))
	b := c.boxes[0]
	b.cell = 2 // both arms reach
	b.goal = 0
	recs := fullView(c)
	prop := c.Propose(0, c.BuildBelief(0, recs))
	if _, ok := prop.Good.(Move); !ok {
		t.Fatalf("expected a move, got %s", prop.Good.Describe())
	}
	recs = append(recs, memory.Record{
		Step: 0, Kind: memory.Dialogue, Key: "claim:1",
		Payload: ClaimFact{Agent: 1, Box: 0}, Tokens: 6,
	})
	prop = c.Propose(0, c.BuildBelief(0, recs))
	if _, ok := prop.Good.(Idle); !ok {
		t.Fatalf("claimed box should leave agent idle, got %s", prop.Good.Describe())
	}
}

func TestJointPairsLifters(t *testing.T) {
	c := New(Config{Agents: 3, Difficulty: world.Medium, Boxes: 3}, rng.New(3))
	hb := c.boxes[0]
	hb.cell = 2
	hb.goal = 5
	joint := c.ProposeJoint(c.BuildBelief(core.CentralAgent, fullView(c))).Good.(*core.Joint)
	lifters := 0
	for _, sg := range joint.Assign {
		if l, ok := sg.(Lift); ok && l.Box == 0 {
			lifters++
		}
	}
	if lifters != 2 {
		t.Fatalf("joint assigned %d lifters to the heavy box, want 2", lifters)
	}
}

func TestCorruptionsDistinct(t *testing.T) {
	c := newCorridor(3, world.Medium)
	prop := c.Propose(0, c.BuildBelief(0, fullView(c)))
	if len(prop.Corruptions) == 0 {
		t.Fatal("no corruptions offered")
	}
	for _, cr := range prop.Corruptions {
		if cr.ID() == prop.Good.ID() {
			t.Fatal("corruption duplicates good action")
		}
	}
}

func TestTickResolvesConflictingCoalitionsDeterministically(t *testing.T) {
	// A heavy box can attract full two-lifter coalitions toward both
	// neighbors in the same step. Only one coalition may win, and the
	// winner must be the same on every run: Tick resolves candidates in
	// sorted (box, dest) order, so the lower destination wins here.
	for i := 0; i < 200; i++ {
		c := New(Config{Agents: 4, Difficulty: world.Medium, Boxes: 1}, rng.New(uint64(i)))
		b := c.boxes[0]
		if !b.heavy {
			t.Fatal("first medium box should be heavy")
		}
		b.cell = 2
		c.lifts = []liftIntent{
			{agent: 0, box: 0, dest: 3},
			{agent: 1, box: 0, dest: 3},
			{agent: 2, box: 0, dest: 1},
			{agent: 3, box: 0, dest: 1},
		}
		c.Tick()
		if got := c.BoxCell(0); got != 1 {
			t.Fatalf("run %d: conflicting coalitions sent box to %d, want deterministic winner 1", i, got)
		}
	}
}
