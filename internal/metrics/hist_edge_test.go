package metrics

import (
	"testing"
	"time"
)

// TestHistQuantileEmptyAllRanks pins the empty-histogram contract across
// the whole quantile range, including the degenerate q values the
// percentile printers can pass through: every rank reports 0, never an
// edge of a bucket that holds nothing.
func TestHistQuantileEmptyAllRanks(t *testing.T) {
	var h Hist
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}

// TestHistQuantileSingleSample: with one observation every quantile is
// that observation's bucket upper edge — p50 and p99 must agree, and both
// must bound the sample from above.
func TestHistQuantileSingleSample(t *testing.T) {
	const d = 700 * time.Millisecond
	var h Hist
	h.Observe(d)
	edge := histEdges[histBucket(d)]
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got != edge {
			t.Fatalf("single-sample Quantile(%v) = %v, want bucket edge %v", q, got, edge)
		}
		if got < d {
			t.Fatalf("single-sample Quantile(%v) = %v undershoots the observation %v", q, got, d)
		}
	}
}

// TestHistOverflowBucket pins the clamp semantics of the last bucket:
// anything at or beyond its ~35h lower bound — days, or the maximum
// representable duration — lands there without wrapping, and
// quantiles over such a histogram report the last edge rather than
// overflowing.
func TestHistOverflowBucket(t *testing.T) {
	last := HistBuckets - 1
	lastEdge := histEdges[last]
	// The clamp engages past the second-to-last edge (~35h of simulated
	// latency) — far beyond anything the suite produces, per the histEdges
	// doc.
	if lower := histEdges[last-1]; lower < 33*time.Hour || lower > 40*time.Hour {
		t.Fatalf("overflow bucket lower bound = %v, expected the ~35h clamp", lower)
	}
	var h Hist
	for _, d := range []time.Duration{
		histEdges[last-1], // first duration at/past the second-to-last edge
		lastEdge,          // at the clamp edge itself
		240 * time.Hour,   // ten days
		1<<63 - 1,         // max duration: must not wrap or panic
	} {
		h.Observe(d)
	}
	if h.Counts[last] != 4 {
		t.Fatalf("overflow bucket count = %d, want 4 (counts %v)", h.Counts[last], h.Counts)
	}
	if got := h.Quantile(0.99); got != lastEdge {
		t.Fatalf("overflow Quantile(0.99) = %v, want last edge %v", got, lastEdge)
	}
	// FracBelow at the last edge counts the clamped mass as "below" only
	// when the threshold reaches the edge itself; just under it, nothing in
	// the overflow bucket qualifies.
	if got := h.FracBelow(lastEdge - 1); got != 0 {
		t.Fatalf("FracBelow(just under last edge) = %v, want 0", got)
	}
	if got := h.FracBelow(lastEdge); got != 1 {
		t.Fatalf("FracBelow(last edge) = %v, want 1", got)
	}
}

// TestSLOAttainmentAtBucketEdges drives Serving.SLOAttainment with latency
// mass on both sides of an SLO set exactly on a bucket edge: the split is
// exact there, a lower bound just below, and unchanged until the next edge
// — the same rounding for every deployment under comparison.
func TestSLOAttainmentAtBucketEdges(t *testing.T) {
	// Pick an interior edge and fill the two buckets it separates.
	b := histBucket(5 * time.Second)
	edge := histEdges[b] // upper edge of 5s's bucket = lower bound of bucket b+1
	var s Serving
	for i := 0; i < 3; i++ {
		s.LatencyHist.Counts[b]++ // three requests inside the SLO's bucket
	}
	s.LatencyHist.Counts[b+1]++ // one request in the next bucket up
	if got := s.SLOAttainment(edge); got != 0.75 {
		t.Fatalf("SLOAttainment at exact edge %v = %v, want 0.75", edge, got)
	}
	// Just below the edge the SLO's own bucket no longer fully qualifies:
	// attainment rounds down to the previous edge (0 here — all mass sits
	// in buckets b and b+1).
	if got := s.SLOAttainment(edge - time.Nanosecond); got != 0 {
		t.Fatalf("SLOAttainment just under edge = %v, want 0 (rounded down a bucket)", got)
	}
	// Anywhere inside the next bucket's range, attainment equals the
	// at-edge value — FracBelow only advances when a whole bucket clears.
	if got := s.SLOAttainment(edge + (histEdges[b+1]-edge)/2); got != 0.75 {
		t.Fatalf("SLOAttainment mid-bucket = %v, want 0.75 (unchanged until next edge)", got)
	}
	if got := s.SLOAttainment(histEdges[b+1]); got != 1 {
		t.Fatalf("SLOAttainment at next edge = %v, want 1", got)
	}
}
