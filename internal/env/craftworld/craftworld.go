// Package craftworld implements an open-world resource-gathering and
// crafting environment with a technology tree — the suite's stand-in for
// Minecraft as used by JARVIS-1, MP5 and DEPS (paper Table II).
//
// Long-horizon dependency chains (logs → planks → tools → better tools →
// diamond pickaxe) are the stressor: a planner that forgets where resources
// are re-explores, and one that crafts out of order wastes steps. Target
// items by difficulty mirror the paper's task ladder, from "chopping trees"
// to "obtain diamond pickaxe".
package craftworld

import (
	"fmt"

	"embench/internal/core"
	"embench/internal/modules/execution"
	"embench/internal/modules/memory"
	"embench/internal/path/astar"
	"embench/internal/rng"
	"embench/internal/world"
)

// Item identifies a resource or crafted good.
type Item string

// The item set, bottom of the tech tree first.
const (
	Log            Item = "log"
	Planks         Item = "planks"
	Stick          Item = "stick"
	CraftingTable  Item = "crafting_table"
	WoodenPickaxe  Item = "wooden_pickaxe"
	Cobblestone    Item = "cobblestone"
	StonePickaxe   Item = "stone_pickaxe"
	Furnace        Item = "furnace"
	IronOre        Item = "iron_ore"
	IronIngot      Item = "iron_ingot"
	IronPickaxe    Item = "iron_pickaxe"
	Diamond        Item = "diamond"
	DiamondPickaxe Item = "diamond_pickaxe"
)

// Recipe is a crafting rule.
type Recipe struct {
	Out     Item
	OutQty  int
	In      map[Item]int
	Station Item // "" for hand-craftable
}

// Recipes is the technology tree.
var Recipes = map[Item]Recipe{
	Planks:         {Out: Planks, OutQty: 4, In: map[Item]int{Log: 1}},
	Stick:          {Out: Stick, OutQty: 4, In: map[Item]int{Planks: 2}},
	CraftingTable:  {Out: CraftingTable, OutQty: 1, In: map[Item]int{Planks: 4}},
	WoodenPickaxe:  {Out: WoodenPickaxe, OutQty: 1, In: map[Item]int{Planks: 3, Stick: 2}, Station: CraftingTable},
	StonePickaxe:   {Out: StonePickaxe, OutQty: 1, In: map[Item]int{Cobblestone: 3, Stick: 2}, Station: CraftingTable},
	Furnace:        {Out: Furnace, OutQty: 1, In: map[Item]int{Cobblestone: 8}, Station: CraftingTable},
	IronIngot:      {Out: IronIngot, OutQty: 1, In: map[Item]int{IronOre: 1, Log: 1}, Station: Furnace},
	IronPickaxe:    {Out: IronPickaxe, OutQty: 1, In: map[Item]int{IronIngot: 3, Stick: 2}, Station: CraftingTable},
	DiamondPickaxe: {Out: DiamondPickaxe, OutQty: 1, In: map[Item]int{Diamond: 3, Stick: 2}, Station: CraftingTable},
}

// NodeKind is a gatherable resource deposit type.
type NodeKind struct {
	Yields   Item
	ToolTier int // minimum pickaxe tier to harvest
}

// Resource node kinds and the tool tier needed to harvest them.
var (
	TreeNode    = NodeKind{Yields: Log, ToolTier: 0}
	StoneNode   = NodeKind{Yields: Cobblestone, ToolTier: 1}
	IronNode    = NodeKind{Yields: IronOre, ToolTier: 2}
	DiamondNode = NodeKind{Yields: Diamond, ToolTier: 3}
)

// tierOf maps a pickaxe inventory to the best available tool tier.
func tierOf(inv map[Item]int) int {
	switch {
	case inv[IronPickaxe] > 0:
		return 3
	case inv[StonePickaxe] > 0:
		return 2
	case inv[WoodenPickaxe] > 0:
		return 1
	}
	return 0
}

// toolForTier names the pickaxe that unlocks a tier.
func toolForTier(tier int) Item {
	switch tier {
	case 1:
		return WoodenPickaxe
	case 2:
		return StonePickaxe
	default:
		return IronPickaxe
	}
}

const (
	gridSize     = 30
	viewRadius   = 6
	sectorsPerAx = 3 // 3×3 exploration sectors

	nodeFactTokens = 12
	invFactTokens  = 18
	secFactTokens  = 6
)

// node is a resource deposit.
type node struct {
	id   int
	kind NodeKind
	cell world.Cell
}

// Config parameterizes an episode.
type Config struct {
	Difficulty world.Difficulty
	Horizon    int // 0 = difficulty default
	Seed       string
}

// targetFor maps difficulty to the goal item (the paper's task ladder).
func targetFor(d world.Difficulty) (Item, int) {
	switch d {
	case world.Easy:
		return WoodenPickaxe, 55
	case world.Medium:
		return IronPickaxe, 110
	default:
		return DiamondPickaxe, 170
	}
}

// World is the environment; single-agent, implements core.Domain.
type World struct {
	cfg     Config
	grid    *world.Grid
	nodes   []node
	agent   world.Cell
	inv     map[Item]int
	target  Item
	horizon int
	step    int
}

// NodeFact is the payload of a resource sighting.
type NodeFact struct {
	ID   int
	Kind Item // what it yields
	Cell world.Cell
	Tier int
}

// New builds an episode; node placement derives from src.
func New(cfg Config, src *rng.Source) *World {
	target, horizon := targetFor(cfg.Difficulty)
	if cfg.Horizon > 0 {
		horizon = cfg.Horizon
	}
	w := &World{
		cfg: cfg, grid: world.NewGrid(gridSize, gridSize),
		inv: map[Item]int{}, target: target, horizon: horizon,
		agent: world.C(gridSize/2, gridSize/2),
	}
	st := src.NewStream("craftworld/" + cfg.Seed)
	place := func(kind NodeKind, count int) {
		for i := 0; i < count; i++ {
			for {
				c := world.C(st.Pick(gridSize), st.Pick(gridSize))
				if c == w.agent {
					continue
				}
				w.nodes = append(w.nodes, node{id: len(w.nodes), kind: kind, cell: c})
				break
			}
		}
	}
	place(TreeNode, 6)
	place(StoneNode, 5)
	place(IronNode, 4)
	place(DiamondNode, 3)
	return w
}

// Name implements core.Domain.
func (w *World) Name() string { return "craftworld" }

// Agents implements core.Domain.
func (w *World) Agents() int { return 1 }

// MaxSteps implements core.Domain.
func (w *World) MaxSteps() int { return w.horizon }

// Step implements core.Domain.
func (w *World) Step() int { return w.step }

// Done implements core.Domain.
func (w *World) Done() bool { return w.Success() || w.step >= w.horizon }

// Success implements core.Domain.
func (w *World) Success() bool { return w.inv[w.target] > 0 }

// Target reports the episode's goal item.
func (w *World) Target() Item { return w.target }

// Inventory reports the count of an item.
func (w *World) Inventory(it Item) int { return w.inv[it] }

// Progress implements core.Domain: fraction of the target's dependency
// closure already satisfied.
func (w *World) Progress() float64 {
	closure := dependencyClosure(w.target)
	if len(closure) == 0 {
		return 1
	}
	have := 0
	for _, it := range closure {
		if w.inv[it] > 0 {
			have++
		}
	}
	if w.Success() {
		return 1
	}
	return float64(have) / float64(len(closure))
}

// dependencyClosure lists the crafted items on the path to target.
func dependencyClosure(target Item) []Item {
	seen := map[Item]bool{}
	var out []Item
	var walk func(it Item)
	walk = func(it Item) {
		if seen[it] {
			return
		}
		seen[it] = true
		r, ok := Recipes[it]
		if !ok {
			// Raw resource: harvesting it may require a tool chain.
			if kind := nodeKindFor(it); kind.ToolTier > 0 {
				walk(toolForTier(kind.ToolTier))
			}
			return
		}
		// Walk inputs in sorted order so the closure list (a plan skeleton)
		// is canonical, not a map-iteration artifact.
		for _, in := range world.SortedKeys(r.In) {
			walk(in)
		}
		if r.Station != "" {
			walk(r.Station)
		}
		out = append(out, it)
	}
	walk(target)
	return out
}

func sectorOf(c world.Cell) int {
	sx := c.X * sectorsPerAx / gridSize
	sy := c.Y * sectorsPerAx / gridSize
	return sy*sectorsPerAx + sx
}

func sectorCenter(s int) world.Cell {
	sx, sy := s%sectorsPerAx, s/sectorsPerAx
	span := gridSize / sectorsPerAx
	return world.C(sx*span+span/2, sy*span+span/2)
}

// StaticRecords implements core.Domain: the recipe book is prior knowledge.
func (w *World) StaticRecords() []memory.Record {
	return []memory.Record{{
		Kind: memory.Observation, Key: "recipes", Payload: "tech-tree",
		Tokens: 120, Static: true,
	}}
}

// Observe implements core.Domain: radius-limited node sightings plus own
// inventory (always known).
func (w *World) Observe(agent int) core.Observation {
	obs := core.Observation{}
	add := func(rec memory.Record) {
		obs.Records = append(obs.Records, rec)
		obs.Tokens += rec.Tokens
	}
	add(memory.Record{
		Step: w.step, Kind: memory.Observation, Key: fmt.Sprintf("sector:%d", sectorOf(w.agent)),
		Payload: sectorOf(w.agent), Tokens: secFactTokens,
	})
	for _, n := range w.nodes {
		if world.Manhattan(n.cell, w.agent) > viewRadius {
			continue
		}
		obs.Entities++
		add(memory.Record{
			Step: w.step, Kind: memory.Observation, Key: fmt.Sprintf("node:%d", n.id),
			Payload: NodeFact{ID: n.id, Kind: n.kind.Yields, Cell: n.cell, Tier: n.kind.ToolTier},
			Tokens:  nodeFactTokens,
		})
	}
	inv := map[Item]int{}
	//detlint:allow maprange keyed copy into fresh map; order-independent
	for k, v := range w.inv {
		inv[k] = v
	}
	add(memory.Record{
		Step: w.step, Kind: memory.Observation, Key: "inventory",
		Payload: inv, Tokens: invFactTokens,
	})
	return obs
}

// belief is the craftworld belief payload.
type belief struct {
	nodes   map[int]NodeFact
	visited map[int]int // sector -> last visit step
	inv     map[Item]int
}

// BuildBelief implements core.Domain.
func (w *World) BuildBelief(agent int, recs []memory.Record) core.Belief {
	b := belief{nodes: map[int]NodeFact{}, visited: map[int]int{}, inv: map[Item]int{}}
	invStep := -1
	for _, r := range recs {
		switch p := r.Payload.(type) {
		case NodeFact:
			b.nodes[p.ID] = p
		case int:
			if r.Static {
				continue
			}
			if cur, ok := b.visited[p]; !ok || r.Step > cur {
				b.visited[p] = r.Step
			}
		case map[Item]int:
			if r.Step > invStep {
				b.inv = p
				invStep = r.Step
			}
		}
	}
	// Nodes never move, so staleness comes only from an outdated inventory
	// picture (e.g. memory window dropped the latest inventory record).
	st := 0.0
	if invStep < w.step-1 {
		st = 0.3
	}
	return core.Belief{Payload: b, Staleness: st}
}

// Subgoal types.

// Gather harvests one unit from a resource node.
type Gather struct {
	Node int
	Cell world.Cell
	Want Item
}

// ID implements core.Subgoal.
func (g Gather) ID() string { return fmt.Sprintf("gather:%d", g.Node) }

// Describe implements core.Subgoal.
func (g Gather) Describe() string { return fmt.Sprintf("gather %s from node %d", g.Want, g.Node) }

// Craft runs one recipe.
type Craft struct{ Out Item }

// ID implements core.Subgoal.
func (c Craft) ID() string { return "craft:" + string(c.Out) }

// Describe implements core.Subgoal.
func (c Craft) Describe() string { return "craft " + string(c.Out) }

// ExploreSector sweeps one of the 3×3 map sectors.
type ExploreSector struct{ Sector int }

// ID implements core.Subgoal.
func (e ExploreSector) ID() string { return fmt.Sprintf("explore:%d", e.Sector) }

// Describe implements core.Subgoal.
func (e ExploreSector) Describe() string { return fmt.Sprintf("explore sector %d", e.Sector) }

// Propose implements core.Domain: recursive goal regression over the tech
// tree from the believed inventory.
func (w *World) Propose(agent int, bel core.Belief) core.Proposal {
	b, _ := bel.Payload.(belief)
	good := w.plan(b, w.target, map[Item]bool{})
	return core.Proposal{
		Good:        good,
		Corruptions: w.corruptions(b, good),
	}
}

// plan returns the next action on the path to obtaining item.
func (w *World) plan(b belief, item Item, visiting map[Item]bool) core.Subgoal {
	if visiting[item] {
		return w.explore(b) // cycle guard; should not happen on a DAG
	}
	visiting[item] = true
	defer delete(visiting, item)

	r, craftable := Recipes[item]
	if !craftable {
		// Raw resource: harvest it.
		kind := nodeKindFor(item)
		tier := tierOf(b.inv)
		if tier < kind.ToolTier {
			return w.plan(b, toolForTier(kind.ToolTier), visiting)
		}
		if n, ok := w.nearestKnownNode(b, item); ok {
			return Gather{Node: n.ID, Cell: n.Cell, Want: item}
		}
		return w.explore(b)
	}
	if r.Station != "" && b.inv[r.Station] == 0 {
		return w.plan(b, r.Station, visiting)
	}
	// Missing ingredients are pursued in a fixed (sorted) order so the
	// regression path never depends on recipe-map iteration order.
	for _, in := range world.SortedKeys(r.In) {
		if b.inv[in] < r.In[in] {
			return w.plan(b, in, visiting)
		}
	}
	return Craft{Out: item}
}

func nodeKindFor(item Item) NodeKind {
	switch item {
	case Log:
		return TreeNode
	case Cobblestone:
		return StoneNode
	case IronOre:
		return IronNode
	default:
		return DiamondNode
	}
}

func (w *World) nearestKnownNode(b belief, yields Item) (NodeFact, bool) {
	// Distance ties break toward the lower node id, never map order.
	best, found := NodeFact{}, false
	bestD := 1 << 30
	for _, id := range world.SortedKeys(b.nodes) {
		n := b.nodes[id]
		if n.Kind != yields {
			continue
		}
		if d := world.Manhattan(w.agent, n.Cell); d < bestD {
			best, bestD, found = n, d, true
		}
	}
	return best, found
}

func (w *World) explore(b belief) core.Subgoal {
	bestS, bestScore := 0, 1<<30
	for s := 0; s < sectorsPerAx*sectorsPerAx; s++ {
		score := 0
		if step, ok := b.visited[s]; ok {
			score = 1000 + step*10
		}
		score += world.Manhattan(w.agent, sectorCenter(s)) / 4
		if score < bestScore {
			bestS, bestScore = s, score
		}
	}
	return ExploreSector{Sector: bestS}
}

// corruptions enumerates plausible wrong decisions: crafting above the
// current tech level (missing ingredients), harvesting beyond the tool
// tier, and re-exploring fresh sectors.
func (w *World) corruptions(b belief, good core.Subgoal) []core.Subgoal {
	var out []core.Subgoal
	add := func(g core.Subgoal) {
		if g != nil && (good == nil || g.ID() != good.ID()) {
			out = append(out, g)
		}
	}
	// Premature craft of the final target.
	if c, ok := Recipes[w.target]; ok {
		missing := false
		//detlint:allow maprange existence check; any order yields the same answer
		for in, qty := range c.In {
			if b.inv[in] < qty {
				missing = true
			}
		}
		if missing {
			add(Craft{Out: w.target})
		}
	}
	// Harvest beyond tool tier.
	tier := tierOf(b.inv)
	for _, id := range world.SortedKeys(b.nodes) {
		if n := b.nodes[id]; n.Tier > tier {
			add(Gather{Node: n.ID, Cell: n.Cell, Want: n.Kind})
			break
		}
	}
	// Re-explore the freshest sector; ties break toward the lower sector.
	freshS, freshStep := -1, -1
	for _, s := range world.SortedKeys(b.visited) {
		if st := b.visited[s]; st > freshStep {
			freshS, freshStep = s, st
		}
	}
	if freshS >= 0 {
		add(ExploreSector{Sector: freshS})
	}
	// Redundant plank crafting.
	if b.inv[Log] > 0 && b.inv[Planks] >= 8 {
		add(Craft{Out: Planks})
	}
	if len(out) == 0 {
		add(ExploreSector{Sector: sectorOf(w.agent)})
	}
	return out
}

// Execute implements core.Domain.
func (w *World) Execute(agent int, g core.Subgoal) execution.Result {
	switch sg := g.(type) {
	case Gather:
		return w.execGather(sg)
	case Craft:
		return w.execCraft(sg)
	case ExploreSector:
		return w.execExplore(sg)
	case nil:
		return execution.Result{Note: "idle"}
	default:
		return execution.Result{Note: "unknown subgoal"}
	}
}

func (w *World) execGather(sg Gather) execution.Result {
	res := w.moveTo(sg.Cell)
	if !res.Achieved {
		return res
	}
	res.Effort.Primitives++ // harvest swing
	if sg.Node < 0 || sg.Node >= len(w.nodes) {
		res.Achieved = false
		res.Note = "no such node"
		return res
	}
	n := w.nodes[sg.Node]
	if n.cell != sg.Cell {
		res.Achieved = false
		res.Note = "node not here"
		return res
	}
	if tierOf(w.inv) < n.kind.ToolTier {
		res.Achieved = false
		res.Note = "tool tier too low"
		return res
	}
	w.inv[n.kind.Yields]++
	res.Achieved = true
	return res
}

func (w *World) execCraft(sg Craft) execution.Result {
	res := execution.Result{Effort: execution.Effort{Primitives: 1}}
	r, ok := Recipes[sg.Out]
	if !ok {
		res.Note = "no recipe"
		return res
	}
	if r.Station != "" && w.inv[r.Station] == 0 {
		res.Note = "missing station"
		return res
	}
	//detlint:allow maprange read-only sufficiency check; order-independent
	for in, qty := range r.In {
		if w.inv[in] < qty {
			res.Note = "missing ingredients"
			return res
		}
	}
	//detlint:allow maprange keyed decrements commute; order-independent
	for in, qty := range r.In {
		w.inv[in] -= qty
	}
	w.inv[r.Out] += r.OutQty
	res.Achieved = true
	return res
}

func (w *World) execExplore(sg ExploreSector) execution.Result {
	if sg.Sector < 0 || sg.Sector >= sectorsPerAx*sectorsPerAx {
		return execution.Result{Note: "no such sector"}
	}
	res := w.moveTo(sectorCenter(sg.Sector))
	res.Effort.Primitives++ // scan
	return res
}

func (w *World) moveTo(target world.Cell) execution.Result {
	plan := astar.Plan(w.grid, w.agent, target)
	res := execution.Result{Effort: execution.Effort{AStarExpanded: plan.Expanded}}
	if !plan.Found {
		res.Note = "unreachable"
		return res
	}
	res.Effort.Primitives += len(plan.Path) - 1
	w.agent = target
	res.Achieved = true
	return res
}

// Tick implements core.Domain.
func (w *World) Tick() { w.step++ }

var _ core.Domain = (*World)(nil)
