package serve

import (
	"embench/internal/prompt"
)

// CacheIdentity selects how two prompt prefixes are decided to be "the
// same" for KV reuse.
type CacheIdentity string

const (
	// IdentityShape keys prefixes by (section name, token count) chains —
	// the suite's original model: fixed sections with equal names and sizes
	// hold the same content (the shared system/task preamble every agent of
	// a workload sends), while histories that have diverged change size and
	// break the chain. It falsely hits prompts that merely have the same
	// shape, and cannot re-share diverged-then-reconverged histories whose
	// sizes drifted.
	IdentityShape CacheIdentity = "shape"
	// IdentityContent keys prefixes by chained content digests
	// (prompt.Section.Digest): sections with text are identified by what
	// they actually say, so same-shape-different-content prompts no longer
	// falsely hit and histories that reconverge to identical content
	// re-share their prefix. Token-count-only sections digest to their
	// (name, size), making the two identities agree exactly on synthetic
	// workloads.
	IdentityContent CacheIdentity = "content"
)

// prefixCache models KV-cache reuse across requests that share a prompt
// prefix. Prompts are section sequences (system preamble, task description,
// memory, dialogue, observation — see internal/prompt); two prompts share a
// cache entry exactly when their leading sections match under the cache's
// identity model (see CacheIdentity).
//
// Entries form a tree: each resident prefix entry owns its last section's
// tokens and points back to its parent prefix, so the live token footprint
// of the cache is the sum of entry sizes — the KV memory a real serving
// stack would pin. Capacity is enforced on that footprint (capTokens) and,
// for the deprecated entry-count model, on the entry count (capEntries).
//
// The cache is a deterministic LRU over chained-FNV prefix keys: every
// lookup touches all prefixes of the prompt, and eviction removes the
// least-recently-touched CHAIN — evicting a prefix cascades to its resident
// extensions, so no suffix entry ever outlives (or hides capacity behind)
// an evicted parent. Recency order lives in a lazy-deletion queue: touches
// append, eviction pops from the front skipping entries whose tick is
// stale, and the queue compacts once garbage dominates — amortized O(1) per
// touch regardless of capacity.
type prefixCache struct {
	capEntries int // entry-count budget (deprecated model); 0 = unbounded
	capTokens  int // live-token budget; 0 = unbounded
	entries    map[uint64]*cacheEntry
	order      []lruEvent // touch events, oldest first; stale ones skipped
	tick       int
	liveTokens int // sum of resident entries' sizes
	// Cumulative memory-pressure statistics (metrics.Serving rollup).
	peakTokens    int // high-water mark of liveTokens
	evictedTokens int // tokens removed by capacity eviction
}

// cacheEntry is one resident prefix: the token size of its last section,
// its parent prefix key, and its resident extensions. The kids list is
// exact — a child can only be evicted together with its parent chain, so a
// resident entry's kids are always resident (no stale keys, no duplicates).
type cacheEntry struct {
	parent uint64
	size   int
	tick   int
	kids   []uint64
}

// lruEvent is one touch of a prefix key; it is stale when the key has been
// touched again (or evicted) since.
type lruEvent struct {
	key  uint64
	tick int
}

// newPrefixCache builds a cache bounded by entry count and/or live tokens;
// both zero (or negative) disables caching entirely.
func newPrefixCache(capEntries, capTokens int) *prefixCache {
	if capEntries <= 0 && capTokens <= 0 {
		return nil
	}
	if capEntries < 0 {
		capEntries = 0
	}
	if capTokens < 0 {
		capTokens = 0
	}
	hint := capEntries
	if hint == 0 {
		hint = 64
	}
	return &prefixCache{
		capEntries: capEntries,
		capTokens:  capTokens,
		entries:    make(map[uint64]*cacheEntry, hint),
	}
}

// FNV-1a constants, chained manually so a prefix key extends its parent's.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// chainSection folds one section's shape identity (name and token count)
// into a running prefix key.
func chainSection(h uint64, s prompt.Section) uint64 {
	for i := 0; i < len(s.Name); i++ {
		h ^= uint64(s.Name[i])
		h *= fnvPrime
	}
	sz := s.Size()
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(sz >> (8 * i)))
		h *= fnvPrime
	}
	return h
}

// chainSectionContent folds one section's content identity (its
// prompt.Section.Digest) into a running prefix key.
func chainSectionContent(h uint64, s prompt.Section) uint64 {
	d := s.Digest()
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(d >> (8 * i)))
		h *= fnvPrime
	}
	return h
}

// sectionKey is one prefix of a prompt: the chained FNV key covering the
// prompt up to and including a section, and that section's token size.
type sectionKey struct {
	key  uint64
	size int
}

// promptKey is a prompt's memoized prefix-chain identity. Routing probes
// every replica's cache and admission prices + inserts the prompt, so a
// request's chain is hashed once here and shared by all of them instead of
// being recomputed per probe.
type promptKey struct {
	secs  []sectionKey
	total int // total prompt tokens (the sum of section sizes)
}

// chainKeysIdent computes p's prefix chain under the given identity model,
// reusing buf's backing array. The caller owns the lifetime: a scratch
// buffer may be reused once the returned key is no longer referenced.
func chainKeysIdent(buf []sectionKey, p prompt.Prompt, ident CacheIdentity) promptKey {
	k := promptKey{secs: buf[:0]}
	h := fnvOffset
	for _, s := range p.Sections {
		if ident == IdentityContent {
			h = chainSectionContent(h, s)
		} else {
			h = chainSection(h, s)
		}
		sz := s.Size()
		k.secs = append(k.secs, sectionKey{key: h, size: sz})
		k.total += sz
	}
	return k
}

// chainKeysInto is chainKeysIdent under the default shape identity.
func chainKeysInto(buf []sectionKey, p prompt.Prompt) promptKey {
	return chainKeysIdent(buf, p, IdentityShape)
}

// chainKeys is chainKeysInto with a fresh backing array.
func chainKeys(p prompt.Prompt) promptKey { return chainKeysInto(nil, p) }

// matchKey reports how many leading tokens of the keyed prompt are covered
// by cached prefixes: sections are matched front-to-back and the chain
// stops at the first miss, mirroring KV-cache prefix reuse.
func (c *prefixCache) matchKey(k promptKey) int {
	if c == nil {
		return 0
	}
	cached := 0
	for _, s := range k.secs {
		if _, ok := c.entries[s.key]; !ok {
			break
		}
		cached += s.size
	}
	return cached
}

// match is matchKey over an unmemoized prompt (tests and one-shot probes).
func (c *prefixCache) match(p prompt.Prompt) int {
	if c == nil {
		return 0
	}
	return c.matchKey(chainKeys(p))
}

// pressure estimates how many warm tokens inserting the keyed prompt would
// evict: the uncached suffix grows the footprint by (total - cached)
// tokens, and whatever lands beyond the token budget must push out resident
// entries. Zero without a token budget, so entry-count deployments price
// exactly as before. Capacity-aware routing charges this as the placement
// penalty that keeps cache-affinity from piling every shared-preamble
// prompt onto one replica.
func (c *prefixCache) pressure(k promptKey, cached int) int {
	if c == nil {
		return 0
	}
	return c.pressureGrowth(k.total - cached)
}

// batchGrowth reports how many tokens inserting ALL the keyed prompts
// would add to the live footprint: the sizes of section prefixes that are
// neither resident nor shared with an earlier member (the inserted chains
// form a tree, so shared uncached prefixes — the batch's common preamble —
// count once). seen is caller-owned scratch, cleared here before use.
func (c *prefixCache) batchGrowth(keys []promptKey, seen map[uint64]bool) int {
	if c == nil {
		return 0
	}
	clear(seen)
	growth := 0
	for _, k := range keys {
		for _, s := range k.secs {
			if seen[s.key] {
				continue
			}
			seen[s.key] = true
			if _, ok := c.entries[s.key]; !ok {
				growth += s.size
			}
		}
	}
	return growth
}

// pressureGrowth converts an insertion's token growth into the warm-token
// displacement the token budget forces (the shared clamp behind pressure
// and batchGrowth-based batch pressure).
func (c *prefixCache) pressureGrowth(growth int) int {
	if c == nil || c.capTokens <= 0 {
		return 0
	}
	over := c.liveTokens + growth - c.capTokens
	if over <= 0 {
		return 0
	}
	if over > c.liveTokens {
		over = c.liveTokens
	}
	return over
}

// insertKey touches every prefix of the keyed prompt (so the whole prompt
// becomes reusable by followers) and evicts least-recently-touched chains
// beyond capacity.
func (c *prefixCache) insertKey(k promptKey) {
	if c == nil {
		return
	}
	parent := fnvOffset
	for _, s := range k.secs {
		c.tick++
		e, ok := c.entries[s.key]
		if !ok {
			e = &cacheEntry{parent: parent, size: s.size}
			c.entries[s.key] = e
			c.liveTokens += s.size
			// The parent is always resident here: the chain is inserted
			// front-to-back, so it was created or touched one iteration ago.
			if pe, pok := c.entries[parent]; pok {
				pe.kids = append(pe.kids, s.key)
			}
		}
		e.tick = c.tick
		c.order = append(c.order, lruEvent{key: s.key, tick: c.tick})
		parent = s.key
	}
	c.evictOver()
	// Compact once stale events dominate, keeping memory proportional to
	// the live entry count. Live events already sit in touch order, so
	// filtering preserves LRU order deterministically.
	if len(c.order) > 2*len(c.entries)+64 {
		live := c.order[:0]
		for _, ev := range c.order {
			if e, ok := c.entries[ev.key]; ok && e.tick == ev.tick {
				live = append(live, ev)
			}
		}
		c.order = live
	}
	if c.liveTokens > c.peakTokens {
		c.peakTokens = c.liveTokens
	}
}

// evictOver removes least-recently-touched chains until both budgets hold.
// Each pop evicts the stale-skipped front entry TOGETHER with its resident
// extensions: a suffix is unreachable (matchKey stops at its missing
// parent) yet still holds KV memory, so leaving it behind — the seed's
// orphaned-suffix bug — both leaked capacity and corrupted later matches
// when the parent was re-inserted around a stale suffix.
func (c *prefixCache) evictOver() {
	for (c.capEntries > 0 && len(c.entries) > c.capEntries) ||
		(c.capTokens > 0 && c.liveTokens > c.capTokens) {
		ev := c.order[0]
		c.order = c.order[1:]
		e, ok := c.entries[ev.key]
		if !ok || e.tick != ev.tick {
			continue // stale event: key evicted or touched since
		}
		// Unlink from the surviving parent so a later re-insert of this
		// chain cannot leave a duplicate kid reference behind.
		if pe, pok := c.entries[e.parent]; pok {
			for i, kid := range pe.kids {
				if kid == ev.key {
					pe.kids[i] = pe.kids[len(pe.kids)-1]
					pe.kids = pe.kids[:len(pe.kids)-1]
					break
				}
			}
		}
		c.evictChain(ev.key, e)
	}
}

// evictChain removes an entry and, recursively, its resident extensions —
// the cascade that keeps every resident key's parent chain resident.
func (c *prefixCache) evictChain(key uint64, e *cacheEntry) {
	delete(c.entries, key)
	c.liveTokens -= e.size
	c.evictedTokens += e.size
	for _, kid := range e.kids {
		if ke, ok := c.entries[kid]; ok {
			c.evictChain(kid, ke)
		}
	}
}

// flush empties the cache, pricing every live token as a capacity
// eviction: retiring a replica (autoscale scale-down) destroys its warm KV
// state, and the memory-pressure accounting must see that loss exactly as
// it sees LRU eviction. Peak and cumulative-eviction statistics survive
// the flush; a reactivated replica starts cold but keeps its history.
func (c *prefixCache) flush() {
	if c == nil {
		return
	}
	c.evictedTokens += c.liveTokens
	c.liveTokens = 0
	clear(c.entries)
	c.order = c.order[:0]
}

// insert is insertKey over an unmemoized prompt (tests and one-shot use).
func (c *prefixCache) insert(p prompt.Prompt) {
	if c == nil {
		return
	}
	c.insertKey(chainKeys(p))
}

// Live/peak/evicted token accounting, rolled up into metrics.Serving by
// Endpoint.Stats.
func (c *prefixCache) stats() (live, peak, evicted int) {
	if c == nil {
		return 0, 0, 0
	}
	return c.liveTokens, c.peakTokens, c.evictedTokens
}
