// Package embench is an embodied-agent systems workload suite and
// benchmarking harness — a from-scratch Go reproduction of "Generative AI
// in Embodied Systems: System-Level Analysis of Performance, Efficiency
// and Scalability" (ISPASS 2025).
//
// The suite implements the paper's fourteen workloads (Table II) over six
// task environments, the six agent building blocks (sensing, planning,
// communication, memory, reflection, execution), all four coordination
// paradigms, and one experiment runner per table and figure in the paper's
// evaluation. See docs/ARCHITECTURE.md for the module map and determinism
// model and docs/EXPERIMENTS.md for per-figure recipes and CLI flag
// semantics.
//
// Experiments are embarrassingly parallel at the episode level, and every
// figure/table regeneration routes its episode batches through a
// deterministic worker-pool runner (internal/runner). ExperimentConfig's
// Parallelism knob (the embench CLI's -procs flag) sizes the pool; seeds
// are derived per episode from the root seed, so any parallelism level —
// including the sequential default — produces bit-identical reports.
//
// Quick start:
//
//	out, err := embench.Run("CoELA", "medium", 2, 1)
//	fmt.Println(out.Episode.Success, out.Episode.SimDuration)
//
//	report, err := embench.Experiment("fig2", 5, 1)
//	fmt.Println(report)
//
//	// Same report, regenerated on all cores:
//	report, err = embench.ExperimentOpt("fig2", embench.ExperimentConfig{
//		Episodes: 5, Seed: 1, Parallelism: runtime.GOMAXPROCS(0),
//	})
package embench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"embench/internal/bench"
	"embench/internal/multiagent"
	"embench/internal/runner"
	"embench/internal/serve"
	"embench/internal/systems"
	"embench/internal/world"
)

// Outcome is one episode's metrics and trace.
type Outcome = multiagent.Outcome

// Options tunes a run; see multiagent.Options.
type Options = multiagent.Options

// ServeConfig describes a shared serving endpoint (queueing, continuous
// batching, per-replica prefix caches, replicas, routing policy); set
// Options.Serve to route an episode's LLM traffic through one, or pass it
// to RunFleet to share one endpoint across episodes. See internal/serve.
type ServeConfig = serve.Config

// RoutingPolicy places new batches on replicas: least-loaded,
// cache-affinity or shortest-completion. See serve.RoutingPolicy.
type RoutingPolicy = serve.RoutingPolicy

// ParseRouting converts a routing-policy name ("" = least-loaded). On error
// the returned policy is "", not a usable fallback.
func ParseRouting(s string) (RoutingPolicy, error) { return serve.ParseRouting(s) }

// CacheIdentity selects how cached prompt prefixes are keyed: by shape
// ((section name, token count) chains, the default) or by content (chained
// section digests). See serve.CacheIdentity.
type CacheIdentity = serve.CacheIdentity

// ParseIdentity converts a cache-identity name ("" = shape). On error the
// returned identity is "", not a usable fallback.
func ParseIdentity(s string) (CacheIdentity, error) { return serve.ParseIdentity(s) }

// ArrivalKind selects a traffic arrival process (poisson, bursty, diurnal);
// the fig12 sweep axis. See serve.ArrivalKind.
type ArrivalKind = serve.ArrivalKind

// ParseArrival converts an arrival-process name ("" = poisson). On error
// the returned kind is "", not a usable fallback.
func ParseArrival(s string) (ArrivalKind, error) { return serve.ParseArrival(s) }

// AutoscalePolicy sizes a replica autoscaler; the zero value disables it.
// See serve.Autoscale.
type AutoscalePolicy = serve.Autoscale

// ParseAutoscale converts an autoscale spec (""/"off" = disabled, "on" =
// defaults, or "interval=30s,cold=15s,up=0.7,down=0.25,min=1,max=8"). On
// error the returned policy is the zero value, not a usable fallback.
func ParseAutoscale(s string) (AutoscalePolicy, error) { return serve.ParseAutoscale(s) }

// HandoffCost prices the prefill→decode KV-cache transfer of a
// disaggregated deployment; the zero value is free. See serve.Handoff.
type HandoffCost = serve.Handoff

// ParseHandoff converts a handoff spec (""/"off" = free, or
// "lat=40ms,rate=200000"). On error the returned cost is the zero value,
// not a usable fallback.
func ParseHandoff(s string) (HandoffCost, error) { return serve.ParseHandoff(s) }

// FaultConfig is a deterministic replica fault process (seeded
// crash-restart plus straggler episodes); the zero value disables it. See
// serve.Faults.
type FaultConfig = serve.Faults

// ParseFaults converts a faults spec (""/"off" = disabled, "on" =
// mtbf=5m,mttr=30s, or "mtbf=DUR,mttr=DUR,straggle=DUR,for=DUR,slow=F,
// seed=N"). On error the returned config is the zero value, not a usable
// fallback.
func ParseFaults(s string) (FaultConfig, error) { return serve.ParseFaults(s) }

// RetryPolicy re-issues deadline-expired replayed requests with seeded
// exponential backoff; the zero value disables it. See serve.RetryPolicy.
type RetryPolicy = serve.RetryPolicy

// ParseRetry converts a retry spec (""/"off" = disabled, "on" = the
// default max=2,jitter=0.2, or "max=N,base=DUR,factor=F,jitter=F"). On
// error the returned policy is the zero value, not a usable fallback.
func ParseRetry(s string) (RetryPolicy, error) { return serve.ParseRetry(s) }

// HedgePolicy duplicates a replayed request that has waited past its delay
// (first completion wins); the zero value disables it. See
// serve.HedgePolicy.
type HedgePolicy = serve.HedgePolicy

// ParseHedge converts a hedge spec (""/"off" = disabled, "on" = delay=2s,
// or "delay=DUR"). On error the returned policy is the zero value, not a
// usable fallback.
func ParseHedge(s string) (HedgePolicy, error) { return serve.ParseHedge(s) }

// ShedPolicy is priority-aware admission load shedding for replayed
// requests; the zero value disables it. See serve.ShedPolicy.
type ShedPolicy = serve.ShedPolicy

// ParseShed converts a shed spec (""/"off" = disabled, "on" = queue=32, or
// "queue=N,wait=DUR,prio=N"). On error the returned policy is the zero
// value, not a usable fallback.
func ParseShed(s string) (ShedPolicy, error) { return serve.ParseShed(s) }

// Workloads lists the benchmark suite's fourteen systems in the paper's
// order.
func Workloads() []string {
	return append([]string(nil), systems.SuiteNames...)
}

// ParseDifficulty converts "easy", "medium" or "hard".
func ParseDifficulty(s string) (world.Difficulty, error) {
	switch strings.ToLower(s) {
	case "easy":
		return world.Easy, nil
	case "medium", "":
		return world.Medium, nil
	case "hard":
		return world.Hard, nil
	}
	return world.Medium, fmt.Errorf("embench: unknown difficulty %q (easy|medium|hard)", s)
}

// Run executes one episode of a named workload. agents <= 0 uses the
// workload's default team size.
func Run(name, difficulty string, agents int, seed uint64) (Outcome, error) {
	return RunOpt(name, difficulty, agents, Options{Seed: seed})
}

// FleetResult is a fleet run's outcome: per-episode metrics and traces in
// episode order plus the shared endpoint's serving totals.
type FleetResult = runner.FleetResult

// RunFleet runs `episodes` concurrent episodes of one workload against a
// shared serving deployment (serve.Fleet): the episodes' LLM traffic
// contends for the same replicas, admission queue and prefix caches, with
// deterministic discrete-event merging of the episodes' virtual-time
// request streams. shards > 1 splits the fleet across that many
// independent endpoints (episode i on shard i % shards; see
// serve.ShardedFleet). Episode seeds derive from opt.Seed exactly as
// Experiment batches do, and the result is byte-identical across reruns;
// large fleets are activation-gated automatically (runner.FleetGroup).
func RunFleet(name, difficulty string, agents, episodes, shards int, opt Options, sc ServeConfig) (FleetResult, error) {
	w, ok := systems.Get(name)
	if !ok {
		return FleetResult{}, fmt.Errorf("embench: unknown workload %q (see Workloads())", name)
	}
	diff, err := ParseDifficulty(difficulty)
	if err != nil {
		return FleetResult{}, err
	}
	if episodes < 1 {
		episodes = 1
	}
	return runner.RunFleet(context.Background(), runner.FleetGroup{
		Specs:  runner.Specs(w, diff, agents, nil, opt, episodes, opt.Seed),
		Serve:  sc,
		Shards: shards,
		// A flight-recorder sink on the options records the shared
		// deployment itself (the episodes route through fleet clients, so
		// per-episode endpoints never exist here).
		Sink: opt.Sink,
	})
}

// RunOpt is Run with full runner options.
func RunOpt(name, difficulty string, agents int, opt Options) (Outcome, error) {
	w, ok := systems.Get(name)
	if !ok {
		return Outcome{}, fmt.Errorf("embench: unknown workload %q (see Workloads())", name)
	}
	diff, err := ParseDifficulty(difficulty)
	if err != nil {
		return Outcome{}, err
	}
	return w.Run(diff, agents, opt), nil
}

// Experiments lists the runnable experiment ids: one per paper table and
// figure, plus the optimization ablations and calibration report.
func Experiments() []string {
	var out []string
	for name := range experiments {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// experimentOut is one experiment's rendered report plus optional
// machine-readable perf metrics (recorded in -bench-json / the perf
// trajectory; nil for experiments that only report simulated quantities).
type experimentOut struct {
	report  string
	metrics map[string]float64
}

// plain wraps a render-only experiment.
func plain(fn func(bench.Config) string) func(bench.Config) experimentOut {
	return func(cfg bench.Config) experimentOut { return experimentOut{report: fn(cfg)} }
}

var experiments = map[string]func(cfg bench.Config) experimentOut{
	"table1": plain(func(bench.Config) string { return systems.RenderTaxonomy() }),
	"table2": plain(func(bench.Config) string { return systems.RenderSuite() }),
	"fig2":   plain(func(cfg bench.Config) string { return bench.RenderFig2(bench.Fig2(cfg)) }),
	"fig3":   plain(func(cfg bench.Config) string { return bench.RenderFig3(bench.Fig3(cfg)) }),
	"fig4":   plain(func(cfg bench.Config) string { return bench.RenderFig4(bench.Fig4(cfg)) }),
	"fig5":   plain(func(cfg bench.Config) string { return bench.RenderFig5(bench.Fig5(cfg)) }),
	"fig6":   plain(func(cfg bench.Config) string { return bench.RenderFig6(bench.Fig6(cfg)) }),
	"fig7":   plain(func(cfg bench.Config) string { return bench.RenderFig7(bench.Fig7(cfg)) }),
	"fig8":   plain(func(cfg bench.Config) string { return bench.RenderFig8(bench.Fig8(cfg)) }),
	"fig9":   plain(func(cfg bench.Config) string { return bench.RenderFig9(bench.Fig9(cfg)) }),
	"fig10": func(cfg bench.Config) experimentOut {
		rep := bench.Fig10(cfg)
		return experimentOut{report: bench.RenderFig10(rep), metrics: bench.Fig10Metrics(rep)}
	},
	"fig11": func(cfg bench.Config) experimentOut {
		rep := bench.Fig11(cfg)
		return experimentOut{report: bench.RenderFig11(rep), metrics: bench.Fig11Metrics(rep)}
	},
	"fig12": func(cfg bench.Config) experimentOut {
		rep := bench.Fig12(cfg)
		return experimentOut{report: bench.RenderFig12(rep), metrics: bench.Fig12Metrics(rep)}
	},
	"fig13": func(cfg bench.Config) experimentOut {
		rep := bench.Fig13(cfg)
		return experimentOut{report: bench.RenderFig13(rep), metrics: bench.Fig13Metrics(rep)}
	},
	"fig14": func(cfg bench.Config) experimentOut {
		rep := bench.Fig14(cfg)
		return experimentOut{report: bench.RenderFig14(rep), metrics: bench.Fig14Metrics(rep)}
	},
	"opts": plain(func(cfg bench.Config) string {
		return bench.RenderOptimizations(bench.Optimizations(cfg), bench.Batching())
	}),
	"calibrate": plain(func(cfg bench.Config) string { return bench.CalibrationReport(bench.Fig2(cfg)) }),
}

// ExperimentConfig sizes an experiment run.
type ExperimentConfig struct {
	// Episodes per configuration; <= 0 uses the default (5).
	Episodes int
	// Seed roots all randomness; equal seeds give identical reports.
	Seed uint64
	// Parallelism sizes the episode worker pool; <= 1 runs sequentially.
	// Reports are bit-identical at every value.
	Parallelism int
	// FleetSizes overrides fig10's fleet-size axis (nil = default ladder
	// 16..2048); the CLI's -fleet-sizes.
	FleetSizes []int
	// FleetShards overrides fig10's shard axis (nil = {1, 4}); the CLI's
	// -serve-shards under -exp.
	FleetShards []int
	// Arrivals overrides fig12's arrival-process axis (nil = poisson,
	// bursty, diurnal); the CLI's -serve-arrivals. Each name must parse
	// via ParseArrival.
	Arrivals []string
	// Tenants overrides fig12's tenant-count axis (nil = {8, 24}); the
	// CLI's -serve-tenants. Values must be positive.
	Tenants []int
	// SLO overrides fig12's end-to-end latency target (0 = 60s); the
	// CLI's -serve-slo. Must not be negative.
	SLO time.Duration
	// Autoscale overrides fig12's autoscaled-deployment policy; parsed
	// via ParseAutoscale ("" keeps the fig12 default). The CLI's
	// -serve-autoscale.
	Autoscale string
}

// Experiment regenerates one table/figure and returns the rendered report.
// episodes <= 0 uses the default (5 per configuration).
func Experiment(name string, episodes int, seed uint64) (string, error) {
	return ExperimentOpt(name, ExperimentConfig{Episodes: episodes, Seed: seed})
}

// ExperimentOpt is Experiment with full run configuration, including the
// episode-runner parallelism.
func ExperimentOpt(name string, cfg ExperimentConfig) (string, error) {
	report, _, err := ExperimentFull(name, cfg)
	return report, err
}

// ExperimentFull is ExperimentOpt plus the experiment's machine-readable
// perf metrics (nil for most experiments; fig10 reports per-fleet-size
// wall times and heap-vs-linear speedups, which the CLI folds into
// -bench-json records and the perf trajectory).
func ExperimentFull(name string, cfg ExperimentConfig) (string, map[string]float64, error) {
	fn, ok := experiments[strings.ToLower(name)]
	if !ok {
		return "", nil, fmt.Errorf("embench: unknown experiment %q (one of %s)",
			name, strings.Join(Experiments(), ", "))
	}
	var arrivals []serve.ArrivalKind
	for _, s := range cfg.Arrivals {
		kind, err := serve.ParseArrival(s)
		if err != nil {
			return "", nil, err
		}
		arrivals = append(arrivals, kind)
	}
	for _, n := range cfg.Tenants {
		if n < 1 {
			return "", nil, fmt.Errorf("embench: tenant count %d must be positive", n)
		}
	}
	if cfg.SLO < 0 {
		return "", nil, fmt.Errorf("embench: negative SLO %v", cfg.SLO)
	}
	autoscale, err := serve.ParseAutoscale(cfg.Autoscale)
	if err != nil {
		return "", nil, err
	}
	out := fn(bench.Config{
		Episodes:    cfg.Episodes,
		Seed:        cfg.Seed,
		Parallelism: cfg.Parallelism,
		FleetSizes:  cfg.FleetSizes,
		FleetShards: cfg.FleetShards,
		Arrivals:    arrivals,
		Tenants:     cfg.Tenants,
		SLO:         cfg.SLO,
		Autoscale:   autoscale,
	})
	return out.report, out.metrics, nil
}
