// Package comms implements the communication module: message construction
// from memory deltas, a delivery bus, novelty accounting, and the
// message-gating optimizations of Recs. 8 and 10.
//
// The paper's headline findings about communication — that it dominates
// latency in some workloads yet barely moves success rates, and that only
// ~20% of CoELA's pre-generated messages carry useful content — fall out of
// the novelty accounting here.
package comms

import (
	"reflect"

	"embench/internal/modules/memory"
)

// Broadcast addresses a message to every other agent.
const Broadcast = -1

// Message is one inter-agent communication.
type Message struct {
	From    int
	To      int // Broadcast or a specific agent id
	Step    int
	Records []memory.Record // facts/intents shared
	Tokens  int             // rendered size
}

// Bus queues messages for delivery. Delivery is synchronous within a step:
// messages sent during step t are readable by receivers later in step t.
type Bus struct {
	agents    int
	mailboxes [][]Message
	sent      int
}

// NewBus returns a bus for n agents.
func NewBus(n int) *Bus {
	return &Bus{agents: n, mailboxes: make([][]Message, n)}
}

// Agents reports the number of endpoints.
func (b *Bus) Agents() int { return b.agents }

// Sent reports the total messages accepted so far.
func (b *Bus) Sent() int { return b.sent }

// Send enqueues a message for its recipients. Broadcast fans out to every
// agent except the sender. Unknown recipients are dropped.
func (b *Bus) Send(m Message) {
	b.sent++
	if m.To == Broadcast {
		for i := range b.mailboxes {
			if i != m.From {
				b.mailboxes[i] = append(b.mailboxes[i], m)
			}
		}
		return
	}
	if m.To >= 0 && m.To < b.agents {
		b.mailboxes[m.To] = append(b.mailboxes[m.To], m)
	}
}

// Drain returns and clears agent's mailbox.
func (b *Bus) Drain(agent int) []Message {
	if agent < 0 || agent >= b.agents {
		return nil
	}
	out := b.mailboxes[agent]
	b.mailboxes[agent] = nil
	return out
}

// Novel reports whether the message would teach the receiver anything: it
// carries at least one record whose key the receiver's memory lacks, or
// whose content differs from what the receiver already knows. A repeated
// sighting of an unchanged fact is not novel — this is what makes most of
// CoELA's pre-generated traffic useless (paper Sec. V-D).
func Novel(m Message, receiver *memory.Store) bool {
	for _, r := range m.Records {
		if r.Key == "" || r.Routine {
			continue
		}
		prev, ok := receiver.Latest(r.Key)
		if !ok {
			return true
		}
		if prev.Step <= r.Step && !reflect.DeepEqual(prev.Payload, r.Payload) {
			return true
		}
	}
	return false
}

// Filter implements Rec. 10 message filtering: it keeps only records that
// are plausibly novel to the recipient from the sender's point of view
// (sent less recently than lastShared) and caps the message at maxRecords,
// prioritizing the newest facts.
func Filter(records []memory.Record, lastShared int, maxRecords int) []memory.Record {
	var out []memory.Record
	for _, r := range records {
		if r.Step > lastShared {
			out = append(out, r)
		}
	}
	if maxRecords > 0 && len(out) > maxRecords {
		out = out[len(out)-maxRecords:]
	}
	return out
}

// MessageTokens estimates the rendered size of a record set: a fixed
// framing cost plus each record's own token count.
func MessageTokens(records []memory.Record) int {
	tokens := 12 // greeting / framing
	for _, r := range records {
		tokens += r.Tokens
	}
	return tokens
}
