package tokenizer

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCountBasics(t *testing.T) {
	tests := []struct {
		in   string
		want int
	}{
		{"", 0},
		{"go", 1},
		{"word", 1},
		{"words", 2}, // 5 chars -> ceil(5/4)=2
		{"two words", 3},
		{"hello, world", 3}, // hello(2) + ','(1) ... hello is 5 chars -> 2, comma 1, world 2? -> 5
	}
	// Recompute expectations precisely for the last two rows.
	tests[4].want = Count("two") + Count("words")
	tests[5].want = 2 + 1 + 2
	for _, tt := range tests {
		if got := Count(tt.in); got != tt.want {
			t.Errorf("Count(%q) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestCountMonotoneInConcatenation(t *testing.T) {
	// Property: appending text never decreases the count.
	f := func(a, b string) bool {
		return Count(a+" "+b) >= Count(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountAll(t *testing.T) {
	if got, want := CountAll("alpha beta", "gamma"), Count("alpha beta")+Count("gamma"); got != want {
		t.Fatalf("CountAll = %d, want %d", got, want)
	}
}

func TestWords(t *testing.T) {
	if Words(0) != 0 || Words(-3) != 0 {
		t.Fatal("Words of non-positive should be 0")
	}
	if got := Words(10); got != 13 {
		t.Fatalf("Words(10) = %d, want 13", got)
	}
	if got := Words(100); got != 130 {
		t.Fatalf("Words(100) = %d, want 130", got)
	}
}

func TestTruncateFits(t *testing.T) {
	s := "alpha beta gamma"
	out, dropped := Truncate(s, 100)
	if out != s || dropped != 0 {
		t.Fatalf("Truncate under budget changed input: %q dropped=%d", out, dropped)
	}
}

func TestTruncateKeepsTail(t *testing.T) {
	s := strings.Repeat("early ", 50) + "recent final"
	out, dropped := Truncate(s, 4)
	if !strings.HasSuffix(out, "recent final") {
		t.Fatalf("Truncate did not keep tail: %q", out)
	}
	if dropped <= 0 {
		t.Fatal("Truncate over budget reported nothing dropped")
	}
	if Count(out) > 4 {
		t.Fatalf("Truncate result exceeds budget: %d tokens", Count(out))
	}
}

func TestTruncateZeroBudget(t *testing.T) {
	out, dropped := Truncate("some text", 0)
	if out != "" || dropped != Count("some text") {
		t.Fatalf("Truncate(0) = %q/%d", out, dropped)
	}
}

func TestTruncateProperty(t *testing.T) {
	f := func(words []string, budget uint8) bool {
		s := strings.Join(words, " ")
		out, _ := Truncate(s, int(budget))
		return Count(out) <= int(budget) || Count(s) <= int(budget)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBudget(t *testing.T) {
	b := NewBudget(10)
	if got := b.Take(4); got != 4 {
		t.Fatalf("Take(4) = %d", got)
	}
	if got := b.Take(10); got != 6 {
		t.Fatalf("second Take granted %d, want 6", got)
	}
	if b.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", b.Remaining())
	}
	if !b.Overflowed() {
		t.Fatal("expected Overflowed after exhausting budget")
	}
}

func TestBudgetNoOverflowWhenRoomy(t *testing.T) {
	b := NewBudget(100)
	b.Take(50)
	if b.Overflowed() {
		t.Fatal("Overflowed reported with room to spare")
	}
	if b.Used() != 50 || b.Remaining() != 50 {
		t.Fatalf("Used/Remaining = %d/%d", b.Used(), b.Remaining())
	}
}

func TestBudgetTakeNegative(t *testing.T) {
	b := NewBudget(10)
	if b.Take(-5) != 0 {
		t.Fatal("Take(-5) granted tokens")
	}
	if b.Used() != 0 {
		t.Fatal("negative take consumed budget")
	}
}
