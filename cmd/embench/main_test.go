package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles the embench binary into a temp dir; every CLI
// error-surface case execs the same artifact, so the table exercises the
// real flag plumbing, not a re-implementation of it.
func buildBinary(t *testing.T) string {
	t.Helper()
	dir, err := os.MkdirTemp("", "embench-cli-test")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	bin := filepath.Join(dir, "embench")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building embench: %v\n%s", err, out)
	}
	return bin
}

// TestCLIErrorSurface pins the contract that every config-validation
// failure exits non-zero with a single-line "embench: ..." error naming
// the offending flag — no panic, no goroutine dump, no partial run.
func TestCLIErrorSurface(t *testing.T) {
	bin := buildBinary(t)

	// All resilience specs parse before the trace file opens, so a
	// nonexistent -replay-trace path reaches the spec error first.
	replay := []string{"-replay-trace", "does-not-exist.jsonl"}
	cases := []struct {
		name string
		args []string
		want string // substring of the one-line stderr
	}{
		{"faults missing separator", append(replay, "-serve-faults", "bogus"), "-serve-faults:"},
		{"faults bad duration", append(replay, "-serve-faults", "mtbf=fast"), "-serve-faults:"},
		{"faults negative duration", append(replay, "-serve-faults", "mttr=-3s"), "-serve-faults:"},
		{"retry bad max", append(replay, "-serve-retry", "max=many"), "-serve-retry:"},
		{"retry zero max", append(replay, "-serve-retry", "max=0"), "-serve-retry:"},
		{"retry bad base", append(replay, "-serve-retry", "base=0s"), "-serve-retry:"},
		{"hedge unknown key", append(replay, "-serve-hedge", "after=2s"), "-serve-hedge:"},
		{"hedge bad delay", append(replay, "-serve-hedge", "delay=soon"), "-serve-hedge:"},
		{"shed bad queue", append(replay, "-serve-shed", "queue=deep"), "-serve-shed:"},
		{"shed zero queue", append(replay, "-serve-shed", "queue=0"), "-serve-shed:"},
		{"deadline negative replay", append(replay, "-serve-deadline", "-40s"), "-serve-deadline"},
		// The deadline check is mode-independent: it must fire even when
		// no serving mode would consume the value.
		{"deadline negative list mode", []string{"-list", "-serve-deadline", "-1s"}, "-serve-deadline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(bin, tc.args...)
			var stdout, stderr bytes.Buffer
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("want non-zero exit, got err=%v stdout=%q stderr=%q", err, stdout.String(), stderr.String())
			}
			if code := ee.ExitCode(); code != 1 {
				t.Errorf("exit code = %d, want 1; stderr=%q", code, stderr.String())
			}
			msg := strings.TrimRight(stderr.String(), "\n")
			if strings.Count(msg, "\n") != 0 {
				t.Errorf("stderr is not one line:\n%s", stderr.String())
			}
			if !strings.HasPrefix(msg, "embench: ") {
				t.Errorf("stderr %q does not start with %q", msg, "embench: ")
			}
			if !strings.Contains(msg, tc.want) {
				t.Errorf("stderr %q does not name the flag (%q)", msg, tc.want)
			}
			if strings.Contains(stderr.String(), "goroutine") || strings.Contains(stderr.String(), "panic") {
				t.Errorf("stderr looks like a crash:\n%s", stderr.String())
			}
		})
	}
}
