package bench

import (
	"testing"

	"embench/internal/serve"
)

// fig10TestConfig keeps the scale experiment test-sized: the ladder's toe
// plus one past-activation-threshold size so the gated runner path runs.
func fig10TestConfig() Config {
	return Config{Seed: 1, FleetSizes: []int{8, 72}, FleetShards: []int{1, 2}}
}

func TestFig10Shapes(t *testing.T) {
	cfg := fig10TestConfig()
	rep := Fig10(cfg)
	wantMerge := len(cfg.FleetSizes) * len(cfg.FleetShards) * len(fig10Routings)
	if len(rep.Merge) != wantMerge {
		t.Fatalf("merge rows = %d, want %d", len(rep.Merge), wantMerge)
	}
	if len(rep.Baseline) != len(cfg.FleetSizes) {
		t.Fatalf("baseline rows = %d, want %d", len(rep.Baseline), len(cfg.FleetSizes))
	}
	if len(rep.Closed) != len(cfg.FleetSizes)*len(cfg.FleetShards) {
		t.Fatalf("closed rows = %d, want %d", len(rep.Closed), len(cfg.FleetSizes)*len(cfg.FleetShards))
	}
	for _, r := range rep.Merge {
		if r.Requests == 0 || r.WallMS <= 0 || r.AdmitPerSec <= 0 {
			t.Fatalf("degenerate merge row: %+v", r)
		}
	}
	for _, r := range rep.Baseline {
		if r.LinearMS <= 0 || r.HeapMS <= 0 || r.Speedup <= 0 {
			t.Fatalf("degenerate baseline row: %+v", r)
		}
	}
	for _, r := range rep.Closed {
		if r.SuccessRate <= 0 || r.WallMS <= 0 {
			t.Fatalf("degenerate closed-loop row: %+v", r)
		}
	}
	out := RenderFig10(rep)
	if len(out) == 0 {
		t.Fatal("empty render")
	}
	m := Fig10Metrics(rep)
	if _, ok := m["fleet8_speedup"]; !ok {
		t.Fatalf("metrics missing speedup keys: %v", m)
	}
}

// TestFig10ServingStatsDeterministic: wall times vary run to run by
// nature, but every simulated quantity — admissions, queue waits, cache
// hits, closed-loop outcomes — must be identical across reruns.
func TestFig10ServingStatsDeterministic(t *testing.T) {
	cfg := fig10TestConfig()
	a, b := Fig10(cfg), Fig10(cfg)
	for i := range a.Merge {
		x, y := a.Merge[i], b.Merge[i]
		if x.Requests != y.Requests || x.MeanQueueWait != y.MeanQueueWait ||
			x.CacheHitRate != y.CacheHitRate {
			t.Fatalf("merge row %d serving stats diverged: %+v vs %+v", i, x, y)
		}
	}
	for i := range a.Closed {
		x, y := a.Closed[i], b.Closed[i]
		if x.SuccessRate != y.SuccessRate || x.MeanQueueWait != y.MeanQueueWait ||
			x.CacheHitRate != y.CacheHitRate {
			t.Fatalf("closed row %d diverged: %+v vs %+v", i, x, y)
		}
	}
}

// TestFig10ShardingRelievesContention pins the qualitative claim sharding
// exists for: at the largest swept size, splitting the fleet across
// shards must cut the mean queue wait (independent endpoints, smaller
// merges, no cross-shard contention).
func TestFig10ShardingRelievesContention(t *testing.T) {
	cfg := fig10TestConfig()
	rep := Fig10(cfg)
	n := cfg.FleetSizes[len(cfg.FleetSizes)-1]
	var one, many *Fig10MergeRow
	for i := range rep.Merge {
		r := &rep.Merge[i]
		if r.Episodes != n || r.Routing != serve.RouteLeastLoaded {
			continue
		}
		switch r.Shards {
		case 1:
			one = r
		default:
			many = r
		}
	}
	if one == nil || many == nil {
		t.Fatal("missing shard rows at the largest size")
	}
	if many.MeanQueueWait >= one.MeanQueueWait {
		t.Fatalf("sharding did not relieve queueing: 1 shard %v, %d shards %v",
			one.MeanQueueWait, many.Shards, many.MeanQueueWait)
	}
}
