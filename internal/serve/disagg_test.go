package serve

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"embench/internal/llm"
	"embench/internal/prompt"
	"embench/internal/rng"
	"embench/internal/serve/obs"
)

// pricingTolerance bounds the float rounding gap between the stage-split
// and monolithic pricings of one request: the monolithic path converts one
// float seconds value to a Duration, the disaggregated path converts one
// per stage, so the sums may differ by a nanosecond per conversion.
const pricingTolerance = 2 * time.Nanosecond

func within(a, b, tol time.Duration) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// spacedTrace builds one request stream whose gaps always exceed the
// worst-case end-to-end service time, so no queueing or batching forms on
// either deployment and the comparison isolates pure pricing.
func spacedTrace(n int, seed uint64) []Request {
	jitter := rng.New(seed).NewStream("disagg/spaced")
	var reqs []Request
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		at += 20*time.Second + time.Duration(jitter.Range(0, 5000))*time.Millisecond
		reqs = append(reqs, Request{
			Agent:   "a0",
			Arrival: at,
			Prompt:  sharedPrompt("a0", 50+int(jitter.Range(0, 300))),
			// noJitter decodes at 10 tok/s: keep the decode term under the
			// 20s spacing.
			OutTokens: 30 + int(jitter.Range(0, 60)),
		})
	}
	return reqs
}

// disaggZero splits cfg into a zero-handoff (replicas, replicas)
// disaggregated deployment with the same batching knobs on both pools.
func disaggZero(cfg Config) Config {
	d := cfg
	d.Prefill = PoolConfig{Replicas: cfg.Replicas, MaxBatch: cfg.MaxBatch, MaxWait: cfg.MaxWait}
	d.Decode = PoolConfig{Replicas: cfg.Replicas, MaxBatch: cfg.MaxBatch, MaxWait: cfg.MaxWait}
	d.Replicas = 0
	return d
}

// TestDisaggZeroHandoffReproducesMonolithic is the randomized differential
// of the acceptance criterion: with a free handoff, shared pool sizing and
// no contention (spaced arrivals, MaxBatch 1), the disaggregated pipeline
// prices every request within float-conversion tolerance of the monolithic
// endpoint, and the flow totals agree.
func TestDisaggZeroHandoffReproducesMonolithic(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		mcfg := Config{Profile: noJitter, Replicas: 1, MaxBatch: 1, CacheEntries: 64}
		reqs := spacedTrace(12, seed)
		mono := Replay(mcfg, reqs)
		dis := Replay(disaggZero(mcfg), reqs)
		if len(mono.Completions) != len(dis.Completions) {
			t.Fatalf("seed %d: completion counts differ", seed)
		}
		var monoSvc, disSvc time.Duration
		for i := range reqs {
			mc, dc := mono.Completions[i], dis.Completions[i]
			mlat, dlat := mc.Done-mc.Arrival, dc.Done-dc.Arrival
			if !within(mlat, dlat, pricingTolerance) {
				t.Fatalf("seed %d req %d: latency %v (mono) vs %v (disagg)", seed, i, mlat, dlat)
			}
			if mc.PromptTokens != dc.PromptTokens || mc.CachedTokens != dc.CachedTokens {
				t.Fatalf("seed %d req %d: token accounting diverged: %+v vs %+v", seed, i, mc, dc)
			}
			if dc.QueueWait != 0 || dc.DecodeWait != 0 {
				t.Fatalf("seed %d req %d: spaced trace queued: %+v", seed, i, dc)
			}
			monoSvc += mlat
			disSvc += dlat
		}
		if !within(monoSvc, disSvc, time.Duration(len(reqs))*pricingTolerance) {
			t.Fatalf("seed %d: total latency %v vs %v", seed, monoSvc, disSvc)
		}
		ms, ds := mono.Stats, dis.Stats
		if ms.Requests != ds.Requests || ms.PrefillTokens != ds.PrefillTokens ||
			ms.CachedTokens != ds.CachedTokens {
			t.Fatalf("seed %d: flow totals diverged:\nmono %+v\ndisagg %+v", seed, ms, ds)
		}
		if !within(ms.Service, ds.Service, time.Duration(len(reqs))*pricingTolerance) {
			t.Fatalf("seed %d: service %v vs %v", seed, ms.Service, ds.Service)
		}
		if ds.HandoffTime != 0 || ds.HandoffTokens != ms.PrefillTokens {
			t.Fatalf("seed %d: zero handoff accounted %v over %d tokens",
				seed, ds.HandoffTime, ds.HandoffTokens)
		}
	}
}

// TestDisaggClosedLoopZeroHandoffMatches runs the same differential
// through the closed-loop Backend path (Endpoint.Serve).
func TestDisaggClosedLoopZeroHandoffMatches(t *testing.T) {
	mcfg := Config{Profile: noJitter, Replicas: 1, MaxBatch: 1, CacheEntries: 64}
	mono, dis := New(mcfg), New(disaggZero(mcfg))
	for i, r := range spacedTrace(10, 3) {
		call := llm.Call{Agent: r.Agent, Arrival: r.Arrival, Prompt: r.Prompt, OutTokens: r.OutTokens}
		ms, ds := mono.Serve(call), dis.Serve(call)
		if !within(ms.Latency, ds.Latency, pricingTolerance) {
			t.Fatalf("req %d: latency %v vs %v", i, ms.Latency, ds.Latency)
		}
		if ms.PromptTokens != ds.PromptTokens || ms.CachedTokens != ds.CachedTokens {
			t.Fatalf("req %d: token split diverged: %+v vs %+v", i, ms, ds)
		}
		// The whole stage-2 latency is the overlappable window here.
		if ds.Decode <= 0 || ds.Decode >= ds.Latency {
			t.Fatalf("req %d: disagg decode window %v of %v", i, ds.Decode, ds.Latency)
		}
	}
}

// TestDisaggOffIsMonolithic pins "disaggregation disabled changes
// nothing": a config without pools builds no disaggregated state and its
// serving results are DeepEqual to the seed monolithic path.
func TestDisaggOffIsMonolithic(t *testing.T) {
	cfg := Config{Profile: noJitter, Replicas: 2, MaxBatch: 4, MaxWait: time.Second, CacheEntries: 64}
	if New(cfg).dis != nil {
		t.Fatal("pool-less config built disaggregated state")
	}
	reqs := testTrace(4, 5, 8*time.Second, 200*time.Millisecond)
	a, b := Replay(cfg, reqs), Replay(cfg, reqs)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("monolithic replay not reproducible")
	}
	for _, c := range a.Completions {
		if c.PrefillDone != 0 || c.DecodeWait != 0 {
			t.Fatalf("monolithic completion carries stage fields: %+v", c)
		}
	}
	s := a.Stats
	if s.PrefillService != 0 || s.DecodeService != 0 || s.PrefillWait != 0 ||
		s.DecodeWait != 0 || s.HandoffTime != 0 || s.HandoffTokens != 0 {
		t.Fatalf("monolithic stats carry stage fields: %+v", s)
	}
}

// TestDisaggDeterministic: identical disaggregated runs are DeepEqual —
// completions, batches and folded statistics.
func TestDisaggDeterministic(t *testing.T) {
	cfg := Config{Profile: noJitter, MaxBatch: 1, CacheEntries: 64,
		Prefill: PoolConfig{Replicas: 2, MaxBatch: 4, MaxWait: time.Second},
		Decode:  PoolConfig{Replicas: 1, MaxBatch: 4, MaxWait: time.Second},
		Handoff: Handoff{Latency: 40 * time.Millisecond, TokensPerSec: 200000},
	}
	reqs := testTrace(4, 5, 8*time.Second, 200*time.Millisecond)
	a, b := Replay(cfg, reqs), Replay(cfg, reqs)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical disaggregated replays diverged")
	}
	x, y := New(cfg), New(cfg)
	for _, r := range reqs {
		call := llm.Call{Agent: r.Agent, Arrival: r.Arrival, Prompt: r.Prompt, OutTokens: r.OutTokens}
		if sx, sy := x.Serve(call), y.Serve(call); !reflect.DeepEqual(sx, sy) {
			t.Fatalf("closed-loop serve diverged: %+v vs %+v", sx, sy)
		}
	}
	if !reflect.DeepEqual(x.Stats(), y.Stats()) {
		t.Fatal("closed-loop stats diverged")
	}
}

// TestHandoffCost pins the pricing formula exactly.
func TestHandoffCost(t *testing.T) {
	h := Handoff{Latency: 40 * time.Millisecond, TokensPerSec: 200000}
	if got := h.cost(300); got != 40*time.Millisecond+1500*time.Microsecond {
		t.Fatalf("cost(300) = %v", got)
	}
	if got := h.cost(0); got != 40*time.Millisecond {
		t.Fatalf("cost(0) = %v", got)
	}
	if got := (Handoff{}).cost(1000); got != 0 {
		t.Fatalf("zero handoff cost = %v", got)
	}
	if got := (Handoff{Latency: time.Second}).cost(500); got != time.Second {
		t.Fatalf("rate-free cost = %v", got)
	}
}

// TestDisaggHandoffPriced: with an uncontended trace, the disaggregated
// end-to-end latency is the zero-handoff latency plus exactly the priced
// transfer.
func TestDisaggHandoffPriced(t *testing.T) {
	mcfg := Config{Profile: noJitter, Replicas: 1, MaxBatch: 1, CacheEntries: 64}
	h := Handoff{Latency: 40 * time.Millisecond, TokensPerSec: 200000}
	paid := disaggZero(mcfg)
	paid.Handoff = h
	reqs := spacedTrace(6, 9)
	free := Replay(disaggZero(mcfg), reqs)
	cost := Replay(paid, reqs)
	for i := range reqs {
		fc, cc := free.Completions[i], cost.Completions[i]
		want := (fc.Done - fc.Arrival) + h.cost(fc.PromptTokens)
		if got := cc.Done - cc.Arrival; got != want {
			t.Fatalf("req %d: latency %v, want %v (handoff %v)", i, got, want, h.cost(fc.PromptTokens))
		}
	}
	wantTime := time.Duration(0)
	for _, c := range free.Completions {
		wantTime += h.cost(c.PromptTokens)
	}
	if cost.Stats.HandoffTime != wantTime {
		t.Fatalf("HandoffTime = %v, want %v", cost.Stats.HandoffTime, wantTime)
	}
}

// TestDisaggDecodePriorityAdmission: when a burst clears prefill together,
// the decode pool's admission queue orders by Request.Priority — the
// decode stage is where priority scheduling bites.
func TestDisaggDecodePriorityAdmission(t *testing.T) {
	const n = 4
	cfg := Config{Profile: noJitter, CacheEntries: 64,
		// Enough prefill replicas that the burst prefills in parallel and
		// hands off simultaneously; one decode replica, no batching, so
		// decode admits strictly by the queue order.
		Prefill: PoolConfig{Replicas: n, MaxBatch: 1},
		Decode:  PoolConfig{Replicas: 1, MaxBatch: 1},
	}
	var reqs []Request
	for i := 0; i < n; i++ {
		reqs = append(reqs, Request{
			Agent:    fmt.Sprintf("a%d", i),
			Priority: n - 1 - i, // submission order is the REVERSE of priority
			Arrival:  0,
			Prompt: prompt.New(
				prompt.Section{Name: "system", Tokens: 200},
			),
			OutTokens: 50,
		})
	}
	res := Replay(cfg, reqs)
	for i := range res.Completions {
		if res.Completions[i].PrefillDone != res.Completions[0].PrefillDone {
			t.Fatalf("burst did not hand off together: %+v", res.Completions)
		}
	}
	// Decode completion order must follow priority: request n-1 (priority
	// 0) first, request 0 (priority n-1) last.
	for i := 1; i < n; i++ {
		if res.Completions[i].Done >= res.Completions[i-1].Done {
			t.Fatalf("decode order ignores priority: req %d done %v, req %d done %v",
				i, res.Completions[i].Done, i-1, res.Completions[i-1].Done)
		}
	}
}

// TestDisaggFold checks the folded statistics' internal consistency.
func TestDisaggFold(t *testing.T) {
	cfg := Config{Profile: noJitter, CacheEntries: 64,
		Prefill: PoolConfig{Replicas: 2, MaxBatch: 4, MaxWait: time.Second},
		Decode:  PoolConfig{Replicas: 2, MaxBatch: 4, MaxWait: time.Second},
		Handoff: Handoff{Latency: 10 * time.Millisecond},
	}
	reqs := testTrace(4, 5, 8*time.Second, 200*time.Millisecond)
	res := Replay(cfg, reqs)
	s := res.Stats
	if s.Requests != len(reqs) {
		t.Fatalf("Requests = %d, want %d", s.Requests, len(reqs))
	}
	if s.Replicas != 4 {
		t.Fatalf("Replicas = %d, want 4 (2 prefill + 2 decode)", s.Replicas)
	}
	if len(s.ReplicaRequests) != 4 {
		t.Fatalf("ReplicaRequests = %v", s.ReplicaRequests)
	}
	if s.Service != s.PrefillService+s.DecodeService {
		t.Fatalf("Service %v != prefill %v + decode %v", s.Service, s.PrefillService, s.DecodeService)
	}
	if s.QueueWait != s.PrefillWait+s.DecodeWait {
		t.Fatalf("QueueWait %v != prefill %v + decode %v", s.QueueWait, s.PrefillWait, s.DecodeWait)
	}
	if s.PrefillService <= 0 || s.DecodeService <= 0 {
		t.Fatalf("stage service not split: %+v", s)
	}
	if s.HandoffTime != time.Duration(len(reqs))*10*time.Millisecond {
		t.Fatalf("HandoffTime = %v", s.HandoffTime)
	}
	var prompts int
	for _, c := range res.Completions {
		prompts += c.PromptTokens
		if c.PrefillDone <= c.Start || c.Done < c.PrefillDone {
			t.Fatalf("stage timeline out of order: %+v", c)
		}
		if c.QueueWait != c.Start-c.Arrival {
			t.Fatalf("prefill-stage wait invariant broken: %+v", c)
		}
	}
	if s.HandoffTokens != prompts {
		t.Fatalf("HandoffTokens = %d, want %d", s.HandoffTokens, prompts)
	}
}

// TestStageProfiles pins the stage split: prefill keeps overhead+prefill,
// decode keeps only the decode term, and a FixedLatency profile charges
// entirely in prefill.
func TestStageProfiles(t *testing.T) {
	pre, dec := stageProfiles(noJitter)
	if pre.DecodeRate != 0 || pre.Overhead != noJitter.Overhead || pre.PrefillRate != noJitter.PrefillRate {
		t.Fatalf("prefill profile = %+v", pre)
	}
	if dec.Overhead != 0 || dec.PrefillRate != 0 || dec.DecodeRate != noJitter.DecodeRate {
		t.Fatalf("decode profile = %+v", dec)
	}
	whole := noJitter.BatchServiceTime(1, 1000, 50)
	split := pre.BatchServiceTime(1, 1000, 50) + dec.BatchServiceTime(1, 0, 50)
	if !within(whole, split, pricingTolerance) {
		t.Fatalf("stage pricing %v != monolithic %v", split, whole)
	}

	fixed := llm.Profile{Name: "fixed", FixedLatency: 3 * time.Second}
	fpre, fdec := stageProfiles(fixed)
	if fpre.BatchServiceTime(1, 500, 50) != 3*time.Second {
		t.Fatal("fixed profile should charge wholly in prefill")
	}
	if got := fdec.BatchServiceTime(1, 0, 50); got != 0 {
		t.Fatalf("fixed profile's decode stage should be free, got %v", got)
	}
}

// TestConfigValidate covers every rejection branch the CLI leans on.
func TestConfigValidate(t *testing.T) {
	valid := Config{Profile: noJitter,
		Prefill: PoolConfig{Replicas: 2},
		Decode:  PoolConfig{Replicas: 1},
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid disaggregated config rejected: %v", err)
	}
	if err := (Config{Profile: noJitter, Replicas: 2}).Validate(); err != nil {
		t.Fatalf("valid monolithic config rejected: %v", err)
	}
	bad := map[string]Config{
		"prefill only":        {Prefill: PoolConfig{Replicas: 2}},
		"decode only":         {Decode: PoolConfig{Replicas: 2}},
		"pools plus replicas": {Replicas: 2, Prefill: PoolConfig{Replicas: 1}, Decode: PoolConfig{Replicas: 1}},
		"pools plus autoscale": {
			Prefill: PoolConfig{Replicas: 1}, Decode: PoolConfig{Replicas: 1},
			Autoscale: Autoscale{Interval: time.Second, Min: 1, Max: 2},
		},
		"negative prefill replicas": {Prefill: PoolConfig{Replicas: -1}, Decode: PoolConfig{Replicas: 1}},
		"negative decode batch":     {Prefill: PoolConfig{Replicas: 1}, Decode: PoolConfig{Replicas: 1, MaxBatch: -4}},
		"negative prefill wait":     {Prefill: PoolConfig{Replicas: 1, MaxWait: -time.Second}, Decode: PoolConfig{Replicas: 1}},
		"negative pool cache":       {Prefill: PoolConfig{Replicas: 1, CacheTokens: -1}, Decode: PoolConfig{Replicas: 1}},
		"negative handoff latency":  {Prefill: PoolConfig{Replicas: 1}, Decode: PoolConfig{Replicas: 1}, Handoff: Handoff{Latency: -time.Second}},
		"negative handoff rate":     {Prefill: PoolConfig{Replicas: 1}, Decode: PoolConfig{Replicas: 1}, Handoff: Handoff{TokensPerSec: -5}},
	}
	for name, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, cfg)
		}
	}
}

// TestParseHandoff pins the CLI surface: accepted spellings and the
// rejects, which must return the unusable zero value.
func TestParseHandoff(t *testing.T) {
	for _, s := range []string{"", "off", "  off  "} {
		h, err := ParseHandoff(s)
		if err != nil || h != (Handoff{}) {
			t.Fatalf("ParseHandoff(%q) = %+v, %v; want free, nil", s, h, err)
		}
	}
	h, err := ParseHandoff("lat=40ms,rate=200000")
	if err != nil || h.Latency != 40*time.Millisecond || h.TokensPerSec != 200000 {
		t.Fatalf("ParseHandoff(lat=40ms,rate=200000) = %+v, %v", h, err)
	}
	if h, err = ParseHandoff("rate=1e6"); err != nil || h.TokensPerSec != 1e6 || h.Latency != 0 {
		t.Fatalf("ParseHandoff(rate=1e6) = %+v, %v", h, err)
	}
	for _, bad := range []string{"lat=-1s", "rate=-5", "lat=abc", "rate=abc", "nope", "size=4", "lat"} {
		h, err := ParseHandoff(bad)
		if err == nil {
			t.Fatalf("ParseHandoff(%q) accepted", bad)
		}
		if h != (Handoff{}) {
			t.Fatalf("ParseHandoff(%q) returned usable fallback %+v", bad, h)
		}
	}
}

// TestDisaggObsEvents: a recorded disaggregated replay validates against
// the schema, tags every pool event with its stage, emits one handoff per
// request, and never emits a decode-stage submit (requests must be
// reconstructible exactly once).
func TestDisaggObsEvents(t *testing.T) {
	cfg := Config{Profile: noJitter, CacheEntries: 64,
		Prefill: PoolConfig{Replicas: 2, MaxBatch: 1},
		Decode:  PoolConfig{Replicas: 1, MaxBatch: 1},
		Handoff: Handoff{Latency: 10 * time.Millisecond, TokensPerSec: 100000},
	}
	reqs := testTrace(3, 4, 10*time.Second, 300*time.Millisecond)
	rec := obs.NewRecorder()
	ReplayObserved(cfg, reqs, rec)
	events := rec.Events()
	if err := obs.Validate(events); err != nil {
		t.Fatalf("disaggregated event stream invalid: %v", err)
	}
	var handoffs, submits int
	stages := map[string]bool{}
	for _, ev := range events {
		stages[ev.Stage] = true
		switch ev.Kind {
		case obs.KindHandoff:
			handoffs++
			if ev.Tokens <= 0 || ev.Dur <= 0 || ev.Stage != "handoff" {
				t.Fatalf("malformed handoff event: %+v", ev)
			}
		case obs.KindSubmit:
			submits++
			if ev.Stage != "prefill" {
				t.Fatalf("submit outside the prefill stage: %+v", ev)
			}
		}
	}
	if handoffs != len(reqs) {
		t.Fatalf("handoff events = %d, want %d", handoffs, len(reqs))
	}
	if submits != len(reqs) {
		t.Fatalf("submit events = %d, want %d (decode submits must be dropped)", submits, len(reqs))
	}
	if !stages["prefill"] || !stages["decode"] {
		t.Fatalf("missing stage tags; saw %v", stages)
	}
}

// TestMonolithicJSONLHasNoStage pins traced-run byte-identity: a
// monolithic recording marshals without any stage key.
func TestMonolithicJSONLHasNoStage(t *testing.T) {
	cfg := Config{Profile: noJitter, Replicas: 2, MaxBatch: 1, CacheEntries: 64}
	rec := obs.NewRecorder()
	ReplayObserved(cfg, testTrace(2, 3, 10*time.Second, time.Second), rec)
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"stage"`) {
		t.Fatal("monolithic trace JSONL mentions stage")
	}
}

// TestTraceRequestsRejectsBatchedRecording: recordings made with
// MaxBatch > 1 cannot be reconstructed (join-window races) and must be
// refused with a descriptive error.
func TestTraceRequestsRejectsBatchedRecording(t *testing.T) {
	cfg := Config{Profile: noJitter, Replicas: 1, MaxBatch: 4,
		MaxWait: time.Second, CacheEntries: 64}
	rec := obs.NewRecorder()
	ReplayObserved(cfg, testTrace(2, 2, 8*time.Second, time.Second), rec)
	_, err := TraceRequests(rec.Events())
	if err == nil {
		t.Fatal("TraceRequests accepted a MaxBatch 4 recording")
	}
	if !strings.Contains(err.Error(), "MaxBatch 4") {
		t.Fatalf("undiagnostic error: %v", err)
	}
}

// TestTraceRequestsRejectsNonMonotone: submit timestamps running backwards
// within a shard mean unmerged concurrent clients; reconstruction must
// refuse, naming the problem.
func TestTraceRequestsRejectsNonMonotone(t *testing.T) {
	secs := []obs.Section{{Name: "system", Tokens: 100}}
	events := []obs.Event{
		{Kind: obs.KindSubmit, T: 5 * time.Second, Req: 1, Agent: "a", Out: 40, Sections: secs},
		{Kind: obs.KindSubmit, T: 2 * time.Second, Req: 2, Agent: "b", Out: 40, Sections: secs},
	}
	_, err := TraceRequests(events)
	if err == nil {
		t.Fatal("TraceRequests accepted a non-monotone stream")
	}
	if !strings.Contains(err.Error(), "non-monotone") {
		t.Fatalf("undiagnostic error: %v", err)
	}
	// Monotone within each shard is fine even if shards interleave.
	events = []obs.Event{
		{Kind: obs.KindSubmit, T: 5 * time.Second, Shard: 0, Req: 1, Agent: "a", Out: 40, Sections: secs},
		{Kind: obs.KindSubmit, T: 2 * time.Second, Shard: 1, Req: 1, Agent: "b", Out: 40, Sections: secs},
		{Kind: obs.KindSubmit, T: 6 * time.Second, Shard: 0, Req: 2, Agent: "a", Out: 40, Sections: secs},
	}
	reqs, err := TraceRequests(events)
	if err != nil || len(reqs) != 3 {
		t.Fatalf("per-shard monotone stream rejected: %v (%d reqs)", err, len(reqs))
	}
}

// TestDisaggReset: Reset returns a disaggregated endpoint to its initial
// state — a reset run reproduces a fresh one.
func TestDisaggReset(t *testing.T) {
	cfg := Config{Profile: noJitter, CacheEntries: 64,
		Prefill: PoolConfig{Replicas: 2, MaxBatch: 4, MaxWait: time.Second},
		Decode:  PoolConfig{Replicas: 1, MaxBatch: 4, MaxWait: time.Second},
		Handoff: Handoff{Latency: 10 * time.Millisecond},
	}
	reqs := testTrace(3, 3, 8*time.Second, time.Second)
	serveAll := func(e *Endpoint) []llm.Served {
		var out []llm.Served
		for _, r := range reqs {
			out = append(out, e.Serve(llm.Call{
				Agent: r.Agent, Arrival: r.Arrival, Prompt: r.Prompt, OutTokens: r.OutTokens,
			}))
		}
		return out
	}
	e := New(cfg)
	first := serveAll(e)
	firstStats := e.Stats()
	e.Reset()
	if !reflect.DeepEqual(serveAll(e), first) {
		t.Fatal("post-reset run diverged from fresh run")
	}
	if !reflect.DeepEqual(e.Stats(), firstStats) {
		t.Fatal("post-reset stats diverged")
	}
}
