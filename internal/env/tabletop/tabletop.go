// Package tabletop implements a continuous-space multi-arm manipulation
// environment — the suite's stand-in for RoCoBench (RoCo) and the
// BEHAVIOR-1K style heterogeneous manipulation of COHERENT (paper
// Table II).
//
// Fixed-base arms with bounded reach move objects to goal positions,
// handing objects over in reach-overlap zones when no single arm covers
// both pick and place. Motion is planned with a real RRT over circular
// obstacles; its sample counts convert into the execution latency that
// makes low-level planning 49.4% of RoCo's per-step time (Fig. 2a).
package tabletop

import (
	"fmt"
	"math"

	"embench/internal/core"
	"embench/internal/geom"
	"embench/internal/modules/execution"
	"embench/internal/modules/memory"
	"embench/internal/path/rrt"
	"embench/internal/rng"
	"embench/internal/world"
)

// Placement/achievement tolerance.
const (
	goalTol   = 0.03
	senseMult = 1.3  // sensing range = reach × senseMult
	armSpeed  = 0.16 // max object transfer distance per step
)

const objFactTokens = 14

// Config parameterizes an episode.
type Config struct {
	Agents     int
	Difficulty world.Difficulty
	Horizon    int       // 0 = difficulty default
	Objects    int       // 0 = difficulty default
	Reaches    []float64 // per-arm reach radii; empty = homogeneous 0.38
	// PlanCost scales reported RRT samples: each 2D workspace sample
	// stands for that many configuration-space collision checks (a 7-DOF
	// arm costs more per sample than a mobile base). Default 1.
	PlanCost float64
	Seed     string
}

func defaults(d world.Difficulty) (objects, horizon int) {
	switch d {
	case world.Easy:
		return 3, 30
	case world.Medium:
		return 5, 55
	default:
		return 8, 90
	}
}

// arm is one manipulator.
type arm struct {
	base     geom.Point
	reach    float64
	effector geom.Point
}

// object is one manipulable item.
type object struct {
	id        int
	pos       geom.Point
	goal      geom.Point
	delivered bool
}

// Table is the environment. It implements core.Domain and
// core.CentralDomain.
type Table struct {
	cfg       Config
	arms      []arm
	objects   []*object
	obstacles []geom.Circle
	bounds    geom.Rect
	planner   rrt.Planner
	stream    *rng.Stream
	step      int
	horizon   int
}

// ObjFact is the payload of an object sighting. Gone marks negative
// evidence: the arm reached the pick point and found nothing.
type ObjFact struct {
	ID        int
	Pos       geom.Point
	Goal      geom.Point
	Delivered bool
	Gone      bool
}

// ClaimFact is an "arm is handling object O" intent.
type ClaimFact struct {
	Agent  int
	Object int
}

// New builds an episode; object placement derives from src and is
// guaranteed reachable (every object and goal lies in some arm's reach).
func New(cfg Config, src *rng.Source) *Table {
	if cfg.Agents <= 0 {
		cfg.Agents = 2
	}
	objects, horizon := defaults(cfg.Difficulty)
	if cfg.Objects > 0 {
		objects = cfg.Objects
	}
	if cfg.Horizon > 0 {
		horizon = cfg.Horizon
	}
	t := &Table{
		cfg:     cfg,
		bounds:  geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)},
		planner: rrt.New(),
		stream:  src.NewStream("tabletop/" + cfg.Seed),
		horizon: horizon,
	}
	t.obstacles = []geom.Circle{
		{C: geom.Pt(0.5, 0.16), R: 0.07},
		{C: geom.Pt(0.5, 0.84), R: 0.07},
	}
	for i := 0; i < cfg.Agents; i++ {
		base := geom.Pt(float64(i+1)/float64(cfg.Agents+1), 0.5)
		reach := 0.38
		if i < len(cfg.Reaches) {
			reach = cfg.Reaches[i]
		}
		t.arms = append(t.arms, arm{base: base, reach: reach, effector: base})
	}
	for i := 0; i < objects; i++ {
		t.objects = append(t.objects, &object{
			id:   i,
			pos:  t.samplePointInSomeReach(),
			goal: t.samplePointInSomeReach(),
		})
	}
	return t
}

// samplePointInSomeReach draws a collision-free point covered by at least
// one arm.
func (t *Table) samplePointInSomeReach() geom.Point {
	for {
		a := t.arms[t.stream.Pick(len(t.arms))]
		ang := t.stream.Range(0, 2*math.Pi)
		rad := t.stream.Range(0.05, a.reach*0.9)
		p := geom.Pt(a.base.X+rad*math.Cos(ang), a.base.Y+rad*math.Sin(ang))
		p = t.bounds.Clamp(p)
		if !t.inSomeReach(p) {
			continue
		}
		clear := true
		for _, o := range t.obstacles {
			if o.Contains(p) {
				clear = false
				break
			}
		}
		if clear {
			return p
		}
	}
}

func (t *Table) inSomeReach(p geom.Point) bool {
	for _, a := range t.arms {
		if geom.Dist(a.base, p) <= a.reach {
			return true
		}
	}
	return false
}

// InReach reports whether p is inside agent's workspace.
func (t *Table) InReach(agent int, p geom.Point) bool {
	a := t.arms[agent]
	return geom.Dist(a.base, p) <= a.reach
}

// Name implements core.Domain.
func (t *Table) Name() string { return "tabletop" }

// Agents implements core.Domain.
func (t *Table) Agents() int { return len(t.arms) }

// MaxSteps implements core.Domain.
func (t *Table) MaxSteps() int { return t.horizon }

// Step implements core.Domain.
func (t *Table) Step() int { return t.step }

// Done implements core.Domain.
func (t *Table) Done() bool { return t.Success() || t.step >= t.horizon }

// Success implements core.Domain.
func (t *Table) Success() bool {
	for _, o := range t.objects {
		if !o.delivered {
			return false
		}
	}
	return true
}

// Progress implements core.Domain.
func (t *Table) Progress() float64 {
	if len(t.objects) == 0 {
		return 1
	}
	done := 0
	for _, o := range t.objects {
		if o.delivered {
			done++
		}
	}
	return float64(done) / float64(len(t.objects))
}

// ObjectPos exposes an object's true position (tests and examples).
func (t *Table) ObjectPos(id int) geom.Point { return t.objects[id].pos }

// StaticRecords implements core.Domain.
func (t *Table) StaticRecords() []memory.Record {
	return []memory.Record{{
		Kind: memory.Observation, Key: "map:workspace", Payload: "arms+obstacles",
		Tokens: 50, Static: true,
	}}
}

// Observe implements core.Domain: an arm senses objects within
// reach × senseMult of its base.
func (t *Table) Observe(agent int) core.Observation {
	a := t.arms[agent]
	obs := core.Observation{}
	for _, o := range t.objects {
		if geom.Dist(a.base, o.pos) > a.reach*senseMult {
			continue
		}
		obs.Entities++
		rec := memory.Record{
			Step: t.step, Kind: memory.Observation, Key: fmt.Sprintf("obj:%d", o.id),
			Payload: ObjFact{ID: o.id, Pos: o.pos, Goal: o.goal, Delivered: o.delivered},
			Tokens:  objFactTokens,
		}
		obs.Records = append(obs.Records, rec)
		obs.Tokens += rec.Tokens
	}
	return obs
}

// belief is the tabletop belief payload.
type belief struct {
	objects map[int]ObjFact
	objStep map[int]int
	claims  map[int]int
}

// BuildBelief implements core.Domain.
func (t *Table) BuildBelief(agent int, recs []memory.Record) core.Belief {
	b := belief{objects: map[int]ObjFact{}, objStep: map[int]int{}, claims: map[int]int{}}
	for _, r := range recs {
		switch p := r.Payload.(type) {
		case ObjFact:
			if r.Step >= b.objStep[p.ID] {
				if p.Gone {
					delete(b.objects, p.ID)
				} else {
					b.objects[p.ID] = p
				}
				b.objStep[p.ID] = r.Step
			}
		case ClaimFact:
			b.claims[p.Agent] = p.Object
		}
	}
	known, stale := 0, 0
	//detlint:allow maprange counting loop; only totals leave it
	for id, f := range b.objects {
		if f.Delivered {
			continue
		}
		known++
		truth := t.objects[id]
		if truth.delivered || geom.Dist(truth.pos, f.Pos) > goalTol {
			stale++
		}
	}
	st := 0.0
	if known > 0 {
		st = float64(stale) / float64(known)
	}
	return core.Belief{Payload: b, Staleness: st}
}

// MoveObj picks an object at Pick and places it at Place — possibly a
// handover waypoint rather than the final goal.
type MoveObj struct {
	Obj   int
	Pick  geom.Point
	Place geom.Point
}

// ID implements core.Subgoal.
func (m MoveObj) ID() string {
	return fmt.Sprintf("move:%d:%.2f,%.2f", m.Obj, m.Place.X, m.Place.Y)
}

// Describe implements core.Subgoal.
func (m MoveObj) Describe() string {
	return fmt.Sprintf("move object %d to (%.2f,%.2f)", m.Obj, m.Place.X, m.Place.Y)
}

// Idle is the do-nothing subgoal.
type Idle struct{}

// ID implements core.Subgoal.
func (Idle) ID() string { return "idle" }

// Describe implements core.Subgoal.
func (Idle) Describe() string { return "wait" }

// Propose implements core.Domain.
func (t *Table) Propose(agent int, bel core.Belief) core.Proposal {
	b, _ := bel.Payload.(belief)
	prop := core.Proposal{Complexity: core.DecentralizedComplexity(len(t.arms))}
	prop.Good = t.bestMove(agent, b)
	prop.Corruptions = t.corruptions(agent, b, prop.Good)
	return prop
}

// bestMove: nearest believed-open object in reach; place at its goal if
// reachable, otherwise at the overlap waypoint toward the arm that covers
// the goal.
func (t *Table) bestMove(agent int, b belief) core.Subgoal {
	a := t.arms[agent]
	// Distance ties break toward the lower object id, never map order.
	best := -1
	bestD := 1e18
	var bestAction MoveObj
	for _, id := range world.SortedKeys(b.objects) {
		f := b.objects[id]
		if f.Delivered || claimedByOther(b.claims, agent, id) {
			continue
		}
		if !t.InReach(agent, f.Pos) {
			continue
		}
		action, ok := t.planFor(agent, id, f)
		if !ok {
			continue
		}
		if d := geom.Dist(a.effector, f.Pos); d < bestD {
			best, bestD, bestAction = id, d, action
		}
	}
	if best < 0 {
		return Idle{}
	}
	return bestAction
}

// planFor decides how agent would handle object f: deliver directly when
// the goal is in reach, otherwise pass it one arm toward the goal — unless
// the downstream arm can already reach it, in which case the object is the
// downstream arm's responsibility and this arm leaves it alone.
func (t *Table) planFor(agent, id int, f ObjFact) (MoveObj, bool) {
	if t.InReach(agent, f.Goal) {
		return MoveObj{Obj: id, Pick: f.Pos, Place: f.Goal}, true
	}
	target := t.armCovering(f.Goal)
	if target < 0 {
		return MoveObj{}, false
	}
	next := t.neighborToward(agent, target)
	if next == agent {
		return MoveObj{}, false
	}
	if t.InReach(next, f.Pos) {
		return MoveObj{}, false // already in the overlap: downstream's job
	}
	via, ok := t.overlapPoint(agent, next)
	if !ok {
		return MoveObj{}, false
	}
	return MoveObj{Obj: id, Pick: f.Pos, Place: via}, true
}

func (t *Table) armCovering(p geom.Point) int {
	bestArm, bestD := -1, 1e18
	for i := range t.arms {
		if d := geom.Dist(t.arms[i].base, p); d <= t.arms[i].reach && d < bestD {
			bestArm, bestD = i, d
		}
	}
	return bestArm
}

// neighborToward returns the adjacent arm index stepping from a toward b.
func (t *Table) neighborToward(a, b int) int {
	if b > a {
		return a + 1
	}
	if b < a {
		return a - 1
	}
	return a
}

// overlapPoint finds a point both arms reach, clear of obstacles.
func (t *Table) overlapPoint(a, b int) (geom.Point, bool) {
	if a < 0 || b < 0 || a >= len(t.arms) || b >= len(t.arms) || a == b {
		return geom.Point{}, false
	}
	aa, ab := t.arms[a], t.arms[b]
	if geom.Dist(aa.base, ab.base) > aa.reach+ab.reach {
		return geom.Point{}, false
	}
	// Walk the segment between bases; pick the first point both reach.
	for i := 0; i <= 20; i++ {
		p := geom.Lerp(aa.base, ab.base, float64(i)/20)
		if geom.Dist(aa.base, p) <= aa.reach && geom.Dist(ab.base, p) <= ab.reach {
			blocked := false
			for _, o := range t.obstacles {
				if o.Contains(p) {
					blocked = true
					break
				}
			}
			if !blocked {
				return p, true
			}
		}
	}
	return geom.Point{}, false
}

func claimedByOther(claims map[int]int, agent, obj int) bool {
	//detlint:allow maprange existence check; any order yields the same answer
	for a, o := range claims {
		if a != agent && o == obj {
			return true
		}
	}
	return false
}

// corruptions: place outside reach, re-handle a delivered object, or grab a
// teammate's claim.
func (t *Table) corruptions(agent int, b belief, good core.Subgoal) []core.Subgoal {
	var out []core.Subgoal
	add := func(sg core.Subgoal) {
		if sg != nil && (good == nil || sg.ID() != good.ID()) {
			out = append(out, sg)
		}
	}
	a := t.arms[agent]
	ids := world.SortedKeys(b.objects)
	// Out-of-reach placement: mirror the goal across the workspace.
	for _, id := range ids {
		f := b.objects[id]
		if f.Delivered || !t.InReach(agent, f.Pos) {
			continue
		}
		far := geom.Pt(1-a.base.X, 1-a.base.Y)
		if !t.InReach(agent, far) {
			add(MoveObj{Obj: id, Pick: f.Pos, Place: far})
			break
		}
	}
	for _, id := range ids {
		if f := b.objects[id]; f.Delivered {
			add(MoveObj{Obj: id, Pick: f.Pos, Place: f.Goal})
			break
		}
	}
	for _, ag := range world.SortedKeys(b.claims) {
		claimedObj := b.claims[ag]
		if f, ok := b.objects[claimedObj]; ok && !f.Delivered && t.InReach(agent, f.Pos) {
			add(MoveObj{Obj: claimedObj, Pick: f.Pos, Place: f.Goal})
			break
		}
	}
	add(Idle{})
	return out
}

// ProposeJoint implements core.CentralDomain.
func (t *Table) ProposeJoint(bel core.Belief) core.Proposal {
	b, _ := bel.Payload.(belief)
	good := &core.Joint{Assign: map[int]core.Subgoal{}}
	taken := map[int]bool{}
	for a := 0; a < len(t.arms); a++ {
		sub := belief{objects: map[int]ObjFact{}, objStep: b.objStep, claims: map[int]int{}}
		//detlint:allow maprange keyed filtered copy into fresh map; order-independent
		for id, f := range b.objects {
			if !taken[id] {
				sub.objects[id] = f
			}
		}
		g := t.bestMove(a, sub)
		if m, ok := g.(MoveObj); ok {
			taken[m.Obj] = true
		}
		good.Assign[a] = g
	}
	lazy := &core.Joint{Assign: map[int]core.Subgoal{}}
	dup := &core.Joint{Assign: map[int]core.Subgoal{}}
	var firstMove core.Subgoal = Idle{}
	for a := 0; a < len(t.arms); a++ {
		if m, ok := good.Assign[a].(MoveObj); ok {
			firstMove = m
			break
		}
	}
	for a := 0; a < len(t.arms); a++ {
		lazy.Assign[a] = Idle{}
		dup.Assign[a] = firstMove
	}
	return core.Proposal{
		Good:        good,
		Corruptions: []core.Subgoal{lazy, dup},
		Complexity:  core.CentralizedComplexity(len(t.arms)),
	}
}

// Execute implements core.Domain: two RRT plans (reach, transfer) with the
// sample counts charged as compute effort.
func (t *Table) Execute(agent int, sg core.Subgoal) execution.Result {
	m, ok := sg.(MoveObj)
	if !ok {
		if _, idle := sg.(Idle); idle || sg == nil {
			return execution.Result{Achieved: true, Note: "idle"}
		}
		return execution.Result{Note: "unknown subgoal"}
	}
	res := execution.Result{}
	a := &t.arms[agent]
	cost := t.cfg.PlanCost
	if cost <= 0 {
		cost = 1
	}
	scale := func(samples int) int { return int(float64(samples) * cost) }
	if !t.InReach(agent, m.Pick) || !t.InReach(agent, m.Place) {
		res.Note = "target outside workspace"
		res.Effort.Replans++
		return res
	}
	// Phase 1: reach the pick point.
	r1 := t.planner.Plan(a.effector, m.Pick, t.bounds, t.obstacles, t.stream)
	res.Effort.RRTSamples += scale(r1.Samples)
	if !r1.Found {
		res.Note = "no path to pick"
		res.Effort.Replans++
		return res
	}
	a.effector = m.Pick
	res.Effort.Primitives += len(r1.Path)
	// Grasp: object must actually be here.
	if m.Obj < 0 || m.Obj >= len(t.objects) {
		res.Note = "no such object"
		return res
	}
	o := t.objects[m.Obj]
	if o.delivered || geom.Dist(o.pos, m.Pick) > goalTol {
		res.Note = "object not at pick point"
		return res
	}
	// Phase 2: transfer, bounded by arm speed — long transfers take
	// several steps, which is what gives RoCo its multi-step trajectories.
	dest := geom.Toward(m.Pick, m.Place, armSpeed)
	r2 := t.planner.Plan(m.Pick, dest, t.bounds, t.obstacles, t.stream)
	res.Effort.RRTSamples += scale(r2.Samples)
	if !r2.Found {
		res.Note = "no transfer path"
		res.Effort.Replans++
		return res
	}
	a.effector = dest
	o.pos = dest
	res.Effort.Primitives += len(r2.Path) + 2 // grasp + release
	if geom.Dist(o.pos, o.goal) <= goalTol {
		o.delivered = true
	}
	res.Achieved = true
	return res
}

// Tick implements core.Domain.
func (t *Table) Tick() { t.step++ }

// ClaimRecord implements core.Claimer.
func (t *Table) ClaimRecord(agent int, sg core.Subgoal) (memory.Record, bool) {
	obj := -1
	if m, ok := sg.(MoveObj); ok {
		obj = m.Obj
	}
	return memory.Record{
		Kind: memory.Action, Key: fmt.Sprintf("claim:%d", agent),
		Payload: ClaimFact{Agent: agent, Object: obj}, Tokens: 6,
	}, true
}

// CorrectionRecords implements core.Corrector: a failed pick yields the
// object's true position when within sensing range, otherwise negative
// evidence.
func (t *Table) CorrectionRecords(agent int, sg core.Subgoal, res execution.Result) []memory.Record {
	m, ok := sg.(MoveObj)
	if !ok || res.Achieved || m.Obj < 0 || m.Obj >= len(t.objects) {
		return nil
	}
	o := t.objects[m.Obj]
	a := t.arms[agent]
	fact := ObjFact{ID: o.id, Gone: true}
	if geom.Dist(a.base, o.pos) <= a.reach*senseMult {
		fact = ObjFact{ID: o.id, Pos: o.pos, Goal: o.goal, Delivered: o.delivered}
	}
	return []memory.Record{{
		Step: t.step, Kind: memory.Action, Key: fmt.Sprintf("obj:%d", o.id),
		Payload: fact, Tokens: objFactTokens,
	}}
}

var (
	_ core.Domain        = (*Table)(nil)
	_ core.CentralDomain = (*Table)(nil)
	_ core.Claimer       = (*Table)(nil)
	_ core.Corrector     = (*Table)(nil)
)
