// Package obs is the serving stack's flight recorder: a deterministic,
// virtual-time event log of every request's lifecycle through the shared
// endpoint — submit, fleet-merge admission, routing (policy and per-replica
// pressure scores), batch join/seal, completion — plus cache traffic
// (hit/miss/evict/flush with token counts) and autoscaler activity
// (evaluation ticks, scale-up/down).
//
// Events flow through the Sink seam serve threads into Endpoint, Fleet,
// ShardedFleet and Replay (Endpoint.SetSink and friends). A nil sink is the
// zero-cost default: every emission in serve is guarded, so un-instrumented
// runs are byte-identical to pre-recorder builds and allocate nothing extra
// per request.
//
// # Determinism contract
//
// Event content is as deterministic as the serving path that emits it: a
// single endpoint (or a Replay, or one fleet's merged admission order)
// emits an identical event sequence for identical inputs. What is NOT
// deterministic is cross-source interleaving into one shared Recorder —
// shards of a ShardedFleet and concurrently running per-episode endpoints
// append in goroutine-scheduling order, so Seq values differ run to run
// while each source's own event subsequence (filter by Shard, or record per
// episode) is stable. Cross-episode aggregation should therefore sample or
// summarize per source and merge (Series.Merge), exactly like
// metrics.Serving.
//
// Latency-bearing events carry AS-SERVED values: a continuous-batching join
// restates earlier members' completions at the batch's new end, and those
// restatements appear as the join's own batch_join event (Dur = the
// extension), not as rewrites of already-emitted completes. This matches
// the per-episode accounting convention (serve.FleetClient shares); the
// endpoint's sealed LatencyHist restates, so histograms derived from
// complete events can differ from it by exactly the join extensions.
package obs

import (
	"sync"
	"time"
)

// Kind labels one lifecycle event.
type Kind string

// Event kinds, in rough lifecycle order.
const (
	// KindConfig opens a stream: emitted once per sink attachment with the
	// endpoint's effective shape (Replica = pool size, Active = initially
	// active replicas, Batch = MaxBatch, Tokens = CacheTokens, Policy =
	// routing).
	KindConfig Kind = "config"
	// KindSubmit is a request entering the endpoint, before routing. Carries
	// everything replay needs to reconstruct the request: Agent, T (arrival),
	// Out (generation length), Priority and the prompt section chain.
	KindSubmit Kind = "submit"
	// KindAdmit is a fleet-merge admission: client Client's pending request
	// (or batch of Batch calls) won the conservative merge. The endpoint
	// events it triggers follow immediately in the same goroutine.
	KindAdmit Kind = "admit"
	// KindRoute is a placement decision: Replica won under Policy; Scores
	// holds every active replica's capacity-adjusted affinity score (warm
	// tokens minus eviction pressure) at decision time.
	KindRoute Kind = "route"
	// KindBatchStart is a new batch launching on Replica: Batch sequences,
	// Tokens effective prefill, Out max generation, Dur the batch service
	// time, Decode its decode share.
	KindBatchStart Kind = "batch_start"
	// KindBatchJoin is a continuous-batching join: the request rode Replica's
	// in-flight frontier, growing it to Batch sequences; Dur is the batch-end
	// extension the join restated earlier members by.
	KindBatchJoin Kind = "batch_join"
	// KindBatchSeal closes a replica's frontier batch (next batch launching,
	// or replica retiring): Batch members' latencies became final.
	KindBatchSeal Kind = "batch_seal"
	// KindComplete is a served request: T is completion time, Dur end-to-end
	// latency (as served; see the package comment), Wait its queueing share,
	// Batch the batch size, Tokens/Cached the prompt pricing split.
	KindComplete Kind = "complete"
	// KindCacheHit / KindCacheMiss price one admission against Replica's
	// prefix cache: Cached of Tokens prompt tokens were warm. A hit is any
	// admission with Cached > 0.
	KindCacheHit  Kind = "cache_hit"
	KindCacheMiss Kind = "cache_miss"
	// KindCacheEvict is capacity pressure: admitting onto Replica displaced
	// Tokens warm tokens (LRU chain eviction).
	KindCacheEvict Kind = "cache_evict"
	// KindCacheFlush is a scale-down flush: retiring Replica destroyed
	// Tokens warm tokens.
	KindCacheFlush Kind = "cache_flush"
	// KindScaleTick is one autoscaler evaluation: Util the window
	// utilization, Active the active replica count entering the tick.
	KindScaleTick Kind = "scale_tick"
	// KindScaleUp / KindScaleDown record a scaling decision; Active is the
	// NEW active replica count.
	KindScaleUp   Kind = "scale_up"
	KindScaleDown Kind = "scale_down"
	// KindHandoff is a disaggregated endpoint's prefill→decode KV transfer:
	// T is when prefill finished, Tokens the prompt KV pages moved, Dur the
	// priced transfer time (the decode pool sees the request at T + Dur).
	// Stage is "handoff"; stage-pool events carry Stage "prefill"/"decode".
	KindHandoff Kind = "handoff"
	// KindReplicaDown is an injected replica crash (serve.Faults): T is the
	// crash time, Tokens the warm cache tokens the crash destroyed (the
	// restart comes back cold), Dur the scheduled repair window, Batch the
	// in-flight sequences the crash killed (0 for an idle-replica crash —
	// killed requests re-enter admission and re-serve or shed, never vanish).
	KindReplicaDown Kind = "replica_down"
	// KindReplicaUp is the matching restart: T is the repair-window end at
	// which Replica takes traffic again, with a cold cache.
	KindReplicaUp Kind = "replica_up"
	// KindRetry is a client re-issue after a deadline timeout: T is when the
	// retried attempt re-enters admission, Dur the seeded backoff it waited,
	// Batch the attempt number (1 = first retry).
	KindRetry Kind = "retry"
	// KindHedge is a duplicate hedged attempt: the request had waited
	// HedgePolicy.Delay without completing, so a second copy entered
	// admission at T. First completion wins; the loser is cancelled (and
	// priced, if it reached a batch).
	KindHedge Kind = "hedge"
	// KindShed is a load-shedding rejection: admission refused the request
	// at T under queue pressure (ShedPolicy). Priority carries the class the
	// decision honored. Shed requests are surfaced, not silently dropped.
	KindShed Kind = "shed"
	// KindTimeout is a deadline expiry: the attempt had not started service
	// by T (its arrival plus Request.Deadline, carried in Dur). A retry
	// event follows while budget remains; otherwise the request resolves
	// timed-out.
	KindTimeout Kind = "timeout"
)

// knownKinds is the schema's closed kind set (Validate).
var knownKinds = map[Kind]bool{
	KindConfig: true, KindSubmit: true, KindAdmit: true, KindRoute: true,
	KindBatchStart: true, KindBatchJoin: true, KindBatchSeal: true,
	KindComplete: true, KindCacheHit: true, KindCacheMiss: true,
	KindCacheEvict: true, KindCacheFlush: true, KindScaleTick: true,
	KindScaleUp: true, KindScaleDown: true, KindHandoff: true,
	KindReplicaDown: true, KindReplicaUp: true, KindRetry: true,
	KindHedge: true, KindShed: true, KindTimeout: true,
}

// Section is one prompt section's recorded identity: enough to rebuild the
// prompt for replay under either cache-identity model (text rides along so
// content hashing reproduces; token-only sections record just name/tokens).
type Section struct {
	Name      string `json:"name"`
	Text      string `json:"text,omitempty"`
	Tokens    int    `json:"tokens,omitempty"`
	Droppable bool   `json:"droppable,omitempty"`
}

// Event is one flight-recorder record. The struct is flat — one shape for
// every kind, unused fields zero — so JSONL stays greppable and the schema
// is a single table (see the Kind constants for which fields each kind
// populates). Durations are nanoseconds of VIRTUAL time.
type Event struct {
	Seq     int64         `json:"seq"`
	Kind    Kind          `json:"kind"`
	T       time.Duration `json:"t"` // virtual timestamp
	Shard   int           `json:"shard"`
	Replica int           `json:"replica"`

	Req      int64  `json:"req,omitempty"`    // request id (per-source counter)
	Agent    string `json:"agent,omitempty"`  // submitting agent
	Client   int    `json:"client,omitempty"` // fleet episode id (admit)
	Priority int    `json:"priority,omitempty"`

	Policy string `json:"policy,omitempty"` // routing policy (route/config)
	Scores []int  `json:"scores,omitempty"` // per-replica pressure scores (route)

	Batch  int `json:"batch,omitempty"`  // batch size / MaxBatch (config)
	Tokens int `json:"tokens,omitempty"` // prompt/evicted/flushed/budget tokens
	Cached int `json:"cached,omitempty"` // warm prompt tokens
	Out    int `json:"out,omitempty"`    // generation length

	Wait   time.Duration `json:"wait,omitempty"`   // queueing share (complete)
	Dur    time.Duration `json:"dur,omitempty"`    // latency / service / extension
	Decode time.Duration `json:"decode,omitempty"` // decode share (batch_start)

	Active int     `json:"active,omitempty"` // active replicas (scale/config)
	Util   float64 `json:"util,omitempty"`   // window utilization (scale_tick)

	// Stage tags disaggregated-endpoint events with the pool that emitted
	// them ("prefill"/"decode") or "handoff" for the transfer itself; empty
	// on monolithic endpoints, so their JSONL is byte-identical to
	// pre-disaggregation traces.
	Stage string `json:"stage,omitempty"`

	Sections []Section `json:"sections,omitempty"` // prompt chain (submit)
}

// Arrival reports a complete event's request arrival time (T - Dur); zero
// for other kinds.
func (e Event) Arrival() time.Duration {
	if e.Kind != KindComplete {
		return 0
	}
	return e.T - e.Dur
}

// Start reports a complete event's service start (arrival + queue wait).
func (e Event) Start() time.Duration { return e.Arrival() + e.Wait }

// Sink receives flight-recorder events. Implementations must tolerate
// concurrent calls when attached to more than one source (a ShardedFleet's
// shards, parallel per-episode endpoints); a single endpoint or fleet calls
// it from one goroutine at a time. Sinks must not retain ev.Scores or
// ev.Sections beyond the call unless they own them (the serve emitters
// allocate fresh slices per event, so retaining is safe there).
type Sink interface {
	Event(ev Event)
}

// Recorder is the standard in-memory Sink: it assigns arrival Seq numbers
// and keeps every event. Safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Event implements Sink.
func (r *Recorder) Event(ev Event) {
	r.mu.Lock()
	ev.Seq = int64(len(r.events))
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Events returns the recorded stream in arrival order. The returned slice
// is a copy; the recorder may keep recording.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.mu.Unlock()
}
