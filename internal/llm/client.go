package llm

import (
	"time"

	"embench/internal/prompt"
	"embench/internal/rng"
	"embench/internal/simclock"
	"embench/internal/trace"
)

// Request is one grounded inference query. The oracle decision and its
// plausible corruptions are produced by the environment; the client decides
// which one "the model" returns.
type Request struct {
	Agent  string
	Module trace.Module
	Step   int
	Kind   string // "plan", "message", "reflect", "act-select", ...

	Prompt    prompt.Prompt
	OutTokens int // expected generation length

	Good        any   // the oracle's decision for the caller's belief
	Corruptions []any // plausible wrong decisions (empty = uncorruptible)

	Complexity    float64 // joint-action / task complexity addend
	Staleness     float64 // belief staleness in [0,1]
	ErrorDiscount float64 // multiplies base error (Rec. 4 multiple-choice); 0 means 1
}

// Response is the outcome of a grounded inference query.
type Response struct {
	Decision     any
	Corrupted    bool
	Truncated    bool // prompt exceeded the context window
	Latency      time.Duration
	PromptTokens int
	OutputTokens int
	ErrorP       float64 // the error probability that was applied
	// Decode is the decode-stage share of the FINAL serving attempt (see
	// llm.Served.Decode): the trailing window during which the response
	// was streaming and the agent's next-step preparation could already
	// run. The async pipeline (core.AgentConfig.Pipeline) credits it
	// against the next step's sensing/retrieval charges.
	Decode time.Duration
}

// Client issues grounded queries against one model profile, charging
// simulated latency to a clock and recording trace events. A nil clock or
// tracer is allowed (accounting is skipped), which keeps unit tests small.
type Client struct {
	profile Profile
	stream  *rng.Stream
	clock   *simclock.Clock
	tracer  *trace.Trace
	backend Backend // nil = direct serving from the profile
}

// NewClient returns a client for the given profile. The stream drives both
// latency jitter and the error channel; it must not be shared with other
// consumers if reproducibility across configurations matters.
func NewClient(p Profile, stream *rng.Stream, clock *simclock.Clock, tracer *trace.Trace) *Client {
	return &Client{profile: p, stream: stream, clock: clock, tracer: tracer}
}

// Profile reports the client's serving profile.
func (c *Client) Profile() Profile { return c.profile }

// SetProfile swaps the serving profile (Fig. 4 model-swap experiments).
func (c *Client) SetProfile(p Profile) { c.profile = p }

// ErrorProbability computes the error channel's pErr for a query with the
// given characteristics. Exposed for tests and for the calibration bench.
func (c *Client) ErrorProbability(promptTokens int, truncated bool, req Request) float64 {
	discount := req.ErrorDiscount
	if discount <= 0 {
		discount = 1
	}
	p := c.profile.BaseError() * discount
	if c.profile.ContextWindow > 0 {
		d := float64(promptTokens) / float64(c.profile.ContextWindow)
		p += dilutionCoef * d * d
	}
	if truncated {
		p += truncationPen
	}
	p += stalenessCoef * req.Staleness
	p += req.Complexity
	if p < 0 {
		p = 0
	}
	if p > maxError {
		p = maxError
	}
	return p
}

// draw runs the per-request decision pipeline shared by Complete,
// CompleteBatch and CompleteBatchMulti: fit the prompt to the context
// window, compute pErr and draw the decision from the client's stream.
// Keeping this in one place is what keeps the three serving paths'
// RNG-stream consumption aligned.
func (c *Client) draw(req Request) (Response, prompt.Prompt) {
	fitted := prompt.Fit(req.Prompt, c.contextBudget(req.OutTokens))
	promptTok := fitted.Prompt.Tokens()
	resp := Response{
		PromptTokens: promptTok,
		OutputTokens: req.OutTokens,
		Truncated:    fitted.Truncated,
	}
	resp.ErrorP = c.ErrorProbability(promptTok, fitted.Truncated, req)
	resp.Decision = req.Good
	if len(req.Corruptions) > 0 && c.stream.Bernoulli(resp.ErrorP) {
		resp.Corrupted = true
		resp.Decision = req.Corruptions[c.stream.Pick(len(req.Corruptions))]
	}
	return resp, fitted.Prompt
}

// retryDraws consumes the format-retry draws (malformed generations must
// be regenerated, up to two retries) and returns the attempt count.
func (c *Client) retryDraws() int {
	attempts := 1
	for i := 0; i < 2; i++ {
		if !c.stream.Bernoulli(c.profile.FormatRetryProb) {
			break
		}
		attempts++
	}
	return attempts
}

// Complete runs one grounded query: fit the prompt to the context window,
// draw the error channel, charge serving latency, record the trace event.
func (c *Client) Complete(req Request) Response {
	resp, fitted := c.draw(req)
	served := c.serve(req.Agent, fitted, resp.PromptTokens, req.OutTokens)
	lat := served.Latency
	resp.Decode = served.Decode
	// Each retry attempt pays the full serving latency.
	attempts := c.retryDraws()
	resp.Latency = time.Duration(attempts) * lat
	if c.backend != nil && attempts > 1 {
		// Each retry is a fresh submission to the shared endpoint, issued
		// after the failed attempt completes — it queues again and may land
		// in a different batch. The decode share is the LAST attempt's (the
		// only one whose tail the caller can overlap).
		total := lat
		for a := 1; a < attempts; a++ {
			s := c.backend.Serve(Call{
				Agent: req.Agent, Arrival: c.now() + total,
				Prompt: fitted, PromptTokens: resp.PromptTokens, OutTokens: req.OutTokens,
			})
			total += s.Latency
			resp.Decode = s.Decode
		}
		resp.Latency = total
	}
	resp.OutputTokens = attempts * req.OutTokens
	c.charge(req, resp)
	return resp
}

func (c *Client) contextBudget(outTokens int) int {
	if c.profile.ContextWindow <= 0 {
		return 1 << 30
	}
	b := c.profile.ContextWindow - outTokens
	if b < 0 {
		b = 0
	}
	return b
}

func (c *Client) charge(req Request, resp Response) {
	c.chargeAs(req, resp, req.Kind)
}

// chargeAs is charge with an overridden trace kind (batched/phase-
// aggregated calls annotate their serving mode while keeping the base kind
// as a prefix for breakdowns).
func (c *Client) chargeAs(req Request, resp Response, kind string) {
	if c.clock != nil {
		c.clock.Advance(resp.Latency)
	}
	if c.tracer != nil {
		c.tracer.Record(trace.Event{
			Step:         req.Step,
			Agent:        req.Agent,
			Module:       req.Module,
			Kind:         kind,
			Latency:      resp.Latency,
			PromptTokens: resp.PromptTokens,
			OutputTokens: resp.OutputTokens,
			LLMCall:      true,
		})
	}
}
