package multiagent

import (
	"testing"
	"time"

	"embench/internal/core"
	"embench/internal/env/boxworld"
	"embench/internal/env/craftworld"
	"embench/internal/env/gridhouse"
	"embench/internal/env/kitchen"
	"embench/internal/env/kitchenctl"
	"embench/internal/llm"
	"embench/internal/metrics"
	"embench/internal/modules/sensing"
	"embench/internal/rng"
	"embench/internal/world"
)

// coelaCfg is a CoELA-like decentralized stack: vision sensing, GPT-4
// planning/comms, memory, act-selection, A* execution, no reflection.
func coelaCfg() core.AgentConfig {
	comms := llm.GPT4
	return core.AgentConfig{
		Sensing: &sensing.MaskRCNN, Planner: llm.GPT4, Comms: &comms,
		Memory: core.MemoryConfig{Capacity: 32}, Execution: true, ActSelect: true,
	}
}

// jarvisCfg is a JARVIS-1-like single-agent stack with reflection.
func jarvisCfg() core.AgentConfig {
	refl := llm.Llama13B
	return core.AgentConfig{
		Sensing: &sensing.MineCLIP, Planner: llm.GPT4,
		Memory: core.MemoryConfig{Capacity: 32}, Reflector: &refl, Execution: true,
	}
}

// mindAgentCfg is a MindAgent-like centralized stack.
func mindAgentCfg() core.AgentConfig {
	comms := llm.GPT4
	return core.AgentConfig{
		Planner: llm.GPT4, Comms: &comms,
		Memory: core.MemoryConfig{Capacity: 32}, Execution: true,
	}
}

func successRate(run func(seed uint64) Outcome, n int) (float64, []metrics.Episode) {
	ok := 0
	var eps []metrics.Episode
	for s := 0; s < n; s++ {
		out := run(uint64(s))
		if out.Episode.Success {
			ok++
		}
		eps = append(eps, out.Episode)
	}
	return float64(ok) / float64(n), eps
}

func TestRunSingleCraftworldSucceedsMostly(t *testing.T) {
	rate, eps := successRate(func(seed uint64) Outcome {
		d := craftworld.New(craftworld.Config{Difficulty: world.Easy}, rng.New(seed))
		return RunSingle(d, jarvisCfg(), Options{Seed: seed})
	}, 8)
	if rate < 0.7 {
		t.Fatalf("easy craftworld success = %.2f, want ≥0.7", rate)
	}
	for _, e := range eps {
		if e.SimDuration <= 0 || e.Steps <= 0 {
			t.Fatalf("bad episode accounting: %+v", e)
		}
	}
}

func TestStepLatencyInPaperBand(t *testing.T) {
	d := craftworld.New(craftworld.Config{Difficulty: world.Easy}, rng.New(1))
	out := RunSingle(d, jarvisCfg(), Options{Seed: 1})
	perStep := out.Episode.SimDuration / time.Duration(out.Episode.Steps)
	// Paper Fig. 2a: 10–30 s per step across workloads.
	if perStep < 3*time.Second || perStep > 45*time.Second {
		t.Fatalf("per-step latency = %v, want a few to tens of seconds", perStep)
	}
}

func TestPlanningDominatesLatency(t *testing.T) {
	d := craftworld.New(craftworld.Config{Difficulty: world.Medium}, rng.New(2))
	out := RunSingle(d, jarvisCfg(), Options{Seed: 2})
	if out.Episode.LLMShare < 0.5 {
		t.Fatalf("LLM share = %.2f, expected LLM-dominated latency (paper: 70.2%% avg)", out.Episode.LLMShare)
	}
}

func TestRunDecentralizedGridhouse(t *testing.T) {
	rate, eps := successRate(func(seed uint64) Outcome {
		d := gridhouse.New(gridhouse.Config{Agents: 2, Difficulty: world.Easy}, rng.New(seed))
		return RunDecentralized(d, coelaCfg(), Options{Seed: seed})
	}, 6)
	if rate < 0.6 {
		t.Fatalf("easy gridhouse decentralized success = %.2f, want ≥0.6", rate)
	}
	// Communication must be happening and mostly redundant (paper: ~20%).
	var gen, useful int
	for _, e := range eps {
		gen += e.Messages.Generated
		useful += e.Messages.Useful
	}
	if gen == 0 {
		t.Fatal("no messages generated")
	}
	rateUseful := float64(useful) / float64(gen)
	if rateUseful > 0.7 {
		t.Fatalf("message usefulness = %.2f; expected substantial redundancy", rateUseful)
	}
}

func TestRunCentralizedKitchen(t *testing.T) {
	rate, _ := successRate(func(seed uint64) Outcome {
		d := kitchen.New(kitchen.Config{Agents: 2, Difficulty: world.Easy}, rng.New(seed))
		return RunCentralized(d, mindAgentCfg(), Options{Seed: seed})
	}, 6)
	if rate < 0.6 {
		t.Fatalf("easy kitchen centralized success = %.2f, want ≥0.6", rate)
	}
}

func TestCentralizedFewerLLMCallsThanDecentralized(t *testing.T) {
	seed := uint64(3)
	dc := kitchen.New(kitchen.Config{Agents: 4, Difficulty: world.Easy}, rng.New(seed))
	outC := RunCentralized(dc, mindAgentCfg(), Options{Seed: seed})
	dd := kitchen.New(kitchen.Config{Agents: 4, Difficulty: world.Easy}, rng.New(seed))
	cfg := mindAgentCfg()
	outD := RunDecentralized(dd, cfg, Options{Seed: seed})
	cPerStep := outC.Episode.LLMCalls / max(outC.Episode.Steps, 1)
	dPerStep := outD.Episode.LLMCalls / max(outD.Episode.Steps, 1)
	if cPerStep >= dPerStep {
		t.Fatalf("central %d calls/step should be < decentralized %d", cPerStep, dPerStep)
	}
}

func TestMemoryAblationHurtsGridhouse(t *testing.T) {
	base, _ := successRate(func(seed uint64) Outcome {
		d := gridhouse.New(gridhouse.Config{Agents: 2, Difficulty: world.Medium}, rng.New(seed))
		return RunDecentralized(d, coelaCfg(), Options{Seed: seed})
	}, 6)
	noMem, epsNo := successRate(func(seed uint64) Outcome {
		cfg := coelaCfg()
		cfg.Memory.Capacity = 0
		d := gridhouse.New(gridhouse.Config{Agents: 2, Difficulty: world.Medium}, rng.New(seed))
		return RunDecentralized(d, cfg, Options{Seed: seed})
	}, 6)
	if noMem >= base {
		t.Fatalf("disabling memory should hurt: base=%.2f noMem=%.2f", base, noMem)
	}
	_ = epsNo
}

func TestReflectionAblationHurtsCraftworld(t *testing.T) {
	var baseSteps, noReflSteps float64
	base, epsBase := successRate(func(seed uint64) Outcome {
		d := craftworld.New(craftworld.Config{Difficulty: world.Medium}, rng.New(seed))
		return RunSingle(d, jarvisCfg(), Options{Seed: seed})
	}, 8)
	noRefl, epsNo := successRate(func(seed uint64) Outcome {
		cfg := jarvisCfg()
		cfg.Reflector = nil
		d := craftworld.New(craftworld.Config{Difficulty: world.Medium}, rng.New(seed))
		return RunSingle(d, cfg, Options{Seed: seed})
	}, 8)
	for _, e := range epsBase {
		baseSteps += float64(e.Steps)
	}
	for _, e := range epsNo {
		noReflSteps += float64(e.Steps)
	}
	if noRefl > base {
		t.Fatalf("disabling reflection should not improve success: base=%.2f noRefl=%.2f", base, noRefl)
	}
	if noReflSteps <= baseSteps {
		t.Fatalf("disabling reflection should inflate steps: %.0f vs %.0f", noReflSteps, baseSteps)
	}
}

func TestExecutionAblationFails(t *testing.T) {
	rate, eps := successRate(func(seed uint64) Outcome {
		cfg := jarvisCfg()
		cfg.Execution = false
		d := craftworld.New(craftworld.Config{Difficulty: world.Medium}, rng.New(seed))
		return RunSingle(d, cfg, Options{Seed: seed})
	}, 5)
	if rate > 0.2 {
		t.Fatalf("w/o execution success = %.2f; the paper reports near-total failure", rate)
	}
	limit := 0
	for _, e := range eps {
		if e.ReachedLimit {
			limit++
		}
	}
	if limit < 4 {
		t.Fatalf("w/o execution should hit Lmax: %d/5", limit)
	}
}

func TestParallelFasterThanSequential(t *testing.T) {
	seed := uint64(5)
	run := func(parallel bool) time.Duration {
		d := gridhouse.New(gridhouse.Config{Agents: 4, Difficulty: world.Easy}, rng.New(seed))
		out := RunDecentralized(d, coelaCfg(), Options{Seed: seed, Parallel: parallel})
		return out.Episode.SimDuration
	}
	seq, par := run(false), run(true)
	if par >= seq {
		t.Fatalf("parallel (%v) should beat sequential (%v)", par, seq)
	}
}

func TestHierarchicalCutsDialogueLoad(t *testing.T) {
	// Clustering scopes broadcasts and shrinks the group that must
	// converge per step, cutting dialogue rounds and with them LLM calls
	// per step (Rec. 9).
	seed := uint64(6)
	run := func(cluster int) float64 {
		d := gridhouse.New(gridhouse.Config{Agents: 8, Difficulty: world.Easy}, rng.New(seed))
		out := RunDecentralized(d, coelaCfg(), Options{Seed: seed, ClusterSize: cluster})
		return float64(out.Episode.LLMCalls) / float64(max(out.Episode.Steps, 1))
	}
	flat, clustered := run(0), run(4)
	if clustered >= flat {
		t.Fatalf("clustering should cut LLM calls per step: flat=%.1f clustered=%.1f", flat, clustered)
	}
}

func TestRunEndToEndKitchenctl(t *testing.T) {
	rate, eps := successRate(func(seed uint64) Outcome {
		d := kitchenctl.New(kitchenctl.Config{Difficulty: world.Easy}, rng.New(seed))
		cfg := core.AgentConfig{Sensing: &sensing.ViT, Planner: llm.Llama7B, Execution: true}
		return RunEndToEnd(d, cfg, Options{Seed: seed})
	}, 8)
	if rate < 0.6 {
		t.Fatalf("end-to-end kitchenctl success = %.2f, want ≥0.6", rate)
	}
	// End-to-end steps are fast: no long chain of module calls.
	for _, e := range eps {
		if e.Steps == 0 {
			continue
		}
		perStep := e.SimDuration / time.Duration(e.Steps)
		if perStep > 10*time.Second {
			t.Fatalf("end-to-end per-step = %v, should be light", perStep)
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() Outcome {
		d := boxworld.New(boxworld.Config{Agents: 3, Difficulty: world.Easy}, rng.New(9))
		return RunDecentralized(d, coelaCfg(), Options{Seed: 9})
	}
	a, b := run(), run()
	if a.Episode.Steps != b.Episode.Steps || a.Episode.SimDuration != b.Episode.SimDuration ||
		a.Episode.LLMCalls != b.Episode.LLMCalls || a.Episode.Success != b.Episode.Success {
		t.Fatalf("non-deterministic runs:\n%+v\n%+v", a.Episode, b.Episode)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
