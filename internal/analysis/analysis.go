// Package analysis is the suite's determinism-and-mergeability lint layer:
// a small, self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic) plus the
// //detlint:allow suppression directive, built only on the standard
// library's go/* packages so the suite carries no external dependency.
//
// Every result this repository reports — the fig8–fig14 sweeps, their
// goldens, the sequential-vs-parallel parity tests — rests on
// byte-reproducibility, and byte-reproducibility rests on four invariants
// that used to be enforced only by convention:
//
//   - map iteration never decides anything (maprange): a planner ranging
//     over a belief map picks "the first match" in Go's randomized order.
//     Keys must flow through world.SortedKeys or an explicit sort.
//   - simulation code never reads the wall clock (wallclock): virtual
//     time is the only time; time.Now in a cost model makes runs
//     unrepeatable. Bench harness wall-timing sites are annotated.
//   - randomness comes only from named seeded streams (rawrand): direct
//     math/rand use bypasses internal/rng's per-consumer streams, so one
//     consumer's draws would perturb another's.
//   - metric types merge exhaustively (mergefields): every field of a
//     struct with a Merge method must be referenced by it, so "added a
//     counter, forgot the merge" is a lint failure, not a silent drop at
//     fleet-aggregation time.
//
// cmd/detlint drives the suite standalone (`detlint ./...`) and as a
// `go vet -vettool`. Findings are suppressed, site by site and with a
// recorded justification, by the shared directive:
//
//	//detlint:allow <analyzer>[,<analyzer>...] <justification>
//
// placed at the end of the offending line or on the line directly above
// it. The justification is mandatory: the set of annotations in the tree
// is the documented determinism contract.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one lint pass. The shape mirrors
// golang.org/x/tools/go/analysis so analyzers port over mechanically if
// the external module ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //detlint:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description shown by `detlint -help`.
	Doc string
	// Run inspects one type-checked package and reports findings via
	// pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with one type-checked package and a sink
// for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // non-test files only
	Path      string      // package import path
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned in the Pass's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a resolved diagnostic: position, owning analyzer, message.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// DirectivePrefix introduces a suppression comment.
const DirectivePrefix = "//detlint:allow"

// A Directive is one parsed //detlint:allow comment.
type Directive struct {
	Pos           token.Position
	Analyzers     []string // comma-list from the first field
	Justification string   // everything after the analyzer list
	used          bool
}

// parseDirectives scans a file's comments for //detlint:allow lines and
// indexes them by the line they annotate. A directive suppresses findings
// on its own line and on the line directly below it (the
// "comment-above-the-statement" placement).
func parseDirectives(fset *token.FileSet, file *ast.File) []*Directive {
	var out []*Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, DirectivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, DirectivePrefix)
			// Require a separator so e.g. //detlint:allowed is not a directive.
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue
			}
			fields := strings.Fields(rest)
			d := &Directive{Pos: fset.Position(c.Pos())}
			if len(fields) > 0 {
				for _, name := range strings.Split(fields[0], ",") {
					if name = strings.TrimSpace(name); name != "" {
						d.Analyzers = append(d.Analyzers, name)
					}
				}
				d.Justification = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
			}
			out = append(out, d)
		}
	}
	return out
}

// allows reports whether d suppresses analyzer findings at the position.
func (d *Directive) allows(analyzer string, pos token.Position) bool {
	if pos.Filename != d.Pos.Filename {
		return false
	}
	if pos.Line != d.Pos.Line && pos.Line != d.Pos.Line+1 {
		return false
	}
	for _, a := range d.Analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// Run executes the analyzers over pkg and returns the findings that
// survive //detlint:allow suppression, sorted by position. Test files
// (*_test.go) are excluded before the analyzers see the package: the
// determinism contract governs simulation and harness code, and tests are
// free to e.g. seed their own throwaway math/rand generators.
//
// Malformed directives are themselves findings (analyzer "detlint"): a
// directive naming no known analyzer is a typo that silently suppresses
// nothing, and a directive with no justification violates the contract
// that every exemption documents itself.
func Run(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	files := make([]*ast.File, 0, len(pkg.Files))
	var directives []*Directive
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, f)
		directives = append(directives, parseDirectives(pkg.Fset, f)...)
	}

	known := make(map[string]bool, len(analyzers))
	var findings []Finding
	for _, a := range analyzers {
		known[a.Name] = true
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Path:      pkg.Path,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	diag:
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			for _, dir := range directives {
				if dir.allows(a.Name, pos) {
					dir.used = true
					continue diag
				}
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
	}

	// Directive hygiene: a malformed or stale directive is itself a finding
	// (analyzer "detlint"). Known names come from the full suite, not just
	// the analyzers that ran, so disabling one analyzer at the driver does
	// not turn its directives into "unknown analyzer" noise.
	suite := make(map[string]bool)
	for _, a := range All() {
		suite[a.Name] = true
	}
	for _, d := range directives {
		names := strings.Join(d.Analyzers, ",")
		switch {
		case len(d.Analyzers) == 0:
			findings = append(findings, Finding{
				Analyzer: "detlint", Pos: d.Pos,
				Message: "directive names no analyzer (want //detlint:allow <analyzer> <justification>)",
			})
		case d.Justification == "":
			findings = append(findings, Finding{
				Analyzer: "detlint", Pos: d.Pos,
				Message: fmt.Sprintf("directive for %q has no justification — every exemption must say why it is safe", names),
			})
		default:
			ok := true
			ran := true
			for _, name := range d.Analyzers {
				if !suite[name] {
					ok = false
					findings = append(findings, Finding{
						Analyzer: "detlint", Pos: d.Pos,
						Message: fmt.Sprintf("directive names unknown analyzer %q", name),
					})
				}
				if !known[name] {
					ran = false
				}
			}
			// Only judge staleness when every named analyzer actually ran:
			// otherwise we cannot know whether the directive would have
			// suppressed something.
			if ok && ran && !d.used {
				findings = append(findings, Finding{
					Analyzer: "detlint", Pos: d.Pos,
					Message: fmt.Sprintf("directive for %q suppresses nothing — remove it or move it onto the offending line", names),
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// All returns the detlint analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{MapRange, WallClock, RawRand, MergeFields}
}
