package world

import (
	"cmp"
	"slices"
)

// SortedKeys returns m's keys in ascending order.
//
// Belief payloads store facts in maps, and several planners pick "the
// first/nearest matching fact". Iterating the map directly would make
// that pick depend on Go's randomized map iteration order, so episode
// outcomes would differ run to run (and between sequential and parallel
// harness runs). Planners must range over SortedKeys instead whenever the
// loop selects rather than aggregates.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	//detlint:allow maprange this is the collector SortedKeys itself sorts below
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
