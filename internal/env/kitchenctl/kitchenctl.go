// Package kitchenctl implements a short-horizon continuous-control
// micro-world — the suite's stand-in for Franka Kitchen / Meta-World as
// used by EmbodiedGPT (paper Table II).
//
// An episode is a sequence of manipulation subtasks (open the microwave,
// move the kettle, flip the light switch, ...), each driving one scalar
// degree of freedom to a target through a feedback-controller policy head.
// Each planned step triggers many controller iterations, which is why
// execution is 24.1% of EmbodiedGPT's per-step latency despite the tasks
// being short (Fig. 2a).
package kitchenctl

import (
	"fmt"

	"embench/internal/core"
	"embench/internal/modules/execution"
	"embench/internal/modules/memory"
	"embench/internal/rng"
	"embench/internal/world"
)

// Elements are the controllable degrees of freedom, named after the Franka
// Kitchen task set.
var Elements = []string{
	"microwave", "kettle", "burner", "light-switch", "slide-cabinet", "hinge-cabinet", "faucet",
}

// Controller parameters.
const (
	ctrlRate  = 0.15 // proportional gain per iteration
	ctrlTol   = 0.05 // convergence tolerance
	ctrlMax   = 40   // iteration cap per execution
	slipProb  = 0.08 // chance the grasp slips mid-motion
	elemToken = 9
)

// Config parameterizes an episode.
type Config struct {
	Difficulty world.Difficulty
	Horizon    int // 0 = difficulty default
	Seed       string
}

func defaults(d world.Difficulty) (subtasks, horizon int) {
	switch d {
	case world.Easy:
		return 3, 10
	case world.Medium:
		return 5, 16
	default:
		return 7, 22
	}
}

// Kitchen is the environment; single-agent, implements core.Domain.
type Kitchen struct {
	cfg      Config
	values   []float64 // current DOF values in [0,1]
	subtasks []int     // element indices to drive to 1.0
	stream   *rng.Stream
	step     int
	horizon  int
}

// ElemFact is the payload of a DOF observation.
type ElemFact struct {
	Element int
	Value   float64
}

// New builds an episode; the subtask set derives from src.
func New(cfg Config, src *rng.Source) *Kitchen {
	n, horizon := defaults(cfg.Difficulty)
	if cfg.Horizon > 0 {
		horizon = cfg.Horizon
	}
	k := &Kitchen{
		cfg:     cfg,
		values:  make([]float64, len(Elements)),
		stream:  src.NewStream("kitchenctl/" + cfg.Seed),
		horizon: horizon,
	}
	perm := k.stream.Perm(len(Elements))
	for i := 0; i < n && i < len(perm); i++ {
		k.subtasks = append(k.subtasks, perm[i])
	}
	return k
}

// Name implements core.Domain.
func (k *Kitchen) Name() string { return "kitchenctl" }

// Agents implements core.Domain.
func (k *Kitchen) Agents() int { return 1 }

// MaxSteps implements core.Domain.
func (k *Kitchen) MaxSteps() int { return k.horizon }

// Step implements core.Domain.
func (k *Kitchen) Step() int { return k.step }

// Done implements core.Domain.
func (k *Kitchen) Done() bool { return k.Success() || k.step >= k.horizon }

// Success implements core.Domain.
func (k *Kitchen) Success() bool {
	for _, e := range k.subtasks {
		if !k.subtaskDone(e) {
			return false
		}
	}
	return true
}

func (k *Kitchen) subtaskDone(element int) bool { return k.values[element] >= 1-ctrlTol }

// Progress implements core.Domain.
func (k *Kitchen) Progress() float64 {
	if len(k.subtasks) == 0 {
		return 1
	}
	done := 0
	for _, e := range k.subtasks {
		if k.subtaskDone(e) {
			done++
		}
	}
	return float64(done) / float64(len(k.subtasks))
}

// Subtasks reports the episode's element indices in order.
func (k *Kitchen) Subtasks() []int { return append([]int(nil), k.subtasks...) }

// Value reports a DOF's current value (tests and examples).
func (k *Kitchen) Value(element int) float64 { return k.values[element] }

// StaticRecords implements core.Domain: the subtask list is the task spec.
func (k *Kitchen) StaticRecords() []memory.Record {
	return []memory.Record{{
		Kind: memory.Observation, Key: "task:subtasks", Payload: k.Subtasks(),
		Tokens: 10 + 6*len(k.subtasks), Static: true,
	}}
}

// Observe implements core.Domain: the whole state is visible each frame
// (fixed ego camera), so EmbodiedGPT needs no memory module (Table II).
func (k *Kitchen) Observe(agent int) core.Observation {
	obs := core.Observation{}
	for i, v := range k.values {
		obs.Entities++
		rec := memory.Record{
			Step: k.step, Kind: memory.Observation, Key: fmt.Sprintf("elem:%d", i),
			Payload: ElemFact{Element: i, Value: v}, Tokens: elemToken,
		}
		obs.Records = append(obs.Records, rec)
		obs.Tokens += rec.Tokens
	}
	return obs
}

// belief is the kitchenctl belief payload.
type belief struct {
	values   map[int]float64
	subtasks []int
}

// BuildBelief implements core.Domain.
func (k *Kitchen) BuildBelief(agent int, recs []memory.Record) core.Belief {
	b := belief{values: map[int]float64{}}
	for _, r := range recs {
		switch p := r.Payload.(type) {
		case ElemFact:
			b.values[p.Element] = p.Value
		case []int:
			b.subtasks = p
		}
	}
	if b.subtasks == nil {
		b.subtasks = k.subtasks // the task sheet is always at hand
	}
	return core.Belief{Payload: b}
}

// DoSubtask drives one element to its target.
type DoSubtask struct{ Element int }

// ID implements core.Subgoal.
func (d DoSubtask) ID() string { return fmt.Sprintf("do:%d", d.Element) }

// Describe implements core.Subgoal.
func (d DoSubtask) Describe() string {
	if d.Element >= 0 && d.Element < len(Elements) {
		return "manipulate " + Elements[d.Element]
	}
	return fmt.Sprintf("manipulate element %d", d.Element)
}

// Idle is the do-nothing subgoal.
type Idle struct{}

// ID implements core.Subgoal.
func (Idle) ID() string { return "idle" }

// Describe implements core.Subgoal.
func (Idle) Describe() string { return "wait" }

// Propose implements core.Domain: the first unfinished subtask in order.
func (k *Kitchen) Propose(agent int, bel core.Belief) core.Proposal {
	b, _ := bel.Payload.(belief)
	prop := core.Proposal{}
	var good core.Subgoal = Idle{}
	for _, e := range b.subtasks {
		if v, ok := b.values[e]; !ok || v < 1-ctrlTol {
			good = DoSubtask{Element: e}
			break
		}
	}
	prop.Good = good
	// Corruptions: redo a finished subtask or fiddle with an unrelated DOF.
	var corr []core.Subgoal
	for _, e := range b.subtasks {
		if v, ok := b.values[e]; ok && v >= 1-ctrlTol {
			if g := (DoSubtask{Element: e}); g.ID() != good.ID() {
				corr = append(corr, g)
			}
			break
		}
	}
	inTask := map[int]bool{}
	for _, e := range b.subtasks {
		inTask[e] = true
	}
	for e := range Elements {
		if !inTask[e] {
			if g := (DoSubtask{Element: e}); g.ID() != good.ID() {
				corr = append(corr, g)
			}
			break
		}
	}
	if len(corr) == 0 {
		corr = append(corr, Idle{})
	}
	prop.Corruptions = corr
	return prop
}

// Execute implements core.Domain: run the feedback controller until the
// DOF converges, slips, or the iteration budget runs out.
func (k *Kitchen) Execute(agent int, sg core.Subgoal) execution.Result {
	d, ok := sg.(DoSubtask)
	if !ok {
		if _, idle := sg.(Idle); idle || sg == nil {
			return execution.Result{Achieved: true, Note: "idle"}
		}
		return execution.Result{Note: "unknown subgoal"}
	}
	if d.Element < 0 || d.Element >= len(Elements) {
		return execution.Result{Note: "no such element"}
	}
	res := execution.Result{}
	v := k.values[d.Element]
	slipped := k.stream.Bernoulli(slipProb)
	slipAt := 0
	if slipped {
		slipAt = 3 + k.stream.Pick(8)
	}
	for it := 0; it < ctrlMax; it++ {
		res.Effort.ControlIters++
		res.Effort.Primitives = 1
		if slipped && it == slipAt {
			v *= 0.5 // grasp slipped; partial motion lost
			res.Effort.Replans++
			res.Note = "grasp slipped"
			k.values[d.Element] = v
			return res
		}
		v += ctrlRate * (1 - v)
		if v >= 1-ctrlTol {
			k.values[d.Element] = 1 - ctrlTol/2
			res.Achieved = true
			return res
		}
	}
	k.values[d.Element] = v
	res.Note = "controller did not converge"
	return res
}

// Tick implements core.Domain.
func (k *Kitchen) Tick() { k.step++ }

var _ core.Domain = (*Kitchen)(nil)
