// Package memory implements the memory module of an embodied agent
// (paper Sec. II-A): observation, action and dialogue records with bounded
// retention, retrieval cost accounting, and the dual long-term/short-term
// structure of Rec. 5.
package memory

import (
	"reflect"
	"strings"
	"time"
)

// Kind classifies a record, following the paper's three memory categories.
type Kind int

// Record kinds.
const (
	Observation Kind = iota // world state seen by the sensing module
	Action                  // the agent's own decisions and outcomes
	Dialogue                // messages exchanged with other agents
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Observation:
		return "observation"
	case Action:
		return "action"
	case Dialogue:
		return "dialogue"
	}
	return "unknown"
}

// Record is one remembered fact or event.
type Record struct {
	Step    int    // environment step at which it was recorded
	Kind    Kind   // observation / action / dialogue
	Key     string // identity for dedup and novelty checks, e.g. "obj:apple"
	Payload any    // environment-specific content
	Tokens  int    // prompt cost when rendered into context
	Static  bool   // long-lived fact (map layout); eligible for long-term store
	Routine bool   // self-status bookkeeping (own pose, action log); never novel to others
}

// Retrieval cost model: scanning and serializing memory into context costs
// retrievalBase plus retrievalPerRecord for every record returned. This is
// what makes large memory capacities slower per step (paper Fig. 5).
const (
	retrievalBase      = 30 * time.Millisecond
	retrievalPerRecord = 8 * time.Millisecond
)

// Store is a step-windowed memory with the paper's capacity semantics:
// a capacity of K retains records from the most recent K environment steps.
// Capacity < 0 means unlimited (full state-action history); capacity 0
// drops everything (the "w/o Memory" ablation of Fig. 3).
type Store struct {
	capacity int
	records  []Record
	latest   map[string]int // Key -> index of most recent record
}

// NewStore returns a store with the given capacity in steps.
func NewStore(capacity int) *Store {
	return &Store{capacity: capacity, latest: make(map[string]int)}
}

// Capacity reports the configured step window (negative = unlimited).
func (s *Store) Capacity() int { return s.capacity }

// SetCapacity changes the window, taking effect on the next Retrieve.
func (s *Store) SetCapacity(k int) { s.capacity = k }

// pruneThreshold bounds the in-memory record count for windowed stores:
// once exceeded, records older than the window are compacted away. This
// keeps long multi-agent episodes (hundreds of dialogue records per step)
// linear in the window, not the episode.
const pruneThreshold = 2048

// dedupWindow suppresses immediate restatements: an unchanged fact
// re-observed within this many steps of its last record is not stored
// again. Restatements older than the window still accumulate — agents do
// keep re-logging the world, which is exactly the paper's prompt-growth
// mechanism (Fig. 6) — but per-step duplicate floods (every teammate
// repeating every fact every step) stay bounded.
const dedupWindow = 4

// Add appends a record. Zero-capacity stores discard immediately.
func (s *Store) Add(rec Record) {
	if s.capacity == 0 {
		return
	}
	if rec.Key != "" {
		if i, ok := s.latest[rec.Key]; ok {
			prev := s.records[i]
			if prev.Step <= rec.Step && rec.Step-prev.Step < dedupWindow &&
				reflect.DeepEqual(prev.Payload, rec.Payload) {
				return
			}
		}
	}
	s.records = append(s.records, rec)
	if rec.Key != "" {
		s.latest[rec.Key] = len(s.records) - 1
	}
	if s.capacity > 0 && len(s.records) > pruneThreshold {
		s.prune(rec.Step)
	}
}

// prune drops records that have fallen out of the window as of now.
func (s *Store) prune(now int) {
	cut := now - s.capacity
	kept := s.records[:0]
	for _, r := range s.records {
		if r.Step > cut || r.Static {
			kept = append(kept, r)
		}
	}
	s.records = kept
	s.latest = make(map[string]int, len(kept))
	for i, r := range kept {
		if r.Key != "" {
			s.latest[r.Key] = i
		}
	}
}

// AddAll appends records in order.
func (s *Store) AddAll(recs []Record) {
	for _, r := range recs {
		s.Add(r)
	}
}

// Len reports the number of records currently held.
func (s *Store) Len() int { return len(s.records) }

// Retrieval is the result of reading memory into planning context.
type Retrieval struct {
	Records []Record
	Tokens  int           // prompt cost of the retrieved content
	Latency time.Duration // simulated retrieval time
}

// Retrieve returns the records within the capacity window as of
// currentStep, newest-last, with the token and latency cost of
// serializing them into context.
func (s *Store) Retrieve(currentStep int) Retrieval {
	var out []Record
	cut := -1
	if s.capacity > 0 {
		cut = currentStep - s.capacity
	}
	if s.capacity != 0 {
		for _, r := range s.records {
			if r.Step > cut || s.capacity < 0 {
				out = append(out, r)
			}
		}
	}
	ret := Retrieval{Records: out}
	for _, r := range out {
		ret.Tokens += r.Tokens
	}
	ret.Latency = retrievalBase + time.Duration(len(out))*retrievalPerRecord
	return ret
}

// HasKey reports whether any retained record carries the key.
func (s *Store) HasKey(key string) bool {
	_, ok := s.latest[key]
	return ok
}

// Latest returns the most recent record for key, if any.
func (s *Store) Latest(key string) (Record, bool) {
	i, ok := s.latest[key]
	if !ok {
		return Record{}, false
	}
	return s.records[i], true
}

// Since returns records strictly newer than step — used by the
// communication module to share "what I learned since my last message".
func (s *Store) Since(step int) []Record {
	var out []Record
	for _, r := range s.records {
		if r.Step > step {
			out = append(out, r)
		}
	}
	return out
}

// Clear resets the store for a new episode.
func (s *Store) Clear() {
	s.records = s.records[:0]
	s.latest = make(map[string]int)
}

// Dual is the dual-memory structure of Rec. 5: static facts go to an
// unbounded long-term store that is summarized to a fixed token budget,
// while dynamic events live in a short-term sliding window. Retrieval
// touches far fewer records, cutting both latency and context dilution.
type Dual struct {
	Long       *Store // static environmental knowledge
	Short      *Store // recent events
	LongBudget int    // token budget for the long-term summary
}

// NewDual returns a dual memory with the given short-term window (steps)
// and long-term summary budget (tokens).
func NewDual(shortWindow, longBudget int) *Dual {
	return &Dual{
		Long:       NewStore(-1),
		Short:      NewStore(shortWindow),
		LongBudget: longBudget,
	}
}

// Add routes the record to the appropriate store: environmental knowledge
// (static facts and keyed world observations) consolidates into long-term
// memory, while agent status, actions and dialogue stay in the short-term
// window — the split Rec. 5 prescribes.
func (d *Dual) Add(rec Record) {
	if rec.Static {
		// Deduplicate static facts by key: the map doesn't change.
		if rec.Key != "" && d.Long.HasKey(rec.Key) {
			return
		}
		d.Long.Add(rec)
		return
	}
	if rec.Key != "" && !rec.Routine && !strings.HasPrefix(rec.Key, "claim:") {
		// World knowledge — wherever it came from (own sensing, a message,
		// a reflection correction) — consolidates into long-term memory.
		d.Long.Add(rec)
		return
	}
	d.Short.Add(rec)
}

// AddAll appends records in order.
func (d *Dual) AddAll(recs []Record) {
	for _, r := range recs {
		d.Add(r)
	}
}

// Retrieve merges the compact long-term summary with the short-term
// window. Long-term content is capped at LongBudget tokens regardless of
// how much static knowledge accumulated.
func (d *Dual) Retrieve(currentStep int) Retrieval {
	long := d.Long.Retrieve(currentStep)
	short := d.Short.Retrieve(currentStep)
	tokens := long.Tokens
	if d.LongBudget > 0 && tokens > d.LongBudget {
		tokens = d.LongBudget
	}
	recs := make([]Record, 0, len(long.Records)+len(short.Records))
	recs = append(recs, long.Records...)
	recs = append(recs, short.Records...)
	return Retrieval{
		Records: recs,
		Tokens:  tokens + short.Tokens,
		// The long-term summary is precomputed; only the short window is
		// scanned at plan time.
		Latency: retrievalBase + time.Duration(len(short.Records))*retrievalPerRecord,
	}
}

// Clear resets both stores.
func (d *Dual) Clear() {
	d.Long.Clear()
	d.Short.Clear()
}
