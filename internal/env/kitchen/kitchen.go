// Package kitchen implements an order-driven collaborative cooking game —
// the suite's stand-in for CuisineWorld (MindAgent) and the TDW-Game/
// TDW-Cook tasks (COMBO) of the paper's Table II.
//
// Dishes arrive over time and move through station-bound stages (chop,
// cook, plate, serve). Stations have unit capacity, so team throughput
// hinges on conflict-free assignment — the quantity the paper's centralized
// vs decentralized scalability analysis (Fig. 7) measures. Stage
// completions are observed as *events*, so an agent that forgets what the
// team already did re-attempts finished work.
package kitchen

import (
	"fmt"

	"embench/internal/core"
	"embench/internal/modules/execution"
	"embench/internal/modules/memory"
	"embench/internal/rng"
	"embench/internal/world"
)

// Station identifies a workstation kind.
type Station string

// Workstation kinds in stage order.
const (
	Counter Station = "counter" // ingredient fetch; unlimited capacity
	Board   Station = "board"   // chopping
	Stove   Station = "stove"   // cooking
	Pass    Station = "pass"    // plating
	Window  Station = "window"  // serving
)

// stationSlots is the per-step capacity of each station kind.
var stationSlots = map[Station]int{Counter: 1 << 30, Board: 2, Stove: 2, Pass: 2, Window: 1}

// Recipe is a dish's stage sequence.
type Recipe struct {
	Name   string
	Stages []Station
}

// The menu. Later dishes need more stages — harder orders.
var (
	Salad = Recipe{Name: "salad", Stages: []Station{Counter, Board, Pass, Window}}
	Soup  = Recipe{Name: "soup", Stages: []Station{Counter, Board, Stove, Pass, Window}}
	Roast = Recipe{Name: "roast", Stages: []Station{Counter, Board, Stove, Stove, Pass, Window}}
)

// Order is one dish request.
type Order struct {
	ID       int
	Recipe   Recipe
	Arrival  int // step it became visible
	Deadline int // serve by this step to count
	Stage    int // next stage index to perform
	served   int // step served, -1 if not
}

// Done reports whether the order completed all stages.
func (o *Order) Done() bool { return o.Stage >= len(o.Recipe.Stages) }

// Config parameterizes an episode.
type Config struct {
	Agents     int
	Difficulty world.Difficulty
	Horizon    int // 0 = difficulty default
	Orders     int // 0 = difficulty default
	Seed       string
}

// defaults reports the horizon, order deadline and arrival interval per
// difficulty. CuisineWorld is a continuous dispatch game: orders keep
// arriving for the whole episode, so the total order count follows from
// horizon and interval rather than being fixed.
func defaults(d world.Difficulty) (horizon, deadline, interval int) {
	switch d {
	case world.Easy:
		return 45, 26, 5
	case world.Medium:
		return 80, 32, 4
	default:
		return 120, 36, 3
	}
}

// Token sizes for rendered facts.
const (
	orderFactTokens = 16
	progFactTokens  = 10
	busyFactTokens  = 8
)

// Game is the environment. It implements core.Domain and
// core.CentralDomain.
type Game struct {
	cfg      Config
	agents   int
	orders   []*Order
	pending  []*Order // not yet arrived
	horizon  int
	deadline int
	step     int
	occupied map[Station]int // slots used this step
	events   []memory.Record // completions emitted this step
	prevEv   []memory.Record // last step's completions, still observable
	required int             // orders to serve on time for success
}

// OrderFact announces an order on the board.
type OrderFact struct {
	ID       int
	Recipe   string
	Stages   int
	Deadline int
}

// ProgressFact is a stage-completion event.
type ProgressFact struct {
	Order int
	Stage int // the stage index that was completed
}

// ClaimFact is an "agent is working order O stage S" intent.
type ClaimFact struct {
	Agent int
	Order int
	Stage int
}

// New builds an episode; the order schedule derives from src.
func New(cfg Config, src *rng.Source) *Game {
	if cfg.Agents <= 0 {
		cfg.Agents = 2
	}
	horizon, deadline, interval := defaults(cfg.Difficulty)
	if cfg.Horizon > 0 {
		horizon = cfg.Horizon
	}
	// Orders arrive continuously until ~2/3 of the horizon, leaving room
	// to finish the tail of the queue.
	orders := 2 + (horizon*2/3)/interval
	if cfg.Orders > 0 {
		orders = cfg.Orders
	}
	g := &Game{
		cfg: cfg, agents: cfg.Agents, horizon: horizon, deadline: deadline,
		occupied: map[Station]int{},
	}
	st := src.NewStream("kitchen/" + cfg.Seed)
	menu := []Recipe{Salad, Soup, Roast}
	weights := menuWeights(cfg.Difficulty)
	for i := 0; i < orders; i++ {
		r := menu[pickWeighted(st, weights)]
		arrival := 0
		if i >= 2 {
			arrival = (i - 1) * interval
		}
		o := &Order{ID: i, Recipe: r, Arrival: arrival, Deadline: arrival + deadline, served: -1}
		if arrival == 0 {
			g.orders = append(g.orders, o)
		} else {
			g.pending = append(g.pending, o)
		}
	}
	g.required = (orders*7 + 9) / 10 // 70%, rounded up
	return g
}

func menuWeights(d world.Difficulty) []float64 {
	switch d {
	case world.Easy:
		return []float64{0.7, 0.3, 0}
	case world.Medium:
		return []float64{0.3, 0.5, 0.2}
	default:
		return []float64{0.2, 0.4, 0.4}
	}
}

func pickWeighted(st *rng.Stream, w []float64) int {
	x := st.Float64()
	acc := 0.0
	for i, p := range w {
		acc += p
		if x < acc {
			return i
		}
	}
	return len(w) - 1
}

// Name implements core.Domain.
func (g *Game) Name() string { return "kitchen" }

// Agents implements core.Domain.
func (g *Game) Agents() int { return g.agents }

// MaxSteps implements core.Domain.
func (g *Game) MaxSteps() int { return g.horizon }

// Step implements core.Domain.
func (g *Game) Step() int { return g.step }

// ServedOnTime counts orders served before their deadlines.
func (g *Game) ServedOnTime() int {
	n := 0
	for _, o := range g.orders {
		if o.served >= 0 && o.served <= o.Deadline {
			n++
		}
	}
	return n
}

// TotalOrders reports the episode's full order count.
func (g *Game) TotalOrders() int { return len(g.orders) + len(g.pending) }

// Required reports the on-time serve count needed for success.
func (g *Game) Required() int { return g.required }

// Success implements core.Domain: at least 80% of orders served on time.
func (g *Game) Success() bool { return g.ServedOnTime() >= g.required }

// Done implements core.Domain.
func (g *Game) Done() bool {
	if g.step >= g.horizon {
		return true
	}
	// All orders resolved (served or past deadline with success settled).
	if len(g.pending) > 0 {
		return false
	}
	for _, o := range g.orders {
		if !o.Done() && g.step <= o.Deadline {
			return false
		}
	}
	return true
}

// Progress implements core.Domain.
func (g *Game) Progress() float64 {
	total := g.TotalOrders()
	if total == 0 {
		return 1
	}
	return float64(g.ServedOnTime()) / float64(total)
}

// StaticRecords implements core.Domain: the station map and menu.
func (g *Game) StaticRecords() []memory.Record {
	return []memory.Record{
		{Kind: memory.Observation, Key: "map:stations", Payload: "layout", Tokens: 60, Static: true},
		{Kind: memory.Observation, Key: "menu", Payload: "recipes", Tokens: 50, Static: true},
	}
}

// Observe implements core.Domain: the order board (state) plus this step's
// completion events. Stage progress itself is NOT in the state — remember
// it or redo it.
func (g *Game) Observe(agent int) core.Observation {
	obs := core.Observation{}
	add := func(rec memory.Record) {
		obs.Records = append(obs.Records, rec)
		obs.Tokens += rec.Tokens
	}
	for _, o := range g.orders {
		if o.Done() {
			continue
		}
		obs.Entities++
		add(memory.Record{
			Step: g.step, Kind: memory.Observation, Key: fmt.Sprintf("order:%d", o.ID),
			Payload: OrderFact{ID: o.ID, Recipe: o.Recipe.Name, Stages: len(o.Recipe.Stages), Deadline: o.Deadline},
			Tokens:  orderFactTokens,
		})
	}
	// Completion events stay observable through the following step:
	// executions happen after sensing within a step, so the team reads a
	// completion at the start of the next one.
	for _, ev := range g.prevEv {
		add(ev)
	}
	for _, ev := range g.events {
		add(ev)
	}
	return obs
}

// belief is the kitchen belief payload.
type belief struct {
	orders map[int]OrderFact
	stage  map[int]int // believed next stage per order
	claims map[int]ClaimFact
}

// BuildBelief implements core.Domain.
func (g *Game) BuildBelief(agent int, recs []memory.Record) core.Belief {
	b := belief{orders: map[int]OrderFact{}, stage: map[int]int{}, claims: map[int]ClaimFact{}}
	for _, r := range recs {
		switch p := r.Payload.(type) {
		case OrderFact:
			b.orders[p.ID] = p
		case ProgressFact:
			if p.Stage+1 > b.stage[p.Order] {
				b.stage[p.Order] = p.Stage + 1
			}
		case ClaimFact:
			b.claims[p.Agent] = p
		}
	}
	// Staleness: fraction of believed-open orders whose believed next stage
	// lags the truth (someone progressed or served them unseen).
	known, stale := 0, 0
	//detlint:allow maprange counting loop; only totals leave it
	for id := range b.orders {
		o := g.orderByID(id)
		if o == nil {
			continue
		}
		known++
		if b.stage[id] < o.Stage {
			stale++
		}
	}
	st := 0.0
	if known > 0 {
		st = float64(stale) / float64(known)
	}
	return core.Belief{Payload: b, Staleness: st}
}

func (g *Game) orderByID(id int) *Order {
	for _, o := range g.orders {
		if o.ID == id {
			return o
		}
	}
	return nil
}

// Op is the kitchen subgoal: perform one stage of one order.
type Op struct {
	Order   int
	Stage   int
	Station Station
}

// ID implements core.Subgoal.
func (o Op) ID() string { return fmt.Sprintf("op:%d:%d", o.Order, o.Stage) }

// Describe implements core.Subgoal.
func (o Op) Describe() string {
	return fmt.Sprintf("order %d stage %d at %s", o.Order, o.Stage, o.Station)
}

// Idle is the do-nothing subgoal (a valid corruption and a valid central
// assignment when the team outnumbers the work).
type Idle struct{}

// ID implements core.Subgoal.
func (Idle) ID() string { return "idle" }

// Describe implements core.Subgoal.
func (Idle) Describe() string { return "wait" }

// Propose implements core.Domain (decentralized agent view).
func (g *Game) Propose(agent int, bel core.Belief) core.Proposal {
	b, _ := bel.Payload.(belief)
	prop := core.Proposal{Complexity: core.DecentralizedComplexity(g.agents)}
	good := g.bestOp(b, agent)
	prop.Good = good
	prop.Corruptions = g.corruptions(b, good)
	return prop
}

// bestOp picks the earliest-deadline believed-open order whose next stage
// is unclaimed by teammates.
func (g *Game) bestOp(b belief, agent int) core.Subgoal {
	// Deadline ties break toward the lower order id, never map order.
	bestID, bestDeadline := -1, 1<<30
	for _, id := range world.SortedKeys(b.orders) {
		f := b.orders[id]
		stage := b.stage[id]
		if stage >= f.Stages {
			continue
		}
		if claimed(b.claims, agent, id, stage) {
			continue
		}
		if f.Deadline < bestDeadline {
			bestID, bestDeadline = id, f.Deadline
		}
	}
	if bestID < 0 {
		return Idle{}
	}
	o := g.orderByID(bestID)
	stage := b.stage[bestID]
	station := Counter
	if o != nil && stage < len(o.Recipe.Stages) {
		station = o.Recipe.Stages[stage]
	}
	return Op{Order: bestID, Stage: stage, Station: station}
}

func claimed(claims map[int]ClaimFact, agent, order, stage int) bool {
	//detlint:allow maprange existence check; any order yields the same answer
	for a, c := range claims {
		if a != agent && c.Order == order && c.Stage == stage {
			return true
		}
	}
	return false
}

// corruptions: redo a believed-done stage, jump a stage ahead, grab a
// claimed op, or idle.
func (g *Game) corruptions(b belief, good core.Subgoal) []core.Subgoal {
	var out []core.Subgoal
	add := func(sg core.Subgoal) {
		if sg != nil && (good == nil || sg.ID() != good.ID()) {
			out = append(out, sg)
		}
	}
	for _, id := range world.SortedKeys(b.orders) {
		f := b.orders[id]
		stage := b.stage[id]
		if stage > 0 {
			add(Op{Order: id, Stage: stage - 1, Station: stationAt(g, id, stage-1)}) // redo
		}
		if stage+1 < f.Stages {
			add(Op{Order: id, Stage: stage + 1, Station: stationAt(g, id, stage+1)}) // skip ahead
		}
		if len(out) >= 2 {
			break
		}
	}
	for _, a := range world.SortedKeys(b.claims) {
		c := b.claims[a]
		add(Op{Order: c.Order, Stage: c.Stage, Station: stationAt(g, c.Order, c.Stage)})
		break
	}
	add(Idle{})
	return out
}

func stationAt(g *Game, orderID, stage int) Station {
	o := g.orderByID(orderID)
	if o == nil || stage < 0 || stage >= len(o.Recipe.Stages) {
		return Counter
	}
	return o.Recipe.Stages[stage]
}

// ProposeJoint implements core.CentralDomain: earliest-deadline-first
// assignment of distinct feasible ops, respecting station capacity.
func (g *Game) ProposeJoint(bel core.Belief) core.Proposal {
	b, _ := bel.Payload.(belief)
	good := &core.Joint{Assign: map[int]core.Subgoal{}}
	type cand struct {
		id, stage int
		deadline  int
	}
	var cands []cand
	for _, id := range world.SortedKeys(b.orders) {
		f := b.orders[id]
		stage := b.stage[id]
		if stage < f.Stages {
			cands = append(cands, cand{id: id, stage: stage, deadline: f.Deadline})
		}
	}
	// Stable insertion sort by deadline (tiny n); candidates enter in id
	// order, so deadline ties keep the lower id first deterministically.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].deadline < cands[j-1].deadline; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	slots := map[Station]int{}
	ci := 0
	for a := 0; a < g.agents; a++ {
		assigned := false
		for ci < len(cands) {
			c := cands[ci]
			ci++
			st := stationAt(g, c.id, c.stage)
			if slots[st] >= stationSlots[st] {
				continue
			}
			slots[st]++
			good.Assign[a] = Op{Order: c.id, Stage: c.stage, Station: st}
			assigned = true
			break
		}
		if !assigned {
			good.Assign[a] = Idle{}
		}
	}
	// Corruptions: pile everyone on the first op (station conflicts) or
	// idle the whole team.
	pile := &core.Joint{Assign: map[int]core.Subgoal{}}
	lazy := &core.Joint{Assign: map[int]core.Subgoal{}}
	var first core.Subgoal = Idle{}
	if len(cands) > 0 {
		first = Op{Order: cands[0].id, Stage: cands[0].stage, Station: stationAt(g, cands[0].id, cands[0].stage)}
	}
	for a := 0; a < g.agents; a++ {
		pile.Assign[a] = first
		lazy.Assign[a] = Idle{}
	}
	return core.Proposal{
		Good:        good,
		Corruptions: []core.Subgoal{pile, lazy},
		Complexity:  core.CentralizedComplexity(g.agents),
	}
}

// Execute implements core.Domain.
func (g *Game) Execute(agent int, sg core.Subgoal) execution.Result {
	switch op := sg.(type) {
	case Op:
		return g.execOp(op)
	case Idle, nil:
		return execution.Result{Achieved: true, Note: "idle"}
	default:
		return execution.Result{Note: "unknown subgoal"}
	}
}

func (g *Game) execOp(op Op) execution.Result {
	res := execution.Result{Effort: execution.Effort{Primitives: 2}} // walk + operate
	o := g.orderByID(op.Order)
	if o == nil {
		res.Note = "unknown order"
		return res
	}
	if o.Done() {
		res.Note = "order already complete"
		return res
	}
	if op.Stage != o.Stage {
		res.Note = "wrong stage"
		return res
	}
	station := o.Recipe.Stages[o.Stage]
	if station != op.Station {
		res.Note = "wrong station"
		return res
	}
	if g.occupied[station] >= stationSlots[station] {
		res.Note = "station busy"
		return res
	}
	g.occupied[station]++
	o.Stage++
	g.events = append(g.events, memory.Record{
		Step: g.step, Kind: memory.Observation, Key: fmt.Sprintf("prog:%d:%d", o.ID, o.Stage-1),
		Payload: ProgressFact{Order: o.ID, Stage: o.Stage - 1}, Tokens: progFactTokens,
	})
	if o.Done() {
		o.served = g.step
	}
	res.Achieved = true
	return res
}

// Tick implements core.Domain: release stations, deliver arrivals, clear
// the event buffer, advance the step.
func (g *Game) Tick() {
	g.step++
	g.occupied = map[Station]int{}
	g.prevEv = g.events
	g.events = nil
	var still []*Order
	for _, o := range g.pending {
		if o.Arrival <= g.step {
			g.orders = append(g.orders, o)
		} else {
			still = append(still, o)
		}
	}
	g.pending = still
}

// ClaimRecord implements core.Claimer: an op claims its (order, stage);
// idling clears the claim.
func (g *Game) ClaimRecord(agent int, sg core.Subgoal) (memory.Record, bool) {
	order, stage := -1, -1
	if op, ok := sg.(Op); ok {
		order, stage = op.Order, op.Stage
	}
	return memory.Record{
		Kind: memory.Action, Key: fmt.Sprintf("claim:%d", agent),
		Payload: ClaimFact{Agent: agent, Order: order, Stage: stage}, Tokens: 8,
	}, true
}

// CorrectionRecords implements core.Corrector: an op that failed at the
// station reveals the order's true progress (the agent can see the dish in
// front of it).
func (g *Game) CorrectionRecords(agent int, sg core.Subgoal, res execution.Result) []memory.Record {
	op, ok := sg.(Op)
	if !ok || res.Achieved {
		return nil
	}
	o := g.orderByID(op.Order)
	if o == nil {
		return nil
	}
	var recs []memory.Record
	for s := 0; s < o.Stage; s++ {
		recs = append(recs, memory.Record{
			Step: g.step, Kind: memory.Action, Key: fmt.Sprintf("prog:%d:%d", o.ID, s),
			Payload: ProgressFact{Order: o.ID, Stage: s}, Tokens: progFactTokens,
		})
	}
	return recs
}

var (
	_ core.Domain        = (*Game)(nil)
	_ core.CentralDomain = (*Game)(nil)
	_ core.Claimer       = (*Game)(nil)
	_ core.Corrector     = (*Game)(nil)
)
