package serve

import (
	"fmt"
	"time"

	"embench/internal/prompt"
	"embench/internal/rng"
)

// SharedPreambleTrace is the canonical cache-pressure workload: `streams`
// request streams of `steps` calls each, every prompt leading with one
// fleet-wide 700-token system+task preamble (the prize a budget-blind
// affinity router collapses on), then a 700-token per-stream persona (what
// an assigned replica keeps warm) and a growing history tail. Arrivals are
// light — a 6-minute step period with 20-second stagger and seeded jitter —
// so requests usually find several idle replicas and placement policy, not
// queueing, decides the spread. Pure function of its arguments.
//
// It is defined here, next to the cache it stresses, because it is shared:
// the fig11 cache-pressure experiment sweeps it and the serve-level
// routing tests pin the capacity-aware affinity behaviour on it — one
// generator, so the regression test and the figure cannot drift apart.
func SharedPreambleTrace(streams, steps int, seed uint64) []Request {
	jit := rng.New(seed).NewStream("serve/shared-preamble")
	var reqs []Request
	for s := 0; s < steps; s++ {
		for a := 0; a < streams; a++ {
			reqs = append(reqs, Request{
				Agent: fmt.Sprintf("a%d", a),
				Arrival: time.Duration(s)*6*time.Minute +
					time.Duration(a)*20*time.Second +
					time.Duration(jit.Range(0, 4000))*time.Millisecond,
				Prompt: prompt.New(
					prompt.Section{Name: "system", Tokens: 500},
					prompt.Section{Name: "task", Tokens: 200},
					prompt.Section{Name: fmt.Sprintf("persona-a%d", a), Tokens: 700},
					prompt.Section{Name: "hist", Tokens: 40 + 30*s, Droppable: true},
				),
				OutTokens: 60,
			})
		}
	}
	return reqs
}
