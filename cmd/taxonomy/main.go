// Command taxonomy prints the paper's Table I (the 42-system embodied-AI
// taxonomy) and Table II (the 14-workload benchmark suite).
package main

import (
	"fmt"

	"embench"
)

func main() {
	t1, err := embench.Experiment("table1", 1, 1)
	if err != nil {
		panic(err)
	}
	t2, err := embench.Experiment("table2", 1, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("Table I — embodied AI agent systems taxonomy")
	fmt.Print(t1)
	fmt.Println()
	fmt.Println("Table II — benchmarked workload suite")
	fmt.Print(t2)
}
