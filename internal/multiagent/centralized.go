package multiagent

import (
	"embench/internal/core"
	"embench/internal/llm"
	"embench/internal/modules/execution"
	"embench/internal/modules/planning"
	"embench/internal/rng"
	"embench/internal/simclock"
	"embench/internal/trace"
)

// RunCentralized drives the centralized multi-agent paradigm (Fig. 1d):
// body agents sense and act; one central planner holds the memory, runs a
// single joint planning call per step, and broadcasts instructions through
// the communication module. LLM work per step is constant in team size
// (latency scales only through tokens), which is why centralized systems
// stay cheap as teams grow while their success collapses under joint
// reasoning complexity (Fig. 7a/7d).
func RunCentralized(d core.CentralDomain, cfg core.AgentConfig, opt Options) Outcome {
	n := d.Agents()
	src := rng.New(opt.Seed)
	tr := trace.New()
	timeline := simclock.New()
	endpoint := opt.newEndpoint(&cfg)

	// Body agents carry sensing and execution only.
	bodyCfg := cfg
	bodyCfg.Comms = nil
	bodyCfg.Reflector = nil
	bodyCfg.Memory = core.MemoryConfig{Capacity: 0}
	set := newAgentSet(n, bodyCfg, src, tr)

	centralClock := simclock.New()
	central := core.NewAgent(core.CentralAgent, cfg, src, centralClock, tr)
	central.Store.AddAll(d.StaticRecords())
	var instructClient *llm.Client
	if cfg.Comms != nil {
		instructClient = llm.NewClient(*cfg.Comms, src.NewStream("central/instruct"), centralClock, tr)
		if cfg.Backend != nil {
			instructClient.SetBackend(cfg.Backend)
		}
	}

	for !d.Done() {
		step := d.Step()

		// Body sensing; local views stream to the central memory (cheap
		// telemetry, not LLM dialogue).
		set.beginPhase()
		var merged core.Observation
		for _, a := range set.agents {
			o := a.Sense(d, step)
			merged.Records = append(merged.Records, o.Records...)
			merged.Tokens += o.Tokens
			merged.Entities += o.Entities
		}
		set.endPhase(timeline, opt.Parallel)
		central.Store.AddAll(merged.Records)

		// One joint plan, then one instruction broadcast.
		centralMark := centralClock.Now()
		ret := central.Retrieve(step)
		pr := central.PlanJoint(d, step, ret, merged, nil)
		if instructClient != nil {
			instructClient.Complete(llm.Request{
				Agent: "central", Module: trace.Comms, Step: step, Kind: "instruct",
				Prompt: planning.Build(planning.Context{
					SystemTokens: cfg.SystemTokens, TaskTokens: cfg.TaskTokens / 2,
					ObsTokens: 40 * n,
				}),
				OutTokens: 30 + 12*n,
				Good:      true,
			})
		}
		timeline.Advance(centralClock.Now() - centralMark)

		// Body execution of the joint assignment.
		joint, _ := pr.Subgoal.(*core.Joint)
		anyFailed := false
		set.beginPhase()
		results := make([]execution.Result, n)
		for i, a := range set.agents {
			var sg core.Subgoal
			if joint != nil {
				sg = joint.Assign[i]
			}
			results[i] = a.Execute(d, step, core.PlanResult{Subgoal: sg, Proposal: pr.Proposal})
			if sg != nil && !results[i].Achieved {
				anyFailed = true
			}
		}
		set.endPhase(timeline, opt.Parallel)

		// Central reflection over the step's outcomes.
		centralMark = centralClock.Now()
		if joint != nil {
			central.Reflect(d, step, core.PlanResult{
				Subgoal: pr.Subgoal, Proposal: pr.Proposal, Corrupted: pr.Corrupted,
			}, execution.Result{Achieved: !anyFailed && !pr.Corrupted})
			if corr, ok := core.Domain(d).(core.Corrector); ok && cfg.Reflector != nil {
				for i := range set.agents {
					if sg := joint.Assign[i]; sg != nil && !results[i].Achieved {
						central.Store.AddAll(corr.CorrectionRecords(i, sg, results[i]))
					}
				}
			}
		}
		central.Remember(d, step, core.Observation{}, nil, pr, execution.Result{Achieved: !anyFailed})
		timeline.Advance(centralClock.Now() - centralMark)

		d.Tick()
	}
	return finish(d, tr, timeline, endpoint)
}
