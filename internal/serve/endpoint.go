package serve

import (
	"time"

	"embench/internal/llm"
	"embench/internal/metrics"
	"embench/internal/prompt"
)

// replica is one model instance's timeline position: when it frees, and the
// shape of its in-flight frontier batch (for continuous-batching joins).
type replica struct {
	freeAt     time.Duration
	batchStart time.Duration
	batchEnd   time.Duration
	batchN     int
	batchTok   float64 // effective (cache-discounted) prefill tokens
	batchOut   int     // longest generation in the batch
	// Stats already recorded for the in-flight batch's members, so joins
	// can retroactively restate them at the batch's final size (keeping
	// closed-loop accounting identical to Replay's, where every member
	// reports the whole batch's size and service time).
	recSeqs    int
	recService time.Duration
}

// Endpoint is one shared serving deployment. It is not safe for concurrent
// use; each simulated episode owns its own endpoint (the episode runner
// builds one per episode, which is what keeps -procs parallelism
// bit-identical to sequential runs).
type Endpoint struct {
	cfg      Config
	replicas []replica
	cache    *prefixCache
	stats    metrics.Serving
}

// New builds an endpoint from cfg (zero fields defaulted).
func New(cfg Config) *Endpoint {
	cfg = cfg.withDefaults()
	e := &Endpoint{
		cfg:      cfg,
		replicas: make([]replica, cfg.Replicas),
		cache:    newPrefixCache(cfg.CacheEntries),
	}
	e.stats.Replicas = cfg.Replicas
	return e
}

// Config reports the endpoint's effective (defaulted) configuration.
func (e *Endpoint) Config() Config { return e.cfg }

// Stats reports accumulated serving statistics.
func (e *Endpoint) Stats() metrics.Serving { return e.stats }

// Reset clears timeline, cache and statistics for reuse.
func (e *Endpoint) Reset() {
	for i := range e.replicas {
		e.replicas[i] = replica{}
	}
	e.cache = newPrefixCache(e.cfg.CacheEntries)
	e.stats = metrics.Serving{Replicas: e.cfg.Replicas}
}

// promptCost prices a prompt's prefill through the prefix cache: returns
// the effective token count (cache-hit tokens pay CachedPrefillFrac), the
// cached token count, and the raw total.
func (e *Endpoint) promptCost(p prompt.Prompt) (eff float64, cached, total int) {
	total = p.Tokens()
	cached = e.cache.match(p)
	e.cache.insert(p)
	eff = float64(total-cached) + float64(cached)*e.cfg.CachedPrefillFrac
	return eff, cached, total
}

// pick returns the least-loaded replica (earliest freeAt, lowest index on
// ties) — the router every multi-replica deployment runs.
func (e *Endpoint) pick() *replica {
	best := &e.replicas[0]
	for i := 1; i < len(e.replicas); i++ {
		if e.replicas[i].freeAt < best.freeAt {
			best = &e.replicas[i]
		}
	}
	return best
}

// Serve is the closed-loop entry point: one live request, submitted at the
// calling agent's virtual time, resolved immediately against the endpoint's
// current timeline. It implements llm.Backend.
//
// Admission is in submission order (the order episode code issues calls),
// which is deterministic; arrival timestamps still drive queueing delay and
// batching, so contention emerges whenever per-agent clocks overlap.
// Continuous batching appears as a join window: a request arriving within
// MaxWait of the frontier batch's start joins it, paying its own prefill
// and the incremental decode slowdown, without disturbing the already
// reported completions of earlier members.
func (e *Endpoint) Serve(c llm.Call) llm.Served {
	eff, cached, total := e.promptCost(c.Prompt)
	r := e.pick()

	// Join the in-flight frontier batch when the window allows.
	if e.cfg.MaxBatch > 1 && r.batchN > 0 && r.batchN < e.cfg.MaxBatch &&
		c.Arrival <= r.batchStart+e.cfg.MaxWait && r.freeAt > c.Arrival {
		r.batchN++
		r.batchTok += eff
		if c.OutTokens > r.batchOut {
			r.batchOut = c.OutTokens
		}
		end := r.batchStart + e.cfg.Profile.BatchServiceTime(r.batchN, r.batchTok, r.batchOut)
		if end < r.batchEnd {
			end = r.batchEnd
		}
		r.batchEnd, r.freeAt = end, end
		wait := time.Duration(0)
		if c.Arrival < r.batchStart {
			wait = r.batchStart - c.Arrival
		}
		// Restate the batch's stats at its new size: every member — the
		// already-reported ones included — rode a batch of batchN sequences
		// taking (end - start) each.
		e.stats.Requests++
		e.stats.QueueWait += wait
		perMember := end - r.batchStart
		e.stats.Service += time.Duration(r.batchN)*perMember - r.recService
		r.recService = time.Duration(r.batchN) * perMember
		e.stats.BatchedSeqs += r.batchN*r.batchN - r.recSeqs
		r.recSeqs = r.batchN * r.batchN
		e.stats.PrefillTokens += total
		e.stats.CachedTokens += cached
		return llm.Served{Latency: end - c.Arrival, QueueWait: wait, CachedTokens: cached}
	}

	// Start a new batch: queue behind the replica's frontier if busy.
	start := c.Arrival
	if r.freeAt > start {
		start = r.freeAt
	}
	wait := start - c.Arrival
	service := e.cfg.Profile.BatchServiceTime(1, eff, c.OutTokens)
	end := start + service
	*r = replica{
		freeAt: end, batchStart: start, batchEnd: end,
		batchN: 1, batchTok: eff, batchOut: c.OutTokens,
		recSeqs: 1, recService: service,
	}
	e.record(service, wait, 1, cached, total)
	return llm.Served{Latency: end - c.Arrival, QueueWait: wait, CachedTokens: cached}
}

// record folds one served request into the running statistics.
func (e *Endpoint) record(service, wait time.Duration, batchN, cached, total int) {
	e.stats.Requests++
	e.stats.QueueWait += wait
	e.stats.Service += service
	e.stats.BatchedSeqs += batchN
	e.stats.PrefillTokens += total
	e.stats.CachedTokens += cached
}
