package rng

import (
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := New(42).Stream("planner")
	b := New(42).Stream("planner")
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("same-name streams diverged at draw %d", i)
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	src := New(42)
	a := src.Stream("planner")
	b := src.Stream("comms")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different names look correlated: %d/64 equal draws", same)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1).Stream("x")
	b := New(2).Stream("x")
	diff := false
	for i := 0; i < 16; i++ {
		if a.Int63() != b.Int63() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSubNamespacing(t *testing.T) {
	root := New(7)
	e1 := root.Sub("episode-1").Stream("planner")
	e2 := root.Sub("episode-2").Stream("planner")
	if e1.Int63() == e2.Int63() && e1.Int63() == e2.Int63() {
		t.Fatal("sub-sources did not namespace streams")
	}
	// Sub is itself deterministic.
	x := root.Sub("episode-1").Stream("planner").Int63()
	y := New(7).Sub("episode-1").Stream("planner").Int63()
	if x != y {
		t.Fatal("Sub not deterministic across Source instances")
	}
}

func TestBernoulliBounds(t *testing.T) {
	st := New(9).NewStream("b")
	for i := 0; i < 100; i++ {
		if st.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !st.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	st := New(11).NewStream("rate")
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if st.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / float64(n)
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("Bernoulli(0.3) empirical rate = %.3f, want ≈0.30", rate)
	}
}

func TestRangeProperty(t *testing.T) {
	st := New(13).NewStream("range")
	f := func(a, b uint8) bool {
		lo, hi := float64(a), float64(a)+float64(b)+1
		v := st.Range(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJitterBounds(t *testing.T) {
	st := New(17).NewStream("jit")
	for i := 0; i < 1000; i++ {
		v := st.Jitter(100, 0.2)
		if v < 80 || v > 120 {
			t.Fatalf("Jitter out of bounds: %v", v)
		}
	}
}
