package serve

import (
	"embench/internal/metrics"
)

// ShardedFleet splits a fleet across K independent shards, each a full
// Fleet with its own Endpoint (replicas, queues, caches) and its own
// conservative merge. Sharding is the horizontal-scale move every serving
// stack makes once one deployment saturates: episodes on different shards
// never contend — or share cache — with each other, and each shard's merge
// only synchronizes its own episodes, so a shard of N/K episodes admits
// with an N/K-sized barrier instead of an N-sized one.
//
// Placement is deterministic round-robin: episode i lives on shard
// i % K (client index i / K within the shard). It is a pure function of
// (episode index, shard count), so a sharded fleet's results are
// byte-identical across reruns, and the K = 1 degenerate case is exactly
// a plain Fleet.
type ShardedFleet struct {
	shards []*Fleet
}

// NewShardedFleet builds `episodes` clients spread round-robin over
// `shards` independent endpoints, each built from cfg. shards < 1 is
// treated as 1; shards above the episode count are clamped so no empty
// endpoint is constructed.
func NewShardedFleet(cfg Config, episodes, shards int) *ShardedFleet {
	if shards < 1 {
		shards = 1
	}
	if episodes > 0 && shards > episodes {
		shards = episodes
	}
	sf := &ShardedFleet{shards: make([]*Fleet, shards)}
	for k := range sf.shards {
		// Round-robin placement gives shard k every episode i with
		// i % shards == k: that is ceil((episodes-k)/shards) clients.
		n := (episodes - k + shards - 1) / shards
		sf.shards[k] = NewFleet(cfg, n)
	}
	return sf
}

// Client returns episode i's backend handle on its shard.
func (sf *ShardedFleet) Client(i int) *FleetClient {
	k := i % len(sf.shards)
	return sf.shards[k].Client(i / len(sf.shards))
}

// Shards reports the shard count.
func (sf *ShardedFleet) Shards() int { return len(sf.shards) }

// Shard returns shard k's fleet (per-shard stats, tests).
func (sf *ShardedFleet) Shard(k int) *Fleet { return sf.shards[k] }

// Size reports the total number of attached episodes across shards.
func (sf *ShardedFleet) Size() int {
	n := 0
	for _, f := range sf.shards {
		n += f.Size()
	}
	return n
}

// Config reports the effective endpoint configuration (identical on every
// shard).
func (sf *ShardedFleet) Config() Config { return sf.shards[0].Config() }

// SetGate installs one shared activation gate on every shard: the bound is
// fleet-wide, because the point is to cap live episode stacks on the
// machine, not per shard.
func (sf *ShardedFleet) SetGate(g Gate) {
	for _, f := range sf.shards {
		f.SetGate(g)
	}
}

// Stats reports the serving totals merged across all shards.
func (sf *ShardedFleet) Stats() metrics.Serving {
	var out metrics.Serving
	for _, f := range sf.shards {
		out = out.Merge(f.Stats())
	}
	return out
}

// ShardStats reports each shard's own endpoint totals, in shard order.
func (sf *ShardedFleet) ShardStats() []metrics.Serving {
	out := make([]metrics.Serving, len(sf.shards))
	for k, f := range sf.shards {
		out[k] = f.Stats()
	}
	return out
}
