package bench

import (
	"fmt"
	"strings"
	"time"

	"embench/internal/metrics"
	"embench/internal/multiagent"
	"embench/internal/world"
)

// Fig7Row is one (system, difficulty, team size) sample of the
// scalability analysis (paper Fig. 7).
type Fig7Row struct {
	System      string
	Paradigm    string
	Difficulty  world.Difficulty
	Agents      int
	SuccessRate float64
	TaskLatency time.Duration
	LLMCalls    float64 // mean per episode
	Tokens      float64 // mean prompt tokens per episode
}

// fig7Systems: one centralized (MindAgent) and two decentralized (CoELA,
// COMBO) systems, as in the paper.
var fig7Systems = []string{"MindAgent", "CoELA", "COMBO"}

// Fig7Agents is the team-size axis.
var Fig7Agents = []int{2, 4, 6, 8, 10, 12}

// Fig7 sweeps team size across difficulty levels.
func Fig7(cfg Config) []Fig7Row {
	set := cfg.newBatchSet()
	var rows []Fig7Row
	var ids []int
	for _, name := range fig7Systems {
		w := mustGet(name)
		for _, diff := range world.Difficulties {
			for _, n := range Fig7Agents {
				ids = append(ids, set.add(w, diff, n, nil, multiagent.Options{}))
				rows = append(rows, Fig7Row{
					System: name, Paradigm: string(w.Paradigm), Difficulty: diff, Agents: n,
				})
			}
		}
	}
	set.run()
	for i := range rows {
		eps, _ := set.results(ids[i])
		s := metrics.Summarize(eps)
		rows[i].SuccessRate = s.SuccessRate
		rows[i].TaskLatency = s.MeanDuration
		rows[i].LLMCalls = s.MeanLLMCalls
		rows[i].Tokens = s.MeanPrompt
	}
	return rows
}

// Select filters rows for one system and difficulty, ordered by team size.
func Select(rows []Fig7Row, system string, diff world.Difficulty) []Fig7Row {
	var out []Fig7Row
	for _, n := range Fig7Agents {
		for _, r := range rows {
			if r.System == system && r.Difficulty == diff && r.Agents == n {
				out = append(out, r)
			}
		}
	}
	return out
}

// RenderFig7 formats the sweep.
func RenderFig7(rows []Fig7Row) string {
	var b strings.Builder
	b.WriteString("Fig. 7 — multi-agent scalability\n")
	fmt.Fprintf(&b, "%-10s %-13s %-8s %7s %9s %10s %10s %10s\n",
		"System", "Paradigm", "Task", "agents", "success", "latency", "LLM calls", "tokens")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-13s %-8s %7d %8.0f%% %9.1fm %10.0f %10.0f\n",
			r.System, r.Paradigm, r.Difficulty, r.Agents,
			100*r.SuccessRate, r.TaskLatency.Minutes(), r.LLMCalls, r.Tokens)
	}
	return b.String()
}
