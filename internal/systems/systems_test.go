package systems

import (
	"strings"
	"testing"

	"embench/internal/multiagent"
	"embench/internal/world"
)

func TestSuiteHasFourteenWorkloads(t *testing.T) {
	if len(Suite) != 14 || len(SuiteNames) != 14 {
		t.Fatalf("suite size = %d/%d, want 14", len(Suite), len(SuiteNames))
	}
	for _, name := range SuiteNames {
		if _, ok := Get(name); !ok {
			t.Fatalf("workload %q missing from registry", name)
		}
	}
}

func TestSuiteMatchesTableII(t *testing.T) {
	// Spot-check module compositions against the paper's Table II.
	cases := []struct {
		name                   string
		paradigm               Paradigm
		sense, comm, mem, refl bool
		planner                string
	}{
		{"EmbodiedGPT", SingleModular, true, false, false, false, "llama-7b-ft"},
		{"JARVIS-1", SingleModular, true, false, true, true, "gpt-4"},
		{"DaDu-E", SingleModular, true, false, true, true, "llama-8b-ft"},
		{"MP5", SingleModular, true, false, false, true, "gpt-4"},
		{"DEPS", SingleModular, true, false, false, true, "gpt-4"},
		{"MindAgent", Centralized, false, true, true, false, "gpt-4"},
		{"OLA", Centralized, false, true, true, true, "gpt-4"},
		{"COHERENT", Centralized, true, true, true, true, "gpt-4"},
		{"CMAS", Centralized, true, true, true, false, "gpt-4"},
		{"CoELA", Decentralized, true, true, true, false, "gpt-4"},
		{"COMBO", Decentralized, true, true, true, false, "llava-7b"},
		{"RoCo", Decentralized, true, true, true, true, "gpt-4"},
		{"DMAS", Decentralized, true, true, true, false, "gpt-4"},
		{"HMAS", Hybrid, true, true, true, true, "gpt-4"},
	}
	for _, c := range cases {
		w, ok := Get(c.name)
		if !ok {
			t.Fatalf("missing %s", c.name)
		}
		if w.Paradigm != c.paradigm {
			t.Errorf("%s paradigm = %s, want %s", c.name, w.Paradigm, c.paradigm)
		}
		if (w.Config.Sensing != nil) != c.sense {
			t.Errorf("%s sensing presence wrong", c.name)
		}
		if (w.Config.Comms != nil) != c.comm {
			t.Errorf("%s comms presence wrong", c.name)
		}
		if (w.Config.Memory.Capacity != 0) != c.mem {
			t.Errorf("%s memory presence wrong", c.name)
		}
		if (w.Config.Reflector != nil) != c.refl {
			t.Errorf("%s reflection presence wrong", c.name)
		}
		if w.Config.Planner.Name != c.planner {
			t.Errorf("%s planner = %s, want %s", c.name, w.Config.Planner.Name, c.planner)
		}
		if !w.Config.Execution {
			t.Errorf("%s must have an execution module", c.name)
		}
	}
}

func TestEveryWorkloadRunsEasy(t *testing.T) {
	for _, name := range SuiteNames {
		w := Suite[name]
		out := w.Run(world.Easy, 0, multiagent.Options{Seed: 1})
		if out.Episode.Steps == 0 {
			t.Errorf("%s: no steps executed", name)
		}
		if out.Episode.SimDuration <= 0 {
			t.Errorf("%s: no simulated time", name)
		}
		if out.Episode.LLMCalls == 0 {
			t.Errorf("%s: no LLM calls", name)
		}
	}
}

func TestSuiteSuccessRatesReasonableOnEasy(t *testing.T) {
	// Every workload should succeed on most easy seeds with its default
	// (GPT-4-grade) configuration.
	for _, name := range SuiteNames {
		w := Suite[name]
		ok := 0
		const n = 5
		for seed := uint64(0); seed < n; seed++ {
			if w.Run(world.Easy, 0, multiagent.Options{Seed: seed}).Episode.Success {
				ok++
			}
		}
		if ok < 3 {
			t.Errorf("%s easy success %d/%d, want ≥3", name, ok, n)
		}
	}
}

func TestTaxonomyShape(t *testing.T) {
	if len(Taxonomy) != 42 {
		t.Fatalf("taxonomy rows = %d, want 42 (Table I)", len(Taxonomy))
	}
	counts := map[Paradigm]int{}
	for _, e := range Taxonomy {
		counts[e.Paradigm]++
		if e.Paradigm != EndToEnd && !e.Plan {
			t.Errorf("%s: every modular system plans", e.Name)
		}
		if e.Paradigm == EndToEnd && e.ModelNote == "" {
			t.Errorf("%s: end-to-end entries need a model note", e.Name)
		}
		if e.Paradigm == Centralized || e.Paradigm == Decentralized {
			if !e.Comm {
				t.Errorf("%s: multi-agent systems communicate", e.Name)
			}
		}
	}
	if counts[SingleModular] != 19 || counts[EndToEnd] != 6 ||
		counts[Centralized] != 8 || counts[Decentralized] != 9 {
		t.Fatalf("paradigm counts = %+v, want 19/6/8/9", counts)
	}
}

func TestRenderTaxonomy(t *testing.T) {
	out := RenderTaxonomy()
	for _, name := range []string{"RT-2", "CoELA", "MindAgent", "VOYAGER"} {
		if !strings.Contains(out, name) {
			t.Errorf("rendered taxonomy missing %s", name)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 43 { // header + 42 rows
		t.Fatalf("rendered lines = %d, want 43", lines)
	}
}

func TestRenderSuite(t *testing.T) {
	out := RenderSuite()
	for _, name := range SuiteNames {
		if !strings.Contains(out, name) {
			t.Errorf("rendered suite missing %s", name)
		}
	}
	if !strings.Contains(out, "mask-rcnn") || !strings.Contains(out, "diffusion-wm") {
		t.Error("suite rendering should include sensing backends")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("NotASystem"); ok {
		t.Fatal("unknown workload should not resolve")
	}
}
