package llm

import (
	"time"

	"embench/internal/prompt"
	"embench/internal/trace"
)

// BatchDecodeSlowdown is the per-extra-sequence decode slowdown when
// batching: decoding n sequences together costs max-decode × (1 + s·(n-1)).
// Real serving stacks see near-linear throughput gains at small batch sizes;
// 0.10 keeps the model conservative. Exported because the shared-endpoint
// simulator (internal/serve) prices its continuous batches with the same
// model.
const BatchDecodeSlowdown = 0.10

// BatchServiceTime is the deterministic service time for a batch of n
// sequences with the given total prompt tokens and longest generation:
// one overhead, back-to-back prefill, joint decode under BatchDecodeSlowdown.
// promptTokens is float64 so callers can price cache-discounted prefill
// (fractional effective tokens). FixedLatency profiles ignore the token
// model, as in Latency.
func (p Profile) BatchServiceTime(n int, promptTokens float64, maxOut int) time.Duration {
	if p.FixedLatency > 0 {
		return p.FixedLatency
	}
	sec := p.Overhead.Seconds()
	if p.PrefillRate > 0 {
		sec += promptTokens / p.PrefillRate
	}
	if p.DecodeRate > 0 && n > 0 {
		slow := 1 + BatchDecodeSlowdown*float64(n-1)
		sec += float64(maxOut) / p.DecodeRate * slow
	}
	return time.Duration(sec * float64(time.Second))
}

// CompleteBatch aggregates several queries into one serving batch
// (paper Rec. 1: "aggregate multiple queries into a single batch").
// The batch pays one fixed overhead, prefills all prompts back-to-back and
// decodes the sequences together. Error draws remain independent per query.
// The virtual clock advances once, by the batch latency; per-request trace
// events carry an equal share so module breakdowns stay additive.
func (c *Client) CompleteBatch(reqs []Request) []Response {
	if len(reqs) == 0 {
		return nil
	}
	if len(reqs) == 1 {
		return []Response{c.Complete(reqs[0])}
	}
	resps := make([]Response, len(reqs))
	fittedPrompts := make([]prompt.Prompt, len(reqs))
	totalPrompt := 0
	maxOut := 0
	for i, req := range reqs {
		resps[i], fittedPrompts[i] = c.draw(req)
		totalPrompt += resps[i].PromptTokens
		if req.OutTokens > maxOut {
			maxOut = req.OutTokens
		}
	}
	lat := c.batchLatency(len(reqs), totalPrompt, maxOut)
	if c.profile.JitterFrac > 0 {
		lat = time.Duration(c.stream.Jitter(float64(lat), c.profile.JitterFrac))
	}
	if c.backend != nil {
		// Shared endpoint: the aggregated queries arrive together and the
		// endpoint's own continuous batcher coalesces them (join window),
		// replacing the client-side latency model with queue-aware serving.
		lat = 0
		arrival := c.now()
		for i := range reqs {
			s := c.backend.Serve(Call{
				Agent: reqs[i].Agent, Arrival: arrival,
				Prompt: fittedPrompts[i], PromptTokens: resps[i].PromptTokens,
				OutTokens: reqs[i].OutTokens,
			})
			if s.Latency > lat {
				lat = s.Latency
			}
		}
	}
	if c.clock != nil {
		c.clock.Advance(lat)
	}
	share := lat / time.Duration(len(reqs))
	for i := range resps {
		resps[i].Latency = share
		if c.tracer != nil {
			c.tracer.Record(trace.Event{
				Step:         reqs[i].Step,
				Agent:        reqs[i].Agent,
				Module:       reqs[i].Module,
				Kind:         reqs[i].Kind + "(batched)",
				Latency:      share,
				PromptTokens: resps[i].PromptTokens,
				OutputTokens: resps[i].OutputTokens,
				LLMCall:      true,
			})
		}
	}
	return resps
}

// CompleteBatchMulti is step-phase query aggregation across agents (paper
// Rec. 1 end to end): the same-phase queries of several agents — each with
// its own client, RNG stream and virtual clock — are collected into one
// explicit serving batch. reqs[i] is issued on clients[i]; all clients
// must target the same deployment (they share clients[0]'s backend and the
// batch is priced with clients[0]'s profile).
//
// RNG-stream alignment: for every request, the owning client's stream is
// consumed in exactly Complete's order — error draw, jitter draw,
// format-retry draws — so an aggregated run makes the same decisions,
// call for call, as a per-agent run of the same seed. Only the serving
// timeline differs, which is what lets fig9 isolate aggregation against
// join-window batching. On the direct (no-backend) path the jitter draw
// scales the member's batch latency, mirroring Complete; on the backend
// path it is discarded, exactly as Complete's backend path discards it.
//
// Serving: with a BatchBackend attached, the whole phase is submitted as
// one explicit batch (Endpoint.ServeBatch) and each member experiences its
// own completion latency; with a plain Backend the calls are submitted
// back-to-back (degrading to the join window); with no backend the batch
// is priced directly with BatchServiceTime. Format retries resubmit
// individually after the batch completes, exactly as Complete's retries
// do.
func CompleteBatchMulti(clients []*Client, reqs []Request) []Response {
	if len(clients) != len(reqs) {
		panic("llm: CompleteBatchMulti clients/reqs length mismatch")
	}
	n := len(reqs)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []Response{clients[0].Complete(reqs[0])}
	}

	resps := make([]Response, n)
	fitted := make([]prompt.Prompt, n)
	attempts := make([]int, n)
	jitterFactor := make([]float64, n)
	totalPrompt, maxOut := 0, 0
	for i, req := range reqs {
		c := clients[i]
		resps[i], fitted[i] = c.draw(req)
		// Same draw order as Complete: the jitter draw, then the
		// format-retry draws. With a backend attached the jitter factor is
		// discarded (the endpoint's timeline is the latency model, exactly
		// as on Complete's backend path); on the direct path it scales the
		// member's share of the batch latency, so aggregated and per-agent
		// runs stay comparable jitter-for-jitter.
		jitterFactor[i] = 1
		if c.profile.JitterFrac > 0 {
			jitterFactor[i] = c.stream.Jitter(1, c.profile.JitterFrac)
		}
		attempts[i] = c.retryDraws()
		totalPrompt += resps[i].PromptTokens
		if req.OutTokens > maxOut {
			maxOut = req.OutTokens
		}
	}

	// Serving latency per member. decs carries each member's decode-stage
	// share of its FINAL attempt (see Served.Decode) for the async
	// pipeline's overlap credit.
	lats := make([]time.Duration, n)
	decs := make([]time.Duration, n)
	backend := clients[0].backend
	switch {
	case backend != nil:
		calls := make([]Call, n)
		for i := range reqs {
			calls[i] = Call{
				Agent: reqs[i].Agent, Arrival: clients[i].now(),
				Prompt: fitted[i], PromptTokens: resps[i].PromptTokens,
				OutTokens: reqs[i].OutTokens,
			}
		}
		if bb, ok := backend.(BatchBackend); ok {
			for i, s := range bb.ServeBatch(calls) {
				lats[i], decs[i] = s.Latency, s.Decode
			}
		} else {
			for i := range calls {
				s := backend.Serve(calls[i])
				lats[i], decs[i] = s.Latency, s.Decode
			}
		}
		// Retries resubmit individually, after the failed batch attempt;
		// the last retry's decode share wins.
		for i := range reqs {
			for a := 1; a < attempts[i]; a++ {
				s := backend.Serve(Call{
					Agent: reqs[i].Agent, Arrival: clients[i].now() + lats[i],
					Prompt: fitted[i], PromptTokens: resps[i].PromptTokens,
					OutTokens: reqs[i].OutTokens,
				})
				lats[i] += s.Latency
				decs[i] = s.Decode
			}
		}
	default:
		lat := clients[0].batchLatency(n, totalPrompt, maxOut)
		dec0 := lat - clients[0].profile.BatchServiceTime(n, float64(totalPrompt), 0)
		if dec0 < 0 {
			dec0 = 0
		}
		for i := range lats {
			lats[i] = time.Duration(attempts[i]) * time.Duration(float64(lat)*jitterFactor[i])
			decs[i] = time.Duration(float64(dec0) * jitterFactor[i])
		}
	}

	for i := range resps {
		resps[i].Latency = lats[i]
		resps[i].Decode = decs[i]
		resps[i].OutputTokens = attempts[i] * reqs[i].OutTokens
		clients[i].chargeAs(reqs[i], Response{
			Latency:      lats[i],
			PromptTokens: resps[i].PromptTokens,
			OutputTokens: resps[i].OutputTokens,
		}, reqs[i].Kind+"(phase)")
	}
	return resps
}

// batchLatency is the deterministic serving time for a batch.
func (c *Client) batchLatency(n, totalPrompt, maxOut int) time.Duration {
	return c.profile.BatchServiceTime(n, float64(totalPrompt), maxOut)
}

// BatchSpeedup reports the latency ratio sequential/batched for n identical
// calls with the given token counts — the headline gain from Rec. 1.
func BatchSpeedup(p Profile, n, promptTok, outTok int) float64 {
	if n <= 0 {
		return 1
	}
	seq := time.Duration(n) * p.Latency(promptTok, outTok)
	c := Client{profile: p}
	bat := c.batchLatency(n, n*promptTok, outTok)
	if bat == 0 {
		return 1
	}
	return float64(seq) / float64(bat)
}
