// Package sensing models the perception backends of the workload suite
// (paper Table II): each backend charges per-frame compute latency and may
// miss entities, which propagates into stale beliefs downstream.
package sensing

import "time"

// Backend is a perception model's cost and reliability profile.
type Backend struct {
	Name      string
	Base      time.Duration // fixed per-frame inference cost
	PerEntity time.Duration // marginal cost per detected entity
	MissProb  float64       // chance an entity goes undetected in a frame
}

// Latency reports the simulated inference time for a frame containing the
// given number of entities.
func (b Backend) Latency(entities int) time.Duration {
	if entities < 0 {
		entities = 0
	}
	return b.Base + time.Duration(entities)*b.PerEntity
}

// Perception backends named in the paper's Table II, with latency profiles
// approximating an NVIDIA A6000 (local models) and detection reliabilities
// reflecting each model family's open-vocabulary robustness.
var (
	// ViT is EmbodiedGPT's vision-transformer encoder.
	ViT = Backend{Name: "vit", Base: 120 * time.Millisecond, PerEntity: 2 * time.Millisecond, MissProb: 0.03}
	// MineCLIP is the Minecraft-domain video-text encoder of JARVIS-1/MP5.
	MineCLIP = Backend{Name: "mineclip", Base: 100 * time.Millisecond, PerEntity: 2 * time.Millisecond, MissProb: 0.05}
	// MaskRCNN is CoELA's instance segmentation model.
	MaskRCNN = Backend{Name: "mask-rcnn", Base: 350 * time.Millisecond, PerEntity: 5 * time.Millisecond, MissProb: 0.06}
	// DINO is COHERENT's open-set detector.
	DINO = Backend{Name: "dino", Base: 250 * time.Millisecond, PerEntity: 4 * time.Millisecond, MissProb: 0.04}
	// ViLD is the image-to-text detector of CMAS/DMAS/HMAS.
	ViLD = Backend{Name: "vild", Base: 300 * time.Millisecond, PerEntity: 4 * time.Millisecond, MissProb: 0.05}
	// OWLViT is RoCo's open-vocabulary detector.
	OWLViT = Backend{Name: "owl-vit", Base: 300 * time.Millisecond, PerEntity: 4 * time.Millisecond, MissProb: 0.04}
	// LiDAR is DaDu-E's point-cloud pipeline (clustering + registration).
	LiDAR = Backend{Name: "lidar", Base: 200 * time.Millisecond, PerEntity: 3 * time.Millisecond, MissProb: 0.02}
	// Symbolic is DEPS's direct simulator-state reader: near-free, lossless.
	Symbolic = Backend{Name: "symbolic", Base: 5 * time.Millisecond, PerEntity: 0, MissProb: 0}
	// DiffusionWM is COMBO's diffusion world-model reconstruction of the
	// global state from egocentric views — by far the heaviest sensor.
	DiffusionWM = Backend{Name: "diffusion-wm", Base: 2500 * time.Millisecond, PerEntity: 10 * time.Millisecond, MissProb: 0.04}
)

// Backends indexes the predefined perception profiles by name.
var Backends = map[string]Backend{
	ViT.Name:         ViT,
	MineCLIP.Name:    MineCLIP,
	MaskRCNN.Name:    MaskRCNN,
	DINO.Name:        DINO,
	ViLD.Name:        ViLD,
	OWLViT.Name:      OWLViT,
	LiDAR.Name:       LiDAR,
	Symbolic.Name:    Symbolic,
	DiffusionWM.Name: DiffusionWM,
}
