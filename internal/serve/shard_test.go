package serve

import (
	"reflect"
	"testing"
	"time"

	"embench/internal/llm"
)

func shardTestConfig() Config {
	return Config{Profile: noJitter, Replicas: 2, MaxBatch: 4,
		MaxWait: time.Second, CacheEntries: 128}
}

// TestShardedFleetPlacementDeterministic: episode i lives on shard i % K,
// and a rerun of the same scripts is byte-identical.
func TestShardedFleetPlacementDeterministic(t *testing.T) {
	cfg := shardTestConfig()
	calls := scriptCalls(10, 4, 8*time.Second, 300*time.Millisecond)
	run := func() ([][]llm.Served, []int) {
		sf := NewShardedFleet(cfg, len(calls), 3)
		out := fleetScriptOn(sf.Client, calls, 2)
		sizes := make([]int, sf.Shards())
		for k := range sizes {
			sizes[k] = sf.Shard(k).Size()
		}
		return out, sizes
	}
	a, sizesA := run()
	if !reflect.DeepEqual(sizesA, []int{4, 3, 3}) {
		t.Fatalf("round-robin placement sizes = %v, want [4 3 3]", sizesA)
	}
	for i := 0; i < 5; i++ {
		b, _ := run()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("sharded fleet rerun %d diverged", i)
		}
	}
}

// TestShardedFleetOneShardEqualsFleet: K = 1 must be exactly a plain
// fleet — same merge, same results, same totals.
func TestShardedFleetOneShardEqualsFleet(t *testing.T) {
	cfg := shardTestConfig()
	calls := scriptCalls(5, 4, 8*time.Second, 300*time.Millisecond)
	plain := NewFleet(cfg, len(calls))
	sharded := NewShardedFleet(cfg, len(calls), 1)
	a := fleetScriptOn(plain.Client, calls, 0)
	b := fleetScriptOn(sharded.Client, calls, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("1-shard ShardedFleet diverged from plain Fleet")
	}
	if !reflect.DeepEqual(plain.Stats(), sharded.Stats()) {
		t.Fatalf("1-shard totals diverged: %+v vs %+v", plain.Stats(), sharded.Stats())
	}
}

// TestShardedFleetStatsRollup: the merged totals must equal the sum of the
// per-shard stats, and shards must be genuinely independent (each shard
// serves exactly its own episodes' requests).
func TestShardedFleetStatsRollup(t *testing.T) {
	cfg := shardTestConfig()
	const eps, shards = 9, 3
	calls := scriptCalls(eps, 4, 8*time.Second, 300*time.Millisecond)
	sf := NewShardedFleet(cfg, eps, shards)
	fleetScriptOn(sf.Client, calls, 0)

	per := sf.ShardStats()
	if len(per) != shards {
		t.Fatalf("ShardStats returned %d shards, want %d", len(per), shards)
	}
	var reqs int
	for k, s := range per {
		if want := 3 * 4; s.Requests != want {
			t.Fatalf("shard %d served %d requests, want %d", k, s.Requests, want)
		}
		reqs += s.Requests
	}
	total := sf.Stats()
	if reqs != total.Requests {
		t.Fatalf("per-shard requests sum %d != rollup %d", reqs, total.Requests)
	}
	if total.Requests != eps*4 {
		t.Fatalf("rollup served %d requests, want %d", total.Requests, eps*4)
	}
}

// TestShardedFleetClampsShards: more shards than episodes must clamp (no
// empty endpoints), and zero/negative shard counts mean one shard.
func TestShardedFleetClampsShards(t *testing.T) {
	if got := NewShardedFleet(shardTestConfig(), 3, 8).Shards(); got != 3 {
		t.Fatalf("8 shards over 3 episodes = %d shards, want 3", got)
	}
	if got := NewShardedFleet(shardTestConfig(), 3, 0).Shards(); got != 1 {
		t.Fatalf("0 shards = %d, want 1", got)
	}
	if got := NewShardedFleet(shardTestConfig(), 4, 2).Size(); got != 4 {
		t.Fatalf("sharded size = %d, want 4", got)
	}
}
