package analysis

import (
	"strconv"
	"strings"
)

// rawRandPackages are the import paths that expose unseeded/global or
// ad-hoc randomness.
var rawRandPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// RawRand flags imports of math/rand outside internal/rng. All simulation
// randomness flows through internal/rng's named seeded streams: two runs
// with one root seed draw identical sequences, and adding a consumer
// cannot perturb existing streams. A direct math/rand import bypasses
// that — worst case the global source, which is seeded from runtime
// entropy — so the import itself is the finding, before any call site
// exists.
var RawRand = &Analyzer{
	Name: "rawrand",
	Doc: "flags math/rand imports outside internal/rng; all randomness must come from " +
		"named seeded rng.Source streams",
	Run: runRawRand,
}

func runRawRand(pass *Pass) error {
	if pass.Path == "internal/rng" || strings.HasSuffix(pass.Path, "/internal/rng") {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !rawRandPackages[path] {
				continue
			}
			pass.Reportf(imp.Pos(),
				"import of %s outside internal/rng; draw from a named seeded stream (rng.Source.Stream) so seeds stay reproducible and streams independent",
				path)
		}
	}
	return nil
}
