// Package core defines the embodied-agent core: the Domain contract every
// environment implements, the agent configuration describing which of the
// six building blocks are present (paper Fig. 1a), and the per-agent
// plan–act pipeline of the modularized paradigm (Fig. 1b) plus the
// end-to-end paradigm (Fig. 1c). Multi-agent coordination layers on top in
// package multiagent.
package core

import (
	"embench/internal/modules/execution"
	"embench/internal/modules/memory"
)

// CentralAgent is the pseudo-agent index used by centralized planners: a
// belief built for CentralAgent spans every agent's shared knowledge.
const CentralAgent = -1

// Observation is what one agent perceives at the current step, already
// rendered to memory records. Entities sizes the sensing backend's
// inference cost; Tokens sizes the prompt section.
type Observation struct {
	Records  []memory.Record
	Entities int
	Tokens   int
}

// Belief is an agent's working model of the world, assembled by the domain
// from memory records. Staleness estimates the probability that
// goal-relevant parts of the belief no longer match reality — it feeds the
// LLM error channel.
type Belief struct {
	Payload   any
	Staleness float64
}

// Subgoal is a high-level decision: what the planning module emits and the
// execution module grounds into primitives.
type Subgoal interface {
	// ID identifies the decision for claim tracking, repeat detection and
	// failure records, e.g. "fetch:obj3".
	ID() string
	// Describe renders the decision for logs.
	Describe() string
}

// Proposal is the expert oracle's answer for a given belief: the decision a
// highly capable model would make, plausible corruptions a weaker or
// confused model might make instead, and the intrinsic reasoning
// complexity of the query (which grows with joint-action spaces).
type Proposal struct {
	Good        Subgoal
	Corruptions []Subgoal
	Complexity  float64
}

// Domain is the contract between environments and the agent runtime.
//
// The runtime drives it as: for each step, per agent — Observe, BuildBelief
// (over retrieved memory + fresh observation records), Propose, pass the
// proposal through the simulated LLM, Execute the resulting subgoal — then
// Tick once all agents acted.
type Domain interface {
	// Name identifies the environment ("gridhouse", "kitchen", ...).
	Name() string
	// Agents reports the number of embodied agents.
	Agents() int
	// MaxSteps is the episode step cap (the paper's Lmax).
	MaxSteps() int
	// Step reports the current step index, starting at 0.
	Step() int
	// Done reports whether the episode ended (success or cap).
	Done() bool
	// Success reports goal achievement.
	Success() bool
	// Progress reports fractional goal completion in [0,1].
	Progress() float64
	// Observe renders agent's current partial view.
	Observe(agent int) Observation
	// StaticRecords returns the a-priori knowledge every agent starts with
	// (map layout, station list). These are Static records for Rec. 5.
	StaticRecords() []memory.Record
	// BuildBelief folds records (memory window + current observation) into
	// a belief for the agent. agent may be CentralAgent.
	BuildBelief(agent int, recs []memory.Record) Belief
	// Propose computes the oracle decision for the belief.
	Propose(agent int, b Belief) Proposal
	// Execute grounds a subgoal into primitives against the true world.
	Execute(agent int, g Subgoal) execution.Result
	// Tick advances environment dynamics and the step counter.
	Tick()
}

// CentralDomain is implemented by domains that support the centralized
// paradigm (Fig. 1d): one planner assigns subgoals to every agent at once.
type CentralDomain interface {
	Domain
	// ProposeJoint computes a joint assignment for all agents from the
	// central belief. Good and Corruptions are *Joint values.
	ProposeJoint(b Belief) Proposal
}

// Joint is a centralized planner's joint decision: one subgoal per agent.
type Joint struct {
	Assign map[int]Subgoal
}

// ID concatenates the per-agent decisions in agent order.
func (j *Joint) ID() string {
	out := "joint"
	for i := 0; i < len(j.Assign); i++ {
		if g, ok := j.Assign[i]; ok && g != nil {
			out += "|" + g.ID()
		} else {
			out += "|idle"
		}
	}
	return out
}

// Describe renders the joint decision.
func (j *Joint) Describe() string { return j.ID() }

var _ Subgoal = (*Joint)(nil)
