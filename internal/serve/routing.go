package serve

import (
	"fmt"
	"time"
)

// RoutingPolicy selects which replica an admitted request (or launching
// batch) is placed on. Every policy is deterministic: scores are pure
// functions of the endpoint's virtual-time state and ties always break on
// the lowest replica index, so routing never depends on goroutine
// scheduling.
type RoutingPolicy string

const (
	// RouteLeastLoaded places the request on the replica that frees
	// earliest — the classic load balancer, blind to cache locality.
	RouteLeastLoaded RoutingPolicy = "least-loaded"
	// RouteCacheAffinity places the request on the replica whose prefix/KV
	// cache covers the most leading prompt tokens, accepting some queueing
	// to keep warm prefixes hot (sticky sessions, as serving stacks route
	// conversations). Load breaks ties.
	RouteCacheAffinity RoutingPolicy = "cache-affinity"
	// RouteShortestCompletion estimates, per replica, when the request
	// would actually finish — queueing behind the frontier plus service
	// time under that replica's cache discount — and picks the minimum.
	// It is the latency-aware blend of the other two.
	RouteShortestCompletion RoutingPolicy = "shortest-completion"
)

// ParseRouting converts a CLI/config string into a RoutingPolicy. The empty
// string selects the default (least-loaded). On error the returned policy
// is "" — NOT a usable fallback — so a caller that drops the error cannot
// silently run least-loaded where the user asked for something else.
func ParseRouting(s string) (RoutingPolicy, error) {
	switch RoutingPolicy(s) {
	case "", RouteLeastLoaded:
		return RouteLeastLoaded, nil
	case RouteCacheAffinity:
		return RouteCacheAffinity, nil
	case RouteShortestCompletion:
		return RouteShortestCompletion, nil
	}
	return "", fmt.Errorf("serve: unknown routing policy %q (%s|%s|%s)",
		s, RouteLeastLoaded, RouteCacheAffinity, RouteShortestCompletion)
}

// ParseIdentity converts a CLI/config string into a CacheIdentity. The
// empty string selects the default (shape). Like ParseRouting, the returned
// identity is "" on error.
func ParseIdentity(s string) (CacheIdentity, error) {
	switch CacheIdentity(s) {
	case "", IdentityShape:
		return IdentityShape, nil
	case IdentityContent:
		return IdentityContent, nil
	}
	return "", fmt.Errorf("serve: unknown cache identity %q (%s|%s)",
		s, IdentityShape, IdentityContent)
}

// route picks the replica for a request under the endpoint's routing
// policy. The memoized prompt key drives cache-aware policies (hashed once
// per request, probed against every replica); arrival anchors completion
// estimates.
func (e *Endpoint) route(arrival time.Duration, k promptKey, outTokens int) *replica {
	switch e.cfg.Routing {
	case RouteCacheAffinity:
		return e.routeCacheAffinity(arrival, k)
	case RouteShortestCompletion:
		return e.routeShortestCompletion(arrival, k, outTokens)
	default:
		return e.routeLeastLoaded(arrival)
	}
}

// routeLeastLoaded returns the replica with the earliest freeAt, lowest
// index on ties — the router every multi-replica deployment runs. Like
// every routing loop, it scans only the active replicas (replicas[:active]
// — the full set unless autoscaling has parked some), and under fault
// injection only the LIVE ones — a crashed replica takes no traffic until
// its repair window ends (fxDown), unless every candidate is down, in which
// case the earliest restart wins (the fallback every routing loop shares).
func (e *Endpoint) routeLeastLoaded(t time.Duration) *replica {
	act := e.replicas[:e.active]
	var best *replica
	for i := range act {
		if e.fxDown(i, t) {
			continue
		}
		if best == nil || act[i].freeAt < best.freeAt {
			best = &act[i]
		}
	}
	if best == nil {
		best = &act[0]
		for i := 1; i < len(act); i++ {
			if act[i].freeAt < best.freeAt {
				best = &act[i]
			}
		}
	}
	return best
}

// affinityScore is the cache-aware placement score of one replica: warm
// tokens gained minus warm tokens an over-budget insertion would evict
// (prefixCache.pressure — zero without a token budget, so entry-count
// deployments keep the seed's pure-affinity behaviour). Charging the
// capacity side is what stops a shared global preamble from pulling every
// prompt onto the one replica that served it first: once that replica's
// cache is full of warm state, the eviction penalty makes a colder,
// emptier replica score higher and the preamble spreads.
func affinityScore(r *replica, k promptKey) (score, hit int) {
	hit = r.cache.matchKey(k)
	return hit - r.cache.pressure(k, hit), hit
}

// routeCacheAffinity returns the replica with the best capacity-adjusted
// prefix coverage of the keyed prompt; ties fall back to least-loaded, then
// lowest index.
func (e *Endpoint) routeCacheAffinity(t time.Duration, k promptKey) *replica {
	act := e.replicas[:e.active]
	var best *replica
	bestScore := 0
	for i := range act {
		if e.fxDown(i, t) {
			continue
		}
		r := &act[i]
		score, _ := affinityScore(r, k)
		if best == nil || score > bestScore || (score == bestScore && r.freeAt < best.freeAt) {
			best, bestScore = r, score
		}
	}
	if best == nil {
		return e.routeLeastLoaded(t)
	}
	return best
}

// routeShortestCompletion returns the replica minimizing the estimated
// completion time of the request: start (arrival or the replica freeing,
// whichever is later) plus single-sequence service under that replica's
// cache discount. The estimate ignores join-window coalescing — like real
// routers, it prices the request as if it ran alone.
func (e *Endpoint) routeShortestCompletion(arrival time.Duration, k promptKey, outTokens int) *replica {
	act := e.replicas[:e.active]
	var best *replica
	var bestDone time.Duration
	for i := range act {
		if e.fxDown(i, arrival) {
			continue
		}
		r := &act[i]
		if done := e.estimateCompletion(r, arrival, k, outTokens); best == nil || done < bestDone {
			best, bestDone = r, done
		}
	}
	if best == nil {
		return e.routeLeastLoaded(arrival)
	}
	return best
}

// estimateCompletion prices one request on one replica without mutating
// cache or timeline state. Under a token budget it also charges the
// capacity-pressure penalty: warm tokens the insertion would evict will
// have to be re-prefilled by their owners later, so that deferred cost —
// the cache discount those tokens lose — is added to the effective prefill
// now. Without a budget the penalty is zero and the estimate is the seed's.
func (e *Endpoint) estimateCompletion(r *replica, arrival time.Duration, k promptKey, outTokens int) time.Duration {
	start := arrival
	if r.freeAt > start {
		start = r.freeAt
	}
	cached := r.cache.matchKey(k)
	eff := e.discountedEff(cached, k.total)
	eff += float64(r.cache.pressure(k, cached)) * (1 - e.cfg.CachedPrefillFrac)
	return start + e.cfg.Profile.BatchServiceTime(1, eff, outTokens)
}

// batchPressure is the capacity-pressure penalty for placing a whole
// explicit batch on one replica: the warm tokens displaced by inserting
// every member's chain (shared uncached prefixes counted once — see
// prefixCache.batchGrowth). Zero without a token budget.
func (e *Endpoint) batchPressure(r *replica, keys []promptKey) int {
	if r.cache == nil || r.cache.capTokens <= 0 {
		return 0
	}
	if e.seen == nil {
		e.seen = make(map[uint64]bool, 64)
	}
	return r.cache.pressureGrowth(r.cache.batchGrowth(keys, e.seen))
}

// routeBatch places an explicitly aggregated batch (ServeBatch). The base
// score is the seed's — the head member's key stands in for the batch,
// whose members share their leading prompt structure by construction —
// but under a token budget the capacity penalty prices the WHOLE batch's
// insertion footprint: a 16-member step-phase batch plants 16 persona
// chains, and charging only one member's growth would let aggregated
// traffic pile onto the warm replica that single-call routing has learned
// to spread (without a budget both terms vanish and this is exactly
// route(arrival, keys[0], outTokens)).
func (e *Endpoint) routeBatch(arrival time.Duration, keys []promptKey, outTokens int) *replica {
	act := e.replicas[:e.active]
	switch e.cfg.Routing {
	case RouteCacheAffinity:
		var best *replica
		bestScore := 0
		for i := range act {
			if e.fxDown(i, arrival) {
				continue
			}
			r := &act[i]
			score := r.cache.matchKey(keys[0]) - e.batchPressure(r, keys)
			if best == nil || score > bestScore || (score == bestScore && r.freeAt < best.freeAt) {
				best, bestScore = r, score
			}
		}
		if best == nil {
			return e.routeLeastLoaded(arrival)
		}
		return best
	case RouteShortestCompletion:
		var best *replica
		var bestDone time.Duration
		for i := range act {
			if e.fxDown(i, arrival) {
				continue
			}
			r := &act[i]
			if done := e.estimateBatchCompletion(r, arrival, keys, outTokens); best == nil || done < bestDone {
				best, bestDone = r, done
			}
		}
		if best == nil {
			return e.routeLeastLoaded(arrival)
		}
		return best
	default:
		return e.routeLeastLoaded(arrival)
	}
}

// estimateBatchCompletion is estimateCompletion with the batch-wide
// capacity penalty in place of the single-prompt one.
func (e *Endpoint) estimateBatchCompletion(r *replica, arrival time.Duration, keys []promptKey, outTokens int) time.Duration {
	start := arrival
	if r.freeAt > start {
		start = r.freeAt
	}
	eff := e.discountedEff(r.cache.matchKey(keys[0]), keys[0].total)
	eff += float64(e.batchPressure(r, keys)) * (1 - e.cfg.CachedPrefillFrac)
	return start + e.cfg.Profile.BatchServiceTime(1, eff, outTokens)
}

// routeIdle picks, among replicas idle at virtual time now, the launch
// target for a batch whose head request carries the keyed prompt — the
// open-loop (Replay) flavor of routing, where launches only ever happen on
// idle replicas. Returns nil when no replica is idle.
func (e *Endpoint) routeIdle(now time.Duration, k promptKey) *replica {
	var best *replica
	bestScore := 0
	act := e.replicas[:e.active]
	for i := range act {
		r := &act[i]
		if r.freeAt > now {
			continue
		}
		switch e.cfg.Routing {
		case RouteCacheAffinity, RouteShortestCompletion:
			// Among idle replicas, completion differs only through the
			// cache discount and the capacity penalty, so both cache-aware
			// policies reduce to the best capacity-adjusted prefix match —
			// with the same earliest-freeAt tie-break as closed-loop
			// routeCacheAffinity, so open and closed loop route identically
			// on identical state.
			score, _ := affinityScore(r, k)
			if best == nil || score > bestScore ||
				(score == bestScore && r.freeAt < best.freeAt) {
				best, bestScore = r, score
			}
		default:
			if best == nil || r.freeAt < best.freeAt {
				best = r
			}
		}
	}
	return best
}
