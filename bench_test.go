package embench

import (
	"testing"

	"embench/internal/bench"
	"embench/internal/llm"
	"embench/internal/multiagent"
	"embench/internal/systems"
	"embench/internal/trace"
	"embench/internal/world"
)

// One testing.B benchmark per paper table/figure. Each runs the real
// experiment at a reduced episode count and reports the headline simulated
// quantity as a custom metric, so `go test -bench=.` both exercises and
// summarizes the reproduction.

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(systems.RenderTaxonomy()) == 0 {
			b.Fatal("empty taxonomy")
		}
	}
	b.ReportMetric(float64(len(systems.Taxonomy)), "systems")
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(systems.RenderSuite()) == 0 {
			b.Fatal("empty suite table")
		}
	}
	b.ReportMetric(float64(len(systems.Suite)), "workloads")
}

func BenchmarkFig2LatencyBreakdown(b *testing.B) {
	var rows []bench.Fig2Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig2(bench.Config{Episodes: 1, Seed: uint64(i) + 1})
	}
	b.ReportMetric(100*bench.MeanLLMShare(rows), "llm-share-%")
	b.ReportMetric(100*bench.MeanModuleShare(rows, trace.Reflection), "refl-share-%")
}

func BenchmarkFig3ModuleSensitivity(b *testing.B) {
	var rows []bench.Fig3Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig3(bench.Config{Episodes: 1, Seed: uint64(i) + 1})
	}
	memRatio, _ := bench.AblationImpact(rows, bench.NoMem)
	reflRatio, _ := bench.AblationImpact(rows, bench.NoRefl)
	b.ReportMetric(memRatio, "noMem-steps-x")
	b.ReportMetric(reflRatio, "noRefl-steps-x")
}

func BenchmarkFig4LocalModel(b *testing.B) {
	var rows []bench.Fig4Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig4(bench.Config{Episodes: 1, Seed: uint64(i) + 1})
	}
	var g, l float64
	for _, r := range rows {
		g += r.GPT4Success
		l += r.LlamaSuccess
	}
	b.ReportMetric(100*g/float64(len(rows)), "gpt4-success-%")
	b.ReportMetric(100*l/float64(len(rows)), "llama-success-%")
}

func BenchmarkFig5MemoryCapacity(b *testing.B) {
	var rows []bench.Fig5Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig5(bench.Config{Episodes: 1, Seed: uint64(i) + 1})
	}
	b.ReportMetric(float64(len(rows)), "sweep-points")
}

func BenchmarkFig6TokenGrowth(b *testing.B) {
	var series []bench.Fig6Series
	for i := 0; i < b.N; i++ {
		series = bench.Fig6(bench.Config{Seed: uint64(i) + 1})
	}
	peak := 0
	for _, s := range series {
		if p := s.PeakTokens(); p > peak {
			peak = p
		}
	}
	b.ReportMetric(float64(peak), "peak-prompt-tokens")
}

func BenchmarkFig7Scalability(b *testing.B) {
	var rows []bench.Fig7Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig7(bench.Config{Episodes: 1, Seed: uint64(i) + 1})
	}
	ma := bench.Select(rows, "MindAgent", world.Hard)
	co := bench.Select(rows, "CoELA", world.Hard)
	if len(ma) > 0 && len(co) > 0 {
		b.ReportMetric(float64(co[len(co)-1].TaskLatency)/float64(co[0].TaskLatency), "decent-latency-x")
		b.ReportMetric(float64(ma[len(ma)-1].TaskLatency)/float64(ma[0].TaskLatency), "central-latency-x")
	}
}

func BenchmarkOptimizations(b *testing.B) {
	var rows []bench.OptRow
	for i := 0; i < b.N; i++ {
		rows = bench.Optimizations(bench.Config{Episodes: 1, Seed: uint64(i) + 1})
	}
	for _, r := range rows {
		if r.Name == "rec8 plan-then-comm" {
			b.ReportMetric(r.Speedup(), "rec8-speedup-x")
		}
	}
}

func BenchmarkMessageEfficiency(b *testing.B) {
	// Sec. V-D: fraction of generated messages that carried novel content.
	var rate float64
	for i := 0; i < b.N; i++ {
		w, _ := systems.Get("CoELA")
		out := w.Run(world.Medium, 0, multiagent.Options{Seed: uint64(i) + 1})
		rate = out.Episode.Messages.UsefulRate()
	}
	b.ReportMetric(100*rate, "useful-msg-%")
}

func BenchmarkBatchingSpeedup(b *testing.B) {
	// Rec. 1: serving-level batching gains, straight from the model.
	var s float64
	for i := 0; i < b.N; i++ {
		s = llm.BatchSpeedup(llm.GPT4, 4, 1200, 120)
	}
	b.ReportMetric(s, "batch4-speedup-x")
}
