// Package systems defines the paper's fourteen-workload suite (Table II):
// each workload wires an environment, a module composition and a paradigm
// runner into one reproducible configuration, and the taxonomy registry
// regenerates Table I.
package systems

import (
	"fmt"
	"sort"

	"embench/internal/core"
	"embench/internal/env/boxworld"
	"embench/internal/env/craftworld"
	"embench/internal/env/gridhouse"
	"embench/internal/env/kitchen"
	"embench/internal/env/kitchenctl"
	"embench/internal/env/tabletop"
	"embench/internal/llm"
	"embench/internal/modules/sensing"
	"embench/internal/multiagent"
	"embench/internal/rng"
	"embench/internal/world"
)

// Paradigm labels a workload's coordination structure (paper Sec. II).
type Paradigm string

// The four paradigms plus HMAS's hybrid.
const (
	SingleModular Paradigm = "single-modular"
	EndToEnd      Paradigm = "end-to-end"
	Centralized   Paradigm = "centralized"
	Decentralized Paradigm = "decentralized"
	Hybrid        Paradigm = "hybrid"
)

// Workload is one benchmarkable system configuration.
type Workload struct {
	Name          string
	Paradigm      Paradigm
	EnvName       string
	DefaultAgents int
	Config        core.AgentConfig
	// Rounds overrides the decentralized dialogue-round policy (HMAS's
	// central priming reduces rounds to one); nil keeps the default.
	Rounds func(agents int) int
	// NewDomain builds a task instance.
	NewDomain func(agents int, diff world.Difficulty, src *rng.Source) core.Domain
}

// Run executes one episode of the workload.
func (w Workload) Run(diff world.Difficulty, agents int, opt multiagent.Options) multiagent.Outcome {
	if agents <= 0 {
		agents = w.DefaultAgents
	}
	if w.Rounds != nil && opt.Rounds == nil {
		opt.Rounds = w.Rounds
	}
	d := w.NewDomain(agents, diff, rng.New(opt.Seed))
	switch w.Paradigm {
	case SingleModular:
		return multiagent.RunSingle(d, w.Config, opt)
	case EndToEnd:
		return multiagent.RunEndToEnd(d, w.Config, opt)
	case Centralized:
		cd, ok := d.(core.CentralDomain)
		if !ok {
			panic(fmt.Sprintf("systems: %s environment %s lacks a central planner", w.Name, w.EnvName))
		}
		return multiagent.RunCentralized(cd, w.Config, opt)
	case Decentralized, Hybrid:
		return multiagent.RunDecentralized(d, w.Config, opt)
	}
	panic("systems: unknown paradigm " + string(w.Paradigm))
}

// profile helpers: the registry stores value copies, so taking addresses
// of fresh variables keeps configs independent.
func ref(p llm.Profile) *llm.Profile          { q := p; return &q }
func sref(b sensing.Backend) *sensing.Backend { c := b; return &c }

// defaultMemory is the suite's shipped memory window (steps); Fig. 5
// sweeps around it.
const defaultMemory = 32

// suite builds the fourteen workloads of Table II.
func suite() map[string]Workload {
	ws := []Workload{
		{
			Name: "EmbodiedGPT", Paradigm: SingleModular, EnvName: "kitchenctl", DefaultAgents: 1,
			Config: core.AgentConfig{
				Sensing: sref(sensing.ViT), Planner: llm.Llama7B, Execution: true,
				// Embodied chain-of-thought planning generates long.
				PlanOutTokens: 320,
			},
			NewDomain: func(agents int, diff world.Difficulty, src *rng.Source) core.Domain {
				return kitchenctl.New(kitchenctl.Config{Difficulty: diff}, src)
			},
		},
		{
			Name: "JARVIS-1", Paradigm: SingleModular, EnvName: "craftworld", DefaultAgents: 1,
			Config: core.AgentConfig{
				Sensing: sref(sensing.MineCLIP), Planner: llm.GPT4,
				Memory:    core.MemoryConfig{Capacity: defaultMemory},
				Reflector: ref(llm.Llama13B), Execution: true,
			},
			NewDomain: func(agents int, diff world.Difficulty, src *rng.Source) core.Domain {
				return craftworld.New(craftworld.Config{Difficulty: diff}, src)
			},
		},
		{
			Name: "DaDu-E", Paradigm: SingleModular, EnvName: "gridhouse", DefaultAgents: 1,
			Config: core.AgentConfig{
				Sensing: sref(sensing.LiDAR), Planner: llm.Llama8B,
				Memory:    core.MemoryConfig{Capacity: defaultMemory},
				Reflector: ref(llm.LLaVA8B), Execution: true,
			},
			NewDomain: func(agents int, diff world.Difficulty, src *rng.Source) core.Domain {
				return gridhouse.New(gridhouse.Config{Agents: 1, Difficulty: diff, HeavyGrasp: true}, src)
			},
		},
		{
			Name: "MP5", Paradigm: SingleModular, EnvName: "craftworld", DefaultAgents: 1,
			Config: core.AgentConfig{
				Sensing: sref(sensing.MineCLIP), Planner: llm.GPT4,
				Reflector: ref(llm.GPT4), Execution: true,
			},
			NewDomain: func(agents int, diff world.Difficulty, src *rng.Source) core.Domain {
				return craftworld.New(craftworld.Config{Difficulty: diff}, src)
			},
		},
		{
			Name: "DEPS", Paradigm: SingleModular, EnvName: "craftworld", DefaultAgents: 1,
			Config: core.AgentConfig{
				Sensing: sref(sensing.Symbolic), Planner: llm.GPT4,
				Reflector: ref(llm.CLIPScorer), Execution: true,
			},
			NewDomain: func(agents int, diff world.Difficulty, src *rng.Source) core.Domain {
				return craftworld.New(craftworld.Config{Difficulty: diff}, src)
			},
		},
		{
			Name: "MindAgent", Paradigm: Centralized, EnvName: "kitchen", DefaultAgents: 2,
			Config: core.AgentConfig{
				Planner: llm.GPT4, Comms: ref(llm.GPT4),
				Memory: core.MemoryConfig{Capacity: defaultMemory}, Execution: true,
			},
			NewDomain: func(agents int, diff world.Difficulty, src *rng.Source) core.Domain {
				return kitchen.New(kitchen.Config{Agents: agents, Difficulty: diff}, src)
			},
		},
		{
			Name: "OLA", Paradigm: Centralized, EnvName: "gridhouse", DefaultAgents: 2,
			Config: core.AgentConfig{
				Planner: llm.GPT4, Comms: ref(llm.GPT4),
				Memory:    core.MemoryConfig{Capacity: defaultMemory},
				Reflector: ref(llm.GPT4), Execution: true,
			},
			NewDomain: func(agents int, diff world.Difficulty, src *rng.Source) core.Domain {
				return gridhouse.New(gridhouse.Config{Agents: agents, Difficulty: diff}, src)
			},
		},
		{
			Name: "COHERENT", Paradigm: Centralized, EnvName: "tabletop", DefaultAgents: 3,
			Config: core.AgentConfig{
				Sensing: sref(sensing.DINO), Planner: llm.GPT4, Comms: ref(llm.GPT4),
				Memory:    core.MemoryConfig{Capacity: defaultMemory},
				Reflector: ref(llm.GPT4), Execution: true,
			},
			NewDomain: func(agents int, diff world.Difficulty, src *rng.Source) core.Domain {
				// Heterogeneous robots: a long-reach gantry, standard arms,
				// and a short-reach quadruped-mounted gripper; mixed-platform
				// motion planning costs ~2.5 configuration checks per sample.
				reaches := make([]float64, agents)
				for i := range reaches {
					switch i % 3 {
					case 0:
						reaches[i] = 0.46
					case 1:
						reaches[i] = 0.38
					default:
						reaches[i] = 0.32
					}
				}
				return tabletop.New(tabletop.Config{
					Agents: agents, Difficulty: diff, Reaches: reaches, PlanCost: 2.5,
				}, src)
			},
		},
		{
			Name: "CMAS", Paradigm: Centralized, EnvName: "boxworld", DefaultAgents: 2,
			Config: core.AgentConfig{
				Sensing: sref(sensing.ViLD), Planner: llm.GPT4, Comms: ref(llm.GPT4),
				Memory: core.MemoryConfig{Capacity: defaultMemory}, Execution: true,
			},
			NewDomain: func(agents int, diff world.Difficulty, src *rng.Source) core.Domain {
				return boxworld.New(boxworld.Config{Agents: agents, Difficulty: diff}, src)
			},
		},
		{
			Name: "CoELA", Paradigm: Decentralized, EnvName: "gridhouse", DefaultAgents: 2,
			Config: core.AgentConfig{
				Sensing: sref(sensing.MaskRCNN), Planner: llm.GPT4, Comms: ref(llm.GPT4),
				Memory:    core.MemoryConfig{Capacity: defaultMemory},
				Execution: true, ActSelect: true,
			},
			NewDomain: func(agents int, diff world.Difficulty, src *rng.Source) core.Domain {
				return gridhouse.New(gridhouse.Config{Agents: agents, Difficulty: diff}, src)
			},
		},
		{
			Name: "COMBO", Paradigm: Decentralized, EnvName: "kitchen", DefaultAgents: 2,
			Config: core.AgentConfig{
				Sensing: sref(sensing.DiffusionWM), Planner: llm.LLaVA7B, Comms: ref(llm.LLaVA7B),
				Memory: core.MemoryConfig{Capacity: defaultMemory}, Execution: true,
			},
			NewDomain: func(agents int, diff world.Difficulty, src *rng.Source) core.Domain {
				return kitchen.New(kitchen.Config{Agents: agents, Difficulty: diff}, src)
			},
		},
		{
			Name: "RoCo", Paradigm: Decentralized, EnvName: "tabletop", DefaultAgents: 2,
			Config: core.AgentConfig{
				Sensing: sref(sensing.OWLViT), Planner: llm.GPT4, Comms: ref(llm.GPT4),
				Memory:    core.MemoryConfig{Capacity: defaultMemory},
				Reflector: ref(llm.GPT4), Execution: true,
			},
			NewDomain: func(agents int, diff world.Difficulty, src *rng.Source) core.Domain {
				// 7-DOF manipulators: each workspace sample stands for ~6
				// configuration-space collision checks.
				return tabletop.New(tabletop.Config{Agents: agents, Difficulty: diff, PlanCost: 6}, src)
			},
		},
		{
			Name: "DMAS", Paradigm: Decentralized, EnvName: "boxworld", DefaultAgents: 2,
			Config: core.AgentConfig{
				Sensing: sref(sensing.ViLD), Planner: llm.GPT4, Comms: ref(llm.GPT4),
				Memory: core.MemoryConfig{Capacity: defaultMemory}, Execution: true,
			},
			NewDomain: func(agents int, diff world.Difficulty, src *rng.Source) core.Domain {
				return boxworld.New(boxworld.Config{Agents: agents, Difficulty: diff}, src)
			},
		},
		{
			Name: "HMAS", Paradigm: Hybrid, EnvName: "boxworld", DefaultAgents: 2,
			Config: core.AgentConfig{
				Sensing: sref(sensing.ViLD), Planner: llm.GPT4, Comms: ref(llm.GPT4),
				Memory:    core.MemoryConfig{Capacity: defaultMemory},
				Reflector: ref(llm.GPT4), Execution: true,
			},
			// HMAS primes dialogue with an initial central plan, so agents
			// need a single feedback round regardless of team size.
			Rounds: func(agents int) int {
				if agents <= 1 {
					return 0
				}
				return 1
			},
			NewDomain: func(agents int, diff world.Difficulty, src *rng.Source) core.Domain {
				return boxworld.New(boxworld.Config{Agents: agents, Difficulty: diff}, src)
			},
		},
	}
	out := make(map[string]Workload, len(ws))
	for _, w := range ws {
		out[w.Name] = w
	}
	return out
}

// Suite is the Table II workload registry.
var Suite = suite()

// SuiteNames lists the fourteen workloads in the paper's presentation
// order.
var SuiteNames = []string{
	"EmbodiedGPT", "JARVIS-1", "DaDu-E", "MP5", "DEPS",
	"MindAgent", "OLA", "COHERENT", "CMAS",
	"CoELA", "COMBO", "RoCo", "DMAS", "HMAS",
}

// Get looks up a workload by name (case-sensitive, as printed in the
// paper).
func Get(name string) (Workload, bool) {
	w, ok := Suite[name]
	return w, ok
}

// Names returns all registered workload names, sorted.
func Names() []string {
	var out []string
	for n := range Suite {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
