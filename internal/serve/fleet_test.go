package serve

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"embench/internal/llm"
)

// fleetScript drives a fleet of scripted episode goroutines: episode e
// issues calls[e] in order (each arrival already stamped) and records what
// it was served. Returns per-episode served slices.
func fleetScript(cfg Config, calls [][]llm.Call) [][]llm.Served {
	f := NewFleet(cfg, len(calls))
	out := make([][]llm.Served, len(calls))
	var wg sync.WaitGroup
	for e := range calls {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			c := f.Client(e)
			defer c.Finish()
			for _, call := range calls[e] {
				out[e] = append(out[e], c.Serve(call))
			}
		}(e)
	}
	wg.Wait()
	return out
}

// scriptCalls builds `eps` episodes of `steps` staggered planning-sized
// calls each.
func scriptCalls(eps, steps int, period, stagger time.Duration) [][]llm.Call {
	calls := make([][]llm.Call, eps)
	for e := 0; e < eps; e++ {
		for s := 0; s < steps; s++ {
			calls[e] = append(calls[e], llm.Call{
				Agent:   fmt.Sprintf("e%d", e),
				Arrival: time.Duration(s)*period + time.Duration(e)*stagger,
				Prompt:  sharedPrompt(fmt.Sprintf("e%d", e), 40+10*s),
				OutTokens: 50,
			})
		}
	}
	return calls
}

func TestFleetRerunByteIdentical(t *testing.T) {
	cfg := Config{Profile: noJitter, Replicas: 2, MaxBatch: 4,
		MaxWait: time.Second, CacheEntries: 128}
	calls := scriptCalls(4, 6, 8*time.Second, 300*time.Millisecond)
	a := fleetScript(cfg, calls)
	for i := 0; i < 10; i++ {
		if b := fleetScript(cfg, calls); !reflect.DeepEqual(a, b) {
			t.Fatalf("fleet rerun %d diverged despite identical call scripts", i)
		}
	}
}

func TestFleetMergesByGlobalArrivalOrder(t *testing.T) {
	// Episode 1's first call arrives BEFORE episode 0's, so it must be
	// admitted first — episode 0's call queues behind it — no matter that
	// goroutine scheduling may submit them in any wall-clock order.
	cfg := Config{Profile: noJitter, Replicas: 1}
	calls := [][]llm.Call{
		{{Agent: "e0", Arrival: 2 * time.Second, Prompt: sharedPrompt("e0", 20), OutTokens: 50}},
		{{Agent: "e1", Arrival: 0, Prompt: sharedPrompt("e1", 20), OutTokens: 50}},
	}
	out := fleetScript(cfg, calls)
	if out[1][0].QueueWait != 0 {
		t.Fatalf("earlier-arriving episode 1 should not queue: %+v", out[1][0])
	}
	if out[0][0].QueueWait <= 0 {
		t.Fatalf("later-arriving episode 0 should queue behind episode 1: %+v", out[0][0])
	}
}

func TestFleetTieBreaksOnEpisodeID(t *testing.T) {
	cfg := Config{Profile: noJitter, Replicas: 1}
	calls := [][]llm.Call{
		{{Agent: "e0", Arrival: time.Second, Prompt: sharedPrompt("e0", 20), OutTokens: 50}},
		{{Agent: "e1", Arrival: time.Second, Prompt: sharedPrompt("e1", 20), OutTokens: 50}},
	}
	for i := 0; i < 20; i++ {
		out := fleetScript(cfg, calls)
		if out[0][0].QueueWait != 0 || out[1][0].QueueWait <= 0 {
			t.Fatalf("equal arrivals must admit the lower episode id first: %+v / %+v",
				out[0][0], out[1][0])
		}
	}
}

func TestFleetFinishUnblocksOthers(t *testing.T) {
	// Episode 1 makes no calls at all; if Finish didn't detach it, episode
	// 0's first Serve would block forever.
	cfg := Config{Profile: noJitter, Replicas: 1}
	calls := [][]llm.Call{
		{{Agent: "e0", Arrival: 0, Prompt: sharedPrompt("e0", 20), OutTokens: 50}},
		nil,
	}
	done := make(chan [][]llm.Served, 1)
	go func() { done <- fleetScript(cfg, calls) }()
	select {
	case out := <-done:
		if len(out[0]) != 1 {
			t.Fatalf("episode 0 served %d calls, want 1", len(out[0]))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fleet deadlocked: Finish did not detach the idle episode")
	}
}

func TestFleetCrossEpisodeCacheAndStats(t *testing.T) {
	// Two episodes share the system/task preamble: the second stream's
	// requests must hit the prefix the first one warmed — sharing that a
	// per-episode endpoint can never see.
	cfg := Config{Profile: noJitter, Replicas: 1, CacheEntries: 128}
	calls := scriptCalls(2, 4, 10*time.Second, 500*time.Millisecond)
	f := NewFleet(cfg, 2)
	var wg sync.WaitGroup
	for e := 0; e < 2; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			c := f.Client(e)
			defer c.Finish()
			for _, call := range calls[e] {
				c.Serve(call)
			}
		}(e)
	}
	wg.Wait()
	total := f.Stats()
	if total.Requests != 8 {
		t.Fatalf("endpoint served %d requests, want 8", total.Requests)
	}
	if total.CacheHitRate() <= 0 {
		t.Fatal("cross-episode prefix sharing should produce cache hits")
	}
	s0, s1 := f.Client(0).ServingStats(), f.Client(1).ServingStats()
	if s0.Requests != 4 || s1.Requests != 4 {
		t.Fatalf("per-episode shares = %d/%d requests, want 4/4", s0.Requests, s1.Requests)
	}
	if s1.CachedTokens == 0 {
		t.Fatal("episode 1 should hit prefixes episode 0 warmed")
	}
	if got := s0.PrefillTokens + s1.PrefillTokens; got != total.PrefillTokens {
		t.Fatalf("episode shares should cover the endpoint's prefill: %d vs %d",
			got, total.PrefillTokens)
	}
}

func TestFleetServeBatchMergesAsUnit(t *testing.T) {
	// Episode 0 submits an explicit two-call phase batch keyed by its last
	// member (arrival 3s); episode 1's single call at 1s must be admitted
	// first even though the batch's first member nominally arrived at 0.
	cfg := Config{Profile: noJitter, Replicas: 1, MaxBatch: 4, MaxWait: time.Second}
	f := NewFleet(cfg, 2)
	var wg sync.WaitGroup
	var batch []llm.Served
	var single llm.Served
	wg.Add(2)
	go func() {
		defer wg.Done()
		c := f.Client(0)
		defer c.Finish()
		batch = c.ServeBatch([]llm.Call{
			{Agent: "e0a", Arrival: 0, Prompt: sharedPrompt("e0a", 20), OutTokens: 50},
			{Agent: "e0b", Arrival: 3 * time.Second, Prompt: sharedPrompt("e0b", 20), OutTokens: 50},
		})
	}()
	go func() {
		defer wg.Done()
		c := f.Client(1)
		defer c.Finish()
		single = c.Serve(llm.Call{Agent: "e1", Arrival: time.Second,
			Prompt: sharedPrompt("e1", 20), OutTokens: 50})
	}()
	wg.Wait()
	if single.QueueWait != 0 {
		t.Fatalf("episode 1's earlier call should be admitted before the batch: %+v", single)
	}
	if len(batch) != 2 || batch[0].BatchSize != 2 || batch[1].BatchSize != 2 {
		t.Fatalf("explicit batch should serve as one unit: %+v", batch)
	}
	if batch[1].QueueWait <= 0 {
		t.Fatal("batch should queue behind episode 1's in-flight request")
	}
}

// BenchmarkFleet is the cross-episode merge perf smoke: 4 scripted
// episodes × 16 calls through a shared two-replica endpoint.
func BenchmarkFleet(b *testing.B) {
	cfg := Config{Profile: noJitter, Replicas: 2, MaxBatch: 4,
		MaxWait: time.Second, CacheEntries: 128}
	calls := scriptCalls(4, 16, 8*time.Second, 300*time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fleetScript(cfg, calls)
	}
}
