// Kitchen scale: the paper's Fig. 7 scalability story in miniature — a
// centralized kitchen brigade (MindAgent) and a decentralized one (COMBO)
// swept from 2 to 8 agents on the same order book. Centralized latency
// stays nearly flat while success collapses; decentralized latency
// explodes with dialogue.
package main

import (
	"fmt"
	"log"

	"embench"
)

func main() {
	fmt.Printf("%-10s %7s %9s %10s %10s\n", "system", "agents", "success", "latency", "llm calls")
	for _, name := range []string{"MindAgent", "COMBO"} {
		for _, agents := range []int{2, 4, 6, 8} {
			var mins, calls float64
			succ := 0
			const episodes = 3
			for seed := uint64(10); seed < 10+episodes; seed++ {
				out, err := embench.Run(name, "hard", agents, seed)
				if err != nil {
					log.Fatal(err)
				}
				if out.Episode.Success {
					succ++
				}
				mins += out.Episode.SimDuration.Minutes()
				calls += float64(out.Episode.LLMCalls)
			}
			fmt.Printf("%-10s %7d %7d/%d %9.1fm %10.0f\n",
				name, agents, succ, episodes, mins/episodes, calls/episodes)
		}
	}
}
