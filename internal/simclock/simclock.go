// Package simclock provides a deterministic virtual clock used to account
// for simulated latency in embodied-agent experiments.
//
// All latency figures reported by the benchmark suite are simulated seconds:
// modules charge time to a Clock according to calibrated cost models (LLM
// serving profiles, perception backends, motion-planner compute) rather than
// measuring wall-clock time. This keeps every experiment deterministic and
// fast while preserving the latency structure of the systems under study.
package simclock

import (
	"fmt"
	"time"
)

// Clock is a monotonically advancing virtual clock. The zero value is a
// clock at time zero, ready to use. Clock is not safe for concurrent use;
// each simulated episode owns its own clock.
type Clock struct {
	now time.Duration
}

// New returns a clock starting at time zero.
func New() *Clock { return &Clock{} }

// Now reports the current virtual time as an offset from episode start.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d and returns the new time.
// Negative durations are ignored: virtual time never moves backwards.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d > 0 {
		c.now += d
	}
	return c.now
}

// AdvanceParallel moves the clock forward by the maximum of the given
// durations, modelling spans that execute concurrently (e.g. per-agent LLM
// calls issued in parallel). It returns the new time.
func (c *Clock) AdvanceParallel(ds ...time.Duration) time.Duration {
	var max time.Duration
	for _, d := range ds {
		if d > max {
			max = d
		}
	}
	return c.Advance(max)
}

// Reset rewinds the clock to zero for reuse across episodes.
func (c *Clock) Reset() { c.now = 0 }

// Span measures a contiguous interval of virtual time.
type Span struct {
	Start, End time.Duration
}

// Dur reports the span length.
func (s Span) Dur() time.Duration { return s.End - s.Start }

// Measure runs fn, charging its reported cost to the clock, and returns the
// span it occupied.
func (c *Clock) Measure(fn func() time.Duration) Span {
	start := c.now
	c.Advance(fn())
	return Span{Start: start, End: c.now}
}

// Seconds formats a duration as decimal seconds, the unit used throughout
// the paper's figures.
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// Minutes formats a duration as decimal minutes (used for end-to-end task
// runtimes, paper Fig. 2b and Fig. 7).
func Minutes(d time.Duration) string {
	return fmt.Sprintf("%.1fmin", d.Minutes())
}
