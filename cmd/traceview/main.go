// Command traceview summarizes a flight-recorder event log (the JSONL
// format embench -trace-jsonl writes; see internal/serve/obs).
//
// Usage:
//
//	traceview -in trace.jsonl                  # summary + top-10 slowest requests
//	traceview -in trace.jsonl -top 25          # more of the latency tail
//	traceview -in trace.jsonl -validate        # schema check only (CI gate; exit 1 on violation)
//	traceview -in trace.jsonl -chrome t.json   # convert to a Perfetto-loadable Chrome trace
//	traceview -in trace.jsonl -interval 30s    # virtual-time series (queue depth, active replicas, churn)
//
// The summary splits end-to-end latency into its queueing and in-batch
// shares, reports cache economics (hit rate, capacity-eviction and
// scale-down-flush churn) and autoscaler activity, and lists the slowest
// requests with their placement — the questions the fig8–fig12 analyses
// answer in aggregate, asked of one recorded run.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"embench/internal/serve/obs"
)

func main() {
	var (
		in       = flag.String("in", "", "event log to read (JSONL, as written by embench -trace-jsonl; '-' for stdin)")
		topK     = flag.Int("top", 10, "how many of the slowest requests to list")
		validate = flag.Bool("validate", false, "schema-check the stream and exit (non-zero on violation)")
		chrome   = flag.String("chrome", "", "also write a Chrome trace_event file (Perfetto-loadable) to this path")
		interval = flag.Duration("interval", 0, "also print a virtual-time series sampled at this interval (0 = off)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f := os.Stdin
	if *in != "-" {
		var err error
		f, err = os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	events, err := obs.ReadJSONL(f)
	if err != nil {
		fatal(err)
	}
	if err := obs.Validate(events); err != nil {
		fatal(err)
	}
	if *validate {
		fmt.Printf("ok: %d events, schema valid\n", len(events))
		return
	}

	s := obs.Summarize(events, *topK)
	fmt.Printf("events      %d over %.1f simulated min\n", s.Events, s.Horizon.Minutes())
	fmt.Printf("requests    %d completed, %d batch launches, %d continuous-batching joins\n",
		s.Requests, s.Batches, s.Joins)
	service := s.TotalLatency - s.TotalWait
	fmt.Printf("latency     %.1fs mean end-to-end = %.1fs queueing (%.0f%%) + %.1fs in batch\n",
		s.MeanLatency().Seconds(),
		mean(s.TotalWait, s.Requests).Seconds(), 100*s.QueueShare(),
		mean(service, s.Requests).Seconds())
	fmt.Printf("cache       %.0f%% of %d prompt tokens warm; churn: %d tokens capacity-evicted (%d events), %d flushed by scale-down (%d)\n",
		100*s.CacheHitRate(), s.PromptTokens,
		s.EvictedTokens, s.Evictions, s.FlushedTokens, s.Flushes)
	if s.ScaleTicks > 0 {
		fmt.Printf("autoscale   %d evaluation ticks: %d scale-ups, %d scale-downs\n",
			s.ScaleTicks, s.ScaleUps, s.ScaleDowns)
	}

	if len(s.Slowest) > 0 {
		fmt.Printf("\nslowest %d requests:\n", len(s.Slowest))
		fmt.Printf("  %-6s %-10s %-5s %9s %9s %9s %6s %7s\n",
			"req", "agent", "s/r", "latency", "queued", "served", "batch", "warm")
		for _, r := range s.Slowest {
			fmt.Printf("  %-6d %-10s %d/%-3d %8.1fs %8.1fs %8.1fs %6d %6.0f%%\n",
				r.Req, clip(r.Agent, 10), r.Shard, r.Replica,
				r.Latency.Seconds(), r.Wait.Seconds(), r.Service().Seconds(),
				r.Batch, 100*frac(r.Cached, r.Tokens))
		}
	}

	if *interval > 0 {
		series := obs.Sample(events, *interval)
		fmt.Printf("\nseries (interval %s):\n", *interval)
		fmt.Printf("  %-8s %8s %8s %8s %10s\n", "t", "queue", "active", "done", "evicted")
		for i := 0; i < series.Len(); i++ {
			fmt.Printf("  %-8s %8.2f %8.2f %8d %10d\n",
				time.Duration(i)**interval,
				series.MeanQueueDepth(i), series.MeanActive(i),
				series.Completions[i], series.EvictedTokens[i])
		}
	}

	if *chrome != "" {
		out, err := os.Create(*chrome)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteChromeTrace(out, events); err != nil {
			out.Close()
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "traceview: wrote %s (load in ui.perfetto.dev or chrome://tracing)\n", *chrome)
	}
}

func mean(total time.Duration, n int) time.Duration {
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceview:", err)
	os.Exit(1)
}
