package reflection

import (
	"testing"

	"embench/internal/rng"
)

func almost(a, b float64) bool { return a-b < 1e-9 && b-a < 1e-9 }

func TestNewCheckerBounds(t *testing.T) {
	c := NewChecker(1)
	if !almost(c.DetectProb, 0.95) || c.FalseAlarm != 0 {
		t.Fatalf("perfect model checker = %+v", c)
	}
	c = NewChecker(0)
	if !almost(c.DetectProb, 0.55) || !almost(c.FalseAlarm, 0.05) {
		t.Fatalf("zero-capability checker = %+v", c)
	}
	// Out-of-range capabilities clamp.
	if !almost(NewChecker(5).DetectProb, 0.95) || !almost(NewChecker(-2).DetectProb, 0.55) {
		t.Fatal("capability clamping failed")
	}
}

func TestJudgeDetectsFailures(t *testing.T) {
	c := NewChecker(0.95)
	st := rng.New(3).NewStream("refl")
	detected := 0
	for i := 0; i < 1000; i++ {
		v := c.Judge(st, true)
		if !v.TrueError {
			t.Fatal("TrueError must mirror input")
		}
		if v.FlaggedError {
			detected++
		}
	}
	if detected < 880 || detected > 980 {
		t.Fatalf("detection rate = %d/1000, want ≈930", detected)
	}
}

func TestJudgeRareFalseAlarms(t *testing.T) {
	c := NewChecker(0.9)
	st := rng.New(4).NewStream("refl")
	alarms := 0
	for i := 0; i < 2000; i++ {
		if c.Judge(st, false).FlaggedError {
			alarms++
		}
	}
	// FalseAlarm = 0.005 -> expect ~10.
	if alarms > 40 {
		t.Fatalf("false alarms = %d/2000, too many", alarms)
	}
}

func TestBetterModelsDetectMore(t *testing.T) {
	weak, strong := NewChecker(0.3), NewChecker(0.95)
	if weak.DetectProb >= strong.DetectProb {
		t.Fatal("detection should improve with capability")
	}
	if weak.FalseAlarm <= strong.FalseAlarm {
		t.Fatal("false alarms should shrink with capability")
	}
}
