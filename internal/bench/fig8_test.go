package bench

import (
	"reflect"
	"testing"

	"embench/internal/multiagent"
	"embench/internal/world"
)

func fig8TestConfig() Config {
	return Config{Episodes: 2, Seed: 11, Parallelism: 1}
}

func TestFig8QueueWaitGrowsWithAgents(t *testing.T) {
	rep := Fig8(fig8TestConfig())
	// Contended baseline: one replica, no batching.
	base := SelectFig8(rep.Closed, 1, 1)
	if len(base) != len(Fig8Agents) {
		t.Fatalf("baseline rows = %d, want %d", len(base), len(Fig8Agents))
	}
	for i := 1; i < len(base); i++ {
		if base[i].MeanQueueWait <= base[i-1].MeanQueueWait {
			t.Fatalf("queue wait should grow with team size: %d agents %v, %d agents %v",
				base[i-1].Agents, base[i-1].MeanQueueWait, base[i].Agents, base[i].MeanQueueWait)
		}
		if base[i].TaskLatency <= base[i-1].TaskLatency {
			t.Fatalf("contended task latency should grow with team size")
		}
	}
	if base[0].BatchOccupancy != 1 {
		t.Fatalf("unbatched occupancy = %.2f, want 1", base[0].BatchOccupancy)
	}
}

func TestFig8ReplicasAndBatchingRelieveContention(t *testing.T) {
	rep := Fig8(fig8TestConfig())
	pick := func(agents, replicas, maxBatch int) Fig8Row {
		for _, r := range rep.Closed {
			if r.Agents == agents && r.Replicas == replicas && r.MaxBatch == maxBatch {
				return r
			}
		}
		t.Fatalf("missing row %d/%d/%d", agents, replicas, maxBatch)
		return Fig8Row{}
	}
	const n = 8
	base := pick(n, 1, 1)
	batched := pick(n, 1, 4)
	scaled := pick(n, 4, 4)
	if batched.MeanQueueWait >= base.MeanQueueWait {
		t.Fatalf("batching should cut queue wait: %v vs %v", batched.MeanQueueWait, base.MeanQueueWait)
	}
	if batched.BatchOccupancy <= 1 {
		t.Fatalf("batching occupancy = %.2f, want > 1", batched.BatchOccupancy)
	}
	if scaled.MeanQueueWait >= batched.MeanQueueWait {
		t.Fatalf("replicas should cut queue wait further: %v vs %v",
			scaled.MeanQueueWait, batched.MeanQueueWait)
	}
	if scaled.TaskLatency >= base.TaskLatency {
		t.Fatalf("relieved endpoint should shorten episodes: %v vs %v",
			scaled.TaskLatency, base.TaskLatency)
	}
	if base.CacheHitRate <= 0 {
		t.Fatal("prefix cache should be hitting on shared preambles")
	}

	// Open-loop panel tells the same story.
	var rbase, rscaled Fig8ReplayRow
	for _, r := range rep.Replay {
		if r.Agents == n && r.Replicas == 1 && r.MaxBatch == 1 {
			rbase = r
		}
		if r.Agents == n && r.Replicas == 4 && r.MaxBatch == 4 {
			rscaled = r
		}
	}
	if rscaled.MeanQueueWait >= rbase.MeanQueueWait {
		t.Fatal("replay: replicas+batching should cut queue wait")
	}
	if rscaled.Throughput <= rbase.Throughput {
		t.Fatal("replay: replicas+batching should raise throughput")
	}
}

func TestFig8RerunByteIdentical(t *testing.T) {
	cfg := fig8TestConfig()
	a, b := Fig8(cfg), Fig8(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Fig8 reruns diverged")
	}
	if RenderFig8(a) != RenderFig8(b) {
		t.Fatal("Fig8 reports diverged across reruns")
	}
}

func TestSharedEndpointSlowsEpisodeButPreservesDecisions(t *testing.T) {
	// The endpoint only reroutes serving time: decisions, steps and success
	// must match the direct run; latency must not shrink.
	w := mustGet(fig8System)
	direct := w.Run(world.Medium, 4, multiagent.Options{Seed: 5, Parallel: true})
	shared := w.Run(world.Medium, 4, multiagent.Options{
		Seed: 5, Parallel: true,
		Serve: &fig8Endpoints()[0], // 1 replica, no batching
	})
	if direct.Episode.Steps != shared.Episode.Steps ||
		direct.Episode.Success != shared.Episode.Success ||
		direct.Episode.LLMCalls != shared.Episode.LLMCalls {
		t.Fatalf("endpoint changed decisions:\ndirect %+v\nshared %+v",
			direct.Episode, shared.Episode)
	}
	if shared.Episode.SimDuration <= direct.Episode.SimDuration {
		t.Fatalf("contended endpoint should not be faster: %v vs %v",
			shared.Episode.SimDuration, direct.Episode.SimDuration)
	}
	// Format retries re-submit to the endpoint, so it serves at least one
	// request per traced LLM call.
	if shared.Episode.Serving.Requests < shared.Episode.LLMCalls {
		t.Fatalf("endpoint served %d requests for %d LLM calls",
			shared.Episode.Serving.Requests, shared.Episode.LLMCalls)
	}
	if direct.Episode.Serving.Requests != 0 {
		t.Fatal("direct run should carry no serving stats")
	}
}
