package gridhouse

import (
	"fmt"
	"testing"

	"embench/internal/core"
	"embench/internal/modules/memory"
	"embench/internal/rng"
	"embench/internal/world"
)

func newHouse(agents int, d world.Difficulty) *House {
	return New(Config{Agents: agents, Difficulty: d}, rng.New(7))
}

// fullKnowledge gathers every object's true location into records, as if
// the agent had perfect memory of a full sweep.
func fullKnowledge(h *House) []memory.Record {
	var recs []memory.Record
	for i := 0; i < h.Objects(); i++ {
		o := h.objects[i]
		recs = append(recs, memory.Record{
			Step: h.Step(), Kind: memory.Observation, Key: fmt.Sprintf("obj:%d", i),
			Payload: ObjFact{ID: i, Cell: o.cell, Delivered: o.delivered, CarriedBy: o.carriedBy},
			Tokens:  objFactTokens,
		})
	}
	for r := 0; r < 4; r++ {
		recs = append(recs, memory.Record{
			Step: h.Step(), Kind: memory.Observation, Key: fmt.Sprintf("room:%d", r),
			Payload: r, Tokens: roomFactTokens,
		})
	}
	return recs
}

func TestConstruction(t *testing.T) {
	h := newHouse(2, world.Medium)
	if h.Agents() != 2 || h.Objects() != 6 || h.MaxSteps() != 100 {
		t.Fatalf("config wrong: agents=%d objects=%d max=%d", h.Agents(), h.Objects(), h.MaxSteps())
	}
	if h.Done() || h.Success() || h.Progress() != 0 {
		t.Fatal("fresh episode should be in progress")
	}
	for i := 0; i < h.Objects(); i++ {
		if h.grid.Blocked(h.objects[i].cell) {
			t.Fatalf("object %d placed in a wall", i)
		}
	}
}

func TestDifficultyScaling(t *testing.T) {
	if newHouse(1, world.Easy).Objects() >= newHouse(1, world.Hard).Objects() {
		t.Fatal("hard tasks should have more targets")
	}
	if newHouse(1, world.Easy).MaxSteps() >= newHouse(1, world.Hard).MaxSteps() {
		t.Fatal("hard tasks should have longer horizons")
	}
}

func TestDeterministicPlacement(t *testing.T) {
	a := New(Config{Agents: 1, Difficulty: world.Medium}, rng.New(7))
	b := New(Config{Agents: 1, Difficulty: world.Medium}, rng.New(7))
	for i := range a.objects {
		if a.objects[i].cell != b.objects[i].cell {
			t.Fatal("same seed should give identical task instances")
		}
	}
	c := New(Config{Agents: 1, Difficulty: world.Medium}, rng.New(8))
	same := true
	for i := range a.objects {
		if a.objects[i].cell != c.objects[i].cell {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestObserveRoomScoped(t *testing.T) {
	h := newHouse(1, world.Hard)
	obs := h.Observe(0)
	room := roomOf(h.AgentCell(0))
	for _, r := range obs.Records {
		if f, ok := r.Payload.(ObjFact); ok {
			if roomOf(f.Cell) != room {
				t.Fatalf("saw object %d outside the agent's room", f.ID)
			}
		}
	}
	// Room-visit record is always present.
	if _, ok := obs.Records[0].Payload.(int); !ok {
		t.Fatal("first record should be the room visit")
	}
}

func TestStaticRecords(t *testing.T) {
	h := newHouse(1, world.Easy)
	recs := h.StaticRecords()
	if len(recs) != 4 {
		t.Fatalf("static records = %d, want 4 rooms", len(recs))
	}
	for _, r := range recs {
		if !r.Static {
			t.Fatal("map facts must be static")
		}
	}
}

func TestOracleSolvesEpisode(t *testing.T) {
	// Driving the domain with perfect knowledge and no corruption must
	// finish well within the horizon — this validates oracle + executor.
	h := newHouse(1, world.Medium)
	steps := 0
	for !h.Done() {
		bel := h.BuildBelief(0, fullKnowledge(h))
		prop := h.Propose(0, bel)
		if prop.Good == nil {
			t.Fatal("oracle returned nil subgoal")
		}
		res := h.Execute(0, prop.Good)
		if !res.Achieved {
			t.Fatalf("oracle subgoal %s failed: %s", prop.Good.Describe(), res.Note)
		}
		h.Tick()
		steps++
		if steps > 100 {
			t.Fatal("runaway episode")
		}
	}
	if !h.Success() {
		t.Fatal("oracle run should succeed")
	}
	// 6 objects, fetch+deliver each: ≈12 steps.
	if steps > 20 {
		t.Fatalf("oracle took %d steps, expected ≈12", steps)
	}
}

func TestMultiAgentOracleFaster(t *testing.T) {
	run := func(agents int) int {
		h := newHouse(agents, world.Hard)
		steps := 0
		for !h.Done() {
			for a := 0; a < agents; a++ {
				bel := h.BuildBelief(a, fullKnowledge(h))
				// Mark claims so agents don't duplicate work.
				recs := fullKnowledge(h)
				for other := 0; other < agents; other++ {
					if other != a && h.Carrying(other) >= 0 {
						recs = append(recs, memory.Record{
							Step: h.Step(), Kind: memory.Action,
							Key:     fmt.Sprintf("claim:%d", other),
							Payload: ClaimFact{Agent: other, Object: h.Carrying(other)},
							Tokens:  8,
						})
					}
				}
				bel = h.BuildBelief(a, recs)
				prop := h.Propose(a, bel)
				h.Execute(a, prop.Good)
			}
			h.Tick()
			steps++
			if steps > 200 {
				t.Fatal("runaway")
			}
		}
		return steps
	}
	s1, s4 := run(1), run(4)
	if s4 >= s1 {
		t.Fatalf("4 agents (%d steps) should beat 1 agent (%d steps)", s4, s1)
	}
}

func TestFetchStaleLocationFails(t *testing.T) {
	h := newHouse(1, world.Easy)
	o := h.objects[0]
	wrong := world.C(o.cell.X, o.cell.Y)
	// Find a free cell that's not the object's.
	for dx := 1; dx < 10; dx++ {
		c := world.C((o.cell.X+dx)%25, o.cell.Y)
		if !h.grid.Blocked(c) && c != o.cell {
			wrong = c
			break
		}
	}
	res := h.Execute(0, Fetch{Obj: 0, Cell: wrong})
	if res.Achieved {
		t.Fatal("fetch at stale location should fail")
	}
	if res.Effort.Primitives == 0 {
		t.Fatal("the wasted trip should still cost actuation effort")
	}
}

func TestDeliverWithoutCarryingFails(t *testing.T) {
	h := newHouse(1, world.Easy)
	if h.Execute(0, Deliver{}).Achieved {
		t.Fatal("empty-handed delivery should fail")
	}
}

func TestFetchThenDeliver(t *testing.T) {
	h := newHouse(1, world.Easy)
	o := h.objects[0]
	res := h.Execute(0, Fetch{Obj: 0, Cell: o.cell})
	if !res.Achieved || h.Carrying(0) != 0 {
		t.Fatalf("fetch failed: %+v carrying=%d", res, h.Carrying(0))
	}
	res = h.Execute(0, Deliver{})
	if !res.Achieved || h.Delivered() != 1 {
		t.Fatalf("deliver failed: %+v delivered=%d", res, h.Delivered())
	}
	if !o.delivered {
		t.Fatal("object not marked delivered")
	}
	// Delivered objects can't be fetched again.
	if h.Execute(0, Fetch{Obj: 0, Cell: o.cell}).Achieved {
		t.Fatal("re-fetch of delivered object should fail")
	}
}

func TestDoubleFetchConflict(t *testing.T) {
	h := newHouse(2, world.Easy)
	o := h.objects[0]
	if !h.Execute(0, Fetch{Obj: 0, Cell: o.cell}).Achieved {
		t.Fatal("first fetch should succeed")
	}
	if h.Execute(1, Fetch{Obj: 0, Cell: o.cell}).Achieved {
		t.Fatal("second agent fetching a carried object should fail")
	}
}

func TestExploreMovesAgent(t *testing.T) {
	h := newHouse(1, world.Easy)
	res := h.Execute(0, Explore{Room: 3})
	if !res.Achieved {
		t.Fatalf("explore failed: %s", res.Note)
	}
	if roomOf(h.AgentCell(0)) != 3 {
		t.Fatalf("agent in room %d, want 3", roomOf(h.AgentCell(0)))
	}
	if h.Execute(0, Explore{Room: 9}).Achieved {
		t.Fatal("bad room should fail")
	}
}

func TestBeliefStaleness(t *testing.T) {
	h := newHouse(2, world.Easy)
	// Agent 1's memory says object 0 is on the floor at its spawn cell.
	recs := []memory.Record{{
		Step: 0, Kind: memory.Observation, Key: "obj:0",
		Payload: ObjFact{ID: 0, Cell: h.objects[0].cell, CarriedBy: -1},
		Tokens:  objFactTokens,
	}}
	bel := h.BuildBelief(1, recs)
	if bel.Staleness != 0 {
		t.Fatalf("fresh belief staleness = %v, want 0", bel.Staleness)
	}
	// Agent 0 picks it up; the same old records are now stale.
	h.Execute(0, Fetch{Obj: 0, Cell: h.objects[0].cell})
	bel = h.BuildBelief(1, recs)
	if bel.Staleness != 1 {
		t.Fatalf("stale belief staleness = %v, want 1", bel.Staleness)
	}
}

func TestProposeCarryingPrefersDeliver(t *testing.T) {
	h := newHouse(1, world.Easy)
	h.Execute(0, Fetch{Obj: 0, Cell: h.objects[0].cell})
	prop := h.Propose(0, h.BuildBelief(0, fullKnowledge(h)))
	if _, ok := prop.Good.(Deliver); !ok {
		t.Fatalf("carrying agent should deliver, got %s", prop.Good.Describe())
	}
}

func TestProposeRespectsClaims(t *testing.T) {
	h := newHouse(2, world.Easy)
	recs := fullKnowledge(h)
	// Agent 1 claims the object nearest to agent 0.
	prop0 := h.Propose(0, h.BuildBelief(0, recs))
	nearest, ok := prop0.Good.(Fetch)
	if !ok {
		t.Fatalf("expected fetch, got %s", prop0.Good.Describe())
	}
	recs = append(recs, memory.Record{
		Step: 0, Kind: memory.Dialogue, Key: "claim:1",
		Payload: ClaimFact{Agent: 1, Object: nearest.Obj}, Tokens: 8,
	})
	prop := h.Propose(0, h.BuildBelief(0, recs))
	if f, ok := prop.Good.(Fetch); ok && f.Obj == nearest.Obj {
		t.Fatal("proposal ignored teammate's claim")
	}
}

func TestProposeWithoutKnowledgeExplores(t *testing.T) {
	h := newHouse(1, world.Medium)
	prop := h.Propose(0, h.BuildBelief(0, nil))
	if _, ok := prop.Good.(Explore); !ok {
		t.Fatalf("blank belief should explore, got %s", prop.Good.Describe())
	}
	if len(prop.Corruptions) == 0 {
		t.Fatal("proposal must offer corruption candidates")
	}
}

func TestCorruptionsDistinctFromGood(t *testing.T) {
	h := newHouse(2, world.Hard)
	prop := h.Propose(0, h.BuildBelief(0, fullKnowledge(h)))
	for _, c := range prop.Corruptions {
		if c.ID() == prop.Good.ID() {
			t.Fatalf("corruption %s duplicates the good decision", c.ID())
		}
	}
}

func TestProposeJoint(t *testing.T) {
	h := newHouse(3, world.Medium)
	prop := h.ProposeJoint(h.BuildBelief(core.CentralAgent, fullKnowledge(h)))
	joint, ok := prop.Good.(*core.Joint)
	if !ok {
		t.Fatalf("joint proposal type %T", prop.Good)
	}
	if len(joint.Assign) != 3 {
		t.Fatalf("assignments = %d, want 3", len(joint.Assign))
	}
	// No duplicated fetch targets in the good assignment.
	seen := map[int]bool{}
	for _, g := range joint.Assign {
		if f, ok := g.(Fetch); ok {
			if seen[f.Obj] {
				t.Fatal("joint proposal duplicated an object")
			}
			seen[f.Obj] = true
		}
	}
	if prop.Complexity <= core.DecentralizedComplexity(3) {
		t.Fatal("centralized complexity should exceed decentralized")
	}
	if len(prop.Corruptions) == 0 {
		t.Fatal("joint proposal needs corruptions")
	}
}

func TestCentralizedComplexityGrowsWithAgents(t *testing.T) {
	h2 := newHouse(2, world.Medium)
	h8 := newHouse(8, world.Medium)
	p2 := h2.ProposeJoint(h2.BuildBelief(core.CentralAgent, fullKnowledge(h2)))
	p8 := h8.ProposeJoint(h8.BuildBelief(core.CentralAgent, fullKnowledge(h8)))
	if p8.Complexity <= p2.Complexity {
		t.Fatal("joint complexity should grow with team size")
	}
}

func TestTickAdvancesStep(t *testing.T) {
	h := newHouse(1, world.Easy)
	h.Tick()
	h.Tick()
	if h.Step() != 2 {
		t.Fatalf("step = %d", h.Step())
	}
}

func TestHorizonEndsEpisode(t *testing.T) {
	h := New(Config{Agents: 1, Difficulty: world.Easy, Horizon: 3}, rng.New(1))
	for i := 0; i < 3; i++ {
		h.Tick()
	}
	if !h.Done() || h.Success() {
		t.Fatal("horizon exhaustion should end the episode unsuccessfully")
	}
}
