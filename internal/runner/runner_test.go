package runner

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"embench/internal/core"
	"embench/internal/llm"
	"embench/internal/metrics"
	"embench/internal/multiagent"
	"embench/internal/serve"
	"embench/internal/systems"
	"embench/internal/trace"
	"embench/internal/world"
)

// get resolves a workload or fails the test.
func get(t *testing.T, name string) systems.Workload {
	t.Helper()
	w, ok := systems.Get(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	return w
}

// mixedSpecs builds a batch that overlaps every suite workload — all six
// environments and all coordination paradigms — the shape the bench layer
// submits. Episode outcomes must be a pure function of the spec, so this
// doubles as the suite-wide determinism probe.
func mixedSpecs(t *testing.T) []EpisodeSpec {
	t.Helper()
	var specs []EpisodeSpec
	for i, name := range systems.SuiteNames {
		specs = append(specs, Specs(get(t, name), world.Easy, 0, nil,
			multiagent.Options{}, 2, uint64(i)+1)...)
	}
	return specs
}

func TestEpisodeSeedScheme(t *testing.T) {
	// The derivation must stay root + i*1000003: it is what every recorded
	// experiment used when batches ran as sequential loops.
	for i := 0; i < 5; i++ {
		if got, want := EpisodeSeed(7, i), 7+uint64(i)*1000003; got != want {
			t.Fatalf("EpisodeSeed(7, %d) = %d, want %d", i, got, want)
		}
	}
	specs := Specs(get(t, "CMAS"), world.Easy, 0, nil, multiagent.Options{}, 4, 42)
	for i, s := range specs {
		if s.Seed != EpisodeSeed(42, i) {
			t.Fatalf("specs[%d].Seed = %d, want %d", i, s.Seed, EpisodeSeed(42, i))
		}
	}
}

func TestRunMatchesSequentialAtAnyParallelism(t *testing.T) {
	specs := mixedSpecs(t)
	wantEps, wantTraces, err := Run(context.Background(), specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantEps) != len(specs) || len(wantTraces) != len(specs) {
		t.Fatalf("sequential run returned %d/%d results for %d specs",
			len(wantEps), len(wantTraces), len(specs))
	}
	for _, parallelism := range []int{0, -3, 2, 4, 8, len(specs) + 5} {
		eps, traces, err := Run(context.Background(), specs, parallelism)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		if !reflect.DeepEqual(eps, wantEps) {
			t.Fatalf("parallelism %d: episodes diverge from sequential run", parallelism)
		}
		if !reflect.DeepEqual(traces, wantTraces) {
			t.Fatalf("parallelism %d: traces diverge from sequential run", parallelism)
		}
	}
}

func TestOrderPreservation(t *testing.T) {
	// Episodes with distinct seeds of one workload: slot i must hold the
	// result of seed i's episode regardless of which worker finished first.
	w := get(t, "CMAS")
	specs := Specs(w, world.Easy, 0, nil, multiagent.Options{}, 8, 100)
	eps, _, err := Run(context.Background(), specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range specs {
		out := s.run()
		if eps[i].SimDuration != out.Episode.SimDuration || eps[i].Steps != out.Episode.Steps {
			t.Fatalf("slot %d does not hold episode for seed %d", i, s.Seed)
		}
	}
}

func TestCancellation(t *testing.T) {
	specs := mixedSpecs(t)

	t.Run("before start", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		for _, parallelism := range []int{1, 4} {
			eps, traces, err := Run(ctx, specs, parallelism)
			if err != context.Canceled {
				t.Fatalf("parallelism %d: err = %v, want context.Canceled", parallelism, err)
			}
			if eps != nil || traces != nil {
				t.Fatalf("parallelism %d: cancelled run must not return partial results", parallelism)
			}
		}
	})

	t.Run("mid-batch", func(t *testing.T) {
		for _, parallelism := range []int{1, 2} {
			ctx, cancel := context.WithCancel(context.Background())
			ran := 0
			var mu sync.Mutex
			// The first episode's config mutation fires the cancellation, so
			// dispatch must stop before the batch completes.
			tripwire := func(*core.AgentConfig) {
				mu.Lock()
				ran++
				mu.Unlock()
				cancel()
			}
			specs := Specs(get(t, "CMAS"), world.Easy, 0, tripwire,
				multiagent.Options{}, 64, 1)
			eps, traces, err := Run(ctx, specs, parallelism)
			if err != context.Canceled {
				t.Fatalf("parallelism %d: err = %v, want context.Canceled", parallelism, err)
			}
			if eps != nil || traces != nil {
				t.Fatalf("parallelism %d: cancelled run must not return partial results", parallelism)
			}
			mu.Lock()
			n := ran
			mu.Unlock()
			if n == 0 || n >= len(specs) {
				t.Fatalf("parallelism %d: %d/%d episodes started; cancellation should stop mid-batch",
					parallelism, n, len(specs))
			}
			cancel()
		}
	})

	t.Run("nil context", func(t *testing.T) {
		specs := Specs(get(t, "CMAS"), world.Easy, 0, nil, multiagent.Options{}, 2, 1)
		if _, _, err := Run(nil, specs, 2); err != nil {
			t.Fatalf("nil context should run to completion: %v", err)
		}
	})
}

func TestSequentialFallbackTable(t *testing.T) {
	// Degenerate pool sizes must all take the sequential path and succeed.
	cases := []struct {
		name        string
		parallelism int
		episodes    int
	}{
		{"zero", 0, 3},
		{"negative", -1, 3},
		{"one", 1, 3},
		{"empty batch parallel", 8, 0},
		{"single spec parallel", 8, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			specs := Specs(get(t, "DEPS"), world.Easy, 0, nil,
				multiagent.Options{}, tc.episodes, 9)
			eps, traces, err := Run(context.Background(), specs, tc.parallelism)
			if err != nil {
				t.Fatal(err)
			}
			if len(eps) != tc.episodes || len(traces) != tc.episodes {
				t.Fatalf("got %d/%d results, want %d", len(eps), len(traces), tc.episodes)
			}
			for i, ep := range eps {
				if ep.Steps == 0 {
					t.Fatalf("episode %d empty", i)
				}
			}
		})
	}
}

func TestMutationDoesNotLeakAcrossSpecs(t *testing.T) {
	// A mutated batch must not disturb the registry copy or a following
	// unmutated batch of the same workload.
	w := get(t, "DEPS")
	planner := w.Config.Planner
	mut := func(c *core.AgentConfig) { c.Planner = llm.Llama3_8B }

	base, _, err := Run(context.Background(), Specs(w, world.Easy, 0, nil, multiagent.Options{}, 2, 5), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(context.Background(), Specs(w, world.Easy, 0, mut, multiagent.Options{}, 2, 5), 2); err != nil {
		t.Fatal(err)
	}
	again, _, err := Run(context.Background(), Specs(w, world.Easy, 0, nil, multiagent.Options{}, 2, 5), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, again) {
		t.Fatal("mutated batch leaked state into a later unmutated batch")
	}
	if w.Config.Planner.Name != planner.Name {
		t.Fatal("mutation escaped into the caller's workload value")
	}
	if reg := get(t, "DEPS"); reg.Config.Planner.Name != planner.Name {
		t.Fatal("mutation escaped into the workload registry")
	}
}

func TestConcurrentRunsAreIndependent(t *testing.T) {
	// Overlapping pools over overlapping workloads: exercised under
	// `go test -race` this is the suite's thread-safety proof.
	specs := mixedSpecs(t)
	want, _, err := Run(context.Background(), specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eps, _, err := Run(context.Background(), specs, 4)
			if err != nil {
				t.Error(err)
				return
			}
			if !reflect.DeepEqual(eps, want) {
				t.Error("concurrent pool diverged from the sequential reference")
			}
		}()
	}
	wg.Wait()
}

func TestDefaultParallelism(t *testing.T) {
	if DefaultParallelism() < 1 {
		t.Fatalf("DefaultParallelism() = %d, want >= 1", DefaultParallelism())
	}
}

// TestPipelinedDisaggBatchMatchesAcrossWorkers: the async agent pipeline
// over a disaggregated endpoint is the most timing-sensitive configuration
// the suite can run; its batches must still be a pure function of the
// specs, independent of the worker count.
func TestPipelinedDisaggBatchMatchesAcrossWorkers(t *testing.T) {
	sc := serve.Config{
		MaxWait:      500 * time.Millisecond,
		CacheEntries: 64,
		Prefill:      serve.PoolConfig{Replicas: 2, MaxBatch: 4},
		Decode:       serve.PoolConfig{Replicas: 2, MaxBatch: 4},
		Handoff:      serve.Handoff{Latency: 25 * time.Millisecond, TokensPerSec: 100000},
	}
	opt := multiagent.Options{Parallel: true, Serve: &sc, Pipeline: true}
	run := func(parallelism int) ([]metrics.Episode, []*trace.Trace) {
		eps, traces, err := Batch(context.Background(), get(t, "CoELA"), world.Easy,
			0, nil, opt, 3, 29, parallelism)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return eps, traces
	}
	wantEps, wantTraces := run(1)
	for _, p := range []int{2, 4} {
		eps, traces := run(p)
		if !reflect.DeepEqual(eps, wantEps) {
			t.Fatalf("parallelism %d: pipelined disagg episodes diverged", p)
		}
		if !reflect.DeepEqual(traces, wantTraces) {
			t.Fatalf("parallelism %d: pipelined disagg traces diverged", p)
		}
	}
}
