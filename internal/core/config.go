package core

import (
	"embench/internal/llm"
	"embench/internal/modules/sensing"
	"embench/internal/prompt"
)

// MemoryConfig selects the memory module's structure and capacity.
type MemoryConfig struct {
	// Capacity is the retention window in steps: 0 disables the module
	// (the "w/o Memory" ablation), negative keeps the full history.
	Capacity int
	// Dual enables the long-term/short-term structure of Rec. 5.
	Dual        bool
	ShortWindow int // short-term window when Dual (default 6)
	LongBudget  int // long-term summary token budget when Dual (default 160)
}

// AgentConfig describes which building blocks an agent has and how they
// are parameterized — one row of the paper's Table II.
type AgentConfig struct {
	// Sensing is the perception backend; nil means no sensing module
	// (symbolic systems like MindAgent read state directly).
	Sensing *sensing.Backend
	// Planner is the planning-module LLM. Required.
	Planner llm.Profile
	// Comms is the communication-module LLM; nil means no module.
	Comms *llm.Profile
	// Memory configures the memory module.
	Memory MemoryConfig
	// Reflector is the reflection-module model; nil means no module.
	Reflector *llm.Profile
	// Execution enables the low-level execution module. When false the
	// planner LLM must emit primitive actions itself (Fig. 3 "w/o Exec").
	Execution bool
	// ActSelect adds CoELA's third per-step LLM call that picks the
	// concrete action from a menu.
	ActSelect bool

	// SystemTokens and TaskTokens size the fixed prompt sections
	// (defaults 220 and 90).
	SystemTokens int
	TaskTokens   int
	// PlanOutTokens overrides the planning generation length (default
	// 140); chain-of-thought-style planners generate longer.
	PlanOutTokens int

	// PlanHorizon K > 1 enables planning-guided multi-step execution
	// (Rec. 7): one planning LLM call guides K consecutive subgoals.
	PlanHorizon int
	// PlanThenComm gates message generation on the plan needing it
	// (Rec. 8) instead of pre-generating a message every step.
	PlanThenComm bool
	// MessageFilter caps records per message (Rec. 10); 0 = unfiltered.
	MessageFilter int
	// MultipleChoice reformulates planning queries as multiple choice
	// (Rec. 4); nil = off.
	MultipleChoice *prompt.MultipleChoice
	// Compressor summarizes oversized context sections (Rec. 6); nil = off.
	Compressor *prompt.Compressor
	// Backend routes every LLM client's serving time through a shared
	// substrate (a serve.Endpoint); nil keeps the dedicated per-client
	// latency model. Set per episode by the paradigm runners, never in
	// workload tables — an endpoint carries timeline state and must not be
	// shared across episodes.
	Backend llm.Backend
	// Pipeline enables the async agent pipeline: each plan (or act-select)
	// call's decode window — the trailing stretch of serving during which
	// the response is still streaming out — is credited against the NEXT
	// step's sensing and memory-retrieval charges, modelling an agent that
	// prepares step t+1's prompt while step t's tokens are still being
	// generated. Pure latency accounting: decisions, RNG streams and
	// request submission order are identical with the pipeline on or off,
	// and each agent's virtual clock stays monotone (charges are reduced,
	// never rewound).
	Pipeline bool
}

// withDefaults fills zero fields.
func (c AgentConfig) withDefaults() AgentConfig {
	if c.SystemTokens == 0 {
		c.SystemTokens = 220
	}
	if c.TaskTokens == 0 {
		c.TaskTokens = 90
	}
	if c.PlanHorizon <= 0 {
		c.PlanHorizon = 1
	}
	if c.PlanOutTokens == 0 {
		c.PlanOutTokens = 140
	}
	if c.Memory.Dual {
		if c.Memory.ShortWindow == 0 {
			c.Memory.ShortWindow = 6
		}
		if c.Memory.LongBudget == 0 {
			c.Memory.LongBudget = 160
		}
	}
	return c
}

// persistProb is the chance an uncorrected agent re-issues its failed plan
// on the next step — the "stuck in loops of invalid operations" behaviour
// the reflection module exists to break (paper Sec. IV-B). Without error
// feedback the model sees the same context and makes the same call, so
// loops run long.
const persistProb = 0.85

// maxLoopRepeats caps a single loop: fresh observations and shifting
// dialogue eventually change the context enough that even an uncorrected
// model moves on.
const maxLoopRepeats = 6

// primitiveCalls is how many LLM emissions one subgoal's worth of
// low-level control takes when the execution module is disabled.
const primitiveCalls = 4

// primitiveComplexity is the extra error-channel complexity of emitting
// raw primitives: the decision space is vastly larger than subgoal
// selection, and a single wrong joint command voids the whole motion
// (paper Sec. IV-B: disabling execution led to task failures at Lmax).
const primitiveComplexity = 0.55
