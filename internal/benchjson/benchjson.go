// Package benchjson is the one definition of the machine-readable perf
// record schema shared by cmd/embench (which writes it via -bench-json)
// and cmd/perftrack (which appends it to the perf trajectory and checks
// regressions). Keeping the types in one place means the producer and the
// consumer cannot drift apart silently.
package benchjson

import "fmt"

// Entry is one experiment's perf record.
type Entry struct {
	Experiment string  `json:"experiment"`
	Episodes   int     `json:"episodes"`
	Seed       uint64  `json:"seed"`
	Procs      int     `json:"procs"`
	WallMS     float64 `json:"wall_ms"`
	ReportB    int     `json:"report_bytes,omitempty"`
	ReportRows int     `json:"report_lines,omitempty"`
	// Axis describes experiment-specific sweep axes (fig10's fleet
	// sizes/shards); distinct axes are distinct run configurations.
	Axis string `json:"axis,omitempty"`
	// Metrics carries experiment-specific perf numbers (fig10's
	// per-fleet-size heap-vs-linear wall times and speedups), so the
	// trajectory records before/after evidence, not just total wall time.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// ConfigKey identifies the entry's run configuration. Wall times are only
// comparable between runs of the same configuration, so trajectory
// baselines are keyed on this, not on the experiment name alone. Axis
// (when set — fig10's fleet-size/shard sweep) is part of the key: a
// reduced-axis CI run and a full-ladder local run are different workloads.
func (e Entry) ConfigKey() string {
	k := fmt.Sprintf("%s|ep%d|seed%d|procs%d", e.Experiment, e.Episodes, e.Seed, e.Procs)
	if e.Axis != "" {
		k += "|" + e.Axis
	}
	return k
}

// File is the top-level object written by embench -bench-json.
type File struct {
	Suite       string  `json:"suite"`
	GeneratedBy string  `json:"generated_by"`
	Entries     []Entry `json:"entries"`
	TotalWallMS float64 `json:"total_wall_ms"`
}

// Env identifies the machine a trajectory record was measured on. Wall
// times are only comparable within similar environments, so perftrack
// stamps every appended line with the host identity it measured under —
// a cross-machine trajectory then explains its own outliers.
type Env struct {
	Host       string `json:"host,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
	GoVersion  string `json:"go_version,omitempty"`
}

// Record is one appended perf-trajectory line (JSONL). Env is absent on
// lines written before environment stamping existed; those still parse.
type Record struct {
	Label   string  `json:"label"`
	Env     Env     `json:"env"`
	Entries []Entry `json:"entries"`
}
