// Command perftrack appends benchmark wall-time records to a trajectory
// file and flags regressions against the previous record — the
// machine-readable perf history the ROADMAP's perf-trajectory item asks
// for.
//
// Usage:
//
//	embench -exp fig9 -bench-json BENCH_fleet.json
//	perftrack -in BENCH_fleet.json -history PERF_TRAJECTORY.jsonl -label "$GITHUB_SHA"
//
// Each invocation appends ONE line of JSON to the history file:
// {label, entries: [{experiment, episodes, procs, wall_ms}...]}. Before
// appending, every experiment's wall time is compared to its baseline —
// the FASTEST of the last -baseline-window prior records for the same run
// configuration, which absorbs single-run scheduler noise (a noisy slow
// record never becomes the bar to beat); a ratio above -warn-ratio prints
// a warning (and, with -fail-on-regress, exits nonzero). The file is
// append-only JSONL so PRs accumulate a comparable series; commit it to
// keep the series across machines, or let CI keep an ephemeral one per
// run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"embench/internal/benchjson"
)

func main() {
	var (
		in      = flag.String("in", "", "bench JSON written by embench -bench-json (required)")
		history = flag.String("history", "PERF_TRAJECTORY.jsonl", "append-only JSONL trajectory file")
		label   = flag.String("label", "local", "record label (commit SHA, PR number, ...)")
		ratio   = flag.Float64("warn-ratio", 1.5, "warn when wall time exceeds the baseline by this factor")
		window  = flag.Int("baseline-window", 3, "baseline = fastest of this many most recent prior records per config (noise floor)")
		fail    = flag.Bool("fail-on-regress", false, "exit 1 when a regression is flagged")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	var bf benchjson.File
	if err := json.Unmarshal(data, &bf); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *in, err))
	}
	if len(bf.Entries) == 0 {
		fatal(fmt.Errorf("%s carries no experiment entries", *in))
	}

	warnStaleLabel(*history, *label)
	prev := baselineWallTimes(*history, *window)
	regressed := false
	for _, e := range bf.Entries {
		// Wall times are only comparable between identical run
		// configurations (experiment, episodes, seed, procs, axes); a
		// record taken with different settings is not a baseline.
		p, ok := prev[e.ConfigKey()]
		if !ok || p <= 0 {
			fmt.Printf("perftrack: %-10s %8.0f ms (no prior record for this config)\n", e.Experiment, e.WallMS)
			continue
		}
		r := e.WallMS / p
		mark := ""
		if r > *ratio {
			mark = "  << REGRESSION"
			regressed = true
		}
		fmt.Printf("perftrack: %-10s %8.0f ms (baseline %.0f ms over last %d, x%.2f)%s\n",
			e.Experiment, e.WallMS, p, *window, r, mark)
	}

	f, err := os.OpenFile(*history, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	line, err := json.Marshal(benchjson.Record{Label: *label, Env: hostEnv(), Entries: bf.Entries})
	if err != nil {
		fatal(err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		fatal(err)
	}
	fmt.Printf("perftrack: appended %q to %s\n", *label, *history)

	if regressed && *fail {
		os.Exit(1)
	}
}

// warnStaleLabel flags a record label that does not advance the
// trajectory sequence: an exact repeat of the previous record's label, or
// a "prN-..." label whose number is at or below the previous record's.
// (The history already carries one mislabeled line — a later PR landed
// under the previous PR's label — because nothing checked this.) CI
// labels records by commit SHA, which the prN check deliberately ignores;
// repeated SHAs still warn, since re-measuring the same commit is usually
// a pipeline mistake.
func warnStaleLabel(path, label string) {
	last := lastLabel(path)
	if last == "" {
		return
	}
	if label == last {
		fmt.Fprintf(os.Stderr, "perftrack: warning: label %q repeats the previous record's label — give each measured change its own label so the trajectory stays attributable\n", label)
		return
	}
	if ln, ok := prSeq(last); ok {
		if nn, ok := prSeq(label); ok && nn <= ln {
			fmt.Fprintf(os.Stderr, "perftrack: warning: label %q does not advance the previous record's %q — check the sequence number\n", label, last)
		}
	}
}

// prSeq extracts N from a "prN..." label.
func prSeq(s string) (int, bool) {
	if !strings.HasPrefix(s, "pr") {
		return 0, false
	}
	digits := s[2:]
	end := 0
	for end < len(digits) && digits[end] >= '0' && digits[end] <= '9' {
		end++
	}
	if end == 0 {
		return 0, false
	}
	n, err := strconv.Atoi(digits[:end])
	if err != nil {
		return 0, false
	}
	return n, true
}

// lastLabel reports the most recent parseable record's label ("" when the
// history is missing or holds none), tolerating corrupt lines the same
// way baselineWallTimes does.
func lastLabel(path string) string {
	f, err := os.Open(path)
	if err != nil {
		return ""
	}
	defer f.Close()
	last := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var r benchjson.Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			continue
		}
		if r.Label != "" {
			last = r.Label
		}
	}
	return last
}

// baselineWallTimes scans the history and reports, per run configuration
// (see benchjson.Entry.ConfigKey), the fastest wall time among the last
// `window` records — the noise-floor baseline a new measurement is held
// against. A missing or partially corrupt file is not an error — the
// trajectory should keep accumulating even if one line was mangled.
func baselineWallTimes(path string, window int) map[string]float64 {
	if window < 1 {
		window = 1
	}
	recent := map[string][]float64{} // config key -> last `window` wall times
	f, err := os.Open(path)
	if err != nil {
		return map[string]float64{}
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var r benchjson.Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			continue
		}
		for _, e := range r.Entries {
			k := e.ConfigKey()
			w := append(recent[k], e.WallMS)
			if len(w) > window {
				w = w[len(w)-window:]
			}
			recent[k] = w
		}
	}
	out := make(map[string]float64, len(recent))
	for k, w := range recent {
		best := w[0]
		for _, v := range w[1:] {
			if v > 0 && (best <= 0 || v < best) {
				best = v
			}
		}
		out[k] = best
	}
	return out
}

// hostEnv stamps the record with the measuring machine's identity
// (hostname, GOMAXPROCS, Go toolchain) so cross-machine trajectory lines
// explain their own wall-time differences.
func hostEnv() benchjson.Env {
	host, _ := os.Hostname()
	return benchjson.Env{
		Host:       host,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perftrack:", err)
	os.Exit(1)
}
