package bench

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The goldens under testdata/ were generated from the seed tree (before the
// token-budget cache rewrite) with `go test -run SeedByteIdentical -update`.
// They pin the acceptance criterion of the cache-identity PR: under the
// DEFAULT serving configuration (entry-count capacity, shape identity, no
// token budget) the figure outputs stay byte-identical — the new capacity
// model is strictly opt-in. Regenerate them only when a default is changed
// on purpose.
var updateGoldens = flag.Bool("update", false, "rewrite the seed differential goldens")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGoldens {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update on a known-good tree): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from the seed golden.\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func TestFig8SeedByteIdentical(t *testing.T) {
	rep := Fig8(Config{Episodes: 2, Seed: 1, Parallelism: 1})
	checkGolden(t, "fig8_seed.golden", RenderFig8(rep))
}

func TestFig9SeedByteIdentical(t *testing.T) {
	rep := Fig9(fig9TestConfig())
	checkGolden(t, "fig9_seed.golden", RenderFig9(rep))
}

// renderFig10Deterministic renders only fig10's simulation-derived columns:
// wall times (and the wall-time-only before/after panel) vary run to run by
// design, so byte-identity is pinned on the serving statistics.
func renderFig10Deterministic(rep Fig10Report) string {
	var b strings.Builder
	b.WriteString("fig10a deterministic columns\n")
	for _, r := range rep.Merge {
		fmt.Fprintf(&b, "%8d %7d %-16s %9d %12d %.6f\n",
			r.Episodes, r.Shards, r.Routing, r.Requests,
			r.MeanQueueWait.Nanoseconds(), r.CacheHitRate)
	}
	b.WriteString("fig10c deterministic columns\n")
	for _, r := range rep.Closed {
		fmt.Fprintf(&b, "%8d %7d %.4f %12d %.6f\n",
			r.Episodes, r.Shards, r.SuccessRate,
			r.MeanQueueWait.Nanoseconds(), r.CacheHitRate)
	}
	return b.String()
}

func TestFig10SeedByteIdentical(t *testing.T) {
	rep := Fig10(Config{
		Episodes: 2, Seed: 7, Parallelism: 1,
		FleetSizes: []int{16, 64}, FleetShards: []int{1, 2},
	})
	checkGolden(t, "fig10_seed.golden", renderFig10Deterministic(rep))
}
