package bench

import (
	"fmt"
	"strings"
	"time"

	"embench/internal/metrics"
	"embench/internal/multiagent"
	"embench/internal/trace"
	"embench/internal/world"
)

// Fig2Row is one workload's latency profile (paper Fig. 2a + 2b).
type Fig2Row struct {
	System       string
	MeanStepTime time.Duration            // Fig. 2a bar length
	ModuleShare  map[trace.Module]float64 // Fig. 2a bar segments
	LLMShare     float64                  // Sec. IV-A: 70.2% average
	TotalRuntime time.Duration            // Fig. 2b
	MeanSteps    float64
	SuccessRate  float64
	KindShares   map[string]float64 // "plan"/"message"/"act-select" splits
}

// Fig2 benchmarks per-step latency breakdown and total task runtime for
// all fourteen workloads on medium tasks.
func Fig2(cfg Config) []Fig2Row {
	set := cfg.newBatchSet()
	ids := make([]int, len(systemsOrder))
	for i, name := range systemsOrder {
		ids[i] = set.add(mustGet(name), world.Medium, 0, nil, multiagent.Options{})
	}
	set.run()
	var rows []Fig2Row
	for i, name := range systemsOrder {
		eps, traces := set.results(ids[i])
		s := metrics.Summarize(eps)
		rows = append(rows, Fig2Row{
			System:       name,
			MeanStepTime: s.MeanStepTime,
			ModuleShare:  s.ModuleShare,
			LLMShare:     s.LLMShare,
			TotalRuntime: s.MeanDuration,
			MeanSteps:    s.MeanSteps,
			SuccessRate:  s.SuccessRate,
			KindShares: map[string]float64{
				"plan":       kindShare(traces, "plan"),
				"message":    kindShare(traces, "message"),
				"act-select": kindShare(traces, "act-select"),
			},
		})
	}
	return rows
}

var systemsOrder = []string{
	"EmbodiedGPT", "JARVIS-1", "DaDu-E", "MP5", "DEPS",
	"MindAgent", "OLA", "COHERENT", "CMAS",
	"CoELA", "COMBO", "RoCo", "DMAS", "HMAS",
}

// MeanLLMShare averages the LLM latency share across rows (paper: 70.2%).
func MeanLLMShare(rows []Fig2Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.LLMShare
	}
	return sum / float64(len(rows))
}

// MeanModuleShare averages one module's share across rows.
func MeanModuleShare(rows []Fig2Row, m trace.Module) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.ModuleShare[m]
	}
	return sum / float64(len(rows))
}

// RenderFig2 formats both panels as text tables.
func RenderFig2(rows []Fig2Row) string {
	var b strings.Builder
	b.WriteString("Fig. 2a — per-step latency breakdown (medium tasks)\n")
	fmt.Fprintf(&b, "%-12s %9s  %6s %6s %6s %6s %6s %6s  %6s\n",
		"System", "s/step", "sense", "plan", "comm", "mem", "refl", "exec", "LLM%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %9.1f  %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%%  %5.1f%%\n",
			r.System, r.MeanStepTime.Seconds(),
			100*r.ModuleShare[trace.Sensing], 100*r.ModuleShare[trace.Planning],
			100*r.ModuleShare[trace.Comms], 100*r.ModuleShare[trace.Memory],
			100*r.ModuleShare[trace.Reflection], 100*r.ModuleShare[trace.Execution],
			100*r.LLMShare)
	}
	fmt.Fprintf(&b, "mean LLM-module latency share: %.1f%% (paper: 70.2%%)\n\n", 100*MeanLLMShare(rows))
	b.WriteString("Fig. 2b — total runtime per task\n")
	fmt.Fprintf(&b, "%-12s %10s %8s %9s\n", "System", "total", "steps", "success")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %9.1fm %8.1f %8.0f%%\n",
			r.System, r.TotalRuntime.Minutes(), r.MeanSteps, 100*r.SuccessRate)
	}
	return b.String()
}
