// Package planning assembles planning-module prompts from the standard
// context sections and fixes the output-token budgets used across the
// suite. Keeping assembly in one place is what makes the token-growth
// curves of Fig. 6 comparable across workloads.
package planning

import (
	"embench/internal/prompt"
)

// Canonical section names; Fig. 6's per-stream series key off these.
const (
	SectionSystem   = "system"
	SectionTask     = "task"
	SectionMemory   = "memory"
	SectionDialogue = "dialogue"
	SectionObs      = "observation"
)

// Output-token budgets for the standard call kinds.
const (
	PlanOutTokens      = 140 // a high-level plan with rationale
	MessageOutTokens   = 70  // one inter-agent message
	ReflectOutTokens   = 40  // a verdict with brief justification
	ActSelectOutTokens = 30  // CoELA-style action selection from a menu
	PrimitiveOutTokens = 25  // direct low-level action emission (w/o Exec)
)

// Context describes the variable parts of a planning prompt.
type Context struct {
	SystemTokens   int // role / instruction preamble
	TaskTokens     int // task description
	MemoryTokens   int // retrieved memory serialization
	DialogueTokens int // concatenated dialogue history
	ObsTokens      int // current observation rendering
}

// Build assembles the prompt. Memory and dialogue are droppable under
// context pressure (sliding-window truncation keeps the newest content);
// system, task and current observation are fixed.
func Build(c Context) prompt.Prompt {
	sections := make([]prompt.Section, 0, 5)
	if c.SystemTokens > 0 {
		sections = append(sections, prompt.Section{Name: SectionSystem, Tokens: c.SystemTokens})
	}
	if c.TaskTokens > 0 {
		sections = append(sections, prompt.Section{Name: SectionTask, Tokens: c.TaskTokens})
	}
	if c.MemoryTokens > 0 {
		sections = append(sections, prompt.Section{Name: SectionMemory, Tokens: c.MemoryTokens, Droppable: true})
	}
	if c.DialogueTokens > 0 {
		sections = append(sections, prompt.Section{Name: SectionDialogue, Tokens: c.DialogueTokens, Droppable: true})
	}
	if c.ObsTokens > 0 {
		sections = append(sections, prompt.Section{Name: SectionObs, Tokens: c.ObsTokens})
	}
	return prompt.New(sections...)
}
