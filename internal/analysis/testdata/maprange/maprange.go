// Fixture for the maprange analyzer, judged as a package inside
// embench/internal/serve (in scope). Positives select on iteration order;
// negatives either cannot observe it (bare range, sorted keys) or declare
// why it cannot leak.
package fixture

import "embench/internal/world"

// pickFirst is the PR 1 bug class: "first" depends on randomized order.
func pickFirst(m map[string]int) string {
	for k := range m { // want `range over map\[string\]int iterates in randomized order`
		return k
	}
	return ""
}

// emit leaks order into an output stream even without selecting.
func emit(m map[int]string) []string {
	var out []string
	for _, v := range m { // want `range over map\[int\]string iterates in randomized order`
		out = append(out, v)
	}
	return out
}

// argmax is order-dependent on ties: the winner is whichever key the
// iteration happens to visit first.
func argmax(m map[string]float64) string {
	best, bestV := "", 0.0
	for k, v := range m { // want `randomized order`
		if v > bestV {
			best, bestV = k, v
		}
	}
	return best
}

// count cannot observe which element the iteration is on: exempt.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// viaSortedKeys ranges over a slice, the sanctioned pattern.
func viaSortedKeys(m map[string]int) []string {
	var out []string
	for _, k := range world.SortedKeys(m) {
		out = append(out, k)
	}
	return out
}

// mirror performs keyed writes only; the result is independent of visit
// order, and the annotation records that argument.
func mirror(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m { //detlint:allow maprange keyed writes into a fresh map; the result is identical under any visit order
		out[k] = v
	}
	return out
}
