// Transport: a CoELA-style decentralized team carries objects through a
// multi-room house (the TDW-MAT-like task from the paper's motivation),
// comparing 2 vs 4 agents and showing the communication-redundancy
// statistic from Sec. V-D.
package main

import (
	"fmt"
	"log"

	"embench"
)

func main() {
	for _, agents := range []int{2, 4} {
		var mins, steps, usefulness float64
		succ := 0
		const episodes = 3
		for seed := uint64(0); seed < episodes; seed++ {
			out, err := embench.Run("CoELA", "medium", agents, seed)
			if err != nil {
				log.Fatal(err)
			}
			e := out.Episode
			if e.Success {
				succ++
			}
			mins += e.SimDuration.Minutes()
			steps += float64(e.Steps)
			usefulness += e.Messages.UsefulRate()
		}
		fmt.Printf("CoELA transport, %d agents: success %d/%d, %.1f steps, %.1f min, %.0f%% of messages useful\n",
			agents, succ, episodes, steps/episodes, mins/episodes, 100*usefulness/episodes)
	}
	fmt.Println("\nThe paper's Sec. V-D observation: most pre-generated messages are")
	fmt.Println("redundant; enable plan-then-communication (Rec. 8) to drop them.")
}
