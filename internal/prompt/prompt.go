// Package prompt models LLM prompt assembly and context management.
//
// Prompts are sequences of named sections (system preamble, task
// description, retrieved memory, dialogue history, current observation).
// Only token counts matter for the suite's measurements, but sections may
// carry text, in which case their size is computed with the tokenizer.
//
// The package also implements the two context-management optimizations the
// paper recommends: summarization-based compression (Rec. 6) and
// multiple-choice reformulation for small local models (Rec. 4).
package prompt

import (
	"embench/internal/tokenizer"
)

// Section is one contiguous region of a prompt.
type Section struct {
	Name      string
	Text      string // optional; Tokens wins when both are set
	Tokens    int    // explicit token count; if 0 and Text != "", counted from Text
	Droppable bool   // may be truncated away under context pressure
}

// Size reports the section's token count.
func (s Section) Size() int {
	if s.Tokens > 0 {
		return s.Tokens
	}
	return tokenizer.Count(s.Text)
}

// Digest returns a 64-bit content digest of the section: the identity seam
// KV/prefix caches key on when they identify prefixes by what a section
// SAYS rather than by its shape. The digest always folds the name and the
// effective token size (Size(), so an explicit Tokens override is part of
// the identity and cache token accounting can trust a digest match), plus
// the text when present — equal-size-different-content sections get
// distinct digests, and histories that reconverge to identical text digest
// equal again. Token-count-only sections (the suite's synthetic prompts
// have no text) thus digest exactly their shape, so both identity models
// agree wherever there is no content to tell apart.
func (s Section) Digest() uint64 {
	const (
		offset uint64 = 14695981039346656037
		prime  uint64 = 1099511628211
	)
	h := offset
	for i := 0; i < len(s.Name); i++ {
		h ^= uint64(s.Name[i])
		h *= prime
	}
	h ^= 0xFF // separator: ("ab", "c") must not collide with ("a", "bc")
	h *= prime
	sz := s.Size()
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(sz >> (8 * i)))
		h *= prime
	}
	for i := 0; i < len(s.Text); i++ {
		h ^= uint64(s.Text[i])
		h *= prime
	}
	return h
}

// Prompt is an ordered list of sections.
type Prompt struct {
	Sections []Section
}

// New builds a prompt from sections.
func New(sections ...Section) Prompt { return Prompt{Sections: sections} }

// Tokens reports the prompt's total size.
func (p Prompt) Tokens() int {
	n := 0
	for _, s := range p.Sections {
		n += s.Size()
	}
	return n
}

// Section returns the first section with the given name and whether it was
// found.
func (p Prompt) Section(name string) (Section, bool) {
	for _, s := range p.Sections {
		if s.Name == name {
			return s, true
		}
	}
	return Section{}, false
}

// Append returns a copy of p with extra sections appended.
func (p Prompt) Append(sections ...Section) Prompt {
	out := Prompt{Sections: make([]Section, 0, len(p.Sections)+len(sections))}
	out.Sections = append(out.Sections, p.Sections...)
	out.Sections = append(out.Sections, sections...)
	return out
}

// FitResult describes what truncation did to a prompt.
type FitResult struct {
	Prompt        Prompt
	DroppedTokens int
	Truncated     bool
}

// Fit shrinks the prompt to at most limit tokens by trimming droppable
// sections front-to-back (oldest context goes first, mirroring a sliding
// window). Non-droppable sections always survive, so the result can still
// exceed the limit if fixed content alone is too large — Truncated reports
// whether any trimming occurred, and the caller treats an over-limit result
// as a context-window overflow.
func Fit(p Prompt, limit int) FitResult {
	total := p.Tokens()
	if total <= limit {
		return FitResult{Prompt: p}
	}
	res := FitResult{Truncated: true}
	excess := total - limit
	out := make([]Section, 0, len(p.Sections))
	for _, s := range p.Sections {
		if excess > 0 && s.Droppable {
			sz := s.Size()
			cut := sz
			if cut > excess {
				cut = excess
			}
			excess -= cut
			res.DroppedTokens += cut
			if cut == sz {
				continue // section fully dropped
			}
			out = append(out, Section{Name: s.Name, Tokens: sz - cut, Droppable: true})
			continue
		}
		out = append(out, s)
	}
	res.Prompt = Prompt{Sections: out}
	return res
}

// Compressor implements context compression (paper Rec. 6): droppable
// sections larger than Threshold tokens are summarized down to
// Ratio * size (at least MinTokens), modelling dialogue-history
// summarization and repeated-pattern removal.
type Compressor struct {
	Ratio     float64 // e.g. 0.3 keeps 30% of the tokens
	Threshold int     // sections at or below this size pass through
	MinTokens int     // floor for a compressed section
}

// Compress returns the compressed prompt and the number of tokens removed.
func (c Compressor) Compress(p Prompt) (Prompt, int) {
	if c.Ratio <= 0 || c.Ratio >= 1 {
		return p, 0
	}
	min := c.MinTokens
	if min <= 0 {
		min = 8
	}
	removed := 0
	out := make([]Section, len(p.Sections))
	for i, s := range p.Sections {
		out[i] = s
		sz := s.Size()
		if !s.Droppable || sz <= c.Threshold {
			continue
		}
		kept := int(float64(sz) * c.Ratio)
		if kept < min {
			kept = min
		}
		if kept >= sz {
			continue
		}
		removed += sz - kept
		out[i] = Section{Name: s.Name + "(summary)", Tokens: kept, Droppable: true}
	}
	return Prompt{Sections: out}, removed
}

// MultipleChoice reformulates a free-form planning query into an n-way
// multiple-choice question (paper Rec. 4). It reports the extra prompt
// tokens spent enumerating the options, the reduced output budget (the
// model only emits a choice), and the error-rate discount applied to small
// models that no longer need to generate format-compliant plans.
type MultipleChoice struct {
	Options         int     // number of enumerated candidate plans
	TokensPerOption int     // prompt cost per option (default 24)
	ErrorDiscount   float64 // multiplicative factor on the model's base error, e.g. 0.45
}

// Apply rewrites the prompt and returns it with the new output-token budget.
func (mc MultipleChoice) Apply(p Prompt, outTokens int) (Prompt, int) {
	per := mc.TokensPerOption
	if per <= 0 {
		per = 24
	}
	n := mc.Options
	if n < 2 {
		n = 2
	}
	q := p.Append(Section{Name: "choices", Tokens: n * per})
	// Answer is a single option id plus brief justification.
	newOut := 8
	if outTokens < newOut {
		newOut = outTokens
	}
	return q, newOut
}
