package bench

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"embench/internal/llm"
	"embench/internal/metrics"
	"embench/internal/multiagent"
	"embench/internal/prompt"
	"embench/internal/rng"
	"embench/internal/runner"
	"embench/internal/serve"
	"embench/internal/world"
)

// Fig10 is the fleet-admission scale experiment: how far the shared-
// deployment simulation itself scales, now that admission is a heap merge
// with targeted wakeups, episode activation is arrival-driven, and fleets
// shard across independent endpoints. Unlike fig2–fig9, which report
// simulated quantities, fig10's headline numbers are WALL time — the cost
// of running the simulation — so its rows vary run to run; the serving
// statistics columns remain deterministic.
//
// Three panels:
//
//   - merge scale: synthetic scripted episode streams (no world
//     simulation, so the merge hot path is all that scales) driven through
//     a ShardedFleet, swept fleet size × shards × routing. A fixed total
//     request budget per cell makes per-admission cost the variable.
//   - before/after: the same streams through the heap merge and through
//     the seed linear-scan + broadcast reference (serve.NewLinearFleet),
//     single shard — the admission-complexity speedup this PR's rewrite
//     buys, the trajectory's acceptance number.
//   - closed loop: real CoELA episodes via runner.RunFleet at fleet sizes
//     past the activation threshold, exercising the bounded activation
//     pool end to end (capped at 256 episodes — real episodes cost real
//     time; the merge panels carry the scale story beyond that).

// Fig10MergeRow is one (fleet size, shards, routing) synthetic-merge cell.
type Fig10MergeRow struct {
	Episodes      int
	Shards        int
	Routing       serve.RoutingPolicy
	Requests      int
	WallMS        float64 // wall time to drive all requests through the merge
	AdmitPerSec   float64 // requests admitted per wall second
	MeanQueueWait time.Duration
	CacheHitRate  float64
}

// Fig10BaselineRow is one heap-vs-linear before/after sample.
type Fig10BaselineRow struct {
	Episodes int
	Requests int
	LinearMS float64 // seed linear-scan + broadcast merge
	HeapMS   float64 // heap merge + targeted wakeups
	Speedup  float64 // LinearMS / HeapMS
}

// Fig10ClosedRow is one real-episode (fleet size, shards) sample.
type Fig10ClosedRow struct {
	Episodes      int
	Shards        int
	WallMS        float64
	SuccessRate   float64
	MeanQueueWait time.Duration
	CacheHitRate  float64
}

// Fig10Report bundles the three panels.
type Fig10Report struct {
	Merge    []Fig10MergeRow
	Baseline []Fig10BaselineRow
	Closed   []Fig10ClosedRow
}

// Fig10FleetSizes is the default fleet-size axis (ISSUE/ROADMAP ladder).
var Fig10FleetSizes = []int{16, 64, 256, 1024, 2048}

// Fig10Shards is the default shard axis.
var Fig10Shards = []int{1, 4}

// fig10Routings: least-loaded is the merge-cost floor; cache-affinity adds
// the per-replica cache probes the memoized prompt keys were built for.
var fig10Routings = []serve.RoutingPolicy{serve.RouteLeastLoaded, serve.RouteCacheAffinity}

// fig10BaselineCap bounds the linear reference's fleet size: the broadcast
// storm is quadratic in practice, and past 1024 episodes a single
// before/after cell would dominate the whole experiment's runtime.
const fig10BaselineCap = 1024

// fig10ClosedCap bounds the real-episode panel.
const fig10ClosedCap = 256

// fig10MergeBudget and fig10BaselineBudget are total requests per cell:
// fixed budgets keep wall times comparable across fleet sizes (the same
// work, spread over more episodes) and bound the linear reference's cost.
const (
	fig10MergeBudget    = 16384
	fig10BaselineBudget = 8192
)

// fig10Steps spreads a request budget over n episodes, at least 4 calls
// each so every episode genuinely participates in the merge.
func fig10Steps(budget, n int) int {
	steps := budget / n
	if steps < 4 {
		steps = 4
	}
	return steps
}

// fig10Streams builds n synthetic episode request streams of `steps` calls
// each: a fleet-wide system/task preamble, a per-episode persona (the
// cache-affinity prize), and a growing history tail, with seeded arrival
// jitter so admission ties and reorderings occur. Pure function of its
// arguments.
func fig10Streams(n, steps int, seed uint64) [][]llm.Call {
	// The per-episode step period scales with fleet size so the offered
	// load stays near the 4-replica deployment's capacity at every N —
	// queueing is real but bounded, and wall time measures merge cost,
	// not a runaway backlog. History growth wraps so prompt sizes stay
	// comparable whether a budget is spread over 4 or 1024 steps.
	stepPeriod := time.Duration(n) * 12 * time.Second
	const stagger = 40 * time.Millisecond
	jitter := rng.New(seed).NewStream(fmt.Sprintf("fig10/streams/n%d", n))
	calls := make([][]llm.Call, n)
	for e := 0; e < n; e++ {
		calls[e] = make([]llm.Call, steps)
		persona := prompt.Section{Name: fmt.Sprintf("persona-e%d", e), Tokens: 600}
		for s := 0; s < steps; s++ {
			arrive := time.Duration(s)*stepPeriod +
				time.Duration(e)*stagger +
				time.Duration(jitter.Range(0, 5000))*time.Millisecond
			calls[e][s] = llm.Call{
				Agent:   fmt.Sprintf("e%d", e),
				Arrival: arrive,
				Prompt: prompt.New(
					prompt.Section{Name: "system", Tokens: 220},
					prompt.Section{Name: "task", Tokens: 90},
					persona,
					prompt.Section{Name: "hist", Tokens: 60 + 30*(s%32), Droppable: true},
				),
				OutTokens: 120,
			}
		}
	}
	return calls
}

// fig10Drive runs every stream's calls through its fleet client from its
// own goroutine — the serve-layer equivalent of runner.RunFleet's episode
// fan-out — and reports the wall time the merge took to drain them.
func fig10Drive(client func(int) *serve.FleetClient, calls [][]llm.Call) float64 {
	//detlint:allow wallclock harness wall-timing: this measures real drain throughput
	start := time.Now()
	var wg sync.WaitGroup
	for e := range calls {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			c := client(e)
			defer c.Finish()
			for _, call := range calls[e] {
				c.Serve(call)
			}
		}(e)
	}
	wg.Wait()
	//detlint:allow wallclock harness wall-timing: this measures real drain throughput
	return float64(time.Since(start).Microseconds()) / 1000
}

// fig10Serve is the endpoint shape of every panel.
func fig10Serve(routing serve.RoutingPolicy) serve.Config {
	return serve.Config{
		Profile: llm.GPT4, Replicas: 4, Routing: routing,
		MaxBatch: 4, MaxWait: 1500 * time.Millisecond, CacheEntries: 512,
	}
}

// Fig10 sweeps all three panels. cfg.FleetSizes and cfg.FleetShards
// override the axes (the CLI's -fleet-sizes / -serve-shards).
func Fig10(cfg Config) Fig10Report {
	sizes := cfg.FleetSizes
	if len(sizes) == 0 {
		sizes = Fig10FleetSizes
	}
	shards := cfg.FleetShards
	if len(shards) == 0 {
		shards = Fig10Shards
	}
	var rep Fig10Report

	// Merge scale sweep.
	for _, n := range sizes {
		steps := fig10Steps(fig10MergeBudget, n)
		calls := fig10Streams(n, steps, cfg.Seed)
		for _, k := range shards {
			for _, routing := range fig10Routings {
				sf := serve.NewShardedFleet(fig10Serve(routing), n, k)
				wall := fig10Drive(sf.Client, calls)
				stats := sf.Stats()
				rep.Merge = append(rep.Merge, Fig10MergeRow{
					Episodes: n, Shards: sf.Shards(), Routing: routing,
					Requests: stats.Requests, WallMS: wall,
					AdmitPerSec:   float64(stats.Requests) / (wall / 1000),
					MeanQueueWait: stats.MeanQueueWait(),
					CacheHitRate:  stats.CacheHitRate(),
				})
			}
		}
	}

	// Before/after: heap merge vs the seed linear-scan reference.
	for _, n := range sizes {
		if n > fig10BaselineCap {
			continue
		}
		steps := fig10Steps(fig10BaselineBudget, n)
		calls := fig10Streams(n, steps, cfg.Seed)
		sc := fig10Serve(serve.RouteLeastLoaded)
		heap := serve.NewFleet(sc, n)
		heapMS := fig10Drive(heap.Client, calls)
		lin := serve.NewLinearFleet(sc, n)
		linMS := fig10Drive(lin.Client, calls)
		speedup := 0.0
		if heapMS > 0 {
			speedup = linMS / heapMS
		}
		rep.Baseline = append(rep.Baseline, Fig10BaselineRow{
			Episodes: n, Requests: n * steps,
			LinearMS: linMS, HeapMS: heapMS, Speedup: speedup,
		})
	}

	// Closed loop: real episodes through the activation-gated runner.
	w := mustGet(fig9System)
	for _, n := range sizes {
		if n > fig10ClosedCap {
			continue
		}
		for _, k := range shards {
			g := runner.FleetGroup{
				Specs: runner.Specs(w, world.Medium, 2, nil,
					multiagent.Options{Parallel: true}, n, cfg.Seed),
				Serve:  fig10Serve(serve.RouteLeastLoaded),
				Shards: k,
			}
			//detlint:allow wallclock harness wall-timing: closed-loop fleet wall time
			start := time.Now()
			res, err := runner.RunFleet(context.Background(), g)
			if err != nil {
				panic("bench: fig10 closed loop: " + err.Error())
			}
			//detlint:allow wallclock harness wall-timing: closed-loop fleet wall time
			wall := float64(time.Since(start).Microseconds()) / 1000
			s := metrics.Summarize(res.Episodes)
			rep.Closed = append(rep.Closed, Fig10ClosedRow{
				Episodes: n, Shards: k, WallMS: wall,
				SuccessRate:   s.SuccessRate,
				MeanQueueWait: res.Serving.MeanQueueWait(),
				CacheHitRate:  res.Serving.CacheHitRate(),
			})
		}
	}
	return rep
}

// Fig10Metrics flattens the report's perf evidence for the trajectory
// record: per-size heap/linear wall times and speedups, plus merge-panel
// admission rates at the largest swept size (the full sweep stays in the
// rendered report; the trajectory only needs the scale frontier).
func Fig10Metrics(rep Fig10Report) map[string]float64 {
	m := make(map[string]float64)
	for _, r := range rep.Baseline {
		m[fmt.Sprintf("fleet%d_linear_ms", r.Episodes)] = r.LinearMS
		m[fmt.Sprintf("fleet%d_heap_ms", r.Episodes)] = r.HeapMS
		m[fmt.Sprintf("fleet%d_speedup", r.Episodes)] = r.Speedup
	}
	maxN := 0
	for _, r := range rep.Merge {
		if r.Episodes > maxN {
			maxN = r.Episodes
		}
	}
	for _, r := range rep.Merge {
		if r.Episodes != maxN {
			continue
		}
		key := fmt.Sprintf("merge%d_shards%d_%s_admit_per_sec", r.Episodes, r.Shards, r.Routing)
		m[key] = r.AdmitPerSec
	}
	return m
}

// RenderFig10 formats all three panels.
func RenderFig10(rep Fig10Report) string {
	var b strings.Builder
	b.WriteString("Fig. 10 — fleet admission at scale (wall time of the simulation itself)\n")
	b.WriteString("Fig. 10a — merge scale: synthetic episode streams, fixed request budget per cell\n")
	fmt.Fprintf(&b, "%8s %7s %-16s %9s %10s %10s %8s %6s\n",
		"episodes", "shards", "routing", "requests", "wall-ms", "admit/s", "q-wait", "cache")
	for _, r := range rep.Merge {
		fmt.Fprintf(&b, "%8d %7d %-16s %9d %10.1f %10.0f %7.1fs %5.0f%%\n",
			r.Episodes, r.Shards, r.Routing, r.Requests, r.WallMS,
			r.AdmitPerSec, r.MeanQueueWait.Seconds(), 100*r.CacheHitRate)
	}
	b.WriteString("\nFig. 10b — admission before/after: heap merge + targeted wakeups vs seed linear scan + broadcast (1 shard)\n")
	fmt.Fprintf(&b, "%8s %9s %11s %9s %9s\n",
		"episodes", "requests", "linear-ms", "heap-ms", "speedup")
	for _, r := range rep.Baseline {
		fmt.Fprintf(&b, "%8d %9d %11.1f %9.1f %8.1fx\n",
			r.Episodes, r.Requests, r.LinearMS, r.HeapMS, r.Speedup)
	}
	b.WriteString("\nFig. 10c — closed loop: real CoELA episodes through the activation-gated runner (2 agents/episode)\n")
	fmt.Fprintf(&b, "%8s %7s %10s %9s %8s %6s\n",
		"episodes", "shards", "wall-ms", "success", "q-wait", "cache")
	for _, r := range rep.Closed {
		fmt.Fprintf(&b, "%8d %7d %10.1f %8.0f%% %7.1fs %5.0f%%\n",
			r.Episodes, r.Shards, r.WallMS, 100*r.SuccessRate,
			r.MeanQueueWait.Seconds(), 100*r.CacheHitRate)
	}
	return b.String()
}
