package llm

import (
	"testing"
	"time"

	"embench/internal/prompt"
	"embench/internal/rng"
	"embench/internal/simclock"
	"embench/internal/trace"
)

func testClient(p Profile, tr *trace.Trace, clock *simclock.Clock) *Client {
	return NewClient(p, rng.New(1).NewStream("llm"), clock, tr)
}

func promptOf(tokens int) prompt.Prompt {
	return prompt.New(prompt.Section{Name: "body", Tokens: tokens, Droppable: true})
}

func TestProfileLatency(t *testing.T) {
	p := Profile{Overhead: time.Second, PrefillRate: 1000, DecodeRate: 10}
	got := p.Latency(2000, 50)
	want := time.Second + 2*time.Second + 5*time.Second
	if got != want {
		t.Fatalf("Latency = %v, want %v", got, want)
	}
}

func TestProfileFixedLatency(t *testing.T) {
	p := Profile{FixedLatency: 120 * time.Millisecond, PrefillRate: 1, DecodeRate: 1}
	if p.Latency(99999, 99999) != 120*time.Millisecond {
		t.Fatal("FixedLatency should override token model")
	}
}

func TestGPT4StepLatencyInPaperBand(t *testing.T) {
	// A typical planning call (≈1800 prompt, 150 output tokens) should cost
	// on the order of 10s — the paper reports 10–30 s per step with one to
	// three such calls.
	lat := GPT4.Latency(1800, 150)
	if lat < 5*time.Second || lat > 20*time.Second {
		t.Fatalf("GPT-4 planning call latency = %v, want 5–20s", lat)
	}
}

func TestLocalFasterPerCall(t *testing.T) {
	// Paper Takeaway 3: local models have faster per-inference time.
	if Llama3_8B.Latency(1500, 150) >= GPT4.Latency(1500, 150) {
		t.Fatal("Llama-3-8B per-call latency should beat GPT-4")
	}
}

func TestLocalLowerCapability(t *testing.T) {
	if Llama3_8B.BaseError() <= GPT4.BaseError() {
		t.Fatal("Llama-3-8B should have higher base error than GPT-4")
	}
}

func TestProfilesRegistry(t *testing.T) {
	for name, p := range Profiles {
		if p.Name != name {
			t.Errorf("profile %q registered under %q", p.Name, name)
		}
		if p.Capability <= 0 || p.Capability > 1 {
			t.Errorf("profile %q capability out of range: %v", name, p.Capability)
		}
		if p.ContextWindow <= 0 {
			t.Errorf("profile %q missing context window", name)
		}
	}
	if len(Profiles) < 9 {
		t.Fatalf("expected ≥9 profiles, got %d", len(Profiles))
	}
}

func TestCompleteReturnsGoodWhenNoError(t *testing.T) {
	p := GPT4
	p.Capability = 1 // base error 0
	p.JitterFrac = 0
	c := testClient(p, nil, nil)
	resp := c.Complete(Request{
		Prompt: promptOf(100), OutTokens: 20,
		Good: "correct", Corruptions: []any{"wrong"},
	})
	// pErr = dilution only = 0.55*(120/8192)^2 ≈ 0.0001; over one draw this
	// is effectively never taken with the fixed seed.
	if resp.Corrupted || resp.Decision != "correct" {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Latency <= 0 {
		t.Fatal("latency must be positive")
	}
}

func TestCompleteCorruptsAtHighError(t *testing.T) {
	p := GPT4
	p.Capability = 0 // base error 0.25
	c := testClient(p, nil, nil)
	corrupted := 0
	for i := 0; i < 400; i++ {
		resp := c.Complete(Request{
			Prompt: promptOf(100), OutTokens: 10,
			Good: "good", Corruptions: []any{"bad1", "bad2"},
			Complexity: 0.5, // pErr ≈ 0.75
		})
		if resp.Corrupted {
			if resp.Decision != "bad1" && resp.Decision != "bad2" {
				t.Fatalf("corruption returned unexpected decision %v", resp.Decision)
			}
			corrupted++
		}
	}
	if corrupted < 220 || corrupted > 360 {
		t.Fatalf("corruption count = %d/400, want ≈300", corrupted)
	}
}

func TestCompleteNeverCorruptsWithoutCandidates(t *testing.T) {
	p := GPT4
	p.Capability = 0
	c := testClient(p, nil, nil)
	for i := 0; i < 50; i++ {
		resp := c.Complete(Request{Prompt: promptOf(100), Good: "only", Complexity: 0.9})
		if resp.Corrupted || resp.Decision != "only" {
			t.Fatal("corrupted without candidates")
		}
	}
}

func TestErrorProbabilityMonotoneInPromptSize(t *testing.T) {
	c := testClient(GPT4, nil, nil)
	small := c.ErrorProbability(500, false, Request{})
	large := c.ErrorProbability(6000, false, Request{})
	if large <= small {
		t.Fatalf("dilution not monotone: %v vs %v", small, large)
	}
}

func TestErrorProbabilityTruncationPenalty(t *testing.T) {
	c := testClient(GPT4, nil, nil)
	base := c.ErrorProbability(1000, false, Request{})
	trunc := c.ErrorProbability(1000, true, Request{})
	if trunc-base < 0.17 || trunc-base > 0.19 {
		t.Fatalf("truncation penalty = %v", trunc-base)
	}
}

func TestErrorProbabilityStalenessAndComplexity(t *testing.T) {
	c := testClient(GPT4, nil, nil)
	p0 := c.ErrorProbability(100, false, Request{})
	p1 := c.ErrorProbability(100, false, Request{Staleness: 0.4})
	if p1-p0 < 0.19 || p1-p0 > 0.21 {
		t.Fatalf("staleness contribution = %v, want 0.2", p1-p0)
	}
	p2 := c.ErrorProbability(100, false, Request{Complexity: 0.3})
	if p2-p0 < 0.29 || p2-p0 > 0.31 {
		t.Fatalf("complexity contribution = %v, want 0.3", p2-p0)
	}
}

func TestErrorProbabilityClamped(t *testing.T) {
	c := testClient(GPT4, nil, nil)
	if p := c.ErrorProbability(100, true, Request{Complexity: 5}); p != 0.98 {
		t.Fatalf("pErr not clamped: %v", p)
	}
}

func TestErrorDiscount(t *testing.T) {
	p := GPT4
	p.Capability = 0.5
	c := testClient(p, nil, nil)
	full := c.ErrorProbability(0, false, Request{})
	half := c.ErrorProbability(0, false, Request{ErrorDiscount: 0.5})
	if half >= full || half < full*0.49 {
		t.Fatalf("discount not applied: %v vs %v", half, full)
	}
}

func TestCompleteChargesClockAndTrace(t *testing.T) {
	clock := simclock.New()
	tr := trace.New()
	c := testClient(GPT4, tr, clock)
	resp := c.Complete(Request{
		Agent: "a0", Module: trace.Planning, Step: 3, Kind: "plan",
		Prompt: promptOf(1000), OutTokens: 100, Good: 1,
	})
	if clock.Now() != resp.Latency {
		t.Fatalf("clock = %v, latency = %v", clock.Now(), resp.Latency)
	}
	if len(tr.Events) != 1 {
		t.Fatalf("trace events = %d", len(tr.Events))
	}
	ev := tr.Events[0]
	if ev.Module != trace.Planning || !ev.LLMCall || ev.Step != 3 || ev.PromptTokens != 1000 {
		t.Fatalf("event = %+v", ev)
	}
}

func TestCompleteTruncatesToWindow(t *testing.T) {
	p := GPT4
	p.ContextWindow = 500
	p.JitterFrac = 0
	c := testClient(p, nil, nil)
	resp := c.Complete(Request{Prompt: promptOf(5000), OutTokens: 100, Good: 1})
	if !resp.Truncated {
		t.Fatal("expected truncation")
	}
	if resp.PromptTokens > 400 {
		t.Fatalf("prompt not fitted: %d tokens", resp.PromptTokens)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Response {
		c := testClient(GPT4, nil, nil)
		var out []Response
		for i := 0; i < 20; i++ {
			out = append(out, c.Complete(Request{
				Prompt: promptOf(1000 + i*100), OutTokens: 50,
				Good: "g", Corruptions: []any{"b"}, Complexity: 0.2,
			}))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at call %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCompleteBatchSharesOverhead(t *testing.T) {
	p := GPT4
	p.JitterFrac = 0
	clock := simclock.New()
	c := testClient(p, nil, clock)
	reqs := make([]Request, 4)
	for i := range reqs {
		reqs[i] = Request{Prompt: promptOf(1000), OutTokens: 100, Good: i}
	}
	resps := c.CompleteBatch(reqs)
	if len(resps) != 4 {
		t.Fatalf("responses = %d", len(resps))
	}
	batched := clock.Now()
	seq := 4 * p.Latency(1000, 100)
	if batched >= seq {
		t.Fatalf("batching slower than sequential: %v vs %v", batched, seq)
	}
}

func TestCompleteBatchSingleFallsBack(t *testing.T) {
	clock := simclock.New()
	c := testClient(GPT4, nil, clock)
	resps := c.CompleteBatch([]Request{{Prompt: promptOf(100), OutTokens: 10, Good: "x"}})
	if len(resps) != 1 || resps[0].Decision != "x" {
		t.Fatalf("resps = %+v", resps)
	}
}

func TestCompleteBatchEmpty(t *testing.T) {
	c := testClient(GPT4, nil, nil)
	if got := c.CompleteBatch(nil); got != nil {
		t.Fatal("empty batch should return nil")
	}
}

func TestCompleteBatchTraceAdditive(t *testing.T) {
	p := GPT4
	p.JitterFrac = 0
	clock := simclock.New()
	tr := trace.New()
	c := testClient(p, tr, clock)
	reqs := make([]Request, 3)
	for i := range reqs {
		reqs[i] = Request{Module: trace.Planning, Prompt: promptOf(500), OutTokens: 50, Good: i}
	}
	c.CompleteBatch(reqs)
	if len(tr.Events) != 3 {
		t.Fatalf("trace events = %d", len(tr.Events))
	}
	if d := tr.Total() - clock.Now(); d > time.Millisecond || d < -time.Millisecond {
		t.Fatalf("trace total %v != clock %v", tr.Total(), clock.Now())
	}
}

func TestBatchSpeedup(t *testing.T) {
	s := BatchSpeedup(GPT4, 6, 1200, 120)
	if s <= 1.5 {
		t.Fatalf("BatchSpeedup = %v, want > 1.5", s)
	}
	if BatchSpeedup(GPT4, 0, 100, 10) != 1 {
		t.Fatal("speedup for n=0 should be 1")
	}
}
