package core

import (
	"fmt"
	"testing"

	"embench/internal/llm"
	"embench/internal/modules/execution"
	"embench/internal/modules/memory"
	"embench/internal/modules/sensing"
	"embench/internal/prompt"
	"embench/internal/rng"
	"embench/internal/simclock"
	"embench/internal/trace"
)

// stubGoal is a trivial subgoal.
type stubGoal struct{ name string }

func (s stubGoal) ID() string       { return s.name }
func (s stubGoal) Describe() string { return "do " + s.name }

// stubDomain is a minimal, scriptable Domain for unit-testing the agent
// pipeline: a counter task where the oracle always proposes "advance" and
// corrupted decisions are "wrong" (which fail on execution).
type stubDomain struct {
	step        int
	progress    int
	target      int
	horizon     int
	agents      int
	staleness   float64
	execFail    bool // force execution failures
	corrections int
	claims      int
}

func newStub() *stubDomain { return &stubDomain{target: 5, horizon: 20, agents: 1} }

func (d *stubDomain) Name() string      { return "stub" }
func (d *stubDomain) Agents() int       { return d.agents }
func (d *stubDomain) MaxSteps() int     { return d.horizon }
func (d *stubDomain) Step() int         { return d.step }
func (d *stubDomain) Done() bool        { return d.Success() || d.step >= d.horizon }
func (d *stubDomain) Success() bool     { return d.progress >= d.target }
func (d *stubDomain) Progress() float64 { return float64(d.progress) / float64(d.target) }
func (d *stubDomain) Tick()             { d.step++ }

func (d *stubDomain) StaticRecords() []memory.Record {
	return []memory.Record{{Key: "map", Payload: "layout", Tokens: 20, Static: true}}
}

func (d *stubDomain) Observe(agent int) Observation {
	rec := memory.Record{
		Step: d.step, Kind: memory.Observation, Key: "progress",
		Payload: d.progress, Tokens: 10,
	}
	return Observation{Records: []memory.Record{rec}, Entities: 1, Tokens: 10}
}

func (d *stubDomain) BuildBelief(agent int, recs []memory.Record) Belief {
	return Belief{Payload: len(recs), Staleness: d.staleness}
}

func (d *stubDomain) Propose(agent int, b Belief) Proposal {
	return Proposal{
		Good:        stubGoal{"advance"},
		Corruptions: []Subgoal{stubGoal{"wrong"}},
	}
}

func (d *stubDomain) Execute(agent int, g Subgoal) execution.Result {
	if d.execFail || g.ID() != "advance" {
		return execution.Result{Note: "failed", Effort: execution.Effort{Primitives: 1}}
	}
	d.progress++
	return execution.Result{Achieved: true, Effort: execution.Effort{Primitives: 1}}
}

func (d *stubDomain) ClaimRecord(agent int, g Subgoal) (memory.Record, bool) {
	d.claims++
	return memory.Record{Key: fmt.Sprintf("claim:%d", agent), Payload: g.ID(), Tokens: 4}, true
}

func (d *stubDomain) CorrectionRecords(agent int, g Subgoal, res execution.Result) []memory.Record {
	d.corrections++
	return []memory.Record{{Key: "corrected:" + g.ID(), Payload: true, Tokens: 4}}
}

var (
	_ Domain    = (*stubDomain)(nil)
	_ Claimer   = (*stubDomain)(nil)
	_ Corrector = (*stubDomain)(nil)
)

func perfectPlanner() llm.Profile {
	p := llm.GPT4
	p.Capability = 1
	p.JitterFrac = 0
	return p
}

func newTestAgent(t *testing.T, cfg AgentConfig) (*Agent, *simclock.Clock, *trace.Trace) {
	t.Helper()
	clock := simclock.New()
	tr := trace.New()
	return NewAgent(0, cfg, rng.New(7), clock, tr), clock, tr
}

func TestConfigDefaults(t *testing.T) {
	cfg := AgentConfig{Planner: llm.GPT4}.withDefaults()
	if cfg.SystemTokens != 220 || cfg.TaskTokens != 90 {
		t.Fatalf("prompt defaults wrong: %d/%d", cfg.SystemTokens, cfg.TaskTokens)
	}
	if cfg.PlanHorizon != 1 || cfg.PlanOutTokens != 140 {
		t.Fatalf("plan defaults wrong: %d/%d", cfg.PlanHorizon, cfg.PlanOutTokens)
	}
	dual := AgentConfig{Planner: llm.GPT4, Memory: MemoryConfig{Dual: true}}.withDefaults()
	if dual.Memory.ShortWindow != 6 || dual.Memory.LongBudget != 160 {
		t.Fatalf("dual defaults wrong: %+v", dual.Memory)
	}
}

func TestComplexityOrdering(t *testing.T) {
	if CentralizedComplexity(1) != 0 || DecentralizedComplexity(1) != 0 {
		t.Fatal("solo teams have no joint complexity")
	}
	for n := 2; n <= 12; n++ {
		if CentralizedComplexity(n) <= DecentralizedComplexity(n) {
			t.Fatalf("central complexity should dominate at n=%d", n)
		}
	}
	if CentralizedComplexity(12) <= CentralizedComplexity(4) {
		t.Fatal("complexity should grow with team size")
	}
}

func TestJointID(t *testing.T) {
	j := &Joint{Assign: map[int]Subgoal{0: stubGoal{"a"}, 1: nil}}
	id := j.ID()
	if id != "joint|a|idle" {
		t.Fatalf("Joint ID = %q", id)
	}
	if j.Describe() != id {
		t.Fatal("Describe should mirror ID")
	}
}

func TestAgentSenseChargesLatencyAndTrace(t *testing.T) {
	b := sensing.MaskRCNN
	a, clock, tr := newTestAgent(t, AgentConfig{Planner: perfectPlanner(), Sensing: &b, Execution: true})
	d := newStub()
	obs := a.Sense(d, 0)
	if clock.Now() <= 0 {
		t.Fatal("sensing charged no latency")
	}
	if len(tr.Events) != 1 || tr.Events[0].Module != trace.Sensing {
		t.Fatalf("trace = %+v", tr.Events)
	}
	if len(obs.Records) > 1 {
		t.Fatal("stub emits one record")
	}
}

func TestAgentSenseNilBackendFree(t *testing.T) {
	a, clock, tr := newTestAgent(t, AgentConfig{Planner: perfectPlanner(), Execution: true})
	a.Sense(newStub(), 0)
	if clock.Now() != 0 || len(tr.Events) != 0 {
		t.Fatal("nil sensing backend should cost nothing")
	}
}

func TestAgentSenseDropsMissedEntities(t *testing.T) {
	lossy := sensing.Backend{Name: "lossy", Base: 1, MissProb: 1}
	a, _, _ := newTestAgent(t, AgentConfig{Planner: perfectPlanner(), Sensing: &lossy, Execution: true})
	obs := a.Sense(newStub(), 0)
	if len(obs.Records) != 0 {
		t.Fatal("MissProb=1 should drop all non-static records")
	}
}

func TestAgentRetrieveChargesMemoryModule(t *testing.T) {
	a, clock, tr := newTestAgent(t, AgentConfig{
		Planner: perfectPlanner(), Memory: MemoryConfig{Capacity: 8}, Execution: true,
	})
	a.Store.Add(memory.Record{Step: 0, Key: "x", Tokens: 5})
	ret := a.Retrieve(0)
	if len(ret.Records) != 1 {
		t.Fatalf("retrieved %d records", len(ret.Records))
	}
	if clock.Now() == 0 || len(tr.Events) != 1 || tr.Events[0].Module != trace.Memory {
		t.Fatal("retrieval accounting missing")
	}
}

func TestAgentRetrieveDisabledMemory(t *testing.T) {
	a, clock, _ := newTestAgent(t, AgentConfig{Planner: perfectPlanner(), Execution: true})
	ret := a.Retrieve(0)
	if len(ret.Records) != 0 || clock.Now() != 0 {
		t.Fatal("disabled memory should be free and empty")
	}
}

func TestAgentPlanProducesOracleDecision(t *testing.T) {
	a, _, tr := newTestAgent(t, AgentConfig{Planner: perfectPlanner(), Execution: true})
	d := newStub()
	pr := a.Plan(d, 0, memory.Retrieval{}, d.Observe(0), nil)
	if !pr.UsedLLM || pr.Subgoal == nil || pr.Subgoal.ID() != "advance" {
		t.Fatalf("plan = %+v", pr)
	}
	found := false
	for _, ev := range tr.Events {
		if ev.Module == trace.Planning && ev.LLMCall {
			found = true
		}
	}
	if !found {
		t.Fatal("no planning LLM event")
	}
}

func TestAgentPlanHorizonSkipsLLM(t *testing.T) {
	a, _, tr := newTestAgent(t, AgentConfig{Planner: perfectPlanner(), Execution: true, PlanHorizon: 3})
	d := newStub()
	calls := func() int {
		n := 0
		for _, ev := range tr.Events {
			if ev.Module == trace.Planning && ev.LLMCall {
				n++
			}
		}
		return n
	}
	for step := 0; step < 6; step++ {
		pr := a.Plan(d, step, memory.Retrieval{}, d.Observe(0), nil)
		if pr.Subgoal == nil {
			t.Fatal("nil subgoal under plan horizon")
		}
	}
	if got := calls(); got != 2 {
		t.Fatalf("planning LLM calls = %d, want 2 (one per 3 steps)", got)
	}
}

func TestAgentActSelectAddsExecutionLLM(t *testing.T) {
	a, _, tr := newTestAgent(t, AgentConfig{Planner: perfectPlanner(), Execution: true, ActSelect: true})
	d := newStub()
	a.Plan(d, 0, memory.Retrieval{}, d.Observe(0), nil)
	found := false
	for _, ev := range tr.Events {
		if ev.Module == trace.Execution && ev.Kind == "act-select" && ev.LLMCall {
			found = true
		}
	}
	if !found {
		t.Fatal("act-select call missing")
	}
}

func TestAgentExecuteChargesEffort(t *testing.T) {
	a, clock, tr := newTestAgent(t, AgentConfig{Planner: perfectPlanner(), Execution: true})
	d := newStub()
	res := a.Execute(d, 0, PlanResult{Subgoal: stubGoal{"advance"}})
	if !res.Achieved || d.progress != 1 {
		t.Fatalf("execute failed: %+v", res)
	}
	if clock.Now() == 0 {
		t.Fatal("execution latency not charged")
	}
	if tr.Events[len(tr.Events)-1].Module != trace.Execution {
		t.Fatal("execution event missing")
	}
}

func TestAgentExecuteNilSubgoal(t *testing.T) {
	a, _, _ := newTestAgent(t, AgentConfig{Planner: perfectPlanner(), Execution: true})
	if a.Execute(newStub(), 0, PlanResult{}).Achieved {
		t.Fatal("nil subgoal should not achieve")
	}
}

func TestAgentExecuteWithoutModuleEmitsPrimitives(t *testing.T) {
	a, _, tr := newTestAgent(t, AgentConfig{Planner: perfectPlanner(), Execution: false})
	d := newStub()
	a.Execute(d, 0, PlanResult{
		Subgoal:  stubGoal{"advance"},
		Proposal: Proposal{Good: stubGoal{"advance"}, Corruptions: []Subgoal{stubGoal{"wrong"}}},
	})
	prims := 0
	for _, ev := range tr.Events {
		if ev.Kind == "primitive" && ev.LLMCall {
			prims++
		}
	}
	if prims != primitiveCalls {
		t.Fatalf("primitive LLM calls = %d, want %d", prims, primitiveCalls)
	}
}

func TestReflectionCorrectsAndUnsticks(t *testing.T) {
	refl := perfectPlanner()
	a, _, _ := newTestAgent(t, AgentConfig{
		Planner: perfectPlanner(), Reflector: &refl,
		Memory: MemoryConfig{Capacity: 8}, Execution: true,
	})
	d := newStub()
	pr := PlanResult{Subgoal: stubGoal{"wrong"}, Corrupted: true}
	res := execution.Result{Achieved: false}
	a.Reflect(d, 0, pr, res)
	if a.lastFailed != nil {
		t.Fatal("reflection should clear the failure loop")
	}
	if d.corrections != 1 {
		t.Fatalf("corrections = %d, want 1", d.corrections)
	}
	ret := a.Store.Retrieve(0)
	foundCorrection := false
	for _, r := range ret.Records {
		if r.Key == "corrected:wrong" {
			foundCorrection = true
		}
	}
	if !foundCorrection {
		t.Fatal("correction record not stored")
	}
}

func TestNoReflectionSticksOnFailure(t *testing.T) {
	a, _, _ := newTestAgent(t, AgentConfig{Planner: perfectPlanner(), Execution: true})
	d := newStub()
	pr := PlanResult{Subgoal: stubGoal{"wrong"}, Corrupted: true}
	a.Reflect(d, 0, pr, execution.Result{Achieved: false})
	if a.lastFailed == nil || a.lastFailed.ID() != "wrong" {
		t.Fatal("failure should stick without reflection")
	}
	// Success clears it.
	a.Reflect(d, 1, PlanResult{Subgoal: stubGoal{"advance"}}, execution.Result{Achieved: true})
	if a.lastFailed != nil {
		t.Fatal("success should clear the loop")
	}
}

func TestPersistenceLoopRepeatsFailedPlan(t *testing.T) {
	// Without reflection, after a failure the next plans frequently repeat
	// the failed subgoal.
	a, _, _ := newTestAgent(t, AgentConfig{Planner: perfectPlanner(), Execution: true})
	d := newStub()
	a.lastFailed = stubGoal{"wrong"}
	repeats := 0
	const n = 200
	for i := 0; i < n; i++ {
		pr := a.Plan(d, i, memory.Retrieval{}, d.Observe(0), nil)
		if pr.Subgoal.ID() == "wrong" {
			repeats++
		}
		a.lastFailed = stubGoal{"wrong"} // re-arm
	}
	rate := float64(repeats) / n
	if rate < persistProb-0.1 || rate > persistProb+0.1 {
		t.Fatalf("persistence rate = %.2f, want ≈%.2f", rate, persistProb)
	}
}

func TestComposeMessageSharesFirsthandOnly(t *testing.T) {
	comm := perfectPlanner()
	a, _, _ := newTestAgent(t, AgentConfig{
		Planner: perfectPlanner(), Comms: &comm,
		Memory: MemoryConfig{Capacity: 8}, Execution: true,
	})
	a.Store.Add(memory.Record{Step: 0, Kind: memory.Observation, Key: "obj:1", Tokens: 5})
	a.Store.Add(memory.Record{Step: 0, Kind: memory.Dialogue, Key: "obj:2", Tokens: 5})
	msg, ok := a.ComposeMessage(0, Observation{}, 0)
	if !ok {
		t.Fatal("no message composed")
	}
	for _, r := range msg.Records {
		if r.Key == "obj:2" {
			t.Fatal("received dialogue must not be re-broadcast")
		}
	}
	if len(msg.Records) != 1 {
		t.Fatalf("message records = %d, want 1 firsthand", len(msg.Records))
	}
}

func TestComposeMessageWithoutComms(t *testing.T) {
	a, _, _ := newTestAgent(t, AgentConfig{Planner: perfectPlanner(), Execution: true})
	if _, ok := a.ComposeMessage(0, Observation{}, 0); ok {
		t.Fatal("agent without comms module composed a message")
	}
}

func TestRememberStoresActionAndClaim(t *testing.T) {
	a, _, _ := newTestAgent(t, AgentConfig{
		Planner: perfectPlanner(), Memory: MemoryConfig{Capacity: 8}, Execution: true,
	})
	d := newStub()
	pr := PlanResult{Subgoal: stubGoal{"advance"}}
	a.Remember(d, 0, d.Observe(0), nil, pr, execution.Result{Achieved: true})
	ret := a.Store.Retrieve(0)
	var hasAct, hasClaim, hasObs bool
	for _, r := range ret.Records {
		switch {
		case r.Key == "act:0":
			hasAct = true
		case r.Key == "claim:0":
			hasClaim = true
		case r.Key == "progress":
			hasObs = true
		}
	}
	if !hasAct || !hasClaim || !hasObs {
		t.Fatalf("memory after Remember missing records: act=%v claim=%v obs=%v", hasAct, hasClaim, hasObs)
	}
	if d.claims != 1 {
		t.Fatal("claim hook not invoked")
	}
}

func TestResetClearsEpisodeState(t *testing.T) {
	a, _, _ := newTestAgent(t, AgentConfig{
		Planner: perfectPlanner(), Memory: MemoryConfig{Capacity: 8}, Execution: true,
	})
	a.Store.Add(memory.Record{Step: 0, Key: "x", Tokens: 1})
	a.lastFailed = stubGoal{"wrong"}
	a.planCooldown = 2
	a.Reset()
	if len(a.Store.Retrieve(0).Records) != 0 || a.lastFailed != nil || a.planCooldown != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestMarkMessageUseful(t *testing.T) {
	comm := perfectPlanner()
	a, _, tr := newTestAgent(t, AgentConfig{
		Planner: perfectPlanner(), Comms: &comm,
		Memory: MemoryConfig{Capacity: 8}, Execution: true,
	})
	a.Store.Add(memory.Record{Step: 0, Kind: memory.Observation, Key: "obj:1", Tokens: 5})
	a.ComposeMessage(0, Observation{}, 0)
	a.MarkMessageUseful(0, true)
	stats := tr.Messages()
	if stats.Generated != 1 || stats.Useful != 1 {
		t.Fatalf("message stats = %+v", stats)
	}
}

func TestMultipleChoiceReducesOutputTokens(t *testing.T) {
	free, _, trFree := newTestAgent(t, AgentConfig{Planner: perfectPlanner(), Execution: true})
	d := newStub()
	free.Plan(d, 0, memory.Retrieval{}, d.Observe(0), nil)

	mc, _, trMC := newTestAgent(t, AgentConfig{
		Planner: perfectPlanner(), Execution: true,
		MultipleChoice: &prompt.MultipleChoice{Options: 4, ErrorDiscount: 0.45},
	})
	mc.Plan(d, 0, memory.Retrieval{}, d.Observe(0), nil)

	planOut := func(tr *trace.Trace) (out, in int) {
		for _, ev := range tr.Events {
			if ev.Module == trace.Planning {
				return ev.OutputTokens, ev.PromptTokens
			}
		}
		return 0, 0
	}
	freeOut, freeIn := planOut(trFree)
	mcOut, mcIn := planOut(trMC)
	if freeOut != 140 {
		t.Fatalf("free-form plan output = %d, want 140", freeOut)
	}
	if mcOut >= freeOut {
		t.Fatalf("multiple choice should shrink output: %d vs %d", mcOut, freeOut)
	}
	if mcIn <= freeIn {
		t.Fatalf("multiple choice should enlarge prompt (option list): %d vs %d", mcIn, freeIn)
	}
}
