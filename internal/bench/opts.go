package bench

import (
	"fmt"
	"strings"
	"time"

	"embench/internal/core"
	"embench/internal/llm"
	"embench/internal/metrics"
	"embench/internal/multiagent"
	"embench/internal/prompt"
	"embench/internal/world"
)

// OptRow is one optimization A/B result (paper Recs. 1, 4–10 and
// Takeaway 6).
type OptRow struct {
	Name        string
	System      string
	BaseSuccess float64
	OptSuccess  float64
	BaseRuntime time.Duration
	OptRuntime  time.Duration
	BaseMsgs    float64 // mean messages generated per episode
	OptMsgs     float64
	Note        string
}

// Speedup reports base/opt runtime.
func (r OptRow) Speedup() float64 {
	if r.OptRuntime == 0 {
		return 1
	}
	return float64(r.BaseRuntime) / float64(r.OptRuntime)
}

// Optimizations benchmarks every recommendation the paper proposes, each
// against its natural baseline workload.
func Optimizations(cfg Config) []OptRow {
	set := cfg.newBatchSet()
	type pending struct {
		row           OptRow
		baseID, optID int
	}
	var pend []pending
	ab := func(name, system string, diff world.Difficulty, agents int,
		baseMut, optMut mutation, baseOpt, optOpt multiagent.Options, note string) {
		w := mustGet(system)
		pend = append(pend, pending{
			row:    OptRow{Name: name, System: system, Note: note},
			baseID: set.add(w, diff, agents, baseMut, baseOpt),
			optID:  set.add(w, diff, agents, optMut, optOpt),
		})
	}

	// Rec 4: multiple-choice planning closes the small-model gap.
	ab("rec4 multiple-choice", "DEPS", world.Medium, 0,
		func(c *core.AgentConfig) { c.Planner = llm.Llama3_8B },
		func(c *core.AgentConfig) {
			c.Planner = llm.Llama3_8B
			c.MultipleChoice = &prompt.MultipleChoice{Options: 4, ErrorDiscount: 0.45}
		},
		multiagent.Options{}, multiagent.Options{},
		"Llama-3-8B planner, free-form vs 4-way multiple choice")

	// Rec 5: dual memory vs full-history flat memory.
	ab("rec5 dual-memory", "CoELA", world.Medium, 0,
		func(c *core.AgentConfig) { c.Memory = core.MemoryConfig{Capacity: -1} },
		func(c *core.AgentConfig) { c.Memory = core.MemoryConfig{Dual: true, ShortWindow: 8, LongBudget: 160} },
		multiagent.Options{}, multiagent.Options{},
		"full-history flat store vs long/short dual store")

	// Rec 6: context compression.
	ab("rec6 compression", "CoELA", world.Medium, 0,
		nil,
		func(c *core.AgentConfig) { c.Compressor = &prompt.Compressor{Ratio: 0.3, Threshold: 250} },
		multiagent.Options{}, multiagent.Options{},
		"summarize memory/dialogue sections beyond 250 tokens")

	// Rec 7: planning-guided multi-step execution.
	ab("rec7 plan-horizon", "JARVIS-1", world.Medium, 0,
		nil,
		func(c *core.AgentConfig) { c.PlanHorizon = 3 },
		multiagent.Options{}, multiagent.Options{},
		"one planning call guides 3 consecutive subgoals")

	// Rec 8: planning-then-communication gating.
	ab("rec8 plan-then-comm", "CoELA", world.Medium, 0,
		nil,
		func(c *core.AgentConfig) { c.PlanThenComm = true },
		multiagent.Options{}, multiagent.Options{},
		"gate message generation on the plan instead of pre-generating")

	// Rec 9: hierarchical clusters at scale.
	ab("rec9 hierarchical", "CoELA", world.Medium, 8,
		nil, nil,
		multiagent.Options{}, multiagent.Options{ClusterSize: 4},
		"8 agents: flat broadcast vs clusters of 4")

	// Rec 10: message filtering.
	ab("rec10 msg-filter", "CoELA", world.Medium, 0,
		nil,
		func(c *core.AgentConfig) { c.MessageFilter = 4 },
		multiagent.Options{}, multiagent.Options{},
		"cap messages at the 4 newest records")

	// Takeaway 6: parallel module pipeline.
	ab("t6 parallel-pipeline", "CoELA", world.Medium, 4,
		nil, nil,
		multiagent.Options{}, multiagent.Options{Parallel: true},
		"4 agents: sequential vs overlapped per-agent spans")

	set.run()
	msgs := func(eps []metrics.Episode) float64 {
		total := 0
		for _, e := range eps {
			total += e.Messages.Generated
		}
		return float64(total) / float64(len(eps))
	}
	var rows []OptRow
	for _, p := range pend {
		baseEps, _ := set.results(p.baseID)
		optEps, _ := set.results(p.optID)
		sb, so := metrics.Summarize(baseEps), metrics.Summarize(optEps)
		r := p.row
		r.BaseSuccess, r.OptSuccess = sb.SuccessRate, so.SuccessRate
		r.BaseRuntime, r.OptRuntime = sb.MeanDuration, so.MeanDuration
		r.BaseMsgs, r.OptMsgs = msgs(baseEps), msgs(optEps)
		rows = append(rows, r)
	}
	return rows
}

// BatchingRow reports Rec. 1 serving-level batching gains, computed from
// the serving model directly (no episode needed).
type BatchingRow struct {
	Profile   string
	BatchSize int
	Speedup   float64
}

// Batching sweeps batch sizes for the API and local profiles.
func Batching() []BatchingRow {
	var rows []BatchingRow
	for _, p := range []llm.Profile{llm.GPT4, llm.Llama3_8B} {
		for _, n := range []int{2, 4, 8} {
			rows = append(rows, BatchingRow{
				Profile: p.Name, BatchSize: n,
				Speedup: llm.BatchSpeedup(p, n, 1200, 120),
			})
		}
	}
	return rows
}

// RenderOptimizations formats the A/B table plus batching gains.
func RenderOptimizations(rows []OptRow, batching []BatchingRow) string {
	var b strings.Builder
	b.WriteString("Optimization recommendations — A/B on the suite\n")
	fmt.Fprintf(&b, "%-22s %-10s %9s %9s %10s %10s %8s\n",
		"Optimization", "System", "base ok", "opt ok", "base t", "opt t", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-10s %8.0f%% %8.0f%% %9.1fm %9.1fm %7.2fx\n",
			r.Name, r.System, 100*r.BaseSuccess, 100*r.OptSuccess,
			r.BaseRuntime.Minutes(), r.OptRuntime.Minutes(), r.Speedup())
	}
	b.WriteString("\nRec 1 — LLM serving batching speedup (1200 prompt / 120 output tokens)\n")
	for _, r := range batching {
		fmt.Fprintf(&b, "%-12s batch=%d  %.2fx\n", r.Profile, r.BatchSize, r.Speedup)
	}
	return b.String()
}
