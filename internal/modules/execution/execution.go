// Package execution models the low-level execution module: converting
// high-level subgoals into primitive actions via grid/continuous motion
// planners and controllers, and charging the corresponding compute and
// actuation latency.
//
// The paper finds execution is far from free: 49.4% of RoCo's, 38.1% of
// DaDu-E's and 24.1% of EmbodiedGPT's per-step latency (Fig. 2a), driven by
// repeated low-level planner invocations (RRT, A*) and multi-iteration
// control.
package execution

import "time"

// Effort is the work performed by one subgoal execution, reported by the
// environment and converted to latency here.
type Effort struct {
	AStarExpanded int // A* nodes expanded
	RRTSamples    int // RRT samples drawn
	Primitives    int // actuation micro-steps (moves, grasps, placements)
	ControlIters  int // feedback-controller iterations (policy-head inference)
	GraspOps      int // grasp-pose computations (AnyGrasp-style)
	Replans       int // low-level replanning rounds after slips
}

// Add accumulates another effort into e.
func (e *Effort) Add(o Effort) {
	e.AStarExpanded += o.AStarExpanded
	e.RRTSamples += o.RRTSamples
	e.Primitives += o.Primitives
	e.ControlIters += o.ControlIters
	e.GraspOps += o.GraspOps
	e.Replans += o.Replans
}

// Cost-model constants: per-unit compute costs on an Intel i7-class CPU
// (the paper's action-execution host) and per-primitive actuation time.
// The RRT cost is per *workspace* sample: each one stands for the
// collision checking and inverse kinematics of a 7-DOF arm configuration,
// which is what makes low-level planning 49.4% of RoCo's step latency.
const (
	astarPerNode   = 90 * time.Microsecond
	rrtPerSample   = 25 * time.Millisecond
	perPrimitive   = 220 * time.Millisecond // robot actuation per primitive
	perControlIter = 120 * time.Millisecond // policy forward + control + settle
	perGraspOp     = 900 * time.Millisecond // grasp-pose synthesis (AnyGrasp)
	perReplan      = 150 * time.Millisecond // replan bookkeeping
)

// Latency converts effort into simulated execution time.
func Latency(e Effort) time.Duration {
	return time.Duration(e.AStarExpanded)*astarPerNode +
		time.Duration(e.RRTSamples)*rrtPerSample +
		time.Duration(e.Primitives)*perPrimitive +
		time.Duration(e.ControlIters)*perControlIter +
		time.Duration(e.GraspOps)*perGraspOp +
		time.Duration(e.Replans)*perReplan
}

// Result is the outcome of executing one subgoal against the real
// environment.
type Result struct {
	Effort   Effort
	Achieved bool // the subgoal's effect holds in the true world state
	Note     string
}
