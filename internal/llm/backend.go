package llm

import (
	"time"

	"embench/internal/prompt"
)

// Call is one serving-level request as the backend sees it: token counts and
// prompt structure only — the decision/error channel stays in the Client.
// Arrival is the submitting agent's virtual-clock time, which a shared
// endpoint uses to order the request against other agents' traffic.
type Call struct {
	Agent        string
	Arrival      time.Duration
	Prompt       prompt.Prompt // fitted prompt (post context-window Fit)
	PromptTokens int
	OutTokens    int
}

// Served is a backend's serving outcome for one call.
type Served struct {
	// Latency is the end-to-end serving time the caller experiences:
	// queueing delay plus service time.
	Latency time.Duration
	// QueueWait is the admission-queue portion of Latency (zero for a
	// dedicated direct client).
	QueueWait time.Duration
	// CachedTokens counts prompt tokens whose prefill was discounted by a
	// shared prefix/KV cache.
	CachedTokens int
}

// Backend abstracts where serving time comes from. The default (a nil
// backend on the Client) charges the client's own profile latency — a
// dedicated, contention-free deployment. A shared serve.Endpoint implements
// Backend too, so many agents' clients contend for the same replicas,
// admission queue and prefix cache.
type Backend interface {
	Serve(Call) Served
}

// SetBackend routes the client's serving time through b; nil restores the
// direct (dedicated) serving model. The decision/error channel is
// unaffected — only latency accounting moves to the backend.
func (c *Client) SetBackend(b Backend) { c.backend = b }

// Backend reports the client's serving backend (nil = direct).
func (c *Client) Backend() Backend { return c.backend }

// serve computes the serving latency for one fitted call: through the
// backend when one is attached, otherwise from the client's own profile
// with jitter. The backend path consumes (and discards) the same jitter
// draw as the direct path, so a shared-endpoint run keeps every stream
// aligned with its dedicated-serving twin: decisions and retries match
// call for call, and latency differences isolate the serving policy.
func (c *Client) serve(agent string, fitted prompt.Prompt, promptTok, outTok int) time.Duration {
	if c.backend != nil {
		if c.profile.JitterFrac > 0 {
			c.stream.Float64()
		}
		return c.backend.Serve(Call{
			Agent:        agent,
			Arrival:      c.now(),
			Prompt:       fitted,
			PromptTokens: promptTok,
			OutTokens:    outTok,
		}).Latency
	}
	lat := c.profile.Latency(promptTok, outTok)
	if c.profile.JitterFrac > 0 {
		lat = time.Duration(c.stream.Jitter(float64(lat), c.profile.JitterFrac))
	}
	return lat
}

// now reports the owning agent's virtual time (zero without a clock).
func (c *Client) now() time.Duration {
	if c.clock == nil {
		return 0
	}
	return c.clock.Now()
}
