package serve

import (
	"fmt"
	"time"
)

// RoutingPolicy selects which replica an admitted request (or launching
// batch) is placed on. Every policy is deterministic: scores are pure
// functions of the endpoint's virtual-time state and ties always break on
// the lowest replica index, so routing never depends on goroutine
// scheduling.
type RoutingPolicy string

const (
	// RouteLeastLoaded places the request on the replica that frees
	// earliest — the classic load balancer, blind to cache locality.
	RouteLeastLoaded RoutingPolicy = "least-loaded"
	// RouteCacheAffinity places the request on the replica whose prefix/KV
	// cache covers the most leading prompt tokens, accepting some queueing
	// to keep warm prefixes hot (sticky sessions, as serving stacks route
	// conversations). Load breaks ties.
	RouteCacheAffinity RoutingPolicy = "cache-affinity"
	// RouteShortestCompletion estimates, per replica, when the request
	// would actually finish — queueing behind the frontier plus service
	// time under that replica's cache discount — and picks the minimum.
	// It is the latency-aware blend of the other two.
	RouteShortestCompletion RoutingPolicy = "shortest-completion"
)

// ParseRouting converts a CLI/config string into a RoutingPolicy. The empty
// string selects the default (least-loaded).
func ParseRouting(s string) (RoutingPolicy, error) {
	switch RoutingPolicy(s) {
	case "", RouteLeastLoaded:
		return RouteLeastLoaded, nil
	case RouteCacheAffinity:
		return RouteCacheAffinity, nil
	case RouteShortestCompletion:
		return RouteShortestCompletion, nil
	}
	return RouteLeastLoaded, fmt.Errorf("serve: unknown routing policy %q (%s|%s|%s)",
		s, RouteLeastLoaded, RouteCacheAffinity, RouteShortestCompletion)
}

// route picks the replica for a request under the endpoint's routing
// policy. The memoized prompt key drives cache-aware policies (hashed once
// per request, probed against every replica); arrival anchors completion
// estimates.
func (e *Endpoint) route(arrival time.Duration, k promptKey, outTokens int) *replica {
	switch e.cfg.Routing {
	case RouteCacheAffinity:
		return e.routeCacheAffinity(k)
	case RouteShortestCompletion:
		return e.routeShortestCompletion(arrival, k, outTokens)
	default:
		return e.routeLeastLoaded()
	}
}

// routeLeastLoaded returns the replica with the earliest freeAt, lowest
// index on ties — the router every multi-replica deployment runs.
func (e *Endpoint) routeLeastLoaded() *replica {
	best := &e.replicas[0]
	for i := 1; i < len(e.replicas); i++ {
		if e.replicas[i].freeAt < best.freeAt {
			best = &e.replicas[i]
		}
	}
	return best
}

// routeCacheAffinity returns the replica whose cache covers the most
// leading tokens of the keyed prompt; ties fall back to least-loaded, then
// lowest index.
func (e *Endpoint) routeCacheAffinity(k promptKey) *replica {
	best := &e.replicas[0]
	bestHit := best.cache.matchKey(k)
	for i := 1; i < len(e.replicas); i++ {
		r := &e.replicas[i]
		hit := r.cache.matchKey(k)
		if hit > bestHit || (hit == bestHit && r.freeAt < best.freeAt) {
			best, bestHit = r, hit
		}
	}
	return best
}

// routeShortestCompletion returns the replica minimizing the estimated
// completion time of the request: start (arrival or the replica freeing,
// whichever is later) plus single-sequence service under that replica's
// cache discount. The estimate ignores join-window coalescing — like real
// routers, it prices the request as if it ran alone.
func (e *Endpoint) routeShortestCompletion(arrival time.Duration, k promptKey, outTokens int) *replica {
	best := &e.replicas[0]
	bestDone := e.estimateCompletion(best, arrival, k, outTokens)
	for i := 1; i < len(e.replicas); i++ {
		r := &e.replicas[i]
		if done := e.estimateCompletion(r, arrival, k, outTokens); done < bestDone {
			best, bestDone = r, done
		}
	}
	return best
}

// estimateCompletion prices one request on one replica without mutating
// cache or timeline state.
func (e *Endpoint) estimateCompletion(r *replica, arrival time.Duration, k promptKey, outTokens int) time.Duration {
	start := arrival
	if r.freeAt > start {
		start = r.freeAt
	}
	eff := e.discountedEff(r.cache.matchKey(k), k.total)
	return start + e.cfg.Profile.BatchServiceTime(1, eff, outTokens)
}

// routeIdle picks, among replicas idle at virtual time now, the launch
// target for a batch whose head request carries the keyed prompt — the
// open-loop (Replay) flavor of routing, where launches only ever happen on
// idle replicas. Returns nil when no replica is idle.
func (e *Endpoint) routeIdle(now time.Duration, k promptKey) *replica {
	var best *replica
	bestHit := -1
	for i := range e.replicas {
		r := &e.replicas[i]
		if r.freeAt > now {
			continue
		}
		switch e.cfg.Routing {
		case RouteCacheAffinity, RouteShortestCompletion:
			// Among idle replicas, completion differs only through the
			// cache discount, so both cache-aware policies reduce to
			// best-prefix-match — with the same earliest-freeAt tie-break
			// as closed-loop routeCacheAffinity, so open and closed loop
			// route identically on identical state.
			hit := r.cache.matchKey(k)
			if best == nil || hit > bestHit ||
				(hit == bestHit && r.freeAt < best.freeAt) {
				best, bestHit = r, hit
			}
		default:
			if best == nil || r.freeAt < best.freeAt {
				best = r
			}
		}
	}
	return best
}
