package bench

import (
	"reflect"
	"testing"

	"embench/internal/serve"
)

// fig12TestConfig keeps the sweep cheap but on the default axes — the
// acceptance bound is asserted on exactly what CI regenerates.
func fig12TestConfig() Config { return Config{Seed: 1} }

// TestFig12Shape checks the sweep covers every (arrival, tenants,
// deployment) cell with live traffic and sane per-cell invariants.
func TestFig12Shape(t *testing.T) {
	rep := Fig12(fig12TestConfig())
	arrivals, tenants := serve.ArrivalKinds(), Fig12Tenants
	if want := len(arrivals) * len(tenants) * 3; len(rep.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), want)
	}
	for _, kind := range arrivals {
		for _, n := range tenants {
			small := fig12Find(rep, kind, n, "static-small")
			large := fig12Find(rep, kind, n, "static-large")
			auto := fig12Find(rep, kind, n, "autoscaled")
			if small.Requests == 0 || small.Requests != large.Requests || small.Requests != auto.Requests {
				t.Fatalf("%s/t%d: request counts diverge: %d/%d/%d",
					kind, n, small.Requests, large.Requests, auto.Requests)
			}
			for _, r := range []Fig12Row{small, large, auto} {
				if r.P50 > r.P95 || r.P95 > r.P99 {
					t.Fatalf("%s/t%d/%s: quantiles not monotone: %v/%v/%v",
						kind, n, r.Deploy, r.P50, r.P95, r.P99)
				}
				if r.Attainment < 0 || r.Attainment > 1 {
					t.Fatalf("%s/t%d/%s: attainment %v out of range", kind, n, r.Deploy, r.Attainment)
				}
				if r.ReplicaSeconds <= 0 {
					t.Fatalf("%s/t%d/%s: non-positive cost %v", kind, n, r.Deploy, r.ReplicaSeconds)
				}
			}
			// Static cost is replicas x makespan by construction; the
			// autoscaler must undercut the peak deployment's provisioning.
			if auto.ReplicaSeconds >= large.ReplicaSeconds {
				t.Fatalf("%s/t%d: autoscaled cost %.0f not below static-large %.0f",
					kind, n, auto.ReplicaSeconds, large.ReplicaSeconds)
			}
		}
	}
}

// TestFig12Deterministic: the whole report is byte-identical across reruns
// and across Parallelism values (the sweep is sequential by construction,
// so -procs cannot reorder it — this pins that property).
func TestFig12Deterministic(t *testing.T) {
	a := Fig12(fig12TestConfig())
	b := Fig12(fig12TestConfig())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("fig12 is not deterministic across reruns")
	}
	par := fig12TestConfig()
	par.Parallelism = 4
	if c := Fig12(par); !reflect.DeepEqual(a, c) {
		t.Fatal("fig12 depends on Parallelism")
	}
	if RenderFig12(a) != RenderFig12(b) {
		t.Fatal("rendered fig12 is not deterministic")
	}
}

// TestFig12Acceptance is the PR's headline bound, asserted on the bursty
// panel at every tenant count: the autoscaler reaches >= 95% of
// static-large's SLO attainment at <= 60% of its replica-seconds.
func TestFig12Acceptance(t *testing.T) {
	rep := Fig12(fig12TestConfig())
	for _, n := range Fig12Tenants {
		large := fig12Find(rep, serve.ArriveBursty, n, "static-large")
		auto := fig12Find(rep, serve.ArriveBursty, n, "autoscaled")
		t.Logf("bursty/t%d: attainment auto %.3f vs large %.3f; cost auto %.0f vs large %.0f (ratio %.2f)",
			n, auto.Attainment, large.Attainment,
			auto.ReplicaSeconds, large.ReplicaSeconds,
			auto.ReplicaSeconds/large.ReplicaSeconds)
		if auto.Attainment < 0.95*large.Attainment {
			t.Errorf("bursty/t%d: autoscaled attainment %.3f < 95%% of static-large %.3f",
				n, auto.Attainment, large.Attainment)
		}
		if auto.ReplicaSeconds > 0.60*large.ReplicaSeconds {
			t.Errorf("bursty/t%d: autoscaled cost %.0f > 60%% of static-large %.0f",
				n, auto.ReplicaSeconds, large.ReplicaSeconds)
		}
		if auto.ScaleUps == 0 || auto.ScaleDowns == 0 {
			t.Errorf("bursty/t%d: autoscaler never moved (%d up, %d down)",
				n, auto.ScaleUps, auto.ScaleDowns)
		}
	}
}

// TestFig12Metrics checks the trajectory metrics carry the acceptance
// evidence for every panel.
func TestFig12Metrics(t *testing.T) {
	m := Fig12Metrics(Fig12(fig12TestConfig()))
	for _, key := range []string{
		"bursty_t8_attainment_ratio", "bursty_t24_cost_ratio",
		"poisson_t8_autoscaled_attainment", "diurnal_t24_autoscaled_p99_s",
	} {
		if _, ok := m[key]; !ok {
			t.Fatalf("Fig12Metrics missing %q (have %d keys)", key, len(m))
		}
	}
}
