// Command detlint runs the suite's determinism-and-mergeability analyzers
// (internal/analysis): maprange, wallclock, rawrand, mergefields.
//
// Standalone, from the module root:
//
//	go run ./cmd/detlint ./...          # exit 0 clean, 1 on findings
//	go run ./cmd/detlint -maprange=false ./internal/serve/...
//
// As a vet tool, so findings ride the build cache and gate exactly like
// vet's own checks:
//
//	go build -o /tmp/detlint ./cmd/detlint
//	go vet -vettool=/tmp/detlint ./...
//
// The vettool mode speaks cmd/go's vet protocol: -V=full prints a
// content-derived build ID for action caching, -flags enumerates the
// analyzer toggles as JSON, and a single *.cfg argument is a vet config
// whose PackageFile map supplies the export data every import resolves
// from — the same files `go list -export` names, so no network, no
// GOPATH, no golang.org/x/tools.
//
// Findings print as file:line:col: analyzer: message. Suppression is the
// //detlint:allow directive (see internal/analysis); stale or
// unjustified directives are findings too.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"

	"embench/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	versionFlag := fs.String("V", "", "print version and exit (cmd/go vet protocol: -V=full)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags as JSON and exit (cmd/go vet protocol)")
	enabled := map[string]*bool{}
	for _, a := range analysis.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: detlint [flags] [package pattern ...] | vet.cfg\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *versionFlag != "":
		return printVersion(*versionFlag)
	case *flagsFlag:
		return printFlags(fs)
	}

	var analyzers []*analysis.Analyzer
	for _, a := range analysis.All() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVet(rest[0], analyzers)
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	return runStandalone(rest, analyzers)
}

// printVersion implements the -V=full handshake: cmd/go derives the vet
// action cache key from this line, so it embeds a digest of the detlint
// binary itself — rebuilding detlint invalidates cached vet results.
func printVersion(mode string) int {
	if mode != "full" {
		fmt.Println("detlint version devel")
		return 0
	}
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("detlint version devel buildID=%x\n", h.Sum(nil)[:12])
	return 0
}

// printFlags implements the -flags handshake: cmd/go asks the tool which
// flags it understands so `go vet -vettool=detlint -maprange=false` can
// route them through.
func printFlags(fs *flag.FlagSet) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		if f.Name == "V" || f.Name == "flags" {
			return
		}
		_, isBool := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}
	os.Stdout.Write(data)
	fmt.Println()
	return 0
}

// runStandalone loads the packages matching the patterns via the go
// command and analyzes them all in one process.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer) int {
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}
	total := 0
	for _, pkg := range pkgs {
		findings, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 2
		}
		for _, f := range findings {
			fmt.Println(f)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", total)
		return 1
	}
	return 0
}

// vetConfig mirrors cmd/go/internal/work's vet config JSON (the fields
// detlint consumes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet analyzes the single package described by a cmd/go vet config.
func runVet(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "detlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// detlint computes no cross-package facts, so its vetx output is
	// always empty; writing it anyway lets cmd/go cache the (empty)
	// result instead of re-running dependency actions every build.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: facts only, no reporting — and we have no facts.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 2
		}
		files = append(files, f)
	}
	imp := analysis.NewExportImporter(fset, cfg.ImportMap, cfg.PackageFile)
	typesPkg, info, err := analysis.TypeCheck(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "detlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	pkg := &analysis.Package{
		Path:      cfg.ImportPath,
		Dir:       cfg.Dir,
		Fset:      fset,
		Files:     files,
		Types:     typesPkg,
		TypesInfo: info,
	}
	findings, err := analysis.Run(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
