package serve

import (
	"fmt"
	"math/rand"
	"testing"

	"embench/internal/prompt"
)

// checkCacheInvariants asserts the structural contract of the prefix cache:
//
//  1. parent-chain residency — no suffix entry outlives its prefix (the
//     orphaned-suffix regression),
//  2. token accounting — liveTokens is exactly the sum of resident entry
//     sizes and never exceeds the token budget,
//  3. entry accounting — the entry count never exceeds the entry budget,
//  4. kid links — every resident entry's kids list names exactly its
//     resident children, with no stale keys or duplicates,
//  5. LRU queue — order ticks are strictly increasing and every resident
//     entry's last touch is present as a live event.
func checkCacheInvariants(t *testing.T, c *prefixCache) {
	t.Helper()
	if c == nil {
		return
	}
	tokens := 0
	for key, e := range c.entries {
		tokens += e.size
		if e.parent != fnvOffset {
			if _, ok := c.entries[e.parent]; !ok {
				t.Fatalf("orphaned suffix: entry %x resident but parent %x evicted", key, e.parent)
			}
		}
		seen := map[uint64]bool{}
		for _, kid := range e.kids {
			if seen[kid] {
				t.Fatalf("duplicate kid link %x under %x", kid, key)
			}
			seen[kid] = true
			ke, ok := c.entries[kid]
			if !ok {
				t.Fatalf("stale kid link %x under %x", kid, key)
			}
			if ke.parent != key {
				t.Fatalf("kid %x of %x points at parent %x", kid, key, ke.parent)
			}
		}
	}
	// Reverse check: every resident child is linked from its parent.
	for key, e := range c.entries {
		if e.parent == fnvOffset {
			continue
		}
		pe := c.entries[e.parent]
		found := false
		for _, kid := range pe.kids {
			if kid == key {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("entry %x resident but unlinked from parent %x", key, e.parent)
		}
	}
	if tokens != c.liveTokens {
		t.Fatalf("liveTokens drifted: tracked %d, recount %d", c.liveTokens, tokens)
	}
	if c.capTokens > 0 && c.liveTokens > c.capTokens {
		t.Fatalf("live tokens %d exceed budget %d", c.liveTokens, c.capTokens)
	}
	if c.capEntries > 0 && len(c.entries) > c.capEntries {
		t.Fatalf("entry count %d exceeds budget %d", len(c.entries), c.capEntries)
	}
	if c.liveTokens > c.peakTokens {
		t.Fatalf("peak %d below live %d", c.peakTokens, c.liveTokens)
	}
	last := -1
	liveEvents := map[uint64]int{}
	for _, ev := range c.order {
		if ev.tick <= last {
			t.Fatalf("order ticks not strictly increasing: %d after %d", ev.tick, last)
		}
		last = ev.tick
		if e, ok := c.entries[ev.key]; ok && e.tick == ev.tick {
			liveEvents[ev.key] = ev.tick
		}
	}
	for key, e := range c.entries {
		if liveEvents[key] != e.tick {
			t.Fatalf("entry %x (tick %d) has no live event in the LRU queue", key, e.tick)
		}
	}
}

// TestCacheOrphanedSuffixRegression reproduces the seed bug directly:
// evict a chain's root and the extension must go with it — not survive as
// unreachable ballast that still counts against capacity.
func TestCacheOrphanedSuffixRegression(t *testing.T) {
	c := newPrefixCache(3, 0)
	chain := prompt.New(
		prompt.Section{Name: "system", Tokens: 100},
		prompt.Section{Name: "hist", Tokens: 50},
	)
	c.insert(chain)
	if len(c.entries) != 2 {
		t.Fatalf("chain should occupy 2 entries, got %d", len(c.entries))
	}
	// Two fresh single-section prompts: capacity 3 forces eviction of the
	// oldest entry — the chain's "system" root (tick 1; "hist" is tick 2).
	c.insert(prompt.New(prompt.Section{Name: "a", Tokens: 10}))
	c.insert(prompt.New(prompt.Section{Name: "b", Tokens: 10}))
	if got := c.match(chain); got != 0 {
		t.Fatalf("chain root evicted but match still covers %d tokens", got)
	}
	for key, e := range c.entries {
		if e.parent != fnvOffset {
			if _, ok := c.entries[e.parent]; !ok {
				t.Fatalf("suffix %x outlived its prefix — the seed bug", key)
			}
		}
	}
	// The seed evicted only the root, keeping the unreachable "hist"
	// suffix resident: {hist, a, b} with one entry of dead capacity. The
	// cascade removes the whole chain, leaving the two reachable roots.
	if len(c.entries) != 2 {
		t.Fatalf("resident entries = %d, want the 2 reachable roots", len(c.entries))
	}
	checkCacheInvariants(t, c)
}

// randomPrompt builds a randomized section chain that shares prefixes with
// other draws often: a fixed preamble, one of a few personas, one of many
// history sizes — plus occasional deep chains.
func randomPrompt(r *rand.Rand) prompt.Prompt {
	secs := []prompt.Section{
		{Name: "system", Tokens: 100 + 50*r.Intn(2)},
		{Name: fmt.Sprintf("persona-%d", r.Intn(6)), Tokens: 200 + 100*r.Intn(3)},
	}
	depth := 1 + r.Intn(3)
	for d := 0; d < depth; d++ {
		secs = append(secs, prompt.Section{
			Name:   fmt.Sprintf("hist%d", d),
			Tokens: 20 + 10*r.Intn(8),
		})
	}
	return prompt.New(secs...)
}

// TestCacheRandomizedCapacityAccounting drives randomized insert/match
// sequences through token-budget, entry-budget and dual-budget caches and
// checks every structural invariant after each insert — the satellite's
// "live cached tokens never exceed budget across randomized insert/evict
// sequences".
func TestCacheRandomizedCapacityAccounting(t *testing.T) {
	configs := []struct {
		name               string
		capEntries, capTok int
	}{
		{"token-budget", 0, 900},
		{"entry-budget", 12, 0},
		{"both-budgets", 16, 1200},
		{"tight-tokens", 0, 300},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			c := newPrefixCache(cfg.capEntries, cfg.capTok)
			for i := 0; i < 2000; i++ {
				p := randomPrompt(r)
				c.match(p)
				c.insert(p)
				checkCacheInvariants(t, c)
			}
			if c.evictedTokens == 0 {
				t.Fatal("workload never hit capacity; budget too loose to test eviction")
			}
		})
	}
}

// TestCacheCompactionPreservesLRUOrder pins the lazy queue's compaction:
// hammer one hot chain (generating stale events) interleaved with cold
// singletons until compaction triggers, then check eviction still removes
// the honestly least-recently-touched entry first.
func TestCacheCompactionPreservesLRUOrder(t *testing.T) {
	c := newPrefixCache(0, 1000)
	hot := prompt.New(prompt.Section{Name: "hot", Tokens: 100})
	cold := make([]prompt.Prompt, 8)
	for i := range cold {
		cold[i] = prompt.New(prompt.Section{Name: fmt.Sprintf("cold-%d", i), Tokens: 100})
	}
	for _, p := range cold {
		c.insert(p)
	}
	before := len(c.order)
	for i := 0; i < 500; i++ {
		c.insert(hot) // stale events pile up; compaction must fire
	}
	if len(c.order) >= before+500 {
		t.Fatal("compaction never fired")
	}
	checkCacheInvariants(t, c)
	// 8 cold (800 tokens) + hot (100) = 900 live. A 150-token insert must
	// evict exactly the oldest cold entry, not the hot one and not a newer
	// cold one.
	c.insert(prompt.New(prompt.Section{Name: "newcomer", Tokens: 150}))
	if c.match(cold[0]) != 0 {
		t.Fatal("oldest cold entry should have been evicted first")
	}
	for _, p := range cold[2:] {
		if c.match(p) == 0 {
			t.Fatal("newer cold entries evicted before the oldest")
		}
	}
	if c.match(hot) == 0 {
		t.Fatal("hot entry evicted despite being most recently touched")
	}
	checkCacheInvariants(t, c)
}

// TestCacheIdentityAgreement: on prompts whose sections carry only token
// counts (no text), shape and content identity must produce identical
// match results over any shared operation sequence.
func TestCacheIdentityAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	shape := newPrefixCache(0, 1500)
	content := newPrefixCache(0, 1500)
	for i := 0; i < 1500; i++ {
		p := randomPrompt(r)
		ks := chainKeysIdent(nil, p, IdentityShape)
		kc := chainKeysIdent(nil, p, IdentityContent)
		if ms, mc := shape.matchKey(ks), content.matchKey(kc); ms != mc {
			t.Fatalf("op %d: shape match %d != content match %d", i, ms, mc)
		}
		shape.insertKey(ks)
		content.insertKey(kc)
		if shape.liveTokens != content.liveTokens || len(shape.entries) != len(content.entries) {
			t.Fatalf("op %d: caches diverged: %d/%d tokens, %d/%d entries",
				i, shape.liveTokens, content.liveTokens, len(shape.entries), len(content.entries))
		}
	}
	checkCacheInvariants(t, shape)
	checkCacheInvariants(t, content)
}

// TestCacheContentIdentityDistinguishesText: same shape, different words —
// shape identity falsely hits, content identity does not; and a history
// that diverges then reconverges to identical text re-shares under content
// identity even though intermediate sizes drifted.
func TestCacheContentIdentityDistinguishesText(t *testing.T) {
	mk := func(text string) prompt.Prompt {
		return prompt.New(
			prompt.Section{Name: "system", Tokens: 100},
			prompt.Section{Name: "hist", Text: text},
		)
	}
	aliceP := mk("alice moved the red block onto the shelf")
	bobP := mk("bobby picked an apple up from the table")
	if aliceP.Tokens() != bobP.Tokens() {
		t.Fatalf("test needs same-shape prompts: %d vs %d tokens", aliceP.Tokens(), bobP.Tokens())
	}

	shape := newPrefixCache(0, 4096)
	shape.insertKey(chainKeysIdent(nil, aliceP, IdentityShape))
	if got := shape.matchKey(chainKeysIdent(nil, bobP, IdentityShape)); got != bobP.Tokens() {
		t.Fatalf("shape identity should falsely hit the same-shape prompt (got %d)", got)
	}

	content := newPrefixCache(0, 4096)
	content.insertKey(chainKeysIdent(nil, aliceP, IdentityContent))
	if got := content.matchKey(chainKeysIdent(nil, bobP, IdentityContent)); got != 100 {
		t.Fatalf("content identity must stop at the diverged text (got %d, want 100)", got)
	}
	// Reconvergence: an identical-text follower re-shares the full chain.
	if got := content.matchKey(chainKeysIdent(nil, mk("alice moved the red block onto the shelf"), IdentityContent)); got != aliceP.Tokens() {
		t.Fatalf("content identity must re-share reconverged text (got %d, want %d)", got, aliceP.Tokens())
	}
}

// TestCachePressure pins the capacity-pressure signal routing charges: zero
// without a token budget, zero under budget, the overflow when over, and
// never more than what is actually resident.
func TestCachePressure(t *testing.T) {
	p := prompt.New(prompt.Section{Name: "s", Tokens: 400})
	k := chainKeys(p)

	entryOnly := newPrefixCache(64, 0)
	if got := entryOnly.pressure(k, 0); got != 0 {
		t.Fatalf("entry-count cache must report zero pressure, got %d", got)
	}

	c := newPrefixCache(0, 1000)
	if got := c.pressure(k, 0); got != 0 {
		t.Fatalf("empty cache under budget: pressure %d, want 0", got)
	}
	c.insert(prompt.New(prompt.Section{Name: "warm", Tokens: 700}))
	// 700 live + 400 incoming - 1000 budget = 100 warm tokens displaced.
	if got := c.pressure(k, 0); got != 100 {
		t.Fatalf("pressure = %d, want 100", got)
	}
	// A fully cached prompt adds nothing and displaces nothing.
	kw := chainKeys(prompt.New(prompt.Section{Name: "warm", Tokens: 700}))
	if got := c.pressure(kw, 700); got != 0 {
		t.Fatalf("warm re-insert pressure = %d, want 0", got)
	}
	// Overflow beyond everything resident clamps at the resident total.
	huge := chainKeys(prompt.New(prompt.Section{Name: "huge", Tokens: 10000}))
	if got := c.pressure(huge, 0); got != 700 {
		t.Fatalf("pressure clamp = %d, want 700 (all resident tokens)", got)
	}
}

// TestCacheTokenBudgetEvictsDeadHistory: old history leaves (sizes that
// will never recur) are the oldest entries, so a token budget self-cleans
// them while the shared preamble and persona stay warm.
func TestCacheTokenBudgetEvictsDeadHistory(t *testing.T) {
	c := newPrefixCache(0, 1500)
	mk := func(hist int) prompt.Prompt {
		return prompt.New(
			prompt.Section{Name: "system", Tokens: 300},
			prompt.Section{Name: "persona", Tokens: 500},
			prompt.Section{Name: "hist", Tokens: hist},
		)
	}
	for s := 0; s < 20; s++ {
		c.insert(mk(100 + 10*s))
		checkCacheInvariants(t, c)
	}
	last := mk(100 + 10*19)
	if got := c.match(last); got != last.Tokens() {
		t.Fatalf("latest chain should be fully resident, got %d of %d", got, last.Tokens())
	}
	if got := c.match(mk(100)); got != 800 {
		t.Fatalf("dead history leaf should be evicted, preamble+persona warm: got %d, want 800", got)
	}
	if c.evictedTokens == 0 {
		t.Fatal("budget never evicted anything")
	}
}
