package llm

import (
	"time"

	"embench/internal/prompt"
)

// Call is one serving-level request as the backend sees it: token counts and
// prompt structure only — the decision/error channel stays in the Client.
// Arrival is the submitting agent's virtual-clock time, which a shared
// endpoint uses to order the request against other agents' traffic.
type Call struct {
	Agent        string
	Arrival      time.Duration
	Prompt       prompt.Prompt // fitted prompt (post context-window Fit)
	PromptTokens int
	OutTokens    int
}

// Served is a backend's serving outcome for one call.
type Served struct {
	// Latency is the end-to-end serving time the caller experiences:
	// queueing delay plus service time.
	Latency time.Duration
	// QueueWait is the admission-queue portion of Latency (zero for a
	// dedicated direct client).
	QueueWait time.Duration
	// BatchSize is the number of sequences in the batch the request was
	// served in at completion time (1 for an unbatched request or a direct
	// client).
	BatchSize int
	// CachedTokens counts prompt tokens whose prefill was discounted by a
	// shared prefix/KV cache.
	CachedTokens int
	// PromptTokens is the prompt's total token count as the backend priced
	// it at admission (zero for backends that do not report it). Carrying
	// it back saves accounting layers a re-walk of the prompt sections.
	PromptTokens int
	// Decode is the decode-stage share of Latency: the trailing window
	// during which the response was streaming out (on a disaggregated
	// endpoint, the handoff plus the decode stage). An async agent
	// pipeline may overlap its next step's prompt assembly with this
	// window — it is the part of serving that no longer needs the prompt.
	// Zero for backends that do not report it.
	Decode time.Duration
}

// Backend abstracts where serving time comes from. The default (a nil
// backend on the Client) charges the client's own profile latency — a
// dedicated, contention-free deployment. A shared serve.Endpoint implements
// Backend too, so many agents' clients contend for the same replicas,
// admission queue and prefix cache; a serve.FleetClient extends the sharing
// across concurrently running episodes.
//
// # Contract
//
// A Backend decides serving TIME only. The decision/error channel, prompt
// fitting and token accounting stay in the Client, so swapping backends (or
// removing one) must never change what an agent decides — only when its
// clock says the answer arrived. Three rules make that hold:
//
//   - Determinism: Serve must be a pure function of the backend's
//     construction parameters and the sequence of calls it has admitted so
//     far. No wall clock, no goroutine-order dependence, no global state.
//   - Submission-order admission: backends admit calls in the order they
//     are submitted, using Arrival only for queueing/batching arithmetic.
//     Each individual agent's clock is monotone, but a backend handle
//     multiplexes many agents (and a fleet client multiplexes whole
//     episodes), so successive calls may carry non-monotone arrivals —
//     backends must not assume otherwise.
//   - RNG-stream alignment: the Client consumes exactly the same random
//     draws (latency jitter, format-retry Bernoullis, error channel) whether
//     or not a backend is attached — the jitter draw is taken and discarded
//     on the backend path. Two runs of one seed that differ only in backend
//     therefore make identical decisions call for call, and any difference
//     in outcome isolates the serving policy. New backend implementations
//     must not consume client streams.
type Backend interface {
	Serve(Call) Served
}

// BatchBackend is implemented by backends that can serve an explicitly
// aggregated batch — several calls submitted together as one serving
// request (paper Rec. 1's step-phase query aggregation). Unlike the
// continuous-batching join window, where the server opportunistically
// coalesces requests that happen to overlap, ServeBatch is a client-side
// promise: these calls belong together, launch them as one batch. The
// batch launches once its last member has arrived; per-member outcomes are
// returned in submission order.
type BatchBackend interface {
	Backend
	ServeBatch([]Call) []Served
}

// SetBackend routes the client's serving time through b; nil restores the
// direct (dedicated) serving model. The decision/error channel is
// unaffected — only latency accounting moves to the backend.
func (c *Client) SetBackend(b Backend) { c.backend = b }

// Backend reports the client's serving backend (nil = direct).
func (c *Client) Backend() Backend { return c.backend }

// serve computes the serving outcome for one fitted call: through the
// backend when one is attached, otherwise from the client's own profile
// with jitter. The backend path consumes (and discards) the same jitter
// draw as the direct path, so a shared-endpoint run keeps every stream
// aligned with its dedicated-serving twin: decisions and retries match
// call for call, and latency differences isolate the serving policy. The
// direct path prices its own Decode share (the generation term, scaled by
// the same jitter as the whole latency).
func (c *Client) serve(agent string, fitted prompt.Prompt, promptTok, outTok int) Served {
	if c.backend != nil {
		if c.profile.JitterFrac > 0 {
			c.stream.Float64()
		}
		return c.backend.Serve(Call{
			Agent:        agent,
			Arrival:      c.now(),
			Prompt:       fitted,
			PromptTokens: promptTok,
			OutTokens:    outTok,
		})
	}
	lat0 := c.profile.Latency(promptTok, outTok)
	dec := lat0 - c.profile.Latency(promptTok, 0)
	if dec < 0 {
		dec = 0
	}
	lat := lat0
	if c.profile.JitterFrac > 0 {
		lat = time.Duration(c.stream.Jitter(float64(lat0), c.profile.JitterFrac))
		if lat0 > 0 {
			dec = time.Duration(float64(dec) * float64(lat) / float64(lat0))
		}
	}
	return Served{Latency: lat, BatchSize: 1, PromptTokens: promptTok, Decode: dec}
}

// now reports the owning agent's virtual time (zero without a clock).
func (c *Client) now() time.Duration {
	if c.clock == nil {
		return 0
	}
	return c.clock.Now()
}
