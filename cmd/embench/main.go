// Command embench runs workloads and regenerates the paper's tables and
// figures.
//
// Usage:
//
//	embench -exp fig2 [-episodes 5] [-seed 1] [-procs N]  # regenerate a figure
//	embench -exp fig2,fig8 -bench-json BENCH_serve.json   # + machine-readable perf record
//	embench -exp fig10 -fleet-sizes 16,64,256 -serve-shards 1,4  # fleet-admission scale sweep
//	embench -run CoELA [-diff medium] [-agents 2]         # run one episode
//	embench -run CoELA -serve-replicas 1 -serve-batch 4   # ... against a shared endpoint
//	embench -run CoELA -serve-fleet 4 -serve-routing cache-affinity  # fleet of episodes, one endpoint
//	embench -run CoELA -serve-fleet 64 -serve-shards 4    # ... sharded across 4 endpoints
//	embench -run CoELA -serve-fleet 4 -trace-jsonl t.jsonl -trace-out t.json  # flight-record the run
//	embench -run CoELA -serve-fleet 4 -serve-faults on    # fault-injected fleet (seeded crash-restart)
//	embench -replay-trace t.jsonl -serve-replicas 2 -serve-batch 4  # re-run a recorded trace open-loop
//	embench -replay-trace t.jsonl -serve-replicas 2 -serve-faults on -serve-deadline 40s -serve-retry on  # ... resiliently
//	embench -exp fig14                                    # fault injection x resilience-policy sweep
//	embench -list                                         # list workloads/experiments
//
// Experiments fan episodes out over -procs workers (default: all CPUs).
// Episode seeds are derived deterministically from -seed, so reports are
// bit-identical at every -procs value; -procs 1 forces the sequential
// reference path.
//
// The -serve-* flags route every LLM call of a -run episode through one
// shared serving endpoint (internal/serve): -serve-replicas model
// instances placed by -serve-routing, continuous batches of up to
// -serve-batch sequences forming over a -serve-window, and a per-replica
// prefix cache sized in entries (-serve-cache-entries, deprecated) and/or
// tokens (-serve-cache-tokens — the KV-memory budget that also makes
// cache-aware routing capacity-aware), keyed by -serve-cache-identity
// (shape|content). -serve-fleet N attaches N concurrently running episodes
// to ONE endpoint (cross-episode contention), and -serve-aggregate batches
// each step's plan calls explicitly (Rec. 1 step-phase aggregation).
// Flag-by-flag semantics live in docs/EXPERIMENTS.md.
//
// The flight recorder (internal/serve/obs) attaches to any served -run:
// -trace-jsonl writes the event log (cmd/traceview summarizes it, and
// -replay-trace feeds it back through the open-loop replayer), -trace-out
// writes a Chrome trace_event file loadable in Perfetto (ui.perfetto.dev)
// or chrome://tracing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"embench"
	"embench/internal/bench"
	"embench/internal/benchjson"
	"embench/internal/metrics"
	"embench/internal/runner"
	"embench/internal/serve"
	"embench/internal/serve/obs"
	"embench/internal/trace"
)

// The -bench-json schema lives in internal/benchjson, shared with
// cmd/perftrack so producer and consumer cannot drift.

func main() {
	var (
		exp      = flag.String("exp", "", "experiments to regenerate, comma-separated (fig2..fig14, table1, table2, opts, calibrate)")
		run      = flag.String("run", "", "workload to run once (e.g. CoELA)")
		diff     = flag.String("diff", "medium", "task difficulty: easy|medium|hard")
		agents   = flag.Int("agents", 0, "team size (0 = workload default)")
		parallel = flag.Bool("parallel", false,
			"overlap independent per-agent spans within a step (Takeaway 6) for -run episodes")
		episodes = flag.Int("episodes", 5, "episodes per configuration")
		seed     = flag.Uint64("seed", 1, "root random seed")
		procs    = flag.Int("procs", runner.DefaultParallelism(),
			"episode worker-pool size for -exp (1 = sequential; output is identical at any value)")
		benchJSON = flag.String("bench-json", "",
			"write per-experiment wall time and report stats as JSON to this path (with -exp)")
		srvReplicas = flag.Int("serve-replicas", 0,
			"route -run LLM calls through a shared endpoint with this many replicas (0 = dedicated serving)")
		srvBatch = flag.Int("serve-batch", 1, "shared endpoint: max sequences per continuous batch")
		srvWait  = flag.Duration("serve-window", 1500*time.Millisecond,
			"shared endpoint: batching window (how long a batch waits/accepts joiners)")
		srvCache    = flag.Int("serve-cache-entries", 512, "shared endpoint: per-replica prefix-cache capacity in entries (0 disables; deprecated sizing — prefer -serve-cache-tokens)")
		srvCacheTok = flag.Int("serve-cache-tokens", 0,
			"shared endpoint: per-replica prefix-cache budget in TOKENS (live cached tokens; 0 = no token budget). Also makes cache-aware routing capacity-aware")
		srvIdentity = flag.String("serve-cache-identity", "",
			"shared endpoint: prefix-cache identity model (shape|content; default shape)")
		srvRoute = flag.String("serve-routing", "",
			"shared endpoint: replica routing policy (least-loaded|cache-affinity|shortest-completion)")
		srvFleet = flag.Int("serve-fleet", 0,
			"run this many concurrent episodes of -run against ONE shared endpoint (0 = single episode with dedicated serving unless -serve-replicas is set)")
		srvShards = flag.String("serve-shards", "",
			"fleet shard count: with -run -serve-fleet, one integer (split the fleet across that many independent endpoints); with -exp fig10, a comma-separated shard axis (default 1,4)")
		fleetSizes = flag.String("fleet-sizes", "",
			"fig10 fleet-size axis, comma-separated (default 16,64,256,1024,2048; CI uses a reduced axis)")
		srvArrivals = flag.String("serve-arrivals", "",
			"fig12 arrival-process axis, comma-separated (poisson|bursty|diurnal; default all three)")
		srvTenants = flag.String("serve-tenants", "",
			"fig12 tenant-count axis, comma-separated positive integers (default 8,24)")
		srvSLO = flag.Duration("serve-slo", 0,
			"fig12 end-to-end latency SLO (0 = default 60s; must not be negative)")
		srvAutoscale = flag.String("serve-autoscale", "",
			"fig12 autoscaled-deployment policy: 'on', or 'interval=30s,cold=15s,up=0.7,down=0.25,min=2,max=8' ('' = fig12 default)")
		srvFaults = flag.String("serve-faults", "",
			"deterministic replica fault injection on the shared endpoint: 'on' (mtbf=5m,mttr=30s), or 'mtbf=DUR,mttr=DUR,straggle=DUR,for=DUR,slow=F,seed=N' (''/'off' = none)")
		srvRetry = flag.String("serve-retry", "",
			"client retry policy for -replay-trace: 'on' (max=2,jitter=0.2), or 'max=N,base=DUR,factor=F,jitter=F' (''/'off' = none; needs -serve-deadline to trigger)")
		srvHedge = flag.String("serve-hedge", "",
			"client request hedging for -replay-trace: 'on' (delay=2s), or 'delay=DUR' (''/'off' = none)")
		srvShed = flag.String("serve-shed", "",
			"admission load shedding for -replay-trace: 'on' (queue=32), or 'queue=N,wait=DUR,prio=N' (''/'off' = none)")
		srvDeadline = flag.Duration("serve-deadline", 0,
			"per-attempt deadline stamped on every -replay-trace request (0 = none)")
		traceJSONL = flag.String("trace-jsonl", "",
			"flight-record a served -run (or -replay-trace rerun) and write the event log as JSONL to this path")
		traceOut = flag.String("trace-out", "",
			"flight-record a served -run (or -replay-trace rerun) and write a Chrome trace_event file (Perfetto-loadable) to this path")
		replayTrace = flag.String("replay-trace", "",
			"re-run a recorded JSONL event log open-loop through the serve replayer (uses the -serve-* endpoint flags)")
		srvAgg = flag.Bool("serve-aggregate", false,
			"step-phase query aggregation for decentralized workloads: batch all agents' plan calls of a step explicitly (Rec. 1; no effect on single-agent/centralized systems)")
		srvPrefillReplicas = flag.Int("serve-prefill-replicas", 0,
			"disaggregated serving: prefill-pool replica count (set together with -serve-decode-replicas; leaves -serve-replicas 0)")
		srvPrefillBatch = flag.Int("serve-prefill-batch", 1,
			"disaggregated serving: prefill pool's max sequences per continuous batch")
		srvPrefillWindow = flag.Duration("serve-prefill-window", 0,
			"disaggregated serving: prefill pool's batching window")
		srvDecodeReplicas = flag.Int("serve-decode-replicas", 0,
			"disaggregated serving: decode-pool replica count (set together with -serve-prefill-replicas)")
		srvDecodeBatch = flag.Int("serve-decode-batch", 1,
			"disaggregated serving: decode pool's max sequences per continuous batch")
		srvDecodeWindow = flag.Duration("serve-decode-window", 0,
			"disaggregated serving: decode pool's batching window")
		srvHandoff = flag.String("serve-handoff", "",
			"disaggregated serving: prefill→decode KV-transfer cost, 'lat=40ms,rate=200000' (''/'off' = free)")
		srvPipeline = flag.Bool("serve-pipeline", false,
			"async agent pipeline: overlap each step's sensing/retrieval with the previous plan call's decode window")
		list = flag.Bool("list", false, "list workloads and experiments")
	)
	flag.Parse()

	// Validate mode-independent serving flags up front so a malformed spec
	// fails the same way no matter which mode consumes it.
	if *srvDeadline < 0 {
		fatal(fmt.Errorf("-serve-deadline must not be negative, got %v", *srvDeadline))
	}

	switch {
	case *list:
		fmt.Println("workloads: ", strings.Join(embench.Workloads(), ", "))
		fmt.Println("experiments:", strings.Join(embench.Experiments(), ", "))
	case *exp != "":
		sizes, err := parseIntList(*fleetSizes)
		if err != nil {
			fatal(fmt.Errorf("-fleet-sizes: %w", err))
		}
		shardAxis, err := parseIntList(*srvShards)
		if err != nil {
			fatal(fmt.Errorf("-serve-shards: %w", err))
		}
		tenants, err := parseIntList(*srvTenants)
		if err != nil {
			fatal(fmt.Errorf("-serve-tenants: %w", err))
		}
		if *srvSLO < 0 {
			fatal(fmt.Errorf("-serve-slo must not be negative, got %v", *srvSLO))
		}
		var arrivals []string
		for _, part := range strings.Split(*srvArrivals, ",") {
			if part = strings.TrimSpace(part); part != "" {
				// Parsed here only to fail fast with the flag name attached;
				// ExperimentFull re-validates for library callers.
				if _, err := embench.ParseArrival(part); err != nil {
					fatal(fmt.Errorf("-serve-arrivals: %w", err))
				}
				arrivals = append(arrivals, part)
			}
		}
		if _, err := embench.ParseAutoscale(*srvAutoscale); err != nil {
			fatal(fmt.Errorf("-serve-autoscale: %w", err))
		}
		out := benchjson.File{Suite: "embench", GeneratedBy: "embench -bench-json"}
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			//detlint:allow wallclock harness wall-timing for the run footer; not simulation time
			start := time.Now()
			report, metrics, err := embench.ExperimentFull(name, embench.ExperimentConfig{
				Episodes: *episodes, Seed: *seed, Parallelism: *procs,
				FleetSizes: sizes, FleetShards: shardAxis,
				Arrivals: arrivals, Tenants: tenants,
				SLO: *srvSLO, Autoscale: *srvAutoscale,
			})
			if err != nil {
				fatal(err)
			}
			//detlint:allow wallclock harness wall-timing for the run footer; not simulation time
			wall := time.Since(start)
			fmt.Print(report)
			// The axis is rendered from the EFFECTIVE parsed axes —
			// defaults filled in, not the raw flag text — so spelling the
			// default ladder explicitly, cosmetic list spellings, and a
			// bare `-exp fig10` all share one trajectory config key per
			// actual configuration.
			axis := ""
			if strings.EqualFold(name, "fig10") {
				effSizes, effShards := sizes, shardAxis
				if len(effSizes) == 0 {
					effSizes = bench.Fig10FleetSizes
				}
				if len(effShards) == 0 {
					effShards = bench.Fig10Shards
				}
				axis = fmt.Sprintf("sizes=%s;shards=%s",
					joinInts(effSizes), joinInts(effShards))
			}
			if strings.EqualFold(name, "fig12") {
				effArrivals, effTenants, effSLO := arrivals, tenants, *srvSLO
				if len(effArrivals) == 0 {
					for _, k := range serve.ArrivalKinds() {
						effArrivals = append(effArrivals, string(k))
					}
				}
				if len(effTenants) == 0 {
					effTenants = bench.Fig12Tenants
				}
				if effSLO <= 0 {
					effSLO = bench.Fig12SLO
				}
				autoscale := *srvAutoscale
				if autoscale == "" {
					autoscale = "default"
				}
				axis = fmt.Sprintf("arrivals=%s;tenants=%s;slo=%s;autoscale=%s",
					strings.Join(effArrivals, ","), joinInts(effTenants), effSLO, autoscale)
			}
			out.Entries = append(out.Entries, benchjson.Entry{
				Experiment: name, Episodes: *episodes, Seed: *seed, Procs: *procs,
				WallMS:     float64(wall.Microseconds()) / 1000,
				ReportB:    len(report),
				ReportRows: strings.Count(report, "\n"),
				Axis:       axis,
				Metrics:    metrics,
			})
			out.TotalWallMS += float64(wall.Microseconds()) / 1000
		}
		if *benchJSON != "" {
			if err := writeBenchJSON(*benchJSON, out); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "embench: wrote %s (%d experiments, %.0f ms total)\n",
				*benchJSON, len(out.Entries), out.TotalWallMS)
		}
	case *replayTrace != "":
		routing, err := embench.ParseRouting(*srvRoute)
		if err != nil {
			fatal(err)
		}
		identity, err := embench.ParseIdentity(*srvIdentity)
		if err != nil {
			fatal(err)
		}
		handoff, err := embench.ParseHandoff(*srvHandoff)
		if err != nil {
			fatal(err)
		}
		faults, retry, hedge, shed := resilienceFlags(*srvFaults, *srvRetry, *srvHedge, *srvShed)
		f, err := os.Open(*replayTrace)
		if err != nil {
			fatal(err)
		}
		events, err := obs.ReadJSONL(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if err := obs.Validate(events); err != nil {
			fatal(err)
		}
		reqs, err := serve.TraceRequests(events)
		if err != nil {
			fatal(err)
		}
		if len(reqs) == 0 {
			fatal(fmt.Errorf("%s holds no submit events — nothing to replay", *replayTrace))
		}
		disagg := *srvPrefillReplicas > 0 || *srvDecodeReplicas > 0
		replicas := *srvReplicas
		if replicas <= 0 && !disagg {
			replicas = 1
		}
		sc := serve.Config{
			Replicas: replicas, Routing: routing, MaxBatch: *srvBatch,
			MaxWait: *srvWait, CacheEntries: *srvCache, CacheTokens: *srvCacheTok,
			Identity: identity,
			Prefill: serve.PoolConfig{
				Replicas: *srvPrefillReplicas, MaxBatch: *srvPrefillBatch, MaxWait: *srvPrefillWindow,
			},
			Decode: serve.PoolConfig{
				Replicas: *srvDecodeReplicas, MaxBatch: *srvDecodeBatch, MaxWait: *srvDecodeWindow,
			},
			Handoff: handoff,
			Faults:  faults, Retry: retry, Hedge: hedge, Shed: shed,
		}
		// TryNew, not Validate: exercise the real construction path so a
		// bad flag combo errors here instead of panicking inside Replay.
		if _, err := serve.TryNew(sc); err != nil {
			fatal(err)
		}
		if *srvDeadline > 0 {
			for i := range reqs {
				reqs[i].Deadline = *srvDeadline
			}
		}
		var rec *obs.Recorder
		var res serve.ReplayResult
		if *traceJSONL != "" || *traceOut != "" {
			rec = obs.NewRecorder()
			res = serve.ReplayObserved(sc, reqs, rec)
		} else {
			res = serve.Replay(sc, reqs)
		}
		s := res.Stats
		fmt.Printf("replayed    %d requests (%d batches) from %s in %.1f simulated min\n",
			len(res.Completions), res.Batches, *replayTrace, res.Makespan.Minutes())
		fmt.Printf("endpoint    %d replica(s) [%s]: %.1fs mean queue wait, %.2f batch occupancy, %.0f%% cache hits, %.1f req/s\n",
			s.Replicas, sc.Routing, s.MeanQueueWait().Seconds(),
			s.BatchOccupancy(), 100*s.CacheHitRate(), res.Throughput())
		printPercentiles(s)
		printResilience(s)
		if rec != nil {
			if err := writeTraces(rec, *traceJSONL, *traceOut); err != nil {
				fatal(err)
			}
		}
	case *run != "":
		routing, err := embench.ParseRouting(*srvRoute)
		if err != nil {
			fatal(err)
		}
		identity, err := embench.ParseIdentity(*srvIdentity)
		if err != nil {
			fatal(err)
		}
		handoff, err := embench.ParseHandoff(*srvHandoff)
		if err != nil {
			fatal(err)
		}
		faults, retry, hedge, shed := resilienceFlags(*srvFaults, *srvRetry, *srvHedge, *srvShed)
		// Negative serving sizes are configuration mistakes: fail with a
		// clear message instead of silently clamping to a default.
		for _, v := range []struct {
			name  string
			value int
		}{
			{"serve-replicas", *srvReplicas},
			{"serve-cache-entries", *srvCache},
			{"serve-cache-tokens", *srvCacheTok},
			{"serve-batch", *srvBatch},
			{"serve-fleet", *srvFleet},
			{"serve-prefill-replicas", *srvPrefillReplicas},
			{"serve-prefill-batch", *srvPrefillBatch},
			{"serve-decode-replicas", *srvDecodeReplicas},
			{"serve-decode-batch", *srvDecodeBatch},
		} {
			if v.value < 0 {
				fatal(fmt.Errorf("-%s must be >= 0, got %d", v.name, v.value))
			}
		}
		disagg := *srvPrefillReplicas > 0 || *srvDecodeReplicas > 0
		opt := embench.Options{
			Seed: *seed, Parallel: *parallel, Aggregate: *srvAgg,
			Pipeline: *srvPipeline,
		}
		sc := embench.ServeConfig{
			Replicas: *srvReplicas, Routing: routing, MaxBatch: *srvBatch,
			MaxWait: *srvWait, CacheEntries: *srvCache, CacheTokens: *srvCacheTok,
			Identity: identity,
			Prefill: serve.PoolConfig{
				Replicas: *srvPrefillReplicas, MaxBatch: *srvPrefillBatch, MaxWait: *srvPrefillWindow,
			},
			Decode: serve.PoolConfig{
				Replicas: *srvDecodeReplicas, MaxBatch: *srvDecodeBatch, MaxWait: *srvDecodeWindow,
			},
			Handoff: handoff,
			Faults:  faults, Retry: retry, Hedge: hedge, Shed: shed,
		}
		// TryNew, not Validate: exercise the real construction path so a
		// bad flag combo errors here instead of panicking mid-episode.
		if _, err := serve.TryNew(sc); err != nil {
			fatal(err)
		}
		// The flight recorder attaches to the shared endpoint, so tracing a
		// run requires one (dedicated per-agent serving has no sink seam).
		var rec *obs.Recorder
		if *traceJSONL != "" || *traceOut != "" {
			if *srvFleet <= 0 && *srvReplicas <= 0 && !disagg {
				fatal(fmt.Errorf("-trace-jsonl/-trace-out need a shared endpoint: set -serve-fleet, -serve-replicas or the -serve-prefill-*/-serve-decode-* pools"))
			}
			rec = obs.NewRecorder()
			opt.Sink = rec
		}
		if *srvFleet > 0 {
			// Fleet mode: the episodes (one is allowed — the degenerate
			// fleet) run against a shared deployment of -serve-shards
			// independent endpoints (default 1).
			shards := 1
			if *srvShards != "" {
				list, err := parseIntList(*srvShards)
				if err != nil || len(list) != 1 {
					fatal(fmt.Errorf("-serve-shards with -run takes one integer, got %q", *srvShards))
				}
				shards = list[0]
			}
			res, err := embench.RunFleet(*run, *diff, *agents, *srvFleet, shards, opt, sc)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("workload    %s (%s, seed %d) × %d concurrent episodes on %d shard(s)\n",
				*run, *diff, *seed, *srvFleet, shards)
			for i, e := range res.Episodes {
				fmt.Printf("episode %-2d  success=%-5v steps=%-3d sim=%6.1fm  queue=%5.1fs  cache=%3.0f%%\n",
					i, e.Success, e.Steps, e.SimDuration.Minutes(),
					e.Serving.MeanQueueWait().Seconds(), 100*e.Serving.CacheHitRate())
			}
			s := res.Serving
			fmt.Printf("endpoint    %d requests on %d replica(s) [%s]: %.1fs mean queue wait, %.2f batch occupancy, %.0f%% cache hits\n",
				s.Requests, s.Replicas, sc.Routing, s.MeanQueueWait().Seconds(),
				s.BatchOccupancy(), 100*s.CacheHitRate())
			fmt.Printf("kv cache    %.2f max replica share, %d peak cached tokens, %d evicted tokens\n",
				s.MaxReplicaShare(), s.CacheTokensPeak, s.EvictedTokens)
			printPercentiles(s)
			printResilience(s)
			if rec != nil {
				if err := writeTraces(rec, *traceJSONL, *traceOut); err != nil {
					fatal(err)
				}
			}
			return
		}
		if *srvReplicas > 0 || disagg {
			opt.Serve = &sc
		} else {
			// Serve tuning flags do nothing without an endpoint; say so
			// instead of silently running with dedicated serving.
			// -serve-aggregate and -serve-pipeline stay out of the warning:
			// both also work against dedicated serving.
			flag.Visit(func(f *flag.Flag) {
				if strings.HasPrefix(f.Name, "serve-") && f.Name != "serve-replicas" &&
					f.Name != "serve-aggregate" && f.Name != "serve-pipeline" {
					fmt.Fprintf(os.Stderr,
						"embench: -%s has no effect without -serve-replicas > 0 (running with dedicated serving)\n", f.Name)
				}
			})
		}
		out, err := embench.RunOpt(*run, *diff, *agents, opt)
		if err != nil {
			fatal(err)
		}
		e := out.Episode
		fmt.Printf("workload    %s (%s, seed %d)\n", *run, *diff, *seed)
		fmt.Printf("success     %v\n", e.Success)
		fmt.Printf("steps       %d (cap hit: %v)\n", e.Steps, e.ReachedLimit)
		fmt.Printf("sim time    %.1f min (%.1f s/step)\n",
			e.SimDuration.Minutes(), e.SimDuration.Seconds()/float64(max(e.Steps, 1)))
		fmt.Printf("llm         %d calls, %d prompt tokens, %d output tokens (%.0f%% of latency)\n",
			e.LLMCalls, e.PromptTokens, e.OutputTokens, 100*e.LLMShare)
		if e.Messages.Generated > 0 {
			fmt.Printf("messages    %d generated, %.0f%% useful\n",
				e.Messages.Generated, 100*e.Messages.UsefulRate())
		}
		if s := e.Serving; s.Requests > 0 {
			fmt.Printf("serving     %d requests on %d replica(s): %.1fs mean queue wait, %.2f batch occupancy, %.0f%% cache hits\n",
				s.Requests, s.Replicas, s.MeanQueueWait().Seconds(),
				s.BatchOccupancy(), 100*s.CacheHitRate())
		}
		fmt.Printf("breakdown  ")
		for _, m := range trace.Modules {
			if d, ok := e.Breakdown[m]; ok && d > 0 {
				fmt.Printf(" %s=%.1fs", m, d.Seconds())
			}
		}
		fmt.Println()
		if rec != nil {
			if err := writeTraces(rec, *traceJSONL, *traceOut); err != nil {
				fatal(err)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// printPercentiles renders the serving latency tails: end-to-end and
// queue-wait p50/p95/p99 from the endpoint's exactly mergeable histograms.
func printPercentiles(s metrics.Serving) {
	q := func(h metrics.Hist, p float64) float64 { return h.Quantile(p).Seconds() }
	fmt.Printf("latency     p50=%.1fs p95=%.1fs p99=%.1fs end-to-end; queue p50=%.1fs p95=%.1fs p99=%.1fs\n",
		q(s.LatencyHist, 0.50), q(s.LatencyHist, 0.95), q(s.LatencyHist, 0.99),
		q(s.QueueWaitHist, 0.50), q(s.QueueWaitHist, 0.95), q(s.QueueWaitHist, 0.99))
}

// printResilience renders the fault/resilience counters; quiet when no
// failure machinery fired, so fault-free output is unchanged.
func printResilience(s metrics.Serving) {
	if s.ShedRequests == 0 && s.Retries == 0 && s.HedgesIssued == 0 &&
		s.TimedOut == 0 && s.FailedBatches == 0 && s.ReplicaDowntime == 0 {
		return
	}
	fmt.Printf("resilience  %d shed, %d retries, %d hedges (%d won), %d timed out; %d batches crash-killed, %.0fs replica downtime\n",
		s.ShedRequests, s.Retries, s.HedgesIssued, s.HedgeWins, s.TimedOut,
		s.FailedBatches, s.ReplicaDowntime.Seconds())
}

// resilienceFlags parses the fault/resilience flag strings, exiting with
// the flag name attached on a bad spec.
func resilienceFlags(faults, retry, hedge, shed string) (serve.Faults, serve.RetryPolicy, serve.HedgePolicy, serve.ShedPolicy) {
	fx, err := embench.ParseFaults(faults)
	if err != nil {
		fatal(fmt.Errorf("-serve-faults: %w", err))
	}
	rp, err := embench.ParseRetry(retry)
	if err != nil {
		fatal(fmt.Errorf("-serve-retry: %w", err))
	}
	hp, err := embench.ParseHedge(hedge)
	if err != nil {
		fatal(fmt.Errorf("-serve-hedge: %w", err))
	}
	sp, err := embench.ParseShed(shed)
	if err != nil {
		fatal(fmt.Errorf("-serve-shed: %w", err))
	}
	return fx, rp, hp, sp
}

// writeTraces persists a recorded event stream in the requested formats:
// JSONL (the interchange format traceview and -replay-trace consume) and/or
// Chrome trace_event JSON (Perfetto / chrome://tracing).
func writeTraces(rec *obs.Recorder, jsonlPath, chromePath string) error {
	events := rec.Events()
	write := func(path, what string, fn func(w *os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "embench: wrote %s (%s, %d events)\n", path, what, len(events))
		return nil
	}
	if jsonlPath != "" {
		if err := write(jsonlPath, "event log", func(w *os.File) error {
			return obs.WriteJSONL(w, events)
		}); err != nil {
			return err
		}
	}
	if chromePath != "" {
		if err := write(chromePath, "Chrome trace", func(w *os.File) error {
			return obs.WriteChromeTrace(w, events)
		}); err != nil {
			return err
		}
	}
	return nil
}

// writeBenchJSON persists the perf record with a trailing newline so the
// file diffs cleanly across runs.
func writeBenchJSON(path string, out benchjson.File) error {
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// joinInts renders ints as a canonical comma list.
func joinInts(ns []int) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ",")
}

// parseIntList parses a comma-separated list of positive integers; the
// empty string is nil (use the experiment's default axis).
func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad value %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "embench:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
