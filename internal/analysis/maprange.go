package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// mapRangeScope lists the simulation subtrees in which ranging over a map
// is a determinism hazard: these packages decide episode outcomes, so an
// iteration-order-dependent pick makes runs differ byte for byte. The
// bench/report layers are out of scope — they aggregate already-merged
// results — as is internal/metrics, whose map loops are pure sums.
var mapRangeScope = []string{
	"core", "env", "world", "serve", "multiagent", "prompt", "llm",
}

// MapRange flags `for ... range m` over a map in the simulation packages.
// Go randomizes map iteration order on purpose, so any loop that selects,
// orders, or emits based on the visit sequence is nondeterministic — the
// exact bug class PR 1 fixed by hand in four planners. Keys must flow
// through world.SortedKeys (or an explicit sort) instead.
//
// A bare `for range m` with neither key nor value variable is exempt: the
// body cannot observe which element the iteration is on, so order cannot
// leak. Order-insensitive aggregation loops (pure keyed writes, sums,
// set-builds) are suppressed site by site with
// //detlint:allow maprange <justification>.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "flags range-over-map in simulation packages; map iteration order is randomized, " +
		"so keys must flow through world.SortedKeys or an explicit sort",
	Run: runMapRange,
}

// inMapRangeScope reports whether the package path lies in one of the
// internal/<name> subtrees the analyzer polices.
func inMapRangeScope(path string) bool {
	for _, sub := range mapRangeScope {
		marker := "/internal/" + sub
		if i := strings.Index(path, marker); i >= 0 {
			rest := path[i+len(marker):]
			if rest == "" || rest[0] == '/' {
				return true
			}
		}
	}
	return false
}

func runMapRange(pass *Pass) error {
	if !inMapRangeScope(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if rs.Key == nil && rs.Value == nil {
				// The body cannot see the element, so order cannot matter.
				return true
			}
			pass.Reportf(rs.Range,
				"range over %s iterates in randomized order; range world.SortedKeys(m) or sort explicitly (or annotate //detlint:allow maprange <why> if order provably cannot leak)",
				typeLabel(tv.Type))
			return true
		})
	}
	return nil
}

// typeLabel renders a type tersely for messages (map[K]V, no package
// qualifiers beyond the last path element).
func typeLabel(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
