package serve

import (
	"time"

	"embench/internal/llm"
	"embench/internal/metrics"
	"embench/internal/serve/obs"
)

// Disaggregated serving (paper Rec. 3 taken to its deployment conclusion,
// and the PAPERS.md perception/generation-disaggregation line): the
// endpoint splits into a PREFILL pool that runs prompt processing and a
// DECODE pool that runs token generation, with a priced KV handoff between
// them. Each pool is a complete inner Endpoint — its own replicas,
// continuous batching, routing and (prefill only) prefix caches — so every
// scheduling behaviour the monolithic endpoint has is available per stage,
// and stage interference disappears by construction: a long prefill can no
// longer stall decode slots and vice versa.
//
// # Lifecycle
//
// A request arrives at the prefill pool exactly as it would at a monolithic
// endpoint (same admission, batching, cache pricing — the prefill pool's
// profile simply has DecodeRate 0, so batches cost only overhead+prefill).
// When its prefill batch completes, the request pays the KV Handoff
// (fixed latency + prompt tokens / transfer rate) and re-arrives at the
// decode pool as a promptless request carrying only its generation length;
// the decode pool's profile has Overhead and PrefillRate 0, so its batches
// cost only the decode term (with the usual batch slowdown at the DECODE
// pool's occupancy). In open-loop replay the decode queue is the standard
// (Priority, arrival, index) admission queue, so Request.Priority governs
// exactly where decode contention forms.
//
// # Accounting
//
// The parent endpoint's Stats() folds the two pools: flow sums add,
// Replicas and ReplicaRequests concatenate (prefill replicas first),
// per-stage splits land in PrefillService/DecodeService and
// PrefillWait/DecodeWait, and handoff totals in HandoffTime/HandoffTokens.
// BatchedSeqs reports the DECODE pool's occupancy (each request rides one
// batch per stage; decode occupancy is the one the monolithic number is
// comparable to, since decode dominates service time). The parent's
// latency/wait histograms hold END-TO-END values observed at serve time;
// continuous-batching joins restate completions within a stage (each inner
// pool keeps the monolithic as-served convention), but the parent's
// end-to-end histogram does not retroactively restate — the stage split is
// where the convention has to pick a side, and serve-time is the one that
// keeps closed-loop and open-loop parents identical.
//
// # Determinism
//
// Both pools are ordinary Endpoints driven by the same virtual timeline;
// the handoff is a pure function of prefill completion. Disaggregation off
// (both pools zero) never constructs this state, so monolithic configs are
// byte-identical to builds predating this file.
type disaggState struct {
	prefill *Endpoint
	decode  *Endpoint
	handoff Handoff
	// stats carries only what neither pool can see: the end-to-end
	// latency/wait distributions and the handoff totals. fold() grafts the
	// pools' sums around it.
	stats metrics.Serving
}

// stageProfiles splits one pricing profile into its prefill-only and
// decode-only stage profiles. A FixedLatency profile prices the whole
// request as one constant; the prefill stage carries it and the decode
// stage is free (splitting a constant would double-charge).
func stageProfiles(p llm.Profile) (pre, dec llm.Profile) {
	pre = p
	pre.Name = p.Name + "/prefill"
	pre.DecodeRate = 0
	dec = p
	dec.Name = p.Name + "/decode"
	dec.Overhead = 0
	dec.PrefillRate = 0
	dec.FixedLatency = 0
	if p.FixedLatency > 0 {
		dec.DecodeRate = 0
	}
	return pre, dec
}

// stageConfig builds one pool's inner endpoint config. Routing, cache
// identity and the cached-prefill discount follow the parent; batching is
// the pool's own. The prefill pool inherits the parent's cache budgets
// when the pool doesn't set its own; the decode pool never caches (there
// is no prompt left to share — inheritCache is false and both budgets stay
// zero, which disables caching).
func stageConfig(parent Config, pool PoolConfig, profile llm.Profile, inheritCache bool) Config {
	c := Config{
		Profile:           profile,
		Replicas:          pool.Replicas,
		Routing:           parent.Routing,
		MaxBatch:          pool.MaxBatch,
		MaxWait:           pool.MaxWait,
		Identity:          parent.Identity,
		CachedPrefillFrac: parent.CachedPrefillFrac,
	}
	if inheritCache {
		c.CacheTokens, c.CacheEntries = pool.CacheTokens, pool.CacheEntries
		if c.CacheTokens == 0 && c.CacheEntries == 0 {
			c.CacheTokens, c.CacheEntries = parent.CacheTokens, parent.CacheEntries
		}
	}
	return c
}

// newDisagg builds the two stage pools behind a disaggregated parent. The
// parent endpoint keeps no replicas of its own; every Serve/Stats/Reset
// entry point dispatches through e.dis.
func newDisagg(cfg Config) *disaggState {
	pre, dec := stageProfiles(cfg.Profile)
	return &disaggState{
		prefill: New(stageConfig(cfg, cfg.Prefill, pre, true)),
		decode:  New(stageConfig(cfg, cfg.Decode, dec, false)),
		handoff: cfg.Handoff,
	}
}

// emitHandoff records one prefill→decode transfer on the parent's sink.
func (e *Endpoint) emitHandoff(req int64, agent string, t time.Duration, tokens int, dur time.Duration) {
	e.sink.Event(obs.Event{
		Kind: obs.KindHandoff, T: t, Shard: e.shard,
		Req: req, Agent: agent, Tokens: tokens, Dur: dur,
		Stage: "handoff",
	})
}

// serve runs one closed-loop request through prefill → handoff → decode.
// The decode-stage submission is promptless (only the generation length
// survives the handoff), re-arriving at prefill completion plus the priced
// transfer; its queueing and batching then play out on the decode pool's
// own timeline. The returned Served sums the stages; Decode covers the
// handoff plus the decode stage — the trailing window an async agent
// pipeline may overlap.
func (d *disaggState) serve(e *Endpoint, c llm.Call) llm.Served {
	ps := d.prefill.Serve(c)
	h := d.handoff.cost(ps.PromptTokens)
	handoffT := c.Arrival + ps.Latency
	if e.sink != nil {
		e.emitHandoff(d.prefill.reqID, c.Agent, handoffT, ps.PromptTokens, h)
	}
	ds := d.decode.Serve(llm.Call{Agent: c.Agent, Arrival: handoffT + h, OutTokens: c.OutTokens})
	lat := ps.Latency + h + ds.Latency
	wait := ps.QueueWait + ds.QueueWait
	d.stats.LatencyHist.Observe(lat)
	d.stats.QueueWaitHist.Observe(wait)
	d.stats.HandoffTime += h
	d.stats.HandoffTokens += ps.PromptTokens
	return llm.Served{
		Latency: lat, QueueWait: wait, BatchSize: ds.BatchSize,
		CachedTokens: ps.CachedTokens, PromptTokens: ps.PromptTokens,
		Decode: h + ds.Latency,
	}
}

// serveBatch runs an explicitly aggregated batch through both stages: one
// prefill batch, then (handoffs priced per member) one decode batch. All
// members leave prefill together, so equal handoff costs re-arrive
// together and the decode pool batches them again.
func (d *disaggState) serveBatch(e *Endpoint, calls []llm.Call) []llm.Served {
	ps := d.prefill.ServeBatch(calls)
	reqBase := d.prefill.reqID - int64(len(calls)) + 1
	dcalls := make([]llm.Call, len(calls))
	hs := make([]time.Duration, len(calls))
	for i, c := range calls {
		hs[i] = d.handoff.cost(ps[i].PromptTokens)
		handoffT := c.Arrival + ps[i].Latency
		if e.sink != nil {
			e.emitHandoff(reqBase+int64(i), c.Agent, handoffT, ps[i].PromptTokens, hs[i])
		}
		d.stats.HandoffTime += hs[i]
		d.stats.HandoffTokens += ps[i].PromptTokens
		dcalls[i] = llm.Call{Agent: c.Agent, Arrival: handoffT + hs[i], OutTokens: c.OutTokens}
	}
	ds := d.decode.ServeBatch(dcalls)
	out := make([]llm.Served, len(calls))
	for i := range calls {
		lat := ps[i].Latency + hs[i] + ds[i].Latency
		wait := ps[i].QueueWait + ds[i].QueueWait
		d.stats.LatencyHist.Observe(lat)
		d.stats.QueueWaitHist.Observe(wait)
		out[i] = llm.Served{
			Latency: lat, QueueWait: wait, BatchSize: ds[i].BatchSize,
			CachedTokens: ps[i].CachedTokens, PromptTokens: ps[i].PromptTokens,
			Decode: hs[i] + ds[i].Latency,
		}
	}
	return out
}

// replayDisagg is the open-loop path: replay the whole trace on the
// prefill pool, then replay the handed-off requests on the decode pool.
// Stage-2 arrivals are prefill completions plus handoff cost; the decode
// pool's standard (Priority, arrival, index) admission queue is what makes
// Request.Priority a decode-scheduling policy. Completions merge the
// stages per request (PrefillDone/DecodeWait carry the split).
func replayDisagg(e *Endpoint, reqs []Request) ReplayResult {
	d := e.dis
	pres := replayOn(d.prefill, reqs)
	res := ReplayResult{
		Completions: make([]Completion, len(reqs)),
		Batches:     pres.Batches,
	}
	if len(reqs) == 0 {
		res.Stats = e.Stats()
		return res
	}
	stage2 := make([]Request, len(reqs))
	for i := range reqs {
		pc := pres.Completions[i]
		h := d.handoff.cost(pc.PromptTokens)
		if e.sink != nil {
			e.emitHandoff(int64(i)+1, reqs[i].Agent, pc.Done, pc.PromptTokens, h)
		}
		d.stats.HandoffTime += h
		d.stats.HandoffTokens += pc.PromptTokens
		stage2[i] = Request{
			Agent: reqs[i].Agent, Priority: reqs[i].Priority,
			Arrival: pc.Done + h, OutTokens: reqs[i].OutTokens,
		}
	}
	dres := replayOn(d.decode, stage2)
	res.Batches += dres.Batches
	res.Makespan = dres.Makespan
	for i := range reqs {
		pc, dc := pres.Completions[i], dres.Completions[i]
		d.stats.LatencyHist.Observe(dc.Done - pc.Arrival)
		d.stats.QueueWaitHist.Observe(pc.QueueWait + dc.QueueWait)
		res.Completions[i] = Completion{
			Agent: pc.Agent, Arrival: pc.Arrival, Start: pc.Start,
			PrefillDone: pc.Done, Done: dc.Done,
			QueueWait: pc.QueueWait, DecodeWait: dc.QueueWait,
			BatchSize:    dc.BatchSize,
			PromptTokens: pc.PromptTokens, CachedTokens: pc.CachedTokens,
		}
	}
	res.Stats = e.Stats()
	return res
}

// fold merges the two pools' statistics into the parent's Serving view:
// flow sums add, the stage splits land in the Prefill*/Decode* fields, and
// the end-to-end distributions plus handoff totals come from d.stats (see
// the type comment for the BatchedSeqs and histogram conventions).
func (d *disaggState) fold() metrics.Serving {
	pf := d.prefill.Stats()
	dc := d.decode.Stats()
	s := d.stats
	s.Requests = pf.Requests
	s.Replicas = pf.Replicas + dc.Replicas
	s.QueueWait = pf.QueueWait + dc.QueueWait
	s.Service = pf.Service + dc.Service
	s.BatchedSeqs = dc.BatchedSeqs
	s.PrefillTokens = pf.PrefillTokens
	s.CachedTokens = pf.CachedTokens
	s.CacheTokensPeak = pf.CacheTokensPeak
	if dc.CacheTokensPeak > s.CacheTokensPeak {
		s.CacheTokensPeak = dc.CacheTokensPeak
	}
	s.EvictedTokens = pf.EvictedTokens + dc.EvictedTokens
	s.PrefillService = pf.Service
	s.DecodeService = dc.Service
	s.PrefillWait = pf.QueueWait
	s.DecodeWait = dc.QueueWait
	s.ReplicaRequests = make([]int, 0, len(pf.ReplicaRequests)+len(dc.ReplicaRequests))
	s.ReplicaRequests = append(s.ReplicaRequests, pf.ReplicaRequests...)
	s.ReplicaRequests = append(s.ReplicaRequests, dc.ReplicaRequests...)
	s.ReplicaTime = pf.ReplicaTime + dc.ReplicaTime
	s.ScaleUps = pf.ScaleUps + dc.ScaleUps
	s.ScaleDowns = pf.ScaleDowns + dc.ScaleDowns
	return s
}

// stageSink tags one pool's flight-recorder events with its stage before
// forwarding to the shared sink. The decode pool's submit events are
// dropped entirely: a decode-stage submission is promptless (the schema
// requires submit events to carry a prompt chain), and TraceRequests must
// reconstruct each request exactly once — from its prefill submission.
type stageSink struct {
	sink       obs.Sink
	stage      string
	dropSubmit bool
}

func (s stageSink) Event(ev obs.Event) {
	if s.dropSubmit && ev.Kind == obs.KindSubmit {
		return
	}
	ev.Stage = s.stage
	s.sink.Event(ev)
}
