package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load enumerates, parses and type-checks the packages matching patterns,
// resolving every import — standard library and intra-module alike — from
// compiler export data produced by `go list -deps -export`. This is what
// lets the suite type-check itself offline with no dependency on
// golang.org/x/tools: the build cache already holds (or builds on demand)
// the export data for every dependency, exactly as `go vet` consumes it.
//
// dir is the directory to run `go list` in (the module root or below).
// Test files are listed but excluded later by Run; packages reached only
// as dependencies are imported from export data, never re-analyzed.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := NewExportImporter(fset, nil, exports)
	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		typesPkg, info, err := TypeCheck(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:      t.ImportPath,
			Dir:       t.Dir,
			Fset:      fset,
			Files:     files,
			Types:     typesPkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// TypeCheck type-checks one package's parsed files with the given
// importer, returning the package and a fully populated Info.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// NewExportImporter returns a types.Importer that resolves import paths
// through importMap (vet's source-path → canonical-path map; nil means
// identity) and reads compiler export data files named by exportFiles
// (canonical path → file). The underlying reader is the standard gc
// importer, so anything `go build` can compile, this can import.
func NewExportImporter(fset *token.FileSet, importMap map[string]string, exportFiles map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exportFiles[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{
		importMap: importMap,
		gc:        importer.ForCompiler(fset, "gc", lookup),
	}
}

type exportImporter struct {
	importMap map[string]string
	gc        types.Importer
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := e.importMap[path]; ok {
		path = mapped
	}
	return e.gc.Import(path)
}
