package bench

import (
	"reflect"
	"testing"
	"time"

	"embench/internal/serve"
)

const (
	fig14Mid  = 3 * time.Minute // mid failure rate: stragglers dominate
	fig14High = time.Minute     // extreme failure rate: capacity collapse
)

// TestFig14GracefulDegradation pins the experiment's regime structure:
// the full resilience ladder is free when nothing fails, and at every
// injected failure rate it buys SLO attainment back over the no-policy
// baseline — graceful degradation, not a tradeoff that only pays in one
// regime. Deterministic (fixed seed), so the margins are exact.
func TestFig14GracefulDegradation(t *testing.T) {
	rep := Fig14(Config{Seed: 1})
	if want := len(Fig14MTBFs) * 4; len(rep.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), want)
	}

	// Fault-free: every policy step attains the SLO fully and no failure
	// machinery fires — resilience must cost nothing when nothing fails.
	for _, p := range []string{"none", "retry", "retry+hedge", "retry+hedge+shed"} {
		r := fig14Find(rep, 0, p)
		if r.Attainment < 0.999 {
			t.Errorf("fault-free %s: attainment %.3f, want 1.0", p, r.Attainment)
		}
		if r.Shed != 0 || r.TimedOut != 0 || r.Retries != 0 {
			t.Errorf("fault-free %s: shed/timeout/retry = %d/%d/%d, want 0",
				p, r.Shed, r.TimedOut, r.Retries)
		}
		if r.FailedBatches != 0 || r.Downtime != 0 {
			t.Errorf("fault-free %s: failed batches %d, downtime %v", p, r.FailedBatches, r.Downtime)
		}
	}

	// Every faulted step: faults actually happened, and the full ladder
	// clears the no-policy baseline by at least a point of attainment.
	var lastDowntime time.Duration
	for _, mtbf := range Fig14MTBFs[1:] {
		none := fig14Find(rep, mtbf, "none")
		full := fig14Find(rep, mtbf, "retry+hedge+shed")
		if none.Downtime <= 0 || none.FailedBatches <= 0 {
			t.Errorf("mtbf %v: downtime %v, failed batches %d — faults not injected?",
				mtbf, none.Downtime, none.FailedBatches)
		}
		// The axis shrinks MTBF, so downtime must grow step over step.
		if none.Downtime <= lastDowntime {
			t.Errorf("mtbf %v: downtime %v not above previous step's %v",
				mtbf, none.Downtime, lastDowntime)
		}
		lastDowntime = none.Downtime
		if gain := full.Attainment - none.Attainment; gain < 0.01 {
			t.Errorf("mtbf %v: full-ladder gain %.3f over baseline %.3f, want >= 0.01",
				mtbf, gain, none.Attainment)
		}
	}

	// Mid rate: straggler batches are the dominant SLO killer and only
	// hedging routes around them — hedges must be winning races here.
	midFull := fig14Find(rep, fig14Mid, "retry+hedge+shed")
	if gain := midFull.Attainment - fig14Find(rep, fig14Mid, "none").Attainment; gain < 0.015 {
		t.Errorf("mid mtbf: full-ladder gain %.3f, want >= 0.015", gain)
	}
	if midFull.Hedges <= 0 || midFull.HedgeWins <= 0 {
		t.Errorf("mid mtbf: hedges issued/won = %d/%d, want both > 0",
			midFull.Hedges, midFull.HedgeWins)
	}

	// Extreme rate: deadlines prune doomed queues (retry-only beats the
	// baseline by a wide margin), shedding finally binds and buys a far
	// better served tail than letting every request wait out the collapse.
	hiNone := fig14Find(rep, fig14High, "none")
	hiRetry := fig14Find(rep, fig14High, "retry")
	hiFull := fig14Find(rep, fig14High, "retry+hedge+shed")
	if gain := hiRetry.Attainment - hiNone.Attainment; gain < 0.03 {
		t.Errorf("high mtbf: retry gain %.3f over baseline, want >= 0.03", gain)
	}
	if hiFull.Shed == 0 {
		t.Errorf("high mtbf: shed policy never bound")
	}
	if hiFull.P95 >= hiNone.P95 {
		t.Errorf("high mtbf: full-ladder p95 %v not below baseline %v", hiFull.P95, hiNone.P95)
	}
	if hiFull.TimedOut >= hiRetry.TimedOut {
		t.Errorf("high mtbf: full ladder timed out %d, retry-only %d — hedging/shedding should absorb timeouts",
			hiFull.TimedOut, hiRetry.TimedOut)
	}

	// Metrics carry the acceptance evidence for every MTBF step.
	m := Fig14Metrics(rep)
	for _, mtbf := range Fig14MTBFs {
		key := "mtbf_" + fig14MTBFLabel(mtbf)
		for _, suffix := range []string{"_none_attainment", "_full_attainment", "_attainment_gain", "_full_p99_s"} {
			if _, ok := m[key+suffix]; !ok {
				t.Errorf("Fig14Metrics missing %s%s", key, suffix)
			}
		}
	}
}

// TestFig14Accounting is the no-silently-lost-requests contract: every
// offered request resolves exactly once — served, shed, or timed out —
// in every cell, including the ones where crashes kill in-flight batches
// and hedges race duplicates. The row sums check the whole sweep; the
// harshest cell is then re-replayed to check completion-level invariants.
func TestFig14Accounting(t *testing.T) {
	rep := Fig14(Config{Seed: 1})
	for _, r := range rep.Rows {
		if r.Served+r.Shed+r.TimedOut != r.Offered {
			t.Errorf("mtbf %v %s: served %d + shed %d + timed out %d != offered %d",
				r.MTBF, r.Policy, r.Served, r.Shed, r.TimedOut, r.Offered)
		}
	}

	reqs := serve.GenerateTraffic(serve.Traffic{
		Kind: serve.ArriveBursty, Tenants: 24, Horizon: fig12Horizon, Seed: 1,
	})
	p := fig14Policies()[3] // retry+hedge+shed
	res := serve.Replay(
		fig14Config(fig12Autoscale, fig14Faults(fig14High, 1), p),
		fig14Requests(reqs, p.deadline))
	if len(res.Completions) != len(reqs) {
		t.Fatalf("completions = %d, want %d", len(res.Completions), len(reqs))
	}
	var served, shed, timed int
	for i, c := range res.Completions {
		if c.Done < c.Arrival {
			t.Errorf("request %d: resolved at %v before arrival %v", i, c.Done, c.Arrival)
		}
		switch c.Outcome {
		case serve.OutcomeServed:
			served++
			if c.BatchSize < 1 || c.Start < c.Arrival || c.Done <= c.Start {
				t.Errorf("request %d: served with batch %d, span [%v, %v], arrival %v",
					i, c.BatchSize, c.Start, c.Done, c.Arrival)
			}
		case serve.OutcomeShed:
			shed++
		case serve.OutcomeTimedOut:
			timed++
			if c.Retries != p.retry.Max {
				t.Errorf("request %d: timed out after %d retries, want the full budget %d",
					i, c.Retries, p.retry.Max)
			}
		default:
			t.Fatalf("request %d: unknown outcome %q", i, c.Outcome)
		}
	}
	s := res.Stats
	if served != s.Requests || shed != s.ShedRequests || timed != s.TimedOut {
		t.Errorf("completion outcomes %d/%d/%d != stats %d/%d/%d",
			served, shed, timed, s.Requests, s.ShedRequests, s.TimedOut)
	}
	if s.FailedBatches == 0 {
		t.Fatalf("harshest cell killed no batches — crash path untested")
	}
}

// TestFig14Deterministic pins the report as a pure function of the seed,
// independent of the episode-runner parallelism knob.
func TestFig14Deterministic(t *testing.T) {
	a := Fig14(Config{Seed: 3})
	b := Fig14(Config{Seed: 3, Parallelism: 8})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fig14 depends on parallelism")
	}
	if c := Fig14(Config{Seed: 4}); reflect.DeepEqual(a.Rows, c.Rows) {
		t.Fatalf("different seeds produced identical reports")
	}
}
