package comms

import (
	"testing"

	"embench/internal/modules/memory"
)

func rec(step int, key string, tokens int) memory.Record {
	return memory.Record{Step: step, Kind: memory.Observation, Key: key, Tokens: tokens}
}

func TestBusDirectDelivery(t *testing.T) {
	b := NewBus(3)
	b.Send(Message{From: 0, To: 2, Step: 1})
	if got := b.Drain(1); len(got) != 0 {
		t.Fatal("message leaked to wrong agent")
	}
	got := b.Drain(2)
	if len(got) != 1 || got[0].From != 0 {
		t.Fatalf("delivery wrong: %+v", got)
	}
	if got := b.Drain(2); len(got) != 0 {
		t.Fatal("Drain should clear the mailbox")
	}
}

func TestBusBroadcast(t *testing.T) {
	b := NewBus(4)
	b.Send(Message{From: 1, To: Broadcast, Step: 0})
	for i := 0; i < 4; i++ {
		got := b.Drain(i)
		if i == 1 && len(got) != 0 {
			t.Fatal("sender received own broadcast")
		}
		if i != 1 && len(got) != 1 {
			t.Fatalf("agent %d got %d messages", i, len(got))
		}
	}
	if b.Sent() != 1 {
		t.Fatalf("Sent = %d", b.Sent())
	}
}

func TestBusDropsUnknownRecipient(t *testing.T) {
	b := NewBus(2)
	b.Send(Message{From: 0, To: 7})
	b.Send(Message{From: 0, To: -5})
	if b.Drain(0) != nil || b.Drain(1) != nil {
		t.Fatal("unknown recipients should be dropped")
	}
	if b.Drain(9) != nil {
		t.Fatal("draining unknown agent should be nil")
	}
}

func TestNovel(t *testing.T) {
	store := memory.NewStore(-1)
	known := rec(3, "obj:apple", 5)
	known.Payload = "kitchen"
	store.Add(known)
	// Same key, same content: not novel even when fresher.
	dup := rec(5, "obj:apple", 5)
	dup.Payload = "kitchen"
	if Novel(Message{Records: []memory.Record{dup}}, store) {
		t.Fatal("unchanged fact should not be novel")
	}
	// Same key, changed content: novel.
	moved := rec(5, "obj:apple", 5)
	moved.Payload = "bedroom"
	if !Novel(Message{Records: []memory.Record{moved}}, store) {
		t.Fatal("changed fact should be novel")
	}
	// Older record with different content: not novel (receiver knows better).
	old := rec(2, "obj:apple", 5)
	old.Payload = "hallway"
	if Novel(Message{Records: []memory.Record{old}}, store) {
		t.Fatal("outdated record should not be novel")
	}
	// Unknown key: novel.
	if !Novel(Message{Records: []memory.Record{rec(1, "obj:pear", 5)}}, store) {
		t.Fatal("unknown key should be novel")
	}
	// Keyless records carry no checkable content.
	if Novel(Message{Records: []memory.Record{{Step: 9, Tokens: 3}}}, store) {
		t.Fatal("keyless record should not count as novel")
	}
}

func TestFilter(t *testing.T) {
	recs := []memory.Record{rec(1, "a", 2), rec(3, "b", 2), rec(5, "c", 2), rec(7, "d", 2)}
	out := Filter(recs, 2, 0)
	if len(out) != 3 || out[0].Key != "b" {
		t.Fatalf("Filter by lastShared wrong: %+v", out)
	}
	out = Filter(recs, 0, 2)
	if len(out) != 2 || out[0].Key != "c" || out[1].Key != "d" {
		t.Fatalf("Filter cap should keep newest: %+v", out)
	}
	if got := Filter(recs, 99, 0); len(got) != 0 {
		t.Fatal("nothing new should yield empty filter")
	}
}

func TestMessageTokens(t *testing.T) {
	if got := MessageTokens(nil); got != 12 {
		t.Fatalf("empty message tokens = %d, want framing only", got)
	}
	got := MessageTokens([]memory.Record{rec(0, "a", 10), rec(0, "b", 20)})
	if got != 42 {
		t.Fatalf("MessageTokens = %d, want 42", got)
	}
}
