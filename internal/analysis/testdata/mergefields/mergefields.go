// Fixture for the mergefields analyzer: every field of a struct with a
// Merge method must be referenced by that method, or carry an annotation
// saying why not.
package fixture

// Acc drops two fields on merge — the "added a counter, forgot the merge"
// hazard.
type Acc struct {
	Requests int
	Dropped  int // want `field Dropped of Acc is never referenced by its Merge method`
	peak     int // want `field peak of Acc is never referenced by its Merge method`
}

func (a Acc) Merge(o Acc) Acc {
	a.Requests += o.Requests
	return a
}

// Lit merges through a keyed composite literal; keyed fields count as
// references, missing ones are findings.
type Lit struct {
	A int
	B int
	C int // want `field C of Lit is never referenced by its Merge method`
}

func (l Lit) Merge(o Lit) Lit {
	return Lit{A: l.A + o.A, B: l.B + o.B}
}

// Annotated documents a deliberately unmerged cache field.
type Annotated struct {
	N     int
	cache int //detlint:allow mergefields derived cache, recomputed on demand; merging it would double-count
}

func (a *Annotated) Merge(o *Annotated) {
	a.N += o.N
}

// Pointers exercises pointer receiver and parameter with field access
// through methods on both sides.
type Pointers struct {
	Hits   int
	Misses int
}

func (p *Pointers) Merge(o *Pointers) {
	p.Hits += o.Hits
	p.Misses += o.Misses
}

// NotMerge's method is not the two-aggregate Merge shape the contract
// covers; it is ignored even though X is never referenced.
type NotMerge struct {
	X int
}

func (n NotMerge) Merge(k int) int {
	return k
}
