package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
)

// sec builds a virtual-time duration from fractional seconds.
func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func TestRecorderSeqAndReset(t *testing.T) {
	r := NewRecorder()
	r.Event(Event{Kind: KindConfig, Active: 1})
	r.Event(Event{Kind: KindSubmit, Req: 1, Sections: []Section{{Name: "sys", Tokens: 4}}})
	r.Event(Event{Kind: KindComplete, Req: 1, Batch: 1})
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	evs := r.Events()
	for i, ev := range evs {
		if ev.Seq != int64(i) {
			t.Errorf("event %d: Seq = %d, want %d", i, ev.Seq, i)
		}
	}
	// Events returns a copy: recording more must not grow the snapshot.
	r.Event(Event{Kind: KindScaleTick})
	if len(evs) != 3 {
		t.Fatalf("snapshot grew to %d events", len(evs))
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", r.Len())
	}
	r.Event(Event{Kind: KindConfig})
	if got := r.Events()[0].Seq; got != 0 {
		t.Fatalf("Seq after Reset = %d, want 0", got)
	}
}

// handStream is a small stream with every integral exercised: two active
// replicas from t=0, one completed request, one admission and one eviction.
func handStream() []Event {
	return []Event{
		{Seq: 0, Kind: KindConfig, T: 0, Active: 2, Replica: 2, Batch: 1},
		{Seq: 1, Kind: KindCacheMiss, T: sec(1.5), Replica: 0, Tokens: 100, Cached: 0},
		{Seq: 2, Kind: KindCacheEvict, T: sec(2.2), Replica: 0, Tokens: 40},
		{Seq: 3, Kind: KindComplete, T: sec(2.5), Replica: 0, Req: 1, Dur: sec(1.5), Wait: sec(0.5), Batch: 1, Tokens: 100},
	}
}

func TestSampleHandComputed(t *testing.T) {
	s := Sample(handStream(), time.Second)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 intervals", s.Len())
	}
	ns := func(sc float64) int64 { return int64(sec(sc)) }
	// Request arrives at 1s, starts at 1.5s, completes at 2.5s.
	wantQueue := []int64{0, ns(0.5), 0}
	if !reflect.DeepEqual(s.QueueNs, wantQueue) {
		t.Errorf("QueueNs = %v, want %v", s.QueueNs, wantQueue)
	}
	// Two replicas active over [0, 2.5s).
	wantActive := []int64{2 * ns(1), 2 * ns(1), 2 * ns(0.5)}
	if !reflect.DeepEqual(s.ActiveNs, wantActive) {
		t.Errorf("ActiveNs = %v, want %v", s.ActiveNs, wantActive)
	}
	if !reflect.DeepEqual(s.Completions, []int64{0, 0, 1}) {
		t.Errorf("Completions = %v", s.Completions)
	}
	if !reflect.DeepEqual(s.EvictedTokens, []int64{0, 0, 40}) {
		t.Errorf("EvictedTokens = %v", s.EvictedTokens)
	}
	r, ok := s.Replicas["0/0"]
	if !ok {
		t.Fatalf("missing replica row 0/0 (rows: %v)", s.Replicas)
	}
	// In-flight over [1.5s, 2.5s).
	wantBusy := []int64{0, ns(0.5), ns(0.5)}
	if !reflect.DeepEqual(r.BusyNs, wantBusy) {
		t.Errorf("BusyNs = %v, want %v", r.BusyNs, wantBusy)
	}
	// 100 tokens resident over [1.5s, 2.2s), 60 over [2.2s, 2.5s).
	wantCache := []int64{0, 100 * ns(0.5), 100*ns(0.2) + 60*ns(0.3)}
	if !reflect.DeepEqual(r.CacheTokNs, wantCache) {
		t.Errorf("CacheTokNs = %v, want %v", r.CacheTokNs, wantCache)
	}
	if got := s.MeanQueueDepth(1); got != 0.5 {
		t.Errorf("MeanQueueDepth(1) = %v, want 0.5", got)
	}
	if got := s.MeanActive(0); got != 2 {
		t.Errorf("MeanActive(0) = %v, want 2", got)
	}
}

// randomStream generates a plausible per-shard event stream for the merge
// exactness test: a config, then interleaved admissions, completions, and
// scale/evict churn. Deterministic under the given rng.
func randomStream(rng *rand.Rand, shard, n int) []Event {
	evs := []Event{{Kind: KindConfig, Shard: shard, Active: 1 + rng.Intn(3)}}
	now := time.Duration(0)
	for i := 0; i < n; i++ {
		now += time.Duration(rng.Intn(900)+100) * time.Millisecond
		replica := rng.Intn(3)
		switch rng.Intn(5) {
		case 0:
			tok := rng.Intn(400) + 50
			evs = append(evs, Event{Kind: KindCacheMiss, T: now, Shard: shard, Replica: replica, Tokens: tok, Cached: rng.Intn(tok)})
		case 1:
			evs = append(evs, Event{Kind: KindCacheEvict, T: now, Shard: shard, Replica: replica, Tokens: rng.Intn(200)})
		case 2:
			evs = append(evs, Event{Kind: KindScaleUp, T: now, Shard: shard, Active: 1 + rng.Intn(4)})
		case 3:
			evs = append(evs, Event{Kind: KindCacheFlush, T: now, Shard: shard, Replica: replica, Tokens: rng.Intn(500)})
		default:
			dur := time.Duration(rng.Intn(3000)+100) * time.Millisecond
			wait := time.Duration(rng.Int63n(int64(dur) + 1))
			evs = append(evs, Event{
				Kind: KindComplete, T: now + dur, Shard: shard, Replica: replica,
				Req: int64(i + 1), Dur: dur, Wait: wait, Batch: 1 + rng.Intn(4), Tokens: 100,
			})
		}
	}
	for i := range evs {
		evs[i].Seq = int64(i)
	}
	return evs
}

// TestSeriesMergeExact is the metrics.Hist-style exactness contract:
// sampling the union of two sources equals merging their separate samples,
// provided the sources carry distinct shard tags — including when their
// horizons differ.
func TestSeriesMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomStream(rng, 0, 60)
	b := randomStream(rng, 1, 25) // shorter horizon on purpose
	both := append(append([]Event(nil), a...), b...)
	for i := range both {
		both[i].Seq = int64(i) // re-sequence the union stream
	}
	got := Sample(both, time.Second)
	want := Sample(a, time.Second).Merge(Sample(b, time.Second))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Sample(A∪B) != Sample(A).Merge(Sample(B))\n got: %+v\nwant: %+v", got, want)
	}
	// Merge must be symmetric too.
	if rev := Sample(b, time.Second).Merge(Sample(a, time.Second)); !reflect.DeepEqual(got, rev) {
		t.Fatalf("merge is order-dependent")
	}
}

func TestSeriesMergeIntervalMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("merging different intervals did not panic")
		}
	}()
	Sample(handStream(), time.Second).Merge(Sample(handStream(), 2*time.Second))
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Seq: 0, Kind: KindConfig, Active: 2, Replica: 4, Batch: 8, Tokens: 4096, Policy: "cache-affinity"},
		{Seq: 1, Kind: KindSubmit, T: sec(0.25), Req: 1, Agent: "planner", Out: 64,
			Sections: []Section{{Name: "sys", Text: "be brief", Tokens: 12}, {Name: "obs", Tokens: 40, Droppable: true}}},
		{Seq: 2, Kind: KindRoute, T: sec(0.25), Req: 1, Replica: 1, Policy: "cache-affinity", Scores: []int{0, 12, -3, 0}},
		{Seq: 3, Kind: KindComplete, T: sec(1.5), Req: 1, Replica: 1, Dur: sec(1.25), Wait: sec(0.25), Batch: 2, Tokens: 52, Cached: 12},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != len(events) {
		t.Fatalf("wrote %d lines, want %d", n, len(events))
	}
	// Blank lines are tolerated on the way back in.
	got, err := ReadJSONL(strings.NewReader(buf.String() + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, events)
	}
	if err := Validate(got); err != nil {
		t.Fatalf("round-tripped stream fails validation: %v", err)
	}
}

func TestReadJSONLBadLine(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader(`{"kind":"config"}` + "\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 parse error, got %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	ok := Event{Seq: 0, Kind: KindConfig}
	cases := []struct {
		name string
		evs  []Event
		want string
	}{
		{"unknown kind", []Event{{Kind: Kind("bogus")}}, "unknown kind"},
		{"negative time", []Event{{Kind: KindConfig, T: -1}}, "negative virtual time"},
		{"seq not increasing", []Event{ok, {Seq: 0, Kind: KindScaleTick}}, "not increasing"},
		{"negative replica", []Event{{Kind: KindConfig, Replica: -1}}, "negative shard/replica"},
		{"submit without sections", []Event{{Kind: KindSubmit, Req: 1}}, "without prompt sections"},
		{"submit negative out", []Event{{Kind: KindSubmit, Out: -1, Sections: []Section{{Name: "s"}}}}, "negative out"},
		{"wait exceeds latency", []Event{{Kind: KindComplete, Dur: 1, Wait: 2, Batch: 1}}, "outside latency"},
		{"batchless complete", []Event{{Kind: KindComplete, Dur: 2, Wait: 1}}, "batch 0"},
		{"cached exceeds total", []Event{{Kind: KindCacheHit, Cached: 10, Tokens: 5}}, "outside total"},
		{"negative evict", []Event{{Kind: KindCacheEvict, Tokens: -1}}, "negative tokens"},
		{"negative active", []Event{{Kind: KindScaleUp, Active: -2}}, "negative active"},
		{"down without window", []Event{{Kind: KindReplicaDown}}, "non-positive repair window"},
		{"down negative kill", []Event{{Kind: KindReplicaDown, Dur: 1, Batch: -1}}, "negative flushed tokens/killed batch"},
		{"retry attempt zero", []Event{{Kind: KindRetry}}, "attempt number 0 < 1"},
		{"retry negative backoff", []Event{{Kind: KindRetry, Dur: -1, Batch: 1}}, "negative backoff"},
		{"timeout without deadline", []Event{{Kind: KindTimeout}}, "non-positive deadline"},
	}
	for _, tc := range cases {
		err := Validate(tc.evs)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if err := Validate(handStream()); err != nil {
		t.Errorf("hand stream should validate: %v", err)
	}
	// A well-formed fault/resilience lifecycle must validate: every new
	// kind in one stream, Seq monotone across them.
	faultStream := []Event{
		{Seq: 0, Kind: KindConfig, Active: 1, Replica: 1, Batch: 1},
		{Seq: 1, Kind: KindShed, T: sec(0.5), Req: 1},
		{Seq: 2, Kind: KindRetry, T: sec(1), Req: 2, Dur: sec(0.5), Batch: 1},
		{Seq: 3, Kind: KindHedge, T: sec(1.5), Req: 3},
		{Seq: 4, Kind: KindReplicaDown, T: sec(2), Replica: 0, Dur: sec(5), Tokens: 100, Batch: 2},
		{Seq: 5, Kind: KindTimeout, T: sec(3), Req: 2, Dur: sec(2)},
		{Seq: 6, Kind: KindReplicaUp, T: sec(7), Replica: 0},
	}
	if err := Validate(faultStream); err != nil {
		t.Errorf("fault lifecycle stream should validate: %v", err)
	}
}

func TestChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, handStream()); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Cat  string         `json:"cat"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("not valid trace_event JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}
	var queueSpans, serveSpans, counters, meta int
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "X":
			switch ev.Cat {
			case "queue":
				queueSpans++
				if ev.Tid != 0 {
					t.Errorf("queue span on tid %d, want lane 0", ev.Tid)
				}
				// Arrival 1s, wait 0.5s → ts 1e6 µs, dur 5e5 µs.
				if ev.Ts != 1e6 || ev.Dur != 5e5 {
					t.Errorf("queue span ts/dur = %v/%v, want 1e6/5e5", ev.Ts, ev.Dur)
				}
			case "serve":
				serveSpans++
				if ev.Tid != 1 {
					t.Errorf("serve span on tid %d, want replica lane 1", ev.Tid)
				}
				if ev.Ts != 1.5e6 || ev.Dur != 1e6 {
					t.Errorf("serve span ts/dur = %v/%v, want 1.5e6/1e6", ev.Ts, ev.Dur)
				}
			}
		case "C":
			counters++
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if queueSpans != 1 || serveSpans != 1 {
		t.Errorf("spans = %d queue / %d serve, want 1/1", queueSpans, serveSpans)
	}
	if counters == 0 {
		t.Errorf("no counter tracks emitted")
	}
	// process_name + queue lane + one replica lane.
	if meta != 3 {
		t.Errorf("metadata records = %d, want 3", meta)
	}
	// Export must be byte-deterministic (metadata ordering is sorted).
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, handStream()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("Chrome trace export is not deterministic")
	}
}

func TestSummarize(t *testing.T) {
	evs := []Event{
		{Seq: 0, Kind: KindConfig, Active: 1},
		{Seq: 1, Kind: KindBatchStart, T: sec(1), Batch: 2},
		{Seq: 2, Kind: KindBatchJoin, T: sec(1.2), Req: 2},
		{Seq: 3, Kind: KindComplete, T: sec(2), Req: 1, Dur: sec(1.5), Wait: sec(0.5), Batch: 2, Tokens: 100, Cached: 40},
		{Seq: 4, Kind: KindComplete, T: sec(2), Req: 2, Dur: sec(0.8), Wait: sec(0.1), Batch: 2, Tokens: 60, Cached: 0},
		{Seq: 5, Kind: KindCacheEvict, T: sec(2.5), Tokens: 30},
		{Seq: 6, Kind: KindCacheFlush, T: sec(3), Tokens: 70},
		{Seq: 7, Kind: KindScaleTick, T: sec(3), Util: 0.1},
		{Seq: 8, Kind: KindScaleDown, T: sec(3), Active: 0},
	}
	s := Summarize(evs, 1)
	if s.Requests != 2 || s.Joins != 1 || s.Batches != 1 {
		t.Errorf("requests/joins/batches = %d/%d/%d", s.Requests, s.Joins, s.Batches)
	}
	if s.Horizon != sec(3) {
		t.Errorf("Horizon = %v", s.Horizon)
	}
	if s.EvictedTokens != 30 || s.FlushedTokens != 70 || s.Evictions != 1 || s.Flushes != 1 {
		t.Errorf("churn = %d/%d tokens, %d/%d events", s.EvictedTokens, s.FlushedTokens, s.Evictions, s.Flushes)
	}
	if s.ScaleTicks != 1 || s.ScaleDowns != 1 || s.ScaleUps != 0 {
		t.Errorf("scale counts = %d/%d/%d", s.ScaleTicks, s.ScaleUps, s.ScaleDowns)
	}
	if len(s.Slowest) != 1 || s.Slowest[0].Req != 1 {
		t.Fatalf("Slowest = %+v, want just req 1", s.Slowest)
	}
	if got := s.Slowest[0].Service(); got != sec(1) {
		t.Errorf("Service = %v, want 1s", got)
	}
	if got := s.MeanLatency(); got != sec(1.15) {
		t.Errorf("MeanLatency = %v, want 1.15s", got)
	}
	if got := s.CacheHitRate(); got != 0.25 {
		t.Errorf("CacheHitRate = %v, want 0.25", got)
	}
	wantShare := float64(sec(0.6)) / float64(sec(2.3))
	if got := s.QueueShare(); got != wantShare {
		t.Errorf("QueueShare = %v, want %v", got, wantShare)
	}
}

func TestAddSpanBoundaries(t *testing.T) {
	// A span exactly on an interval edge contributes nothing to the next
	// interval; a span crossing an edge splits exactly.
	acc := addSpan(nil, time.Second, 0, sec(1), 1)
	if !reflect.DeepEqual(acc, []int64{int64(sec(1))}) {
		t.Errorf("edge-aligned span: %v", acc)
	}
	acc = addSpan(nil, time.Second, sec(0.75), sec(2.25), 3)
	want := []int64{3 * int64(sec(0.25)), 3 * int64(sec(1)), 3 * int64(sec(0.25))}
	if !reflect.DeepEqual(acc, want) {
		t.Errorf("crossing span: %v, want %v", acc, want)
	}
	// Degenerate spans are dropped.
	if got := addSpan(nil, time.Second, sec(2), sec(2), 1); len(got) != 0 {
		t.Errorf("empty span allocated: %v", got)
	}
}
