package serve

import (
	"sync"
	"time"

	"embench/internal/llm"
	"embench/internal/metrics"
)

// Fleet promotes an Endpoint to a cross-episode shared deployment: one set
// of replicas, queues and caches that several concurrently running
// episodes contend for — the paper's many-agents-one-deployment regime at
// fleet scale.
//
// Each attached episode owns a FleetClient (its llm.Backend). Episodes run
// on separate goroutines, so their requests interleave arbitrarily in
// wall time; the fleet merges them into one deterministic admission order
// with a conservative discrete-event rule: a request is admitted only
// when every still-attached episode has either revealed its next request
// or finished, and then the revealed pending request with the smallest
// (arrival, client id) key goes first. The merged order is a pure
// function of the episodes' submission sequences — what each episode
// submits, in the order it submits it — and never of goroutine
// scheduling; that is the determinism guarantee. It is NOT a globally
// arrival-sorted order: an episode multiplexes many per-agent clocks, so
// its later submissions can carry earlier arrivals (exactly as
// closed-loop admission within a single episode is submission-ordered,
// with arrivals driving only the queueing and batching arithmetic).
//
// The price of the conservative rule is blocking: a client's Serve call
// parks until its request reaches the head of the merged order. All
// episodes of a fleet must therefore run concurrently (the runner
// guarantees this — see runner.RunFleet); driving a fleet's clients from
// one goroutine deadlocks as soon as two episodes are attached.
type Fleet struct {
	mu      sync.Mutex
	cond    *sync.Cond
	ep      *Endpoint
	clients []*FleetClient
}

// FleetClient is one episode's handle on a shared Fleet. It implements
// llm.Backend and llm.BatchBackend; episode runners attach it via
// multiagent.Options.Backend. Finish MUST be called when the episode ends
// (the runner does this, panic-safely) or the remaining episodes block
// forever waiting for the finished one's next request.
type FleetClient struct {
	f    *Fleet
	id   int
	done bool
	pend *fleetPending
	// stats is this episode's share of the endpoint's traffic: what the
	// episode's own requests experienced. The endpoint-level totals
	// (Fleet.Stats) restate joined batches retroactively, so per-episode
	// shares sum approximately — not exactly — to the fleet totals.
	stats metrics.Serving
}

// fleetPending is one submitted-but-unserved request (or explicit batch).
type fleetPending struct {
	arrival time.Duration // merge key: max member arrival for batches
	call    llm.Call
	batch   []llm.Call // non-nil for ServeBatch submissions
	served  bool
	res     llm.Served
	resB    []llm.Served
}

// Compile-time checks: fleet clients are full serving backends.
var (
	_ llm.Backend      = (*FleetClient)(nil)
	_ llm.BatchBackend = (*FleetClient)(nil)
)

// NewFleet builds a fleet of `episodes` clients sharing one endpoint built
// from cfg.
func NewFleet(cfg Config, episodes int) *Fleet {
	f := &Fleet{ep: New(cfg)}
	f.cond = sync.NewCond(&f.mu)
	for i := 0; i < episodes; i++ {
		f.clients = append(f.clients, &FleetClient{f: f, id: i})
		f.clients[i].stats.Replicas = f.ep.cfg.Replicas
	}
	return f
}

// Client returns episode i's backend handle.
func (f *Fleet) Client(i int) *FleetClient { return f.clients[i] }

// Size reports the number of attached episodes.
func (f *Fleet) Size() int { return len(f.clients) }

// Config reports the underlying endpoint's effective configuration.
func (f *Fleet) Config() Config { return f.ep.Config() }

// Stats reports the endpoint-level serving totals across all episodes.
// Safe at any time (all endpoint mutation happens under the fleet mutex);
// a mid-run read simply returns a partial snapshot of an ongoing run.
func (f *Fleet) Stats() metrics.Serving {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ep.Stats()
}

// dispatch admits pending requests while the conservative rule allows:
// every still-attached client must have an unserved pending request
// before the revealed minimum — smallest (arrival, client id) — may be
// served. Runs with f.mu held; every serve wakes all waiters.
func (f *Fleet) dispatch() {
	for {
		var best *FleetClient
		for _, c := range f.clients {
			if c.done {
				continue
			}
			if c.pend == nil || c.pend.served {
				return // an episode has not revealed its next request yet
			}
			if best == nil || c.pend.arrival < best.pend.arrival {
				best = c
			}
		}
		if best == nil {
			return // every episode finished
		}
		p := best.pend
		if p.batch != nil {
			p.resB = f.ep.ServeBatch(p.batch)
		} else {
			p.res = f.ep.Serve(p.call)
		}
		p.served = true
		f.cond.Broadcast()
	}
}

// submit parks the calling episode's request in the merge and blocks until
// it has been admitted and served.
func (c *FleetClient) submit(p *fleetPending) {
	f := c.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if c.done {
		panic("serve: FleetClient used after Finish")
	}
	c.pend = p
	f.dispatch()
	for !p.served {
		f.cond.Wait()
	}
	c.pend = nil
}

// Serve implements llm.Backend: the episode's next request enters the
// cross-episode merge and resolves against the shared endpoint once it is
// globally next.
func (c *FleetClient) Serve(call llm.Call) llm.Served {
	p := &fleetPending{arrival: call.Arrival, call: call}
	c.submit(p)
	c.fold(p.res, call)
	return p.res
}

// ServeBatch implements llm.BatchBackend: an explicitly aggregated
// step-phase batch enters the merge as one unit, keyed by its last
// member's arrival (the batch cannot launch before it is complete).
func (c *FleetClient) ServeBatch(calls []llm.Call) []llm.Served {
	if len(calls) == 0 {
		return nil
	}
	arrival := calls[0].Arrival
	for _, call := range calls[1:] {
		if call.Arrival > arrival {
			arrival = call.Arrival
		}
	}
	p := &fleetPending{arrival: arrival, batch: calls}
	c.submit(p)
	for i, s := range p.resB {
		c.fold(s, calls[i])
	}
	return p.resB
}

// fold accumulates one served request into the episode's serving share.
// Only the owning episode's goroutine calls it, so no lock is needed.
func (c *FleetClient) fold(s llm.Served, call llm.Call) {
	c.stats.Requests++
	c.stats.QueueWait += s.QueueWait
	c.stats.Service += s.Latency - s.QueueWait
	c.stats.BatchedSeqs += s.BatchSize
	c.stats.PrefillTokens += call.Prompt.Tokens()
	c.stats.CachedTokens += s.CachedTokens
}

// ServingStats reports the episode's share of the fleet's serving traffic;
// the episode runner folds it into the episode metrics at finish.
func (c *FleetClient) ServingStats() metrics.Serving { return c.stats }

// Finish detaches the episode from the merge: its absence no longer holds
// back other episodes' admissions. Idempotent; safe to defer.
func (c *FleetClient) Finish() {
	f := c.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if c.done {
		return
	}
	c.done = true
	f.dispatch()
	f.cond.Broadcast()
}
