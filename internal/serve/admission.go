package serve

import (
	"time"
)

// admitted is one request's cache-priced admission into a batch: the
// effective (cache-discounted) prefill tokens it pays, and the cached/raw
// token split for statistics.
type admitted struct {
	eff    float64
	cached int
	total  int
}

// discountedEff is THE cache-discount pricing formula: cache-hit tokens
// pay CachedPrefillFrac of their prefill cost. Admission (promptCostOn)
// and routing estimates (estimateCompletion) both price through it.
func (e *Endpoint) discountedEff(cached, total int) float64 {
	return float64(total-cached) + float64(cached)*e.cfg.CachedPrefillFrac
}

// promptCostOn prices a memoized prompt's prefill through one replica's
// prefix cache: returns the effective token count (see discountedEff), the
// cached token count, and the raw total. The prompt's prefixes are
// inserted afterwards so followers on the same replica can reuse it. The
// prefix chain was hashed once, upstream, when the request entered the
// endpoint — routing probes and admission share the same promptKey.
func (e *Endpoint) promptCostOn(r *replica, k promptKey) (eff float64, cached, total int) {
	cached = r.cache.matchKey(k)
	r.cache.insertKey(k)
	return e.discountedEff(cached, k.total), cached, k.total
}

// admitBatch is THE request-admission path: it prices a batch of memoized
// prompts against one replica's prefix cache in admission order and
// returns the batch service time plus per-member pricing. Closed-loop
// serving (Endpoint.Serve new batches), explicit step-phase batches
// (Endpoint.ServeBatch) and open-loop replay (Replay batch launches) all
// admit through this helper, so a given request sequence prices
// identically whichever path carries it — the property the
// closed-vs-open-loop regression test pins down.
//
// The returned members slice is scratch owned by the endpoint: it is valid
// until the next admission and must not be retained across calls.
func (e *Endpoint) admitBatch(r *replica, keys []promptKey, outs []int) (service time.Duration, members []admitted, totalEff float64, maxOut int) {
	if cap(e.mbuf) < len(keys) {
		e.mbuf = make([]admitted, len(keys))
	}
	members = e.mbuf[:len(keys)]
	r.requests += len(keys)
	for i, k := range keys {
		eff, cached, total := e.promptCostOn(r, k)
		totalEff += eff
		members[i] = admitted{eff: eff, cached: cached, total: total}
		if outs[i] > maxOut {
			maxOut = outs[i]
		}
	}
	service = e.cfg.Profile.BatchServiceTime(len(keys), totalEff, maxOut)
	return service, members, totalEff, maxOut
}
