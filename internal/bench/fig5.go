package bench

import (
	"fmt"
	"strings"
	"time"

	"embench/internal/core"
	"embench/internal/metrics"
	"embench/internal/multiagent"
	"embench/internal/trace"
	"embench/internal/world"
)

// Fig5Row is one (system, difficulty, capacity) sample of the memory
// capacity sweep (paper Fig. 5).
type Fig5Row struct {
	System      string
	Difficulty  world.Difficulty
	Capacity    int
	SuccessRate float64
	MeanSteps   float64
	Retrieval   time.Duration // mean memory-module latency per step
}

// fig5Sweep defines the per-system capacity axes (matching the paper's
// x-axes: MindAgent sweeps 10–35, the others 10–60).
var fig5Sweep = map[string][]int{
	"JARVIS-1":  {10, 20, 30, 40, 50, 60},
	"MindAgent": {10, 15, 20, 25, 30, 35},
	"CoELA":     {10, 20, 30, 40, 50, 60},
}

// fig5Systems in presentation order.
var fig5Systems = []string{"JARVIS-1", "MindAgent", "CoELA"}

// Fig5 sweeps memory capacity across difficulty levels.
func Fig5(cfg Config) []Fig5Row {
	set := cfg.newBatchSet()
	var rows []Fig5Row
	var ids []int
	for _, name := range fig5Systems {
		w := mustGet(name)
		for _, diff := range world.Difficulties {
			for _, cap := range fig5Sweep[name] {
				capacity := cap
				mut := func(c *core.AgentConfig) { c.Memory = core.MemoryConfig{Capacity: capacity} }
				ids = append(ids, set.add(w, diff, 0, mut, multiagent.Options{}))
				rows = append(rows, Fig5Row{System: name, Difficulty: diff, Capacity: capacity})
			}
		}
	}
	set.run()
	for i := range rows {
		eps, traces := set.results(ids[i])
		s := metrics.Summarize(eps)
		rows[i].SuccessRate = s.SuccessRate
		rows[i].MeanSteps = s.MeanSteps
		rows[i].Retrieval = meanModuleLatencyPerStep(traces, trace.Memory)
	}
	return rows
}

// meanModuleLatencyPerStep averages one module's latency per environment
// step across traces.
func meanModuleLatencyPerStep(traces []*trace.Trace, m trace.Module) time.Duration {
	var sum time.Duration
	steps := 0
	for _, tr := range traces {
		sum += tr.Breakdown()[m]
		steps += tr.Steps()
	}
	if steps == 0 {
		return 0
	}
	return sum / time.Duration(steps)
}

// RenderFig5 formats the sweep.
func RenderFig5(rows []Fig5Row) string {
	var b strings.Builder
	b.WriteString("Fig. 5 — memory capacity sweep\n")
	fmt.Fprintf(&b, "%-10s %-8s %9s %9s %8s %12s\n", "System", "Task", "capacity", "success", "steps", "retrieval/step")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-8s %9d %8.0f%% %8.1f %11.0fms\n",
			r.System, r.Difficulty, r.Capacity, 100*r.SuccessRate, r.MeanSteps,
			float64(r.Retrieval.Milliseconds()))
	}
	return b.String()
}
