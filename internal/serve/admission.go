package serve

import (
	"time"

	"embench/internal/prompt"
)

// admitted is one request's cache-priced admission into a batch: the
// effective (cache-discounted) prefill tokens it pays, and the cached/raw
// token split for statistics.
type admitted struct {
	eff    float64
	cached int
	total  int
}

// discountedEff is THE cache-discount pricing formula: cache-hit tokens
// pay CachedPrefillFrac of their prefill cost. Admission (promptCostOn)
// and routing estimates (estimateCompletion) both price through it.
func (e *Endpoint) discountedEff(cached, total int) float64 {
	return float64(total-cached) + float64(cached)*e.cfg.CachedPrefillFrac
}

// promptCostOn prices a prompt's prefill through one replica's prefix
// cache: returns the effective token count (see discountedEff), the
// cached token count, and the raw total. The prompt is inserted
// afterwards so followers on the same replica can reuse it.
func (e *Endpoint) promptCostOn(r *replica, p prompt.Prompt) (eff float64, cached, total int) {
	total = p.Tokens()
	cached = r.cache.match(p)
	r.cache.insert(p)
	return e.discountedEff(cached, total), cached, total
}

// admitBatch is THE request-admission path: it prices a batch of prompts
// against one replica's prefix cache in admission order and returns the
// batch service time plus per-member pricing. Closed-loop serving
// (Endpoint.Serve new batches), explicit step-phase batches
// (Endpoint.ServeBatch) and open-loop replay (Replay batch launches) all
// admit through this helper, so a given request sequence prices
// identically whichever path carries it — the property the
// closed-vs-open-loop regression test pins down.
func (e *Endpoint) admitBatch(r *replica, prompts []prompt.Prompt, outs []int) (service time.Duration, members []admitted, totalEff float64, maxOut int) {
	members = make([]admitted, len(prompts))
	for i, p := range prompts {
		eff, cached, total := e.promptCostOn(r, p)
		totalEff += eff
		members[i] = admitted{eff: eff, cached: cached, total: total}
		if outs[i] > maxOut {
			maxOut = outs[i]
		}
	}
	service = e.cfg.Profile.BatchServiceTime(len(prompts), totalEff, maxOut)
	return service, members, totalEff, maxOut
}
