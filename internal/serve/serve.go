// Package serve simulates a shared LLM serving endpoint: the substrate many
// embodied agents contend for when they stop getting a dedicated model each
// (paper Fig. 6/7 and Recs. 1–3).
//
// An Endpoint owns N replicas of one model deployment, an admission queue,
// a continuous-batching scheduler and a prefix/KV cache. Requests carry
// submission timestamps from per-agent virtual clocks; the endpoint orders
// them on a global virtual timeline and returns completion times, so
// queueing delay, batching gains and cache hit rates all emerge
// deterministically from the root seed — no wall clock, no goroutines.
//
// Two modes share the same pricing model (llm.Profile.BatchServiceTime and
// the prefix cache):
//
//   - Closed loop: Endpoint implements llm.Backend, so live episodes route
//     every client call through the shared endpoint. Requests are admitted
//     in submission order; a request arriving within the batching window of
//     a replica's in-flight batch joins it (continuous batching), otherwise
//     it queues behind the least-loaded replica.
//   - Open loop: Replay takes a full request trace (arrival offsets, prompt
//     structure, generation lengths) and runs a discrete-event loop over
//     it, forming batches of up to MaxBatch that launch when full, when the
//     oldest queued request has waited MaxWait, or when no further arrivals
//     are pending. This is the classic serving-benchmark shape: fixed
//     arrival schedule, swept scheduler policy.
package serve

import (
	"time"

	"embench/internal/llm"
)

// Config describes one shared serving deployment.
type Config struct {
	// Profile prices prefill/decode/overhead for every replica. A zero
	// profile (Name == "") is filled in by the episode runner with the
	// workload's planner profile.
	Profile llm.Profile
	// Replicas is the number of identical model instances behind the
	// endpoint (default 1). Requests go to the least-loaded replica.
	Replicas int
	// MaxBatch caps sequences per continuous batch; <= 1 disables batching.
	MaxBatch int
	// MaxWait is the batching window: in open-loop replay, how long the
	// oldest queued request may wait for companions before its batch
	// launches; in closed-loop serving, how far after a batch's start a new
	// arrival may still join it. Zero means "no waiting" — batches only
	// coalesce requests that are already simultaneous.
	MaxWait time.Duration
	// CacheEntries sizes the prefix cache (cached section-prefixes, LRU);
	// 0 disables the cache.
	CacheEntries int
	// CachedPrefillFrac is the fraction of prefill cost still paid for
	// cache-hit tokens (default 0.1 — KV reuse is cheap but not free).
	CachedPrefillFrac float64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 1
	}
	if c.MaxWait < 0 {
		c.MaxWait = 0
	}
	if c.CachedPrefillFrac <= 0 {
		c.CachedPrefillFrac = 0.1
	}
	if c.CachedPrefillFrac > 1 {
		c.CachedPrefillFrac = 1
	}
	return c
}
