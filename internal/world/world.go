// Package world provides the spatial and task primitives shared by all
// environments in the suite: occupancy grids, cells, difficulty levels and
// task descriptors.
package world

import "fmt"

// Cell is a discrete grid coordinate.
type Cell struct{ X, Y int }

// String renders the cell as (x,y).
func (c Cell) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Add offsets the cell.
func (c Cell) Add(dx, dy int) Cell { return Cell{c.X + dx, c.Y + dy} }

// Manhattan reports the L1 distance between two cells.
func Manhattan(a, b Cell) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Dirs4 enumerates the four cardinal moves.
var Dirs4 = [4]Cell{{0, 1}, {0, -1}, {1, 0}, {-1, 0}}

// Grid is a rectangular occupancy grid. Construct with NewGrid.
type Grid struct {
	W, H    int
	blocked []bool
}

// NewGrid returns an empty (fully free) w×h grid. It panics on
// non-positive dimensions, which are always programming errors.
func NewGrid(w, h int) *Grid {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("world: invalid grid dimensions %dx%d", w, h))
	}
	return &Grid{W: w, H: h, blocked: make([]bool, w*h)}
}

// InBounds reports whether c lies inside the grid.
func (g *Grid) InBounds(c Cell) bool {
	return c.X >= 0 && c.X < g.W && c.Y >= 0 && c.Y < g.H
}

// Blocked reports whether c is an obstacle; out-of-bounds cells are blocked.
func (g *Grid) Blocked(c Cell) bool {
	if !g.InBounds(c) {
		return true
	}
	return g.blocked[c.Y*g.W+c.X]
}

// SetBlocked marks or clears an obstacle; out-of-bounds cells are ignored.
func (g *Grid) SetBlocked(c Cell, v bool) {
	if g.InBounds(c) {
		g.blocked[c.Y*g.W+c.X] = v
	}
}

// BlockRect marks the rectangle [x0,x1]×[y0,y1] (inclusive) as obstacles —
// a convenience for drawing walls.
func (g *Grid) BlockRect(x0, y0, x1, y1 int) {
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			g.SetBlocked(Cell{x, y}, true)
		}
	}
}

// Free counts unblocked cells.
func (g *Grid) Free() int {
	n := 0
	for _, b := range g.blocked {
		if !b {
			n++
		}
	}
	return n
}

// Neighbors4 appends to dst the free cardinal neighbors of c and returns
// the extended slice; pass a reusable buffer to avoid allocation.
func (g *Grid) Neighbors4(c Cell, dst []Cell) []Cell {
	for _, d := range Dirs4 {
		n := c.Add(d.X, d.Y)
		if !g.Blocked(n) {
			dst = append(dst, n)
		}
	}
	return dst
}

// Difficulty grades a task instance, following the paper's easy / medium /
// hard sweeps (Figs. 5 and 7).
type Difficulty int

// Task difficulty levels.
const (
	Easy Difficulty = iota
	Medium
	Hard
)

// String names the difficulty.
func (d Difficulty) String() string {
	switch d {
	case Easy:
		return "easy"
	case Medium:
		return "medium"
	case Hard:
		return "hard"
	}
	return fmt.Sprintf("difficulty(%d)", int(d))
}

// Difficulties lists the sweep order used by the benchmarks.
var Difficulties = []Difficulty{Easy, Medium, Hard}

// Task describes one episode's objective at the suite level. Environments
// attach their own structured goals; Task carries what the harness needs.
type Task struct {
	Name       string
	Difficulty Difficulty
	Horizon    int // step cap ("Lmax" in the paper's Fig. 3)
}

// C constructs a Cell — the keyed-literal shorthand used across the suite.
func C(x, y int) Cell { return Cell{X: x, Y: y} }
