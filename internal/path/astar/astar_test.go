package astar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"embench/internal/world"
)

func TestTrivialPath(t *testing.T) {
	g := world.NewGrid(5, 5)
	res := Plan(g, world.C(0, 0), world.C(0, 0))
	if !res.Found || len(res.Path) != 1 {
		t.Fatalf("self-path = %+v", res)
	}
}

func TestStraightLine(t *testing.T) {
	g := world.NewGrid(10, 10)
	res := Plan(g, world.C(0, 0), world.C(5, 0))
	if !res.Found {
		t.Fatal("no path on empty grid")
	}
	if len(res.Path) != 6 {
		t.Fatalf("path length = %d, want 6 cells", len(res.Path))
	}
}

func TestOptimalLengthOnEmptyGrid(t *testing.T) {
	g := world.NewGrid(20, 20)
	start, goal := world.C(2, 3), world.C(15, 11)
	res := Plan(g, start, goal)
	want := world.Manhattan(start, goal) + 1
	if !res.Found || len(res.Path) != want {
		t.Fatalf("path cells = %d, want %d (optimal)", len(res.Path), want)
	}
}

func TestDetour(t *testing.T) {
	g := world.NewGrid(10, 10)
	// Vertical wall with a gap at the top.
	for y := 0; y < 9; y++ {
		g.SetBlocked(world.C(5, y), true)
	}
	res := Plan(g, world.C(0, 0), world.C(9, 0))
	if !res.Found {
		t.Fatal("path exists through the gap")
	}
	if len(res.Path) <= 10 {
		t.Fatalf("detour should be longer than straight line: %d", len(res.Path))
	}
	validatePath(t, g, res.Path, world.C(0, 0), world.C(9, 0))
}

func TestUnreachable(t *testing.T) {
	g := world.NewGrid(10, 10)
	for y := 0; y < 10; y++ {
		g.SetBlocked(world.C(5, y), true)
	}
	res := Plan(g, world.C(0, 0), world.C(9, 0))
	if res.Found {
		t.Fatal("found path through solid wall")
	}
	if res.Expanded == 0 {
		t.Fatal("search should have expanded nodes before giving up")
	}
}

func TestBlockedEndpoints(t *testing.T) {
	g := world.NewGrid(5, 5)
	g.SetBlocked(world.C(0, 0), true)
	if Plan(g, world.C(0, 0), world.C(4, 4)).Found {
		t.Fatal("blocked start should fail")
	}
	if Plan(g, world.C(4, 4), world.C(0, 0)).Found {
		t.Fatal("blocked goal should fail")
	}
}

func validatePath(t *testing.T, g *world.Grid, path []world.Cell, start, goal world.Cell) {
	t.Helper()
	if len(path) == 0 {
		t.Fatal("empty path")
	}
	if path[0] != start || path[len(path)-1] != goal {
		t.Fatalf("endpoints wrong: %v..%v", path[0], path[len(path)-1])
	}
	for i, c := range path {
		if g.Blocked(c) {
			t.Fatalf("path passes blocked cell %v", c)
		}
		if i > 0 && world.Manhattan(path[i-1], c) != 1 {
			t.Fatalf("non-adjacent step %v -> %v", path[i-1], c)
		}
	}
}

func TestRandomGridsProperty(t *testing.T) {
	// Property: on random grids, any found path is valid, connected and
	// obstacle-free; when a path is found its length is at least the
	// Manhattan lower bound.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := world.NewGrid(15, 15)
		for i := 0; i < 40; i++ {
			g.SetBlocked(world.C(r.Intn(15), r.Intn(15)), true)
		}
		start := world.C(r.Intn(15), r.Intn(15))
		goal := world.C(r.Intn(15), r.Intn(15))
		res := Plan(g, start, goal)
		if !res.Found {
			return true
		}
		if path := res.Path; len(path) < world.Manhattan(start, goal)+1 {
			return false
		}
		if res.Path[0] != start || res.Path[len(res.Path)-1] != goal {
			return false
		}
		for i, c := range res.Path {
			if g.Blocked(c) {
				return false
			}
			if i > 0 && world.Manhattan(res.Path[i-1], c) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExpandedGrowsWithDistance(t *testing.T) {
	g := world.NewGrid(40, 40)
	near := Plan(g, world.C(0, 0), world.C(2, 0))
	far := Plan(g, world.C(0, 0), world.C(39, 39))
	if far.Expanded <= near.Expanded {
		t.Fatalf("expanded near=%d far=%d", near.Expanded, far.Expanded)
	}
}

func BenchmarkPlanOpenGrid(b *testing.B) {
	g := world.NewGrid(50, 50)
	for i := 0; i < b.N; i++ {
		Plan(g, world.C(0, 0), world.C(49, 49))
	}
}

func BenchmarkPlanMaze(b *testing.B) {
	g := world.NewGrid(50, 50)
	for x := 5; x < 50; x += 10 {
		for y := 0; y < 45; y++ {
			g.SetBlocked(world.C(x, y), true)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Plan(g, world.C(0, 0), world.C(49, 49))
	}
}
