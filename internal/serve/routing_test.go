package serve

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"embench/internal/llm"
	"embench/internal/prompt"
	"embench/internal/rng"
)

// personaTrace builds the prefix-heavy routing workload: n streams, each
// with a large fixed-size persona section after the shared preamble, on a
// lightly loaded schedule with seeded arrival jitter (so cache-blind
// routing cannot stay accidentally sticky through pure periodicity).
func personaTrace(n, steps int, seed uint64) []Request {
	jit := rng.New(seed).NewStream("routing")
	var reqs []Request
	for s := 0; s < steps; s++ {
		for a := 0; a < n; a++ {
			reqs = append(reqs, Request{
				Agent: fmt.Sprintf("a%d", a),
				Arrival: time.Duration(s)*time.Minute +
					time.Duration(a)*3*time.Second +
					time.Duration(jit.Range(0, 9000))*time.Millisecond,
				Prompt: prompt.New(
					prompt.Section{Name: "system", Tokens: 220},
					prompt.Section{Name: "task", Tokens: 90},
					prompt.Section{Name: fmt.Sprintf("persona-a%d", a), Tokens: 1200},
					prompt.Section{Name: "hist", Tokens: 60 + 40*s, Droppable: true},
				),
				OutTokens: 140,
			})
		}
	}
	return reqs
}

func routingReplay(policy RoutingPolicy, replicas int) ReplayResult {
	return Replay(Config{
		Profile: noJitter, Replicas: replicas, Routing: policy,
		MaxBatch: 1, CacheEntries: 128,
	}, personaTrace(4, 8, 11))
}

// TestCacheAffinityBeatsLeastLoadedOnPrefixHeavyTrace is the routing-
// policy comparison the fleet experiment relies on: when streams carry
// big stable prefixes and load is light, pinning a stream to the replica
// that served it before must win on cache hit rate — least-loaded keeps
// handing the request to the longest-idle replica, whose cache is cold
// for that stream.
func TestCacheAffinityBeatsLeastLoadedOnPrefixHeavyTrace(t *testing.T) {
	ll := routingReplay(RouteLeastLoaded, 4)
	ca := routingReplay(RouteCacheAffinity, 4)
	if ca.Stats.CacheHitRate() <= ll.Stats.CacheHitRate() {
		t.Fatalf("cache-affinity should beat least-loaded on prefix-heavy traces: %.3f vs %.3f",
			ca.Stats.CacheHitRate(), ll.Stats.CacheHitRate())
	}
	// Fewer prefill tokens actually computed means affinity also serves
	// the trace no slower end to end.
	if ca.Makespan > ll.Makespan {
		t.Fatalf("affinity hits should not lengthen the makespan: %v vs %v",
			ca.Makespan, ll.Makespan)
	}
}

func TestShortestCompletionNeverLosesToLeastLoadedHere(t *testing.T) {
	// On the light-load persona trace the completion estimate is dominated
	// by the cache discount, so shortest-completion should capture the
	// affinity wins too.
	ll := routingReplay(RouteLeastLoaded, 4)
	sc := routingReplay(RouteShortestCompletion, 4)
	if sc.Stats.CacheHitRate() <= ll.Stats.CacheHitRate() {
		t.Fatalf("shortest-completion should inherit the cache wins: %.3f vs %.3f",
			sc.Stats.CacheHitRate(), ll.Stats.CacheHitRate())
	}
}

func TestRoutingPoliciesDeterministic(t *testing.T) {
	for _, p := range []RoutingPolicy{RouteLeastLoaded, RouteCacheAffinity, RouteShortestCompletion} {
		a, b := routingReplay(p, 2), routingReplay(p, 2)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s replay diverged across identical runs", p)
		}
	}
}

// TestClosedLoopCacheAffinityRouting exercises routing on the closed-loop
// path: two sticky streams on two replicas, issued alternately. Affinity
// must keep each stream's persona warm; least-loaded bounces them.
func TestClosedLoopCacheAffinityRouting(t *testing.T) {
	serveAll := func(policy RoutingPolicy) float64 {
		e := New(Config{Profile: noJitter, Replicas: 2, Routing: policy, CacheEntries: 128})
		for _, r := range personaTrace(2, 8, 3) {
			e.Serve(llm.Call{Agent: r.Agent, Arrival: r.Arrival,
				Prompt: r.Prompt, PromptTokens: r.Prompt.Tokens(), OutTokens: r.OutTokens})
		}
		return e.Stats().CacheHitRate()
	}
	if serveAll(RouteCacheAffinity) <= serveAll(RouteLeastLoaded) {
		t.Fatal("closed-loop cache-affinity should beat least-loaded on sticky streams")
	}
}

func TestParseRouting(t *testing.T) {
	for in, want := range map[string]RoutingPolicy{
		"":                    RouteLeastLoaded,
		"least-loaded":        RouteLeastLoaded,
		"cache-affinity":      RouteCacheAffinity,
		"shortest-completion": RouteShortestCompletion,
	} {
		got, err := ParseRouting(in)
		if err != nil || got != want {
			t.Fatalf("ParseRouting(%q) = %v, %v", in, got, err)
		}
	}
	// On error the returned policy must be "" — not a silently usable
	// least-loaded fallback a caller could run after dropping the error.
	if got, err := ParseRouting("round-robin"); err == nil || got != "" {
		t.Fatalf("ParseRouting(round-robin) = %q, %v; want \"\" and an error", got, err)
	}
}

func TestParseIdentity(t *testing.T) {
	for in, want := range map[string]CacheIdentity{
		"":        IdentityShape,
		"shape":   IdentityShape,
		"content": IdentityContent,
	} {
		got, err := ParseIdentity(in)
		if err != nil || got != want {
			t.Fatalf("ParseIdentity(%q) = %v, %v", in, got, err)
		}
	}
	if got, err := ParseIdentity("sha256"); err == nil || got != "" {
		t.Fatalf("ParseIdentity(sha256) = %q, %v; want \"\" and an error", got, err)
	}
}

// TestCacheAffinityCapacityPressureSpreads is the unit-level statement of
// the fig11 acceptance criterion, pinned on the SAME generator fig11
// sweeps (SharedPreambleTrace — one workload, so the regression test and
// the figure cannot drift apart): with a token budget, cache-affinity
// must spread the shared-preamble workload across replicas (max
// per-replica share strictly below the budget-blind collapse) while
// keeping the hit rate within 10% of pure affinity.
func TestCacheAffinityCapacityPressureSpreads(t *testing.T) {
	reqs := SharedPreambleTrace(16, 16, 5)
	run := func(cacheTokens int) ReplayResult {
		return Replay(Config{
			Profile: noJitter, Replicas: 4, Routing: RouteCacheAffinity,
			MaxBatch: 1, CacheEntries: 512, CacheTokens: cacheTokens,
		}, reqs)
	}
	pure := run(0)
	aware := run(8192)
	pureShare, awareShare := pure.Stats.MaxReplicaShare(), aware.Stats.MaxReplicaShare()
	if pureShare < 0.5 {
		t.Fatalf("workload no longer collapses under pure affinity (max share %.2f); the regression fixture is broken", pureShare)
	}
	if awareShare >= pureShare {
		t.Fatalf("capacity pressure should spread the load: max share %.2f (budget) vs %.2f (pure)",
			awareShare, pureShare)
	}
	if hr, pureHR := aware.Stats.CacheHitRate(), pure.Stats.CacheHitRate(); hr < 0.9*pureHR {
		t.Fatalf("spreading gave up too many cache hits: %.3f vs %.3f pure", hr, pureHR)
	}
	if aware.Stats.CacheTokensPeak > 8192 {
		t.Fatalf("per-replica peak %d exceeds the 8192-token budget", aware.Stats.CacheTokensPeak)
	}
}
