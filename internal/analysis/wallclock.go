package analysis

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the time-package functions that read or consume the
// machine's real clock. time.Duration arithmetic, time.Millisecond and
// friends are fine — they are units, not clock reads.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	"Sleep": true,
}

// WallClock flags reads of the machine's wall clock anywhere in the
// module. The simulator runs on virtual time (internal/simclock, trace
// spans, serve's discrete-event clock); a time.Now in a cost model or
// scheduler makes two runs of the same seed diverge and breaks the
// sequential-vs-parallel parity the whole suite is gated on.
//
// The only legitimate wall-clock sites are the bench harness's own
// wall-time measurements (how long did regenerating fig10 take on this
// machine) — those carry //detlint:allow wallclock annotations, which is
// exactly the documented list of places real time is allowed to exist.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "flags time.Now/Since/Until/Sleep; simulation code runs on virtual time only, " +
		"and harness wall-timing sites must carry //detlint:allow wallclock",
	Run: runWallClock,
}

func runWallClock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if !wallClockFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock; simulation runs on virtual time — use the simulated clock, or annotate //detlint:allow wallclock <why> for genuine harness timing",
				fn.Name())
			return true
		})
	}
	return nil
}
