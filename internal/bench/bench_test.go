package bench

import (
	"strings"
	"testing"
	"time"

	"embench/internal/trace"
	"embench/internal/world"
)

// small keeps experiment tests fast while exercising the full pipeline.
var small = Config{Episodes: 3, Seed: 7}

func TestFig2ShapesHold(t *testing.T) {
	rows := Fig2(small)
	if len(rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(rows))
	}
	// Takeaway 1: steps cost seconds-to-tens-of-seconds; LLM modules
	// dominate on average.
	for _, r := range rows {
		sec := r.MeanStepTime.Seconds()
		if sec < 1 || sec > 60 {
			t.Errorf("%s: per-step latency %.1fs outside plausible band", r.System, sec)
		}
		if r.TotalRuntime < time.Minute {
			t.Errorf("%s: total runtime %.1fm implausibly small", r.System, r.TotalRuntime.Minutes())
		}
	}
	if share := MeanLLMShare(rows); share < 0.55 || share > 0.9 {
		t.Fatalf("mean LLM share = %.2f, want near paper's 0.70", share)
	}
	// Execution is a significant share where the paper says it is.
	byName := map[string]Fig2Row{}
	for _, r := range rows {
		byName[r.System] = r
	}
	for _, sys := range []string{"RoCo", "DaDu-E", "EmbodiedGPT"} {
		if byName[sys].ModuleShare[trace.Execution] < 0.12 {
			t.Errorf("%s execution share = %.2f, paper reports it substantial",
				sys, byName[sys].ModuleShare[trace.Execution])
		}
	}
	// Reflection is cheap overall.
	if refl := MeanModuleShare(rows, trace.Reflection); refl > 0.2 {
		t.Errorf("mean reflection share = %.2f, should be small (paper 8.6%%)", refl)
	}
	out := RenderFig2(rows)
	if !strings.Contains(out, "Fig. 2a") || !strings.Contains(out, "Fig. 2b") {
		t.Fatal("render missing panels")
	}
}

func TestFig3AblationDirections(t *testing.T) {
	rows := Fig3(small)
	// N/A cells exactly where the paper marks them.
	na := map[string]Ablation{"JARVIS-1": NoComm, "CoELA": NoRefl, "COMBO": NoRefl}
	for _, r := range rows {
		if want, ok := na[r.System]; ok && r.Ablation == want && r.Applicable {
			t.Errorf("%s %s should be not-applicable", r.System, r.Ablation)
		}
	}
	memRatio, memDrop := AblationImpact(rows, NoMem)
	if memRatio <= 1.05 {
		t.Errorf("w/o memory steps ratio = %.2f, want > 1 (paper 1.61)", memRatio)
	}
	if memDrop <= 0 {
		t.Errorf("w/o memory success drop = %.1f pts, want positive (paper 27.7)", memDrop)
	}
	reflRatio, reflDrop := AblationImpact(rows, NoRefl)
	if reflRatio <= 1.05 {
		t.Errorf("w/o reflection steps ratio = %.2f, want > 1 (paper 1.88)", reflRatio)
	}
	// Success may survive on lenient horizons at small sample sizes; it
	// must never *improve* beyond noise.
	if reflDrop < -5 {
		t.Errorf("w/o reflection improved success by %.1f pts; should never help", -reflDrop)
	}
	// Execution ablation: tasks fail and hit Lmax.
	for _, r := range rows {
		if r.Ablation == NoExec && r.Applicable {
			if r.SuccessRate > 0.35 {
				t.Errorf("%s w/o execution success = %.2f, paper reports task failure", r.System, r.SuccessRate)
			}
		}
	}
	// Communication ablation: no large success impact (Takeaway 2).
	commRatio, commDrop := AblationImpact(rows, NoComm)
	if commDrop > 25 {
		t.Errorf("w/o communication dropped success by %.1f pts; paper finds no significant impact", commDrop)
	}
	_ = commRatio
	if out := RenderFig3(rows); !strings.Contains(out, "n/a") {
		t.Fatal("render should mark not-applicable cells")
	}
}

func TestFig4LocalModelTradeoff(t *testing.T) {
	rows := Fig4(small)
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	worseSuccess, fasterCalls, moreSteps := 0, 0, 0
	var callRatio, runtimeRatio float64
	for _, r := range rows {
		if r.LlamaSuccess <= r.GPT4Success {
			worseSuccess++
		}
		if r.LlamaCallTime < r.GPT4CallTime {
			fasterCalls++
		}
		if r.LlamaSteps > r.GPT4Steps {
			moreSteps++
		}
		callRatio += float64(r.LlamaCallTime) / float64(r.GPT4CallTime)
		runtimeRatio += float64(r.LlamaRuntime) / float64(r.GPT4Runtime)
	}
	callRatio /= float64(len(rows))
	runtimeRatio /= float64(len(rows))
	// Takeaway 3 directions, allowing noise on a couple of systems: local
	// inference is faster per call, decision quality is never better, the
	// agent takes more actions, and the extra actions eat a large part of
	// the per-call latency advantage end-to-end.
	if worseSuccess < 7 {
		t.Errorf("local model beat GPT-4 on %d/10 systems; expected lower success", 10-worseSuccess)
	}
	if fasterCalls < 9 {
		t.Errorf("local per-call latency should be faster: %d/10", fasterCalls)
	}
	if moreSteps < 6 {
		t.Errorf("local model should need more steps: %d/10", moreSteps)
	}
	if runtimeRatio <= callRatio {
		t.Errorf("end-to-end runtime ratio (%.2f) should exceed per-call ratio (%.2f): extra actions must show",
			runtimeRatio, callRatio)
	}
}

func TestFig5MemoryShapes(t *testing.T) {
	rows := Fig5(Config{Episodes: 3, Seed: 11})
	// Retrieval latency grows with capacity on long tasks. Easy episodes
	// can end before the smallest window even fills, so the growth
	// assertion applies to medium and hard.
	for _, sys := range fig5Systems {
		for _, diff := range []world.Difficulty{world.Medium, world.Hard} {
			var sel []Fig5Row
			for _, r := range rows {
				if r.System == sys && r.Difficulty == diff {
					sel = append(sel, r)
				}
			}
			if len(sel) < 2 {
				t.Fatalf("missing sweep for %s/%s", sys, diff)
			}
			if sel[len(sel)-1].Retrieval < sel[0].Retrieval {
				t.Errorf("%s/%s: retrieval latency shrank with capacity", sys, diff)
			}
		}
	}
	// Success at the sweep's sweet spot beats the smallest capacity for
	// hard tasks (paper: complex tasks benefit from larger memory).
	for _, sys := range fig5Systems {
		var sel []Fig5Row
		for _, r := range rows {
			if r.System == sys && r.Difficulty == world.Hard {
				sel = append(sel, r)
			}
		}
		best := 0.0
		for _, r := range sel[1:] {
			if r.SuccessRate > best {
				best = r.SuccessRate
			}
		}
		if best < sel[0].SuccessRate {
			t.Errorf("%s hard: larger memory never beat the smallest capacity", sys)
		}
	}
}

func TestFig6TokenGrowth(t *testing.T) {
	series := Fig6(Config{Seed: 3})
	if len(series) == 0 {
		t.Fatal("no token series")
	}
	grew := 0
	for _, s := range series {
		if s.GrowthRatio() > 1.2 {
			grew++
		}
		if s.PeakTokens() <= 0 {
			t.Errorf("%s/%s: empty series", s.System, s.Stream)
		}
	}
	if grew < len(series)/2 {
		t.Fatalf("only %d/%d streams grew >1.2x; paper shows token growth over time", grew, len(series))
	}
	for _, name := range fig6Systems {
		found := false
		for _, s := range series {
			if s.System == name {
				found = true
			}
		}
		if !found {
			t.Errorf("missing series for %s", name)
		}
	}
}

func TestFig7ScalabilityShapes(t *testing.T) {
	rows := Fig7(Config{Episodes: 2, Seed: 5})
	// Centralized: success collapses with team size on hard tasks.
	ma := Select(rows, "MindAgent", world.Hard)
	if len(ma) != len(Fig7Agents) {
		t.Fatalf("MindAgent sweep incomplete: %d", len(ma))
	}
	if ma[len(ma)-1].SuccessRate >= ma[0].SuccessRate {
		t.Errorf("centralized success should decline with agents: %.2f -> %.2f",
			ma[0].SuccessRate, ma[len(ma)-1].SuccessRate)
	}
	// Decentralized latency grows much faster than centralized latency.
	co := Select(rows, "CoELA", world.Hard)
	maGrowth := float64(ma[len(ma)-1].TaskLatency) / float64(ma[0].TaskLatency)
	coGrowth := float64(co[len(co)-1].TaskLatency) / float64(co[0].TaskLatency)
	if coGrowth <= maGrowth {
		t.Errorf("decentralized latency growth (%.2fx) should exceed centralized (%.2fx)", coGrowth, maGrowth)
	}
	// Decentralized LLM calls grow superlinearly vs centralized.
	maCalls := ma[len(ma)-1].LLMCalls / ma[0].LLMCalls
	coCalls := co[len(co)-1].LLMCalls / co[0].LLMCalls
	if coCalls <= maCalls {
		t.Errorf("decentralized LLM-call growth (%.2fx) should exceed centralized (%.2fx)", coCalls, maCalls)
	}
}

func TestOptimizationsDirections(t *testing.T) {
	rows := Optimizations(Config{Episodes: 3, Seed: 13})
	byName := map[string]OptRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["rec7 plan-horizon"]; r.Speedup() <= 1 {
		t.Errorf("plan-horizon should cut runtime: %.2fx", r.Speedup())
	}
	if r := byName["rec8 plan-then-comm"]; r.OptMsgs >= r.BaseMsgs {
		t.Errorf("plan-then-comm should cut messages: %.0f -> %.0f", r.BaseMsgs, r.OptMsgs)
	} else if r.Speedup() < 0.85 {
		t.Errorf("plan-then-comm should not slow the system much: %.2fx", r.Speedup())
	}
	if r := byName["t6 parallel-pipeline"]; r.Speedup() <= 1 {
		t.Errorf("parallel pipeline should cut runtime: %.2fx", r.Speedup())
	}
	if r := byName["rec4 multiple-choice"]; r.OptSuccess < r.BaseSuccess {
		t.Errorf("multiple-choice should not hurt small-model success: %.2f -> %.2f",
			r.BaseSuccess, r.OptSuccess)
	}
	// Dual memory trades a little recall for bounded context: runtime must
	// stay in the same band (its headline win, lower retrieval latency and
	// smaller prompts, is asserted in TestDualRetrievalCheaperThanFlat).
	if r := byName["rec5 dual-memory"]; r.Speedup() < 0.85 {
		t.Errorf("dual memory slowed the system too much: %.2fx", r.Speedup())
	}
	bat := Batching()
	if len(bat) != 6 {
		t.Fatalf("batching rows = %d", len(bat))
	}
	for _, r := range bat {
		if r.Speedup <= 1 {
			t.Errorf("%s batch=%d speedup %.2f, want >1", r.Profile, r.BatchSize, r.Speedup)
		}
	}
	out := RenderOptimizations(rows, bat)
	if !strings.Contains(out, "rec9 hierarchical") {
		t.Fatal("render missing rows")
	}
}

func TestCalibrationReport(t *testing.T) {
	rows := Fig2(Config{Episodes: 2, Seed: 17})
	out := CalibrationReport(rows)
	for _, want := range []string{"LLM latency share", "CoELA", "paper"} {
		if !strings.Contains(out, want) {
			t.Fatalf("calibration report missing %q", want)
		}
	}
}
