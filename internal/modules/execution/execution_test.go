package execution

import (
	"testing"
	"time"
)

func TestLatencyZeroEffort(t *testing.T) {
	if Latency(Effort{}) != 0 {
		t.Fatal("zero effort should cost nothing")
	}
}

func TestLatencyComponents(t *testing.T) {
	e := Effort{AStarExpanded: 1000, Primitives: 5}
	want := 1000*90*time.Microsecond + 5*220*time.Millisecond
	if got := Latency(e); got != want {
		t.Fatalf("Latency = %v, want %v", got, want)
	}
}

func TestRRTDominatesAStarPerUnit(t *testing.T) {
	// RRT compute per sample is costlier than A* per node — this asymmetry
	// is why RoCo's execution share (49.4%) exceeds CoELA's.
	if Latency(Effort{RRTSamples: 100}) <= Latency(Effort{AStarExpanded: 100}) {
		t.Fatal("RRT per-sample cost should exceed A* per-node cost")
	}
}

func TestGraspOpsExpensive(t *testing.T) {
	// A grasp synthesis is on the order of a second (DaDu-E's AnyGrasp).
	got := Latency(Effort{GraspOps: 1})
	if got < 500*time.Millisecond || got > 2*time.Second {
		t.Fatalf("grasp op latency = %v, want ≈0.9s", got)
	}
}

func TestEffortAdd(t *testing.T) {
	a := Effort{AStarExpanded: 10, Primitives: 2, Replans: 1}
	a.Add(Effort{AStarExpanded: 5, RRTSamples: 7, ControlIters: 3})
	want := Effort{AStarExpanded: 15, RRTSamples: 7, Primitives: 2, ControlIters: 3, Replans: 1}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}

func TestTypicalRoCoStepExecutionSeconds(t *testing.T) {
	// Two RRT plans of ~150 samples each plus ~10 primitives should land in
	// the multi-second band that makes execution ~half of RoCo's per-step
	// latency (paper Fig. 2a: 49.4%).
	got := Latency(Effort{RRTSamples: 300, Primitives: 10, Replans: 1})
	if got < 5*time.Second || got > 15*time.Second {
		t.Fatalf("RoCo-like execution latency = %v, want 5–15s", got)
	}
}
