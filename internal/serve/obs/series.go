package obs

import (
	"fmt"
	"sort"
	"time"
)

// Series is a fixed-interval virtual-time sampling of one recorded event
// stream: per-interval integrals and counts of the quantities the fig8–12
// analyses kept re-deriving by hand — queue depth, active replicas,
// cache-token occupancy and batch occupancy per replica.
//
// Like metrics.Hist, a Series merges EXACTLY: every field is either a
// per-interval sum of per-request (or per-replica) contributions or a
// per-interval count, so Merge(a, b) equals sampling the union of the two
// underlying streams — provided the streams come from distinct sources
// (different endpoints must carry distinct Shard tags, or be sampled
// separately and merged, the intended cross-episode path).
//
// Integrals are stored as nanosecond·unit sums per interval: QueueNs[i] is
// the integral of queue depth over interval i, so dividing by Interval
// yields the mean depth. This is what makes merging exact — means don't
// sum, integrals do.
type Series struct {
	Interval time.Duration `json:"interval"`
	// Queue depth integral per interval: sum over requests of the overlap
	// of their [arrival, service start) span with the interval.
	QueueNs []int64 `json:"queue_ns"`
	// Active-replica integral per interval (autoscaled step function; a
	// fixed endpoint contributes a constant).
	ActiveNs []int64 `json:"active_ns"`
	// Completions per interval (by completion time).
	Completions []int64 `json:"completions"`
	// Tokens evicted (capacity + flush) per interval.
	EvictedTokens []int64 `json:"evicted_tokens"`
	// Per-replica rows, keyed "shard/replica".
	Replicas map[string]*ReplicaSeries `json:"replicas,omitempty"`
}

// ReplicaSeries is one replica's per-interval occupancy rows.
type ReplicaSeries struct {
	// Batch-occupancy integral: sum over requests served on this replica of
	// the overlap of their [service start, completion) span. Dividing by
	// Interval gives mean in-flight sequences.
	BusyNs []int64 `json:"busy_ns"`
	// Live cache-token integral, reconstructed from the admission/evict/
	// flush token deltas. Dividing by Interval gives mean resident tokens.
	CacheTokNs []int64 `json:"cache_tok_ns"`
}

// Len reports the number of sampled intervals.
func (s Series) Len() int { return len(s.Completions) }

// replicaKey names a per-replica row.
func replicaKey(shard, replica int) string { return fmt.Sprintf("%d/%d", shard, replica) }

// grow extends a slice with zeros to at least n entries.
func grow(s []int64, n int) []int64 {
	for len(s) < n {
		s = append(s, 0)
	}
	return s
}

// addSpan accumulates weight × overlap([from, to), interval_i) into acc,
// growing it as needed, and returns it.
func addSpan(acc []int64, interval time.Duration, from, to time.Duration, weight int64) []int64 {
	if to <= from || interval <= 0 {
		return acc
	}
	lo := int(from / interval)
	hi := int((to - 1) / interval)
	acc = grow(acc, hi+1)
	for i := lo; i <= hi; i++ {
		winLo := time.Duration(i) * interval
		winHi := winLo + interval
		a, b := from, to
		if a < winLo {
			a = winLo
		}
		if b > winHi {
			b = winHi
		}
		acc[i] += weight * int64(b-a)
	}
	return acc
}

// Sample reduces a recorded event stream to a fixed-interval Series.
// Events may arrive in any order; they are processed in (T, Seq) order.
// interval <= 0 defaults to one second.
func Sample(events []Event, interval time.Duration) Series {
	if interval <= 0 {
		interval = time.Second
	}
	s := Series{Interval: interval, Replicas: map[string]*ReplicaSeries{}}

	ordered := append([]Event(nil), events...)
	sort.SliceStable(ordered, func(a, b int) bool {
		if ordered[a].T != ordered[b].T {
			return ordered[a].T < ordered[b].T
		}
		return ordered[a].Seq < ordered[b].Seq
	})

	// Step-function trackers, keyed per source (shard) and per replica row:
	// active-replica level since the last change, and live cache tokens.
	type level struct {
		since time.Duration
		val   int64
	}
	active := map[int]*level{}      // per shard
	cache := map[[2]int]*level{}    // per shard/replica
	ends := map[int]time.Duration{} // per-shard horizon: max event time seen
	// Step functions close at their own shard's horizon, not the global one:
	// that is what keeps Merge exact when sources of different lengths are
	// combined (a short source must not have its last level stretched to a
	// longer source's horizon).
	row := func(key string) *ReplicaSeries {
		r, ok := s.Replicas[key]
		if !ok {
			r = &ReplicaSeries{}
			s.Replicas[key] = r
		}
		return r
	}
	flushActive := func(l *level, to time.Duration) {
		s.ActiveNs = addSpan(s.ActiveNs, interval, l.since, to, l.val)
		l.since = to
	}
	flushCache := func(key [2]int, l *level, to time.Duration) {
		r := row(replicaKey(key[0], key[1]))
		r.CacheTokNs = addSpan(r.CacheTokNs, interval, l.since, to, l.val)
		l.since = to
	}

	for _, ev := range ordered {
		if ev.T > ends[ev.Shard] {
			ends[ev.Shard] = ev.T
		}
		switch ev.Kind {
		case KindConfig:
			active[ev.Shard] = &level{since: ev.T, val: int64(ev.Active)}
		case KindScaleUp, KindScaleDown:
			l, ok := active[ev.Shard]
			if !ok {
				l = &level{since: ev.T}
				active[ev.Shard] = l
			}
			flushActive(l, ev.T)
			l.val = int64(ev.Active)
		case KindComplete:
			idx := int(ev.T / interval)
			s.Completions = grow(s.Completions, idx+1)
			s.Completions[idx]++
			s.QueueNs = addSpan(s.QueueNs, interval, ev.Arrival(), ev.Start(), 1)
			r := row(replicaKey(ev.Shard, ev.Replica))
			r.BusyNs = addSpan(r.BusyNs, interval, ev.Start(), ev.T, 1)
		case KindCacheHit, KindCacheMiss:
			// Admission grows the replica's resident footprint by exactly the
			// uncached suffix (prefix chains are prefix-closed).
			key := [2]int{ev.Shard, ev.Replica}
			l, ok := cache[key]
			if !ok {
				l = &level{since: ev.T}
				cache[key] = l
			}
			flushCache(key, l, ev.T)
			l.val += int64(ev.Tokens - ev.Cached)
		case KindCacheEvict, KindCacheFlush:
			idx := int(ev.T / interval)
			s.EvictedTokens = grow(s.EvictedTokens, idx+1)
			s.EvictedTokens[idx] += int64(ev.Tokens)
			key := [2]int{ev.Shard, ev.Replica}
			l, ok := cache[key]
			if !ok {
				l = &level{since: ev.T}
				cache[key] = l
			}
			flushCache(key, l, ev.T)
			l.val -= int64(ev.Tokens)
			if l.val < 0 {
				l.val = 0
			}
		}
	}

	// Close every step function at its shard's horizon.
	//detlint:allow maprange flushes keyed spans; row content independent of visit order
	for shard, l := range active {
		flushActive(l, ends[shard])
	}
	//detlint:allow maprange flushes keyed spans; row content independent of visit order
	for key, l := range cache {
		flushCache(key, l, ends[key[0]])
	}

	// Pad every row to a common length so Merge is a clean zip.
	n := s.Len()
	for _, f := range []*[]int64{&s.QueueNs, &s.ActiveNs, &s.EvictedTokens} {
		if len(*f) > n {
			n = len(*f)
		}
	}
	//detlint:allow maprange max over values only; order-independent
	for _, r := range s.Replicas {
		if len(r.BusyNs) > n {
			n = len(r.BusyNs)
		}
		if len(r.CacheTokNs) > n {
			n = len(r.CacheTokNs)
		}
	}
	s.Completions = grow(s.Completions, n)
	s.QueueNs = grow(s.QueueNs, n)
	s.ActiveNs = grow(s.ActiveNs, n)
	s.EvictedTokens = grow(s.EvictedTokens, n)
	//detlint:allow maprange keyed in-place pad; order-independent
	for _, r := range s.Replicas {
		r.BusyNs = grow(r.BusyNs, n)
		r.CacheTokNs = grow(r.CacheTokNs, n)
	}
	return s
}

// sumInto adds b into a elementwise, growing a as needed.
func sumInto(a, b []int64) []int64 {
	a = grow(a, len(b))
	for i, v := range b {
		a[i] += v
	}
	return a
}

// Merge combines two series sampled at the same interval: elementwise sums
// everywhere, replica rows unioned by key. Panics on interval mismatch —
// merging incomparable samplings is a caller bug, exactly like merging
// histograms with different buckets would be.
func (s Series) Merge(o Series) Series {
	if s.Interval == 0 {
		s.Interval = o.Interval
	}
	if o.Interval != 0 && o.Interval != s.Interval {
		panic("obs: merging series with different sampling intervals")
	}
	out := Series{Interval: s.Interval, Replicas: map[string]*ReplicaSeries{}}
	out.QueueNs = sumInto(sumInto(nil, s.QueueNs), o.QueueNs)
	out.ActiveNs = sumInto(sumInto(nil, s.ActiveNs), o.ActiveNs)
	out.Completions = sumInto(sumInto(nil, s.Completions), o.Completions)
	out.EvictedTokens = sumInto(sumInto(nil, s.EvictedTokens), o.EvictedTokens)
	//detlint:allow maprange keyed copy into fresh map; order-independent
	for key, r := range s.Replicas {
		out.Replicas[key] = &ReplicaSeries{
			BusyNs:     sumInto(nil, r.BusyNs),
			CacheTokNs: sumInto(nil, r.CacheTokNs),
		}
	}
	//detlint:allow maprange keyed union via commutative sumInto; order-independent
	for key, r := range o.Replicas {
		dst, ok := out.Replicas[key]
		if !ok {
			dst = &ReplicaSeries{}
			out.Replicas[key] = dst
		}
		dst.BusyNs = sumInto(dst.BusyNs, r.BusyNs)
		dst.CacheTokNs = sumInto(dst.CacheTokNs, r.CacheTokNs)
	}
	// Normalize lengths across all rows (sources of different horizons).
	n := 0
	for _, f := range [][]int64{out.QueueNs, out.ActiveNs, out.Completions, out.EvictedTokens} {
		if len(f) > n {
			n = len(f)
		}
	}
	//detlint:allow maprange max over values only; order-independent
	for _, r := range out.Replicas {
		if len(r.BusyNs) > n {
			n = len(r.BusyNs)
		}
		if len(r.CacheTokNs) > n {
			n = len(r.CacheTokNs)
		}
	}
	out.QueueNs = grow(out.QueueNs, n)
	out.ActiveNs = grow(out.ActiveNs, n)
	out.Completions = grow(out.Completions, n)
	out.EvictedTokens = grow(out.EvictedTokens, n)
	//detlint:allow maprange keyed in-place pad; order-independent
	for _, r := range out.Replicas {
		r.BusyNs = grow(r.BusyNs, n)
		r.CacheTokNs = grow(r.CacheTokNs, n)
	}
	return out
}

// MeanQueueDepth reports interval i's time-averaged queue depth.
func (s Series) MeanQueueDepth(i int) float64 {
	if i < 0 || i >= len(s.QueueNs) || s.Interval <= 0 {
		return 0
	}
	return float64(s.QueueNs[i]) / float64(s.Interval)
}

// MeanActive reports interval i's time-averaged active replica count.
func (s Series) MeanActive(i int) float64 {
	if i < 0 || i >= len(s.ActiveNs) || s.Interval <= 0 {
		return 0
	}
	return float64(s.ActiveNs[i]) / float64(s.Interval)
}
