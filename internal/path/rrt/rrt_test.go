package rrt

import (
	"testing"

	"embench/internal/geom"
	"embench/internal/rng"
)

var unit = geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}

func stream(name string) *rng.Stream { return rng.New(99).NewStream(name) }

func TestPlanOpenSpace(t *testing.T) {
	p := New()
	res := p.Plan(geom.Pt(0.1, 0.1), geom.Pt(0.9, 0.9), unit, nil, stream("open"))
	if !res.Found {
		t.Fatal("no path in open space")
	}
	validate(t, res.Path, geom.Pt(0.1, 0.1), geom.Pt(0.9, 0.9), nil)
}

func TestPlanAroundObstacle(t *testing.T) {
	p := New()
	obs := []geom.Circle{{C: geom.Pt(0.5, 0.5), R: 0.2}}
	res := p.Plan(geom.Pt(0.1, 0.5), geom.Pt(0.9, 0.5), unit, obs, stream("obs"))
	if !res.Found {
		t.Fatal("no path around obstacle")
	}
	validate(t, res.Path, geom.Pt(0.1, 0.5), geom.Pt(0.9, 0.5), obs)
	if res.Samples <= 0 {
		t.Fatal("samples not reported")
	}
}

func TestPlanBlockedEndpoint(t *testing.T) {
	p := New()
	obs := []geom.Circle{{C: geom.Pt(0.1, 0.1), R: 0.05}}
	if p.Plan(geom.Pt(0.1, 0.1), geom.Pt(0.9, 0.9), unit, obs, stream("b1")).Found {
		t.Fatal("start inside obstacle should fail")
	}
	if p.Plan(geom.Pt(0.9, 0.9), geom.Pt(0.1, 0.1), unit, obs, stream("b2")).Found {
		t.Fatal("goal inside obstacle should fail")
	}
}

func TestPlanInfeasibleExhaustsBudget(t *testing.T) {
	p := New()
	p.MaxIter = 400
	// Wall of overlapping circles across the middle.
	var obs []geom.Circle
	for x := -0.1; x <= 1.1; x += 0.05 {
		obs = append(obs, geom.Circle{C: geom.Pt(x, 0.5), R: 0.06})
	}
	res := p.Plan(geom.Pt(0.5, 0.1), geom.Pt(0.5, 0.9), unit, obs, stream("wall"))
	if res.Found {
		t.Fatal("path through solid wall")
	}
	if res.Samples != 400 {
		t.Fatalf("should exhaust budget, samples = %d", res.Samples)
	}
}

func TestTrivialShortPlan(t *testing.T) {
	p := New()
	res := p.Plan(geom.Pt(0.5, 0.5), geom.Pt(0.51, 0.5), unit, nil, stream("triv"))
	if !res.Found || len(res.Path) < 2 {
		t.Fatalf("trivial plan = %+v", res)
	}
}

func TestDeterministicGivenStream(t *testing.T) {
	p := New()
	obs := []geom.Circle{{C: geom.Pt(0.5, 0.4), R: 0.15}}
	r1 := p.Plan(geom.Pt(0.1, 0.1), geom.Pt(0.9, 0.9), unit, obs, stream("det"))
	r2 := p.Plan(geom.Pt(0.1, 0.1), geom.Pt(0.9, 0.9), unit, obs, stream("det"))
	if r1.Samples != r2.Samples || len(r1.Path) != len(r2.Path) {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d samples/len",
			r1.Samples, len(r1.Path), r2.Samples, len(r2.Path))
	}
}

func TestSmoothShortensPath(t *testing.T) {
	// A deliberately zig-zag path in open space should collapse.
	path := []geom.Point{geom.Pt(0, 0), geom.Pt(0.1, 0.5), geom.Pt(0.2, 0), geom.Pt(0.3, 0.5), geom.Pt(0.4, 0), geom.Pt(1, 0)}
	before := geom.PathLength(path)
	out := Smooth(path, nil, stream("smooth"), 50)
	after := geom.PathLength(out)
	if after > before {
		t.Fatalf("Smooth lengthened path: %v -> %v", before, after)
	}
	if len(out) > len(path) {
		t.Fatal("Smooth added waypoints")
	}
	if out[0] != path[0] || out[len(out)-1] != path[len(path)-1] {
		t.Fatal("Smooth moved endpoints")
	}
}

func TestSmoothPreservesCollisionFreedom(t *testing.T) {
	obs := []geom.Circle{{C: geom.Pt(0.5, 0.25), R: 0.2}}
	// Path that skirts the obstacle.
	path := []geom.Point{geom.Pt(0.1, 0.5), geom.Pt(0.3, 0.6), geom.Pt(0.5, 0.65), geom.Pt(0.7, 0.6), geom.Pt(0.9, 0.5)}
	out := Smooth(path, obs, stream("sp"), 100)
	for i := 1; i < len(out); i++ {
		if !geom.CollisionFree(out[i-1], out[i], obs) {
			t.Fatalf("smoothed segment %d collides", i)
		}
	}
}

func validate(t *testing.T, path []geom.Point, start, goal geom.Point, obs []geom.Circle) {
	t.Helper()
	if len(path) < 2 {
		t.Fatalf("degenerate path: %v", path)
	}
	if path[0] != start {
		t.Fatalf("path starts at %v, want %v", path[0], start)
	}
	if geom.Dist(path[len(path)-1], goal) > 1e-9 {
		t.Fatalf("path ends at %v, want %v", path[len(path)-1], goal)
	}
	for i := 1; i < len(path); i++ {
		if !geom.CollisionFree(path[i-1], path[i], obs) {
			t.Fatalf("segment %d collides", i)
		}
	}
}

func TestManyRandomQueriesStayValid(t *testing.T) {
	p := New()
	obs := []geom.Circle{
		{C: geom.Pt(0.3, 0.3), R: 0.1},
		{C: geom.Pt(0.7, 0.6), R: 0.12},
		{C: geom.Pt(0.4, 0.8), R: 0.08},
	}
	st := stream("many")
	found := 0
	for i := 0; i < 25; i++ {
		var a, b geom.Point
		for {
			a = geom.Pt(st.Range(0, 1), st.Range(0, 1))
			if geom.CollisionFree(a, a, obs) {
				break
			}
		}
		for {
			b = geom.Pt(st.Range(0, 1), st.Range(0, 1))
			if geom.CollisionFree(b, b, obs) {
				break
			}
		}
		res := p.Plan(a, b, unit, obs, st)
		if !res.Found {
			continue
		}
		found++
		validate(t, res.Path, a, b, obs)
	}
	if found < 20 {
		t.Fatalf("only %d/25 feasible queries solved", found)
	}
}

func BenchmarkPlan(b *testing.B) {
	p := New()
	obs := []geom.Circle{{C: geom.Pt(0.5, 0.5), R: 0.2}}
	st := stream("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Plan(geom.Pt(0.1, 0.5), geom.Pt(0.9, 0.5), unit, obs, st)
	}
}
