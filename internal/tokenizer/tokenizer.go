// Package tokenizer approximates LLM token accounting.
//
// The suite does not run a real BPE tokenizer; it only needs token *counts*
// (prompt length drives both serving latency and context dilution in the
// paper's model). Counts follow the rule of thumb used for GPT-family
// tokenizers — roughly one token per word plus extra tokens for long words
// and punctuation — which is accurate enough that the paper's token-growth
// curves (Fig. 6) keep their shape.
package tokenizer

import (
	"strings"
	"unicode"
)

// Count estimates the number of tokens in s.
//
// Heuristic: each whitespace-separated word costs ceil(len/4) with a minimum
// of one token, and each punctuation rune costs one token. The empty string
// costs zero.
func Count(s string) int {
	if s == "" {
		return 0
	}
	tokens := 0
	wordLen := 0
	flush := func() {
		if wordLen > 0 {
			tokens += (wordLen + 3) / 4
			wordLen = 0
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsSpace(r):
			flush()
		case unicode.IsPunct(r) || unicode.IsSymbol(r):
			flush()
			tokens++
		default:
			wordLen++
		}
	}
	flush()
	return tokens
}

// CountAll sums Count over the given segments.
func CountAll(segments ...string) int {
	n := 0
	for _, s := range segments {
		n += Count(s)
	}
	return n
}

// Words returns an estimate of the token count for n plain English words.
// Empirically ~1.3 tokens/word; the suite uses it when synthesising prompt
// sections whose exact text is irrelevant but whose size matters.
func Words(n int) int {
	if n <= 0 {
		return 0
	}
	return (n*13 + 9) / 10
}

// Truncate drops whole words from the front of s until it fits within
// budget tokens, returning the truncated string and the number of tokens
// dropped. Keeping the *tail* models sliding-window context management:
// the most recent content survives.
func Truncate(s string, budget int) (string, int) {
	if budget <= 0 {
		return "", Count(s)
	}
	if Count(s) <= budget {
		return s, 0
	}
	words := strings.Fields(s)
	// Binary search the smallest suffix that fits.
	lo, hi := 0, len(words) // drop words[:k]
	for lo < hi {
		mid := (lo + hi) / 2
		if Count(strings.Join(words[mid:], " ")) <= budget {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	kept := strings.Join(words[lo:], " ")
	return kept, Count(s) - Count(kept)
}

// Budget tracks remaining context-window room while assembling a prompt.
type Budget struct {
	Limit int // total window, tokens
	used  int
}

// NewBudget returns a budget with the given window size.
func NewBudget(limit int) *Budget { return &Budget{Limit: limit} }

// Used reports tokens consumed so far.
func (b *Budget) Used() int { return b.used }

// Remaining reports tokens left; never negative.
func (b *Budget) Remaining() int {
	if r := b.Limit - b.used; r > 0 {
		return r
	}
	return 0
}

// Take consumes up to n tokens, returning how many were actually granted.
func (b *Budget) Take(n int) int {
	if n <= 0 {
		return 0
	}
	grant := n
	if r := b.Remaining(); grant > r {
		grant = r
	}
	b.used += grant
	return grant
}

// Overflowed reports whether a Take was ever short-changed, i.e. the prompt
// would have exceeded the context window (paper Sec. V-C: prompts
// "occasionally exceed the LLM's token limit").
func (b *Budget) Overflowed() bool { return b.used >= b.Limit && b.Limit > 0 }
