package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointOps(t *testing.T) {
	p := Point{1, 2}.Add(Point{3, 4})
	if p != (Point{4, 6}) {
		t.Fatalf("Add = %v", p)
	}
	q := Point{4, 6}.Sub(Point{1, 2})
	if q != (Point{3, 4}) {
		t.Fatalf("Sub = %v", q)
	}
	if s := (Point{1, -2}).Scale(3); s != (Point{3, -6}) {
		t.Fatalf("Scale = %v", s)
	}
	if !close((Point{3, 4}).Norm(), 5) {
		t.Fatal("Norm wrong")
	}
	if !close(Dist(Point{0, 0}, Point{3, 4}), 5) {
		t.Fatal("Dist wrong")
	}
}

func TestLerpEndpoints(t *testing.T) {
	a, b := Point{1, 1}, Point{5, 9}
	if Lerp(a, b, 0) != a || Lerp(a, b, 1) != b {
		t.Fatal("Lerp endpoints wrong")
	}
	mid := Lerp(a, b, 0.5)
	if !close(mid.X, 3) || !close(mid.Y, 5) {
		t.Fatalf("Lerp mid = %v", mid)
	}
}

func TestToward(t *testing.T) {
	got := Toward(Point{0, 0}, Point{10, 0}, 3)
	if !close(got.X, 3) || !close(got.Y, 0) {
		t.Fatalf("Toward = %v", got)
	}
	// Closer than step: returns target.
	if Toward(Point{0, 0}, Point{1, 0}, 3) != (Point{1, 0}) {
		t.Fatal("Toward should return target when close")
	}
	// Degenerate zero distance.
	if Toward(Point{2, 2}, Point{2, 2}, 1) != (Point{2, 2}) {
		t.Fatal("Toward of identical points")
	}
}

func TestTowardStepBoundProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		a := Point{math.Mod(ax, 100), math.Mod(ay, 100)}
		b := Point{math.Mod(bx, 100), math.Mod(by, 100)}
		got := Toward(a, b, 2)
		return Dist(a, got) <= 2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCircleContains(t *testing.T) {
	c := Circle{C: Point{0, 0}, R: 2}
	if !c.Contains(Point{1, 1}) || !c.Contains(Point{2, 0}) {
		t.Fatal("Contains failed inside/boundary")
	}
	if c.Contains(Point{2.1, 0}) {
		t.Fatal("Contains failed outside")
	}
}

func TestSegmentHits(t *testing.T) {
	c := Circle{C: Point{5, 0}, R: 1}
	if !c.SegmentHits(Point{0, 0}, Point{10, 0}) {
		t.Fatal("segment through circle should hit")
	}
	if c.SegmentHits(Point{0, 3}, Point{10, 3}) {
		t.Fatal("distant segment should miss")
	}
	// Segment ending inside.
	if !c.SegmentHits(Point{0, 0}, Point{5, 0}) {
		t.Fatal("segment ending in circle should hit")
	}
	// Degenerate point segment.
	if !c.SegmentHits(Point{5, 0.5}, Point{5, 0.5}) {
		t.Fatal("point inside circle should hit")
	}
	if c.SegmentHits(Point{0, 5}, Point{0, 5}) {
		t.Fatal("point outside circle should miss")
	}
}

func TestRect(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{10, 5}}
	if !r.Contains(Point{5, 2}) || r.Contains(Point{11, 2}) {
		t.Fatal("Rect.Contains wrong")
	}
	if got := r.Clamp(Point{-3, 7}); got != (Point{0, 5}) {
		t.Fatalf("Clamp = %v", got)
	}
	if got := r.Clamp(Point{4, 4}); got != (Point{4, 4}) {
		t.Fatal("Clamp moved interior point")
	}
}

func TestPathLength(t *testing.T) {
	path := []Point{{0, 0}, {3, 4}, {3, 8}}
	if !close(PathLength(path), 9) {
		t.Fatalf("PathLength = %v", PathLength(path))
	}
	if PathLength(nil) != 0 || PathLength(path[:1]) != 0 {
		t.Fatal("degenerate paths should have length 0")
	}
}

func TestCollisionFree(t *testing.T) {
	obs := []Circle{{C: Point{5, 0}, R: 1}, {C: Point{0, 5}, R: 1}}
	if CollisionFree(Point{0, 0}, Point{10, 0}, obs) {
		t.Fatal("should collide with first obstacle")
	}
	if !CollisionFree(Point{0, -3}, Point{10, -3}, obs) {
		t.Fatal("clear segment flagged as colliding")
	}
	if !CollisionFree(Point{0, 0}, Point{1, 1}, nil) {
		t.Fatal("no obstacles should be collision free")
	}
}
