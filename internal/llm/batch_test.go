package llm

import (
	"testing"
	"time"

	"embench/internal/rng"
	"embench/internal/simclock"
	"embench/internal/trace"
)

// CompleteBatch edge cases: single-request fallback parity with Complete,
// truncated-prompt batches, and latency-share additivity against the trace.

func TestCompleteBatchSingleParityWithComplete(t *testing.T) {
	// A one-request batch must be bit-identical to the equivalent Complete
	// call: same decision, corruption draw, latency and trace shape.
	req := Request{
		Agent: "a0", Module: trace.Planning, Step: 2, Kind: "plan",
		Prompt: promptOf(1500), OutTokens: 80,
		Good: "g", Corruptions: []any{"b1", "b2"}, Complexity: 0.3,
	}
	runSingle := func(batch bool) (Response, time.Duration, int) {
		clock := simclock.New()
		tr := trace.New()
		c := NewClient(GPT4, rng.New(7).NewStream("llm"), clock, tr)
		var r Response
		if batch {
			r = c.CompleteBatch([]Request{req})[0]
		} else {
			r = c.Complete(req)
		}
		return r, clock.Now(), len(tr.Events)
	}
	br, bclock, bevents := runSingle(true)
	cr, cclock, cevents := runSingle(false)
	if br != cr {
		t.Fatalf("single-request batch response diverged:\n%+v\n%+v", br, cr)
	}
	if bclock != cclock || bevents != cevents {
		t.Fatalf("accounting diverged: clock %v vs %v, events %d vs %d",
			bclock, cclock, bevents, cevents)
	}
}

func TestCompleteBatchTruncatesOverflowingPrompts(t *testing.T) {
	p := GPT4
	p.ContextWindow = 600
	p.JitterFrac = 0
	c := testClient(p, nil, nil)
	reqs := []Request{
		{Prompt: promptOf(100), OutTokens: 50, Good: 1},  // fits
		{Prompt: promptOf(5000), OutTokens: 50, Good: 2}, // must be truncated
		{Prompt: promptOf(4000), OutTokens: 50, Good: 3}, // must be truncated
	}
	resps := c.CompleteBatch(reqs)
	if resps[0].Truncated {
		t.Fatalf("small prompt truncated: %+v", resps[0])
	}
	for i := 1; i < 3; i++ {
		if !resps[i].Truncated {
			t.Fatalf("oversized prompt %d not truncated: %+v", i, resps[i])
		}
		if resps[i].PromptTokens > 550 {
			t.Fatalf("prompt %d not fitted to window: %d tokens", i, resps[i].PromptTokens)
		}
		// The truncation penalty must reach the error channel.
		if resps[i].ErrorP <= resps[0].ErrorP {
			t.Fatalf("truncated request %d should carry a higher pErr: %v vs %v",
				i, resps[i].ErrorP, resps[0].ErrorP)
		}
	}
}

func TestCompleteBatchLatencySharesAdditiveAgainstTrace(t *testing.T) {
	p := GPT4
	p.JitterFrac = 0
	clock := simclock.New()
	tr := trace.New()
	c := testClient(p, tr, clock)
	reqs := make([]Request, 5)
	for i := range reqs {
		reqs[i] = Request{
			Agent: "a0", Module: trace.Planning, Kind: "plan",
			Prompt: promptOf(400 + 100*i), OutTokens: 40 + 10*i, Good: i,
		}
	}
	resps := c.CompleteBatch(reqs)

	// Every request carries an equal share, the clock advanced once by the
	// whole batch latency, and the trace stays additive: summed event
	// latency equals the clock to within integer-division rounding.
	share := resps[0].Latency
	var sum time.Duration
	for i, r := range resps {
		if r.Latency != share {
			t.Fatalf("response %d share %v != %v", i, r.Latency, share)
		}
		sum += r.Latency
	}
	if d := clock.Now() - sum; d < 0 || d >= time.Duration(len(reqs)) {
		t.Fatalf("shares not additive: clock %v, trace sum %v", clock.Now(), sum)
	}
	var traceSum time.Duration
	for _, ev := range tr.Events {
		if ev.Kind != "plan(batched)" || !ev.LLMCall {
			t.Fatalf("unexpected trace event %+v", ev)
		}
		traceSum += ev.Latency
	}
	if traceSum != sum {
		t.Fatalf("trace latency %v != response latency %v", traceSum, sum)
	}
}

func TestCompleteBatchDecodeSlowdownOrdering(t *testing.T) {
	// Batch latency must exceed the longest member served alone (joint
	// decode is not free) while staying under the sequential sum.
	p := GPT4
	p.JitterFrac = 0
	const n, promptTok, outTok = 4, 800, 100
	clock := simclock.New()
	c := testClient(p, nil, clock)
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Prompt: promptOf(promptTok), OutTokens: outTok, Good: i}
	}
	c.CompleteBatch(reqs)
	batched := clock.Now()
	single := p.Latency(promptTok, outTok)
	if batched <= single {
		t.Fatalf("batch of %d (%v) should cost more than one call (%v)", n, batched, single)
	}
	if batched >= time.Duration(n)*single {
		t.Fatalf("batch of %d (%v) should beat %d sequential calls (%v)",
			n, batched, n, time.Duration(n)*single)
	}
}

func TestBatchServiceTimeMatchesClientModel(t *testing.T) {
	p := GPT4
	p.JitterFrac = 0
	got := p.BatchServiceTime(3, 3000, 90)
	want := time.Duration((p.Overhead.Seconds() +
		3000/p.PrefillRate +
		90/p.DecodeRate*(1+BatchDecodeSlowdown*2)) * float64(time.Second))
	if got != want {
		t.Fatalf("BatchServiceTime = %v, want %v", got, want)
	}
	fixed := Profile{FixedLatency: 200 * time.Millisecond, PrefillRate: 1, DecodeRate: 1}
	if fixed.BatchServiceTime(8, 1e6, 1e6) != 200*time.Millisecond {
		t.Fatal("FixedLatency should override the batch token model")
	}
}

// --- step-phase aggregation across clients (CompleteBatchMulti) ---

// multiReqs builds one plan-shaped request per agent.
func multiReqs(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			Agent: "agent", Module: trace.Planning, Step: 1, Kind: "plan",
			Prompt: promptOf(1200 + 100*i), OutTokens: 100,
			Good: "g", Corruptions: []any{"b1", "b2"}, Complexity: 0.25,
		}
	}
	return reqs
}

// multiClients builds n clients with per-agent streams off one root seed,
// the way an episode builds its agents.
func multiClients(n int, p Profile, clocks []*simclock.Clock, tr *trace.Trace) []*Client {
	src := rng.New(42)
	out := make([]*Client, n)
	for i := range out {
		out[i] = NewClient(p, src.NewStream("agent"+string(rune('0'+i))+"/plan"), clocks[i], tr)
	}
	return out
}

// TestCompleteBatchMultiAlignsDecisionsWithComplete is the RNG-stream
// alignment contract: issuing the same requests through a phase batch
// must produce exactly the decisions and corruption draws the per-agent
// Complete path produces, because each client's stream is consumed in the
// same order.
func TestCompleteBatchMultiAlignsDecisionsWithComplete(t *testing.T) {
	const n = 4
	run := func(batch bool) []Response {
		clocks := make([]*simclock.Clock, n)
		for i := range clocks {
			clocks[i] = simclock.New()
		}
		clients := multiClients(n, GPT4, clocks, trace.New())
		reqs := multiReqs(n)
		if batch {
			return CompleteBatchMulti(clients, reqs)
		}
		out := make([]Response, n)
		for i := range reqs {
			out[i] = clients[i].Complete(reqs[i])
		}
		return out
	}
	agg, solo := run(true), run(false)
	for i := range agg {
		if agg[i].Decision != solo[i].Decision || agg[i].Corrupted != solo[i].Corrupted ||
			agg[i].ErrorP != solo[i].ErrorP || agg[i].OutputTokens != solo[i].OutputTokens {
			t.Fatalf("agent %d decision diverged under aggregation:\nagg  %+v\nsolo %+v",
				i, agg[i], solo[i])
		}
	}
}

// TestCompleteBatchMultiDirectPricing: without a backend, every member of
// the phase batch pays the joint batch service time (scaled by its own
// retry count), not n sequential latencies.
func TestCompleteBatchMultiDirectPricing(t *testing.T) {
	const n = 4
	p := Profile{Name: "det", Overhead: time.Second, PrefillRate: 1000, DecodeRate: 10,
		ContextWindow: 8192, Capability: 0.9} // no jitter, no retries
	clocks := make([]*simclock.Clock, n)
	for i := range clocks {
		clocks[i] = simclock.New()
	}
	clients := multiClients(n, p, clocks, trace.New())
	reqs := multiReqs(n)
	resps := CompleteBatchMulti(clients, reqs)
	totalPrompt := 0
	for _, r := range resps {
		totalPrompt += r.PromptTokens
	}
	want := p.BatchServiceTime(n, float64(totalPrompt), 100)
	for i, r := range resps {
		if r.Latency != want {
			t.Fatalf("member %d latency = %v, want joint batch time %v", i, r.Latency, want)
		}
		if clocks[i].Now() != want {
			t.Fatalf("member %d clock advanced %v, want %v", i, clocks[i].Now(), want)
		}
	}
	solo := p.Latency(resps[0].PromptTokens, 100)
	if want >= time.Duration(n)*solo {
		t.Fatal("phase batch should beat n sequential calls")
	}
}

// TestCompleteBatchMultiUsesBatchBackend: with a BatchBackend attached the
// phase leaves as ONE explicit batch — every member reports the full
// batch size.
func TestCompleteBatchMultiUsesBatchBackend(t *testing.T) {
	const n = 3
	p := Profile{Name: "det", Overhead: time.Second, PrefillRate: 1000, DecodeRate: 10,
		ContextWindow: 8192, Capability: 0.9}
	bb := &recordingBatchBackend{}
	clocks := make([]*simclock.Clock, n)
	for i := range clocks {
		clocks[i] = simclock.New()
	}
	clients := multiClients(n, p, clocks, trace.New())
	for _, c := range clients {
		c.SetBackend(bb)
	}
	CompleteBatchMulti(clients, multiReqs(n))
	if bb.batches != 1 || bb.singles != 0 {
		t.Fatalf("phase should submit exactly one explicit batch: %d batches, %d singles",
			bb.batches, bb.singles)
	}
	if bb.lastSize != n {
		t.Fatalf("batch carried %d calls, want %d", bb.lastSize, n)
	}
}

// recordingBatchBackend counts how traffic reaches it.
type recordingBatchBackend struct {
	batches, singles, lastSize int
}

func (b *recordingBatchBackend) Serve(c Call) Served {
	b.singles++
	return Served{Latency: time.Second, BatchSize: 1}
}

func (b *recordingBatchBackend) ServeBatch(calls []Call) []Served {
	b.batches++
	b.lastSize = len(calls)
	out := make([]Served, len(calls))
	for i := range out {
		out[i] = Served{Latency: 2 * time.Second, BatchSize: len(calls)}
	}
	return out
}
