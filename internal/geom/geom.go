// Package geom provides the 2D geometry used by continuous-space
// environments (tabletop manipulation) and the RRT motion planner.
package geom

import "math"

// Point is a 2D position in workspace coordinates.
type Point struct{ X, Y float64 }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Norm reports the Euclidean length of p as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist reports the Euclidean distance between two points.
func Dist(a, b Point) float64 { return a.Sub(b).Norm() }

// Lerp interpolates between a and b; t=0 yields a, t=1 yields b.
func Lerp(a, b Point, t float64) Point {
	return Point{a.X + (b.X-a.X)*t, a.Y + (b.Y-a.Y)*t}
}

// Toward returns the point at most step away from a in the direction of b;
// if b is closer than step it returns b.
func Toward(a, b Point, step float64) Point {
	d := Dist(a, b)
	if d <= step || d == 0 {
		return b
	}
	return Lerp(a, b, step/d)
}

// Circle is a circular obstacle or reach region.
type Circle struct {
	C Point
	R float64
}

// Contains reports whether p lies inside the circle (boundary inclusive).
func (c Circle) Contains(p Point) bool { return Dist(c.C, p) <= c.R }

// SegmentHits reports whether the segment ab intersects the circle.
func (c Circle) SegmentHits(a, b Point) bool {
	// Distance from c.C to segment ab.
	ab := b.Sub(a)
	len2 := ab.X*ab.X + ab.Y*ab.Y
	t := 0.0
	if len2 > 0 {
		t = ((c.C.X-a.X)*ab.X + (c.C.Y-a.Y)*ab.Y) / len2
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	closest := Lerp(a, b, t)
	return Dist(closest, c.C) <= c.R
}

// Rect is an axis-aligned workspace boundary.
type Rect struct {
	Min, Max Point
}

// Contains reports whether p lies inside the rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p moved to the nearest point inside the rectangle.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// PathLength sums segment lengths along a polyline.
func PathLength(path []Point) float64 {
	total := 0.0
	for i := 1; i < len(path); i++ {
		total += Dist(path[i-1], path[i])
	}
	return total
}

// CollisionFree reports whether segment ab avoids every obstacle.
func CollisionFree(a, b Point, obstacles []Circle) bool {
	for _, o := range obstacles {
		if o.SegmentHits(a, b) {
			return false
		}
	}
	return true
}

// Pt constructs a Point — the keyed-literal shorthand used across the suite.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }
