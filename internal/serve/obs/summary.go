package obs

import (
	"sort"
	"time"
)

// ReqSummary is one completed request as traceview reports it.
type ReqSummary struct {
	Req     int64
	Agent   string
	Shard   int
	Replica int
	Done    time.Duration // completion time
	Latency time.Duration // as-served end-to-end
	Wait    time.Duration // queueing share
	Batch   int
	Tokens  int
	Cached  int
}

// Service reports the in-batch share of the request's latency.
func (r ReqSummary) Service() time.Duration { return r.Latency - r.Wait }

// Summary is traceview's reduction of one event stream: volume, the
// queue-vs-service latency split, the slowest requests, cache churn and
// autoscaler activity.
type Summary struct {
	Events   int
	Requests int // completed requests
	Joins    int // continuous-batching joins
	Batches  int // batch launches
	Horizon  time.Duration

	TotalLatency time.Duration
	TotalWait    time.Duration

	PromptTokens int
	CachedTokens int

	EvictedTokens int // capacity evictions
	FlushedTokens int // scale-down flushes
	Evictions     int
	Flushes       int

	ScaleTicks, ScaleUps, ScaleDowns int

	Slowest []ReqSummary // top-K by latency, slowest first
}

// MeanLatency reports the average as-served end-to-end latency.
func (s Summary) MeanLatency() time.Duration {
	if s.Requests == 0 {
		return 0
	}
	return s.TotalLatency / time.Duration(s.Requests)
}

// QueueShare reports the fraction of total latency spent queueing.
func (s Summary) QueueShare() float64 {
	if s.TotalLatency <= 0 {
		return 0
	}
	return float64(s.TotalWait) / float64(s.TotalLatency)
}

// CacheHitRate reports the warm fraction of submitted prompt tokens.
func (s Summary) CacheHitRate() float64 {
	if s.PromptTokens == 0 {
		return 0
	}
	return float64(s.CachedTokens) / float64(s.PromptTokens)
}

// Summarize reduces an event stream, keeping the topK slowest requests.
func Summarize(events []Event, topK int) Summary {
	s := Summary{Events: len(events)}
	for _, ev := range events {
		if ev.T > s.Horizon {
			s.Horizon = ev.T
		}
		switch ev.Kind {
		case KindComplete:
			s.Requests++
			s.TotalLatency += ev.Dur
			s.TotalWait += ev.Wait
			s.PromptTokens += ev.Tokens
			s.CachedTokens += ev.Cached
			s.Slowest = append(s.Slowest, ReqSummary{
				Req: ev.Req, Agent: ev.Agent, Shard: ev.Shard, Replica: ev.Replica,
				Done: ev.T, Latency: ev.Dur, Wait: ev.Wait,
				Batch: ev.Batch, Tokens: ev.Tokens, Cached: ev.Cached,
			})
		case KindBatchJoin:
			s.Joins++
		case KindBatchStart:
			s.Batches++
		case KindCacheEvict:
			s.Evictions++
			s.EvictedTokens += ev.Tokens
		case KindCacheFlush:
			s.Flushes++
			s.FlushedTokens += ev.Tokens
		case KindScaleTick:
			s.ScaleTicks++
		case KindScaleUp:
			s.ScaleUps++
		case KindScaleDown:
			s.ScaleDowns++
		}
	}
	sort.SliceStable(s.Slowest, func(a, b int) bool {
		if s.Slowest[a].Latency != s.Slowest[b].Latency {
			return s.Slowest[a].Latency > s.Slowest[b].Latency
		}
		return s.Slowest[a].Req < s.Slowest[b].Req
	})
	if topK > 0 && len(s.Slowest) > topK {
		s.Slowest = s.Slowest[:topK]
	}
	return s
}
