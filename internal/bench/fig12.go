package bench

import (
	"fmt"
	"strings"
	"time"

	"embench/internal/llm"
	"embench/internal/serve"
)

// Fig12 is the front-door traffic experiment: replace the fixed episode
// traces of figs. 8–11 with seeded multi-tenant arrival processes and ask
// what a deployment should do about load it does not control (paper Sec. VI
// framing: embodied fleets idle between world events, then every agent
// wakes at once). Three arrival processes (poisson steady state, correlated
// bursts, diurnal swing) drive a tenant-persona population against three
// deployments of the same endpoint:
//
//   - static-small: the cost floor — few replicas, provisioned for the mean.
//   - static-large: the latency floor — provisioned for the peak.
//   - autoscaled:   static-small's cost chasing static-large's tail, with
//     cold-start delay on the way up and warm-cache loss (priced through the
//     fig11 pressure machinery) on the way down.
//
// The headline cells are the bursty ones: the acceptance test asserts the
// autoscaler holds >= 95% of static-large's p99 SLO attainment at <= 60% of
// its replica-seconds.

// Fig12Row is one (arrival process, tenant count, deployment) cell.
type Fig12Row struct {
	Arrival  serve.ArrivalKind
	Tenants  int
	Deploy   string // static-small | static-large | autoscaled
	Replicas int    // provisioned ceiling (autoscaled: Max)

	Requests int
	Makespan time.Duration

	// End-to-end latency quantiles from the fixed-bucket histogram
	// (upper-edge convention: each is within one bucket of the exact
	// order statistic, never below it).
	P50, P95, P99 time.Duration
	// QueueP99 isolates the scheduling share of the tail.
	QueueP99 time.Duration
	// Attainment is the fraction of requests finishing within the SLO.
	Attainment float64

	// ReplicaSeconds is the provisioning cost: replicas x makespan for
	// static deployments, the autoscaler's active-replica time integral
	// otherwise.
	ReplicaSeconds float64
	ScaleUps       int
	ScaleDowns     int
	EvictedTokens  int
	CacheHitRate   float64
}

// Fig12Report bundles the sweep with the SLO it was judged against.
type Fig12Report struct {
	SLO  time.Duration
	Rows []Fig12Row
}

// Fig12Tenants is the default tenant-population axis: a light fleet the
// small deployment handles, and one that overloads it.
var Fig12Tenants = []int{8, 24}

// Fig12SLO is the default end-to-end latency target. A single GPT-4-class
// request costs ~7s of service, so 60s of headroom is queueing budget.
const Fig12SLO = 60 * time.Second

const (
	fig12SmallReplicas = 2
	fig12LargeReplicas = 8
	fig12Horizon       = 30 * time.Minute
)

// fig12Autoscale is the default autoscaled-deployment policy: react within
// one burst onset (short interval, aggressive up-threshold), pay a visible
// cold start, and give back replicas slowly enough to ride out gaps.
var fig12Autoscale = serve.Autoscale{
	Interval:  15 * time.Second,
	ColdStart: 10 * time.Second,
	UpUtil:    0.5,
	DownUtil:  0.25,
	Min:       fig12SmallReplicas,
	Max:       fig12LargeReplicas,
}

// fig12Deployment names one provisioning strategy.
type fig12Deployment struct {
	name      string
	replicas  int
	autoscale serve.Autoscale // zero = static
}

func fig12Deployments(as serve.Autoscale) []fig12Deployment {
	return []fig12Deployment{
		{name: "static-small", replicas: fig12SmallReplicas},
		{name: "static-large", replicas: fig12LargeReplicas},
		{name: "autoscaled", replicas: fig12LargeReplicas, autoscale: as},
	}
}

// fig12Config is the shared endpoint shape: batched like the fig9 closed
// loop, token-budgeted cache like fig11, content-hash identity so the
// tenant persona families share exactly their common preamble.
func fig12Config(d fig12Deployment) serve.Config {
	return serve.Config{
		Profile: llm.GPT4, Replicas: d.replicas,
		MaxBatch: 4, MaxWait: 500 * time.Millisecond,
		CacheEntries: 512, CacheTokens: 8192,
		Identity:  serve.IdentityContent,
		Autoscale: d.autoscale,
	}
}

// fig12Axes resolves the sweep axes from a Config, defaulting each.
func fig12Axes(cfg Config) (arrivals []serve.ArrivalKind, tenants []int, slo time.Duration, as serve.Autoscale) {
	arrivals = cfg.Arrivals
	if len(arrivals) == 0 {
		arrivals = serve.ArrivalKinds()
	}
	tenants = cfg.Tenants
	if len(tenants) == 0 {
		tenants = Fig12Tenants
	}
	slo = cfg.SLO
	if slo <= 0 {
		slo = Fig12SLO
	}
	as = cfg.Autoscale
	if as == (serve.Autoscale{}) {
		as = fig12Autoscale
	}
	return arrivals, tenants, slo, as
}

// Fig12 runs the sweep. Every cell is one deterministic open-loop replay of
// a generated traffic stream; the function is sequential by construction,
// so results are identical at any Config.Parallelism.
func Fig12(cfg Config) Fig12Report {
	arrivals, tenants, slo, as := fig12Axes(cfg)
	rep := Fig12Report{SLO: slo}
	for _, kind := range arrivals {
		for _, n := range tenants {
			reqs := serve.GenerateTraffic(serve.Traffic{
				Kind: kind, Tenants: n, Horizon: fig12Horizon, Seed: cfg.Seed,
			})
			for _, d := range fig12Deployments(as) {
				res := serve.Replay(fig12Config(d), reqs)
				s := res.Stats
				cost := s.ReplicaTime.Seconds()
				if cost == 0 { // static deployment: flat provisioning
					cost = float64(d.replicas) * res.Makespan.Seconds()
				}
				rep.Rows = append(rep.Rows, Fig12Row{
					Arrival: kind, Tenants: n, Deploy: d.name, Replicas: d.replicas,
					Requests: len(res.Completions), Makespan: res.Makespan,
					P50:            s.LatencyHist.Quantile(0.50),
					P95:            s.LatencyHist.Quantile(0.95),
					P99:            s.LatencyHist.Quantile(0.99),
					QueueP99:       s.QueueWaitHist.Quantile(0.99),
					Attainment:     s.SLOAttainment(slo),
					ReplicaSeconds: cost,
					ScaleUps:       s.ScaleUps,
					ScaleDowns:     s.ScaleDowns,
					EvictedTokens:  s.EvictedTokens,
					CacheHitRate:   s.CacheHitRate(),
				})
			}
		}
	}
	return rep
}

// fig12Find returns the row of one cell, panicking on a malformed report —
// metrics and tests index cells by name.
func fig12Find(rep Fig12Report, kind serve.ArrivalKind, tenants int, deploy string) Fig12Row {
	for _, r := range rep.Rows {
		if r.Arrival == kind && r.Tenants == tenants && r.Deploy == deploy {
			return r
		}
	}
	panic(fmt.Sprintf("bench: fig12 missing cell %s/t%d/%s", kind, tenants, deploy))
}

// Fig12Metrics flattens the acceptance evidence for the perf trajectory:
// per (arrival, tenants) panel, the autoscaler's attainment and cost
// relative to static-large.
func Fig12Metrics(rep Fig12Report) map[string]float64 {
	m := make(map[string]float64)
	seen := map[string]bool{}
	for _, r := range rep.Rows {
		key := fmt.Sprintf("%s_t%d", r.Arrival, r.Tenants)
		if seen[key] {
			continue
		}
		seen[key] = true
		large := fig12Find(rep, r.Arrival, r.Tenants, "static-large")
		auto := fig12Find(rep, r.Arrival, r.Tenants, "autoscaled")
		m[key+"_autoscaled_attainment"] = auto.Attainment
		if large.Attainment > 0 {
			m[key+"_attainment_ratio"] = auto.Attainment / large.Attainment
		}
		if large.ReplicaSeconds > 0 {
			m[key+"_cost_ratio"] = auto.ReplicaSeconds / large.ReplicaSeconds
		}
		m[key+"_autoscaled_p99_s"] = auto.P99.Seconds()
	}
	return m
}

// RenderFig12 formats the sweep.
func RenderFig12(rep Fig12Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 12 — front-door traffic: arrival processes x deployments (SLO %v end-to-end)\n", rep.SLO)
	fmt.Fprintf(&b, "%-8s %7s %-13s %8s %6s %7s %7s %7s %8s %6s %10s %9s\n",
		"arrival", "tenants", "deploy", "replicas", "reqs",
		"p50", "p95", "p99", "slo-att", "cache", "replica-s", "scale+/-")
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "%-8s %7d %-13s %8d %6d %6.1fs %6.1fs %6.1fs %7.1f%% %5.0f%% %10.0f %5d/%-3d\n",
			r.Arrival, r.Tenants, r.Deploy, r.Replicas, r.Requests,
			r.P50.Seconds(), r.P95.Seconds(), r.P99.Seconds(),
			100*r.Attainment, 100*r.CacheHitRate, r.ReplicaSeconds,
			r.ScaleUps, r.ScaleDowns)
	}
	return b.String()
}
