package serve

import (
	"sync"
	"time"

	"embench/internal/llm"
	"embench/internal/metrics"
	"embench/internal/serve/obs"
)

// Fleet promotes an Endpoint to a cross-episode shared deployment: one set
// of replicas, queues and caches that several concurrently running
// episodes contend for — the paper's many-agents-one-deployment regime at
// fleet scale.
//
// Each attached episode owns a FleetClient (its llm.Backend). Episodes run
// on separate goroutines, so their requests interleave arbitrarily in
// wall time; the fleet merges them into one deterministic admission order
// with a conservative discrete-event rule: a request is admitted only
// when every still-attached episode has either revealed its next request
// or finished, and then the revealed pending request with the smallest
// (arrival, client id) key goes first. The merged order is a pure
// function of the episodes' submission sequences — what each episode
// submits, in the order it submits it — and never of goroutine
// scheduling; that is the determinism guarantee. It is NOT a globally
// arrival-sorted order: an episode multiplexes many per-agent clocks, so
// its later submissions can carry earlier arrivals (exactly as
// closed-loop admission within a single episode is submission-ordered,
// with arrivals driving only the queueing and batching arithmetic).
//
// # Scale
//
// The merge is built to stay cheap at thousands of episodes: revealed
// pending requests live in a min-heap keyed by (arrival, client id), so
// each admission costs O(log N) instead of a linear rescan, and a served
// client is woken through its own one-slot channel, so an admission wakes
// exactly the episode whose request completed instead of broadcasting to
// all N. An optional Gate (SetGate) additionally bounds how many episode
// goroutines execute episode code at once — parked clients release their
// slot while they wait in the merge — which is what lets a 2048-episode
// fleet run with a worker-pool's worth of active stacks (see
// runner.RunFleet's activation pool).
//
// The price of the conservative rule is blocking: a client's Serve call
// parks until its request reaches the head of the merged order. All
// episodes of a fleet must therefore run concurrently (the runner
// guarantees this — see runner.RunFleet); driving a fleet's clients from
// one goroutine deadlocks as soon as two episodes are attached.
type Fleet struct {
	mu      sync.Mutex
	ep      *Endpoint
	clients []*FleetClient
	// heap holds the clients whose next request is revealed but unserved,
	// ordered by (pend.arrival, id); unrevealed counts the live clients
	// that are not in the heap. Admission may proceed exactly when
	// unrevealed == 0 — the conservative rule as two O(1)-readable facts.
	heap       []*FleetClient
	unrevealed int
	// gate, when set, bounds active episode execution (see Gate). Read
	// without the mutex: it must be set before any episode runs and never
	// changed afterwards.
	gate Gate
	// linear selects the seed reference merge (linear scan + broadcast),
	// kept for differential tests and the fig10 before/after benchmark.
	linear bool
	cond   *sync.Cond // linear mode only
}

// Gate bounds how many fleet episodes actively execute at once. A client
// releases its slot while it is parked in the merge (its request revealed,
// waiting to be admitted) and re-acquires it when its request completes,
// so at any moment only slot holders run episode code. Implementations
// must be safe for concurrent use; a counting semaphore is the intended
// shape. Acquire must not be called while holding fleet-internal locks
// (the fleet guarantees this).
type Gate interface {
	Acquire()
	Release()
}

// FleetClient is one episode's handle on a shared Fleet. It implements
// llm.Backend and llm.BatchBackend; episode runners attach it via
// multiagent.Options.Backend. Finish MUST be called when the episode ends
// (the runner does this, panic-safely) or the remaining episodes block
// forever waiting for the finished one's next request.
type FleetClient struct {
	f    *Fleet
	id   int
	done bool
	pend *fleetPending
	// wake carries the "your request was served" signal: one-slot
	// buffered, written by the admitting goroutine (under the fleet
	// mutex), consumed by the owning episode goroutine — exactly one
	// token per submitted request, so a serve wakes only this client.
	wake chan struct{}
	// scratch is the per-client pending struct, reused across requests:
	// a client has at most one outstanding request, so Serve/ServeBatch
	// never need a fresh allocation.
	scratch fleetPending
	// stats is this episode's share of the endpoint's traffic: what the
	// episode's own requests experienced. The endpoint-level totals
	// (Fleet.Stats) restate joined batches retroactively, so per-episode
	// shares sum approximately — not exactly — to the fleet totals.
	stats metrics.Serving
}

// fleetPending is one submitted-but-unserved request (or explicit batch).
type fleetPending struct {
	arrival time.Duration // merge key: max member arrival for batches
	call    llm.Call
	batch   []llm.Call // non-nil for ServeBatch submissions
	served  bool
	res     llm.Served
	resB    []llm.Served
}

// Compile-time checks: fleet clients are full serving backends.
var (
	_ llm.Backend      = (*FleetClient)(nil)
	_ llm.BatchBackend = (*FleetClient)(nil)
)

// NewFleet builds a fleet of `episodes` clients sharing one endpoint built
// from cfg.
func NewFleet(cfg Config, episodes int) *Fleet {
	f := &Fleet{ep: New(cfg)}
	f.init(episodes)
	return f
}

// NewLinearFleet builds a fleet that merges with the seed reference
// implementation: an O(N) linear scan over all clients per admission and a
// broadcast wakeup of every parked episode per serve. It admits the exact
// same order as NewFleet — the differential merge test pins that — and
// exists only as the comparison baseline: fig10 measures the heap merge's
// speedup against it, and tests diff the two implementations on randomized
// workloads. Gates are ignored in this mode.
func NewLinearFleet(cfg Config, episodes int) *Fleet {
	f := &Fleet{ep: New(cfg), linear: true}
	f.cond = sync.NewCond(&f.mu)
	f.init(episodes)
	return f
}

func (f *Fleet) init(episodes int) {
	f.clients = make([]*FleetClient, episodes)
	f.heap = make([]*FleetClient, 0, episodes)
	f.unrevealed = episodes
	for i := range f.clients {
		f.clients[i] = &FleetClient{f: f, id: i, wake: make(chan struct{}, 1)}
		f.clients[i].stats.Replicas = f.ep.cfg.Replicas
	}
}

// SetGate installs an activation gate (see Gate). It must be called before
// any episode issues a request and the gate must already be held by every
// episode goroutine when it starts running episode code.
func (f *Fleet) SetGate(g Gate) { f.gate = g }

// Client returns episode i's backend handle.
func (f *Fleet) Client(i int) *FleetClient { return f.clients[i] }

// Size reports the number of attached episodes.
func (f *Fleet) Size() int { return len(f.clients) }

// Config reports the underlying endpoint's effective configuration.
func (f *Fleet) Config() Config { return f.ep.Config() }

// Stats reports the endpoint-level serving totals across all episodes.
// Safe at any time (all endpoint mutation happens under the fleet mutex);
// a mid-run read simply returns a partial snapshot of an ongoing run.
func (f *Fleet) Stats() metrics.Serving {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ep.Stats()
}

// emitAdmit records a fleet-merge admission (see internal/serve/obs): the
// winning client's pending request is about to be served, so the endpoint
// events it triggers follow immediately in this goroutine, under f.mu —
// one fleet's event stream is as deterministic as its admission order.
func (f *Fleet) emitAdmit(c *FleetClient, p *fleetPending) {
	if f.ep.sink == nil {
		return
	}
	f.ep.sink.Event(obs.Event{
		Kind: obs.KindAdmit, T: p.arrival, Shard: f.ep.shard,
		Client: c.id, Batch: len(p.batch),
	})
}

// --- heap of revealed pending requests, keyed by (arrival, client id) ---

// lessThan orders revealed clients by their merge key.
func lessThan(a, b *FleetClient) bool {
	if a.pend.arrival != b.pend.arrival {
		return a.pend.arrival < b.pend.arrival
	}
	return a.id < b.id
}

// heapPush adds a revealed client. Runs with f.mu held.
func (f *Fleet) heapPush(c *FleetClient) {
	f.heap = append(f.heap, c)
	i := len(f.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !lessThan(f.heap[i], f.heap[parent]) {
			break
		}
		f.heap[i], f.heap[parent] = f.heap[parent], f.heap[i]
		i = parent
	}
}

// heapPopMin removes and returns the earliest revealed client. Runs with
// f.mu held; the heap must be non-empty.
func (f *Fleet) heapPopMin() *FleetClient {
	min := f.heap[0]
	last := len(f.heap) - 1
	f.heap[0] = f.heap[last]
	f.heap[last] = nil
	f.heap = f.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(f.heap) && lessThan(f.heap[l], f.heap[smallest]) {
			smallest = l
		}
		if r < len(f.heap) && lessThan(f.heap[r], f.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return min
		}
		f.heap[i], f.heap[smallest] = f.heap[smallest], f.heap[i]
		i = smallest
	}
}

// dispatch admits pending requests while the conservative rule allows:
// every still-attached client must have revealed an unserved pending
// request (unrevealed == 0) before the heap minimum — smallest
// (arrival, client id) — may be served. Each admission pops the heap,
// serves against the shared endpoint, and signals exactly the served
// client's wake channel. Runs with f.mu held.
func (f *Fleet) dispatch() {
	for f.unrevealed == 0 && len(f.heap) > 0 {
		c := f.heapPopMin()
		// c is live again but its next request is not revealed yet.
		f.unrevealed++
		p := c.pend
		f.emitAdmit(c, p)
		if p.batch != nil {
			p.resB = f.ep.ServeBatch(p.batch)
		} else {
			p.res = f.ep.Serve(p.call)
		}
		p.served = true
		// One-slot buffer and at most one outstanding request per client:
		// the send can only find the buffer empty, so it never blocks and
		// never drops a needed token.
		c.wake <- struct{}{}
	}
}

// submit parks the calling episode's request in the merge and blocks until
// it has been admitted and served.
func (c *FleetClient) submit(p *fleetPending) {
	f := c.f
	if f.linear {
		c.submitLinear(p)
		return
	}
	f.mu.Lock()
	if c.done {
		f.mu.Unlock()
		panic("serve: FleetClient used after Finish")
	}
	c.pend = p
	f.heapPush(c)
	f.unrevealed--
	f.dispatch()
	served := p.served
	f.mu.Unlock()
	if served {
		// Our own dispatch call admitted us (possibly along with others);
		// the token is already in the buffer — drain it so the next
		// submission starts clean.
		<-c.wake
		return
	}
	// Park. While parked we hold no activation slot: the gate is released
	// so another episode can run, and re-acquired once our request has
	// been served and episode code is about to resume.
	if g := f.gate; g != nil {
		g.Release()
		<-c.wake
		g.Acquire()
	} else {
		<-c.wake
	}
}

// Serve implements llm.Backend: the episode's next request enters the
// cross-episode merge and resolves against the shared endpoint once it is
// globally next.
func (c *FleetClient) Serve(call llm.Call) llm.Served {
	p := &c.scratch
	*p = fleetPending{arrival: call.Arrival, call: call}
	c.submit(p)
	c.fold(p.res)
	return p.res
}

// ServeBatch implements llm.BatchBackend: an explicitly aggregated
// step-phase batch enters the merge as one unit, keyed by its last
// member's arrival (the batch cannot launch before it is complete).
func (c *FleetClient) ServeBatch(calls []llm.Call) []llm.Served {
	if len(calls) == 0 {
		return nil
	}
	arrival := calls[0].Arrival
	for _, call := range calls[1:] {
		if call.Arrival > arrival {
			arrival = call.Arrival
		}
	}
	p := &c.scratch
	*p = fleetPending{arrival: arrival, batch: calls}
	c.submit(p)
	for _, s := range p.resB {
		c.fold(s)
	}
	return p.resB
}

// fold accumulates one served request into the episode's serving share.
// Only the owning episode's goroutine calls it, so no lock is needed. The
// prompt total comes back from the endpoint's admission pricing
// (Served.PromptTokens), saving a re-walk of the prompt sections.
func (c *FleetClient) fold(s llm.Served) {
	c.stats.Requests++
	c.stats.QueueWait += s.QueueWait
	c.stats.Service += s.Latency - s.QueueWait
	c.stats.BatchedSeqs += s.BatchSize
	c.stats.PrefillTokens += s.PromptTokens
	c.stats.CachedTokens += s.CachedTokens
	// Distribution shares use the as-served values: a later join may extend
	// this batch, but the restatement is an endpoint-level fact — episode
	// shares, like the sums above, reflect what this episode's own requests
	// were told at serve time.
	c.stats.QueueWaitHist.Observe(s.QueueWait)
	c.stats.LatencyHist.Observe(s.Latency)
}

// ServingStats reports the episode's share of the fleet's serving traffic;
// the episode runner folds it into the episode metrics at finish.
func (c *FleetClient) ServingStats() metrics.Serving { return c.stats }

// Finish detaches the episode from the merge: its absence no longer holds
// back other episodes' admissions. Idempotent; safe to defer.
func (c *FleetClient) Finish() {
	f := c.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if c.done {
		return
	}
	c.done = true
	if !f.linear {
		// The finishing client is by construction not in the heap (its
		// owning goroutine only calls Finish between requests), so it was
		// counted unrevealed; removing it may unblock admissions, and
		// dispatch wakes exactly the clients it serves.
		f.unrevealed--
		f.dispatch()
		return
	}
	f.dispatchLinear()
	f.cond.Broadcast()
}

// --- seed reference merge: linear scan + broadcast (NewLinearFleet) ---

// dispatchLinear is the seed admission loop: an O(N) scan over every
// client per admitted request. Runs with f.mu held; every serve wakes all
// waiters.
func (f *Fleet) dispatchLinear() {
	for {
		var best *FleetClient
		for _, c := range f.clients {
			if c.done {
				continue
			}
			if c.pend == nil || c.pend.served {
				return // an episode has not revealed its next request yet
			}
			if best == nil || lessThan(c, best) {
				best = c
			}
		}
		if best == nil {
			return // every episode finished
		}
		p := best.pend
		f.emitAdmit(best, p)
		if p.batch != nil {
			p.resB = f.ep.ServeBatch(p.batch)
		} else {
			p.res = f.ep.Serve(p.call)
		}
		p.served = true
		f.cond.Broadcast()
	}
}

// submitLinear is the seed park-and-wait: wait on the shared cond, waking
// (spuriously, N-1 times out of N) at every admission anywhere in the
// fleet.
func (c *FleetClient) submitLinear(p *fleetPending) {
	f := c.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if c.done {
		panic("serve: FleetClient used after Finish")
	}
	c.pend = p
	f.dispatchLinear()
	for !p.served {
		f.cond.Wait()
	}
	c.pend = nil
}
