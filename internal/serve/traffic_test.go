package serve

import (
	"math"
	"reflect"
	"testing"
	"time"

	"embench/internal/rng"
)

// TestTrafficDeterministic: same seed → byte-identical request streams,
// for every arrival kind. (Generation is a pure single-threaded function —
// the same property the fig12 test re-checks through the full experiment
// across -procs values.)
func TestTrafficDeterministic(t *testing.T) {
	for _, kind := range ArrivalKinds() {
		cfg := Traffic{Kind: kind, Tenants: 6, Horizon: 20 * time.Minute, Seed: 11}
		a, b := GenerateTraffic(cfg), GenerateTraffic(cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: identical seeds produced different streams", kind)
		}
		if len(a) == 0 {
			t.Fatalf("%s: empty stream", kind)
		}
		for i := 1; i < len(a); i++ {
			if a[i].Arrival < a[i-1].Arrival {
				t.Fatalf("%s: arrivals not sorted at %d", kind, i)
			}
		}
		if c := GenerateTraffic(Traffic{Kind: kind, Tenants: 6, Horizon: 20 * time.Minute, Seed: 12}); reflect.DeepEqual(a, c) {
			t.Fatalf("%s: different seeds produced identical streams", kind)
		}
	}
}

// TestTrafficPoissonInterarrivalMean is the seeded statistical sanity
// check: at n ≈ 10k the empirical mean interarrival of a single-tenant
// Poisson stream is within 5% of 1/rate.
func TestTrafficPoissonInterarrivalMean(t *testing.T) {
	cfg := Traffic{
		Kind: ArrivePoisson, Tenants: 1, Rate: 1.0,
		Horizon: 11000 * time.Second, Seed: 3,
	}
	reqs := GenerateTraffic(cfg)
	if len(reqs) < 10000 {
		t.Fatalf("want >= 10000 arrivals for the mean test, got %d", len(reqs))
	}
	reqs = reqs[:10000]
	var sum time.Duration
	prev := time.Duration(0)
	for _, r := range reqs {
		sum += r.Arrival - prev
		prev = r.Arrival
	}
	mean := sum.Seconds() / float64(len(reqs))
	if math.Abs(mean-1.0) > 0.05 {
		t.Fatalf("Poisson mean interarrival = %.4fs, want 1.0s ± 5%%", mean)
	}
}

// tenantRequests filters one tenant's requests out of a merged stream.
func tenantRequests(reqs []Request, agent string) []Request {
	var out []Request
	for _, r := range reqs {
		if r.Agent == agent {
			out = append(out, r)
		}
	}
	return out
}

// TestTrafficTenantStreamsDisjoint: every tenant draws from its own named
// RNG stream, so growing the population leaves existing tenants'
// request sequences byte-identical — no cross-tenant coupling. Bursty
// included: the shared burst schedule comes from a population-independent
// stream.
func TestTrafficTenantStreamsDisjoint(t *testing.T) {
	for _, kind := range ArrivalKinds() {
		small := GenerateTraffic(Traffic{Kind: kind, Tenants: 3, Horizon: 30 * time.Minute, Seed: 9})
		large := GenerateTraffic(Traffic{Kind: kind, Tenants: 5, Horizon: 30 * time.Minute, Seed: 9})
		for _, agent := range []string{"t0", "t1", "t2"} {
			a, b := tenantRequests(small, agent), tenantRequests(large, agent)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: tenant %s's stream changed when the population grew (%d vs %d reqs)",
					kind, agent, len(a), len(b))
			}
		}
		if len(tenantRequests(large, "t4")) == 0 && kind != ArriveBursty {
			t.Fatalf("%s: added tenant produced no traffic", kind)
		}
	}
}

// TestTrafficBurstsCorrelated pins the bursty process's fleet-wide phase:
// during off-phases no tenant emits, so the pooled stream's arrivals all
// land inside the shared windows (which is what gives autoscaling a
// correlated spike to chase).
func TestTrafficBurstsCorrelated(t *testing.T) {
	cfg := Traffic{Kind: ArriveBursty, Tenants: 8, Horizon: time.Hour, Seed: 5}.withDefaults()
	windows := burstPhases(rng.New(cfg.Seed).Sub("serve/traffic"), cfg.Horizon, cfg.BurstOn, cfg.BurstOff)
	if len(windows) == 0 {
		t.Skip("seed produced no burst windows inside the horizon")
	}
	reqs := GenerateTraffic(cfg)
	if len(reqs) == 0 {
		t.Fatal("bursty stream is empty")
	}
	for _, r := range reqs {
		inside := false
		for _, w := range windows {
			if r.Arrival >= w.start && r.Arrival < w.end {
				inside = true
				break
			}
		}
		if !inside {
			t.Fatalf("arrival %v outside every burst window", r.Arrival)
		}
	}
}

// TestTrafficPersonaPrefixes checks the persona family shape: one
// fleet-wide preamble plus per-tenant personas, so a prefix cache shares
// the preamble across tenants but never personas.
func TestTrafficPersonaPrefixes(t *testing.T) {
	reqs := GenerateTraffic(Traffic{Tenants: 2, Horizon: 30 * time.Minute, Seed: 1})
	c := newPrefixCache(64, 0)
	a := tenantRequests(reqs, "t0")
	b := tenantRequests(reqs, "t1")
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("need traffic from both tenants")
	}
	c.insert(a[0].Prompt)
	// The other tenant hits exactly the 700-token system+task preamble:
	// persona and history diverge.
	if got := c.match(b[0].Prompt); got != 700 {
		t.Fatalf("cross-tenant prefix hit = %d tokens, want 700 (shared preamble only)", got)
	}
	// A tenant's own follow-up re-hits its persona too.
	if len(a) > 1 {
		if got := c.match(a[1].Prompt); got < 1400 {
			t.Fatalf("same-tenant prefix hit = %d tokens, want >= 1400 (preamble+persona)", got)
		}
	}
}
