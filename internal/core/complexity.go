package core

// Joint-action complexity coefficients. The paper's scalability analysis
// (Sec. VI) finds the number of coordinated actions and interdependencies
// grows combinatorially with agent count; in the error channel that appears
// as a per-call complexity addend linear in team size, much steeper for a
// centralized planner that must reason over the full joint action space
// than for a decentralized agent reasoning about its own next move.
const (
	decentralizedComplexityCoef = 0.012
	centralizedComplexityCoef   = 0.045
)

// DecentralizedComplexity is the per-agent reasoning complexity addend in a
// team of the given size (Fig. 1e paradigm).
func DecentralizedComplexity(agents int) float64 {
	if agents <= 1 {
		return 0
	}
	return decentralizedComplexityCoef * float64(agents-1)
}

// CentralizedComplexity is the joint-planner reasoning complexity addend
// for the given team size (Fig. 1d paradigm).
func CentralizedComplexity(agents int) float64 {
	if agents <= 1 {
		return 0
	}
	return centralizedComplexityCoef * float64(agents-1)
}
