package bench

import (
	"fmt"
	"strings"
	"time"

	"embench/internal/core"
	"embench/internal/llm"
	"embench/internal/metrics"
	"embench/internal/multiagent"
	"embench/internal/serve"
	"embench/internal/world"
)

// Fig13 is the disaggregation experiment: split the serving endpoint into
// a prefill pool and a decode pool (serve.Config.Prefill/Decode) and
// overlap each agent's next-step preparation with the previous response's
// decode stream (multiagent.Options.Pipeline). Closed-loop CoELA teams —
// the suite's heaviest per-step call pattern — drive three deployments of
// the same four replicas:
//
//   - monolithic:     the fig9 baseline — every replica runs both stages.
//   - balanced:       2 prefill + 2 decode, KV handoff priced per token.
//   - decode-starved: 3 prefill + 1 decode — prompts clear prefill quickly
//     and then pile up on the single decoding replica.
//
// Each deployment runs with the async pipeline off and on. The two
// regimes the acceptance test pins: with a balanced split, pipelining
// hides next-step preparation behind the decode stream (task latency
// drops, nothing else moves); with a starved decode pool at the larger
// team, decode-stage queueing dominates end-to-end latency no matter the
// pipeline, because the overlap window itself is what is queue-delayed.
//
// Decisions are identical across all twelve cells of one team size: the
// pools, handoff and pipeline only move virtual time, never RNG streams.

// Fig13Row is one (team size, deployment, pipeline) cell.
type Fig13Row struct {
	Agents   int
	Deploy   string // monolithic | balanced | decode-starved
	Pipeline bool
	Replicas int // total replicas across pools

	SuccessRate  float64
	TaskLatency  time.Duration // mean episode duration
	PlanCalls    int
	MeanPlanCall time.Duration // mean latency of a planning LLM call

	// MeanQueueWait is per request, both stages summed on disaggregated
	// deployments.
	MeanQueueWait time.Duration
	// Per-request stage means; zero on monolithic deployments.
	PrefillWait time.Duration
	DecodeWait  time.Duration
	HandoffTime time.Duration
}

// Fig13Report is the full sweep.
type Fig13Report struct {
	Rows []Fig13Row
}

// fig13System is the closed-loop workload: CoELA's three LLM calls per
// agent per step give the decode pool the most to contend over.
const fig13System = "CoELA"

// Fig13Agents is the team-size axis: a light team the single decode
// replica keeps up with, and one that swamps it.
var Fig13Agents = []int{2, 6}

// fig13Replicas is the per-deployment replica budget all three
// deployments spend.
const fig13Replicas = 4

// fig13Profile skews the serving profile toward the disaggregation
// trade-off: a slow prefill (500 tok/s over ~2k-token CoELA prompts is
// seconds of prompt processing) and a decode stream long enough (140
// tokens at 45 tok/s) to hide a whole sensing+retrieval phase behind.
var fig13Profile = func() llm.Profile {
	p := llm.GPT4
	p.Name = "gpt-4-disagg"
	p.Overhead = 400 * time.Millisecond
	p.PrefillRate = 500
	p.DecodeRate = 45
	return p
}()

// fig13Handoff prices the prefill→decode KV transfer: a fixed network
// round trip plus 200k tokens/s of KV-cache movement.
var fig13Handoff = serve.Handoff{Latency: 40 * time.Millisecond, TokensPerSec: 200000}

// fig13Mut pins every module's planner to the skewed profile.
func fig13Mut(cfg *core.AgentConfig) { cfg.Planner = fig13Profile }

// fig13Deployment is one way to spend the replica budget.
type fig13Deployment struct {
	name    string
	mono    int // monolithic replicas; 0 = disaggregated
	prefill int
	decode  int
}

func (d fig13Deployment) total() int { return d.mono + d.prefill + d.decode }

var fig13Deployments = []fig13Deployment{
	{name: "monolithic", mono: fig13Replicas},
	{name: "balanced", prefill: fig13Replicas / 2, decode: fig13Replicas / 2},
	{name: "decode-starved", prefill: fig13Replicas - 1, decode: 1},
}

// fig13Config is the endpoint shape: fig9's closed-loop batching, with
// the same join window and cache budget on both pools when split (the
// prefill pool inherits the parent cache budget; the decode pool never
// caches).
func fig13Config(d fig13Deployment) serve.Config {
	sc := serve.Config{
		Replicas: d.mono,
		MaxBatch: 4, MaxWait: 1500 * time.Millisecond,
		CacheEntries: 512,
	}
	if d.mono == 0 {
		sc.Prefill = serve.PoolConfig{
			Replicas: d.prefill, MaxBatch: 4, MaxWait: 1500 * time.Millisecond,
		}
		sc.Decode = serve.PoolConfig{
			Replicas: d.decode, MaxBatch: 4, MaxWait: 1500 * time.Millisecond,
		}
		sc.Handoff = fig13Handoff
	}
	return sc
}

// Fig13 runs the sweep: every (team, deployment, pipeline) cell is one
// closed-loop episode batch on a per-episode endpoint.
func Fig13(cfg Config) Fig13Report {
	w := mustGet(fig13System)
	var rep Fig13Report
	set := cfg.newBatchSet()
	var ids []int
	for _, n := range Fig13Agents {
		for _, d := range fig13Deployments {
			for _, pipe := range []bool{false, true} {
				sc := fig13Config(d)
				ids = append(ids, set.add(w, world.Medium, n, fig13Mut,
					multiagent.Options{Parallel: true, Serve: &sc, Pipeline: pipe}))
				rep.Rows = append(rep.Rows, Fig13Row{
					Agents: n, Deploy: d.name, Pipeline: pipe, Replicas: d.total(),
				})
			}
		}
	}
	set.run()
	for i := range rep.Rows {
		eps, traces := set.results(ids[i])
		s := metrics.Summarize(eps)
		r := &rep.Rows[i]
		r.SuccessRate = s.SuccessRate
		r.TaskLatency = s.MeanDuration
		r.PlanCalls, r.MeanPlanCall = meanPlanCall(traces)
		r.MeanQueueWait = s.Serving.MeanQueueWait()
		if q := s.Serving.Requests; q > 0 {
			r.PrefillWait = s.Serving.PrefillWait / time.Duration(q)
			r.DecodeWait = s.Serving.DecodeWait / time.Duration(q)
			r.HandoffTime = s.Serving.HandoffTime / time.Duration(q)
		}
	}
	return rep
}

// fig13Find returns one cell's row, panicking on a malformed report —
// metrics and tests index cells by name.
func fig13Find(rep Fig13Report, agents int, deploy string, pipeline bool) Fig13Row {
	for _, r := range rep.Rows {
		if r.Agents == agents && r.Deploy == deploy && r.Pipeline == pipeline {
			return r
		}
	}
	panic(fmt.Sprintf("bench: fig13 missing cell t%d/%s/pipeline=%v", agents, deploy, pipeline))
}

// Fig13Metrics flattens the acceptance evidence for the perf trajectory:
// per team size, the pipeline's speedup on the balanced split, the
// decode-starved split's latency penalty, and how much of its queueing is
// decode-stage.
func Fig13Metrics(rep Fig13Report) map[string]float64 {
	m := make(map[string]float64)
	for _, n := range Fig13Agents {
		key := fmt.Sprintf("t%d", n)
		balOff := fig13Find(rep, n, "balanced", false)
		balOn := fig13Find(rep, n, "balanced", true)
		monoOff := fig13Find(rep, n, "monolithic", false)
		starved := fig13Find(rep, n, "decode-starved", false)
		if balOn.TaskLatency > 0 {
			m[key+"_pipeline_speedup"] = float64(balOff.TaskLatency) / float64(balOn.TaskLatency)
		}
		if balOff.TaskLatency > 0 {
			m[key+"_starved_latency_ratio"] = float64(starved.TaskLatency) / float64(balOff.TaskLatency)
		}
		if tot := starved.PrefillWait + starved.DecodeWait; tot > 0 {
			m[key+"_starved_decode_wait_share"] = float64(starved.DecodeWait) / float64(tot)
		}
		if monoOff.TaskLatency > 0 {
			m[key+"_balanced_vs_mono"] = float64(balOff.TaskLatency) / float64(monoOff.TaskLatency)
		}
		m[key+"_balanced_mean_plan_s"] = balOff.MeanPlanCall.Seconds()
	}
	return m
}

// RenderFig13 formats the sweep.
func RenderFig13(rep Fig13Report) string {
	var b strings.Builder
	b.WriteString("Fig. 13 — prefill/decode disaggregation x async agent pipeline (CoELA, medium, 4 replicas)\n")
	fmt.Fprintf(&b, "%6s %-14s %-8s %8s %8s %10s %10s %8s %8s %8s %8s\n",
		"agents", "deploy", "pipeline", "replicas", "success",
		"task-lat", "plan-call", "q-wait", "pre-w", "dec-w", "handoff")
	for _, r := range rep.Rows {
		pipe := "off"
		if r.Pipeline {
			pipe = "on"
		}
		fmt.Fprintf(&b, "%6d %-14s %-8s %8d %7.0f%% %9.1fm %9.1fs %7.1fs %7.1fs %7.1fs %7.2fs\n",
			r.Agents, r.Deploy, pipe, r.Replicas, 100*r.SuccessRate,
			r.TaskLatency.Minutes(), r.MeanPlanCall.Seconds(),
			r.MeanQueueWait.Seconds(), r.PrefillWait.Seconds(),
			r.DecodeWait.Seconds(), r.HandoffTime.Seconds())
	}
	return b.String()
}
