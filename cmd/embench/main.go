// Command embench runs workloads and regenerates the paper's tables and
// figures.
//
// Usage:
//
//	embench -exp fig2 [-episodes 5] [-seed 1] [-procs N]  # regenerate a figure
//	embench -run CoELA [-diff medium] [-agents 2]         # run one episode
//	embench -list                                         # list workloads/experiments
//
// Experiments fan episodes out over -procs workers (default: all CPUs).
// Episode seeds are derived deterministically from -seed, so reports are
// bit-identical at every -procs value; -procs 1 forces the sequential
// reference path.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"embench"
	"embench/internal/runner"
	"embench/internal/trace"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment to regenerate (fig2..fig7, table1, table2, opts, calibrate)")
		run      = flag.String("run", "", "workload to run once (e.g. CoELA)")
		diff     = flag.String("diff", "medium", "task difficulty: easy|medium|hard")
		agents   = flag.Int("agents", 0, "team size (0 = workload default)")
		episodes = flag.Int("episodes", 5, "episodes per configuration")
		seed     = flag.Uint64("seed", 1, "root random seed")
		procs    = flag.Int("procs", runner.DefaultParallelism(),
			"episode worker-pool size for -exp (1 = sequential; output is identical at any value)")
		list = flag.Bool("list", false, "list workloads and experiments")
	)
	flag.Parse()

	switch {
	case *list:
		fmt.Println("workloads: ", strings.Join(embench.Workloads(), ", "))
		fmt.Println("experiments:", strings.Join(embench.Experiments(), ", "))
	case *exp != "":
		report, err := embench.ExperimentOpt(*exp, embench.ExperimentConfig{
			Episodes: *episodes, Seed: *seed, Parallelism: *procs,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(report)
	case *run != "":
		out, err := embench.Run(*run, *diff, *agents, *seed)
		if err != nil {
			fatal(err)
		}
		e := out.Episode
		fmt.Printf("workload    %s (%s, seed %d)\n", *run, *diff, *seed)
		fmt.Printf("success     %v\n", e.Success)
		fmt.Printf("steps       %d (cap hit: %v)\n", e.Steps, e.ReachedLimit)
		fmt.Printf("sim time    %.1f min (%.1f s/step)\n",
			e.SimDuration.Minutes(), e.SimDuration.Seconds()/float64(max(e.Steps, 1)))
		fmt.Printf("llm         %d calls, %d prompt tokens, %d output tokens (%.0f%% of latency)\n",
			e.LLMCalls, e.PromptTokens, e.OutputTokens, 100*e.LLMShare)
		if e.Messages.Generated > 0 {
			fmt.Printf("messages    %d generated, %.0f%% useful\n",
				e.Messages.Generated, 100*e.Messages.UsefulRate())
		}
		fmt.Printf("breakdown  ")
		for _, m := range trace.Modules {
			if d, ok := e.Breakdown[m]; ok && d > 0 {
				fmt.Printf(" %s=%.1fs", m, d.Seconds())
			}
		}
		fmt.Println()
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "embench:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
