package bench

import (
	"reflect"
	"testing"

	"embench/internal/serve"
)

func fig11TestConfig() Config {
	return Config{Episodes: 2, Seed: 11, Parallelism: 1}
}

func TestFig11Shape(t *testing.T) {
	rep := Fig11(fig11TestConfig())
	if want := len(fig11Routings) * len(Fig11CacheTokens); len(rep.Replay) != want {
		t.Fatalf("replay rows = %d, want %d", len(rep.Replay), want)
	}
	if want := len(fig11Routings) * len(Fig11FleetCacheTokens); len(rep.Fleet) != want {
		t.Fatalf("fleet rows = %d, want %d", len(rep.Fleet), want)
	}
	for i, r := range rep.Replay {
		if r.MaxShare <= 0 || r.MaxShare > 1 || r.CacheHitRate < 0 || r.CacheHitRate >= 1 {
			t.Fatalf("replay row %d implausible: %+v", i, r)
		}
	}
	for i, r := range rep.Fleet {
		if r.TaskLatency <= 0 || r.MaxShare <= 0 || r.MaxShare > 1 {
			t.Fatalf("fleet row %d implausible: %+v", i, r)
		}
	}
}

// TestFig11CapacityAwareAffinitySpreads is the PR's acceptance criterion:
// under a token budget, cache-affinity must place the shared-preamble
// replay across replicas — max per-replica request share strictly below
// the budget-blind collapse — while keeping the cache hit rate within 10%
// of pure affinity's.
func TestFig11CapacityAwareAffinitySpreads(t *testing.T) {
	rep := Fig11(fig11TestConfig())
	pick := func(routing serve.RoutingPolicy, tokens int) Fig11ReplayRow {
		for _, r := range rep.Replay {
			if r.Routing == routing && r.CacheTokens == tokens {
				return r
			}
		}
		t.Fatalf("missing replay row %s/%d", routing, tokens)
		return Fig11ReplayRow{}
	}
	pure := pick(serve.RouteCacheAffinity, 0)
	if pure.MaxShare < 0.9 {
		t.Fatalf("budget-blind affinity no longer collapses (max share %.2f); the fixture lost its pathology", pure.MaxShare)
	}
	if pure.EvictedTokens != 0 {
		t.Fatalf("budget-blind baseline evicted %d tokens; entry capacity too tight", pure.EvictedTokens)
	}
	aware := pick(serve.RouteCacheAffinity, 8192)
	if aware.MaxShare >= pure.MaxShare {
		t.Fatalf("capacity-aware affinity should spread: max share %.2f vs %.2f collapse",
			aware.MaxShare, pure.MaxShare)
	}
	if aware.CacheHitRate < 0.9*pure.CacheHitRate {
		t.Fatalf("spreading cost too many hits: %.3f vs %.3f pure (want within 10%%)",
			aware.CacheHitRate, pure.CacheHitRate)
	}
	if aware.EvictedTokens == 0 {
		t.Fatal("token budget never evicted; the pressure axis is not binding")
	}
	// Tighter budgets spread harder (monotone non-increasing share along
	// the affinity column).
	tight := pick(serve.RouteCacheAffinity, 3072)
	if tight.MaxShare > aware.MaxShare {
		t.Fatalf("tighter budget should not concentrate more: %.2f @3072 vs %.2f @8192",
			tight.MaxShare, aware.MaxShare)
	}
}

// TestFig11ClosedLoopBudgetBites: in the closed-loop fleet panel the tight
// budget must actually evict (the capacity axis is real end to end) while
// success stays intact — KV pressure costs latency, never decisions.
func TestFig11ClosedLoopBudgetBites(t *testing.T) {
	rep := Fig11(fig11TestConfig())
	for _, routing := range fig11Routings {
		var tight, blind *Fig11FleetRow
		for i := range rep.Fleet {
			r := &rep.Fleet[i]
			if r.Routing != routing {
				continue
			}
			switch r.CacheTokens {
			case 2048:
				tight = r
			case 0:
				blind = r
			}
		}
		if tight == nil || blind == nil {
			t.Fatalf("missing fleet rows for %s", routing)
		}
		if tight.EvictedTokens == 0 {
			t.Fatalf("%s: 2048-token budget never evicted in the closed loop", routing)
		}
		if tight.SuccessRate != blind.SuccessRate {
			t.Fatalf("%s: cache budget changed decisions: success %.2f vs %.2f",
				routing, tight.SuccessRate, blind.SuccessRate)
		}
	}
}

func TestFig11RerunAndParallelismByteIdentical(t *testing.T) {
	cfg := fig11TestConfig()
	a, b := Fig11(cfg), Fig11(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Fig11 reruns diverged")
	}
	par := cfg
	par.Parallelism = 4
	if !reflect.DeepEqual(a, Fig11(par)) {
		t.Fatal("Fig11 results changed with worker-pool parallelism")
	}
	if RenderFig11(a) != RenderFig11(b) {
		t.Fatal("Fig11 reports diverged across reruns")
	}
}
