package serve

import (
	"time"

	"embench/internal/llm"
	"embench/internal/metrics"
	"embench/internal/prompt"
	"embench/internal/serve/obs"
)

// replica is one model instance's timeline position: when it frees, the
// shape of its in-flight frontier batch (for continuous-batching joins),
// and its own prefix/KV cache — cache state is per instance, which is what
// makes cache-affinity routing meaningful.
type replica struct {
	cache      *prefixCache
	requests   int // requests this replica has served (placement spread)
	freeAt     time.Duration
	batchStart time.Duration
	batchEnd   time.Duration
	batchN     int
	batchTok   float64 // effective (cache-discounted) prefill tokens
	batchOut   int     // longest generation in the batch
	// Stats already recorded for the in-flight batch's members, so joins
	// can retroactively restate them at the batch's final size (keeping
	// closed-loop accounting identical to Replay's, where every member
	// reports the whole batch's size and service time).
	recSeqs    int
	recService time.Duration
	// lats holds the frontier batch members' end-to-end latencies at the
	// batch's CURRENT completion time. They cannot go into the latency
	// histogram yet: a continuous-batching join extends the batch and
	// restates every member's completion, and the histogram — unlike the
	// Service sum — cannot subtract a bucketed value back out. So final
	// latencies are buffered here, shifted on join, and folded into the
	// histogram only once the frontier is sealed (replaced by the next
	// batch, or snapshotted by Stats).
	lats []time.Duration
}

// startBatch rewrites the replica's frontier for a freshly launched batch,
// preserving the replica's cache, request count and (emptied) latency
// buffer across the rewrite. Callers fold the old frontier's latencies
// first — see Endpoint.sealFrontier.
func (r *replica) startBatch(start, end time.Duration, n int, tok float64, out int, service time.Duration) {
	cache, requests, lats := r.cache, r.requests, r.lats
	*r = replica{
		cache: cache, requests: requests, lats: lats[:0],
		freeAt: end, batchStart: start, batchEnd: end,
		batchN: n, batchTok: tok, batchOut: out,
		recSeqs: n * n, recService: time.Duration(n) * service,
	}
}

// Endpoint is one shared serving deployment. It is not safe for concurrent
// use by itself: a single simulated episode may own one directly (the
// per-episode closed loop of fig8), while cross-episode sharing goes
// through Fleet, which serializes and deterministically orders access.
type Endpoint struct {
	cfg      Config
	replicas []replica
	stats    metrics.Serving
	// Autoscaler state (see autoscale.go). active is the routable prefix
	// of replicas — replicas[:active] take traffic, the rest are parked.
	// With autoscaling disabled active == len(replicas) always, so every
	// routing loop over the active slice is byte-identical to the
	// fixed-replica behaviour.
	active   int
	asNext   time.Duration // next evaluation tick (enabled only)
	asLast   time.Duration // previous tick (replica-time integral anchor)
	busyAcc  time.Duration // cumulative in-batch replica time
	lastBusy time.Duration // busyAcc at the previous evaluation
	// Single-call scratch, reused across Serve calls (the endpoint is not
	// concurrency-safe by contract): the prefix-chain buffer, plus
	// one-element admission slices so the unbatched hot path allocates
	// nothing per request.
	kbuf   []sectionKey
	oneKey [1]promptKey
	oneOut [1]int
	mbuf   []admitted
	// Batch-call scratch for ServeBatch (same contract): the per-member key
	// and out-token slices, plus one shared section-key arena the members'
	// chains are sliced out of — sized up front so appending never
	// reallocates under an already-handed-out promptKey.
	bkeys  []promptKey
	bouts  []int
	barena []sectionKey
	seen   map[uint64]bool // batchPressure's dedup scratch
	// Flight-recorder seam (see obs.go / internal/serve/obs): nil sink is
	// the zero-cost default — every emission below is guarded, so the
	// un-instrumented path is byte-identical and allocation-free. shard
	// tags events when a ShardedFleet shares one sink; reqID numbers
	// requests within this source (sink-path only).
	sink  obs.Sink
	shard int
	reqID int64
	// fx, when non-nil, is the fault-injection state (see faults.go): the
	// per-replica crash and straggler schedules plus the serving-path hooks
	// that apply them. nil — the zero-value Faults default — leaves every
	// path byte-identical to fault-free builds, same contract as sink/dis.
	fx *faultState
	// dis, when non-nil, makes this endpoint a disaggregated parent: every
	// serving entry point dispatches to the prefill/decode stage pools (see
	// disagg.go) and the fields above except sink/shard go unused. nil — the
	// default for every monolithic config — leaves all paths byte-identical
	// to builds predating disaggregation.
	dis *disaggState
}

// Compile-time checks: an endpoint is a drop-in serving backend for llm
// clients, including explicitly aggregated step-phase batches.
var (
	_ llm.Backend      = (*Endpoint)(nil)
	_ llm.BatchBackend = (*Endpoint)(nil)
)

// New builds an endpoint from cfg (zero fields defaulted). A config with
// both Prefill and Decode pools set builds a disaggregated endpoint — two
// inner stage pools behind one Backend-compatible front (see disagg.go).
// New panics on a config Validate rejects; callers that want a clean error
// (the CLI) should Validate first.
func New(cfg Config) *Endpoint {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Disaggregated() {
		d := cfg.withDefaults()
		d.Replicas = 0 // the monolithic pool does not exist
		return &Endpoint{cfg: d, dis: newDisagg(d)}
	}
	cfg = cfg.withDefaults()
	e := &Endpoint{
		cfg:      cfg,
		replicas: make([]replica, cfg.Replicas),
	}
	for i := range e.replicas {
		e.replicas[i].cache = newPrefixCache(cfg.CacheEntries, cfg.CacheTokens)
	}
	e.stats.Replicas = cfg.Replicas
	e.active = cfg.Replicas
	if cfg.Autoscale.enabled() {
		e.active = cfg.Autoscale.Min
		e.asNext = cfg.Autoscale.Interval
	}
	if cfg.Faults.enabled() {
		e.fx = newFaultState(cfg.Faults, cfg.Replicas)
	}
	return e
}

// TryNew is New with the panic turned into an error: it validates cfg and
// builds the endpoint, so flag-driven callers (the CLI, experiment sweeps)
// can reject a bad config cleanly instead of crashing.
func TryNew(cfg Config) (*Endpoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return New(cfg), nil
}

// chainInto hashes a prompt's prefix chain under the endpoint's configured
// cache identity, reusing buf's backing array.
func (e *Endpoint) chainInto(buf []sectionKey, p prompt.Prompt) promptKey {
	return chainKeysIdent(buf, p, e.cfg.Identity)
}

// Config reports the endpoint's effective (defaulted) configuration.
func (e *Endpoint) Config() Config { return e.cfg }

// Stats reports accumulated serving statistics, including the per-replica
// request spread and the cache-memory rollup (peak live tokens across
// replicas, total capacity-evicted tokens). In-flight frontier batches'
// member latencies are folded into the returned snapshot's histogram (the
// endpoint's own buffers are left alone, so a later join can still restate
// them).
func (e *Endpoint) Stats() metrics.Serving {
	if e.dis != nil {
		return e.dis.fold()
	}
	s := e.stats
	s.ReplicaRequests = make([]int, len(e.replicas))
	for i := range e.replicas {
		s.ReplicaRequests[i] = e.replicas[i].requests
		_, peak, evicted := e.replicas[i].cache.stats()
		s.EvictedTokens += evicted
		if peak > s.CacheTokensPeak {
			s.CacheTokensPeak = peak
		}
		for _, l := range e.replicas[i].lats {
			s.LatencyHist.Observe(l)
		}
	}
	return s
}

// sealFrontier folds a replica's frontier-batch member latencies into the
// stats histogram and clears the buffer: the frontier is being replaced
// (or the replica retired), so those completions can no longer be restated
// by a join.
func (e *Endpoint) sealFrontier(r *replica) {
	if e.sink != nil && len(r.lats) > 0 {
		e.sink.Event(obs.Event{
			Kind: obs.KindBatchSeal, T: r.batchEnd, Shard: e.shard,
			Replica: e.rindex(r), Batch: len(r.lats),
		})
	}
	for _, l := range r.lats {
		e.stats.LatencyHist.Observe(l)
	}
	r.lats = r.lats[:0]
}

// ServingStats implements the serving-statistics seam the episode runners
// read at episode end; for a dedicated endpoint it is simply Stats.
func (e *Endpoint) ServingStats() metrics.Serving { return e.Stats() }

// Reset clears timeline, caches, statistics and autoscaler state for reuse.
func (e *Endpoint) Reset() {
	if e.dis != nil {
		e.dis.prefill.Reset()
		e.dis.decode.Reset()
		e.dis.stats = metrics.Serving{}
		e.reqID = 0
		return
	}
	for i := range e.replicas {
		e.replicas[i] = replica{cache: newPrefixCache(e.cfg.CacheEntries, e.cfg.CacheTokens)}
	}
	e.stats = metrics.Serving{Replicas: e.cfg.Replicas}
	e.active = e.cfg.Replicas
	e.asNext, e.asLast, e.busyAcc, e.lastBusy = 0, 0, 0, 0
	e.reqID = 0
	if e.cfg.Autoscale.enabled() {
		e.active = e.cfg.Autoscale.Min
		e.asNext = e.cfg.Autoscale.Interval
	}
	if e.cfg.Faults.enabled() {
		// Fresh streams: a reset endpoint replays the same fault schedule.
		e.fx = newFaultState(e.cfg.Faults, e.cfg.Replicas)
	}
}

// Serve is the closed-loop entry point: one live request, submitted at the
// calling agent's virtual time, resolved immediately against the endpoint's
// current timeline. It implements llm.Backend.
//
// Admission is in submission order (the order episode code issues calls, or
// the globally merged virtual-time order under a Fleet), which is
// deterministic; arrival timestamps still drive queueing delay and
// batching, so contention emerges whenever per-agent clocks overlap.
// Continuous batching appears as a join window: a request arriving within
// MaxWait of the frontier batch's start joins it, paying its own prefill
// and the incremental decode slowdown, without disturbing the already
// reported completions of earlier members. The routing policy picks the
// replica (see RoutingPolicy).
func (e *Endpoint) Serve(c llm.Call) llm.Served {
	if e.dis != nil {
		return e.dis.serve(e, c)
	}
	if e.fx != nil {
		// Apply every crash window that has begun by the arrival watermark
		// first, so routing and the autoscaler below see live replicas only.
		e.applyFaults(c.Arrival)
	}
	e.maybeAutoscale(c.Arrival)
	// Hash the prompt's prefix chain exactly once; routing probes and
	// admission pricing below all share this key.
	k := e.chainInto(e.kbuf, c.Prompt)
	e.kbuf = k.secs
	var req int64
	if e.sink != nil {
		req = e.nextReq()
		e.emitSubmit(req, c.Agent, c.Arrival, c.Prompt, c.OutTokens, 0)
	}
	r := e.route(c.Arrival, k, c.OutTokens)
	if e.sink != nil {
		e.emitRoute(req, c.Arrival, r, k)
	}

	// Join the in-flight frontier batch when the window allows. Under fault
	// injection a join must also prove the extended batch still ends before
	// the replica's next scheduled crash (joinSafe probes without mutating);
	// an unsafe join falls through to the new-batch path, whose crash-retry
	// loop re-routes the request.
	if e.cfg.MaxBatch > 1 && r.batchN > 0 && r.batchN < e.cfg.MaxBatch &&
		c.Arrival <= r.batchStart+e.cfg.MaxWait && r.freeAt > c.Arrival &&
		(e.fx == nil || e.joinSafe(r, k, c.OutTokens)) {
		var ri, evBefore int
		if e.sink != nil {
			ri = e.rindex(r)
			_, _, evBefore = r.cache.stats()
		}
		eff, cached, total := e.promptCostOn(r, k)
		r.requests++
		r.batchN++
		r.batchTok += eff
		if c.OutTokens > r.batchOut {
			r.batchOut = c.OutTokens
		}
		svc := e.cfg.Profile.BatchServiceTime(r.batchN, r.batchTok, r.batchOut)
		if e.fx != nil {
			// The in-flight batch launched under this straggler factor; its
			// extension pays the same slowdown.
			if f := e.fx.clocks[e.rindex(r)].batchFactor; f > 1 {
				svc = time.Duration(float64(svc) * f)
			}
		}
		end := r.batchStart + svc
		if end < r.batchEnd {
			end = r.batchEnd
		}
		// The join restates every member's completion to the new end: shift
		// the buffered final latencies by the extension before appending the
		// joiner's own.
		for i := range r.lats {
			r.lats[i] += end - r.batchEnd
		}
		r.lats = append(r.lats, end-c.Arrival)
		e.busyAcc += end - r.batchEnd
		if e.sink != nil {
			e.emitCache(req, c.Arrival, ri, cached, total)
			if _, _, evAfter := r.cache.stats(); evAfter > evBefore {
				e.emitEvict(c.Arrival, ri, evAfter-evBefore)
			}
			e.sink.Event(obs.Event{
				Kind: obs.KindBatchJoin, T: c.Arrival, Shard: e.shard,
				Replica: ri, Req: req, Batch: r.batchN, Dur: end - r.batchEnd,
			})
		}
		r.batchEnd, r.freeAt = end, end
		wait := time.Duration(0)
		if c.Arrival < r.batchStart {
			wait = r.batchStart - c.Arrival
		}
		// Restate the batch's stats at its new size: every member — the
		// already-reported ones included — rode a batch of batchN sequences
		// taking (end - start) each.
		e.stats.Requests++
		e.stats.QueueWait += wait
		e.stats.QueueWaitHist.Observe(wait)
		perMember := end - r.batchStart
		e.stats.Service += time.Duration(r.batchN)*perMember - r.recService
		r.recService = time.Duration(r.batchN) * perMember
		e.stats.BatchedSeqs += r.batchN*r.batchN - r.recSeqs
		r.recSeqs = r.batchN * r.batchN
		e.stats.PrefillTokens += total
		e.stats.CachedTokens += cached
		if e.sink != nil {
			e.emitComplete(req, c.Agent, ri, end, end-c.Arrival, wait, r.batchN, cached, total)
		}
		// Decode share: the member's in-batch time minus the batch priced at
		// zero output, clamped to its own as-served latency (a late joiner's
		// latency can be shorter than the batch span it rode).
		dec := (end - r.batchStart) - e.cfg.Profile.BatchServiceTime(r.batchN, r.batchTok, 0)
		if dec < 0 {
			dec = 0
		}
		if lat := end - c.Arrival; dec > lat {
			dec = lat
		}
		return llm.Served{
			Latency: end - c.Arrival, QueueWait: wait,
			BatchSize: r.batchN, CachedTokens: cached, PromptTokens: total,
			Decode: dec,
		}
	}

	// Start a new batch: queue behind the replica's frontier if busy. Under
	// fault injection the admission may fail — the batch's service span hits
	// a scheduled crash — in which case the crash kills the batch and the
	// request re-enters admission at the crash time, routing again among the
	// surviving replicas (deterministically: the schedule is seeded).
	e.oneKey[0], e.oneOut[0] = k, c.OutTokens
	var (
		start, service time.Duration
		members        []admitted
		totalEff       float64
		maxOut         int
		ri, evBefore   int
	)
	arrival := c.Arrival
	for {
		start = arrival
		if r.freeAt > start {
			start = r.freeAt
		}
		if e.fx != nil {
			// Crash windows opening while the replica sits idle (or warms up
			// after a scale-up) push its availability back before the batch
			// can begin.
			fi := e.rindex(r)
			e.applyIdleCrashes(r, fi, start)
			if r.freeAt > start {
				start = r.freeAt
			}
		}
		if e.sink != nil {
			ri = e.rindex(r)
			_, _, evBefore = r.cache.stats()
		}
		service, members, totalEff, maxOut = e.admitBatch(r, e.oneKey[:], e.oneOut[:])
		if e.fx == nil {
			break
		}
		fi := e.rindex(r)
		f := e.stragFactor(fi, start)
		if f > 1 {
			service = time.Duration(float64(service) * f)
		}
		if w, hit := e.crashIn(fi, start, start+service); hit {
			// Undo the admission the crash voided: the replica never served
			// the request (its count reverts), but the span it burned until
			// the crash is real occupancy — the autoscaler sees failures as
			// scale-up pressure. crashReplica flushes the cache, erasing the
			// admission's inserted prefixes along with the warm state.
			r.requests--
			e.busyAcc += w.start - start
			e.crashReplica(r, fi, w, 1)
			e.applyFaults(w.start)
			arrival = w.start
			r = e.route(arrival, k, c.OutTokens)
			if e.sink != nil {
				e.emitRoute(req, arrival, r, k)
			}
			continue
		}
		e.fx.clocks[fi].batchFactor = f
		break
	}
	wait := start - c.Arrival
	end := start + service
	e.sealFrontier(r)
	r.startBatch(start, end, 1, totalEff, maxOut, service)
	r.lats = append(r.lats, end-c.Arrival)
	e.busyAcc += service
	e.record(service, wait, 1, members[0].cached, members[0].total)
	if e.sink != nil {
		e.emitCache(req, c.Arrival, ri, members[0].cached, members[0].total)
		if _, _, evAfter := r.cache.stats(); evAfter > evBefore {
			e.emitEvict(c.Arrival, ri, evAfter-evBefore)
		}
		e.emitBatchStart(start, ri, 1, totalEff, maxOut, service)
		e.emitComplete(req, c.Agent, ri, end, end-c.Arrival, wait, 1, members[0].cached, members[0].total)
	}
	dec := service - e.cfg.Profile.BatchServiceTime(1, totalEff, 0)
	if dec < 0 {
		dec = 0
	}
	return llm.Served{
		Latency: end - c.Arrival, QueueWait: wait,
		BatchSize: 1, CachedTokens: members[0].cached, PromptTokens: members[0].total,
		Decode: dec,
	}
}

// ServeBatch serves an explicitly aggregated batch (llm.BatchBackend): the
// calls launch together as one batch on one replica, starting once the
// last member has arrived and the replica frees. Client-side aggregation
// supersedes the server's join cap — the batch is one request, so MaxBatch
// does not split it — but a later join-window arrival may still ride along
// while slots remain. Results are in submission order.
func (e *Endpoint) ServeBatch(calls []llm.Call) []llm.Served {
	if len(calls) == 0 {
		return nil
	}
	if len(calls) == 1 {
		return []llm.Served{e.Serve(calls[0])}
	}
	if e.dis != nil {
		return e.dis.serveBatch(e, calls)
	}
	arrival := calls[0].Arrival
	for _, c := range calls[1:] {
		if c.Arrival > arrival {
			arrival = c.Arrival
		}
	}
	e.maybeAutoscale(arrival)
	// Hash the members' prefix chains into endpoint-owned scratch, exactly
	// as Serve does for a single call: the key/out slices are reused across
	// ServeBatch calls, and the chains share one section-key arena that is
	// sized up front (growing it mid-loop would reallocate the backing
	// array out from under the keys already built).
	if cap(e.bkeys) < len(calls) {
		e.bkeys = make([]promptKey, len(calls))
		e.bouts = make([]int, len(calls))
	}
	keys, outs := e.bkeys[:len(calls)], e.bouts[:len(calls)]
	secs := 0
	for _, c := range calls {
		secs += len(c.Prompt.Sections)
	}
	if cap(e.barena) < secs {
		e.barena = make([]sectionKey, 0, secs)
	}
	arena := e.barena[:0]
	for i, c := range calls {
		keys[i] = e.chainInto(arena[len(arena):len(arena):cap(arena)], c.Prompt)
		arena = arena[:len(arena)+len(keys[i].secs)]
		outs[i] = c.OutTokens
	}
	if e.fx != nil {
		e.applyFaults(arrival)
	}
	r := e.routeBatch(arrival, keys, calls[0].OutTokens)
	var reqIDs []int64
	if e.sink != nil {
		reqIDs = make([]int64, len(calls))
		for i, c := range calls {
			reqIDs[i] = e.nextReq()
			e.emitSubmit(reqIDs[i], c.Agent, c.Arrival, c.Prompt, c.OutTokens, 0)
		}
		e.emitRoute(reqIDs[0], arrival, r, keys[0])
	}
	// Same crash-retry shape as Serve's new-batch path: an explicit batch
	// whose span hits a scheduled crash dies whole and re-enters admission
	// at the crash time.
	var (
		start, service time.Duration
		members        []admitted
		totalEff       float64
		maxOut         int
		ri, evBefore   int
	)
	for {
		start = arrival
		if r.freeAt > start {
			start = r.freeAt
		}
		if e.fx != nil {
			fi := e.rindex(r)
			e.applyIdleCrashes(r, fi, start)
			if r.freeAt > start {
				start = r.freeAt
			}
		}
		if e.sink != nil {
			ri = e.rindex(r)
			_, _, evBefore = r.cache.stats()
		}
		service, members, totalEff, maxOut = e.admitBatch(r, keys, outs)
		if e.fx == nil {
			break
		}
		fi := e.rindex(r)
		f := e.stragFactor(fi, start)
		if f > 1 {
			service = time.Duration(float64(service) * f)
		}
		if w, hit := e.crashIn(fi, start, start+service); hit {
			r.requests -= len(calls)
			e.busyAcc += w.start - start
			e.crashReplica(r, fi, w, len(calls))
			e.applyFaults(w.start)
			arrival = w.start
			r = e.routeBatch(arrival, keys, calls[0].OutTokens)
			if e.sink != nil {
				e.emitRoute(reqIDs[0], arrival, r, keys[0])
			}
			continue
		}
		e.fx.clocks[fi].batchFactor = f
		break
	}
	end := start + service
	e.sealFrontier(r)
	r.startBatch(start, end, len(calls), totalEff, maxOut, service)
	e.busyAcc += service
	if e.sink != nil {
		for i := range calls {
			e.emitCache(reqIDs[i], arrival, ri, members[i].cached, members[i].total)
		}
		if _, _, evAfter := r.cache.stats(); evAfter > evBefore {
			e.emitEvict(arrival, ri, evAfter-evBefore)
		}
		e.emitBatchStart(start, ri, len(calls), totalEff, maxOut, service)
	}
	dec := service - e.cfg.Profile.BatchServiceTime(len(calls), totalEff, 0)
	if dec < 0 {
		dec = 0
	}
	out := make([]llm.Served, len(calls))
	for i, c := range calls {
		wait := start - c.Arrival
		r.lats = append(r.lats, end-c.Arrival)
		e.record(service, wait, len(calls), members[i].cached, members[i].total)
		if e.sink != nil {
			e.emitComplete(reqIDs[i], c.Agent, ri, end, end-c.Arrival, wait, len(calls), members[i].cached, members[i].total)
		}
		out[i] = llm.Served{
			Latency: end - c.Arrival, QueueWait: wait,
			BatchSize: len(calls), CachedTokens: members[i].cached,
			PromptTokens: members[i].total, Decode: dec,
		}
	}
	return out
}

// record folds one served request into the running statistics. Queue waits
// go straight into the histogram — they are final at admission and never
// restated; end-to-end latencies ride the replica's frontier buffer instead
// (see replica.lats).
func (e *Endpoint) record(service, wait time.Duration, batchN, cached, total int) {
	e.stats.Requests++
	e.stats.QueueWait += wait
	e.stats.QueueWaitHist.Observe(wait)
	e.stats.Service += service
	e.stats.BatchedSeqs += batchN
	e.stats.PrefillTokens += total
	e.stats.CachedTokens += cached
}
