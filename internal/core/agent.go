package core

import (
	"fmt"
	"time"

	"embench/internal/llm"
	"embench/internal/modules/comms"
	"embench/internal/modules/execution"
	"embench/internal/modules/memory"
	"embench/internal/modules/planning"
	"embench/internal/modules/reflection"
	"embench/internal/rng"
	"embench/internal/simclock"
	"embench/internal/trace"
)

// MemStore is the store shape the agent needs; both memory.Store and
// memory.Dual satisfy it.
type MemStore interface {
	Add(memory.Record)
	AddAll([]memory.Record)
	Retrieve(currentStep int) memory.Retrieval
	Clear()
}

// Claimer is implemented by domains whose agents announce intents
// ("I'm fetching object 3") so teammates avoid duplicated work.
type Claimer interface {
	// ClaimRecord renders agent's commitment to g as a memory record, or
	// reports false when the subgoal carries no claim (explore, idle).
	ClaimRecord(agent int, g Subgoal) (memory.Record, bool)
}

// Corrector is implemented by domains that can turn a failed execution
// into corrective knowledge — what the agent physically observed when its
// plan met reality. The reflection module gates whether these records ever
// reach memory.
type Corrector interface {
	CorrectionRecords(agent int, g Subgoal, res execution.Result) []memory.Record
}

// Agent is one embodied agent's module stack and per-episode state.
type Agent struct {
	ID  int
	Cfg AgentConfig

	Store      MemStore
	planClient *llm.Client
	commClient *llm.Client
	reflClient *llm.Client
	checker    reflection.Checker

	clock  *simclock.Clock
	tracer *trace.Trace

	senseStream   *rng.Stream
	persistStream *rng.Stream
	reflStream    *rng.Stream

	lastFailed    Subgoal // failed, uncorrected decision (loop driver)
	loopRepeats   int     // consecutive re-issues of lastFailed
	planCooldown  int     // steps remaining under the current plan (Rec. 7)
	lastShared    int     // last step whose records were messaged out
	lastAnnounced string  // last commitment broadcast under Rec. 8 gating
	// overlapCredit is the async pipeline's remaining decode window
	// (Cfg.Pipeline): the last plan/act-select call's Response.Decode, not
	// yet consumed by next-step sensing/retrieval charges. Always zero
	// with the pipeline off, so chargeOverlapped degenerates to a plain
	// clock advance.
	overlapCredit time.Duration
}

// NewAgent builds an agent. The id is used both as the environment agent
// index and to derive independent random streams; CentralAgent is valid.
func NewAgent(id int, cfg AgentConfig, src *rng.Source, clock *simclock.Clock, tracer *trace.Trace) *Agent {
	cfg = cfg.withDefaults()
	name := fmt.Sprintf("agent%d", id)
	if id == CentralAgent {
		name = "central"
	}
	a := &Agent{
		ID: id, Cfg: cfg, clock: clock, tracer: tracer,
		senseStream:   src.NewStream(name + "/sense"),
		persistStream: src.NewStream(name + "/persist"),
		reflStream:    src.NewStream(name + "/reflect"),
		lastShared:    -1,
	}
	if cfg.Memory.Dual {
		a.Store = memory.NewDual(cfg.Memory.ShortWindow, cfg.Memory.LongBudget)
	} else {
		a.Store = memory.NewStore(cfg.Memory.Capacity)
	}
	a.planClient = llm.NewClient(cfg.Planner, src.NewStream(name+"/plan"), clock, tracer)
	if cfg.Comms != nil {
		a.commClient = llm.NewClient(*cfg.Comms, src.NewStream(name+"/comm"), clock, tracer)
	}
	if cfg.Reflector != nil {
		a.reflClient = llm.NewClient(*cfg.Reflector, src.NewStream(name+"/refl"), clock, tracer)
		a.checker = reflection.NewChecker(cfg.Reflector.Capability)
	}
	if cfg.Backend != nil {
		// All of the agent's modules hit the same shared deployment.
		a.planClient.SetBackend(cfg.Backend)
		if a.commClient != nil {
			a.commClient.SetBackend(cfg.Backend)
		}
		if a.reflClient != nil {
			a.reflClient.SetBackend(cfg.Backend)
		}
	}
	return a
}

// name renders the agent's trace identity.
func (a *Agent) name() string {
	if a.ID == CentralAgent {
		return "central"
	}
	return fmt.Sprintf("agent%d", a.ID)
}

// Sense runs the perception backend over the domain observation: charges
// inference latency and drops entity records the detector missed.
func (a *Agent) Sense(d Domain, step int) Observation {
	obs := d.Observe(a.ID)
	if a.Cfg.Sensing == nil {
		return obs
	}
	b := a.Cfg.Sensing
	lat := a.chargeOverlapped(b.Latency(obs.Entities))
	a.tracer.Record(trace.Event{
		Step: step, Agent: a.name(), Module: trace.Sensing, Kind: b.Name, Latency: lat,
	})
	if b.MissProb <= 0 {
		return obs
	}
	kept := obs.Records[:0]
	tokens := 0
	for _, r := range obs.Records {
		if !r.Static && a.senseStream.Bernoulli(b.MissProb) {
			continue
		}
		kept = append(kept, r)
		tokens += r.Tokens
	}
	obs.Records = kept
	obs.Tokens = tokens
	return obs
}

// Retrieve reads memory into context, charging the retrieval cost.
func (a *Agent) Retrieve(step int) memory.Retrieval {
	if a.Cfg.Memory.Capacity == 0 && !a.Cfg.Memory.Dual {
		return memory.Retrieval{}
	}
	ret := a.Store.Retrieve(step)
	lat := a.chargeOverlapped(ret.Latency)
	a.tracer.Record(trace.Event{
		Step: step, Agent: a.name(), Module: trace.Memory, Kind: "retrieve", Latency: lat,
	})
	return ret
}

// chargeOverlapped charges a sensing/retrieval latency to the agent's
// clock, first consuming any decode-overlap credit (Cfg.Pipeline): the
// overlapped portion costs no virtual time — it ran while the previous
// plan call's response was still streaming. Returns the time actually
// charged, which the trace records so module breakdowns stay consistent
// with SimDuration. With the pipeline off the credit is always zero and
// this is exactly clock.Advance(lat).
func (a *Agent) chargeOverlapped(lat time.Duration) time.Duration {
	if a.overlapCredit > 0 {
		if a.overlapCredit >= lat {
			a.overlapCredit -= lat
			lat = 0
		} else {
			lat -= a.overlapCredit
			a.overlapCredit = 0
		}
	}
	a.clock.Advance(lat)
	return lat
}

// beliefRecords merges retrieved memory with the live observation (and any
// extra records such as freshly received messages). With memory disabled
// the agent still perceives the present.
func beliefRecords(ret memory.Retrieval, obs Observation, extra []memory.Record) []memory.Record {
	recs := make([]memory.Record, 0, len(ret.Records)+len(obs.Records)+len(extra))
	recs = append(recs, ret.Records...)
	recs = append(recs, obs.Records...)
	recs = append(recs, extra...)
	return recs
}

// splitTokens separates retrieved records into memory vs dialogue prompt
// sections.
func splitTokens(ret memory.Retrieval) (memTokens, dlgTokens int) {
	for _, r := range ret.Records {
		if r.Kind == memory.Dialogue {
			dlgTokens += r.Tokens
		} else {
			memTokens += r.Tokens
		}
	}
	return memTokens, dlgTokens
}

// PlanResult is the outcome of one planning-module invocation.
type PlanResult struct {
	Subgoal   Subgoal
	Proposal  Proposal
	Corrupted bool
	UsedLLM   bool // false while executing under a multi-step plan
	Truncated bool
}

// Plan runs the planning module: build belief, query the oracle, pass it
// through the simulated LLM, apply the no-reflection persistence loop and
// the multi-step-execution cooldown.
func (a *Agent) Plan(d Domain, step int, ret memory.Retrieval, obs Observation, extra []memory.Record) PlanResult {
	belief := d.BuildBelief(a.ID, beliefRecords(ret, obs, extra))
	proposal := d.Propose(a.ID, belief)
	return a.decide(step, belief, proposal, ret, obs)
}

// PlanJoint is Plan for a centralized planner over a CentralDomain.
func (a *Agent) PlanJoint(d CentralDomain, step int, ret memory.Retrieval, obs Observation, extra []memory.Record) PlanResult {
	belief := d.BuildBelief(a.ID, beliefRecords(ret, obs, extra))
	proposal := d.ProposeJoint(belief)
	return a.decide(step, belief, proposal, ret, obs)
}

func (a *Agent) decide(step int, belief Belief, proposal Proposal, ret memory.Retrieval, obs Observation) PlanResult {
	prep := a.preparePlan(step, belief, proposal, ret, obs)
	if prep.Ready {
		return prep.Result
	}
	resp := a.planClient.Complete(prep.Req)
	res, selReq, needSel := a.FinishPlan(prep, resp)
	if needSel {
		res = a.FinishActSelect(res, a.planClient.Complete(selReq))
	}
	return res
}

// PlanPrep is a prepared planning query in flight between PreparePlan and
// FinishPlan — the seam step-phase aggregation needs to collect all
// agents' plan requests of a phase before any is served.
type PlanPrep struct {
	// Ready means no LLM call is needed (multi-step execution cooldown):
	// Result is final and Req is meaningless.
	Ready  bool
	Result PlanResult
	// Req is the planning query to issue on PlanClient.
	Req llm.Request

	step      int
	proposal  Proposal
	obsTokens int
}

// PreparePlan is the first half of Plan: build belief, query the oracle
// and assemble the planning request, without issuing it. Callers issue
// prep.Req themselves (individually or via llm.CompleteBatchMulti) and
// complete the module with FinishPlan/FinishActSelect. Plan is the
// single-call composition of the three.
func (a *Agent) PreparePlan(d Domain, step int, ret memory.Retrieval, obs Observation, extra []memory.Record) PlanPrep {
	belief := d.BuildBelief(a.ID, beliefRecords(ret, obs, extra))
	proposal := d.Propose(a.ID, belief)
	return a.preparePlan(step, belief, proposal, ret, obs)
}

func (a *Agent) preparePlan(step int, belief Belief, proposal Proposal, ret memory.Retrieval, obs Observation) PlanPrep {
	// Any unspent decode-overlap credit expires once the next plan is
	// submitted (or skipped under cooldown): the pipeline only overlaps
	// next-step preparation with the previous response's streaming tail.
	a.overlapCredit = 0
	// Multi-step execution (Rec. 7): while under a current plan, follow the
	// oracle directly — the expensive LLM reasoning already happened.
	if a.planCooldown > 0 {
		a.planCooldown--
		return PlanPrep{Ready: true, Result: PlanResult{Subgoal: proposal.Good, Proposal: proposal}}
	}
	memTokens, dlgTokens := splitTokens(ret)
	p := planning.Build(planning.Context{
		SystemTokens:   a.Cfg.SystemTokens,
		TaskTokens:     a.Cfg.TaskTokens,
		MemoryTokens:   memTokens,
		DialogueTokens: dlgTokens,
		ObsTokens:      obs.Tokens,
	})
	if a.Cfg.Compressor != nil {
		p, _ = a.Cfg.Compressor.Compress(p)
	}
	outTokens := a.Cfg.PlanOutTokens
	discount := 0.0
	if mc := a.Cfg.MultipleChoice; mc != nil {
		p, outTokens = mc.Apply(p, outTokens)
		discount = mc.ErrorDiscount
	}
	return PlanPrep{
		Req: llm.Request{
			Agent: a.name(), Module: trace.Planning, Step: step, Kind: "plan",
			Prompt: p, OutTokens: outTokens,
			Good: proposal.Good, Corruptions: anySlice(proposal.Corruptions),
			Complexity: proposal.Complexity, Staleness: belief.Staleness,
			ErrorDiscount: discount,
		},
		step: step, proposal: proposal, obsTokens: obs.Tokens,
	}
}

// FinishPlan is the second half of Plan: fold the LLM response into a
// PlanResult, apply the no-reflection persistence loop and the multi-step
// cooldown. When the config runs CoELA-style action selection it returns
// the follow-up request (to issue on PlanClient, then FinishActSelect)
// with needSel true. The persistence draw consumes the agent's persist
// stream in exactly the same order as the unsplit path, so aggregated and
// per-agent runs stay decision-aligned.
func (a *Agent) FinishPlan(prep PlanPrep, resp llm.Response) (res PlanResult, selReq llm.Request, needSel bool) {
	res = PlanResult{
		Proposal:  prep.proposal,
		Corrupted: resp.Corrupted,
		UsedLLM:   true,
		Truncated: resp.Truncated,
	}
	res.Subgoal, _ = resp.Decision.(Subgoal)
	// Without reflection, a failed decision tends to be re-issued: the
	// model has no feedback telling it the plan didn't work. Loops are
	// bounded — context drift eventually breaks them even unaided.
	if a.Cfg.Reflector == nil && a.lastFailed != nil &&
		a.loopRepeats < maxLoopRepeats && a.persistStream.Bernoulli(persistProb) {
		res.Subgoal = a.lastFailed
		res.Corrupted = true
		a.loopRepeats++
	} else {
		a.loopRepeats = 0
	}
	if a.Cfg.PlanHorizon > 1 {
		a.planCooldown = a.Cfg.PlanHorizon - 1
	}
	// Async pipeline: the plan response's decode window becomes overlap
	// credit for the next step's sensing/retrieval. An act-select follow-up
	// supersedes it (last call wins — its tail is the one that overlaps).
	if a.Cfg.Pipeline {
		a.overlapCredit = resp.Decode
	}
	// CoELA-style action selection: a further LLM call turns the plan into
	// a concrete action and can itself pick wrong.
	if a.Cfg.ActSelect && res.Subgoal != nil {
		selReq = llm.Request{
			Agent: a.name(), Module: trace.Execution, Step: prep.step, Kind: "act-select",
			Prompt:    planning.Build(planning.Context{SystemTokens: 120, TaskTokens: 40, ObsTokens: prep.obsTokens}),
			OutTokens: planning.ActSelectOutTokens,
			Good:      res.Subgoal, Corruptions: anySlice(prep.proposal.Corruptions),
			Complexity: prep.proposal.Complexity / 2,
		}
		return res, selReq, true
	}
	return res, llm.Request{}, false
}

// FinishActSelect folds the action-selection response into the plan
// result.
func (a *Agent) FinishActSelect(res PlanResult, sel llm.Response) PlanResult {
	if a.Cfg.Pipeline {
		a.overlapCredit = sel.Decode
	}
	if sg, ok := sel.Decision.(Subgoal); ok {
		if sel.Corrupted {
			res.Corrupted = true
		}
		res.Subgoal = sg
	}
	return res
}

// PlanClient exposes the planning-module client (aggregated phase batches
// issue prepared requests on it).
func (a *Agent) PlanClient() *llm.Client { return a.planClient }

func anySlice(gs []Subgoal) []any {
	out := make([]any, len(gs))
	for i, g := range gs {
		out[i] = g
	}
	return out
}

// Execute grounds the subgoal. With the execution module present the
// domain's low-level planners run and their effort is charged; without it
// the planner LLM must emit primitives itself, which both costs extra
// inference and usually fails (Fig. 3 "w/o Exec").
func (a *Agent) Execute(d Domain, step int, pr PlanResult) execution.Result {
	if pr.Subgoal == nil {
		return execution.Result{Note: "no decision"}
	}
	if !a.Cfg.Execution {
		ok := true
		for i := 0; i < primitiveCalls; i++ {
			resp := a.planClient.Complete(llm.Request{
				Agent: a.name(), Module: trace.Execution, Step: step, Kind: "primitive",
				Prompt:    planning.Build(planning.Context{SystemTokens: 160, TaskTokens: 40, ObsTokens: 120}),
				OutTokens: planning.PrimitiveOutTokens,
				Good:      pr.Subgoal, Corruptions: anySlice(pr.Proposal.Corruptions),
				Complexity: primitiveComplexity,
			})
			if resp.Corrupted {
				ok = false
			}
		}
		if !ok {
			return execution.Result{Note: "primitive emission failed"}
		}
		return d.Execute(a.ID, pr.Subgoal)
	}
	res := d.Execute(a.ID, pr.Subgoal)
	lat := execution.Latency(res.Effort)
	a.clock.Advance(lat)
	a.tracer.Record(trace.Event{
		Step: step, Agent: a.name(), Module: trace.Execution, Kind: "ground", Latency: lat,
		Note: res.Note,
	})
	return res
}

// Reflect judges the executed decision. A detected failure produces
// corrective memory records (what the agent saw when the plan met
// reality) and breaks persistence loops; without the module, failures
// linger as lastFailed.
func (a *Agent) Reflect(d Domain, step int, pr PlanResult, res execution.Result) {
	failed := !res.Achieved || pr.Corrupted
	if a.reflClient == nil {
		if failed {
			a.lastFailed = pr.Subgoal
		} else {
			a.lastFailed = nil
		}
		return
	}
	resp := a.reflClient.Complete(llm.Request{
		Agent: a.name(), Module: trace.Reflection, Step: step, Kind: "reflect",
		Prompt:    planning.Build(planning.Context{SystemTokens: 140, TaskTokens: 40, ObsTokens: 110}),
		OutTokens: planning.ReflectOutTokens,
		Good:      true,
	})
	_ = resp
	verdict := a.checker.Judge(a.reflStream, failed)
	if verdict.FlaggedError {
		a.lastFailed = nil
		if c, ok := d.(Corrector); ok && pr.Subgoal != nil {
			a.Store.AddAll(c.CorrectionRecords(a.ID, pr.Subgoal, res))
		}
		return
	}
	if failed {
		a.lastFailed = pr.Subgoal
	} else {
		a.lastFailed = nil
	}
}

// ComposeMessage runs the communication module: select what to share,
// generate the message with the comms LLM, and return it for delivery.
// The bool reports whether a message was produced.
func (a *Agent) ComposeMessage(step int, obs Observation, dialogueTokens int) (comms.Message, bool) {
	if a.commClient == nil {
		return comms.Message{}, false
	}
	var share []memory.Record
	if s, ok := a.Store.(*memory.Store); ok && a.Cfg.Memory.Capacity != 0 {
		share = s.Since(a.lastShared)
	} else if dual, ok := a.Store.(*memory.Dual); ok {
		share = append(dual.Long.Since(a.lastShared), dual.Short.Since(a.lastShared)...)
	} else {
		share = obs.Records
	}
	// Share first-hand knowledge only: relaying received dialogue would
	// amplify traffic quadratically with nothing new in it.
	firsthand := make([]memory.Record, 0, len(share))
	for _, r := range share {
		if r.Kind != memory.Dialogue {
			firsthand = append(firsthand, r)
		}
	}
	share = comms.Filter(firsthand, a.lastShared, a.Cfg.MessageFilter)
	a.lastShared = step
	tokens := comms.MessageTokens(share)
	resp := a.commClient.Complete(llm.Request{
		Agent: a.name(), Module: trace.Comms, Step: step, Kind: "message",
		Prompt: planning.Build(planning.Context{
			SystemTokens:   a.Cfg.SystemTokens,
			TaskTokens:     a.Cfg.TaskTokens / 2,
			MemoryTokens:   tokens,
			DialogueTokens: dialogueTokens,
			ObsTokens:      obs.Tokens / 2,
		}),
		OutTokens: planning.MessageOutTokens,
		Good:      true,
	})
	_ = resp
	return comms.Message{From: a.ID, To: comms.Broadcast, Step: step, Records: share, Tokens: tokens}, true
}

// ShouldAnnounce implements the Rec. 8 gate: under planning-then-
// communication, a message is generated only when the plan produced a new
// commitment — repeating an unchanged intent adds nothing. It records the
// announced commitment.
func (a *Agent) ShouldAnnounce(sg Subgoal) bool {
	if sg == nil {
		return false
	}
	if sg.ID() == a.lastAnnounced {
		return false
	}
	a.lastAnnounced = sg.ID()
	return true
}

// MarkMessageUseful back-annotates the latest comms event for this agent
// at the given step with whether the message proved novel to any receiver
// (Sec. V-D message-efficiency accounting).
func (a *Agent) MarkMessageUseful(step int, useful bool) {
	for i := len(a.tracer.Events) - 1; i >= 0; i-- {
		ev := &a.tracer.Events[i]
		if ev.Agent == a.name() && ev.Module == trace.Comms && ev.Step == step && ev.Kind == "message" {
			ev.Useful = useful
			return
		}
	}
}

// Remember commits records (observations, received dialogue, actions,
// claims) to the memory module.
func (a *Agent) Remember(d Domain, step int, obs Observation, dialogue []memory.Record, pr PlanResult, res execution.Result) {
	a.Store.AddAll(obs.Records)
	a.Store.AddAll(dialogue)
	if pr.Subgoal != nil {
		a.Store.Add(memory.Record{
			Step: step, Kind: memory.Action, Key: fmt.Sprintf("act:%d", a.ID),
			Payload: pr.Subgoal.ID(), Tokens: 10, Routine: true,
		})
		if cl, ok := d.(Claimer); ok && res.Achieved {
			if rec, has := cl.ClaimRecord(a.ID, pr.Subgoal); has {
				rec.Step = step
				a.Store.Add(rec)
			}
		}
	}
}

// Reset clears per-episode state for reuse.
func (a *Agent) Reset() {
	a.Store.Clear()
	a.lastFailed = nil
	a.loopRepeats = 0
	a.planCooldown = 0
	a.lastShared = -1
	a.lastAnnounced = ""
	a.overlapCredit = 0
}

// StepClock exposes the agent's clock (used by runners to overlap spans in
// parallel mode).
func (a *Agent) StepClock() *simclock.Clock { return a.clock }

// PlanLatencyEstimate reports the deterministic latency of one planning
// call with typical token counts — used by ablation benches.
func (a *Agent) PlanLatencyEstimate(promptTokens int) time.Duration {
	return a.Cfg.Planner.Latency(promptTokens, planning.PlanOutTokens)
}
