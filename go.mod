module embench

go 1.22
