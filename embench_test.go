package embench

import (
	"strings"
	"testing"
	"time"
)

func TestWorkloadsList(t *testing.T) {
	ws := Workloads()
	if len(ws) != 14 {
		t.Fatalf("workloads = %d, want 14", len(ws))
	}
	if ws[0] != "EmbodiedGPT" || ws[13] != "HMAS" {
		t.Fatalf("unexpected ordering: %v", ws)
	}
}

func TestParseDifficulty(t *testing.T) {
	for _, s := range []string{"easy", "Medium", "HARD", ""} {
		if _, err := ParseDifficulty(s); err != nil {
			t.Errorf("ParseDifficulty(%q) = %v", s, err)
		}
	}
	if _, err := ParseDifficulty("impossible"); err == nil {
		t.Fatal("bad difficulty should error")
	}
}

func TestRun(t *testing.T) {
	out, err := Run("JARVIS-1", "easy", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Episode.Steps == 0 || out.Episode.SimDuration == 0 {
		t.Fatalf("empty episode: %+v", out.Episode)
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("NotASystem", "easy", 0, 1); err == nil {
		t.Fatal("unknown workload should error")
	}
	if _, err := Run("CoELA", "nope", 0, 1); err == nil {
		t.Fatal("bad difficulty should error")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, _ := Run("CMAS", "easy", 2, 42)
	b, _ := Run("CMAS", "easy", 2, 42)
	if a.Episode.SimDuration != b.Episode.SimDuration || a.Episode.Steps != b.Episode.Steps {
		t.Fatal("same seed should reproduce the episode")
	}
}

func TestExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	want := []string{"calibrate", "fig10", "fig11", "fig12", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "opts", "table1", "table2"}
	if len(exps) != len(want) {
		t.Fatalf("experiments = %v", exps)
	}
	for i, e := range want {
		if exps[i] != e {
			t.Fatalf("experiments[%d] = %s, want %s", i, exps[i], e)
		}
	}
}

func TestExperimentTables(t *testing.T) {
	t1, err := Experiment("table1", 1, 1)
	if err != nil || !strings.Contains(t1, "RT-2") {
		t.Fatalf("table1: %v", err)
	}
	t2, err := Experiment("table2", 1, 1)
	if err != nil || !strings.Contains(t2, "CoELA") {
		t.Fatalf("table2: %v", err)
	}
}

func TestExperimentFig6Small(t *testing.T) {
	out, err := Experiment("fig6", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "token growth") {
		t.Fatalf("fig6 output unexpected:\n%s", out)
	}
}

func TestExperimentUnknown(t *testing.T) {
	if _, err := Experiment("fig99", 1, 1); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

// TestExperimentFig12InvalidConfig pins the validation surface the CLI
// leans on: bad fig12 axis values must error out of ExperimentFull with a
// clear message, never fall back to a default silently.
func TestExperimentFig12InvalidConfig(t *testing.T) {
	base := ExperimentConfig{Episodes: 1, Seed: 1}
	for name, cfg := range map[string]ExperimentConfig{
		"bad arrival":    {Episodes: 1, Seed: 1, Arrivals: []string{"poisson", "lumpy"}},
		"zero tenants":   {Episodes: 1, Seed: 1, Tenants: []int{8, 0}},
		"neg tenants":    {Episodes: 1, Seed: 1, Tenants: []int{-3}},
		"negative slo":   {Episodes: 1, Seed: 1, SLO: -time.Second},
		"bad autoscale":  {Episodes: 1, Seed: 1, Autoscale: "up=2"},
		"autoscale typo": {Episodes: 1, Seed: 1, Autoscale: "interval=abc"},
	} {
		if _, _, err := ExperimentFull("fig12", cfg); err == nil {
			t.Errorf("%s: ExperimentFull accepted %+v", name, cfg)
		}
	}
	// The valid spellings still run: restricted axes keep the test cheap.
	base.Arrivals = []string{"bursty"}
	base.Tenants = []int{4}
	base.SLO = 45 * time.Second
	base.Autoscale = "interval=20s,cold=5s,min=1"
	out, _, err := ExperimentFull("fig12", base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "bursty") || !strings.Contains(out, "autoscaled") {
		t.Fatalf("fig12 output unexpected:\n%s", out)
	}
}
