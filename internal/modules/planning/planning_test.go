package planning

import (
	"testing"

	"embench/internal/prompt"
)

func TestBuildFullContext(t *testing.T) {
	p := Build(Context{SystemTokens: 200, TaskTokens: 80, MemoryTokens: 500, DialogueTokens: 300, ObsTokens: 120})
	if p.Tokens() != 1200 {
		t.Fatalf("prompt tokens = %d, want 1200", p.Tokens())
	}
	mem, ok := p.Section(SectionMemory)
	if !ok || !mem.Droppable {
		t.Fatal("memory section must exist and be droppable")
	}
	sys, ok := p.Section(SectionSystem)
	if !ok || sys.Droppable {
		t.Fatal("system section must exist and be fixed")
	}
}

func TestBuildSkipsEmptySections(t *testing.T) {
	p := Build(Context{SystemTokens: 100, TaskTokens: 50})
	if len(p.Sections) != 2 {
		t.Fatalf("sections = %d, want 2", len(p.Sections))
	}
	if _, ok := p.Section(SectionDialogue); ok {
		t.Fatal("empty dialogue section should be omitted")
	}
}

func TestTruncationKeepsFixedSections(t *testing.T) {
	p := Build(Context{SystemTokens: 200, TaskTokens: 80, MemoryTokens: 5000, DialogueTokens: 4000, ObsTokens: 120})
	res := prompt.Fit(p, 1000)
	if !res.Truncated {
		t.Fatal("expected truncation")
	}
	for _, name := range []string{SectionSystem, SectionTask, SectionObs} {
		if _, ok := res.Prompt.Section(name); !ok {
			t.Fatalf("fixed section %q lost under truncation", name)
		}
	}
}

func TestOutputBudgetsOrdered(t *testing.T) {
	// Plans are the longest generations; act-selection and primitives the
	// shortest — this ordering drives CoELA's 36.5/16.1/10.3 latency split.
	if !(PlanOutTokens > MessageOutTokens && MessageOutTokens > ReflectOutTokens &&
		ReflectOutTokens > ActSelectOutTokens && ActSelectOutTokens > PrimitiveOutTokens) {
		t.Fatal("output budget ordering violated")
	}
}
