package llm

import (
	"testing"
	"time"

	"embench/internal/rng"
	"embench/internal/simclock"
	"embench/internal/trace"
)

// CompleteBatch edge cases: single-request fallback parity with Complete,
// truncated-prompt batches, and latency-share additivity against the trace.

func TestCompleteBatchSingleParityWithComplete(t *testing.T) {
	// A one-request batch must be bit-identical to the equivalent Complete
	// call: same decision, corruption draw, latency and trace shape.
	req := Request{
		Agent: "a0", Module: trace.Planning, Step: 2, Kind: "plan",
		Prompt: promptOf(1500), OutTokens: 80,
		Good: "g", Corruptions: []any{"b1", "b2"}, Complexity: 0.3,
	}
	runSingle := func(batch bool) (Response, time.Duration, int) {
		clock := simclock.New()
		tr := trace.New()
		c := NewClient(GPT4, rng.New(7).NewStream("llm"), clock, tr)
		var r Response
		if batch {
			r = c.CompleteBatch([]Request{req})[0]
		} else {
			r = c.Complete(req)
		}
		return r, clock.Now(), len(tr.Events)
	}
	br, bclock, bevents := runSingle(true)
	cr, cclock, cevents := runSingle(false)
	if br != cr {
		t.Fatalf("single-request batch response diverged:\n%+v\n%+v", br, cr)
	}
	if bclock != cclock || bevents != cevents {
		t.Fatalf("accounting diverged: clock %v vs %v, events %d vs %d",
			bclock, cclock, bevents, cevents)
	}
}

func TestCompleteBatchTruncatesOverflowingPrompts(t *testing.T) {
	p := GPT4
	p.ContextWindow = 600
	p.JitterFrac = 0
	c := testClient(p, nil, nil)
	reqs := []Request{
		{Prompt: promptOf(100), OutTokens: 50, Good: 1},  // fits
		{Prompt: promptOf(5000), OutTokens: 50, Good: 2}, // must be truncated
		{Prompt: promptOf(4000), OutTokens: 50, Good: 3}, // must be truncated
	}
	resps := c.CompleteBatch(reqs)
	if resps[0].Truncated {
		t.Fatalf("small prompt truncated: %+v", resps[0])
	}
	for i := 1; i < 3; i++ {
		if !resps[i].Truncated {
			t.Fatalf("oversized prompt %d not truncated: %+v", i, resps[i])
		}
		if resps[i].PromptTokens > 550 {
			t.Fatalf("prompt %d not fitted to window: %d tokens", i, resps[i].PromptTokens)
		}
		// The truncation penalty must reach the error channel.
		if resps[i].ErrorP <= resps[0].ErrorP {
			t.Fatalf("truncated request %d should carry a higher pErr: %v vs %v",
				i, resps[i].ErrorP, resps[0].ErrorP)
		}
	}
}

func TestCompleteBatchLatencySharesAdditiveAgainstTrace(t *testing.T) {
	p := GPT4
	p.JitterFrac = 0
	clock := simclock.New()
	tr := trace.New()
	c := testClient(p, tr, clock)
	reqs := make([]Request, 5)
	for i := range reqs {
		reqs[i] = Request{
			Agent: "a0", Module: trace.Planning, Kind: "plan",
			Prompt: promptOf(400 + 100*i), OutTokens: 40 + 10*i, Good: i,
		}
	}
	resps := c.CompleteBatch(reqs)

	// Every request carries an equal share, the clock advanced once by the
	// whole batch latency, and the trace stays additive: summed event
	// latency equals the clock to within integer-division rounding.
	share := resps[0].Latency
	var sum time.Duration
	for i, r := range resps {
		if r.Latency != share {
			t.Fatalf("response %d share %v != %v", i, r.Latency, share)
		}
		sum += r.Latency
	}
	if d := clock.Now() - sum; d < 0 || d >= time.Duration(len(reqs)) {
		t.Fatalf("shares not additive: clock %v, trace sum %v", clock.Now(), sum)
	}
	var traceSum time.Duration
	for _, ev := range tr.Events {
		if ev.Kind != "plan(batched)" || !ev.LLMCall {
			t.Fatalf("unexpected trace event %+v", ev)
		}
		traceSum += ev.Latency
	}
	if traceSum != sum {
		t.Fatalf("trace latency %v != response latency %v", traceSum, sum)
	}
}

func TestCompleteBatchDecodeSlowdownOrdering(t *testing.T) {
	// Batch latency must exceed the longest member served alone (joint
	// decode is not free) while staying under the sequential sum.
	p := GPT4
	p.JitterFrac = 0
	const n, promptTok, outTok = 4, 800, 100
	clock := simclock.New()
	c := testClient(p, nil, clock)
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Prompt: promptOf(promptTok), OutTokens: outTok, Good: i}
	}
	c.CompleteBatch(reqs)
	batched := clock.Now()
	single := p.Latency(promptTok, outTok)
	if batched <= single {
		t.Fatalf("batch of %d (%v) should cost more than one call (%v)", n, batched, single)
	}
	if batched >= time.Duration(n)*single {
		t.Fatalf("batch of %d (%v) should beat %d sequential calls (%v)",
			n, batched, n, time.Duration(n)*single)
	}
}

func TestBatchServiceTimeMatchesClientModel(t *testing.T) {
	p := GPT4
	p.JitterFrac = 0
	got := p.BatchServiceTime(3, 3000, 90)
	want := time.Duration((p.Overhead.Seconds() +
		3000/p.PrefillRate +
		90/p.DecodeRate*(1+BatchDecodeSlowdown*2)) * float64(time.Second))
	if got != want {
		t.Fatalf("BatchServiceTime = %v, want %v", got, want)
	}
	fixed := Profile{FixedLatency: 200 * time.Millisecond, PrefillRate: 1, DecodeRate: 1}
	if fixed.BatchServiceTime(8, 1e6, 1e6) != 200*time.Millisecond {
		t.Fatal("FixedLatency should override the batch token model")
	}
}
