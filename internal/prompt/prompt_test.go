package prompt

import (
	"testing"
	"testing/quick"
)

func build() Prompt {
	return New(
		Section{Name: "system", Tokens: 200},
		Section{Name: "memory", Tokens: 600, Droppable: true},
		Section{Name: "dialogue", Tokens: 400, Droppable: true},
		Section{Name: "task", Tokens: 100},
	)
}

func TestTokens(t *testing.T) {
	if got := build().Tokens(); got != 1300 {
		t.Fatalf("Tokens = %d, want 1300", got)
	}
}

func TestSectionFromText(t *testing.T) {
	s := Section{Name: "obs", Text: "agent sees red box"}
	if s.Size() == 0 {
		t.Fatal("text section has zero size")
	}
	s2 := Section{Name: "obs", Text: "ignored", Tokens: 77}
	if s2.Size() != 77 {
		t.Fatal("explicit Tokens should win over Text")
	}
}

func TestSectionLookup(t *testing.T) {
	p := build()
	if s, ok := p.Section("memory"); !ok || s.Tokens != 600 {
		t.Fatalf("Section lookup = %+v %v", s, ok)
	}
	if _, ok := p.Section("nope"); ok {
		t.Fatal("found non-existent section")
	}
}

func TestAppendDoesNotMutate(t *testing.T) {
	p := build()
	q := p.Append(Section{Name: "extra", Tokens: 50})
	if p.Tokens() != 1300 {
		t.Fatal("Append mutated receiver")
	}
	if q.Tokens() != 1350 {
		t.Fatalf("appended prompt = %d tokens", q.Tokens())
	}
}

func TestFitNoTruncationNeeded(t *testing.T) {
	res := Fit(build(), 2000)
	if res.Truncated || res.DroppedTokens != 0 {
		t.Fatalf("unexpected truncation: %+v", res)
	}
}

func TestFitDropsOldestDroppableFirst(t *testing.T) {
	res := Fit(build(), 1000)
	if !res.Truncated || res.DroppedTokens != 300 {
		t.Fatalf("res = %+v, want 300 dropped", res)
	}
	// memory (first droppable) should shrink from 600 to 300.
	mem, ok := res.Prompt.Section("memory")
	if !ok || mem.Size() != 300 {
		t.Fatalf("memory section after fit = %+v %v", mem, ok)
	}
	if dlg, _ := res.Prompt.Section("dialogue"); dlg.Size() != 400 {
		t.Fatal("dialogue should be untouched when memory absorbs the cut")
	}
}

func TestFitDropsWholeSections(t *testing.T) {
	res := Fit(build(), 500)
	if res.Prompt.Tokens() != 500 {
		t.Fatalf("fit result = %d tokens, want 500", res.Prompt.Tokens())
	}
	if _, ok := res.Prompt.Section("memory"); ok {
		t.Fatal("memory should be fully dropped")
	}
	// Non-droppable sections survive.
	if _, ok := res.Prompt.Section("system"); !ok {
		t.Fatal("system section must survive")
	}
}

func TestFitCannotDropFixed(t *testing.T) {
	res := Fit(build(), 100)
	// system(200)+task(100) remain; result exceeds limit but is flagged.
	if res.Prompt.Tokens() != 300 || !res.Truncated {
		t.Fatalf("res = %+v", res)
	}
}

func TestFitProperty(t *testing.T) {
	// Property: Fit never increases size and never drops fixed sections.
	f := func(sizes []uint8, limit uint16) bool {
		var secs []Section
		fixed := 0
		for i, sz := range sizes {
			droppable := i%2 == 0
			tok := int(sz) + 1
			if !droppable {
				fixed += tok
			}
			secs = append(secs, Section{Name: "s", Tokens: tok, Droppable: droppable})
		}
		p := New(secs...)
		res := Fit(p, int(limit))
		if res.Prompt.Tokens() > p.Tokens() {
			return false
		}
		got := 0
		for _, s := range res.Prompt.Sections {
			if !s.Droppable {
				got += s.Size()
			}
		}
		return got == fixed
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompressor(t *testing.T) {
	c := Compressor{Ratio: 0.25, Threshold: 100}
	p, removed := c.Compress(build())
	// memory 600 -> 150, dialogue 400 -> 100; system/task untouched.
	if removed != 750 {
		t.Fatalf("removed = %d, want 750", removed)
	}
	if p.Tokens() != 550 {
		t.Fatalf("compressed size = %d, want 550", p.Tokens())
	}
}

func TestCompressorPassThrough(t *testing.T) {
	c := Compressor{Ratio: 0, Threshold: 0}
	p, removed := c.Compress(build())
	if removed != 0 || p.Tokens() != 1300 {
		t.Fatal("disabled compressor should pass through")
	}
}

func TestCompressorRespectsMin(t *testing.T) {
	c := Compressor{Ratio: 0.01, Threshold: 10, MinTokens: 40}
	p, _ := c.Compress(New(Section{Name: "d", Tokens: 500, Droppable: true}))
	if p.Tokens() != 40 {
		t.Fatalf("compressed below MinTokens: %d", p.Tokens())
	}
}

func TestMultipleChoice(t *testing.T) {
	mc := MultipleChoice{Options: 4, ErrorDiscount: 0.45}
	p, out := mc.Apply(build(), 150)
	if out != 8 {
		t.Fatalf("output budget = %d, want 8", out)
	}
	if p.Tokens() != 1300+4*24 {
		t.Fatalf("prompt size = %d", p.Tokens())
	}
}

func TestMultipleChoiceSmallOutput(t *testing.T) {
	mc := MultipleChoice{Options: 3}
	_, out := mc.Apply(build(), 5)
	if out != 5 {
		t.Fatalf("output budget should not grow: %d", out)
	}
}

func TestSectionDigest(t *testing.T) {
	// Token-count-only sections: digest is a pure function of (name, size),
	// matching the shape identity's equivalence classes.
	a := Section{Name: "hist", Tokens: 120}
	if a.Digest() != (Section{Name: "hist", Tokens: 120}).Digest() {
		t.Fatal("equal token-only sections must digest equal")
	}
	if a.Digest() == (Section{Name: "hist", Tokens: 121}).Digest() {
		t.Fatal("different sizes must digest differently")
	}
	if a.Digest() == (Section{Name: "memo", Tokens: 120}).Digest() {
		t.Fatal("different names must digest differently")
	}
	// Name/content boundary: ("ab","c...") must not collide with ("a","bc...").
	if (Section{Name: "ab", Text: "cd"}).Digest() == (Section{Name: "a", Text: "bcd"}).Digest() {
		t.Fatal("name/text boundary collision")
	}
	// Text sections: content decides, not size.
	x := Section{Name: "hist", Text: "pick up the red block"}
	y := Section{Name: "hist", Text: "pick up the big block"}
	if x.Size() != y.Size() {
		t.Fatalf("fixture should be same-size: %d vs %d", x.Size(), y.Size())
	}
	if x.Digest() == y.Digest() {
		t.Fatal("same-size different-text sections must digest differently")
	}
	if x.Digest() != (Section{Name: "hist", Text: "pick up the red block"}).Digest() {
		t.Fatal("identical text must digest equal (reconvergence)")
	}
	// Tokens wins over Text for Size, and the digest folds that effective
	// size: same text claimed at different token counts must not share
	// identity (a match would credit more cached tokens than are resident).
	both := Section{Name: "hist", Text: "pick up the red block", Tokens: 100}
	if both.Digest() == (Section{Name: "hist", Text: "pick up the red block", Tokens: 500}).Digest() {
		t.Fatal("same text with different explicit Tokens must digest differently")
	}
	if both.Digest() == x.Digest() {
		t.Fatal("explicit Tokens override must change the digest when it changes Size")
	}
}
