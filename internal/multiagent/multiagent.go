// Package multiagent drives episodes under the paper's four execution
// paradigms: single-agent modular (Fig. 1b), single-agent end-to-end
// (Fig. 1c), multi-agent centralized (Fig. 1d) and multi-agent
// decentralized (Fig. 1e), plus the hierarchical-cluster variant of
// Rec. 9.
//
// Runners own the virtual clock and the trace. Per-agent work is timed on
// per-agent clocks and folded into the episode timeline either
// sequentially (the paper's baseline pipelines) or in parallel
// (the Takeaway-6 optimization).
package multiagent

import (
	"reflect"
	"time"

	"embench/internal/core"
	"embench/internal/llm"
	"embench/internal/metrics"
	"embench/internal/modules/comms"
	"embench/internal/modules/memory"
	"embench/internal/rng"
	"embench/internal/serve"
	"embench/internal/serve/obs"
	"embench/internal/simclock"
	"embench/internal/trace"
)

// Options tune a run.
type Options struct {
	// Seed roots all randomness; equal seeds give identical episodes.
	Seed uint64
	// Parallel overlaps independent per-agent spans within a step instead
	// of serializing them (Takeaway 6).
	Parallel bool
	// Rounds computes dialogue rounds per step from team size for
	// decentralized systems; nil = 1 + (n-1)/4 (the paper observes rounds
	// grow with the team).
	Rounds func(agents int) int
	// ClusterSize > 0 enables hierarchical cooperation (Rec. 9): dialogue
	// is scoped to clusters of this size, with only cluster heads
	// exchanging digests across clusters.
	ClusterSize int
	// Serve routes every agent's LLM traffic through one shared serving
	// endpoint (queueing, continuous batching, prefix cache — see
	// internal/serve) instead of a dedicated per-client deployment. A zero
	// Profile inside defaults to the workload's planner profile. nil = off.
	Serve *serve.Config
	// Backend attaches an externally owned serving backend (a
	// serve.FleetClient when many episodes share one deployment) instead
	// of building a per-episode endpoint from Serve. Takes precedence over
	// Serve. The caller owns the backend's lifecycle; the episode only
	// routes its LLM calls through it and reads its serving stats at
	// finish.
	Backend llm.Backend
	// Sink attaches a flight-recorder sink (internal/serve/obs) to the
	// per-episode endpoint built from Serve, recording the full request
	// lifecycle — submit, route, batch, cache, complete. Ignored when
	// Backend is set (attach the sink to the externally owned fleet
	// instead) or when Serve is nil (direct serving has no endpoint).
	// nil = off, the zero-cost default.
	Sink obs.Sink
	// Aggregate turns on step-phase query aggregation (Rec. 1 end to end)
	// in decentralized runners: all agents' plan calls of a step — and
	// their act-select follow-ups — are collected into one explicit
	// serving batch (llm.CompleteBatchMulti) instead of being issued
	// per-agent and relying on the endpoint's join window to coalesce
	// them. RNG streams stay aligned with the per-agent path; the whole
	// team now plans before anyone acts, so the only decision input that
	// can shift is belief staleness (assessed at the step's start for all
	// agents instead of mid-step).
	Aggregate bool
	// Pipeline turns on the async agent pipeline for every agent in the
	// run (core.AgentConfig.Pipeline): each plan/act-select call's decode
	// window is credited against the agent's next-step sensing and
	// retrieval charges. Latency accounting only — decisions and
	// submission order are identical with it off.
	Pipeline bool
}

// servingStats is the seam finish() reads episode serving statistics
// through; serve.Endpoint and serve.FleetClient both implement it.
type servingStats interface {
	ServingStats() metrics.Serving
}

// newEndpoint attaches the episode's serving backend to cfg and returns
// the stats source to read at finish (nil when serving is direct). With
// opt.Backend set, the externally owned backend (e.g. a fleet client) is
// used as-is; otherwise opt.Serve builds a fresh per-episode endpoint —
// an endpoint carries timeline state, and per-episode construction is
// what keeps parallel episode runs bit-identical to sequential ones.
func (o Options) newEndpoint(cfg *core.AgentConfig) servingStats {
	cfg.Pipeline = cfg.Pipeline || o.Pipeline
	if o.Backend != nil {
		cfg.Backend = o.Backend
		if s, ok := o.Backend.(servingStats); ok {
			return s
		}
		return nil
	}
	if o.Serve == nil {
		return nil
	}
	sc := *o.Serve
	if sc.Profile.Name == "" {
		sc.Profile = cfg.Planner
	}
	ep := serve.New(sc)
	if o.Sink != nil {
		ep.SetSink(o.Sink)
	}
	cfg.Backend = ep
	return ep
}

func (o Options) rounds(n int) int {
	if o.Rounds != nil {
		return o.Rounds(n)
	}
	if n <= 1 {
		return 0
	}
	return 1 + (n-1)/4
}

// Outcome bundles an episode's metrics with its full trace.
type Outcome struct {
	Episode metrics.Episode
	Trace   *trace.Trace
}

// finish reduces the run into an Outcome. The episode duration comes from
// the runner's timeline clock, which respects parallel overlap; serving
// statistics (nil when serving direct) ride along in the episode — for a
// fleet episode they are the episode's own share of the shared endpoint's
// traffic.
func finish(d core.Domain, tr *trace.Trace, clock *simclock.Clock, stats servingStats) Outcome {
	success := d.Success()
	reachedLimit := !success && d.Step() >= d.MaxSteps()
	ep := metrics.FromTrace(tr, success, reachedLimit, d.Step())
	ep.SimDuration = clock.Now()
	if stats != nil {
		ep.Serving = stats.ServingStats()
	}
	return Outcome{Episode: ep, Trace: tr}
}

// agentSet builds one core.Agent per domain agent, each on its own clock.
type agentSet struct {
	agents []*core.Agent
	clocks []*simclock.Clock
	marks  []time.Duration
}

func newAgentSet(n int, cfg core.AgentConfig, src *rng.Source, tr *trace.Trace) *agentSet {
	s := &agentSet{marks: make([]time.Duration, n)}
	for i := 0; i < n; i++ {
		c := simclock.New()
		s.clocks = append(s.clocks, c)
		s.agents = append(s.agents, core.NewAgent(i, cfg, src, c, tr))
	}
	return s
}

// beginPhase snapshots every agent clock.
func (s *agentSet) beginPhase() {
	for i, c := range s.clocks {
		s.marks[i] = c.Now()
	}
}

// endPhase folds the per-agent deltas into the timeline: sum when
// sequential, max when parallel.
func (s *agentSet) endPhase(timeline *simclock.Clock, parallel bool) {
	var deltas []time.Duration
	for i, c := range s.clocks {
		deltas = append(deltas, c.Now()-s.marks[i])
	}
	if parallel {
		timeline.AdvanceParallel(deltas...)
		return
	}
	for _, d := range deltas {
		timeline.Advance(d)
	}
}

// hasEquivalent reports whether the store already holds this fact in the
// same or a fresher version.
func hasEquivalent(s *memory.Store, r memory.Record) bool {
	if r.Key == "" {
		return false
	}
	prev, ok := s.Latest(r.Key)
	if !ok || prev.Step < r.Step {
		return false
	}
	return reflect.DeepEqual(prev.Payload, r.Payload)
}

// deliver routes messages to their recipients: checks novelty against each
// receiver's memory, stores the records as dialogue, and returns whether
// any receiver learned something.
func deliver(msg comms.Message, recipients []*core.Agent) bool {
	useful := false
	for _, recv := range recipients {
		if recv.ID == msg.From {
			continue
		}
		var known func(memory.Record) bool
		switch store := recv.Store.(type) {
		case *memory.Store:
			if comms.Novel(msg, store) {
				useful = true
			}
			known = func(r memory.Record) bool { return hasEquivalent(store, r) }
		case *memory.Dual:
			if comms.Novel(msg, store.Short) || comms.Novel(msg, store.Long) {
				useful = true
			}
			known = func(r memory.Record) bool {
				return hasEquivalent(store.Short, r) || hasEquivalent(store.Long, r)
			}
		default:
			useful = true
			known = func(memory.Record) bool { return false }
		}
		for _, r := range msg.Records {
			// Deduplicate: with broadcast dialogue every agent hears the
			// same fact from everyone; storing each copy would bloat both
			// retrieval latency and prompt tokens beyond the content.
			if known(r) {
				continue
			}
			dl := r
			dl.Kind = memory.Dialogue
			dl.Step = msg.Step
			recv.Store.Add(dl)
		}
	}
	return useful
}
