// Package runner is the episode orchestrator: it fans batches of episode
// specifications out over a bounded worker pool while keeping results
// byte-identical to a sequential run.
//
// # Independent episodes (Run, Batch)
//
// Episodes are embarrassingly parallel — each one owns its domain, agents,
// clocks and trace, and all randomness is rooted in the spec's seed — so the
// only work the runner does is scheduling: specs are dispatched to
// Parallelism workers and results are written back into submission-order
// slots, making completion order invisible to callers. Seeds are derived
// with the suite's historical rootSeed + i*SeedStride scheme, so a parallel
// run of a batch reproduces the sequential run bit for bit.
//
// # Fleet episodes (RunFleet, RunFleets)
//
// A FleetGroup breaks the independence on purpose: its episodes attach to
// one shared serve.Fleet — or, sharded, to K independent fleets —
// contending for the same replicas, admission queue and prefix caches:
// the cross-episode serving regime the paper's scalability
// recommendations target. The episodes of a group MUST run concurrently
// (the fleet's conservative virtual-time merge blocks an episode's LLM
// call until every other live episode of its shard reveals its next
// request), so RunFleet gives each episode its own goroutine regardless
// of worker-pool settings; large groups are activation-gated so only
// ~GOMAXPROCS of those goroutines execute episode code at any moment
// (arrival-driven episode activation — see FleetGroup.Activation), and
// parallelism applies between groups, which stay independent.
// Determinism survives all of it: the merge orders requests by (virtual
// arrival, episode index), never by goroutine schedule, so fleet results
// are byte-identical across reruns, any parallelism level, and any
// activation bound.
//
// The bench package routes every figure and table regeneration through
// this package; future sharding/async work builds on the same EpisodeSpec
// vocabulary.
package runner

import (
	"context"
	"runtime"
	"sync"

	"embench/internal/core"
	"embench/internal/metrics"
	"embench/internal/multiagent"
	"embench/internal/systems"
	"embench/internal/trace"
	"embench/internal/world"
)

// SeedStride separates consecutive episode seeds within a batch. The large
// prime keeps per-episode RNG streams from overlapping across the suite's
// root-seed space; it is load-bearing for reproducibility and must not
// change without regenerating every recorded experiment.
const SeedStride = 1000003

// EpisodeSeed derives episode i's seed from a batch root seed.
func EpisodeSeed(root uint64, i int) uint64 {
	return root + uint64(i)*SeedStride
}

// Mutation rewrites a workload's agent configuration before an episode
// runs (ablations, model swaps, optimization variants). It receives a
// private copy of the config, so mutations never leak across episodes or
// batches.
type Mutation func(*core.AgentConfig)

// EpisodeSpec fully describes one episode: which workload, at which
// difficulty and team size, under which config mutation and runner
// options, rooted at which seed. A spec is self-contained and immutable
// once built — two runs of the same spec produce identical outcomes.
type EpisodeSpec struct {
	Workload   systems.Workload
	Difficulty world.Difficulty
	Agents     int
	Mutation   Mutation
	Options    multiagent.Options // Options.Seed is overridden by Seed
	Seed       uint64
}

// run executes the spec on a private workload copy.
func (s EpisodeSpec) run() multiagent.Outcome {
	w := s.Workload
	if s.Mutation != nil {
		s.Mutation(&w.Config)
	}
	o := s.Options
	o.Seed = s.Seed
	return w.Run(s.Difficulty, s.Agents, o)
}

// Specs expands one configuration into a batch of episode specs, deriving
// each episode's seed as EpisodeSeed(seed, i) — the suite's historical
// scheme, so runner batches reproduce the old sequential loops exactly.
func Specs(w systems.Workload, diff world.Difficulty, agents int,
	mut Mutation, opt multiagent.Options, episodes int, seed uint64) []EpisodeSpec {

	specs := make([]EpisodeSpec, episodes)
	for i := range specs {
		specs[i] = EpisodeSpec{
			Workload:   w,
			Difficulty: diff,
			Agents:     agents,
			Mutation:   mut,
			Options:    opt,
			Seed:       EpisodeSeed(seed, i),
		}
	}
	return specs
}

// DefaultParallelism is the worker count used when a caller asks for
// hardware-sized fan-out: one worker per schedulable CPU.
func DefaultParallelism() int {
	return runtime.GOMAXPROCS(0)
}

// Run executes specs and returns their episodes and traces in submission
// order, regardless of completion order.
//
// parallelism <= 1 runs sequentially on the calling goroutine — the
// degenerate fallback that defines the reference result ordering. Larger
// values fan out over that many workers (capped at len(specs)). Because
// every episode is deterministic in its spec, both paths return identical
// results.
//
// Cancellation: when ctx is cancelled mid-batch, dispatch stops, in-flight
// episodes drain, and Run returns (nil, nil, ctx.Err()). Partial results
// are never returned — callers either get the full batch or an error.
func Run(ctx context.Context, specs []EpisodeSpec, parallelism int) ([]metrics.Episode, []*trace.Trace, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(specs)
	eps := make([]metrics.Episode, n)
	traces := make([]*trace.Trace, n)

	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := range specs {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			out := specs[i].run()
			eps[i], traces[i] = out.Episode, out.Trace
		}
		return eps, traces, nil
	}

	// Workers pull spec indices and write results into their own slot;
	// submission order is preserved by construction.
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out := specs[i].run()
				eps[i], traces[i] = out.Episode, out.Trace
			}
		}()
	}

	var err error
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	if err != nil {
		return nil, nil, err
	}
	return eps, traces, nil
}

// Batch is the one-call form used by the bench layer: expand one
// configuration into episode specs and run them at the given parallelism.
func Batch(ctx context.Context, w systems.Workload, diff world.Difficulty, agents int,
	mut Mutation, opt multiagent.Options, episodes int, seed uint64,
	parallelism int) ([]metrics.Episode, []*trace.Trace, error) {

	return Run(ctx, Specs(w, diff, agents, mut, opt, episodes, seed), parallelism)
}
