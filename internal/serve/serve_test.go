package serve

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"embench/internal/llm"
	"embench/internal/prompt"
)

// noJitter is a deterministic test profile: 1s overhead, 1000 tok/s
// prefill, 10 tok/s decode.
var noJitter = llm.Profile{
	Name: "test", Overhead: time.Second, PrefillRate: 1000, DecodeRate: 10,
	ContextWindow: 8192, Capability: 0.9,
}

func sharedPrompt(agent string, extra int) prompt.Prompt {
	return prompt.New(
		prompt.Section{Name: "system", Tokens: 200},
		prompt.Section{Name: "task", Tokens: 100},
		prompt.Section{Name: "mem-" + agent, Tokens: extra, Droppable: true},
	)
}

// trace builds n request streams of `steps` calls each, one call per
// period, staggered a little per agent.
func testTrace(n, steps int, period, stagger time.Duration) []Request {
	var reqs []Request
	for s := 0; s < steps; s++ {
		for a := 0; a < n; a++ {
			reqs = append(reqs, Request{
				Agent:     fmt.Sprintf("agent%d", a),
				Arrival:   time.Duration(s)*period + time.Duration(a)*stagger,
				Prompt:    sharedPrompt(fmt.Sprintf("a%d", a), 50+10*s),
				OutTokens: 50,
			})
		}
	}
	return reqs
}

func TestReplayDeterministic(t *testing.T) {
	cfg := Config{Profile: noJitter, Replicas: 2, MaxBatch: 4, MaxWait: time.Second, CacheEntries: 64}
	reqs := testTrace(4, 5, 8*time.Second, 200*time.Millisecond)
	a, b := Replay(cfg, reqs), Replay(cfg, reqs)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical replays diverged")
	}
}

func TestReplayQueueWaitGrowsWithStreams(t *testing.T) {
	cfg := Config{Profile: noJitter, Replicas: 1, MaxBatch: 1}
	var prev time.Duration
	for _, n := range []int{1, 2, 4, 8} {
		res := Replay(cfg, testTrace(n, 4, 8*time.Second, 200*time.Millisecond))
		wait := res.Stats.MeanQueueWait()
		if n > 1 && wait <= prev {
			t.Fatalf("queue wait should grow with streams: %d streams → %v (prev %v)", n, wait, prev)
		}
		prev = wait
	}
}

func TestReplayReplicasShrinkQueueWait(t *testing.T) {
	reqs := testTrace(8, 4, 8*time.Second, 200*time.Millisecond)
	var prev time.Duration
	for i, replicas := range []int{1, 2, 4} {
		cfg := Config{Profile: noJitter, Replicas: replicas, MaxBatch: 1}
		wait := Replay(cfg, reqs).Stats.MeanQueueWait()
		if i > 0 && wait >= prev {
			t.Fatalf("queue wait should shrink with replicas: %d → %v (prev %v)", replicas, wait, prev)
		}
		prev = wait
	}
}

func TestReplayBatchingShrinksQueueWaitAndRaisesOccupancy(t *testing.T) {
	reqs := testTrace(8, 4, 8*time.Second, 200*time.Millisecond)
	seq := Replay(Config{Profile: noJitter, Replicas: 1, MaxBatch: 1}, reqs)
	bat := Replay(Config{Profile: noJitter, Replicas: 1, MaxBatch: 4, MaxWait: time.Second}, reqs)
	if bat.Stats.MeanQueueWait() >= seq.Stats.MeanQueueWait() {
		t.Fatalf("batching should cut queue wait: %v vs %v",
			bat.Stats.MeanQueueWait(), seq.Stats.MeanQueueWait())
	}
	if occ := bat.Stats.BatchOccupancy(); occ <= 1.2 {
		t.Fatalf("batch occupancy = %.2f, want > 1.2", occ)
	}
	if seq.Stats.BatchOccupancy() != 1 {
		t.Fatalf("unbatched occupancy = %.2f, want exactly 1", seq.Stats.BatchOccupancy())
	}
	if bat.Makespan >= seq.Makespan {
		t.Fatalf("batching should shorten the makespan: %v vs %v", bat.Makespan, seq.Makespan)
	}
	if bat.Throughput() <= seq.Throughput() {
		t.Fatal("batching should raise throughput")
	}
}

func TestReplayPrefixCacheHits(t *testing.T) {
	reqs := testTrace(4, 4, 8*time.Second, 200*time.Millisecond)
	off := Replay(Config{Profile: noJitter, Replicas: 1, MaxBatch: 1}, reqs)
	if off.Stats.CacheHitRate() != 0 {
		t.Fatalf("cache disabled but hit rate = %v", off.Stats.CacheHitRate())
	}
	on := Replay(Config{Profile: noJitter, Replicas: 1, MaxBatch: 1, CacheEntries: 256}, reqs)
	// All requests share the 300-token system+task prefix; everything after
	// the first should hit it.
	if hr := on.Stats.CacheHitRate(); hr < 0.3 || hr >= 1 {
		t.Fatalf("cache hit rate = %.2f, want substantial but partial", hr)
	}
	if on.Stats.MeanQueueWait() > off.Stats.MeanQueueWait() {
		t.Fatal("cache hits should never increase queueing")
	}
}

func TestReplayPriorityClassesServeFirst(t *testing.T) {
	// Two requests arrive while the replica is busy; the high-priority
	// (lower value) one must start first despite arriving later.
	mk := func(agent string, at time.Duration, prio int) Request {
		return Request{Agent: agent, Arrival: at, Priority: prio,
			Prompt: sharedPrompt(agent, 10), OutTokens: 50}
	}
	reqs := []Request{
		mk("first", 0, 0),
		mk("low", time.Second, 1),
		mk("high", 2*time.Second, 0),
	}
	res := Replay(Config{Profile: noJitter, Replicas: 1, MaxBatch: 1}, reqs)
	if res.Completions[2].Start >= res.Completions[1].Start {
		t.Fatalf("high-priority request should start before the low-priority one: %v vs %v",
			res.Completions[2].Start, res.Completions[1].Start)
	}
}

// TestReplayArrivalTieBreak pins the admission order of colliding
// arrivals — the case generated multi-tenant traffic produces routinely,
// unlike hand-built schedules. Equal-arrival requests enter in (priority,
// submission index) order, regardless of how they interleave in the trace.
func TestReplayArrivalTieBreak(t *testing.T) {
	mk := func(agent string, at time.Duration, prio int) Request {
		return Request{Agent: agent, Arrival: at, Priority: prio,
			Prompt: sharedPrompt(agent, 10), OutTokens: 50}
	}
	// Two tenants collide at t=0 and again at t=5s; tenant B is submitted
	// first at the second collision but tenant A outranks it there.
	reqs := []Request{
		mk("tenantA-0", 0, 0),             // index 0: ties with index 1 → first
		mk("tenantB-0", 0, 0),             // index 1
		mk("tenantB-1", 5*time.Second, 1), // index 2: loses the t=5s tie on priority
		mk("tenantA-1", 5*time.Second, 0), // index 3
	}
	res := Replay(Config{Profile: noJitter, Replicas: 1, MaxBatch: 1}, reqs)
	if res.Completions[0].Start > res.Completions[1].Start {
		t.Fatalf("t=0 tie broke against submission order: A starts %v, B starts %v",
			res.Completions[0].Start, res.Completions[1].Start)
	}
	if res.Completions[3].Start >= res.Completions[2].Start {
		t.Fatalf("t=5s tie broke against priority: high-prio A starts %v, low-prio B starts %v",
			res.Completions[3].Start, res.Completions[2].Start)
	}
	// The order is a property of the trace, not of sort internals: a
	// permuted trace with the same (arrival, priority, per-tenant sequence)
	// content serves tenants' request streams at the same times.
	if again := Replay(Config{Profile: noJitter, Replicas: 1, MaxBatch: 1}, reqs); !reflect.DeepEqual(res, again) {
		t.Fatal("colliding-arrival replay not deterministic")
	}
}

func TestReplayEmptyAndSingle(t *testing.T) {
	if res := Replay(Config{Profile: noJitter}, nil); len(res.Completions) != 0 || res.Stats.Requests != 0 {
		t.Fatalf("empty replay = %+v", res)
	}
	res := Replay(Config{Profile: noJitter}, testTrace(1, 1, time.Second, 0))
	if len(res.Completions) != 1 || res.Completions[0].QueueWait != 0 {
		t.Fatalf("single replay = %+v", res.Completions)
	}
	if res.Makespan != res.Completions[0].Done {
		t.Fatal("makespan should equal the only completion")
	}
}

func TestReplayCompletionAccounting(t *testing.T) {
	reqs := testTrace(3, 3, 8*time.Second, 100*time.Millisecond)
	res := Replay(Config{Profile: noJitter, Replicas: 1, MaxBatch: 2, MaxWait: time.Second}, reqs)
	if len(res.Completions) != len(reqs) {
		t.Fatalf("%d completions for %d requests", len(res.Completions), len(reqs))
	}
	for i, c := range res.Completions {
		if c.Start < c.Arrival || c.Done <= c.Start {
			t.Fatalf("completion %d out of order: %+v", i, c)
		}
		if c.QueueWait != c.Start-c.Arrival {
			t.Fatalf("completion %d queue wait mismatch: %+v", i, c)
		}
		if c.BatchSize < 1 || c.BatchSize > 2 {
			t.Fatalf("completion %d batch size %d", i, c.BatchSize)
		}
	}
}

func TestSyncServeQueuesOverlappingArrivals(t *testing.T) {
	e := New(Config{Profile: noJitter, Replicas: 1})
	call := func(at time.Duration) llm.Served {
		return e.Serve(llm.Call{Agent: "a", Arrival: at,
			Prompt: sharedPrompt("a", 20), PromptTokens: 320, OutTokens: 50})
	}
	first := call(0)
	if first.QueueWait != 0 {
		t.Fatalf("first call queued: %+v", first)
	}
	second := call(time.Second) // replica still busy with the first
	if second.QueueWait <= 0 {
		t.Fatalf("overlapping call should queue: %+v", second)
	}
	third := call(first.Latency + second.Latency + 10*time.Second) // idle again
	if third.QueueWait != 0 {
		t.Fatalf("idle-endpoint call should not queue: %+v", third)
	}
}

func TestSyncServeReplicasAbsorbContention(t *testing.T) {
	wait := func(replicas int) time.Duration {
		e := New(Config{Profile: noJitter, Replicas: replicas})
		var total time.Duration
		for i := 0; i < 6; i++ {
			s := e.Serve(llm.Call{Agent: "a", Arrival: 0,
				Prompt: sharedPrompt("a", 20), PromptTokens: 320, OutTokens: 50})
			total += s.QueueWait
		}
		return total
	}
	if wait(4) >= wait(1) {
		t.Fatal("more replicas should absorb simultaneous arrivals")
	}
}

func TestSyncServeJoinWindowBatches(t *testing.T) {
	e := New(Config{Profile: noJitter, Replicas: 1, MaxBatch: 4, MaxWait: 2 * time.Second})
	first := e.Serve(llm.Call{Agent: "a0", Arrival: 0,
		Prompt: sharedPrompt("a0", 20), PromptTokens: 320, OutTokens: 50})
	// Arrives inside the join window: batches with the first instead of
	// queueing behind it.
	second := e.Serve(llm.Call{Agent: "a1", Arrival: time.Second,
		Prompt: sharedPrompt("a1", 20), PromptTokens: 320, OutTokens: 50})
	if second.QueueWait != 0 {
		t.Fatalf("joiner should not queue: %+v", second)
	}
	if second.Latency >= first.Latency+second.QueueWait+first.Latency {
		t.Fatal("joiner should ride the in-flight batch, not serialize")
	}
	if occ := e.Stats().BatchOccupancy(); occ <= 1 {
		t.Fatalf("occupancy = %.2f after a join", occ)
	}
	// Outside the window: a new batch that queues behind the old one.
	third := e.Serve(llm.Call{Agent: "a2", Arrival: 4 * time.Second,
		Prompt: sharedPrompt("a2", 20), PromptTokens: 320, OutTokens: 50})
	if third.QueueWait <= 0 {
		t.Fatalf("late call should queue, not join: %+v", third)
	}
}

func TestSyncServeDeterministic(t *testing.T) {
	run := func() []llm.Served {
		e := New(Config{Profile: noJitter, Replicas: 2, MaxBatch: 4,
			MaxWait: time.Second, CacheEntries: 32})
		var out []llm.Served
		for i := 0; i < 20; i++ {
			out = append(out, e.Serve(llm.Call{
				Agent:        fmt.Sprintf("a%d", i%4),
				Arrival:      time.Duration(i) * 700 * time.Millisecond,
				Prompt:       sharedPrompt(fmt.Sprintf("a%d", i%4), 30+i),
				PromptTokens: 330 + i, OutTokens: 50,
			}))
		}
		return out
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("sync serving diverged across identical runs")
	}
}

func TestEndpointReset(t *testing.T) {
	e := New(Config{Profile: noJitter, Replicas: 1, CacheEntries: 16})
	e.Serve(llm.Call{Agent: "a", Arrival: 0, Prompt: sharedPrompt("a", 10), OutTokens: 20})
	if e.Stats().Requests != 1 {
		t.Fatal("request not recorded")
	}
	e.Reset()
	s := e.Stats()
	if s.Requests != 0 || s.QueueWait != 0 || s.Replicas != 1 {
		t.Fatalf("reset left stats behind: %+v", s)
	}
	after := e.Serve(llm.Call{Agent: "a", Arrival: 0, Prompt: sharedPrompt("a", 10), OutTokens: 20})
	if after.QueueWait != 0 || after.CachedTokens != 0 {
		t.Fatalf("reset left timeline or cache behind: %+v", after)
	}
}

func TestPrefixCacheMatchStopsAtFirstMiss(t *testing.T) {
	c := newPrefixCache(64, 0)
	shared := prompt.New(
		prompt.Section{Name: "system", Tokens: 100},
		prompt.Section{Name: "task", Tokens: 50},
		prompt.Section{Name: "obs", Tokens: 30},
	)
	c.insert(shared)
	// Same system/task prefix, diverging observation: only the prefix hits.
	diverged := prompt.New(
		prompt.Section{Name: "system", Tokens: 100},
		prompt.Section{Name: "task", Tokens: 50},
		prompt.Section{Name: "obs", Tokens: 31},
	)
	if got := c.match(diverged); got != 150 {
		t.Fatalf("prefix match = %d tokens, want 150", got)
	}
	// Diverging first section: nothing hits, later identical sections
	// cannot resurrect the chain.
	head := prompt.New(
		prompt.Section{Name: "system", Tokens: 101},
		prompt.Section{Name: "task", Tokens: 50},
	)
	if got := c.match(head); got != 0 {
		t.Fatalf("diverged-head match = %d tokens, want 0", got)
	}
	if got := c.match(shared); got != 180 {
		t.Fatalf("full match = %d tokens, want 180", got)
	}
}

func TestPrefixCacheLRUEviction(t *testing.T) {
	c := newPrefixCache(2, 0)
	pA := prompt.New(prompt.Section{Name: "a", Tokens: 10})
	pB := prompt.New(prompt.Section{Name: "b", Tokens: 10})
	pC := prompt.New(prompt.Section{Name: "c", Tokens: 10})
	c.insert(pA)
	c.insert(pB)
	c.insert(pA) // refresh A; B is now the LRU entry
	c.insert(pC) // evicts B
	if c.match(pB) != 0 {
		t.Fatal("LRU entry should have been evicted")
	}
	if c.match(pA) == 0 || c.match(pC) == 0 {
		t.Fatal("recently used entries should survive")
	}
	if len(c.entries) > 2 {
		t.Fatalf("cache over capacity: %d entries", len(c.entries))
	}
}

func TestConfigDefaults(t *testing.T) {
	e := New(Config{})
	cfg := e.Config()
	if cfg.Replicas != 1 || cfg.MaxBatch != 1 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.CachedPrefillFrac != 0.1 {
		t.Fatalf("CachedPrefillFrac default = %v", cfg.CachedPrefillFrac)
	}
}

// BenchmarkReplay is the serving-simulator perf smoke: 8 streams × 32
// steps through a batched two-replica endpoint.
func BenchmarkReplay(b *testing.B) {
	cfg := Config{Profile: noJitter, Replicas: 2, MaxBatch: 4,
		MaxWait: time.Second, CacheEntries: 256}
	reqs := testTrace(8, 32, 8*time.Second, 200*time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Replay(cfg, reqs)
	}
}
