package serve

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"embench/internal/serve/obs"
)

// Autoscale is a clock-driven replica autoscaling policy for an Endpoint
// (and, through it, Fleet/ShardedFleet). The zero value disables
// autoscaling entirely: every replica stays active and the endpoint's
// behaviour is byte-identical to the fixed-replica model — the policy is
// strictly additive on the default path.
//
// When enabled, the endpoint evaluates utilization on a fixed virtual-time
// clock (every Interval): the fraction of active-replica time spent inside
// batches over the last window. Above UpUtil it activates parked replicas
// proportionally (each paying a ColdStart warm-up before taking traffic,
// with a cold prefix cache); below DownUtil it retires one idle replica,
// flushing its prefix cache — the flushed warm tokens are priced as
// capacity evictions (prefixCache.flush), so scale-down's KV-state loss
// shows up in EvictedTokens exactly like LRU pressure does.
//
// Like everything else in the package the policy is driven by virtual
// time: in open-loop replay the evaluation clock is part of the event
// loop, in closed-loop serving it is advanced by the arrival watermark.
// Decisions are pure functions of endpoint state, so autoscaled runs are
// byte-identical across reruns and worker counts.
type Autoscale struct {
	// Interval is the evaluation clock period; <= 0 disables autoscaling.
	Interval time.Duration
	// ColdStart delays a newly activated replica before it may serve
	// (model load / KV allocator warm-up). Its cache starts cold.
	ColdStart time.Duration
	// UpUtil / DownUtil are the window-utilization thresholds: scale up
	// above UpUtil (default 0.7), retire one idle replica below DownUtil
	// (default 0.25).
	UpUtil   float64
	DownUtil float64
	// Min / Max bound the active-replica count. Min defaults to 1; Max
	// defaults to (and is clamped by) Config.Replicas — the endpoint's
	// replica slice is the pool scaling draws from.
	Min, Max int
}

// enabled reports whether the policy does anything.
func (a Autoscale) enabled() bool { return a.Interval > 0 }

// withDefaults fills zero fields and clamps the bounds to the replica pool.
func (a Autoscale) withDefaults(replicas int) Autoscale {
	if !a.enabled() {
		return Autoscale{}
	}
	if a.ColdStart < 0 {
		a.ColdStart = 0
	}
	if a.UpUtil <= 0 {
		a.UpUtil = 0.7
	}
	if a.DownUtil <= 0 {
		a.DownUtil = 0.25
	}
	if a.Min < 1 {
		a.Min = 1
	}
	if a.Max < 1 || a.Max > replicas {
		a.Max = replicas
	}
	if a.Min > a.Max {
		a.Min = a.Max
	}
	return a
}

// ParseAutoscale converts a CLI/config string into an Autoscale policy.
// Accepted forms:
//
//	""            disabled (the zero policy)
//	"off"         disabled
//	"on"          the default policy (interval=30s,cold=15s,up=0.7,down=0.25)
//	"k=v,..."     explicit fields: interval=DUR, cold=DUR, up=FLOAT,
//	              down=FLOAT, min=INT, max=INT (unset fields default)
//
// Like ParseRouting, the returned policy is the zero value on error — not
// a usable fallback — so a caller that drops the error cannot silently run
// unscaled where the user asked for scaling.
func ParseAutoscale(s string) (Autoscale, error) {
	switch s {
	case "", "off":
		return Autoscale{}, nil
	case "on":
		return Autoscale{Interval: 30 * time.Second, ColdStart: 15 * time.Second}, nil
	}
	var a Autoscale
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return Autoscale{}, fmt.Errorf("serve: bad autoscale field %q (want key=value; off|on|interval=DUR,cold=DUR,up=F,down=F,min=N,max=N)", part)
		}
		switch k {
		case "interval", "cold":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return Autoscale{}, fmt.Errorf("serve: bad autoscale %s %q (want a non-negative duration like 30s)", k, v)
			}
			if k == "interval" {
				a.Interval = d
			} else {
				a.ColdStart = d
			}
		case "up", "down":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 || f > 1 {
				return Autoscale{}, fmt.Errorf("serve: bad autoscale %s %q (want a utilization in (0,1])", k, v)
			}
			if k == "up" {
				a.UpUtil = f
			} else {
				a.DownUtil = f
			}
		case "min", "max":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return Autoscale{}, fmt.Errorf("serve: bad autoscale %s %q (want a positive integer)", k, v)
			}
			if k == "min" {
				a.Min = n
			} else {
				a.Max = n
			}
		default:
			return Autoscale{}, fmt.Errorf("serve: unknown autoscale field %q (interval|cold|up|down|min|max)", k)
		}
	}
	if a.Interval <= 0 {
		return Autoscale{}, fmt.Errorf("serve: autoscale spec %q needs interval=DUR > 0 (or use \"on\" for defaults)", s)
	}
	return a, nil
}

// maybeAutoscale advances the evaluation clock through every tick at or
// before virtual time t. In closed-loop serving t is the arrival
// watermark (arrivals may regress between submissions; the clock only
// moves forward), in open-loop replay it is the event loop's now. A long
// quiet stretch replays every missed tick in order, so multi-step
// scale-down across an idle gap happens at the exact times it would have
// with finer-grained events.
func (e *Endpoint) maybeAutoscale(t time.Duration) {
	if !e.cfg.Autoscale.enabled() {
		return
	}
	for e.asNext <= t {
		e.evalAutoscale(e.asNext)
		e.asNext += e.cfg.Autoscale.Interval
	}
}

// evalAutoscale is one clock tick: close the replica-time integral over
// the elapsed window, compute window utilization, and scale.
func (e *Endpoint) evalAutoscale(now time.Duration) {
	a := e.cfg.Autoscale
	e.stats.ReplicaTime += time.Duration(e.active) * (now - e.asLast)
	e.asLast = now
	// Window utilization: busy replica-time accrued since the last tick
	// over active capacity. Batches accrue their full span at launch, so a
	// long batch can push a window past 1 — a deliberate bias toward
	// scaling up early under load spikes.
	util := float64(e.busyAcc-e.lastBusy) / float64(time.Duration(e.active)*a.Interval)
	e.lastBusy = e.busyAcc
	if e.sink != nil {
		e.sink.Event(obs.Event{
			Kind: obs.KindScaleTick, T: now, Shard: e.shard,
			Active: e.active, Util: util,
		})
	}

	switch {
	case util > a.UpUtil && e.active < a.Max:
		// Proportional scale-up: enough replicas that the observed load
		// would have run at UpUtil, at least one, at most the pool.
		want := int(math.Ceil(float64(e.active) * util / a.UpUtil))
		if want <= e.active {
			want = e.active + 1
		}
		if want > a.Max {
			want = a.Max
		}
		for i := e.active; i < want; i++ {
			// A reactivated replica was retired idle (freeAt <= its
			// retirement tick <= now), so the warm-up window starts now.
			e.replicas[i].freeAt = now + a.ColdStart
			if e.fx != nil {
				// Crash windows that elapsed while the replica was parked
				// never interrupted service: drop them uncounted (its cache
				// is already cold). Windows overlapping the activation stay
				// pending and apply as idle crashes.
				e.dropFaultsBefore(i, now)
			}
		}
		e.active = want
		e.stats.ScaleUps++
		if e.sink != nil {
			e.sink.Event(obs.Event{
				Kind: obs.KindScaleUp, T: now, Shard: e.shard, Active: e.active,
			})
		}
	case util < a.DownUtil && e.active > a.Min:
		// Retire one replica per tick, and only an idle one: in-flight
		// batches always run to completion, which is what keeps scale-down
		// deadlock-free — no request is ever stranded on a parked replica.
		r := &e.replicas[e.active-1]
		if r.freeAt <= now {
			e.sealFrontier(r)
			var live int
			if e.sink != nil {
				live, _, _ = r.cache.stats()
			}
			r.cache.flush()
			e.active--
			e.stats.ScaleDowns++
			if e.sink != nil {
				e.sink.Event(obs.Event{
					Kind: obs.KindCacheFlush, T: now, Shard: e.shard,
					Replica: e.active, Tokens: live,
				})
				e.sink.Event(obs.Event{
					Kind: obs.KindScaleDown, T: now, Shard: e.shard, Active: e.active,
				})
			}
		}
	}
}

// finishAutoscale closes the replica-time integral at the end of an
// open-loop run: evaluation ticks are replayed through the makespan and
// the trailing partial window is added. No-op when disabled, so
// fixed-replica replays report ReplicaTime == 0 (their cost is simply
// Replicas × makespan).
func (e *Endpoint) finishAutoscale(makespan time.Duration) {
	if !e.cfg.Autoscale.enabled() {
		return
	}
	e.maybeAutoscale(makespan)
	if makespan > e.asLast {
		e.stats.ReplicaTime += time.Duration(e.active) * (makespan - e.asLast)
		e.asLast = makespan
	}
}
