package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteJSONL writes one event per line, in stream order. The format is the
// flight recorder's interchange format: `embench -trace-jsonl` produces it,
// `cmd/traceview` summarizes it, and serve.TraceRequests replays it.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses an event-per-line stream written by WriteJSONL. Blank
// lines are skipped; any other malformed line is an error.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// Validate checks an event stream against the schema: known kinds,
// non-negative virtual times, strictly increasing Seq, and the per-kind
// field invariants downstream consumers rely on (submit events carry a
// prompt chain, completes carry Wait <= Dur, scale events carry Active).
// It is the check CI runs over every exported trace.
func Validate(events []Event) error {
	lastSeq := int64(-1)
	for i, ev := range events {
		if !knownKinds[ev.Kind] {
			return fmt.Errorf("obs: event %d: unknown kind %q", i, ev.Kind)
		}
		if ev.T < 0 {
			return fmt.Errorf("obs: event %d (%s): negative virtual time %v", i, ev.Kind, ev.T)
		}
		if ev.Seq <= lastSeq {
			return fmt.Errorf("obs: event %d (%s): seq %d not increasing (prev %d)", i, ev.Kind, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Shard < 0 || ev.Replica < 0 {
			return fmt.Errorf("obs: event %d (%s): negative shard/replica", i, ev.Kind)
		}
		switch ev.Kind {
		case KindSubmit:
			if len(ev.Sections) == 0 {
				return fmt.Errorf("obs: event %d: submit without prompt sections", i)
			}
			if ev.Out < 0 {
				return fmt.Errorf("obs: event %d: submit with negative out tokens", i)
			}
		case KindComplete:
			if ev.Dur < 0 || ev.Wait < 0 || ev.Wait > ev.Dur {
				return fmt.Errorf("obs: event %d: complete with wait %v outside latency %v", i, ev.Wait, ev.Dur)
			}
			if ev.Batch < 1 {
				return fmt.Errorf("obs: event %d: complete with batch %d < 1", i, ev.Batch)
			}
		case KindCacheHit, KindCacheMiss:
			if ev.Cached < 0 || ev.Cached > ev.Tokens {
				return fmt.Errorf("obs: event %d: %s with cached %d outside total %d", i, ev.Kind, ev.Cached, ev.Tokens)
			}
		case KindCacheEvict, KindCacheFlush:
			if ev.Tokens < 0 {
				return fmt.Errorf("obs: event %d: %s with negative tokens", i, ev.Kind)
			}
		case KindScaleUp, KindScaleDown, KindScaleTick, KindConfig:
			if ev.Active < 0 {
				return fmt.Errorf("obs: event %d: %s with negative active count", i, ev.Kind)
			}
		case KindHandoff:
			if ev.Dur < 0 {
				return fmt.Errorf("obs: event %d: handoff with negative transfer time %v", i, ev.Dur)
			}
			if ev.Tokens < 0 {
				return fmt.Errorf("obs: event %d: handoff with negative tokens", i)
			}
		case KindReplicaDown:
			if ev.Dur <= 0 {
				return fmt.Errorf("obs: event %d: replica_down with non-positive repair window %v", i, ev.Dur)
			}
			if ev.Tokens < 0 || ev.Batch < 0 {
				return fmt.Errorf("obs: event %d: replica_down with negative flushed tokens/killed batch", i)
			}
		case KindRetry:
			if ev.Dur < 0 {
				return fmt.Errorf("obs: event %d: retry with negative backoff %v", i, ev.Dur)
			}
			if ev.Batch < 1 {
				return fmt.Errorf("obs: event %d: retry with attempt number %d < 1", i, ev.Batch)
			}
		case KindTimeout:
			if ev.Dur <= 0 {
				return fmt.Errorf("obs: event %d: timeout with non-positive deadline %v", i, ev.Dur)
			}
		}
	}
	return nil
}

// chromeEvent is one Chrome trace_event record (the JSON format Perfetto
// and chrome://tracing load). Timestamps are MICROseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace_event container.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteChromeTrace exports the stream in Chrome trace_event format: one
// process per shard, one thread lane per replica (plus a lane 0 queue/
// control lane), a queue span and a serve span per completed request, and
// counter tracks for active replicas, live cache tokens and autoscaler
// utilization. Load the file in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
func WriteChromeTrace(w io.Writer, events []Event) error {
	ordered := append([]Event(nil), events...)
	sort.SliceStable(ordered, func(a, b int) bool {
		if ordered[a].T != ordered[b].T {
			return ordered[a].T < ordered[b].T
		}
		return ordered[a].Seq < ordered[b].Seq
	})

	tr := chromeTrace{DisplayTimeUnit: "ms"}
	shards := map[int]bool{}
	replicas := map[[2]int]bool{}
	cacheLive := map[[2]int]int{} // reconstructed live tokens per shard/replica

	for _, ev := range ordered {
		shards[ev.Shard] = true
		switch ev.Kind {
		case KindComplete:
			replicas[[2]int{ev.Shard, ev.Replica}] = true
			name := fmt.Sprintf("req %d", ev.Req)
			if ev.Agent != "" {
				name = fmt.Sprintf("req %d (%s)", ev.Req, ev.Agent)
			}
			if ev.Wait > 0 {
				tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
					Name: name, Ph: "X", Cat: "queue",
					Ts: us(ev.Arrival()), Dur: us(ev.Wait),
					Pid: ev.Shard, Tid: 0,
				})
			}
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: name, Ph: "X", Cat: "serve",
				Ts: us(ev.Start()), Dur: us(ev.T - ev.Start()),
				Pid: ev.Shard, Tid: ev.Replica + 1,
				Args: map[string]any{
					"batch": ev.Batch, "prompt_tokens": ev.Tokens,
					"cached_tokens": ev.Cached, "latency_ms": float64(ev.Dur) / 1e6,
				},
			})
		case KindScaleTick:
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "utilization", Ph: "C", Ts: us(ev.T), Pid: ev.Shard,
				Args: map[string]any{"util": ev.Util},
			})
		case KindConfig, KindScaleUp, KindScaleDown:
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "active replicas", Ph: "C", Ts: us(ev.T), Pid: ev.Shard,
				Args: map[string]any{"active": ev.Active},
			})
		case KindCacheHit, KindCacheMiss, KindCacheEvict, KindCacheFlush:
			key := [2]int{ev.Shard, ev.Replica}
			replicas[key] = true
			if ev.Kind == KindCacheHit || ev.Kind == KindCacheMiss {
				cacheLive[key] += ev.Tokens - ev.Cached
			} else {
				cacheLive[key] -= ev.Tokens
				if cacheLive[key] < 0 {
					cacheLive[key] = 0
				}
			}
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("cache tokens r%d", ev.Replica), Ph: "C",
				Ts: us(ev.T), Pid: ev.Shard,
				Args: map[string]any{"tokens": cacheLive[key]},
			})
		}
	}

	// Name the processes and lanes so Perfetto's track list reads like the
	// deployment: shard processes, a queue lane, replica lanes.
	//detlint:allow maprange metadata block is re-sorted by (pid, tid, name) before encoding
	for shard := range shards {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: shard,
			Args: map[string]any{"name": fmt.Sprintf("shard %d", shard)},
		}, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: shard, Tid: 0,
			Args: map[string]any{"name": "queue"},
		})
	}
	//detlint:allow maprange metadata block is re-sorted by (pid, tid, name) before encoding
	for key := range replicas {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: key[0], Tid: key[1] + 1,
			Args: map[string]any{"name": fmt.Sprintf("replica %d", key[1])},
		})
	}
	// Metadata order must be deterministic too (map iteration above isn't):
	// sort the trailing metadata block by (pid, tid, name).
	meta := tr.TraceEvents[len(tr.TraceEvents)-2*len(shards)-len(replicas):]
	sort.SliceStable(meta, func(a, b int) bool {
		if meta[a].Pid != meta[b].Pid {
			return meta[a].Pid < meta[b].Pid
		}
		if meta[a].Tid != meta[b].Tid {
			return meta[a].Tid < meta[b].Tid
		}
		return meta[a].Name < meta[b].Name
	})

	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}
