package bench

import (
	"fmt"
	"strings"
	"time"

	"embench/internal/serve"
)

// Fig14 is the resilience experiment: inject deterministic replica
// failures (crash-restart plus straggler episodes, internal/serve/faults)
// into the fig12 bursty front-door workload and sweep client resilience
// policies against them. The question is the classic serving one — how
// much of the fault-free SLO attainment can deadlines, retries, hedging
// and load shedding buy back as the failure rate climbs?
//
// The sweep is MTBF x policy on one autoscaled deployment:
//
//   - none:  the trace as-is. Requests never give up, so every crash
//     victim re-enters admission and waits out repair windows in queue —
//     nothing is lost, but the latency tail absorbs every fault.
//   - retry: a per-attempt deadline plus seeded exponential-backoff
//     retries. Expired attempts leave the queue (pruning it for everyone
//     behind them) and re-enter later; exhausted budgets surface as
//     timed-out requests rather than unbounded waits.
//   - retry+hedge: adds a duplicate attempt when the primary has sat
//     queued past the hedge delay — first completion wins, which routes
//     around down and straggling replicas.
//   - retry+hedge+shed: adds admission control — when the oldest queued
//     attempt has gone stale (waited most of the deadline), new arrivals
//     are rejected immediately, trading explicit shed failures for a
//     bounded queue during repair pile-ups.
//
// Attainment here is OVERALL: the fraction of OFFERED requests served
// within the SLO. Shed and timed-out requests count against it, so a
// policy cannot win by dropping work — it wins only if sacrificing some
// requests gets strictly more of the rest under the deadline.

// Fig14Row is one (MTBF, policy) cell.
type Fig14Row struct {
	MTBF   time.Duration // 0 = fault-free baseline
	Policy string        // none | retry | retry+hedge | retry+hedge+shed

	Offered  int // requests in the generated trace
	Served   int
	Shed     int
	TimedOut int

	Retries   int
	Hedges    int
	HedgeWins int

	FailedBatches int
	Downtime      time.Duration // summed active-replica repair time

	// Served-request end-to-end latency quantiles (histogram upper-edge
	// convention, as fig12).
	P50, P95, P99 time.Duration
	// Attainment is served-within-SLO over OFFERED, not over served.
	Attainment float64

	ReplicaSeconds float64
	ScaleUps       int
	Makespan       time.Duration
}

// Fig14Report bundles the sweep with its axes' fixed parameters.
type Fig14Report struct {
	SLO     time.Duration
	Tenants int
	Rows    []Fig14Row
}

// Fig14MTBFs is the failure-rate axis: fault-free, then mean time between
// failures shrinking to one crash per replica per minute. With 8 replicas
// even 10m MTBF means a crash somewhere roughly every 75s.
var Fig14MTBFs = []time.Duration{0, 10 * time.Minute, 3 * time.Minute, time.Minute}

// fig14Faults is the fault process for one MTBF step: repair windows of
// 60s mean, plus straggler episodes (~20s long, ~90s apart) during which
// a batch pays 6x service — slow enough that a straggler batch alone
// blows the SLO, which is the failure mode only hedging can route
// around (crash victims re-enter admission server-side, but a slow
// in-flight batch is invisible to the server until it completes). Fault
// schedules root at the traffic seed — same seed, same crashes, any
// policy.
func fig14Faults(mtbf time.Duration, seed uint64) serve.Faults {
	if mtbf <= 0 {
		return serve.Faults{}
	}
	return serve.Faults{
		MTBF: mtbf, MTTR: 60 * time.Second,
		StragglerEvery: 90 * time.Second, StragglerFor: 20 * time.Second,
		StragglerFactor: 6,
		Seed:            seed,
	}
}

// fig14Policy is one resilience ladder step.
type fig14Policy struct {
	name     string
	deadline time.Duration // stamped on every request; 0 = none
	retry    serve.RetryPolicy
	hedge    serve.HedgePolicy
	shed     serve.ShedPolicy
}

// fig14Deadline is the per-attempt deadline of every policy above "none":
// the SLO minus generous service headroom. Tighter deadlines look
// proactive but lose — an attempt 25s deep in a burst queue usually
// still makes the 60s target, and killing it just resets its queue
// position — so the deadline is set to fire only on attempts that were
// going to miss anyway, where abandoning them prunes the queue for
// everyone behind.
const fig14Deadline = 40 * time.Second

// fig14Policies is the policy ladder, each step adding one mechanism.
// The hedge delay sits just above the fault-free p50 (a queued-past-10s
// attempt is behind a burst or a fault, and a duplicate elsewhere is
// cheap insurance); the shed staleness threshold sits just under the
// deadline, so admission closes exactly when the queue's head is about
// to start timing out — the regime where a new arrival is doomed.
func fig14Policies() []fig14Policy {
	retry := serve.RetryPolicy{Max: 2, Base: 500 * time.Millisecond, Factor: 2, Jitter: 0.2}
	hedge := serve.HedgePolicy{Delay: 10 * time.Second}
	shed := serve.ShedPolicy{Wait: 35 * time.Second}
	return []fig14Policy{
		{name: "none"},
		{name: "retry", deadline: fig14Deadline, retry: retry},
		{name: "retry+hedge", deadline: fig14Deadline, retry: retry, hedge: hedge},
		{name: "retry+hedge+shed", deadline: fig14Deadline, retry: retry, hedge: hedge, shed: shed},
	}
}

// fig14Replicas is the provisioning ceiling — fig12's large pool. The
// autoscaled deployment rides between fig12Autoscale.Min and this.
const fig14Replicas = 8

// fig14Config is the fig12 autoscaled deployment carrying one fault
// process and one policy step.
func fig14Config(as serve.Autoscale, fx serve.Faults, p fig14Policy) serve.Config {
	if as.Max <= 0 || as.Max > fig14Replicas {
		as.Max = fig14Replicas
	}
	cfg := fig12Config(fig12Deployment{
		name: "autoscaled", replicas: fig14Replicas, autoscale: as,
	})
	cfg.Faults = fx
	cfg.Retry = p.retry
	cfg.Hedge = p.hedge
	cfg.Shed = p.shed
	return cfg
}

// fig14Requests stamps the policy's deadline onto a copy of the trace
// (the trace itself is shared across cells and must stay untouched).
func fig14Requests(reqs []serve.Request, deadline time.Duration) []serve.Request {
	if deadline <= 0 {
		return reqs
	}
	out := append([]serve.Request(nil), reqs...)
	for i := range out {
		out[i].Deadline = deadline
	}
	return out
}

// Fig14 runs the sweep: one bursty tenant population (fig12's heavy
// panel), every (MTBF, policy) cell a deterministic open-loop replay.
// Sequential by construction, identical at any Config.Parallelism.
func Fig14(cfg Config) Fig14Report {
	_, _, slo, as := fig12Axes(cfg)
	tenants := 24
	if len(cfg.Tenants) > 0 {
		tenants = cfg.Tenants[0]
	}
	reqs := serve.GenerateTraffic(serve.Traffic{
		Kind: serve.ArriveBursty, Tenants: tenants, Horizon: fig12Horizon, Seed: cfg.Seed,
	})
	rep := Fig14Report{SLO: slo, Tenants: tenants}
	for _, mtbf := range Fig14MTBFs {
		fx := fig14Faults(mtbf, cfg.Seed)
		for _, p := range fig14Policies() {
			res := serve.Replay(fig14Config(as, fx, p), fig14Requests(reqs, p.deadline))
			s := res.Stats
			cost := s.ReplicaTime.Seconds()
			if cost == 0 {
				cost = float64(fig14Replicas) * res.Makespan.Seconds()
			}
			att := 0.0
			if len(reqs) > 0 {
				att = s.SLOAttainment(slo) * float64(s.Requests) / float64(len(reqs))
			}
			rep.Rows = append(rep.Rows, Fig14Row{
				MTBF: mtbf, Policy: p.name,
				Offered: len(reqs), Served: s.Requests,
				Shed: s.ShedRequests, TimedOut: s.TimedOut,
				Retries: s.Retries, Hedges: s.HedgesIssued, HedgeWins: s.HedgeWins,
				FailedBatches: s.FailedBatches, Downtime: s.ReplicaDowntime,
				P50:            s.LatencyHist.Quantile(0.50),
				P95:            s.LatencyHist.Quantile(0.95),
				P99:            s.LatencyHist.Quantile(0.99),
				Attainment:     att,
				ReplicaSeconds: cost,
				ScaleUps:       s.ScaleUps,
				Makespan:       res.Makespan,
			})
		}
	}
	return rep
}

// fig14Find returns one cell, panicking on a malformed report.
func fig14Find(rep Fig14Report, mtbf time.Duration, policy string) Fig14Row {
	for _, r := range rep.Rows {
		if r.MTBF == mtbf && r.Policy == policy {
			return r
		}
	}
	panic(fmt.Sprintf("bench: fig14 missing cell mtbf=%v/%s", mtbf, policy))
}

// fig14MTBFLabel names an MTBF step for metrics keys and the table.
func fig14MTBFLabel(mtbf time.Duration) string {
	if mtbf <= 0 {
		return "off"
	}
	return mtbf.String()
}

// Fig14Metrics flattens the acceptance evidence for the perf trajectory:
// per MTBF step, the no-policy baseline attainment, the full ladder's
// attainment and their gap, plus the full ladder's p99.
func Fig14Metrics(rep Fig14Report) map[string]float64 {
	m := make(map[string]float64)
	for _, mtbf := range Fig14MTBFs {
		key := "mtbf_" + fig14MTBFLabel(mtbf)
		none := fig14Find(rep, mtbf, "none")
		full := fig14Find(rep, mtbf, "retry+hedge+shed")
		m[key+"_none_attainment"] = none.Attainment
		m[key+"_full_attainment"] = full.Attainment
		m[key+"_attainment_gain"] = full.Attainment - none.Attainment
		m[key+"_full_p99_s"] = full.P99.Seconds()
	}
	return m
}

// RenderFig14 formats the sweep.
func RenderFig14(rep Fig14Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 14 — fault injection x resilience policy (bursty, %d tenants, SLO %v; attainment over OFFERED)\n",
		rep.Tenants, rep.SLO)
	fmt.Fprintf(&b, "%-6s %-17s %6s %6s %5s %5s %6s %6s %6s %7s %7s %7s %8s %9s\n",
		"mtbf", "policy", "served", "shed", "t/o", "retry", "hedge", "fail", "down",
		"p50", "p95", "p99", "slo-att", "replica-s")
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "%-6s %-17s %6d %6d %5d %5d %6d %6d %5.0fs %6.1fs %6.1fs %6.1fs %7.1f%% %9.0f\n",
			fig14MTBFLabel(r.MTBF), r.Policy, r.Served, r.Shed, r.TimedOut,
			r.Retries, r.Hedges, r.FailedBatches, r.Downtime.Seconds(),
			r.P50.Seconds(), r.P95.Seconds(), r.P99.Seconds(),
			100*r.Attainment, r.ReplicaSeconds)
	}
	return b.String()
}
