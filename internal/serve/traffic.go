package serve

import (
	"fmt"
	"math"
	"sort"
	"time"

	"embench/internal/prompt"
	"embench/internal/rng"
)

// ArrivalKind selects the arrival process a traffic stream draws request
// times from.
type ArrivalKind string

const (
	// ArrivePoisson is a homogeneous Poisson process per tenant:
	// independent exponential interarrivals at the tenant's mean rate —
	// the steady-state baseline of every serving benchmark.
	ArrivePoisson ArrivalKind = "poisson"
	// ArriveBursty is an on-off modulated Poisson process (two-state
	// MMPP): the whole tenant population shares seeded burst windows —
	// bursts are correlated across tenants, as embodied deployments see
	// when one world event wakes every agent — and within a window each
	// tenant emits Poisson arrivals at a boosted rate, sized so the
	// long-run mean rate still matches the Poisson baseline.
	ArriveBursty ArrivalKind = "bursty"
	// ArriveDiurnal thins a homogeneous Poisson process against a
	// sinusoidal day curve (trough at the horizon's edges, peak at its
	// middle), mean rate preserved: the slow load swing autoscalers are
	// usually tuned on.
	ArriveDiurnal ArrivalKind = "diurnal"
)

// ArrivalKinds is the canonical axis order for sweeps (fig12, CLI).
func ArrivalKinds() []ArrivalKind {
	return []ArrivalKind{ArrivePoisson, ArriveBursty, ArriveDiurnal}
}

// ParseArrival converts a CLI/config string into an ArrivalKind. The empty
// string selects the default (poisson). Like ParseRouting, the returned
// kind is "" on error — not a usable fallback.
func ParseArrival(s string) (ArrivalKind, error) {
	switch ArrivalKind(s) {
	case "", ArrivePoisson:
		return ArrivePoisson, nil
	case ArriveBursty:
		return ArriveBursty, nil
	case ArriveDiurnal:
		return ArriveDiurnal, nil
	}
	return "", fmt.Errorf("serve: unknown arrival process %q (%s|%s|%s)",
		s, ArrivePoisson, ArriveBursty, ArriveDiurnal)
}

// Traffic describes a front-door workload: a tenant population, each
// tenant a persona with its own prompt-prefix family, emitting requests
// from a seeded arrival process over a fixed horizon. GenerateTraffic is a
// pure function of this struct, so a traffic stream is byte-identical
// across reruns, worker counts and machines.
type Traffic struct {
	// Kind is the arrival process ("" = poisson).
	Kind ArrivalKind
	// Tenants is the persona population size (default 8). Each tenant
	// draws from its own named RNG stream, so adding or removing tenant N
	// leaves tenants 0..N-1's requests untouched.
	Tenants int
	// Horizon is the stream length in virtual time (default 30m).
	Horizon time.Duration
	// Rate is the long-run mean requests/sec per tenant (default 1/60 —
	// one request a minute, an embodied agent's planning cadence).
	Rate float64
	// BurstOn / BurstOff are the bursty process's mean on/off phase
	// lengths (defaults 3m / 7m — a 30% duty cycle). Within on-phases the
	// per-tenant rate is boosted by 1/duty so the long-run mean stays
	// Rate.
	BurstOn, BurstOff time.Duration
	// DiurnalAmp is the diurnal curve's relative swing in (0,1] (default
	// 0.8): rate varies between Rate·(1−amp) and Rate·(1+amp) over one
	// cycle spanning the horizon.
	DiurnalAmp float64
	// Seed roots all randomness.
	Seed uint64
}

// withDefaults fills zero fields.
func (t Traffic) withDefaults() Traffic {
	if t.Kind == "" {
		t.Kind = ArrivePoisson
	}
	if t.Tenants < 1 {
		t.Tenants = 8
	}
	if t.Horizon <= 0 {
		t.Horizon = 30 * time.Minute
	}
	if t.Rate <= 0 {
		t.Rate = 1.0 / 60
	}
	if t.BurstOn <= 0 {
		t.BurstOn = 3 * time.Minute
	}
	if t.BurstOff <= 0 {
		t.BurstOff = 7 * time.Minute
	}
	if t.DiurnalAmp <= 0 {
		t.DiurnalAmp = 0.8
	}
	if t.DiurnalAmp > 1 {
		t.DiurnalAmp = 1
	}
	return t
}

// burstWindow is one fleet-wide on-phase of the bursty process.
type burstWindow struct{ start, end time.Duration }

// expDur draws an exponential duration with the given mean from st.
// 1−U ∈ (0,1] keeps the log finite; a zero draw (U == 0 density) is fine —
// equal arrivals are legal and Replay tie-breaks them deterministically.
func expDur(st *rng.Stream, mean time.Duration) time.Duration {
	return time.Duration(-math.Log(1-st.Float64()) * float64(mean))
}

// burstPhases draws the shared on/off schedule over the horizon from its
// own stream, named independently of the tenant population — the schedule
// is a property of the world, so changing the tenant count must not move
// the bursts.
func burstPhases(src *rng.Source, horizon time.Duration, on, off time.Duration) []burstWindow {
	st := src.NewStream("bursty-phase")
	var ws []burstWindow
	at := time.Duration(0)
	for at < horizon {
		at += expDur(st, off)
		if at >= horizon {
			break
		}
		end := at + expDur(st, on)
		if end > horizon {
			end = horizon
		}
		ws = append(ws, burstWindow{start: at, end: end})
		at = end
	}
	return ws
}

// tenantPrompt builds tenant id's seq-th request prompt: the fleet-wide
// system+task preamble, the tenant's persona, and a sliding-window history
// tail — the SharedPreambleTrace section shapes, re-keyed per tenant.
// Sections carry token counts only, so their content digests reduce to
// (name, size) and the shape and content cache identities agree exactly;
// the persona section's per-tenant name is what keeps each tenant's prefix
// family distinct under both.
func tenantPrompt(id, seq int) prompt.Prompt {
	return prompt.New(
		prompt.Section{Name: "system", Tokens: 500},
		prompt.Section{Name: "task", Tokens: 200},
		prompt.Section{Name: fmt.Sprintf("persona-t%d", id), Tokens: 700},
		// History grows per exchange and truncates on a 12-turn window,
		// like a production context manager; the modulus also bounds the
		// distinct prefix variants a long stream creates.
		prompt.Section{Name: "hist", Tokens: 40 + 30*(seq%12), Droppable: true},
	)
}

// tenantArrivals draws tenant id's arrival times from its own named
// stream. Only this stream is consumed, so the sequence is independent of
// every other tenant's — the no-cross-tenant-coupling guarantee.
func tenantArrivals(t Traffic, id int, src *rng.Source, bursts []burstWindow) []time.Duration {
	st := src.NewStream(fmt.Sprintf("tenant-%d", id))
	mean := time.Duration(float64(time.Second) / t.Rate)
	var at []time.Duration
	switch t.Kind {
	case ArriveBursty:
		duty := float64(t.BurstOn) / float64(t.BurstOn+t.BurstOff)
		boosted := time.Duration(float64(mean) * duty)
		for _, w := range bursts {
			for ts := w.start + expDur(st, boosted); ts < w.end; ts += expDur(st, boosted) {
				at = append(at, ts)
			}
		}
	case ArriveDiurnal:
		// Thinning: draw at the peak rate, keep each arrival with
		// probability rate(ts)/peak. The curve troughs at the horizon
		// edges and peaks mid-horizon.
		peak := time.Duration(float64(mean) / (1 + t.DiurnalAmp))
		for ts := expDur(st, peak); ts < t.Horizon; ts += expDur(st, peak) {
			phase := 2*math.Pi*float64(ts)/float64(t.Horizon) - math.Pi/2
			frac := (1 + t.DiurnalAmp*math.Sin(phase)) / (1 + t.DiurnalAmp)
			if st.Float64() < frac {
				at = append(at, ts)
			}
		}
	default: // ArrivePoisson
		for ts := expDur(st, mean); ts < t.Horizon; ts += expDur(st, mean) {
			at = append(at, ts)
		}
	}
	return at
}

// GenerateTraffic renders the workload into an open-loop request trace,
// sorted by (arrival, tenant id, per-tenant sequence) — a deterministic
// total order even when seeded processes collide on an arrival time.
func GenerateTraffic(t Traffic) []Request {
	t = t.withDefaults()
	src := rng.New(t.Seed).Sub("serve/traffic")
	var bursts []burstWindow
	if t.Kind == ArriveBursty {
		bursts = burstPhases(src, t.Horizon, t.BurstOn, t.BurstOff)
	}
	var reqs []Request
	for id := 0; id < t.Tenants; id++ {
		for seq, at := range tenantArrivals(t, id, src, bursts) {
			reqs = append(reqs, Request{
				Agent:     fmt.Sprintf("t%d", id),
				Arrival:   at,
				Prompt:    tenantPrompt(id, seq),
				OutTokens: 60,
			})
		}
	}
	// Tenants were appended in (tenant, sequence) order; a stable arrival
	// sort therefore breaks arrival ties on exactly that order.
	sort.SliceStable(reqs, func(a, b int) bool { return reqs[a].Arrival < reqs[b].Arrival })
	return reqs
}
