package serve

import (
	"embench/internal/prompt"
)

// prefixCache models KV-cache reuse across requests that share a prompt
// prefix. Prompts are section sequences (system preamble, task description,
// memory, dialogue, observation — see internal/prompt); two prompts share a
// cache entry exactly when their leading sections match by (name, size)
// chain. That is the suite's identity model: fixed sections with equal
// names and token counts hold the same content (the shared system/task
// preamble every agent of a workload sends), while histories that have
// diverged change size and break the chain.
//
// The cache is a deterministic LRU over chained-FNV prefix keys: every
// lookup touches all prefixes of the prompt, and eviction removes the
// least-recently-touched entry (ties impossible — touch ticks are unique).
// Recency order lives in a lazy-deletion queue: touches append, eviction
// pops from the front skipping entries whose tick is stale, and the queue
// compacts once garbage dominates — amortized O(1) per touch regardless of
// capacity.
type prefixCache struct {
	cap   int
	last  map[uint64]int // prefix key -> last-touch tick
	order []lruEvent     // touch events, oldest first; stale ones skipped
	tick  int
}

// lruEvent is one touch of a prefix key; it is stale when the key has been
// touched again (or evicted) since.
type lruEvent struct {
	key  uint64
	tick int
}

func newPrefixCache(capacity int) *prefixCache {
	if capacity <= 0 {
		return nil
	}
	return &prefixCache{cap: capacity, last: make(map[uint64]int, capacity)}
}

// FNV-1a constants, chained manually so a prefix key extends its parent's.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// chainSection folds one section's identity (name and token count) into a
// running prefix key.
func chainSection(h uint64, s prompt.Section) uint64 {
	for i := 0; i < len(s.Name); i++ {
		h ^= uint64(s.Name[i])
		h *= fnvPrime
	}
	sz := s.Size()
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(sz >> (8 * i)))
		h *= fnvPrime
	}
	return h
}

// sectionKey is one prefix of a prompt: the chained FNV key covering the
// prompt up to and including a section, and that section's token size.
type sectionKey struct {
	key  uint64
	size int
}

// promptKey is a prompt's memoized prefix-chain identity. Routing probes
// every replica's cache and admission prices + inserts the prompt, so a
// request's chain is hashed once here and shared by all of them instead of
// being recomputed per probe.
type promptKey struct {
	secs  []sectionKey
	total int // total prompt tokens (the sum of section sizes)
}

// chainKeysInto computes p's prefix chain, reusing buf's backing array.
// The caller owns the lifetime: a scratch buffer may be reused once the
// returned key is no longer referenced.
func chainKeysInto(buf []sectionKey, p prompt.Prompt) promptKey {
	k := promptKey{secs: buf[:0]}
	h := fnvOffset
	for _, s := range p.Sections {
		h = chainSection(h, s)
		sz := s.Size()
		k.secs = append(k.secs, sectionKey{key: h, size: sz})
		k.total += sz
	}
	return k
}

// chainKeys is chainKeysInto with a fresh backing array.
func chainKeys(p prompt.Prompt) promptKey { return chainKeysInto(nil, p) }

// matchKey reports how many leading tokens of the keyed prompt are covered
// by cached prefixes: sections are matched front-to-back and the chain
// stops at the first miss, mirroring KV-cache prefix reuse.
func (c *prefixCache) matchKey(k promptKey) int {
	if c == nil {
		return 0
	}
	cached := 0
	for _, s := range k.secs {
		if _, ok := c.last[s.key]; !ok {
			break
		}
		cached += s.size
	}
	return cached
}

// match is matchKey over an unmemoized prompt (tests and one-shot probes).
func (c *prefixCache) match(p prompt.Prompt) int {
	if c == nil {
		return 0
	}
	return c.matchKey(chainKeys(p))
}

// insertKey touches every prefix of the keyed prompt (so the whole prompt
// becomes reusable by followers) and evicts least-recently-touched entries
// beyond capacity.
func (c *prefixCache) insertKey(k promptKey) {
	if c == nil {
		return
	}
	for _, s := range k.secs {
		c.tick++
		c.last[s.key] = c.tick
		c.order = append(c.order, lruEvent{key: s.key, tick: c.tick})
	}
	for len(c.last) > c.cap {
		ev := c.order[0]
		c.order = c.order[1:]
		if c.last[ev.key] == ev.tick {
			delete(c.last, ev.key)
		}
	}
	// Compact once stale events dominate, keeping memory proportional to
	// the live entry count. Live events already sit in touch order, so
	// filtering preserves LRU order deterministically.
	if len(c.order) > 2*len(c.last)+64 {
		live := c.order[:0]
		for _, ev := range c.order {
			if c.last[ev.key] == ev.tick {
				live = append(live, ev)
			}
		}
		c.order = live
	}
}

// insert is insertKey over an unmemoized prompt (tests and one-shot use).
func (c *prefixCache) insert(p prompt.Prompt) {
	if c == nil {
		return
	}
	c.insertKey(chainKeys(p))
}
