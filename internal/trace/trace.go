// Package trace records per-module events during an episode.
//
// Each call into one of the six building blocks (paper Sec. II-A) emits an
// Event carrying its simulated latency and token counts. The benchmark
// harness reduces traces into the latency breakdowns of Fig. 2, the token
// series of Fig. 6 and the message statistics of Sec. V-D.
package trace

import (
	"sort"
	"time"
)

// Module identifies one of the six embodied-agent building blocks.
type Module string

// The six building blocks of an embodied AI agent (paper Fig. 1a).
const (
	Sensing    Module = "sensing"
	Planning   Module = "planning"
	Comms      Module = "communication"
	Memory     Module = "memory"
	Reflection Module = "reflection"
	Execution  Module = "execution"
)

// Modules lists all building blocks in the paper's presentation order.
var Modules = []Module{Sensing, Planning, Comms, Memory, Reflection, Execution}

// Event is one module invocation.
type Event struct {
	Step         int           // environment time step the call belongs to
	Agent        string        // agent id ("agent0", "central", ...)
	Module       Module        // which building block
	Kind         string        // free-form detail: "llm", "retrieve", "astar", ...
	Latency      time.Duration // simulated latency charged to the clock
	PromptTokens int           // LLM input tokens (0 for non-LLM calls)
	OutputTokens int           // LLM output tokens
	LLMCall      bool          // whether this event was an LLM inference
	Useful       bool          // for communication: message carried novel info
	Note         string
}

// Trace accumulates events for one episode.
type Trace struct {
	Events []Event
}

// New returns an empty trace.
func New() *Trace { return &Trace{} }

// Record appends an event.
func (t *Trace) Record(ev Event) { t.Events = append(t.Events, ev) }

// Breakdown sums simulated latency per module.
func (t *Trace) Breakdown() map[Module]time.Duration {
	out := make(map[Module]time.Duration, len(Modules))
	for _, ev := range t.Events {
		out[ev.Module] += ev.Latency
	}
	return out
}

// Total sums all recorded latency.
func (t *Trace) Total() time.Duration {
	var sum time.Duration
	for _, ev := range t.Events {
		sum += ev.Latency
	}
	return sum
}

// Fraction reports module m's share of total latency in [0,1]; zero when
// the trace is empty.
func (t *Trace) Fraction(m Module) float64 {
	total := t.Total()
	if total == 0 {
		return 0
	}
	return float64(t.Breakdown()[m]) / float64(total)
}

// LLMShare reports the fraction of total latency spent inside LLM calls
// across all modules (paper: 70.2% average across the 14 workloads).
func (t *Trace) LLMShare() float64 {
	total := t.Total()
	if total == 0 {
		return 0
	}
	var llm time.Duration
	for _, ev := range t.Events {
		if ev.LLMCall {
			llm += ev.Latency
		}
	}
	return float64(llm) / float64(total)
}

// LLMCalls counts LLM inference events.
func (t *Trace) LLMCalls() int {
	n := 0
	for _, ev := range t.Events {
		if ev.LLMCall {
			n++
		}
	}
	return n
}

// Tokens sums prompt and output tokens over all events.
func (t *Trace) Tokens() (prompt, output int) {
	for _, ev := range t.Events {
		prompt += ev.PromptTokens
		output += ev.OutputTokens
	}
	return prompt, output
}

// Steps reports the highest step index recorded, plus one (i.e. the number
// of environment steps covered by the trace); zero for an empty trace.
func (t *Trace) Steps() int {
	max := -1
	for _, ev := range t.Events {
		if ev.Step > max {
			max = ev.Step
		}
	}
	return max + 1
}

// MessageStats summarises communication-module traffic.
type MessageStats struct {
	Generated int // messages produced by the comms module
	Useful    int // messages that carried novel information
}

// UsefulRate reports Useful/Generated, or zero when nothing was generated.
// The paper finds only ~20% of CoELA's pre-generated messages matter.
func (m MessageStats) UsefulRate() float64 {
	if m.Generated == 0 {
		return 0
	}
	return float64(m.Useful) / float64(m.Generated)
}

// Messages reduces comms events into MessageStats.
func (t *Trace) Messages() MessageStats {
	var s MessageStats
	for _, ev := range t.Events {
		if ev.Module != Comms || ev.Kind != "message" {
			continue
		}
		s.Generated++
		if ev.Useful {
			s.Useful++
		}
	}
	return s
}

// SeriesPoint is one sample of a per-step token series (Fig. 6).
type SeriesPoint struct {
	Step   int
	Tokens int
}

// TokenSeries returns, per (agent, module) stream, the prompt-token count of
// the first LLM call at each step, ordered by step. Stream keys look like
// "agent0/planning".
func (t *Trace) TokenSeries() map[string][]SeriesPoint {
	type key struct {
		agent  string
		module Module
		step   int
	}
	seen := make(map[key]bool)
	out := make(map[string][]SeriesPoint)
	for _, ev := range t.Events {
		if !ev.LLMCall || ev.PromptTokens == 0 {
			continue
		}
		k := key{ev.Agent, ev.Module, ev.Step}
		if seen[k] {
			continue
		}
		seen[k] = true
		stream := ev.Agent + "/" + string(ev.Module)
		out[stream] = append(out[stream], SeriesPoint{Step: ev.Step, Tokens: ev.PromptTokens})
	}
	for _, pts := range out {
		sort.Slice(pts, func(i, j int) bool { return pts[i].Step < pts[j].Step })
	}
	return out
}
