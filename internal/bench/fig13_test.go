package bench

import (
	"fmt"
	"reflect"
	"testing"
)

func fig13TestConfig() Config {
	return Config{Episodes: 2, Seed: 11, Parallelism: 1}
}

func TestFig13Shape(t *testing.T) {
	rep := Fig13(fig13TestConfig())
	want := len(Fig13Agents) * len(fig13Deployments) * 2
	if len(rep.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), want)
	}
	for i, r := range rep.Rows {
		if r.TaskLatency <= 0 || r.SuccessRate < 0 || r.SuccessRate > 1 {
			t.Fatalf("row %d implausible: %+v", i, r)
		}
		if r.Replicas != fig13Replicas {
			t.Fatalf("row %d spends %d replicas, want %d", i, r.Replicas, fig13Replicas)
		}
		if r.Deploy == "monolithic" {
			if r.PrefillWait != 0 || r.DecodeWait != 0 || r.HandoffTime != 0 {
				t.Fatalf("monolithic row %d has stage fields: %+v", i, r)
			}
		} else if r.HandoffTime <= 0 {
			t.Fatalf("disaggregated row %d priced no handoff: %+v", i, r)
		}
	}
	if RenderFig13(rep) == "" {
		t.Fatal("empty render")
	}
}

// TestFig13Regimes is the acceptance criterion, both halves:
//
//   - pipelining hides prefill-side preparation: on the balanced split,
//     turning the async pipeline on lowers task latency (the decode stream
//     of step t absorbs the sensing/retrieval of step t+1);
//   - decode contention dominates: at the larger team, the decode-starved
//     split queues predominantly on its single decode replica and ends up
//     slower than the balanced split.
func TestFig13Regimes(t *testing.T) {
	m := Fig13Metrics(Fig13(fig13TestConfig()))
	// Pipelining may legitimately lose a little at the contended team —
	// earlier submissions reshape the shared join windows — so only the
	// existence of a hiding regime is asserted, not "never slower".
	hidden := false
	for _, n := range Fig13Agents {
		if m[keyT(n)+"_pipeline_speedup"] > 1.01 {
			hidden = true
		}
	}
	if !hidden {
		t.Errorf("no team size shows the pipeline hiding latency: %v", m)
	}
	big := keyT(Fig13Agents[len(Fig13Agents)-1])
	if share := m[big+"_starved_decode_wait_share"]; share < 0.5 {
		t.Errorf("decode-starved split at the big team queues mostly on prefill (decode share %.3f)", share)
	}
	if ratio := m[big+"_starved_latency_ratio"]; ratio < 1.01 {
		t.Errorf("decode-starved split should be slower than balanced at the big team (ratio %.4f)", ratio)
	}
}

func keyT(n int) string {
	return fmt.Sprintf("t%d", n)
}

// TestFig13RerunAndParallelismByteIdentical pins determinism: the whole
// report reproduces bit for bit across reruns and across episode-runner
// parallelism levels.
func TestFig13RerunAndParallelismByteIdentical(t *testing.T) {
	cfg := fig13TestConfig()
	a := Fig13(cfg)
	b := Fig13(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("rerun diverged")
	}
	cfg.Parallelism = 4
	c := Fig13(cfg)
	if !reflect.DeepEqual(a, c) {
		t.Fatal("parallel run diverged from sequential")
	}
	if ra, rc := RenderFig13(a), RenderFig13(c); ra != rc {
		t.Fatalf("rendered reports differ:\n%s\n---\n%s", ra, rc)
	}
}
