// Package llm simulates the LLM serving substrate of embodied-agent
// systems.
//
// The paper's testbed runs GPT-4 through the OpenAI API and local models
// (Llama, LLaVA) on an NVIDIA A6000. The suite replaces real inference with
// two coupled models:
//
//   - a serving-latency model: latency = overhead + promptTokens/prefillRate
//   - outputTokens/decodeRate, per model profile, charged to the virtual
//     clock; and
//   - a decision-quality model: the environment's expert oracle proposes the
//     correct decision for the agent's current belief, and an error channel
//     replaces it with a plausible corruption with probability pErr, a
//     function of model capability, context dilution, belief staleness and
//     joint-action complexity.
//
// Everything the paper measures — latency breakdowns, success-rate deltas,
// token growth, scalability crossovers — emerges from these two models plus
// the real environments; no linguistic generation is needed.
package llm

import (
	"time"
)

// Kind distinguishes API-hosted from locally served models.
type Kind string

// Model serving kinds.
const (
	API   Kind = "api"   // remote endpoint: high per-call overhead
	Local Kind = "local" // on-device inference: low overhead
)

// Profile describes a model's serving and quality characteristics.
type Profile struct {
	Name          string
	Kind          Kind
	Overhead      time.Duration // fixed per-call cost (network, launch)
	PrefillRate   float64       // prompt tokens processed per second
	DecodeRate    float64       // output tokens generated per second
	FixedLatency  time.Duration // if >0, overrides the token-based model (non-generative scorers)
	ContextWindow int           // prompt+output token limit
	Capability    float64       // decision quality in [0,1]; higher is better
	JitterFrac    float64       // bounded latency variation, e.g. 0.2 = ±20%
	// FormatRetryProb is the chance a generation is malformed (invalid
	// plan syntax) and must be re-generated. Small local models fail
	// format compliance often, which is a large part of why their faster
	// per-token decode does not translate into faster tasks (Takeaway 3 /
	// Rec. 4).
	FormatRetryProb float64
}

// Latency reports the deterministic (un-jittered) serving latency for a
// call with the given token counts.
func (p Profile) Latency(promptTokens, outputTokens int) time.Duration {
	if p.FixedLatency > 0 {
		return p.FixedLatency
	}
	sec := p.Overhead.Seconds()
	if p.PrefillRate > 0 {
		sec += float64(promptTokens) / p.PrefillRate
	}
	if p.DecodeRate > 0 {
		sec += float64(outputTokens) / p.DecodeRate
	}
	return time.Duration(sec * float64(time.Second))
}

// BaseError reports the per-call decision error attributable to the model
// alone (before context effects): (1-Capability) · baseErrorScale.
func (p Profile) BaseError() float64 {
	e := (1 - p.Capability) * baseErrorScale
	if e < 0 {
		return 0
	}
	return e
}

// Error-channel coefficients. They set scales only; the curve shapes come
// from the mechanism (see package comment). Calibrated so that headline
// numbers land near the paper's (see internal/bench/calibrate.go).
const (
	baseErrorScale = 0.30 // maps capability gap to per-call error
	dilutionCoef   = 0.80 // quadratic context-dilution strength
	truncationPen  = 0.18 // extra error when the window overflowed
	stalenessCoef  = 0.50 // belief-staleness contribution
	maxError       = 0.98
)

// Predefined serving profiles for every model named in the paper's Table II.
// Capabilities encode the paper's qualitative ordering (GPT-4 > fine-tuned
// mid-size local > generic small local); serving rates approximate an
// OpenAI-API endpoint and an A6000 workstation.
var (
	// GPT4 is the GPT-4 API profile used by most planning/communication
	// modules in the suite.
	GPT4 = Profile{
		Name: "gpt-4", Kind: API,
		Overhead: 1200 * time.Millisecond, PrefillRate: 1500, DecodeRate: 13,
		ContextWindow: 8192, Capability: 0.965, JitterFrac: 0.25,
		FormatRetryProb: 0.03,
	}
	// Llama3_8B is the local Llama-3-8B profile of the Fig. 4 comparison.
	Llama3_8B = Profile{
		Name: "llama-3-8b", Kind: Local,
		Overhead: 60 * time.Millisecond, PrefillRate: 2800, DecodeRate: 42,
		ContextWindow: 8192, Capability: 0.55, JitterFrac: 0.15,
		FormatRetryProb: 0.60,
	}
	// Llama7B models EmbodiedGPT's task-fine-tuned Llama-7B planner.
	Llama7B = Profile{
		Name: "llama-7b-ft", Kind: Local,
		Overhead: 50 * time.Millisecond, PrefillRate: 3000, DecodeRate: 45,
		ContextWindow: 4096, Capability: 0.88, JitterFrac: 0.15,
		FormatRetryProb: 0.12,
	}
	// Llama8B models DaDu-E's lightweight fine-tuned planning model.
	Llama8B = Profile{
		Name: "llama-8b-ft", Kind: Local,
		Overhead: 60 * time.Millisecond, PrefillRate: 2800, DecodeRate: 42,
		ContextWindow: 8192, Capability: 0.86, JitterFrac: 0.15,
		FormatRetryProb: 0.15,
	}
	// Llama13B models JARVIS-1's local planner/reflector.
	Llama13B = Profile{
		Name: "llama-13b", Kind: Local,
		Overhead: 80 * time.Millisecond, PrefillRate: 2200, DecodeRate: 30,
		ContextWindow: 4096, Capability: 0.84, JitterFrac: 0.15,
		FormatRetryProb: 0.30,
	}
	// Llama70B models OLA's large local alternative.
	Llama70B = Profile{
		Name: "llama-70b", Kind: Local,
		Overhead: 200 * time.Millisecond, PrefillRate: 900, DecodeRate: 12,
		ContextWindow: 8192, Capability: 0.92, JitterFrac: 0.15,
		FormatRetryProb: 0.10,
	}
	// LLaVA7B models COMBO's vision-language planner/communicator.
	LLaVA7B = Profile{
		Name: "llava-7b", Kind: Local,
		Overhead: 70 * time.Millisecond, PrefillRate: 2500, DecodeRate: 38,
		ContextWindow: 4096, Capability: 0.80, JitterFrac: 0.15,
		FormatRetryProb: 0.35,
	}
	// LLaVA8B models DaDu-E's reflection VLM.
	LLaVA8B = Profile{
		Name: "llava-8b", Kind: Local,
		Overhead: 70 * time.Millisecond, PrefillRate: 2500, DecodeRate: 38,
		ContextWindow: 4096, Capability: 0.82, JitterFrac: 0.15,
		FormatRetryProb: 0.30,
	}
	// CLIPScorer models DEPS's CLIP-based reflection: a single forward pass,
	// not autoregressive generation.
	CLIPScorer = Profile{
		Name: "clip-scorer", Kind: Local,
		FixedLatency:  120 * time.Millisecond,
		ContextWindow: 2048, Capability: 0.76, JitterFrac: 0.10,
	}
)

// Profiles indexes the predefined profiles by name.
var Profiles = map[string]Profile{
	GPT4.Name:       GPT4,
	Llama3_8B.Name:  Llama3_8B,
	Llama7B.Name:    Llama7B,
	Llama8B.Name:    Llama8B,
	Llama13B.Name:   Llama13B,
	Llama70B.Name:   Llama70B,
	LLaVA7B.Name:    LLaVA7B,
	LLaVA8B.Name:    LLaVA8B,
	CLIPScorer.Name: CLIPScorer,
}
