package serve

import (
	"sort"
	"time"

	"embench/internal/metrics"
	"embench/internal/prompt"
)

// Request is one entry of an open-loop request trace.
type Request struct {
	Agent     string
	Priority  int // lower is served first; FIFO within a class
	Arrival   time.Duration
	Prompt    prompt.Prompt
	OutTokens int
	// Deadline is the client's per-attempt timeout: an attempt whose batch
	// has not LAUNCHED within Deadline of the attempt entering admission is
	// abandoned (an in-flight batch always runs to completion). Expiry
	// triggers the config's RetryPolicy while budget remains; otherwise the
	// request resolves timed-out. 0 — the default — means no deadline, and
	// any resilient replay feature (this, retries, hedging, shedding,
	// fault injection) routes the trace through the resilient event loop;
	// all-zero traces on fault-free configs take the seed loop unchanged.
	Deadline time.Duration
}

// Completion describes how one replayed request was served. On a
// monolithic endpoint Start/Done bracket the request's single batch and
// the stage fields stay zero; on a disaggregated endpoint Start is the
// PREFILL batch launch, PrefillDone its completion, Done the DECODE batch
// completion, QueueWait the prefill-pool wait and DecodeWait the
// decode-pool wait (so Start - Arrival still equals QueueWait, per stage).
type Completion struct {
	Agent        string
	Arrival      time.Duration
	Start        time.Duration // batch launch time
	Done         time.Duration // batch completion time
	QueueWait    time.Duration // Start - Arrival
	BatchSize    int           // sequences in the request's (decode) batch
	PromptTokens int
	CachedTokens int
	// Disaggregated-endpoint stage split; zero on monolithic replays.
	PrefillDone time.Duration // prefill batch completion (handoff begins)
	DecodeWait  time.Duration // decode-pool admission-queue delay
	// Outcome labels resilient-replay resolutions: OutcomeServed (the zero
	// value — every fault-free replay's label), OutcomeShed (admission
	// rejected the request under load), or OutcomeTimedOut (deadline expired
	// with the retry budget exhausted). Shed and timed-out completions carry
	// Done = the resolution time and zero batch fields.
	Outcome Outcome
	// Retries / Hedged record how hard the client worked for a resilient
	// completion: re-issued attempts and whether a hedge duplicate was ever
	// issued (a served request with Hedged=true may have been won by either
	// copy).
	Retries int
	Hedged  bool
}

// ReplayResult bundles a replay's per-request completions (in submission
// order) with aggregate statistics.
type ReplayResult struct {
	Completions []Completion
	Stats       metrics.Serving
	Batches     int
	Makespan    time.Duration // last completion time
}

// Throughput reports served requests per simulated second over the
// makespan.
func (r ReplayResult) Throughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(len(r.Completions)) / r.Makespan.Seconds()
}

// Replay runs a full request trace through a fresh endpoint with a
// discrete-event loop: requests are admitted at their arrival times into a
// priority/FIFO queue, and batches of up to MaxBatch launch on an idle
// replica (picked by the routing policy) when the batch is full, when the
// oldest queued request has waited MaxWait, or when no further arrivals
// are pending. Batch pricing goes through the same admission helper as
// closed-loop serving, so a trace costs the same in either mode. All ties
// break on submission order, so the replay is a pure function of
// (cfg, reqs).
func Replay(cfg Config, reqs []Request) ReplayResult {
	return replayOn(New(cfg), reqs)
}

// replayOn is Replay's discrete-event loop over an already built endpoint
// (Replay and ReplayObserved share it). When a flight-recorder sink is
// attached, submit events for the whole trace are emitted up front in
// arrival order — so an exported replay trace is itself replayable — and
// every batch launch emits route/cache/batch_start/complete events.
func replayOn(e *Endpoint, reqs []Request) ReplayResult {
	if e.dis != nil {
		return replayDisagg(e, reqs)
	}
	if e.fx != nil || e.cfg.resilient() || anyDeadline(reqs) {
		// Fault injection and client resilience run in their own event loop
		// (resilience.go); the seed loop below stays byte-identical for every
		// fault-free, policy-free trace.
		return replayResilient(e, reqs)
	}
	res := ReplayResult{Completions: make([]Completion, len(reqs))}
	if len(reqs) == 0 {
		return res
	}

	// Hash every request's prefix chain once, under the endpoint's cache
	// identity; routing probes and batch admissions below reuse the
	// memoized keys.
	keys := make([]promptKey, len(reqs))
	for i := range reqs {
		keys[i] = chainKeysIdent(nil, reqs[i].Prompt, e.cfg.Identity)
	}

	// Arrival order with an explicit total tie-break: (arrival, priority,
	// submission index). Hand-built schedules rarely collide, but generated
	// traffic (internal/serve/traffic.go) interleaves many tenants' seeded
	// arrival processes and equal arrivals DO occur — the order they enter
	// the admission queue must be pinned by the trace itself, never by sort
	// internals.
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		qa, qb := reqs[order[a]], reqs[order[b]]
		if qa.Arrival != qb.Arrival {
			return qa.Arrival < qb.Arrival
		}
		if qa.Priority != qb.Priority {
			return qa.Priority < qb.Priority
		}
		return order[a] < order[b]
	})

	if e.sink != nil {
		for _, qi := range order {
			rq := reqs[qi]
			e.emitSubmit(int64(qi)+1, rq.Agent, rq.Arrival, rq.Prompt, rq.OutTokens, rq.Priority)
		}
	}

	var queue []int // request indices, kept sorted by (Priority, Arrival, index)
	nextArr := 0
	now := reqs[order[0]].Arrival
	done := 0

	admit := func() {
		arrived := false
		for nextArr < len(order) && reqs[order[nextArr]].Arrival <= now {
			queue = append(queue, order[nextArr])
			nextArr++
			arrived = true
		}
		if !arrived {
			return
		}
		sort.SliceStable(queue, func(a, b int) bool {
			qa, qb := reqs[queue[a]], reqs[queue[b]]
			if qa.Priority != qb.Priority {
				return qa.Priority < qb.Priority
			}
			if qa.Arrival != qb.Arrival {
				return qa.Arrival < qb.Arrival
			}
			return queue[a] < queue[b]
		})
	}

	oldestArrival := func() time.Duration {
		oldest := reqs[queue[0]].Arrival
		for _, qi := range queue[1:] {
			if reqs[qi].Arrival < oldest {
				oldest = reqs[qi].Arrival
			}
		}
		return oldest
	}

	shouldLaunch := func() bool {
		if e.cfg.MaxBatch <= 1 || len(queue) >= e.cfg.MaxBatch {
			return true
		}
		if nextArr >= len(order) {
			return true // nothing else is coming; waiting is pure loss
		}
		return now-oldestArrival() >= e.cfg.MaxWait
	}

	for done < len(reqs) {
		// Replay every autoscale evaluation tick up to now before routing:
		// ticks are pure virtual-time events, so a long arrival gap replays
		// its missed ticks in order (scaling down step by step at the exact
		// times a denser event stream would have).
		e.maybeAutoscale(now)
		admit()

		// Launch batches while an idle replica and the policy allow; the
		// routing policy picks which idle replica hosts each batch.
		for len(queue) > 0 && shouldLaunch() {
			r := e.routeIdle(now, keys[queue[0]])
			if r == nil {
				break
			}
			n := len(queue)
			if n > e.cfg.MaxBatch {
				n = e.cfg.MaxBatch
			}
			batch := queue[:n]
			queue = append([]int(nil), queue[n:]...)

			bkeys := make([]promptKey, n)
			outs := make([]int, n)
			for bi, qi := range batch {
				bkeys[bi], outs[bi] = keys[qi], reqs[qi].OutTokens
			}
			var ri, evBefore int
			if e.sink != nil {
				ri = e.rindex(r)
				e.emitRoute(int64(batch[0])+1, now, r, bkeys[0])
				_, _, evBefore = r.cache.stats()
			}
			service, members, totalEff, maxOut := e.admitBatch(r, bkeys, outs)
			end := now + service
			e.sealFrontier(r)
			r.startBatch(now, end, n, totalEff, maxOut, service)
			e.busyAcc += service
			res.Batches++
			if e.sink != nil {
				for bi, qi := range batch {
					e.emitCache(int64(qi)+1, now, ri, members[bi].cached, members[bi].total)
				}
				if _, _, evAfter := r.cache.stats(); evAfter > evBefore {
					e.emitEvict(now, ri, evAfter-evBefore)
				}
				e.emitBatchStart(now, ri, n, totalEff, maxOut, service)
			}
			for bi, qi := range batch {
				rq := reqs[qi]
				wait := now - rq.Arrival
				res.Completions[qi] = Completion{
					Agent: rq.Agent, Arrival: rq.Arrival, Start: now, Done: end,
					QueueWait: wait, BatchSize: n,
					PromptTokens: members[bi].total, CachedTokens: members[bi].cached,
				}
				r.lats = append(r.lats, end-rq.Arrival)
				e.record(service, wait, n, members[bi].cached, members[bi].total)
				if e.sink != nil {
					e.emitComplete(int64(qi)+1, rq.Agent, ri, end, end-rq.Arrival, wait, n, members[bi].cached, members[bi].total)
				}
			}
			if end > res.Makespan {
				res.Makespan = end
			}
			done += n
		}
		if done >= len(reqs) {
			break
		}

		// Advance virtual time to the next event: an arrival, a replica
		// freeing, or the oldest queued request's wait window expiring.
		next := time.Duration(1<<63 - 1)
		if nextArr < len(order) {
			if t := reqs[order[nextArr]].Arrival; t < next {
				next = t
			}
		}
		if len(queue) > 0 && e.cfg.MaxBatch > 1 {
			// Only a future window expiry is an event; an already-expired
			// window means the queue is waiting on a replica, not on time.
			if t := oldestArrival() + e.cfg.MaxWait; t > now && t < next {
				next = t
			}
		}
		// Only active replicas are schedulable events: a warming replica's
		// freeAt (its cold-start expiry) counts, a parked one's does not.
		for ri := range e.replicas[:e.active] {
			if t := e.replicas[ri].freeAt; t > now && t < next {
				next = t
			}
		}
		if e.cfg.Autoscale.enabled() && e.asNext > now && e.asNext < next {
			// The next evaluation tick can change the active set (waking a
			// queue that is waiting on capacity), so it is an event too.
			next = e.asNext
		}
		if next <= now {
			next = now + time.Nanosecond // safety: time must advance
		}
		now = next
	}
	e.finishAutoscale(res.Makespan)
	res.Stats = e.Stats()
	return res
}
