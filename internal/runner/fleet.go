package runner

import (
	"context"
	"sync"

	"embench/internal/metrics"
	"embench/internal/serve"
	"embench/internal/trace"
)

// FleetGroup is one shared-deployment run: a batch of episode specs that
// all attach to a single serve.Fleet (one endpoint — replicas, queues,
// caches — contended by every episode in the group).
type FleetGroup struct {
	Specs []EpisodeSpec
	// Serve configures the shared endpoint. A zero Profile is defaulted to
	// the first spec's (post-mutation) planner profile, mirroring the
	// per-episode endpoint default.
	Serve serve.Config
}

// FleetResult is one group's outcome: per-episode metrics and traces in
// spec order, plus the endpoint-level serving totals across all episodes
// (each episode's own share is in its Episode.Serving).
type FleetResult struct {
	Episodes []metrics.Episode
	Traces   []*trace.Trace
	Serving  metrics.Serving
}

// fleetServe resolves the group's endpoint configuration: an explicit
// profile wins, otherwise the first episode's planner (with its mutation
// applied, since mutations may swap models).
func (g FleetGroup) fleetServe() serve.Config {
	sc := g.Serve
	if sc.Profile.Name == "" && len(g.Specs) > 0 {
		cfg := g.Specs[0].Workload.Config
		if g.Specs[0].Mutation != nil {
			g.Specs[0].Mutation(&cfg)
		}
		sc.Profile = cfg.Planner
	}
	return sc
}

// RunFleet executes one fleet group: every episode runs on its own
// goroutine, attached to one shared serve.Fleet. Concurrency here is not
// an option but a requirement — the fleet's conservative merge blocks an
// episode's LLM call until every other live episode has revealed its next
// request, so the group advances as a lock-step discrete-event
// simulation. Because the merged admission order is a pure function of
// the episodes' virtual-time request sequences, the result is
// byte-identical across reruns and independent of how the goroutines are
// scheduled.
//
// ctx is checked once before launch (episodes are not interruptible
// mid-flight; a fleet episode blocked in the merge cannot observe
// cancellation without deadlocking the group).
func RunFleet(ctx context.Context, g FleetGroup) (FleetResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return FleetResult{}, err
	}
	n := len(g.Specs)
	res := FleetResult{
		Episodes: make([]metrics.Episode, n),
		Traces:   make([]*trace.Trace, n),
	}
	if n == 0 {
		return res, nil
	}
	fleet := serve.NewFleet(g.fleetServe(), n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := fleet.Client(i)
			// Finish must run even if the episode panics, or the rest of
			// the fleet blocks forever waiting for this episode's next
			// request.
			defer client.Finish()
			spec := g.Specs[i]
			spec.Options.Backend = client
			spec.Options.Serve = nil
			out := spec.run()
			res.Episodes[i], res.Traces[i] = out.Episode, out.Trace
		}(i)
	}
	wg.Wait()
	res.Serving = fleet.Stats()
	return res, nil
}

// RunFleets executes many independent fleet groups, at most parallelism
// groups concurrently (each group internally runs len(Specs) goroutines).
// Results come back in group submission order; like Run, any parallelism
// value — including 1 — produces byte-identical results, because each
// group is internally deterministic and groups share no state.
func RunFleets(ctx context.Context, groups []FleetGroup, parallelism int) ([]FleetResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(groups)
	results := make([]FleetResult, n)
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := range groups {
			r, err := RunFleet(ctx, groups[i])
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				r, err := RunFleet(context.Background(), groups[i])
				if err != nil {
					// Background context never cancels; RunFleet has no
					// other error path.
					panic("runner: fleet group: " + err.Error())
				}
				results[i] = r
			}
		}()
	}

	var err error
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	if err != nil {
		return nil, err
	}
	return results, nil
}
