package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"embench/internal/llm"
	"embench/internal/metrics"
	"embench/internal/multiagent"
	"embench/internal/runner"
	"embench/internal/serve"
	"embench/internal/world"
)

// Fig11 is the cache-pressure experiment: what happens to routing once KV
// memory — not entry counts — is the binding constraint of a deployment
// (paper Fig. 6/7 framing, Recs. 1–3). The seed model sized each replica's
// prefix cache in entries, so cache-affinity routing paid no capacity cost
// and fig9a showed it collapsing every prompt sharing the global preamble
// onto one replica. With serve.Config.CacheTokens, placement charges the
// warm tokens an insertion would evict, and the collapse resolves into the
// real trade-off: tight budgets spread load hard but churn the cache,
// generous budgets keep hits but re-concentrate.
//
// Two panels:
//
//   - open loop: a shared-preamble replay (every stream leads with one
//     fleet-wide preamble — the affinity magnet — then a per-stream persona
//     and growing history) swept cache-tokens × routing. Max per-replica
//     request share is the collapse signal; hit rate and evicted tokens
//     price what the spreading costs.
//   - closed loop: real CoELA episodes on a shared fleet endpoint
//     (runner.RunFleet), swept cache-tokens × routing, showing the same
//     capacity pressure end to end where queueing feeds back into episode
//     timelines.

// Fig11ReplayRow is one open-loop (routing, cache-tokens) sample.
type Fig11ReplayRow struct {
	Routing       serve.RoutingPolicy
	CacheTokens   int // 0 = no token budget (the seed's entry-count model)
	Replicas      int
	MaxShare      float64 // max per-replica request share (1.0 = collapse)
	CacheHitRate  float64
	EvictedTokens int
	MeanQueueWait time.Duration
	Throughput    float64
}

// Fig11FleetRow is one closed-loop (routing, cache-tokens) fleet sample.
type Fig11FleetRow struct {
	Routing       serve.RoutingPolicy
	CacheTokens   int
	Replicas      int
	SuccessRate   float64
	TaskLatency   time.Duration
	MaxShare      float64
	CacheHitRate  float64
	EvictedTokens int
	MeanQueueWait time.Duration
}

// Fig11Report bundles both panels.
type Fig11Report struct {
	Replay []Fig11ReplayRow
	Fleet  []Fig11FleetRow
}

// Fig11CacheTokens is the replay panel's per-replica token-budget axis;
// 0 is the budget-blind baseline (entry-count capacity only).
var Fig11CacheTokens = []int{0, 3072, 8192}

// Fig11FleetCacheTokens is the closed-loop budget axis: CoELA prompts are
// smaller than the synthetic persona streams, so the budgets are too.
var Fig11FleetCacheTokens = []int{0, 2048, 8192}

// fig11Routings: the collapse-prone policy, its latency-aware blend, and
// the cache-blind floor.
var fig11Routings = []serve.RoutingPolicy{
	serve.RouteLeastLoaded, serve.RouteCacheAffinity, serve.RouteShortestCompletion,
}

const (
	fig11Streams  = 16
	fig11Steps    = 16
	fig11Replicas = 4
)

// fig11ReplayConfig is the open-loop endpoint shape: unbatched so the
// comparison isolates placement, entry capacity generous so the token
// budget is the only constraint that varies.
func fig11ReplayConfig(routing serve.RoutingPolicy, cacheTokens int) serve.Config {
	return serve.Config{
		Profile: llm.GPT4, Replicas: fig11Replicas, Routing: routing,
		MaxBatch: 1, CacheEntries: 512, CacheTokens: cacheTokens,
	}
}

// Fig11 sweeps both panels.
func Fig11(cfg Config) Fig11Report {
	var rep Fig11Report

	// Open loop: one replay per (routing, budget) cell over one trace —
	// serve.SharedPreambleTrace, the same generator the serve-level
	// capacity-pressure regression test pins, so test and figure cannot
	// drift onto different workloads.
	reqs := serve.SharedPreambleTrace(fig11Streams, fig11Steps, cfg.Seed)
	for _, routing := range fig11Routings {
		for _, tokens := range Fig11CacheTokens {
			res := serve.Replay(fig11ReplayConfig(routing, tokens), reqs)
			rep.Replay = append(rep.Replay, Fig11ReplayRow{
				Routing: routing, CacheTokens: tokens, Replicas: fig11Replicas,
				MaxShare:      res.Stats.MaxReplicaShare(),
				CacheHitRate:  res.Stats.CacheHitRate(),
				EvictedTokens: res.Stats.EvictedTokens,
				MeanQueueWait: res.Stats.MeanQueueWait(),
				Throughput:    res.Throughput(),
			})
		}
	}

	// Closed loop: fleets of CoELA episodes on one shared endpoint per
	// (routing, budget) cell, fanned out over the worker pool.
	w := mustGet(fig9System)
	var groups []runner.FleetGroup
	for _, routing := range fig11Routings {
		for _, tokens := range Fig11FleetCacheTokens {
			groups = append(groups, runner.FleetGroup{
				Specs: runner.Specs(w, world.Medium, fig9TeamSize, nil,
					multiagent.Options{Parallel: true}, 4, cfg.Seed),
				Serve: serve.Config{
					Replicas: fig11Replicas, Routing: routing,
					MaxBatch: 4, MaxWait: 1500 * time.Millisecond,
					CacheEntries: 512, CacheTokens: tokens,
				},
			})
			rep.Fleet = append(rep.Fleet, Fig11FleetRow{
				Routing: routing, CacheTokens: tokens, Replicas: fig11Replicas,
			})
		}
	}
	results, err := runner.RunFleets(context.Background(), groups, cfg.Parallelism)
	if err != nil {
		panic("bench: fig11 fleet: " + err.Error())
	}
	for i, r := range results {
		s := metrics.Summarize(r.Episodes)
		rep.Fleet[i].SuccessRate = s.SuccessRate
		rep.Fleet[i].TaskLatency = s.MeanDuration
		rep.Fleet[i].MaxShare = r.Serving.MaxReplicaShare()
		rep.Fleet[i].CacheHitRate = r.Serving.CacheHitRate()
		rep.Fleet[i].EvictedTokens = r.Serving.EvictedTokens
		rep.Fleet[i].MeanQueueWait = r.Serving.MeanQueueWait()
	}
	return rep
}

// Fig11Metrics flattens the acceptance evidence for the perf trajectory:
// per-cell max share and hit rate of the affinity column (the collapse
// before/after), keyed by budget.
func Fig11Metrics(rep Fig11Report) map[string]float64 {
	m := make(map[string]float64)
	for _, r := range rep.Replay {
		if r.Routing != serve.RouteCacheAffinity {
			continue
		}
		m[fmt.Sprintf("replay_affinity_budget%d_max_share", r.CacheTokens)] = r.MaxShare
		m[fmt.Sprintf("replay_affinity_budget%d_hit_rate", r.CacheTokens)] = r.CacheHitRate
		m[fmt.Sprintf("replay_affinity_budget%d_evicted_tokens", r.CacheTokens)] = float64(r.EvictedTokens)
	}
	return m
}

// fig11Budget renders a token budget, spelling out the blind baseline.
func fig11Budget(tokens int) string {
	if tokens == 0 {
		return "none"
	}
	return fmt.Sprintf("%d", tokens)
}

// RenderFig11 formats both panels.
func RenderFig11(rep Fig11Report) string {
	var b strings.Builder
	b.WriteString("Fig. 11 — KV memory pressure: token-budget caches make routing capacity-aware\n")
	fmt.Fprintf(&b, "Fig. 11a — open-loop shared-preamble replay (%d streams, %d replicas; max-share 1.00 = collapse)\n",
		fig11Streams, fig11Replicas)
	fmt.Fprintf(&b, "%-20s %10s %9s %6s %10s %8s %8s\n",
		"routing", "kv-budget", "max-share", "cache", "evicted", "q-wait", "req/s")
	for _, r := range rep.Replay {
		fmt.Fprintf(&b, "%-20s %10s %9.2f %5.0f%% %10d %7.1fs %8.3f\n",
			r.Routing, fig11Budget(r.CacheTokens), r.MaxShare,
			100*r.CacheHitRate, r.EvictedTokens, r.MeanQueueWait.Seconds(),
			r.Throughput)
	}
	fmt.Fprintf(&b, "\nFig. 11b — closed loop: 4 CoELA episodes sharing one %d-replica endpoint\n",
		fig11Replicas)
	fmt.Fprintf(&b, "%-20s %10s %9s %10s %9s %6s %10s %8s\n",
		"routing", "kv-budget", "success", "latency", "max-share", "cache", "evicted", "q-wait")
	for _, r := range rep.Fleet {
		fmt.Fprintf(&b, "%-20s %10s %8.0f%% %9.1fm %9.2f %5.0f%% %10d %7.1fs\n",
			r.Routing, fig11Budget(r.CacheTokens), 100*r.SuccessRate,
			r.TaskLatency.Minutes(), r.MaxShare, 100*r.CacheHitRate,
			r.EvictedTokens, r.MeanQueueWait.Seconds())
	}
	return b.String()
}
