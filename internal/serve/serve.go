// Package serve simulates a shared LLM serving endpoint: the substrate many
// embodied agents contend for when they stop getting a dedicated model each
// (paper Fig. 6/7 and Recs. 1–3).
//
// An Endpoint owns N replicas of one model deployment, an admission queue,
// a continuous-batching scheduler and a per-replica prefix/KV cache.
// Requests carry submission timestamps from per-agent virtual clocks; the
// endpoint orders them on a global virtual timeline and returns completion
// times, so queueing delay, batching gains and cache hit rates all emerge
// deterministically from the root seed — no wall clock, no goroutines.
//
// # Modes
//
// Three modes share the same pricing model (llm.Profile.BatchServiceTime,
// the per-replica prefix caches, and one admission helper — see
// admission.go — so a given request sequence costs the same whichever
// path carries it):
//
//   - Closed loop: Endpoint implements llm.Backend, so live episodes route
//     every client call through the shared endpoint. Requests are admitted
//     in submission order; a request arriving within the batching window of
//     a replica's in-flight batch joins it (continuous batching), otherwise
//     it starts a new batch on the replica the routing policy picks.
//     Explicitly aggregated step-phase batches (llm.BatchBackend, paper
//     Rec. 1) launch as one batch via ServeBatch.
//   - Open loop: Replay takes a full request trace (arrival offsets, prompt
//     structure, generation lengths) and runs a discrete-event loop over
//     it, forming batches of up to MaxBatch that launch when full, when the
//     oldest queued request has waited MaxWait, or when no further arrivals
//     are pending. This is the classic serving-benchmark shape: fixed
//     arrival schedule, swept scheduler policy.
//   - Fleet: a Fleet wraps one Endpoint and attaches several concurrently
//     running episodes to it. Each episode talks to its own FleetClient
//     (an llm.Backend); the fleet merges the episodes' submission streams
//     with a conservative rule — a request is only admitted once every
//     still-running episode has revealed its next request, earliest
//     revealed (arrival, episode) first — so cross-episode contention is
//     simulated deterministically no matter how the episode goroutines
//     are scheduled.
//
// # Routing
//
// Multi-replica endpoints place each new batch by a RoutingPolicy:
// least-loaded (earliest-free replica), cache-affinity (replica with the
// warmest matching prefix cache) or shortest-expected-completion (queueing
// plus cache-discounted service, the latency-aware blend). Caches are per
// replica, so routing decides not just load spread but which prefixes stay
// hot where.
//
// # Determinism
//
// Everything in this package is driven by virtual time and breaks ties on
// submission order or replica index. The only concurrency is Fleet's, and
// it is barrier-synchronized on virtual arrivals: the merged admission
// order is a pure function of the episodes' request timelines. See
// docs/ARCHITECTURE.md for the clock model.
package serve

import (
	"time"

	"embench/internal/llm"
)

// Config describes one shared serving deployment.
type Config struct {
	// Profile prices prefill/decode/overhead for every replica. A zero
	// profile (Name == "") is filled in by the episode runner with the
	// workload's planner profile.
	Profile llm.Profile
	// Replicas is the number of identical model instances behind the
	// endpoint (default 1).
	Replicas int
	// Routing places each new batch on a replica: least-loaded (default),
	// cache-affinity or shortest-completion. See RoutingPolicy.
	Routing RoutingPolicy
	// MaxBatch caps sequences per continuous batch; <= 1 disables batching.
	// Explicit step-phase batches (ServeBatch) are not split by MaxBatch —
	// client-side aggregation supersedes the server's join cap.
	MaxBatch int
	// MaxWait is the batching window: in open-loop replay, how long the
	// oldest queued request may wait for companions before its batch
	// launches; in closed-loop serving, how far after a batch's start a new
	// arrival may still join it. Zero means "no waiting" — batches only
	// coalesce requests that are already simultaneous.
	MaxWait time.Duration
	// CacheTokens sizes each replica's prefix cache in TOKENS: the live
	// cached token footprint — the KV memory a real deployment pins — may
	// not exceed this budget; least-recently-touched prefix chains are
	// evicted (cascading to their extensions) to stay under it. 0 means no
	// token budget. A token budget also makes cache-aware routing
	// capacity-aware: placement charges the warm tokens an insertion would
	// evict (see RoutingPolicy), which is what keeps cache-affinity from
	// collapsing a shared-preamble workload onto one replica.
	CacheTokens int
	// CacheEntries is the deprecated entry-count fallback to CacheTokens:
	// it bounds each replica's prefix cache by the NUMBER of cached
	// section-prefix entries (LRU), not by the tokens they pin.
	//
	// Deprecated: prefer CacheTokens. An entry count ignores how many
	// tokens each entry pins, so capacity costs nothing and routing cannot
	// see memory pressure. The field is kept only for byte-compatible
	// reproduction of the fig8–fig10 reports, which predate token budgets.
	// Both budgets may be set (each is enforced independently); caching is
	// disabled only when both are 0.
	CacheEntries int
	// Identity selects how cached prefixes are keyed: IdentityShape
	// (default — (section name, token count) chains) or IdentityContent
	// (chained prompt.Section.Digest content hashes, so same-shape
	// different-content prompts no longer falsely share and reconverged
	// histories re-share). See CacheIdentity.
	Identity CacheIdentity
	// CachedPrefillFrac is the fraction of prefill cost still paid for
	// cache-hit tokens (default 0.1 — KV reuse is cheap but not free).
	CachedPrefillFrac float64
	// Autoscale, when enabled (Interval > 0), scales the active replica
	// count within [Min, Max] on a virtual-time evaluation clock; Replicas
	// is the pool ceiling. The zero value keeps every replica active —
	// byte-identical to fixed-replica serving. See Autoscale.
	Autoscale Autoscale
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.Routing == "" {
		c.Routing = RouteLeastLoaded
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 1
	}
	if c.MaxWait < 0 {
		c.MaxWait = 0
	}
	if c.CacheTokens < 0 {
		c.CacheTokens = 0
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0
	}
	if c.Identity == "" {
		c.Identity = IdentityShape
	}
	if c.CachedPrefillFrac <= 0 {
		c.CachedPrefillFrac = 0.1
	}
	if c.CachedPrefillFrac > 1 {
		c.CachedPrefillFrac = 1
	}
	c.Autoscale = c.Autoscale.withDefaults(c.Replicas)
	return c
}
