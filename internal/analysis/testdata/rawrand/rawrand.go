// Fixture for the rawrand analyzer, judged as a package outside
// internal/rng: importing math/rand at all is the finding.
package fixture

import (
	"math/rand" // want `import of math/rand outside internal/rng`

	randv2 "math/rand/v2" // want `import of math/rand/v2 outside internal/rng`

	bench "math/rand" //detlint:allow rawrand locally-seeded shuffle for a synthetic micro-benchmark input, never simulation state
)

var (
	_ = rand.Int
	_ = randv2.Int
	_ = bench.Int
)
