package runner

import (
	"context"
	"runtime"
	"sync"

	"embench/internal/metrics"
	"embench/internal/serve"
	"embench/internal/serve/obs"
	"embench/internal/trace"
)

// DefaultActivationThreshold is the fleet size at which RunFleet switches
// from plain goroutine-per-episode to the bounded activation pool. Below
// it the pool's gate traffic costs more than it saves; at or above it the
// pool keeps the number of actively executing episode stacks at
// ~GOMAXPROCS no matter how large the fleet grows.
const DefaultActivationThreshold = 64

// FleetGroup is one shared-deployment run: a batch of episode specs that
// all attach to a single serve.Fleet — or, with Shards > 1, to K
// independent fleets with deterministic round-robin episode placement
// (one endpoint each; see serve.ShardedFleet).
type FleetGroup struct {
	Specs []EpisodeSpec
	// Serve configures the shared endpoint(s). A zero Profile is defaulted
	// to the first spec's (post-mutation) planner profile, mirroring the
	// per-episode endpoint default.
	Serve serve.Config
	// Shards splits the group across this many independent endpoints
	// (episode i attaches to shard i % Shards). <= 1 means one shared
	// endpoint — the plain Fleet.
	Shards int
	// Activation bounds how many of the group's episodes actively execute
	// at once (arrival-driven episode activation): an episode runs only
	// while the merge is waiting on its next request, and parks — slot
	// released — while its revealed request waits to be admitted. 0 uses
	// the default policy: no gating below DefaultActivationThreshold
	// episodes, a GOMAXPROCS-sized pool at or above it. > 0 forces a pool
	// of that many slots; < 0 disables gating at any size. Gating never
	// changes results — only how many goroutines are simultaneously
	// runnable.
	Activation int
	// Sink attaches a flight-recorder sink (internal/serve/obs) to every
	// shard's endpoint before any episode runs. One fleet's event stream is
	// emitted under the fleet mutex (deterministic order); with Shards > 1
	// shards emit concurrently, so filter by the Shard tag — or sample per
	// shard and merge — for reproducible views. nil = off.
	Sink obs.Sink
}

// FleetResult is one group's outcome: per-episode metrics and traces in
// spec order, plus the endpoint-level serving totals across all episodes
// (each episode's own share is in its Episode.Serving). For a sharded
// group, Serving is the cross-shard rollup and ShardServing holds each
// shard's own totals in shard order.
type FleetResult struct {
	Episodes     []metrics.Episode
	Traces       []*trace.Trace
	Serving      metrics.Serving
	ShardServing []metrics.Serving
}

// fleetServe resolves the group's endpoint configuration: an explicit
// profile wins, otherwise the first episode's planner (with its mutation
// applied, since mutations may swap models).
func (g FleetGroup) fleetServe() serve.Config {
	sc := g.Serve
	if sc.Profile.Name == "" && len(g.Specs) > 0 {
		cfg := g.Specs[0].Workload.Config
		if g.Specs[0].Mutation != nil {
			g.Specs[0].Mutation(&cfg)
		}
		sc.Profile = cfg.Planner
	}
	return sc
}

// activationGate is a counting semaphore implementing serve.Gate: slots
// are buffer capacity, Acquire fills one, Release drains one.
type activationGate chan struct{}

func (g activationGate) Acquire() { g <- struct{}{} }
func (g activationGate) Release() { <-g }

// gateFor resolves the group's activation policy into a gate (nil = no
// gating) for a group of n episodes.
func (g FleetGroup) gateFor(n int) serve.Gate {
	slots := 0
	switch {
	case g.Activation < 0:
		return nil
	case g.Activation > 0:
		slots = g.Activation
	case n >= DefaultActivationThreshold:
		slots = runtime.GOMAXPROCS(0)
	default:
		return nil
	}
	if slots >= n {
		return nil // a slot for everyone is no bound at all
	}
	return make(activationGate, slots)
}

// RunFleet executes one fleet group: every episode runs on its own
// goroutine, attached to one shared serve.Fleet (or its shard of a
// serve.ShardedFleet). Concurrency here is not an option but a
// requirement — the fleet's conservative merge blocks an episode's LLM
// call until every other live episode of its shard has revealed its next
// request, so the group advances as a lock-step discrete-event
// simulation. Because the merged admission order is a pure function of
// the episodes' virtual-time request sequences, the result is
// byte-identical across reruns and independent of how the goroutines are
// scheduled.
//
// Large groups do not cost a live stack per episode: at or above
// DefaultActivationThreshold episodes (see FleetGroup.Activation), episode
// execution is gated through a bounded activation pool — an episode
// goroutine runs only while the merge needs its next request and parks
// with its slot released while its revealed request waits — so a
// 2048-episode fleet executes with roughly GOMAXPROCS active episodes at
// any moment.
//
// ctx is checked once before launch (episodes are not interruptible
// mid-flight; a fleet episode blocked in the merge cannot observe
// cancellation without deadlocking the group).
func RunFleet(ctx context.Context, g FleetGroup) (FleetResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return FleetResult{}, err
	}
	n := len(g.Specs)
	res := FleetResult{
		Episodes: make([]metrics.Episode, n),
		Traces:   make([]*trace.Trace, n),
	}
	if n == 0 {
		return res, nil
	}
	sc := g.fleetServe()
	// Validate through TryNew so a bad group config surfaces as an error
	// from RunFleet instead of a construction panic inside the shard loop.
	if _, err := serve.TryNew(sc); err != nil {
		return FleetResult{}, err
	}
	fleet := serve.NewShardedFleet(sc, n, g.Shards)
	if g.Sink != nil {
		fleet.SetSink(g.Sink)
	}
	gate := g.gateFor(n)
	if gate != nil {
		fleet.SetGate(gate)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if gate != nil {
				// Hold an activation slot while executing episode code;
				// the fleet client releases it whenever this episode is
				// parked in the merge. Release must run after Finish (the
				// deferred calls below unwind in reverse order), so the
				// episode detaches while still counted active.
				gate.Acquire()
				defer gate.Release()
			}
			client := fleet.Client(i)
			// Finish must run even if the episode panics, or the rest of
			// the fleet blocks forever waiting for this episode's next
			// request.
			defer client.Finish()
			spec := g.Specs[i]
			spec.Options.Backend = client
			spec.Options.Serve = nil
			out := spec.run()
			res.Episodes[i], res.Traces[i] = out.Episode, out.Trace
		}(i)
	}
	wg.Wait()
	res.Serving = fleet.Stats()
	if fleet.Shards() > 1 {
		res.ShardServing = fleet.ShardStats()
	}
	return res, nil
}

// RunFleets executes many independent fleet groups, at most parallelism
// groups concurrently (each group internally runs len(Specs) goroutines,
// activation-gated when large). Results come back in group submission
// order; like Run, any parallelism value — including 1 — produces
// byte-identical results, because each group is internally deterministic
// and groups share no state.
//
// Cancellation and errors follow Run's contract: when ctx is cancelled
// mid-batch, dispatch stops, in-flight groups drain, and the context
// error is returned; a group error (lowest group index wins) is returned
// the same way. Partial results are never returned.
func RunFleets(ctx context.Context, groups []FleetGroup, parallelism int) ([]FleetResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(groups)
	results := make([]FleetResult, n)
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := range groups {
			r, err := RunFleet(ctx, groups[i])
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	idx := make(chan int)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = RunFleet(ctx, groups[i])
			}
		}()
	}

	var err error
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	if err == nil {
		// Propagate the first (lowest-index) group error through the pool,
		// exactly as the sequential path would have surfaced it.
		for _, e := range errs {
			if e != nil {
				err = e
				break
			}
		}
	}
	if err != nil {
		return nil, err
	}
	return results, nil
}
