package sensing

import (
	"testing"
	"time"
)

func TestLatencyScalesWithEntities(t *testing.T) {
	b := Backend{Base: 100 * time.Millisecond, PerEntity: 5 * time.Millisecond}
	if got := b.Latency(0); got != 100*time.Millisecond {
		t.Fatalf("Latency(0) = %v", got)
	}
	if got := b.Latency(10); got != 150*time.Millisecond {
		t.Fatalf("Latency(10) = %v", got)
	}
	if got := b.Latency(-5); got != 100*time.Millisecond {
		t.Fatalf("negative entities should clamp: %v", got)
	}
}

func TestRegistryConsistent(t *testing.T) {
	for name, b := range Backends {
		if b.Name != name {
			t.Errorf("backend %q registered under %q", b.Name, name)
		}
		if b.Base <= 0 {
			t.Errorf("backend %q has non-positive base latency", name)
		}
		if b.MissProb < 0 || b.MissProb > 0.5 {
			t.Errorf("backend %q miss probability implausible: %v", name, b.MissProb)
		}
	}
	if len(Backends) != 9 {
		t.Fatalf("expected 9 backends, got %d", len(Backends))
	}
}

func TestSymbolicIsLossless(t *testing.T) {
	if Symbolic.MissProb != 0 {
		t.Fatal("symbolic sensing should never miss")
	}
}

func TestDiffusionHeaviest(t *testing.T) {
	for name, b := range Backends {
		if name == DiffusionWM.Name {
			continue
		}
		if b.Latency(20) >= DiffusionWM.Latency(20) {
			t.Fatalf("%s should be cheaper than the diffusion world model", name)
		}
	}
}
