// Package reflection implements the reflection module: comparing expected
// and observed outcomes of a decision and deciding whether to correct
// course (paper Sec. II-A). Reflection is cheap (≈8.6% of latency on
// average) but removing it nearly doubles task steps (Fig. 3), because
// uncorrected agents loop on failed plans.
package reflection

import (
	"embench/internal/rng"
)

// Checker judges executed decisions. DetectProb is the probability the
// reflector notices a genuinely failed/ineffective decision (tied to the
// backing model's capability); FalseAlarm is the probability it flags a
// correct decision anyway, forcing a needless replan.
type Checker struct {
	DetectProb float64
	FalseAlarm float64
}

// NewChecker derives a checker from a model capability in [0,1]. Detection
// tracks capability; false alarms are rare and shrink with capability.
func NewChecker(capability float64) Checker {
	if capability < 0 {
		capability = 0
	}
	if capability > 1 {
		capability = 1
	}
	return Checker{
		DetectProb: 0.55 + 0.40*capability,
		FalseAlarm: 0.05 * (1 - capability),
	}
}

// Verdict is the reflection outcome for one executed decision.
type Verdict struct {
	FlaggedError bool // the reflector asks for a replan
	TrueError    bool // the decision actually failed (ground truth)
}

// Judge draws the reflection outcome for a decision whose true failure
// status is known to the simulator.
func (c Checker) Judge(st *rng.Stream, failed bool) Verdict {
	v := Verdict{TrueError: failed}
	if failed {
		v.FlaggedError = st.Bernoulli(c.DetectProb)
	} else {
		v.FlaggedError = st.Bernoulli(c.FalseAlarm)
	}
	return v
}
