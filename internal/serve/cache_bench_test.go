package serve

import (
	"fmt"
	"testing"

	"embench/internal/prompt"
)

// benchPrompt is a planning-shaped prompt: shared preamble, per-agent
// persona, growing history — the section mix the request path hashes.
func benchPrompt(agent string, step int) prompt.Prompt {
	return prompt.New(
		prompt.Section{Name: "system", Tokens: 220},
		prompt.Section{Name: "task", Tokens: 90},
		prompt.Section{Name: "persona-" + agent, Tokens: 800},
		prompt.Section{Name: "hist", Tokens: 60 + 40*step, Droppable: true},
	)
}

// BenchmarkPrefixChain compares the seed request path — rehashing the
// prompt's prefix chain once per replica probe plus once at admission —
// against the memoized path that hashes once per request and shares the
// promptKey across routing probes and admission. This is the satellite
// win: per request, R+1 full FNV walks collapse to one.
func BenchmarkPrefixChain(b *testing.B) {
	const replicas = 4
	caches := make([]*prefixCache, replicas)
	for i := range caches {
		caches[i] = newPrefixCache(256, 0)
	}
	prompts := make([]prompt.Prompt, 16)
	for i := range prompts {
		prompts[i] = benchPrompt(fmt.Sprintf("a%d", i%4), i)
	}
	for _, c := range caches {
		c.insert(prompts[0]) // warm the shared preamble everywhere
	}

	b.Run("per-probe-rehash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := prompts[i%len(prompts)]
			for _, c := range caches {
				_ = c.match(p) // each probe rehashes the full chain
			}
			caches[i%replicas].insert(p) // admission rehashes again
		}
	})

	b.Run("memoized-key", func(b *testing.B) {
		b.ReportAllocs()
		var buf []sectionKey
		for i := 0; i < b.N; i++ {
			k := chainKeysInto(buf, prompts[i%len(prompts)])
			buf = k.secs
			for _, c := range caches {
				_ = c.matchKey(k) // probes share the one hash
			}
			caches[i%replicas].insertKey(k)
		}
	})
}
