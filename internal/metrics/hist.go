package metrics

import (
	"sort"
	"time"
)

// HistBuckets is the number of fixed latency buckets. Bucket boundaries are
// shared by every histogram in the suite, which is what makes two
// histograms exactly mergeable: Merge is element-wise count addition, so
// hist(A).Merge(hist(B)) == hist(A ∪ B) bit for bit, however the
// observations were grouped across episodes, fleets, shards or worker
// pools.
const HistBuckets = 48

// histEdges[i] is bucket i's exclusive upper bound. Bucket 0 covers
// [0, 1ms); bucket i covers [histEdges[i-1], histEdges[i]); the last bucket
// additionally absorbs everything at or above its lower bound (a clamp —
// its edge is ~33 hours of simulated latency, far past anything the suite
// produces). The edges grow by exactly ×1.5 in integer arithmetic, so they
// are identical on every platform.
var histEdges = func() [HistBuckets]time.Duration {
	var e [HistBuckets]time.Duration
	d := time.Millisecond
	for i := range e {
		e[i] = d
		d += d / 2
	}
	return e
}()

// Hist is a fixed-bucket latency histogram. The zero value is an empty
// histogram ready for use. It is a pure value type (a count array), so it
// merges exactly and never aliases: the one distribution-shaped quantity
// metrics.Serving can carry without breaking its all-sums merge rule.
//
// Quantiles are bucketed estimates: Quantile returns the upper edge of the
// bucket holding the requested rank, so the estimate is exact to within one
// bucket (a ×1.5 band) — tight enough to separate deployments whose tails
// differ materially, which is what SLO comparisons need.
type Hist struct {
	Counts [HistBuckets]int64
}

// histBucket maps a duration to its bucket index (negative durations clamp
// to bucket 0, and anything beyond the last edge clamps to the last
// bucket).
func histBucket(d time.Duration) int {
	i := sort.Search(HistBuckets-1, func(i int) bool { return d < histEdges[i] })
	return i
}

// Observe folds one duration into the histogram.
func (h *Hist) Observe(d time.Duration) { h.Counts[histBucket(d)]++ }

// Total reports the number of observations.
func (h Hist) Total() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Merge combines two histograms element-wise. Because the buckets are
// fixed and shared, the result is exactly the histogram of the union of
// the two observation sets.
func (h Hist) Merge(o Hist) Hist {
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	return h
}

// Quantile estimates the q-quantile (q in [0,1]) as the upper edge of the
// bucket containing the rank-⌈q·n⌉ observation. Returns 0 for an empty
// histogram. The exact sort-based quantile always lies in the returned
// bucket, so the estimate is within one bucket of exact.
func (h Hist) Quantile(q float64) time.Duration {
	total := h.Total()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if float64(rank) < q*float64(total) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			return histEdges[i]
		}
	}
	return histEdges[HistBuckets-1]
}

// FracBelow reports the fraction of observations strictly below d,
// resolved at bucket granularity: only buckets whose entire range lies
// below d are counted, so the fraction is a lower bound in general and
// exact when d is a bucket edge. SLO attainment uses it with the SLO
// target effectively rounded down to a bucket edge — the same rounding for
// every deployment under comparison, so attainment ratios stay fair. An
// empty histogram reports 1 (no request ever missed).
func (h Hist) FracBelow(d time.Duration) float64 {
	total := h.Total()
	if total == 0 {
		return 1
	}
	var below int64
	for i, c := range h.Counts {
		if histEdges[i] > d {
			break
		}
		below += c
	}
	return float64(below) / float64(total)
}
